// irs_sweep — run a named figure grid (or one shard of it) and stream
// shard-format NDJSON, or spawn every shard as a local subprocess.
//
//   # whole grid, one process (canonical single-shard file):
//   $ irs_sweep --fig fig05 --ndjson fig05.ndjson
//
//   # shard 2 of 8 (e.g. on host 2 of an 8-host pool):
//   $ irs_sweep --fig fig05 --shard 2/8 --ndjson shard2.ndjson
//
//   # all 8 shards as local subprocesses, then merge + verify:
//   $ irs_sweep --fig fig05 --shards 8 --out-dir sweep/ --merge fig05.ndjson
//
// Options:
//   --fig NAME       named grid (see --list)
//   --seeds N        seeds per data point       (bench_seeds(): env-aware)
//   --fast           trim the grid like IRS_BENCH_FAST
//   --shard i/N      run only round-robin shard i of N        (0/1)
//   --runs a,b,c     only these global run indices (repair reruns; must
//                    belong to the shard)
//   --ndjson PATH    output file                              (stdout)
//   --jobs N         sweep worker threads                     (sweep_jobs())
//   --shards N       spawn mode: run shards 0..N-1 as subprocesses
//   --out-dir DIR    spawn mode: write DIR/shard<i>.ndjson    (.)
//   --merge PATH     spawn mode: merge + verify into PATH afterwards; the
//                    process exits with the merge status bits
//   --list           print known grid names and sizes
//
// Exit: 0 on success; 64 on usage errors; spawn mode propagates a failed
// child (1) or, with --merge, the MergeStatus bits (src/exp/shard.h).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/grids.h"
#include "src/exp/report.h"
#include "src/exp/shard.h"
#include "src/exp/sweep.h"

namespace {

using namespace irs;

constexpr int kExitUsage = 64;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --fig NAME [--seeds N] [--fast] [--shard i/N]\n"
      "          [--runs a,b,c] [--ndjson PATH] [--jobs N]\n"
      "       %s --fig NAME --shards N [--out-dir DIR] [--merge PATH]\n"
      "       %s --list\n",
      argv0, argv0, argv0);
  std::exit(kExitUsage);
}

bool parse_runs(const std::string& s, std::vector<std::size_t>* out) {
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    if (end == pos) return false;
    char* stop = nullptr;
    const unsigned long long v =
        std::strtoull(s.c_str() + pos, &stop, 10);
    if (stop != s.c_str() + end) return false;
    out->push_back(static_cast<std::size_t>(v));
    pos = end + 1;
  }
  return !out->empty();
}

struct Options {
  std::string fig;
  int seeds = 0;
  bool fast = false;
  exp::ShardSpec shard;
  bool have_runs = false;
  std::vector<std::size_t> runs;
  std::string ndjson;  // empty = stdout
  int jobs = 0;
  int spawn_shards = 0;
  std::string out_dir = ".";
  std::string merge_path;
};

/// Run one shard in this process, streaming header + per-run lines.
int run_shard(const Options& o) {
  const exp::GridOptions gopt{o.seeds, o.fast};
  const auto grid = exp::figure_grid(o.fig, gopt);
  if (grid.empty()) {
    std::fprintf(stderr, "error: unknown grid '%s' (see --list)\n",
                 o.fig.c_str());
    return kExitUsage;
  }

  std::vector<std::size_t> owned =
      exp::shard_run_indices(grid.size(), o.shard.index, o.shard.count);
  if (o.have_runs) {
    // Repair mode: keep only the requested indices; reject ones this
    // shard does not own so a bad repair plan fails loudly.
    std::vector<std::size_t> filtered;
    for (const std::size_t r : o.runs) {
      if (r >= grid.size() ||
          r % static_cast<std::size_t>(o.shard.count) !=
              static_cast<std::size_t>(o.shard.index)) {
        std::fprintf(stderr,
                     "error: run %zu is not owned by shard %d/%d\n", r,
                     o.shard.index, o.shard.count);
        return kExitUsage;
      }
      filtered.push_back(r);
    }
    owned = std::move(filtered);
  }

  std::ofstream file;
  if (!o.ndjson.empty()) {
    file.open(o.ndjson, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   o.ndjson.c_str());
      return 1;
    }
  }
  std::ostream& out = o.ndjson.empty() ? std::cout : file;

  exp::ShardHeader header;
  header.shard = o.shard.index;
  header.n_shards = o.shard.count;
  header.total_runs = grid.size();
  header.fig = o.fig;
  header.seeds = o.seeds > 0 ? o.seeds : exp::bench_seeds();
  out << exp::shard_header_json(header) << '\n';
  out.flush();

  std::vector<exp::ScenarioConfig> cfgs;
  cfgs.reserve(owned.size());
  for (const std::size_t i : owned) cfgs.push_back(grid[i]);

  exp::run_sweep(
      cfgs,
      [&](std::size_t i, const exp::RunResult& r) {
        out << exp::shard_line_json(owned[i], r) << '\n';
        out.flush();
      },
      o.jobs);

  std::fprintf(stderr, "irs_sweep: shard %d/%d of %s: %zu of %zu runs\n",
               o.shard.index, o.shard.count, o.fig.c_str(), owned.size(),
               grid.size());
  return out.good() ? 0 : 1;
}

/// Spawn mode: exec this binary once per shard, wait for all, optionally
/// merge + verify.
int spawn_shards(const Options& o, const char* self) {
  std::vector<pid_t> pids;
  std::vector<std::string> paths;
  for (int s = 0; s < o.spawn_shards; ++s) {
    const std::string shard_arg =
        std::to_string(s) + "/" + std::to_string(o.spawn_shards);
    const std::string path =
        o.out_dir + "/shard" + std::to_string(s) + ".ndjson";
    paths.push_back(path);

    std::vector<std::string> args = {self,     "--fig",    o.fig,
                                     "--shard", shard_arg, "--ndjson", path};
    if (o.seeds > 0) {
      args.push_back("--seeds");
      args.push_back(std::to_string(o.seeds));
    }
    if (o.fast) args.push_back("--fast");
    if (o.jobs > 0) {
      args.push_back("--jobs");
      args.push_back(std::to_string(o.jobs));
    }

    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(self, argv.data());
      std::perror("execv");
      _exit(127);
    }
    pids.push_back(pid);
  }

  bool child_failed = false;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      child_failed = true;
    }
  }
  if (child_failed) {
    std::fprintf(stderr, "irs_sweep: at least one shard failed\n");
    // Fall through to the merge when requested: its verification report
    // and repair plan are exactly what the operator needs now.
    if (o.merge_path.empty()) return 1;
  }

  if (o.merge_path.empty()) return 0;

  const exp::MergeReport rep = exp::merge_shards(paths);
  std::ofstream out(o.merge_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 o.merge_path.c_str());
    return 1;
  }
  exp::write_merged_ndjson(out, rep);
  out.close();
  std::cout << exp::merge_summary_json(rep) << '\n';
  const std::string plan = exp::repair_plan(rep);
  if (!plan.empty()) std::cout << plan;
  return rep.status;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--fig") {
      o.fig = next();
    } else if (arg == "--seeds") {
      o.seeds = std::atoi(next());
      if (o.seeds <= 0) usage(argv[0]);
    } else if (arg == "--fast") {
      o.fast = true;
    } else if (arg == "--shard") {
      if (!exp::parse_shard_spec(next(), &o.shard)) {
        std::fprintf(stderr, "error: bad --shard '%s' (want i/N)\n", argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--runs") {
      o.have_runs = true;
      if (!parse_runs(next(), &o.runs)) {
        std::fprintf(stderr, "error: bad --runs '%s'\n", argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--ndjson") {
      o.ndjson = next();
    } else if (arg == "--jobs") {
      o.jobs = std::atoi(next());
      if (o.jobs <= 0) usage(argv[0]);
    } else if (arg == "--shards") {
      o.spawn_shards = std::atoi(next());
      if (o.spawn_shards <= 0) usage(argv[0]);
    } else if (arg == "--out-dir") {
      o.out_dir = next();
    } else if (arg == "--merge") {
      o.merge_path = next();
    } else if (arg == "--list") {
      list = true;
    } else {
      usage(argv[0]);
    }
  }

  if (list) {
    for (const std::string& name : irs::exp::figure_grid_names()) {
      const auto grid = irs::exp::figure_grid(name, {o.seeds, o.fast});
      std::printf("%-8s %zu runs\n", name.c_str(), grid.size());
    }
    return 0;
  }
  if (o.fig.empty()) usage(argv[0]);
  if (o.spawn_shards > 0) {
    if (o.have_runs || o.shard.count != 1) usage(argv[0]);
    return spawn_shards(o, argv[0]);
  }
  return run_shard(o);
}
