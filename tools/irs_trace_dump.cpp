// irs_trace_dump — run one scenario with tracing enabled and convert the
// trace to Chrome trace-event JSON (open in chrome://tracing or Perfetto).
//
//   $ ./tools/irs_trace_dump [options] [out.json]
//
// Options (defaults mirror examples/quickstart):
//   --fg NAME        foreground workload           (streamcluster)
//   --bg NAME        interference; "" = run alone  (hog)
//   --strategy NAME  Xen|PLE|Relaxed-Co|IRS|Delay-Preempt|IRS-Pull  (IRS)
//   --inter N        #interfered vCPUs             (1)
//   --bg-vms N       #interfering VMs              (1)
//   --seed N         base seed                     (1)
//   --capacity N     trace ring capacity           (65536)
//   --batch N        staging-buffer batch size     (default)
//   --summary        also print the RunResult as JSON on stdout
//   --guest-lanes    add per-vCPU guest task lanes + migration arrows
//   --counters       add sampler counter tracks ("C" events)
//   --attribution    print the per-task interference breakdown (stdout)
//   --slo            add per-window SLO counter tracks (p50/p99/p999 ms +
//                    error-budget burn) and print the window table (stdout;
//                    server foregrounds only — specjbb/ab)
//   --forensics      per-request causal forensics: request lanes + per-cause
//                    "why:" counter tracks in the timeline, plus per-class
//                    cause-total tables and ranked root-cause tables for
//                    every SLO-violating window (stdout; server foregrounds)
//   --frontend       print the open-loop front-end conservation ledger
//                    (arrivals/accepted/completed/dropped/shed, queue depth
//                    and wait; stdout; --fg frontend only)
//   --fe-arrival K   front-end arrival process: poisson|mmpp|diurnal
//   --fe-rate HZ     front-end base arrival rate (requests/sim-second)
//   --fe-overload K  front-end overload policy: drop|admit|shed
//   --fe-queue-cap N front-end accept-queue bound
//   --no-keepalive   front-end: re-establish the connection per request
//   --cluster        run the 2-host cluster scenario instead of one host:
//                    the fg VM protected on host 0, each --bg VM a
//                    migratable hog the placement policy admits; writes one
//                    timeline per host (out.json, out.host1.json, ...) and
//                    prints the placement/migration ledger (stdout)
//   --cluster-hosts N   cluster size (implies --cluster; default 2)
//   --cluster-policy K  placement policy: random|firstfit|irs (implies
//                       --cluster; default irs)
//   --csv            print the --slo window and --forensics tables as CSV
//                    instead of fixed-width text
//
// Writes the timeline JSON to the output path (default trace.json) and
// prints a one-line summary (records, span, drops) to stderr.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/cluster/scheduler.h"
#include "src/core/strategy.h"
#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/obs/attribution.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/forensics.h"

namespace {

using namespace irs;

void print_table(const exp::Table& t, bool csv) {
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

/// Per-class cause totals (largest first) and, per violating window, the
/// causes ranked by how much of the violating requests' latency they explain.
void print_forensics(const obs::ForensicsResult& f, bool csv) {
  for (const obs::ForensicsClassResult& c : f.classes) {
    std::printf("forensics class %s: %llu spans (%llu truncated, %llu open), "
                "%zu violating windows\n",
                c.name.c_str(), static_cast<unsigned long long>(c.spans),
                static_cast<unsigned long long>(c.truncated),
                static_cast<unsigned long long>(c.open), c.windows.size());
    std::int64_t grand = 0;
    for (int i = 0; i < obs::kNumCauses; ++i) {
      grand += c.cause_total(static_cast<obs::Cause>(i));
    }
    std::vector<int> order(obs::kNumCauses);
    for (int i = 0; i < obs::kNumCauses; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return c.cause_total(static_cast<obs::Cause>(a)) >
             c.cause_total(static_cast<obs::Cause>(b));
    });
    exp::Table totals({"cause", "total_ms", "share", "mean_us", "max_ms"});
    for (int i : order) {
      const auto cause = static_cast<obs::Cause>(i);
      const obs::LatencyHistogram& h = c.causes[i];
      const sim::Duration total = c.cause_total(cause);
      const double share =
          grand > 0 ? 100.0 * static_cast<double>(total) /
                          static_cast<double>(grand)
                    : 0.0;
      totals.add_row({obs::cause_name(cause), exp::fmt_ms(total),
                      exp::fmt_pct(share),
                      exp::fmt_f(h.count() > 0 ? sim::to_us(total) /
                                                     static_cast<double>(
                                                         h.count())
                                               : 0.0,
                                 1),
                      exp::fmt_ms(h.max())});
    }
    print_table(totals, csv);
    if (c.windows.empty()) continue;
    std::printf("violating windows (latency of violating requests, by "
                "cause):\n");
    std::vector<std::string> heads = {"window", "t_start", "requests",
                                      "violations", "top"};
    for (int i = 0; i < obs::kNumCauses; ++i) {
      heads.push_back(std::string(obs::cause_name(static_cast<obs::Cause>(i)))
                      + "_ms");
    }
    exp::Table wins(std::move(heads));
    for (const obs::ForensicsWindow& win : c.windows) {
      int top = 0;
      for (int i = 1; i < obs::kNumCauses; ++i) {
        if (win.causes[i] > win.causes[top]) top = i;
      }
      std::vector<std::string> row = {
          std::to_string(win.index), exp::fmt_ms(win.index * f.window),
          std::to_string(win.requests), std::to_string(win.violations),
          obs::cause_name(static_cast<obs::Cause>(top))};
      for (int i = 0; i < obs::kNumCauses; ++i) {
        row.push_back(exp::fmt_ms(win.causes[i]));
      }
      wins.add_row(std::move(row));
    }
    print_table(wins, csv);
  }
}

/// The front-end conservation ledger as one fixed-width (or CSV) table.
void print_frontend(const obs::FrontendResult& f, bool csv) {
  std::printf("frontend: %llu arrivals == %llu completed + %llu tail-drop + "
              "%llu admit-reject + %llu shed + %llu in-flight\n",
              static_cast<unsigned long long>(f.arrivals),
              static_cast<unsigned long long>(f.completed),
              static_cast<unsigned long long>(f.tail_dropped),
              static_cast<unsigned long long>(f.admit_rejected),
              static_cast<unsigned long long>(f.shed),
              static_cast<unsigned long long>(f.in_flight));
  exp::Table t({"metric", "value"});
  const auto row = [&t](const char* k, std::uint64_t v) {
    t.add_row({k, std::to_string(v)});
  };
  row("arrivals", f.arrivals);
  row("accepted", f.accepted);
  row("completed", f.completed);
  row("tail_dropped", f.tail_dropped);
  row("admit_rejected", f.admit_rejected);
  row("shed", f.shed);
  row("in_flight", f.in_flight);
  row("conn_setups", f.conn_setups);
  row("keepalive_reuses", f.keepalive_reuses);
  row("max_queue_depth", f.max_queue_depth);
  t.add_row({"queue_wait_total", exp::fmt_ms(f.queue_wait_total)});
  t.add_row({"queue_wait_max", exp::fmt_ms(f.queue_wait_max)});
  print_table(t, csv);
}

/// The cluster placement/migration ledger: run-wide counters plus one row
/// per host (see src/obs/cluster_stats.h for the conservation identities).
void print_cluster(const obs::ClusterResult& c, bool csv) {
  std::printf("cluster: %u hosts, policy %s — %llu VMs (%llu migratable), "
              "%llu decisions, %llu migrations (%.2fms downtime), %llu in "
              "transit at end\n",
              c.n_hosts,
              cluster::policy_name(static_cast<cluster::Policy>(c.policy)),
              static_cast<unsigned long long>(c.vms),
              static_cast<unsigned long long>(c.migratable),
              static_cast<unsigned long long>(c.decisions),
              static_cast<unsigned long long>(c.migrations),
              sim::to_ms(c.downtime_total),
              static_cast<unsigned long long>(c.in_transit_end));
  exp::Table t({"host", "placed", "migr_in", "migr_out", "active_end",
                "samples", "lhp", "lwp", "steal_ms"});
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    const obs::ClusterHostLedger& hl = c.hosts[h];
    t.add_row({std::to_string(h), std::to_string(hl.placed),
               std::to_string(hl.migr_in), std::to_string(hl.migr_out),
               std::to_string(hl.active_end), std::to_string(hl.samples),
               std::to_string(hl.lhp), std::to_string(hl.lwp),
               exp::fmt_ms(hl.steal)});
  }
  print_table(t, csv);
}

/// Per-host output path: "trace.json" -> "trace.host1.json".
std::string host_path(const std::string& base, std::size_t h) {
  const std::string suffix = ".host" + std::to_string(h);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos) return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

bool parse_strategy(const std::string& name, core::Strategy* out) {
  const core::Strategy all[] = {
      core::Strategy::kBaseline,     core::Strategy::kPle,
      core::Strategy::kRelaxedCo,    core::Strategy::kIrs,
      core::Strategy::kDelayPreempt, core::Strategy::kIrsPull};
  for (const core::Strategy s : all) {
    if (name == core::strategy_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fg NAME] [--bg NAME] [--strategy NAME] "
               "[--inter N] [--bg-vms N] [--seed N] [--capacity N] "
               "[--batch N] "
               "[--summary] [--guest-lanes] [--counters] [--attribution] "
               "[--slo] [--forensics] [--frontend] [--fe-arrival K] "
               "[--fe-rate HZ] [--fe-overload K] [--fe-queue-cap N] "
               "[--no-keepalive] [--cluster] [--cluster-hosts N] "
               "[--cluster-policy K] [--csv] [out.json]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  exp::ScenarioConfig cfg;
  cfg.strategy = core::Strategy::kIrs;
  cfg.trace_capacity = 1 << 16;
  std::string out_path = "trace.json";
  bool print_summary = false;
  bool guest_lanes = false;
  bool counters = false;
  bool attribution = false;
  bool slo = false;
  bool forensics = false;
  bool frontend = false;
  bool cluster_mode = false;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--fg") {
      cfg.fg = next();
    } else if (arg == "--bg") {
      cfg.bg = next();
    } else if (arg == "--strategy") {
      if (!parse_strategy(next(), &cfg.strategy)) {
        std::fprintf(stderr, "unknown strategy '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--inter") {
      cfg.n_inter = std::atoi(next());
    } else if (arg == "--bg-vms") {
      cfg.n_bg_vms = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--capacity") {
      cfg.trace_capacity = static_cast<std::size_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (arg == "--batch") {
      cfg.trace_batch = static_cast<std::size_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (arg == "--summary") {
      print_summary = true;
    } else if (arg == "--guest-lanes") {
      guest_lanes = true;
    } else if (arg == "--counters") {
      counters = true;
    } else if (arg == "--attribution") {
      attribution = true;
    } else if (arg == "--slo") {
      slo = true;
    } else if (arg == "--forensics") {
      forensics = true;
    } else if (arg == "--frontend") {
      frontend = true;
    } else if (arg == "--fe-arrival") {
      cfg.fe_arrival = next();
    } else if (arg == "--fe-rate") {
      cfg.fe_rate_hz = std::atof(next());
    } else if (arg == "--fe-overload") {
      cfg.fe_overload = next();
    } else if (arg == "--fe-queue-cap") {
      cfg.fe_queue_cap = std::atoi(next());
    } else if (arg == "--no-keepalive") {
      cfg.fe_keepalive = false;
    } else if (arg == "--cluster") {
      cluster_mode = true;
    } else if (arg == "--cluster-hosts") {
      cfg.cluster.n_hosts = std::atoi(next());
      cluster_mode = true;
    } else if (arg == "--cluster-policy") {
      cfg.cluster.policy = next();
      cluster_mode = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      out_path = arg;
    }
  }

  cfg.forensics = forensics && !cluster_mode;
  if (cluster_mode && cfg.cluster.n_hosts < 2) cfg.cluster.n_hosts = 2;

  exp::TraceDump dump;
  std::vector<exp::TraceDump> host_dumps;
  exp::RunCapture cap;
  cap.dump = &dump;
  if (cluster_mode) cap.host_dumps = &host_dumps;
  const exp::RunResult r = exp::run_scenario(cfg, cap);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  obs::ChromeTraceOptions opt;
  opt.guest_lanes = guest_lanes;
  if (counters) opt.counters = &dump.series;
  if (slo) opt.slo = &dump.slo;
  if (forensics) {
    opt.request_lanes = true;
    opt.forensics = &dump.forensics;
  }
  out << obs::chrome_trace_json(dump.records, dump.meta, opt);
  out.close();
  if (out.fail()) {
    std::fprintf(stderr, "error: write to %s failed\n", out_path.c_str());
    return 1;
  }
  // Cluster mode: one timeline per additional host (host 0 == out_path).
  for (std::size_t h = 1; h < host_dumps.size(); ++h) {
    const std::string path = host_path(out_path, h);
    std::ofstream hout(path);
    if (!hout) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   path.c_str());
      return 1;
    }
    obs::ChromeTraceOptions hopt;
    hopt.guest_lanes = guest_lanes;
    if (counters) hopt.counters = &host_dumps[h].series;
    hout << obs::chrome_trace_json(host_dumps[h].records, host_dumps[h].meta,
                                   hopt);
    hout.close();
    if (hout.fail()) {
      std::fprintf(stderr, "error: write to %s failed\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "%s: %zu records -> %s\n",
                 host_dumps[h].meta.title.c_str(), host_dumps[h].records.size(),
                 path.c_str());
  }

  if (print_summary) std::printf("%s\n", exp::result_json(r).c_str());
  if (slo) {
    if (dump.slo.empty()) {
      std::fprintf(stderr,
                   "note: no SLO data — --slo needs a server foreground "
                   "(--fg specjbb or --fg ab)\n");
    } else {
      for (const obs::SloClassResult& c : dump.slo.classes) {
        std::printf("slo class %s: threshold %.2fms objective %g — %llu "
                    "requests, %llu violations\n",
                    c.name.c_str(), sim::to_ms(c.spec.threshold),
                    c.spec.objective,
                    static_cast<unsigned long long>(c.total.count()),
                    static_cast<unsigned long long>(c.violations()));
        exp::Table t({"window", "t_start", "count", "viol", "p50", "p99",
                      "p999", "burn"});
        for (const obs::SloWindow& win : c.windows) {
          t.add_row({std::to_string(win.index),
                     exp::fmt_ms(win.index * dump.slo.window),
                     std::to_string(win.count), std::to_string(win.violations),
                     exp::fmt_ms(win.p50), exp::fmt_ms(win.p99),
                     exp::fmt_ms(win.p999),
                     exp::fmt_f(obs::burn_rate(win, c.spec), 2)});
        }
        print_table(t, csv);
      }
    }
  }
  if (forensics) {
    if (dump.forensics.empty()) {
      std::fprintf(stderr,
                   "note: no forensics data — --forensics needs a server "
                   "foreground (--fg specjbb or --fg ab)\n");
    } else {
      print_forensics(dump.forensics, csv);
    }
  }
  if (frontend) {
    if (r.frontend.empty()) {
      std::fprintf(stderr,
                   "note: no front-end data — --frontend needs the open-loop "
                   "foreground (--fg frontend)\n");
    } else {
      print_frontend(r.frontend, csv);
    }
  }
  if (cluster_mode) print_cluster(r.cluster, csv);
  if (attribution) {
    const obs::AttributionResult a = obs::attribute(dump.records, dump.meta);
    exp::print_attribution(std::cout, a);
  }
  std::fprintf(stderr,
               "%s: %zu records over %.2f ms (%llu of %llu dropped) -> %s\n",
               dump.meta.title.c_str(), dump.records.size(),
               sim::to_ms(dump.meta.end - dump.meta.start),
               static_cast<unsigned long long>(dump.meta.dropped),
               static_cast<unsigned long long>(dump.meta.total_recorded),
               out_path.c_str());
  return 0;
}
