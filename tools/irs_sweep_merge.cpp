// irs_sweep_merge — reassemble sharded sweep NDJSON files into the result
// stream a single-process run would have produced, and verify the merge.
//
//   $ irs_sweep_merge --out fig05.ndjson shard0.ndjson ... shard7.ndjson
//   {"status":0,"ok":true,...}
//
// The one-line summary JSON on stdout is machine-readable; the exit code
// is the OR of the MergeStatus bits in src/exp/shard.h (0 = clean merge,
// 64 = usage error). With --repair-plan, the exact `irs_sweep` rerun
// commands for missing/conflicted runs are printed after the summary.
//
// Options:
//   --out PATH       write the merged canonical NDJSON here
//   --repair-plan    print rerun commands for anything missing/in doubt
//   --expect M       require exactly M total runs (overrides headers)
//   --shards N       require exactly N shards (overrides headers)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/shard.h"

namespace {

constexpr int kExitUsage = 64;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--repair-plan] [--expect M]\n"
               "          [--shards N] shard0.ndjson [shard1.ndjson ...]\n",
               argv0);
  std::exit(kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace irs;

  std::string out_path;
  bool want_plan = false;
  exp::MergeOptions opt;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--repair-plan") {
      want_plan = true;
    } else if (arg == "--expect") {
      const long long v = std::atoll(next());
      if (v <= 0) usage(argv[0]);
      opt.expect_runs = static_cast<std::uint64_t>(v);
    } else if (arg == "--shards") {
      opt.expect_shards = std::atoi(argv[i + 1]);
      ++i;
      if (opt.expect_shards <= 0) usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) usage(argv[0]);

  const exp::MergeReport rep = exp::merge_shards(paths, opt);

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   out_path.c_str());
      return kExitUsage;
    }
    exp::write_merged_ndjson(out, rep);
    if (!out.good()) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path.c_str());
      return kExitUsage;
    }
  }

  std::cout << exp::merge_summary_json(rep) << '\n';
  for (const std::string& e : rep.errors) {
    std::fprintf(stderr, "irs_sweep_merge: %s\n", e.c_str());
  }
  if (want_plan) {
    const std::string plan = exp::repair_plan(rep);
    if (!plan.empty()) std::cout << plan;
  }
  return rep.status;
}
