// irs_sweep_merge — reassemble sharded sweep NDJSON files into the result
// stream a single-process run would have produced, and verify the merge.
//
//   $ irs_sweep_merge --out fig05.ndjson shard0.ndjson ... shard7.ndjson
//   {"status":0,"ok":true,...}
//
// The one-line summary JSON on stdout is machine-readable; the exit code
// is the OR of the MergeStatus bits in src/exp/shard.h (0 = clean merge,
// 64 = usage error). With --repair-plan, the exact `irs_sweep` rerun
// commands for missing/conflicted runs are printed after the summary.
//
// Options:
//   --out PATH       write the merged canonical NDJSON here
//   --repair-plan    print rerun commands for anything missing/in doubt
//   --expect M       require exactly M total runs (overrides headers)
//   --shards N       require exactly N shards (overrides headers)
//   --stats          after the verified merge, print a second stdout line
//                    of streaming aggregate statistics (exp::SweepStats)
//                    over the merged runs
//   --stats-only     skip the merge entirely: fold every input line
//                    through the streaming accumulator and print only the
//                    stats line. O(1) memory in the number of runs — no
//                    result vector is materialised — but also no
//                    dedup/verification, so feed it already-verified files
//                    (e.g. the --out of a previous clean merge).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/shard.h"
#include "src/exp/stats.h"

namespace {

constexpr int kExitUsage = 64;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--repair-plan] [--expect M]\n"
               "          [--shards N] [--stats | --stats-only]\n"
               "          shard0.ndjson [shard1.ndjson ...]\n",
               argv0);
  std::exit(kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace irs;

  std::string out_path;
  bool want_plan = false;
  bool want_stats = false;
  bool stats_only = false;
  exp::MergeOptions opt;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--repair-plan") {
      want_plan = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--stats-only") {
      stats_only = true;
    } else if (arg == "--expect") {
      const long long v = std::atoll(next());
      if (v <= 0) usage(argv[0]);
      opt.expect_runs = static_cast<std::uint64_t>(v);
    } else if (arg == "--shards") {
      opt.expect_shards = std::atoi(argv[i + 1]);
      ++i;
      if (opt.expect_shards <= 0) usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) usage(argv[0]);
  if (stats_only && (want_stats || want_plan || !out_path.empty())) {
    usage(argv[0]);
  }

  if (stats_only) {
    // Pure streaming path: one RunResult of state, never a vector.
    exp::SweepStats stats;
    int status = 0;
    for (const std::string& path : paths) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "irs_sweep_merge: cannot read %s\n",
                     path.c_str());
        status |= exp::kMergeBadFile;
        continue;
      }
      const exp::NdjsonFoldReport fold = exp::fold_ndjson_stream(in, &stats);
      for (const std::string& e : fold.errors) {
        std::fprintf(stderr, "irs_sweep_merge: %s: %s\n", path.c_str(),
                     e.c_str());
      }
      if (fold.truncated_traces > 0) {
        std::fprintf(stderr,
                     "irs_sweep_merge: warning: %s: %llu run(s) had a "
                     "truncated trace ring (trace_dropped > 0); their "
                     "timeline-derived stats are partial\n",
                     path.c_str(),
                     static_cast<unsigned long long>(fold.truncated_traces));
      }
      if (!fold.ok()) status |= exp::kMergeBadFile;
    }
    std::cout << exp::sweep_stats_json(stats) << '\n';
    return status;
  }

  const exp::MergeReport rep = exp::merge_shards(paths, opt);

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   out_path.c_str());
      return kExitUsage;
    }
    exp::write_merged_ndjson(out, rep);
    if (!out.good()) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path.c_str());
      return kExitUsage;
    }
  }

  std::cout << exp::merge_summary_json(rep) << '\n';
  if (want_stats) {
    exp::SweepStats stats;
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
      if (rep.present[i]) stats.add(rep.results[i]);
    }
    std::cout << exp::sweep_stats_json(stats) << '\n';
  }
  for (const std::string& e : rep.errors) {
    std::fprintf(stderr, "irs_sweep_merge: %s\n", e.c_str());
  }
  if (!rep.truncated_trace_runs.empty()) {
    std::fprintf(stderr,
                 "irs_sweep_merge: warning: %zu merged run(s) had a "
                 "truncated trace ring (trace_dropped > 0); their "
                 "timeline-derived stats are partial\n",
                 rep.truncated_trace_runs.size());
  }
  if (want_plan) {
    const std::string plan = exp::repair_plan(rep);
    if (!plan.empty()) std::cout << plan;
  }
  return rep.status;
}
