// Ablation / validation of the paper's §3.1 overhead claim: SA processing
// adds 20-26 us of preemption delay, negligible against 30 ms slices.
// Also sweeps the hard acknowledgement cap to show the defence against
// rogue guests costs nothing for well-behaved ones.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();

  exp::banner(std::cout, "SA processing delay per application (paper: 20-26us)");
  exp::Table t({"app", "SAs sent", "SAs acked", "avg ack delay",
                "delay / 30ms slice"});
  for (const char* app :
       {"streamcluster", "fluidanimate", "x264", "UA", "MG", "specjbb"}) {
    bench::PanelOptions o;
    exp::ScenarioConfig cfg =
        bench::make_cfg(app, core::Strategy::kIrs, 1, o);
    const exp::RunResult r = exp::run_averaged(cfg, seeds);
    t.add_row({app, std::to_string(r.sa_sent), std::to_string(r.sa_acked),
               exp::fmt_us(r.sa_delay_avg),
               exp::fmt_f(sim::to_us(r.sa_delay_avg) / 30000.0 * 100.0, 3) +
                   "%"});
  }
  t.print(std::cout);

  exp::banner(std::cout, "SA hard-cap sweep (streamcluster, 1-inter)");
  exp::Table c({"ack cap", "makespan", "SAs acked", "SAs forced"});
  for (const long cap_us : {15L, 30L, 100L, 1000L}) {
    bench::PanelOptions o;
    exp::ScenarioConfig cfg =
        bench::make_cfg("streamcluster", core::Strategy::kIrs, 1, o);
    cfg.hv.sa_ack_cap = sim::microseconds(cap_us);
    const exp::RunResult r = exp::run_averaged(cfg, seeds);
    c.add_row({std::to_string(cap_us) + "us", exp::fmt_ms(r.fg_makespan),
               std::to_string(r.sa_acked),
               std::to_string(r.sa_sent - r.sa_acked)});
  }
  c.print(std::cout);
  return 0;
}
