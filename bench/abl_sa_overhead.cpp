// Ablation / validation of the paper's §3.1 overhead claim: SA processing
// adds 20-26 us of preemption delay, negligible against 30 ms slices.
// Also sweeps the hard acknowledgement cap to show the defence against
// rogue guests costs nothing for well-behaved ones.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();

  // Both tables are one combined sweep.
  bench::SweepGrid grid;
  const std::vector<std::string> apps = {"streamcluster", "fluidanimate",
                                         "x264", "UA", "MG", "specjbb"};
  std::vector<std::size_t> delay_cells;
  for (const auto& app : apps) {
    bench::PanelOptions o;
    delay_cells.push_back(
        grid.add(bench::make_cfg(app, core::Strategy::kIrs, 1, o), seeds));
  }

  const std::vector<long> caps_us = {15L, 30L, 100L, 1000L};
  std::vector<std::size_t> cap_cells;
  for (const long cap_us : caps_us) {
    bench::PanelOptions o;
    exp::ScenarioConfig cfg =
        bench::make_cfg("streamcluster", core::Strategy::kIrs, 1, o);
    cfg.hv.sa_ack_cap = sim::microseconds(cap_us);
    cap_cells.push_back(grid.add(cfg, seeds));
  }
  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file

  exp::banner(std::cout,
              "SA processing delay per application (paper: 20-26us)");
  exp::Table t({"app", "SAs sent", "SAs acked", "avg ack delay",
                "delay / 30ms slice"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const exp::RunResult r = grid.avg(delay_cells[i]);
    t.add_row({apps[i], std::to_string(r.sa_sent),
               std::to_string(r.sa_acked), exp::fmt_us(r.sa_delay_avg),
               exp::fmt_f(sim::to_us(r.sa_delay_avg) / 30000.0 * 100.0, 3) +
                   "%"});
  }
  t.print(std::cout);

  exp::banner(std::cout, "SA hard-cap sweep (streamcluster, 1-inter)");
  exp::Table c({"ack cap", "makespan", "SAs acked", "SAs forced"});
  for (std::size_t i = 0; i < caps_us.size(); ++i) {
    const exp::RunResult r = grid.avg(cap_cells[i]);
    c.add_row({std::to_string(caps_us[i]) + "us",
               exp::fmt_ms(r.fg_makespan), std::to_string(r.sa_acked),
               std::to_string(r.sa_sent - r.sa_acked)});
  }
  c.print(std::cout);
  return 0;
}
