// Figure 12 — NPB performance under CPU stacking: all vCPUs of both VMs
// unpinned on 4 pCPUs, 4-inter CPU hogs. Utilisation-driven, VM-oblivious
// vCPU placement stacks sibling vCPUs; all three strategies help spinning
// workloads here, IRS most.
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/npb.h"

int main() {
  using namespace irs;
  bench::PanelOptions o;
  o.bg = "hog";
  o.pinned = false;
  o.inter_levels = {4};
  o.npb_spinning = true;
  bench::improvement_panel(
      "Figure 12: NPB under CPU stacking (unpinned, 4-inter hogs)",
      wl::npb_names(), o);
  return 0;
}
