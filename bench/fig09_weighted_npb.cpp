// Figure 9 — system-wide weighted speedup for NPB (spinning) with real
// application interference (LU and UA backgrounds).
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/npb.h"

int main() {
  using namespace irs;
  const auto apps = wl::npb_names();

  bench::PanelOptions o;
  o.npb_spinning = true;
  o.bg = "LU";
  bench::weighted_panel(
      "Figure 9(a): weighted speedup, NPB w/ LU background", apps, o);

  if (std::getenv("IRS_BENCH_FAST") == nullptr) {
    o.bg = "UA";
    bench::weighted_panel(
        "Figure 9(b): weighted speedup, NPB w/ UA background", apps, o);
  }
  return 0;
}
