// Cluster figure — the two-host virtual datacenter. A protected "ab"
// server fixed on host 0 and 1..4 migratable two-vCPU hog VMs, admitted by
// each placement policy (random / first-fit / IRS-informed). The IRS
// policy additionally live-migrates the noisiest co-tenant off host 0 when
// the protected VM burns steal budget, so its tail should sit below the
// placement-only baselines once interference crowds host 0 (>= 2 hogs).
// Cells mirror exp::figure_grid("fig_cluster") so `irs_sweep --fig
// fig_cluster` shards the same grid.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();

  exp::banner(std::cout,
              "Cluster: fg p999 and migration activity by placement policy "
              "(2 hosts, ab + N hog VMs)");
  exp::banner(std::cerr, "(running...)");

  bench::SweepGrid grid;
  grid.set_fig("fig_cluster");
  struct Point {
    std::size_t base;
    std::size_t irs;
  };
  const std::vector<std::string> policies = {"random", "firstfit", "irs"};
  std::vector<std::vector<Point>> points;  // [policy][hogs-1]
  for (const auto& pol : policies) {
    std::vector<Point> row;
    for (int n = 1; n <= 4; ++n) {
      Point p{};
      for (const bool is_irs : {false, true}) {
        bench::PanelOptions o;
        exp::ScenarioConfig cfg = bench::make_cfg(
            "ab", is_irs ? core::Strategy::kIrs : core::Strategy::kBaseline,
            2, o);
        cfg.server_duration = sim::seconds(2);
        cfg.n_bg_vms = n;
        cfg.cluster.n_hosts = 2;
        cfg.cluster.policy = pol;
        (is_irs ? p.irs : p.base) = grid.add(cfg, seeds);
      }
      row.push_back(p);
    }
    points.push_back(std::move(row));
  }
  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file

  exp::Table t({"policy", "hogs", "strategy", "p999", "thr", "migr",
                "decisions", "downtime", "steal(host0)"});
  for (std::size_t a = 0; a < policies.size(); ++a) {
    for (std::size_t n = 0; n < points[a].size(); ++n) {
      const Point& p = points[a][n];
      for (const bool is_irs : {false, true}) {
        const exp::RunResult r = grid.avg(is_irs ? p.irs : p.base);
        const obs::ClusterResult& c = r.cluster;
        const sim::Duration steal0 =
            c.hosts.empty() ? 0 : c.hosts.front().steal;
        t.add_row({policies[a], std::to_string(n + 1),
                   is_irs ? "IRS" : "Baseline", exp::fmt_ms(r.lat_p999),
                   exp::fmt_f(r.throughput, 0),
                   std::to_string(c.migrations),
                   std::to_string(c.decisions), exp::fmt_ms(c.downtime_total),
                   exp::fmt_ms(steal0)});
      }
    }
  }
  t.print(std::cout);

  // Head-to-head: per hog count, the IRS placement policy's p999 vs the
  // placement-only baselines (per-host scheduling fixed at Baseline so the
  // delta is the cluster scheduler's alone).
  exp::banner(std::cout, "Cluster: p999 by policy (per-host Baseline)");
  exp::Table h2h({"hogs", "random", "firstfit", "irs", "irs vs random"});
  for (std::size_t n = 0; n < points[0].size(); ++n) {
    const double rnd =
        static_cast<double>(grid.avg(points[0][n].base).lat_p999);
    const double ff =
        static_cast<double>(grid.avg(points[1][n].base).lat_p999);
    const double irs =
        static_cast<double>(grid.avg(points[2][n].base).lat_p999);
    h2h.add_row({std::to_string(n + 1),
                 exp::fmt_ms(static_cast<sim::Duration>(rnd)),
                 exp::fmt_ms(static_cast<sim::Duration>(ff)),
                 exp::fmt_ms(static_cast<sim::Duration>(irs)),
                 exp::fmt_pct(core::improvement_pct(rnd, irs))});
  }
  h2h.print(std::cout);
  return 0;
}
