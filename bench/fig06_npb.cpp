// Figure 6 — NPB performance improvement (spinning synchronisation,
// OMP_WAIT_POLICY=active) under PLE / Relaxed-Co / IRS with (a) CPU hogs,
// (b) UA, (c) LU as interference.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/npb.h"

int main() {
  using namespace irs;
  const auto apps = wl::npb_names();

  bench::PanelOptions o;
  o.npb_spinning = true;
  o.bg = "hog";
  bench::improvement_panel(
      "Figure 6(a): NPB improvement w/ micro-benchmark interference", apps,
      o);

  if (std::getenv("IRS_BENCH_FAST") == nullptr) {
    o.bg = "UA";
    bench::improvement_panel(
        "Figure 6(b): NPB improvement w/ UA interference", apps, o);

    o.bg = "LU";
    bench::improvement_panel(
        "Figure 6(c): NPB improvement w/ LU interference", apps, o);
  }
  return 0;
}
