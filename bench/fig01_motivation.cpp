// Figure 1 — motivation.
// (a) Slowdown of parallel programs when one of four vCPUs is interfered:
//     blocking (fluidanimate) and spinning (UA) suffer; work-stealing
//     (raytrace) is resilient.
// (b) Stop-based process-migration latency from a contended vCPU grows by
//     roughly one scheduling slice per co-located CPU-bound VM
//     (paper: 1 ms / 26.4 ms / 53.2 ms / 79.8 ms).
#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/scenarios.h"

int main() {
  using namespace irs;

  exp::banner(std::cout, "Figure 1(a): slowdown under 1-vCPU interference");
  exp::Table a({"app", "sync style", "slowdown vs alone"});
  const int seeds = exp::bench_seeds();
  struct Row {
    const char* app;
    const char* style;
  };
  for (const Row& r : {Row{"fluidanimate", "blocking"}, Row{"UA", "spinning"},
                       Row{"raytrace", "user-level work stealing"}}) {
    double slow = 0;
    for (int s = 0; s < seeds; ++s) {
      slow += exp::fig1a_slowdown(r.app, 33 + 7 * static_cast<unsigned>(s));
    }
    a.add_row({r.app, r.style, exp::fmt_f(slow / seeds, 2) + "x"});
  }
  a.print(std::cout);

  exp::banner(std::cout,
              "Figure 1(b): process-migration latency vs co-located VMs");
  exp::Table b({"co-located VMs", "mean latency", "max latency"});
  const char* labels[] = {"alone", "1 VM", "2 VMs", "3 VMs"};
  for (int n = 0; n <= 3; ++n) {
    const auto r = exp::fig1b_migration_latency(n, 30, 11);
    b.add_row({labels[n], exp::fmt_f(r.mean_ms, 1) + "ms",
               exp::fmt_f(r.max_ms, 1) + "ms"});
  }
  b.print(std::cout);
  return 0;
}
