// Figure 1 — motivation.
// (a) Slowdown of parallel programs when one of four vCPUs is interfered:
//     blocking (fluidanimate) and spinning (UA) suffer; work-stealing
//     (raytrace) is resilient.
// (b) Stop-based process-migration latency from a contended vCPU grows by
//     roughly one scheduling slice per co-located CPU-bound VM
//     (paper: 1 ms / 26.4 ms / 53.2 ms / 79.8 ms).
#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/scenarios.h"

int main() {
  using namespace irs;

  exp::banner(std::cout, "Figure 1(a): slowdown under 1-vCPU interference");
  exp::Table a({"app", "sync style", "slowdown vs alone"});
  const int seeds = exp::bench_seeds();
  struct Row {
    const char* app;
    const char* style;
  };
  const std::vector<Row> rows = {Row{"fluidanimate", "blocking"},
                                 Row{"UA", "spinning"},
                                 Row{"raytrace", "user-level work stealing"}};

  // Every (app, seed) experiment is independent: flatten the grid and let
  // the sweep pool run it; results land in fixed slots so the averages are
  // identical to the serial loop's.
  std::vector<double> slowdowns(rows.size() *
                                static_cast<std::size_t>(seeds));
  exp::parallel_for(slowdowns.size(), [&](std::size_t i) {
    const std::size_t app_i = i / static_cast<std::size_t>(seeds);
    const std::size_t s = i % static_cast<std::size_t>(seeds);
    slowdowns[i] = exp::fig1a_slowdown(rows[app_i].app,
                                       33 + 7 * static_cast<unsigned>(s));
  });
  for (std::size_t app_i = 0; app_i < rows.size(); ++app_i) {
    double slow = 0;
    for (int s = 0; s < seeds; ++s) {
      slow += slowdowns[app_i * static_cast<std::size_t>(seeds) +
                        static_cast<std::size_t>(s)];
    }
    a.add_row({rows[app_i].app, rows[app_i].style,
               exp::fmt_f(slow / seeds, 2) + "x"});
  }
  a.print(std::cout);

  exp::banner(std::cout,
              "Figure 1(b): process-migration latency vs co-located VMs");
  exp::Table b({"co-located VMs", "mean latency", "max latency"});
  const char* labels[] = {"alone", "1 VM", "2 VMs", "3 VMs"};
  std::vector<exp::MigrationLatencyResult> lat(4);
  exp::parallel_for(lat.size(), [&](std::size_t n) {
    lat[n] = exp::fig1b_migration_latency(static_cast<int>(n), 30, 11);
  });
  for (int n = 0; n <= 3; ++n) {
    const auto& r = lat[static_cast<std::size_t>(n)];
    b.add_row({labels[n], exp::fmt_f(r.mean_ms, 1) + "ms",
               exp::fmt_f(r.max_ms, 1) + "ms"});
  }
  b.print(std::cout);
  return 0;
}
