// Figure 7 — system-wide weighted speedup (fg PARSEC + bg real app),
// percent; 100% = parity with vanilla Xen/Linux. Higher is better.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/parsec.h"

int main() {
  using namespace irs;
  const auto apps = wl::parsec_names();

  bench::PanelOptions o;
  o.bg = "fluidanimate";
  bench::weighted_panel(
      "Figure 7(a): weighted speedup, PARSEC w/ fluidanimate background",
      apps, o);

  if (std::getenv("IRS_BENCH_FAST") == nullptr) {
    o.bg = "streamcluster";
    bench::weighted_panel(
        "Figure 7(b): weighted speedup, PARSEC w/ streamcluster background",
        apps, o);
  }
  return 0;
}
