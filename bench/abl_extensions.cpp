// Extension strategies beyond the paper's evaluation:
//  * Delay-Preempt — the Uhlig-style lock-holder preemption-avoidance
//    baseline the paper discusses in §2.2 (guest hints, hypervisor defers
//    preemption of lock holders up to a hard cap);
//  * IRS-Pull — the paper's §6 future-work proposal: purely pull-based
//    rescue of "running" tasks from preempted vCPUs when a guest CPU
//    idles, with no scheduler activations at all.
//
// Expected shape: IRS-Pull tracks IRS for blocking workloads (idle CPUs
// exist to do the pulling) but does nothing for spinning ones (no CPU ever
// idles); Delay-Preempt only addresses LHP for lock-heavy apps and caps
// out quickly because fairness bounds the delay window.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();

  exp::banner(std::cout,
              "Extensions: improvement over vanilla Xen/Linux (1-inter)");
  std::vector<std::string> headers = {"app", "Delay-Preempt", "IRS",
                                      "IRS-Pull"};
  exp::Table t(headers);
  for (const char* app :
       {"x264", "fluidanimate", "streamcluster", "blackscholes", "UA", "MG",
        "EP", "raytrace"}) {
    bench::PanelOptions o;
    // Longer runs give the delay-preemption window enough preemption-in-CS
    // coincidences to matter.
    o.work_scale = 1.0;
    const exp::RunResult base = exp::run_averaged(
        bench::make_cfg(app, core::Strategy::kBaseline, 1, o), seeds);
    std::vector<std::string> row = {app};
    for (const auto s :
         {core::Strategy::kDelayPreempt, core::Strategy::kIrs,
          core::Strategy::kIrsPull}) {
      const exp::RunResult r =
          exp::run_averaged(bench::make_cfg(app, s, 1, o), seeds);
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, r)));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  exp::banner(std::cout, "Extensions at 4-inter (everything contended)");
  exp::Table t4(headers);
  for (const char* app : {"x264", "streamcluster", "UA"}) {
    bench::PanelOptions o;
    o.work_scale = 1.0;
    const exp::RunResult base = exp::run_averaged(
        bench::make_cfg(app, core::Strategy::kBaseline, 4, o), seeds);
    std::vector<std::string> row = {app};
    for (const auto s :
         {core::Strategy::kDelayPreempt, core::Strategy::kIrs,
          core::Strategy::kIrsPull}) {
      const exp::RunResult r =
          exp::run_averaged(bench::make_cfg(app, s, 4, o), seeds);
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, r)));
    }
    t4.add_row(std::move(row));
  }
  t4.print(std::cout);
  return 0;
}
