// Extension strategies beyond the paper's evaluation:
//  * Delay-Preempt — the Uhlig-style lock-holder preemption-avoidance
//    baseline the paper discusses in §2.2 (guest hints, hypervisor defers
//    preemption of lock holders up to a hard cap);
//  * IRS-Pull — the paper's §6 future-work proposal: purely pull-based
//    rescue of "running" tasks from preempted vCPUs when a guest CPU
//    idles, with no scheduler activations at all.
//
// Expected shape: IRS-Pull tracks IRS for blocking workloads (idle CPUs
// exist to do the pulling) but does nothing for spinning ones (no CPU ever
// idles); Delay-Preempt only addresses LHP for lock-heavy apps and caps
// out quickly because fairness bounds the delay window.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace irs;

const std::vector<core::Strategy> kExtensions = {
    core::Strategy::kDelayPreempt, core::Strategy::kIrs,
    core::Strategy::kIrsPull};

struct Row {
  std::string app;
  std::size_t base;
  std::vector<std::size_t> per_strategy;
};

std::vector<Row> register_panel(bench::SweepGrid& grid,
                                const std::vector<std::string>& apps,
                                int n_inter, int seeds) {
  std::vector<Row> rows;
  for (const auto& app : apps) {
    bench::PanelOptions o;
    // Longer runs give the delay-preemption window enough preemption-in-CS
    // coincidences to matter.
    o.work_scale = 1.0;
    Row row;
    row.app = app;
    row.base = grid.add(
        bench::make_cfg(app, core::Strategy::kBaseline, n_inter, o), seeds);
    for (const auto s : kExtensions) {
      row.per_strategy.push_back(
          grid.add(bench::make_cfg(app, s, n_inter, o), seeds));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_panel(const bench::SweepGrid& grid, const std::vector<Row>& rows,
                 const std::vector<std::string>& headers) {
  exp::Table t(headers);
  for (const Row& r : rows) {
    std::vector<std::string> cells = {r.app};
    const exp::RunResult base = grid.avg(r.base);
    for (const std::size_t cell : r.per_strategy) {
      cells.push_back(exp::fmt_pct(exp::improvement_pct(base, grid.avg(cell))));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();
  const std::vector<std::string> headers = {"app", "Delay-Preempt", "IRS",
                                            "IRS-Pull"};

  // Both panels share one sweep: register everything, run once, format.
  bench::SweepGrid grid;
  const auto panel1 = register_panel(
      grid,
      {"x264", "fluidanimate", "streamcluster", "blackscholes", "UA", "MG",
       "EP", "raytrace"},
      1, seeds);
  const auto panel4 =
      register_panel(grid, {"x264", "streamcluster", "UA"}, 4, seeds);
  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file

  exp::banner(std::cout,
              "Extensions: improvement over vanilla Xen/Linux (1-inter)");
  print_panel(grid, panel1, headers);

  exp::banner(std::cout, "Extensions at 4-inter (everything contended)");
  print_panel(grid, panel4, headers);
  return 0;
}
