// google-benchmark micro-benchmarks of the simulator substrate itself:
// event engine throughput, RNG, scheduler hot paths, and whole-simulation
// event rates. These guard against performance regressions that would make
// the figure benches impractically slow.
#include <benchmark/benchmark.h>

#include "src/core/world.h"
#include "src/exp/runner.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/wl/registry.h"

namespace {

using namespace irs;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  sim::Engine eng;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    eng.schedule(1, [&] { ++sink; });
    eng.run_until(eng.now() + 2);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_EngineCancel(benchmark::State& state) {
  sim::Engine eng;
  for (auto _ : state) {
    auto h = eng.schedule(1000, [] {});
    h.cancel();
  }
  // Drain the cancelled shells.
  eng.run_until(eng.now() + 10000);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineCancel);

/// The combined hot-path churn BENCH_sweep.json tracks: each iteration
/// schedules one event that fires and one that is cancelled, then
/// dispatches — 3 engine operations. Exercises slot reuse, shell skipping,
/// and inline callback storage together.
void BM_EngineScheduleCancelDispatch(benchmark::State& state) {
  sim::Engine eng;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    eng.schedule(1, [&] { ++sink; });
    auto h = eng.schedule(1000, [&] { ++sink; });
    h.cancel();
    eng.run_until(eng.now() + 2);
  }
  eng.run_until(eng.now() + 10000);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(3 * state.iterations()));
}
BENCHMARK(BM_EngineScheduleCancelDispatch);

/// Deep-queue behaviour: keep 512 events in flight so extraction walks
/// real structure depth (the slab keeps entries POD-sized; this is where
/// the old std::function heap paid most). Per-backend variants (arg 0:
/// 0=binary, 1=quad, 2=wheel) in two shapes (arg 1):
///   * tight — events 1 ns apart. All land in one wheel bucket slice, so
///     every backend degenerates to its heap; measures pure sift cost on
///     an L1-resident queue.
///   * timer — events 100 µs apart, the dense tick/slice/softirq cadence
///     the wheel is built for: 512 in flight spread ~51 ms across the
///     wheel horizon, so pushes are O(1) bucket appends and pops drain
///     1-2 entry buckets.
void BM_EngineDeepQueue(benchmark::State& state) {
  const auto kind = static_cast<sim::QueueKind>(state.range(0));
  const sim::Duration spacing =
      state.range(1) == 0 ? 1 : sim::microseconds(100);
  const std::size_t batch =
      state.range(2) == 0 ? 1 : sim::kDefaultDispatchBatch;
  sim::Engine eng(kind);
  eng.set_dispatch_batch(batch);
  std::uint64_t sink = 0;
  for (int i = 0; i < 512; ++i) {
    eng.schedule((i + 1) * spacing, [&] { ++sink; });
  }
  for (auto _ : state) {
    // Refill behind the horizon, then dispatch exactly the front event.
    eng.schedule(513 * spacing, [&] { ++sink; });
    eng.run_until(eng.now() + spacing);
  }
  eng.run();
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::string(eng.queue_name()) +
                 (state.range(1) == 0 ? "/tight" : "/timer") +
                 (state.range(2) == 0 ? "/b1" : "/batched"));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineDeepQueue)
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}})
    ->ArgNames({"backend", "shape", "batch"});

/// The batched-dispatch headline shape: a burst of kDrainWindow due events
/// 1 ns apart, drained in one run_until. Refill-one-dispatch-one (above)
/// pays the batch setup for a single due event; here pop_batch serves
/// whole scratch-loads from the wheel's sorted open bucket, so the
/// per-event virtual-call and merge cost amortises to ~1/batch. The engine
/// persists across iterations, so on the wheel backend the adaptive
/// retune (gap EWMA ~1 ns -> narrow buckets) engages after the first
/// drains — the same steady state bench_report's dispatch_batch_speedup
/// gate measures.
constexpr int kDrainWindow = 4096;

void BM_EngineDispatchBatch(benchmark::State& state) {
  const auto kind = static_cast<sim::QueueKind>(state.range(0));
  const std::size_t batch =
      state.range(1) == 0 ? 1 : sim::kDefaultDispatchBatch;
  sim::Engine eng(kind);
  eng.set_dispatch_batch(batch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const sim::Time base = eng.now();
    for (int i = 0; i < kDrainWindow; ++i) {
      eng.schedule(i + 1, [&] { ++sink; });
    }
    state.ResumeTiming();
    eng.run_until(base + kDrainWindow + 1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::string(eng.queue_name()) +
                 (state.range(1) == 0 ? "/b1" : "/batched"));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kDrainWindow);
}
BENCHMARK(BM_EngineDispatchBatch)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"backend", "batch"});

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng(42);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.next_u64();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngU64);

void BM_RngJittered(benchmark::State& state) {
  sim::Rng rng(42);
  sim::Duration sink = 0;
  for (auto _ : state) {
    sink += rng.jittered(sim::milliseconds(1), 0.2);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngJittered);

/// Simulated-time throughput of the full two-level stack: how many
/// simulated milliseconds per wall second for the standard 2-VM topology.
void BM_FullSimulation(benchmark::State& state) {
  const std::string app = state.range(0) == 0 ? "streamcluster" : "UA";
  for (auto _ : state) {
    state.PauseTiming();
    core::WorldConfig wc;
    wc.strategy = core::Strategy::kIrs;
    wc.seed = 5;
    core::World world(wc);
    hv::VmConfig fg{.name = "fg", .n_vcpus = 4, .weight = 256,
                    .pin_map = {0, 1, 2, 3}};
    const auto fg_id = world.add_vm(fg, true);
    wl::WorkloadOptions opts;
    opts.endless = true;
    world.attach(fg_id, wl::make_workload(app, opts));
    hv::VmConfig bg{.name = "bg", .n_vcpus = 1, .weight = 256,
                    .pin_map = {0}};
    const auto bg_id = world.add_vm(bg, false);
    wl::WorkloadOptions hog_opts;
    hog_opts.n_threads = 1;
    world.attach(bg_id, wl::make_workload("hog", hog_opts));
    world.start();
    state.ResumeTiming();
    world.run_for(sim::milliseconds(100));
    benchmark::DoNotOptimize(world.engine().dispatched());
  }
  state.SetLabel(app + ": simulated-100ms per iteration");
}
BENCHMARK(BM_FullSimulation)->Arg(0)->Arg(1);

/// End-to-end scenario cost (what one figure data point costs).
void BM_ScenarioRun(benchmark::State& state) {
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.fg = "blackscholes";
    cfg.strategy = core::Strategy::kIrs;
    cfg.work_scale = 0.1;
    cfg.seed = 7;
    const exp::RunResult r = exp::run_scenario(cfg);
    benchmark::DoNotOptimize(r.fg_makespan);
  }
}
BENCHMARK(BM_ScenarioRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
