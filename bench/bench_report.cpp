// Machine-readable performance report for tracking the perf trajectory
// across PRs. Emits BENCH_sweep.json (path overridable via argv[1]) with:
//   * engine hot-path throughput: the schedule/cancel/dispatch churn
//     microbench, in events/sec, plus the recorded seed-engine baseline
//     (shared_ptr + std::function implementation) for the speedup ratio;
//   * a fig05-sized sweep (PARSEC x {baseline,PLE,RelaxedCo,IRS} x
//     {1,2,4}-inter x seeds) timed serially (1 job) and with the parallel
//     sweep pool (IRS_BENCH_JOBS or 8), with a bit-identity check between
//     the two result vectors.
//
// IRS_BENCH_FAST=1 shrinks the sweep for smoke runs.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/engine.h"
#include "src/wl/parsec.h"

namespace {

using namespace irs;

/// Seed-engine churn throughput, measured on the pre-pool implementation
/// (commit b128b84, shared_ptr<bool> + std::function per event) with the
/// same loop as measure_churn(), -O2, on this repo's reference container.
/// Kept as the fixed "before" of the events/sec trajectory.
constexpr double kSeedChurnEventsPerSec = 7.30e6;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The hot-path microbench: every iteration schedules one event that
/// fires and one that is cancelled, then dispatches. 3 engine operations
/// per iteration.
double measure_churn() {
  sim::Engine eng;
  std::uint64_t sink = 0;
  constexpr int kIters = 2000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    eng.schedule(1, [&] { ++sink; });
    auto h = eng.schedule(1000, [&] { ++sink; });
    h.cancel();
    eng.run_until(eng.now() + 2);
  }
  eng.run_until(eng.now() + 10000);
  const double sec = wall_seconds(t0);
  if (sink != kIters) std::abort();  // keep the loop honest
  return 3.0 * kIters / sec;
}

std::vector<exp::ScenarioConfig> fig05_grid(int seeds) {
  const bool fast = std::getenv("IRS_BENCH_FAST") != nullptr;
  std::vector<std::string> apps = wl::parsec_names();
  std::vector<int> inter = {1, 2, 4};
  if (fast) {
    apps.resize(apps.size() < 3 ? apps.size() : 3);
    inter = {1};
  }
  const std::vector<core::Strategy> strategies = {
      core::Strategy::kBaseline, core::Strategy::kPle,
      core::Strategy::kRelaxedCo, core::Strategy::kIrs};
  std::vector<exp::ScenarioConfig> grid;
  for (const auto& app : apps) {
    for (const int n : inter) {
      for (const auto s : strategies) {
        bench::PanelOptions o;
        for (const auto& cfg :
             exp::seed_grid(bench::make_cfg(app, s, n, o), seeds)) {
          grid.push_back(cfg);
        }
      }
    }
  }
  return grid;
}

bool identical(const exp::RunResult& a, const exp::RunResult& b) {
  return a.finished == b.finished && a.fg_makespan == b.fg_makespan &&
         a.fg_util_vs_fair == b.fg_util_vs_fair &&
         a.fg_efficiency == b.fg_efficiency &&
         a.bg_progress_rate == b.bg_progress_rate &&
         a.throughput == b.throughput && a.lat_mean == b.lat_mean &&
         a.lat_p99 == b.lat_p99 && a.lhp == b.lhp && a.lwp == b.lwp &&
         a.irs_migrations == b.irs_migrations && a.sa_sent == b.sa_sent &&
         a.sa_acked == b.sa_acked && a.sa_delay_avg == b.sa_delay_avg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  std::cerr << "[bench_report] engine churn microbench...\n";
  const double churn = measure_churn();

  const int seeds = exp::bench_seeds();
  const auto grid = fig05_grid(seeds);
  int jobs = 8;
  if (const char* s = std::getenv("IRS_BENCH_JOBS")) {
    const int n = std::atoi(s);
    if (n > 0) jobs = n;
  }

  std::cerr << "[bench_report] fig05-sized sweep, " << grid.size()
            << " runs, serial...\n";
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial = exp::run_sweep(grid, /*n_threads=*/1);
  const double serial_sec = wall_seconds(t_serial);

  std::cerr << "[bench_report] same sweep, " << jobs << " jobs...\n";
  const auto t_par = std::chrono::steady_clock::now();
  const auto parallel = exp::run_sweep(grid, jobs);
  const double par_sec = wall_seconds(t_par);

  bool bit_identical = serial.size() == parallel.size();
  for (std::size_t i = 0; bit_identical && i < serial.size(); ++i) {
    bit_identical = identical(serial[i], parallel[i]);
  }

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n"
      << "  \"engine_churn_events_per_sec\": " << churn << ",\n"
      << "  \"seed_engine_churn_events_per_sec\": " << kSeedChurnEventsPerSec
      << ",\n"
      << "  \"churn_speedup_vs_seed\": " << churn / kSeedChurnEventsPerSec
      << ",\n"
      << "  \"sweep_runs\": " << grid.size() << ",\n"
      << "  \"sweep_seeds_per_point\": " << seeds << ",\n"
      << "  \"sweep_secs_serial\": " << serial_sec << ",\n"
      << "  \"sweep_secs_parallel\": " << par_sec << ",\n"
      << "  \"sweep_jobs\": " << jobs << ",\n"
      << "  \"sweep_speedup\": " << serial_sec / par_sec << ",\n"
      << "  \"sweep_bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "\n"
      << "}\n";
  out.close();

  std::cout << "churn: " << churn / 1e6 << "M events/s ("
            << churn / kSeedChurnEventsPerSec << "x vs seed)\n"
            << "sweep: " << serial_sec << "s serial vs " << par_sec << "s @ "
            << jobs << " jobs (" << serial_sec / par_sec << "x), "
            << (bit_identical ? "bit-identical" : "RESULTS DIVERGED!") << "\n";
  if (out.fail()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << "\n";
  return bit_identical ? 0 : 1;
}
