// Machine-readable performance report for tracking the perf trajectory
// across PRs. Emits BENCH_sweep.json (path overridable via argv[1]) with:
//   * engine hot-path throughput: the schedule/cancel/dispatch churn
//     microbench, in events/sec, plus the recorded seed-engine baseline
//     (shared_ptr + std::function implementation) for the speedup ratio;
//   * a fig05-sized sweep (PARSEC x {baseline,PLE,RelaxedCo,IRS} x
//     {1,2,4}-inter x seeds) timed serially (1 job) and with the parallel
//     sweep pool (IRS_BENCH_JOBS or 8), with a bit-identity check between
//     the two result vectors (the parallel pass uses the streaming
//     consumer, so in-order delivery is exercised too);
//   * trace-pipeline overhead: ns/record for the direct ring vs the
//     batched staging buffer, and wall time of a traced sweep at batch 1
//     (the unbatched "before") vs the default batch, plus the same traced
//     sweep with the counter sampler armed at its default cadence.
//
// Two gates fail the bench loudly (exit 1): the batched ns/record metric
// must not be more than 2x worse than an existing report at the output
// path, and the sampler must add less than 6% on top of a traced sweep —
// so neither a trace-path nor a sampling regression can land silently.
//
// IRS_BENCH_FAST=1 shrinks the sweep for smoke runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"
#include "src/wl/parsec.h"

namespace {

using namespace irs;

/// Seed-engine churn throughput, measured on the pre-pool implementation
/// (commit b128b84, shared_ptr<bool> + std::function per event) with the
/// same loop as measure_churn(), -O2, on this repo's reference container.
/// Kept as the fixed "before" of the events/sec trajectory.
constexpr double kSeedChurnEventsPerSec = 7.30e6;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The hot-path microbench: every iteration schedules one event that
/// fires and one that is cancelled, then dispatches. 3 engine operations
/// per iteration.
double measure_churn() {
  sim::Engine eng;
  std::uint64_t sink = 0;
  constexpr int kIters = 2000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    eng.schedule(1, [&] { ++sink; });
    auto h = eng.schedule(1000, [&] { ++sink; });
    h.cancel();
    eng.run_until(eng.now() + 2);
  }
  eng.run_until(eng.now() + 10000);
  const double sec = wall_seconds(t0);
  if (sink != kIters) std::abort();  // keep the loop honest
  return 3.0 * kIters / sec;
}

/// ns per record into an enabled ring, either direct (`batch` 0) or through
/// a staging TraceBuffer with the given batch size.
double measure_trace_ns(std::size_t batch) {
  sim::Trace trace(1 << 16);
  constexpr int kRecords = 4000000;
  const auto t0 = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (int i = 0; i < kRecords; ++i) {
      trace.record(i, sim::TraceKind::kUser, i & 3, i & 7);
    }
  } else {
    obs::TraceBuffer buf(&trace, batch);
    for (int i = 0; i < kRecords; ++i) {
      buf.record(i, sim::TraceKind::kUser, i & 3, i & 7);
    }
    buf.flush();
  }
  const double sec = wall_seconds(t0);
  if (trace.total_recorded() != static_cast<std::uint64_t>(kRecords)) {
    std::abort();
  }
  return sec / kRecords * 1e9;
}

/// One serial timed sweep with the given trace settings (capacity 0 =
/// tracing off).
double timed_sweep(std::vector<exp::ScenarioConfig> grid, std::size_t capacity,
                   std::size_t batch, sim::Duration sample_period = 0) {
  for (auto& cfg : grid) {
    cfg.trace_capacity = capacity;
    cfg.trace_batch = batch;
    cfg.sample_period = sample_period;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = exp::run_sweep(grid, /*n_threads=*/1);
  if (results.size() != grid.size()) std::abort();
  return wall_seconds(t0);
}

/// Extract "key": <number> from a previous report; NaN when absent.
double read_metric(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return std::nan("");
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  std::cerr << "[bench_report] engine churn microbench...\n";
  const double churn = measure_churn();

  const int seeds = exp::bench_seeds();
  const bool fast = std::getenv("IRS_BENCH_FAST") != nullptr;
  // The sweep is panel (a) of Figure 5 from the shared grid registry — the
  // same rows `irs_sweep --fig fig05a` runs, so sharded reproduction and
  // this bench measure one and the same grid.
  const auto full_grid = exp::figure_grid("fig05a", {seeds, fast});
  // IRS_BENCH_SHARD=i/N restricts the timed sweep (and the NDJSON stream
  // below) to one round-robin shard of that grid, for splitting the bench
  // across hosts; the shard identity is recorded in the report.
  exp::ShardSpec shard;
  std::string shard_str = "0/1";
  if (const char* spec = std::getenv("IRS_BENCH_SHARD")) {
    if (!exp::parse_shard_spec(spec, &shard)) {
      std::cerr << "error: bad IRS_BENCH_SHARD '" << spec << "' (want i/N)\n";
      return 2;
    }
    shard_str = spec;
  }
  const auto owned =
      exp::shard_run_indices(full_grid.size(), shard.index, shard.count);
  const auto grid = exp::shard_grid(full_grid, shard.index, shard.count);
  int jobs = 8;
  if (const char* s = std::getenv("IRS_BENCH_JOBS")) {
    const int n = std::atoi(s);
    if (n > 0) jobs = n;
  }

  std::cerr << "[bench_report] fig05-sized sweep, " << grid.size()
            << (shard.count > 1 ? " runs (shard " + shard_str + ")" : " runs")
            << ", serial...\n";
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial = exp::run_sweep(grid, /*n_threads=*/1);
  const double serial_sec = wall_seconds(t_serial);

  std::cerr << "[bench_report] same sweep, " << jobs
            << " jobs, streaming consumer...\n";
  // In shard mode the parallel pass also streams the shard NDJSON file
  // (exp::shard format, global run indices) when IRS_BENCH_NDJSON is set,
  // so a sharded bench doubles as a shard of the figure sweep.
  std::ofstream ndjson;
  if (const char* path = std::getenv("IRS_BENCH_NDJSON")) {
    ndjson.open(path, std::ios::app);
    if (ndjson) {
      exp::ShardHeader h;
      h.shard = shard.index;
      h.n_shards = shard.count;
      h.total_runs = full_grid.size();
      h.fig = "fig05a";
      h.seeds = seeds;
      ndjson << exp::shard_header_json(h) << '\n';
      ndjson.flush();
    }
  }
  std::size_t delivered = 0;
  bool in_order = true;
  const auto t_par = std::chrono::steady_clock::now();
  const auto parallel = exp::run_sweep(
      grid,
      [&](std::size_t i, const exp::RunResult& r) {
        in_order = in_order && i == delivered;
        ++delivered;
        if (ndjson.is_open()) {
          ndjson << exp::shard_line_json(owned[i], r) << '\n';
          ndjson.flush();
        }
      },
      jobs);
  const double par_sec = wall_seconds(t_par);

  bool bit_identical = serial.size() == parallel.size() &&
                       delivered == grid.size() && in_order;
  for (std::size_t i = 0; bit_identical && i < serial.size(); ++i) {
    bit_identical = exp::results_identical(serial[i], parallel[i]);
  }

  std::cerr << "[bench_report] trace pipeline overhead...\n";
  const double trace_direct_ns = measure_trace_ns(0);
  const double trace_batched_ns = measure_trace_ns(obs::TraceBuffer::kDefaultBatch);
  // A traced-sweep slice: batch 1 is the unbatched "before", default batch
  // the "after"; the untraced run anchors the absolute overhead.
  auto slice = grid;
  const std::size_t kSliceRuns = 48;
  if (slice.size() > kSliceRuns) slice.resize(kSliceRuns);
  // The overhead ratios below are single-digit percent, while this
  // machine's throughput can drift tens of percent between measurements
  // (other tenants, frequency scaling). So: run the four settings
  // back-to-back inside each rep — adjacent sweeps share the machine
  // phase, so the drift cancels out of the within-rep ratio — and gate on
  // the median ratio across reps, which shrugs off the odd rep where a
  // phase change landed mid-rep. The absolute seconds reported are
  // per-setting minima (informational only).
  double sweep_off_sec = 0, sweep_batch1_sec = 0, sweep_batched_sec = 0,
         sweep_sampled_sec = 0;
  constexpr int kSweepReps = 7;
  std::vector<double> r_batch1, r_batched, r_sampled;
  for (int rep = 0; rep < kSweepReps; ++rep) {
    const double off = timed_sweep(slice, 0, 0);
    const double b1 = timed_sweep(slice, 1 << 15, 1);
    const double b = timed_sweep(slice, 1 << 15, 0);
    const double smp =
        timed_sweep(slice, 1 << 15, 0, obs::Sampler::kDefaultPeriod);
    if (rep == 0 || off < sweep_off_sec) sweep_off_sec = off;
    if (rep == 0 || b1 < sweep_batch1_sec) sweep_batch1_sec = b1;
    if (rep == 0 || b < sweep_batched_sec) sweep_batched_sec = b;
    if (rep == 0 || smp < sweep_sampled_sec) sweep_sampled_sec = smp;
    r_batch1.push_back(b1 / off);
    r_batched.push_back(b / off);
    r_sampled.push_back(smp / b);
  }
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double overhead_batch1_pct = (median(r_batch1) - 1.0) * 100.0;
  const double overhead_batched_pct = (median(r_batched) - 1.0) * 100.0;
  // Incremental cost of the counter sampler on top of a traced sweep —
  // gated below: the series must stay (nearly) free at the default cadence.
  const double overhead_sampled_pct = (median(r_sampled) - 1.0) * 100.0;
  constexpr double kSampledOverheadLimitPct = 6.0;

  // Regression gate on the batched trace hot path, against the previous
  // report at the same output path (if any).
  const double prev_batched_ns =
      read_metric(out_path, "trace_ns_per_record_batched");
  const bool trace_regressed =
      !std::isnan(prev_batched_ns) &&
      trace_batched_ns > 2.0 * std::max(prev_batched_ns, 1.0);

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n"
      << "  \"engine_churn_events_per_sec\": " << churn << ",\n"
      << "  \"seed_engine_churn_events_per_sec\": " << kSeedChurnEventsPerSec
      << ",\n"
      << "  \"churn_speedup_vs_seed\": " << churn / kSeedChurnEventsPerSec
      << ",\n"
      << "  \"sweep_runs\": " << grid.size() << ",\n"
      << "  \"sweep_shard\": \"" << shard_str << "\",\n"
      << "  \"sweep_seeds_per_point\": " << seeds << ",\n"
      << "  \"sweep_secs_serial\": " << serial_sec << ",\n"
      << "  \"sweep_secs_parallel\": " << par_sec << ",\n"
      << "  \"sweep_jobs\": " << jobs << ",\n"
      << "  \"sweep_speedup\": " << serial_sec / par_sec << ",\n"
      << "  \"sweep_bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n"
      << "  \"trace_ns_per_record_direct\": " << trace_direct_ns << ",\n"
      << "  \"trace_ns_per_record_batched\": " << trace_batched_ns << ",\n"
      << "  \"trace_batch_speedup\": " << trace_direct_ns / trace_batched_ns
      << ",\n"
      << "  \"traced_sweep_overhead_batch1_pct\": " << overhead_batch1_pct
      << ",\n"
      << "  \"traced_sweep_overhead_batched_pct\": " << overhead_batched_pct
      << ",\n"
      << "  \"traced_sampled_sweep_overhead_pct\": " << overhead_sampled_pct
      << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "\n"
      << "}\n";
  out.close();

  std::cout << "churn: " << churn / 1e6 << "M events/s ("
            << churn / kSeedChurnEventsPerSec << "x vs seed)\n"
            << "sweep: " << serial_sec << "s serial vs " << par_sec << "s @ "
            << jobs << " jobs (" << serial_sec / par_sec << "x), "
            << (bit_identical ? "bit-identical" : "RESULTS DIVERGED!") << "\n"
            << "trace: " << trace_direct_ns << "ns/rec direct vs "
            << trace_batched_ns << "ns/rec batched ("
            << trace_direct_ns / trace_batched_ns << "x); traced sweep +"
            << overhead_batch1_pct << "% at batch 1, +" << overhead_batched_pct
            << "% batched, +" << overhead_sampled_pct << "% with sampling\n";
  if (out.fail()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << "\n";
  if (trace_regressed) {
    std::cerr << "FAIL: batched trace path regressed >2x ("
              << prev_batched_ns << "ns/rec -> " << trace_batched_ns
              << "ns/rec)\n";
    return 1;
  }
  if (overhead_sampled_pct >= kSampledOverheadLimitPct) {
    std::cerr << "FAIL: sampling overhead " << overhead_sampled_pct
              << "% exceeds the " << kSampledOverheadLimitPct
              << "% gate (sampled " << sweep_sampled_sec << "s vs traced "
              << sweep_batched_sec << "s)\n";
    return 1;
  }
  return bit_identical ? 0 : 1;
}
