// Machine-readable performance report for tracking the perf trajectory
// across PRs. Emits BENCH_sweep.json (path overridable via argv[1]) with:
//   * engine hot-path throughput: the schedule/cancel/dispatch churn
//     microbench, in events/sec, plus the recorded seed-engine baseline
//     (shared_ptr + std::function implementation) for the speedup ratio;
//   * deep-queue extraction cost: 512 events in flight, binary-heap
//     "before" vs the default queue backend "after", in the tight (1 ns)
//     and timer-cadence (100 µs) shapes, with the timer-shape speedup
//     ratio gated — the default backend must not lose to the binary heap
//     on the traffic it exists for;
//   * batched-dispatch drain cost: bursts of 4096 due events 1 ns apart
//     drained in one run_until. dispatch_batch_speedup compares the
//     pre-batching configuration (binary heap, batch 1 — the seed
//     engine's dispatch path) against the default backend at the default
//     batch, and is gated >= 1.3; the batching-only amortization ratio
//     (default backend, batch 1 vs batched) is recorded alongside;
//   * a fig05-sized sweep (PARSEC x {baseline,PLE,RelaxedCo,IRS} x
//     {1,2,4}-inter x seeds) timed serially (1 job) and with the parallel
//     sweep pool (IRS_BENCH_JOBS or 8), with a bit-identity check between
//     the two result vectors (the parallel pass uses the streaming
//     consumer, so in-order delivery is exercised too);
//   * trace-pipeline overhead: ns/record for the direct ring vs the
//     batched staging buffer, and wall time of a traced sweep at batch 1
//     (the unbatched "before") vs the default batch, plus the same traced
//     sweep with the counter sampler armed at its default cadence.
//
// The report also embeds streaming aggregate statistics (exp::SweepStats,
// folded in the parallel pass's consumer) and, when IRS_BENCH_NDJSON is
// set, verifies the streamed shard file by merging it back through the
// shard verifier — status bitmask, expected-missing set, and per-run
// bit-identity against the serial pass — rather than trusting the write.
//
// Gates fail the bench loudly (exit 1): the batched trace ns/record must
// not be more than 2x worse than an existing report at the output path,
// the sampler must add less than 6% on top of a traced sweep, the default
// queue backend must not regress the timer-shape deep-queue bench vs the
// binary heap, a streamed shard NDJSON must verify, and the open-loop
// front-end must cost < 5% more wall time per completed request than the
// closed-loop ab arm at a matched completion rate (with its conservation
// ledger intact) — so none of those regressions can land silently.
//
// IRS_BENCH_FAST=1 shrinks the sweep for smoke runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/exp/stats.h"
#include "src/obs/slo.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"
#include "src/wl/parsec.h"

namespace {

using namespace irs;

/// Seed-engine churn throughput, measured on the pre-pool implementation
/// (commit b128b84, shared_ptr<bool> + std::function per event) with the
/// same loop as measure_churn(), -O2, on this repo's reference container.
/// Kept as the fixed "before" of the events/sec trajectory.
constexpr double kSeedChurnEventsPerSec = 7.30e6;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The hot-path microbench: every iteration schedules one event that
/// fires and one that is cancelled, then dispatches. 3 engine operations
/// per iteration.
double measure_churn() {
  sim::Engine eng;
  std::uint64_t sink = 0;
  constexpr int kIters = 2000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    eng.schedule(1, [&] { ++sink; });
    auto h = eng.schedule(1000, [&] { ++sink; });
    h.cancel();
    eng.run_until(eng.now() + 2);
  }
  eng.run_until(eng.now() + 10000);
  const double sec = wall_seconds(t0);
  if (sink != kIters) std::abort();  // keep the loop honest
  return 3.0 * kIters / sec;
}

/// ns per dispatched event with 512 events in flight — the deep-queue
/// microbench (BM_EngineDeepQueue's timer shape): events `spacing` apart,
/// one refill + one dispatch per iteration, so extraction walks real
/// structure depth. At the 100 µs timer cadence the in-flight window spans
/// ~51 ms of the wheel horizon, the dense periodic tick/slice/softirq
/// traffic the hybrid wheel backend is built for.
double measure_deepqueue_ns(sim::QueueKind kind, sim::Duration spacing) {
  sim::Engine eng(kind);
  std::uint64_t sink = 0;
  constexpr int kDepth = 512;
  constexpr int kIters = 2000000;
  for (int i = 0; i < kDepth; ++i) {
    eng.schedule((i + 1) * spacing, [&] { ++sink; });
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    eng.schedule((kDepth + 1) * spacing, [&] { ++sink; });
    eng.run_until(eng.now() + spacing);
  }
  const double sec = wall_seconds(t0);
  eng.run();
  if (sink != kIters + kDepth) std::abort();  // keep the loop honest
  return sec / kIters * 1e9;
}

/// ns per record into an enabled ring, either direct (`batch` 0) or through
/// a staging TraceBuffer with the given batch size.
double measure_trace_ns(std::size_t batch) {
  sim::Trace trace(1 << 16);
  constexpr int kRecords = 4000000;
  const auto t0 = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (int i = 0; i < kRecords; ++i) {
      trace.record(i, sim::TraceKind::kUser, i & 3, i & 7);
    }
  } else {
    obs::TraceBuffer buf(&trace, batch);
    for (int i = 0; i < kRecords; ++i) {
      buf.record(i, sim::TraceKind::kUser, i & 3, i & 7);
    }
    buf.flush();
  }
  const double sec = wall_seconds(t0);
  if (trace.total_recorded() != static_cast<std::uint64_t>(kRecords)) {
    std::abort();
  }
  return sec / kRecords * 1e9;
}

/// One serial timed sweep with the given trace settings (capacity 0 =
/// tracing off).
double timed_sweep(std::vector<exp::ScenarioConfig> grid, std::size_t capacity,
                   std::size_t batch, sim::Duration sample_period = 0) {
  for (auto& cfg : grid) {
    cfg.trace_capacity = capacity;
    cfg.trace_batch = batch;
    cfg.sample_period = sample_period;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = exp::run_sweep(grid, /*n_threads=*/1);
  if (results.size() != grid.size()) std::abort();
  return wall_seconds(t0);
}

/// ns per dispatched event draining a burst of kDrainWindow due events
/// 1 ns apart in one run_until — the batched-dispatch headline shape
/// (BM_EngineDispatchBatch). Refill-one-dispatch-one (above) hands
/// pop_batch a single due event per call; here whole scratch-loads come
/// out of one virtual call, and on the wheel backend the adaptive retune
/// engages after the first windows (gap EWMA ~1 ns -> narrow buckets), so
/// this measures the steady state of batching + adaptive geometry
/// together. Only the drain is timed; scheduling happens off the clock.
double measure_dispatch_batch_ns(sim::QueueKind kind, std::size_t batch) {
  sim::Engine eng(kind);
  eng.set_dispatch_batch(batch);
  std::uint64_t sink = 0;
  constexpr int kWindow = 4096;
  constexpr int kWindows = 400;
  double total = 0;
  for (int w = 0; w < kWindows; ++w) {
    const sim::Time base = eng.now();
    for (int i = 0; i < kWindow; ++i) {
      eng.schedule(i + 1, [&] { ++sink; });
    }
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until(base + kWindow + 1);
    total += wall_seconds(t0);
  }
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWindow) * kWindows;
  if (sink != kTotal) std::abort();  // keep the loop honest
  return total / static_cast<double>(kTotal) * 1e9;
}

/// Extract "key": <number> from a previous report; NaN when absent.
double read_metric(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return std::nan("");
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  std::cerr << "[bench_report] engine churn microbench...\n";
  const double churn = measure_churn();

  // Deep-queue microbench, binary-heap "before" vs the default backend
  // "after", in both shapes. Reps alternate backends back-to-back so
  // machine phase drift cancels out of the ratio; minima are kept.
  const sim::QueueKind default_kind = sim::default_queue_kind();
  const char* default_name = sim::Engine().queue_name();
  std::cerr << "[bench_report] engine deep-queue microbench (binary vs "
            << default_name << ")...\n";
  const sim::Duration kTimerSpacing = sim::microseconds(100);
  double dq_binary_timer = 0, dq_default_timer = 0;
  double dq_binary_tight = 0, dq_default_tight = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const double bt = measure_deepqueue_ns(sim::QueueKind::kBinaryHeap,
                                           kTimerSpacing);
    const double dt = measure_deepqueue_ns(default_kind, kTimerSpacing);
    const double bn = measure_deepqueue_ns(sim::QueueKind::kBinaryHeap, 1);
    const double dn = measure_deepqueue_ns(default_kind, 1);
    if (rep == 0 || bt < dq_binary_timer) dq_binary_timer = bt;
    if (rep == 0 || dt < dq_default_timer) dq_default_timer = dt;
    if (rep == 0 || bn < dq_binary_tight) dq_binary_tight = bn;
    if (rep == 0 || dn < dq_default_tight) dq_default_tight = dn;
  }
  // The headline old-vs-new ratio: timer-cadence traffic is what the
  // default wheel backend exists for; >1 means it beats the binary heap.
  const double dq_speedup = dq_binary_timer / dq_default_timer;

  // Batched-dispatch drain microbench. Same alternating-arm discipline:
  // the "before" (binary heap, batch 1 — the dispatch configuration every
  // PR before batching shipped with) and the two "after" arms run
  // back-to-back within each rep, minima kept.
  std::cerr << "[bench_report] batched-dispatch drain microbench...\n";
  const std::size_t default_batch = sim::Engine::default_dispatch_batch();
  double db_binary_b1 = 0, db_default_b1 = 0, db_default_batched = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const double bb1 =
        measure_dispatch_batch_ns(sim::QueueKind::kBinaryHeap, 1);
    const double db1 = measure_dispatch_batch_ns(default_kind, 1);
    const double dbb = measure_dispatch_batch_ns(default_kind, default_batch);
    if (rep == 0 || bb1 < db_binary_b1) db_binary_b1 = bb1;
    if (rep == 0 || db1 < db_default_b1) db_default_b1 = db1;
    if (rep == 0 || dbb < db_default_batched) db_default_batched = dbb;
  }
  // The gated before/after ratio (tight drain shape): unbatched binary
  // heap vs the default backend at the default batch.
  const double dispatch_batch_speedup = db_binary_b1 / db_default_batched;
  // Batching alone, same backend — how much of the win the pop_batch
  // amortisation contributes (informational).
  const double dispatch_batch_amortization = db_default_b1 / db_default_batched;

  const int seeds = exp::bench_seeds();
  const bool fast = std::getenv("IRS_BENCH_FAST") != nullptr;
  // The sweep is panel (a) of Figure 5 from the shared grid registry — the
  // same rows `irs_sweep --fig fig05a` runs, so sharded reproduction and
  // this bench measure one and the same grid.
  const auto full_grid = exp::figure_grid("fig05a", {seeds, fast});
  // IRS_BENCH_SHARD=i/N restricts the timed sweep (and the NDJSON stream
  // below) to one round-robin shard of that grid, for splitting the bench
  // across hosts; the shard identity is recorded in the report.
  exp::ShardSpec shard;
  std::string shard_str = "0/1";
  if (const char* spec = std::getenv("IRS_BENCH_SHARD")) {
    if (!exp::parse_shard_spec(spec, &shard)) {
      std::cerr << "error: bad IRS_BENCH_SHARD '" << spec << "' (want i/N)\n";
      return 2;
    }
    shard_str = spec;
  }
  const auto owned =
      exp::shard_run_indices(full_grid.size(), shard.index, shard.count);
  const auto grid = exp::shard_grid(full_grid, shard.index, shard.count);
  int jobs = 8;
  if (const char* s = std::getenv("IRS_BENCH_JOBS")) {
    const int n = std::atoi(s);
    if (n > 0) jobs = n;
  }

  std::cerr << "[bench_report] fig05-sized sweep, " << grid.size()
            << (shard.count > 1 ? " runs (shard " + shard_str + ")" : " runs")
            << ", serial...\n";
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial = exp::run_sweep(grid, /*n_threads=*/1);
  const double serial_sec = wall_seconds(t_serial);

  std::cerr << "[bench_report] same sweep, " << jobs
            << " jobs, streaming consumer...\n";
  // In shard mode the parallel pass also streams the shard NDJSON file
  // (exp::shard format, global run indices) when IRS_BENCH_NDJSON is set,
  // so a sharded bench doubles as a shard of the figure sweep.
  std::ofstream ndjson;
  if (const char* path = std::getenv("IRS_BENCH_NDJSON")) {
    ndjson.open(path, std::ios::app);
    if (ndjson) {
      exp::ShardHeader h;
      h.shard = shard.index;
      h.n_shards = shard.count;
      h.total_runs = full_grid.size();
      h.fig = "fig05a";
      h.seeds = seeds;
      ndjson << exp::shard_header_json(h) << '\n';
      ndjson.flush();
    }
  }
  std::size_t delivered = 0;
  bool in_order = true;
  // Aggregate statistics fold line-by-line in the streaming consumer —
  // the same exp::SweepStats path `irs_sweep_merge --stats-only` uses, so
  // the report carries sweep-level aggregates without a second pass.
  exp::SweepStats stats;
  const auto t_par = std::chrono::steady_clock::now();
  const auto parallel = exp::run_sweep(
      grid,
      [&](std::size_t i, const exp::RunResult& r) {
        in_order = in_order && i == delivered;
        ++delivered;
        stats.add(r);
        if (ndjson.is_open()) {
          ndjson << exp::shard_line_json(owned[i], r) << '\n';
          ndjson.flush();
        }
      },
      jobs);
  const double par_sec = wall_seconds(t_par);

  bool bit_identical = serial.size() == parallel.size() &&
                       delivered == grid.size() && in_order;
  for (std::size_t i = 0; bit_identical && i < serial.size(); ++i) {
    bit_identical = exp::results_identical(serial[i], parallel[i]);
  }

  // When a shard NDJSON was streamed, *verify* it instead of trusting the
  // write: merge the file back through the shard verifier and require (a)
  // no status bit other than kMergeMissingRuns, (b) the missing set to be
  // exactly the runs other shards own, and (c) every recovered result to
  // be bit-identical to this process's serial pass. A sharded bench run
  // therefore gates on the same evidence a full merge would.
  int shard_ndjson_status = -1;  // -1 = no NDJSON streamed
  bool shard_ndjson_ok = true;
  if (ndjson.is_open()) {
    ndjson.close();
    const char* path = std::getenv("IRS_BENCH_NDJSON");
    exp::MergeOptions mopt;
    mopt.expect_runs = full_grid.size();
    const exp::MergeReport mrep = exp::merge_shards({path}, mopt);
    shard_ndjson_status = mrep.status;
    shard_ndjson_ok =
        (mrep.status & ~exp::kMergeMissingRuns) == 0 &&
        mrep.merged == owned.size() &&
        mrep.missing.size() == full_grid.size() - owned.size();
    for (std::size_t i = 0; shard_ndjson_ok && i < owned.size(); ++i) {
      shard_ndjson_ok = mrep.present[owned[i]] &&
                        exp::results_identical(serial[i], mrep.results[owned[i]]);
    }
    if (!shard_ndjson_ok) {
      std::cerr << "[bench_report] shard NDJSON verification FAILED: "
                << exp::merge_summary_json(mrep) << "\n";
    }
  }

  std::cerr << "[bench_report] trace pipeline overhead...\n";
  const double trace_direct_ns = measure_trace_ns(0);
  const double trace_batched_ns = measure_trace_ns(obs::TraceBuffer::kDefaultBatch);
  // A traced-sweep slice: batch 1 is the unbatched "before", default batch
  // the "after"; the untraced run anchors the absolute overhead.
  auto slice = grid;
  const std::size_t kSliceRuns = 48;
  if (slice.size() > kSliceRuns) slice.resize(kSliceRuns);
  // The overhead ratios below are single-digit percent, while this
  // machine's throughput can drift tens of percent between measurements
  // (other tenants, frequency scaling). So: run the four settings
  // back-to-back inside each rep — adjacent sweeps share the machine
  // phase, so the drift cancels out of the within-rep ratio — and gate on
  // the median ratio across reps, which shrugs off the odd rep where a
  // phase change landed mid-rep. The absolute seconds reported are
  // per-setting minima (informational only).
  double sweep_off_sec = 0, sweep_batch1_sec = 0, sweep_batched_sec = 0,
         sweep_sampled_sec = 0;
  constexpr int kSweepReps = 7;
  std::vector<double> r_batch1, r_batched, r_sampled;
  for (int rep = 0; rep < kSweepReps; ++rep) {
    const double off = timed_sweep(slice, 0, 0);
    const double b1 = timed_sweep(slice, 1 << 15, 1);
    const double b = timed_sweep(slice, 1 << 15, 0);
    const double smp =
        timed_sweep(slice, 1 << 15, 0, obs::Sampler::kDefaultPeriod);
    if (rep == 0 || off < sweep_off_sec) sweep_off_sec = off;
    if (rep == 0 || b1 < sweep_batch1_sec) sweep_batch1_sec = b1;
    if (rep == 0 || b < sweep_batched_sec) sweep_batched_sec = b;
    if (rep == 0 || smp < sweep_sampled_sec) sweep_sampled_sec = smp;
    r_batch1.push_back(b1 / off);
    r_batched.push_back(b / off);
    r_sampled.push_back(smp / b);
  }
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double overhead_batch1_pct = (median(r_batch1) - 1.0) * 100.0;
  const double overhead_batched_pct = (median(r_batched) - 1.0) * 100.0;
  // Incremental cost of the counter sampler on top of a traced sweep —
  // gated below: the series must stay (nearly) free at the default cadence.
  const double overhead_sampled_pct = (median(r_sampled) - 1.0) * 100.0;
  constexpr double kSampledOverheadLimitPct = 6.0;

  // SLO observability: recording overhead on the fig08 serving shape,
  // histogram memory vs exact samples, and cross-shard fold bit-identity.
  std::cerr << "[bench_report] SLO recording overhead (fig08 serving shape)...\n";
  auto slo_grid = exp::figure_grid("fig08", {/*seeds=*/1, fast});
  const std::size_t kSloRuns = fast ? 4 : 6;
  if (slo_grid.size() > kSloRuns) slo_grid.resize(kSloRuns);
  // Longer serving runs than the figure uses: each run must be large
  // enough (~30 ms wall) that a single-digit-percent overhead is
  // measurable over this machine's run-to-run jitter. The per-request
  // recording cost is duration-independent, so the ratio is the same —
  // only the noise floor drops.
  auto timed_slo_cell = [&](const exp::ScenarioConfig& cell,
                            sim::Duration slo_window) {
    auto c = cell;
    c.slo_window = slo_window;
    c.server_duration = sim::seconds(10);
    const auto t0 = std::chrono::steady_clock::now();
    const exp::RunResult r = exp::run_scenario(c);
    if (!r.finished && r.throughput <= 0) std::abort();
    return wall_seconds(t0);
  };
  // Per-cell per-arm minima with the arm order alternating — "off" (raw
  // core::Histogram counters only, slo_window = -1) vs "on" (windowed SLO
  // recording alongside), back-to-back per cell per rep. The pair keeps
  // the arms adjacent under drift, the alternation cancels the
  // second-arm-reads-slower bias of a busy host, and per-cell minima
  // filter noise at the finest granularity available; the overhead ratio
  // compares the summed minima.
  constexpr int kSloReps = 25;
  std::vector<double> slo_cell_off(slo_grid.size(), 1e18);
  std::vector<double> slo_cell_on(slo_grid.size(), 1e18);
  for (int rep = 0; rep < kSloReps; ++rep) {
    for (std::size_t i = 0; i < slo_grid.size(); ++i) {
      const bool on_first = ((rep + static_cast<int>(i)) % 2) != 0;
      const double first = timed_slo_cell(slo_grid[i], on_first ? 0 : -1);
      const double second = timed_slo_cell(slo_grid[i], on_first ? -1 : 0);
      const double off = on_first ? second : first;
      const double on = on_first ? first : second;
      if (off < slo_cell_off[i]) slo_cell_off[i] = off;
      if (on < slo_cell_on[i]) slo_cell_on[i] = on;
    }
  }
  double slo_off_sec = 0, slo_on_sec = 0;
  for (std::size_t i = 0; i < slo_grid.size(); ++i) {
    slo_off_sec += slo_cell_off[i];
    slo_on_sec += slo_cell_on[i];
  }

  // Histogram memory at 1e6 recorded latencies vs keeping exact samples
  // (8 bytes each, what core::Histogram stores).
  std::cerr << "[bench_report] SLO histogram memory...\n";
  constexpr std::uint64_t kMemSamples = 1000000;
  obs::LatencyHistogram mem_hist;
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  for (std::uint64_t i = 0; i < kMemSamples; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    // Latencies spread over 1 us .. ~1 s so buckets across ~20 octaves fill.
    mem_hist.add(static_cast<sim::Duration>(1000 + (lcg >> 34)));
  }
  if (mem_hist.count() != kMemSamples) std::abort();
  const double slo_memory_bytes =
      static_cast<double>(mem_hist.memory_bytes());
  const double slo_memory_ratio =
      static_cast<double>(kMemSamples * sizeof(sim::Duration)) /
      slo_memory_bytes;

  // Cross-shard fold identity: run the slice serially, re-run it as 3
  // NDJSON shards, merge through the shard verifier, and require (a)
  // per-run bit-identity (slo blocks included — results_identical compares
  // them) and (b) the folded per-class histograms and XOR digests of the
  // two passes to match exactly. This is the "merges buckets exactly"
  // guarantee, checked end-to-end through serialization.
  std::cerr << "[bench_report] SLO cross-shard fold identity...\n";
  const auto slo_serial = exp::run_sweep(slo_grid, /*n_threads=*/1);
  constexpr int kSloShards = 3;
  std::vector<std::pair<std::string, std::string>> slo_shard_files;
  for (int s = 0; s < kSloShards; ++s) {
    const auto sub = exp::shard_grid(slo_grid, s, kSloShards);
    const auto owned_runs =
        exp::shard_run_indices(slo_grid.size(), s, kSloShards);
    const auto sub_results = exp::run_sweep(sub, /*n_threads=*/1);
    exp::ShardHeader h;
    h.shard = s;
    h.n_shards = kSloShards;
    h.total_runs = slo_grid.size();
    std::string content = exp::shard_header_json(h) + "\n";
    for (std::size_t i = 0; i < sub_results.size(); ++i) {
      content += exp::shard_line_json(owned_runs[i], sub_results[i]) + "\n";
    }
    slo_shard_files.emplace_back("shard" + std::to_string(s), content);
  }
  const exp::MergeReport slo_merge = exp::merge_shard_streams(slo_shard_files);
  bool slo_fold_identical = slo_merge.ok() &&
                            slo_merge.merged == slo_serial.size();
  exp::SweepStats slo_stats_serial, slo_stats_merged;
  for (std::size_t i = 0; i < slo_serial.size(); ++i) {
    slo_stats_serial.add(slo_serial[i]);
    if (slo_fold_identical) {
      slo_fold_identical =
          exp::results_identical(slo_serial[i], slo_merge.results[i]);
      slo_stats_merged.add(slo_merge.results[i]);
    }
  }
  if (slo_fold_identical) {
    slo_fold_identical =
        slo_stats_serial.slo() == slo_stats_merged.slo() &&
        slo_stats_serial.slo_digest_xor() == slo_stats_merged.slo_digest_xor() &&
        !slo_stats_serial.slo().empty();
  }
  const double slo_overhead_pct = (slo_on_sec / slo_off_sec - 1.0) * 100.0;
  constexpr double kSloOverheadLimitPct = 5.0;
  constexpr double kSloMemoryRatioGate = 10.0;

  // Forensics recording: incremental cost of capturing request spans on
  // the same serving shape. Both arms run the trace ring and SLO tracking;
  // the "on" arm adds one ReqSpan append to the workload's side log per
  // completed request (forensics_analyze=false on both arms keeps the
  // end-of-run snapshot + analyzer out of the timed region), so the ratio
  // isolates the always-on capture cost — the only part of forensics that
  // runs while the simulation serves.
  std::cerr << "[bench_report] forensics recording overhead (fig08 serving "
               "shape)...\n";
  auto forensics_cells = slo_grid;
  for (auto& c : forensics_cells) {
    c.slo_window = 0;
    c.trace_capacity = 1 << 18;
    c.forensics_analyze = false;
    c.server_duration = sim::seconds(10);
  }
  auto timed_forensics_cell = [&](const exp::ScenarioConfig& cell,
                                  bool forensics) {
    auto c = cell;
    c.forensics = forensics;
    const auto t0 = std::chrono::steady_clock::now();
    const exp::RunResult r = exp::run_scenario(c);
    if (r.slo.empty()) std::abort();
    return wall_seconds(t0);
  };
  // The effect is ~1 ms per ~30 ms run against scheduler noise far larger,
  // and whichever arm runs second in a pair reads systematically slower on
  // a busy host. So: time each grid cell individually with the arm order
  // alternating, keep the per-cell per-arm minimum across reps (filters
  // noise at the finest granularity the sweep offers), and compare the
  // summed minima.
  constexpr int kForensicsReps = 25;
  std::vector<double> fo_off(forensics_cells.size(), 1e18);
  std::vector<double> fo_on(forensics_cells.size(), 1e18);
  for (int rep = 0; rep < kForensicsReps; ++rep) {
    for (std::size_t i = 0; i < forensics_cells.size(); ++i) {
      const bool on_first = ((rep + static_cast<int>(i)) % 2) != 0;
      const double first = timed_forensics_cell(forensics_cells[i], on_first);
      const double second =
          timed_forensics_cell(forensics_cells[i], !on_first);
      const double off = on_first ? second : first;
      const double on = on_first ? first : second;
      if (off < fo_off[i]) fo_off[i] = off;
      if (on < fo_on[i]) fo_on[i] = on;
    }
  }
  double forensics_off_sec = 0, forensics_on_sec = 0;
  for (std::size_t i = 0; i < forensics_cells.size(); ++i) {
    forensics_off_sec += fo_off[i];
    forensics_on_sec += fo_on[i];
  }
  const double forensics_overhead_pct =
      (forensics_on_sec / forensics_off_sec - 1.0) * 100.0;
  constexpr double kForensicsOverheadLimitPct = 5.0;

  // Forensics analysis: the one-pass decomposition runs once, after the
  // run (or offline over a dump), so its budget is absolute — ns per
  // merged trace record — rather than a percentage of simulation time.
  // The offline re-run must also reproduce the in-run result bit-exactly.
  std::cerr << "[bench_report] forensics analyzer (one-pass replay)...\n";
  exp::TraceDump fdump;
  std::uint64_t forensics_run_digest = 0;
  {
    auto c = slo_grid.front();
    c.slo_window = 0;
    c.trace_capacity = 1 << 18;
    c.forensics = true;
    c.server_duration = sim::seconds(10);
    const exp::RunResult res = exp::run_scenario(c, &fdump);
    forensics_run_digest = res.forensics_digest;
  }
  double forensics_analyze_sec = 0;
  bool forensics_replay_identical = true;
  for (int rep = 0; rep < kSloReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const obs::ForensicsResult f =
        obs::request_forensics(fdump.records, fdump.meta, fdump.slo);
    const double sec = wall_seconds(t0);
    forensics_replay_identical =
        forensics_replay_identical && f.digest() == forensics_run_digest;
    if (rep == 0 || sec < forensics_analyze_sec) forensics_analyze_sec = sec;
  }
  const double forensics_analyze_ns_per_record =
      forensics_analyze_sec * 1e9 /
      static_cast<double>(std::max<std::size_t>(1, fdump.records.size()));
  constexpr double kForensicsAnalyzeNsPerRecordLimit = 150.0;

  // Open-loop front-end cost: the listener/accept-queue/worker machinery
  // (arrival pacing events, pipe wakeups, FIFO hand-off, overload checks,
  // keepalive bookkeeping, conservation ledger) must not make a completed
  // request materially more expensive to simulate than the closed-loop
  // "ab" workload it generalises. Matched arms: probe ab's completed-
  // request rate on the scenario shape once, drive the frontend's Poisson
  // arrivals at exactly that rate, and compare wall seconds per completed
  // request. Same alternating-arm per-rep-minimum discipline as the SLO
  // and forensics gates; the shared substrate (hog, scheduler, SLO
  // recording) is common to both arms and cancels out of the ratio.
  std::cerr << "[bench_report] open-loop front-end overhead (frontend vs ab, "
               "matched completion count)...\n";
  exp::PanelOptions fe_po;
  exp::ScenarioConfig ab_cell =
      exp::panel_cfg("ab", core::Strategy::kIrs, 1, fe_po);
  ab_cell.server_duration = sim::seconds(10);
  exp::ScenarioConfig fe_cell = ab_cell;
  fe_cell.fg = "frontend";
  const exp::RunResult ab_probe = exp::run_scenario(ab_cell);
  const double fe_duration_sec = 10.0;
  const double ab_completed =
      std::max(1.0, ab_probe.throughput * fe_duration_sec);
  fe_cell.fe_rate_hz = std::max(1.0, ab_probe.throughput);
  const exp::RunResult fe_probe = exp::run_scenario(fe_cell);
  const obs::FrontendResult& fe_ledger = fe_probe.frontend;
  const double fe_completed =
      std::max<double>(1.0, static_cast<double>(fe_ledger.completed));
  // Both runs are deterministic, so the probes' completion counts hold for
  // every timed rep; the conservation identity guards the fe arm's ledger.
  const bool fe_conserved =
      fe_ledger.arrivals == fe_ledger.completed + fe_ledger.dropped() +
                                fe_ledger.shed + fe_ledger.in_flight &&
      fe_ledger.completed > 0;
  auto timed_fe_cell = [&](const exp::ScenarioConfig& c) {
    const auto t0 = std::chrono::steady_clock::now();
    const exp::RunResult r = exp::run_scenario(c);
    if (!r.finished && r.throughput <= 0) std::abort();
    return wall_seconds(t0);
  };
  constexpr int kFrontendReps = 15;
  double fe_on_sec = 1e18, fe_ab_sec = 1e18;
  for (int rep = 0; rep < kFrontendReps; ++rep) {
    const bool fe_first = (rep % 2) != 0;
    const double first = timed_fe_cell(fe_first ? fe_cell : ab_cell);
    const double second = timed_fe_cell(fe_first ? ab_cell : fe_cell);
    const double fe = fe_first ? first : second;
    const double ab = fe_first ? second : first;
    if (fe < fe_on_sec) fe_on_sec = fe;
    if (ab < fe_ab_sec) fe_ab_sec = ab;
  }
  const double frontend_ns_per_req = fe_on_sec * 1e9 / fe_completed;
  const double ab_ns_per_req = fe_ab_sec * 1e9 / ab_completed;
  const double frontend_overhead_pct =
      (frontend_ns_per_req / ab_ns_per_req - 1.0) * 100.0;
  constexpr double kFrontendOverheadLimitPct = 5.0;

  // Regression gate on the batched trace hot path, against the previous
  // report at the same output path (if any).
  const double prev_batched_ns =
      read_metric(out_path, "trace_ns_per_record_batched");
  const bool trace_regressed =
      !std::isnan(prev_batched_ns) &&
      trace_batched_ns > 2.0 * std::max(prev_batched_ns, 1.0);

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n"
      << "  \"engine_churn_events_per_sec\": " << churn << ",\n"
      << "  \"seed_engine_churn_events_per_sec\": " << kSeedChurnEventsPerSec
      << ",\n"
      << "  \"churn_speedup_vs_seed\": " << churn / kSeedChurnEventsPerSec
      << ",\n"
      << "  \"engine_queue_backend\": \"" << default_name << "\",\n"
      << "  \"deepqueue_ns_binary_timer\": " << dq_binary_timer << ",\n"
      << "  \"deepqueue_ns_default_timer\": " << dq_default_timer << ",\n"
      << "  \"deepqueue_ns_binary_tight\": " << dq_binary_tight << ",\n"
      << "  \"deepqueue_ns_default_tight\": " << dq_default_tight << ",\n"
      << "  \"deepqueue_speedup_vs_binary\": " << dq_speedup << ",\n"
      << "  \"dispatch_batch\": " << default_batch << ",\n"
      << "  \"dispatch_batch_ns_binary_b1\": " << db_binary_b1 << ",\n"
      << "  \"dispatch_batch_ns_default_b1\": " << db_default_b1 << ",\n"
      << "  \"dispatch_batch_ns_default_batched\": " << db_default_batched
      << ",\n"
      << "  \"dispatch_batch_amortization\": " << dispatch_batch_amortization
      << ",\n"
      << "  \"dispatch_batch_speedup\": " << dispatch_batch_speedup << ",\n"
      << "  \"sweep_runs\": " << grid.size() << ",\n"
      << "  \"sweep_shard\": \"" << shard_str << "\",\n"
      << "  \"sweep_shard_ndjson_status\": " << shard_ndjson_status << ",\n"
      << "  \"sweep_shard_ndjson_ok\": "
      << (shard_ndjson_ok ? "true" : "false") << ",\n"
      << "  \"sweep_seeds_per_point\": " << seeds << ",\n"
      << "  \"sweep_secs_serial\": " << serial_sec << ",\n"
      << "  \"sweep_secs_parallel\": " << par_sec << ",\n"
      << "  \"sweep_jobs\": " << jobs << ",\n"
      << "  \"sweep_speedup\": " << serial_sec / par_sec << ",\n"
      << "  \"sweep_bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n"
      << "  \"trace_ns_per_record_direct\": " << trace_direct_ns << ",\n"
      << "  \"trace_ns_per_record_batched\": " << trace_batched_ns << ",\n"
      << "  \"trace_batch_speedup\": " << trace_direct_ns / trace_batched_ns
      << ",\n"
      << "  \"traced_sweep_overhead_batch1_pct\": " << overhead_batch1_pct
      << ",\n"
      << "  \"traced_sweep_overhead_batched_pct\": " << overhead_batched_pct
      << ",\n"
      << "  \"traced_sampled_sweep_overhead_pct\": " << overhead_sampled_pct
      << ",\n"
      << "  \"slo_sweep_runs\": " << slo_grid.size() << ",\n"
      << "  \"slo_sweep_secs_off\": " << slo_off_sec << ",\n"
      << "  \"slo_sweep_secs_on\": " << slo_on_sec << ",\n"
      << "  \"slo_overhead_pct\": " << slo_overhead_pct << ",\n"
      << "  \"slo_memory_bytes_1e6\": " << slo_memory_bytes << ",\n"
      << "  \"slo_memory_ratio\": " << slo_memory_ratio << ",\n"
      << "  \"slo_fold_shards\": " << kSloShards << ",\n"
      << "  \"slo_fold_identical\": "
      << (slo_fold_identical ? "true" : "false") << ",\n"
      << "  \"forensics_sweep_secs_off\": " << forensics_off_sec << ",\n"
      << "  \"forensics_sweep_secs_on\": " << forensics_on_sec << ",\n"
      << "  \"forensics_overhead_pct\": " << forensics_overhead_pct << ",\n"
      << "  \"forensics_records\": " << fdump.records.size() << ",\n"
      << "  \"forensics_analyze_secs\": " << forensics_analyze_sec << ",\n"
      << "  \"forensics_analyze_ns_per_record\": "
      << forensics_analyze_ns_per_record << ",\n"
      << "  \"forensics_replay_identical\": "
      << (forensics_replay_identical ? "true" : "false") << ",\n"
      << "  \"frontend_completed\": " << fe_completed << ",\n"
      << "  \"frontend_ab_completed\": " << ab_completed << ",\n"
      << "  \"frontend_secs\": " << fe_on_sec << ",\n"
      << "  \"frontend_ab_secs\": " << fe_ab_sec << ",\n"
      << "  \"frontend_ns_per_req\": " << frontend_ns_per_req << ",\n"
      << "  \"frontend_ab_ns_per_req\": " << ab_ns_per_req << ",\n"
      << "  \"frontend_overhead_pct\": " << frontend_overhead_pct << ",\n"
      << "  \"frontend_conserved\": " << (fe_conserved ? "true" : "false")
      << ",\n"
      << "  \"sweep_stats\": " << exp::sweep_stats_json(stats) << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "\n"
      << "}\n";
  out.close();

  std::cout << "churn: " << churn / 1e6 << "M events/s ("
            << churn / kSeedChurnEventsPerSec << "x vs seed)\n"
            << "deep queue (timer cadence): " << dq_binary_timer
            << "ns/event binary vs " << dq_default_timer << "ns/event "
            << default_name << " (" << dq_speedup << "x); tight: "
            << dq_binary_tight << "ns vs " << dq_default_tight << "ns\n"
            << "batched drain: " << db_binary_b1 << "ns/event binary/b1 vs "
            << db_default_batched << "ns/event " << default_name << "/b"
            << default_batch << " (" << dispatch_batch_speedup
            << "x; batching alone " << dispatch_batch_amortization << "x)\n"
            << "sweep: " << serial_sec << "s serial vs " << par_sec << "s @ "
            << jobs << " jobs (" << serial_sec / par_sec << "x), "
            << (bit_identical ? "bit-identical" : "RESULTS DIVERGED!") << "\n"
            << "trace: " << trace_direct_ns << "ns/rec direct vs "
            << trace_batched_ns << "ns/rec batched ("
            << trace_direct_ns / trace_batched_ns << "x); traced sweep +"
            << overhead_batch1_pct << "% at batch 1, +" << overhead_batched_pct
            << "% batched, +" << overhead_sampled_pct << "% with sampling\n"
            << "slo: +" << slo_overhead_pct << "% recording overhead, "
            << slo_memory_bytes / 1024.0 << "KiB for 1e6 samples ("
            << slo_memory_ratio << "x less than exact), fold "
            << (slo_fold_identical ? "bit-identical across " : "DIVERGED at ")
            << kSloShards << " shards\n"
            << "forensics: +" << forensics_overhead_pct
            << "% recording overhead (on " << forensics_on_sec << "s vs off "
            << forensics_off_sec << "s); analyzer "
            << forensics_analyze_ns_per_record << "ns/rec over "
            << fdump.records.size() << " records, offline replay "
            << (forensics_replay_identical ? "bit-identical" : "DIVERGED!")
            << "\n"
            << "frontend: " << frontend_ns_per_req << "ns/req ("
            << fe_completed << " completed) vs ab " << ab_ns_per_req
            << "ns/req (" << ab_completed << " completed), +"
            << frontend_overhead_pct << "% per completed request, ledger "
            << (fe_conserved ? "conserved" : "NOT CONSERVED!") << "\n";
  if (out.fail()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << "\n";
  if (trace_regressed) {
    std::cerr << "FAIL: batched trace path regressed >2x ("
              << prev_batched_ns << "ns/rec -> " << trace_batched_ns
              << "ns/rec)\n";
    return 1;
  }
  if (overhead_sampled_pct >= kSampledOverheadLimitPct) {
    std::cerr << "FAIL: sampling overhead " << overhead_sampled_pct
              << "% exceeds the " << kSampledOverheadLimitPct
              << "% gate (sampled " << sweep_sampled_sec << "s vs traced "
              << sweep_batched_sec << "s)\n";
    return 1;
  }
  // The default queue backend must not lose to the binary-heap "before"
  // on its motivating timer-cadence shape (0.9 leaves headroom for
  // machine noise; the real margin is ~1.3x).
  if (default_kind != sim::QueueKind::kBinaryHeap && dq_speedup < 0.9) {
    std::cerr << "FAIL: deep-queue timer shape regressed vs the binary "
              << "heap (" << dq_binary_timer << "ns -> " << dq_default_timer
              << "ns, ratio " << dq_speedup << ")\n";
    return 1;
  }
  // Batched dispatch must beat the pre-batching configuration (binary
  // heap, single pops) by >= 1.3x on the tight drain shape — the headline
  // this PR's engine rework is gated on. Skipped when the default backend
  // IS the binary heap (IRS_ENGINE_QUEUE=binary), where only the batching
  // amortisation applies, and when batching is disabled (IRS_ENGINE_BATCH=1).
  constexpr double kDispatchBatchGate = 1.3;
  if (default_kind != sim::QueueKind::kBinaryHeap && default_batch > 1 &&
      dispatch_batch_speedup < kDispatchBatchGate) {
    std::cerr << "FAIL: batched drain speedup " << dispatch_batch_speedup
              << "x below the " << kDispatchBatchGate << "x gate ("
              << db_binary_b1 << "ns/event binary/b1 -> "
              << db_default_batched << "ns/event batched)\n";
    return 1;
  }
  if (!shard_ndjson_ok) {
    std::cerr << "FAIL: shard NDJSON stream failed merge verification "
              << "(status " << shard_ndjson_status << ")\n";
    return 1;
  }
  // Windowed SLO recording must stay within 5% of the raw-counter cost on
  // the serving shape it instruments (the add() path is a clamp + a bucket
  // index + three integer updates — anything above noise means a
  // regression crept into record()).
  if (slo_overhead_pct >= kSloOverheadLimitPct) {
    std::cerr << "FAIL: SLO recording overhead " << slo_overhead_pct
              << "% exceeds the " << kSloOverheadLimitPct << "% gate (on "
              << slo_on_sec << "s vs off " << slo_off_sec << "s)\n";
    return 1;
  }
  if (slo_memory_ratio < kSloMemoryRatioGate) {
    std::cerr << "FAIL: SLO histogram memory ratio " << slo_memory_ratio
              << "x below the " << kSloMemoryRatioGate << "x gate ("
              << slo_memory_bytes << " bytes at 1e6 samples)\n";
    return 1;
  }
  if (!slo_fold_identical) {
    std::cerr << "FAIL: SLO blocks did not fold bit-identically across "
              << kSloShards << " NDJSON shards vs the serial sweep\n";
    return 1;
  }
  // Per-request forensics recording must stay within 5% of the trace+SLO
  // cost on the serving shape: capture is one 24-byte side-log append per
  // completed request, nothing on the trace ring — anything above noise
  // means per-request work leaked back into the simulation hot path.
  if (forensics_overhead_pct >= kForensicsOverheadLimitPct) {
    std::cerr << "FAIL: forensics recording overhead "
              << forensics_overhead_pct << "% exceeds the "
              << kForensicsOverheadLimitPct << "% gate (on "
              << forensics_on_sec << "s vs off " << forensics_off_sec
              << "s)\n";
    return 1;
  }
  // The analyzer itself is a single linear replay with flat per-vCPU/task
  // state; its budget is absolute per merged record so the gate does not
  // depend on how long the simulated run was.
  if (forensics_analyze_ns_per_record >= kForensicsAnalyzeNsPerRecordLimit) {
    std::cerr << "FAIL: forensics analyzer " << forensics_analyze_ns_per_record
              << "ns/record exceeds the " << kForensicsAnalyzeNsPerRecordLimit
              << "ns/record gate (" << forensics_analyze_sec << "s over "
              << fdump.records.size() << " records)\n";
    return 1;
  }
  if (!forensics_replay_identical) {
    std::cerr << "FAIL: offline forensics replay diverged from the in-run "
              << "decomposition (digest mismatch)\n";
    return 1;
  }
  // The open-loop front-end must not make a completed request more than 5%
  // more expensive to simulate than the closed-loop ab arm at the same
  // completion rate — the listener, accept pipe, FIFO, and overload checks
  // replace ab's per-connection think/request loop, not stack on top of it.
  if (frontend_overhead_pct >= kFrontendOverheadLimitPct) {
    std::cerr << "FAIL: front-end overhead " << frontend_overhead_pct
              << "% per completed request exceeds the "
              << kFrontendOverheadLimitPct << "% gate ("
              << frontend_ns_per_req << "ns/req vs ab " << ab_ns_per_req
              << "ns/req)\n";
    return 1;
  }
  if (!fe_conserved) {
    std::cerr << "FAIL: front-end conservation identity violated (arrivals "
              << fe_ledger.arrivals << " != completed " << fe_ledger.completed
              << " + dropped " << fe_ledger.dropped() << " + shed "
              << fe_ledger.shed << " + in-flight " << fe_ledger.in_flight
              << ")\n";
    return 1;
  }
  return bit_identical ? 0 : 1;
}
