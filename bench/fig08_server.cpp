// Figure 8 — multi-threaded server workloads under IRS: throughput and
// latency improvement vs vanilla Xen/Linux with 1-4 CPU hogs.
// SPECjbb-like: 4 warehouses (1:1 threads:vCPUs); ab-like: 512 connection
// threads. PLE/Relaxed-Co have little effect on these (little spinning /
// synchronisation) and are not reported, as in the paper.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/obs/forensics.h"
#include "src/obs/slo.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();

  exp::banner(std::cout, "Figure 8(a): server throughput improvement (IRS)");
  exp::Table thr({"workload", "1-inter", "2-inter", "3-inter", "4-inter"});
  exp::banner(std::cerr, "(running...)");
  exp::Table lat({"workload", "metric", "1-inter", "2-inter", "3-inter",
                  "4-inter"});

  // Register the full app x inter x {baseline, IRS} grid, run it in one
  // parallel sweep, then format.
  bench::SweepGrid grid;
  struct Point {
    std::size_t base;
    std::size_t irs;
  };
  std::vector<std::vector<Point>> points;  // [app][inter-1]
  const std::vector<std::string> apps = {"specjbb", "ab"};
  for (const auto& app : apps) {
    std::vector<Point> row;
    for (int n = 1; n <= 4; ++n) {
      bench::PanelOptions o;
      exp::ScenarioConfig base_cfg =
          bench::make_cfg(app, core::Strategy::kBaseline, n, o);
      base_cfg.server_duration = sim::seconds(2);
      exp::ScenarioConfig irs_cfg = base_cfg;
      irs_cfg.strategy = core::Strategy::kIrs;
      row.push_back(Point{grid.add(base_cfg, seeds), grid.add(irs_cfg, seeds)});
    }
    points.push_back(std::move(row));
  }
  // Open-loop cells for Figure 8(e): the "frontend" workload's arrivals
  // keep coming during hog-induced freezes (no closed-loop back-off), so
  // interference surfaces as queue growth, drops/sheds, and p999 blowups
  // the jbb/ab panels cannot show. Two overload arms: tail-drop and
  // SLO-burn shedding.
  std::vector<std::vector<Point>> open_points;  // [policy][inter-1]
  const std::vector<std::string> policies = {"drop", "shed"};
  for (const auto& ov : policies) {
    std::vector<Point> row;
    for (int n = 1; n <= 4; ++n) {
      bench::PanelOptions o;
      exp::ScenarioConfig base_cfg =
          bench::make_cfg("frontend", core::Strategy::kBaseline, n, o);
      base_cfg.server_duration = sim::seconds(2);
      base_cfg.fe_overload = ov;
      exp::ScenarioConfig irs_cfg = base_cfg;
      irs_cfg.strategy = core::Strategy::kIrs;
      row.push_back(Point{grid.add(base_cfg, seeds), grid.add(irs_cfg, seeds)});
    }
    open_points.push_back(std::move(row));
  }
  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const std::string& app = apps[a];
    std::vector<std::string> trow = {app};
    std::vector<std::string> lrow_mean = {
        app, app == "ab" ? "p99 latency" : "mean latency"};
    for (const Point& p : points[a]) {
      const exp::RunResult base = grid.avg(p.base);
      const exp::RunResult irs = grid.avg(p.irs);
      trow.push_back(
          exp::fmt_pct(core::gain_pct(base.throughput, irs.throughput)));
      // The paper reports mean (new-order) latency for SPECjbb and tail
      // (99th percentile) latency for ab.
      const double base_lat =
          static_cast<double>(app == "ab" ? base.lat_p99 : base.lat_mean);
      const double irs_lat =
          static_cast<double>(app == "ab" ? irs.lat_p99 : irs.lat_mean);
      lrow_mean.push_back(
          exp::fmt_pct(core::improvement_pct(base_lat, irs_lat)));
    }
    thr.add_row(std::move(trow));
    lat.add_row(std::move(lrow_mean));
  }
  thr.print(std::cout);
  exp::banner(std::cout, "Figure 8(b): server latency improvement (IRS)");
  lat.print(std::cout);

  // Windowed SLO view of the same runs: whole-run p999, violation count,
  // worst 30ms-window p999, and the peak error-budget burn rate, Baseline
  // vs IRS. This is where interference shows up even when the means are
  // close — a single hog-induced stall blows one window's tail while
  // leaving the run-level average almost untouched.
  exp::banner(std::cout, "Figure 8(c): windowed SLO (30ms windows)");
  exp::Table slo({"workload", "inter", "strategy", "p999", "viol",
                  "worst-win p999", "peak burn"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (std::size_t n = 0; n < points[a].size(); ++n) {
      const Point& p = points[a][n];
      for (const bool is_irs : {false, true}) {
        const exp::RunResult r = grid.avg(is_irs ? p.irs : p.base);
        if (r.slo.empty()) continue;
        const obs::SloClassResult& c = r.slo.classes.front();
        sim::Duration worst_p999 = 0;
        double peak_burn = 0;
        for (const obs::SloWindow& win : c.windows) {
          worst_p999 = std::max(worst_p999, win.p999);
          peak_burn = std::max(peak_burn, obs::burn_rate(win, c.spec));
        }
        slo.add_row({apps[a], std::to_string(n + 1),
                     is_irs ? "IRS" : "Baseline",
                     exp::fmt_ms(c.total.percentile(99.9)),
                     std::to_string(c.violations()),
                     exp::fmt_ms(worst_p999), exp::fmt_f(peak_burn, 2)});
      }
    }
  }
  slo.print(std::cout);

  // Does IRS hold the tail when arrivals don't back off? Per (policy,
  // inter, strategy): whole-run p999, the conservation ledger's refusal
  // counts, the deepest the accept queue got, and the mean accept-queue
  // wait of completed requests.
  exp::banner(std::cout,
              "Figure 8(e): open-loop front-end (arrivals do not back off)");
  exp::Table open({"policy", "inter", "strategy", "p999", "completed",
                   "dropped", "shed", "max depth", "mean qwait"});
  for (std::size_t a = 0; a < policies.size(); ++a) {
    for (std::size_t n = 0; n < open_points[a].size(); ++n) {
      const Point& p = open_points[a][n];
      for (const bool is_irs : {false, true}) {
        const exp::RunResult r = grid.avg(is_irs ? p.irs : p.base);
        const obs::FrontendResult& f = r.frontend;
        const sim::Duration p999 =
            r.slo.empty() ? r.lat_p99
                          : r.slo.classes.front().total.percentile(99.9);
        const sim::Duration qwait_mean =
            f.completed > 0 ? f.queue_wait_total /
                                  static_cast<sim::Duration>(f.completed)
                            : 0;
        open.add_row({policies[a], std::to_string(n + 1),
                      is_irs ? "IRS" : "Baseline", exp::fmt_ms(p999),
                      std::to_string(f.completed),
                      std::to_string(f.dropped()), std::to_string(f.shed),
                      std::to_string(f.max_queue_depth),
                      exp::fmt_us(qwait_mean)});
      }
    }
  }
  open.print(std::cout);

  // Why did p999 move? Per-request causal forensics on one fixed-seed run
  // per (workload, strategy) at the heaviest interference level: the
  // per-cause share of total request latency. The specjbb-spin row cranks
  // the critical section to a 300 µs ticket spinlock every transaction —
  // the kernel-spinlock shape where Baseline's violating tail is dominated
  // by lock-holder/waiter preemption and IRS converts that stall time back
  // into plain run/ready-wait (the default blocking-mutex rows show the
  // milder steal/throttle story instead). These are separate single runs
  // (forensics needs the trace ring), not part of the registry grid above.
  exp::banner(std::cout,
              "Figure 8(d): why did p999 move (latency share by cause, "
              "4 hogs, seed 1)");
  std::vector<std::string> fheads = {"workload", "strategy", "spans",
                                     "viol wins", "top cause"};
  for (int i = 0; i < obs::kNumCauses; ++i) {
    fheads.push_back(obs::cause_name(static_cast<obs::Cause>(i)));
  }
  exp::Table why(std::move(fheads));
  std::vector<std::string> fapps(apps.begin(), apps.end());
  fapps.push_back("specjbb-spin");
  for (const auto& app : fapps) {
    const bool spin = app == "specjbb-spin";
    for (const bool is_irs : {false, true}) {
      bench::PanelOptions o;
      exp::ScenarioConfig cfg = bench::make_cfg(
          spin ? "specjbb" : app,
          is_irs ? core::Strategy::kIrs : core::Strategy::kBaseline, 4, o);
      cfg.server_duration = sim::seconds(1);
      cfg.forensics = true;
      if (spin) {
        cfg.jbb_cs_len = sim::microseconds(300);
        cfg.jbb_cs_every = 1;
        cfg.jbb_cs_spin = true;
      }
      const exp::RunResult r = exp::run_scenario(cfg);
      if (r.forensics.empty()) continue;
      const obs::ForensicsClassResult& c = r.forensics.classes.front();
      std::int64_t grand = 0;
      for (int i = 0; i < obs::kNumCauses; ++i) {
        grand += c.cause_total(static_cast<obs::Cause>(i));
      }
      // Dominant cause over the violating windows only — the tail story.
      sim::Duration win_causes[obs::kNumCauses] = {};
      for (const obs::ForensicsWindow& win : c.windows) {
        for (int i = 0; i < obs::kNumCauses; ++i) {
          win_causes[i] += win.causes[i];
        }
      }
      int top = 0;
      for (int i = 1; i < obs::kNumCauses; ++i) {
        if (win_causes[i] > win_causes[top]) top = i;
      }
      std::vector<std::string> row = {
          app, is_irs ? "IRS" : "Baseline", std::to_string(c.spans),
          std::to_string(c.windows.size()),
          c.windows.empty() ? "-"
                            : obs::cause_name(static_cast<obs::Cause>(top))};
      for (int i = 0; i < obs::kNumCauses; ++i) {
        const double share =
            grand > 0
                ? 100.0 *
                      static_cast<double>(
                          c.cause_total(static_cast<obs::Cause>(i))) /
                      static_cast<double>(grand)
                : 0.0;
        row.push_back(exp::fmt_f(share, 1) + "%");
      }
      why.add_row(std::move(row));
    }
  }
  why.print(std::cout);
  return 0;
}
