// Figure 13 — PARSEC under CPU stacking (unpinned, 4-inter hogs). For
// blocking workloads, stacking is driven by deceptive idleness: PLE and
// relaxed-co often make things worse; IRS keeps threads off idle vCPUs and
// exposes the VM's real demand.
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/parsec.h"

int main() {
  using namespace irs;
  bench::PanelOptions o;
  o.bg = "hog";
  o.pinned = false;
  o.inter_levels = {4};
  bench::improvement_panel(
      "Figure 13: PARSEC under CPU stacking (unpinned, 4-inter hogs)",
      wl::parsec_names(), o);
  return 0;
}
