// Ablations of IRS design choices called out in DESIGN.md:
//  * the Fig. 4 wake-up fix (tagged-task preemption) on/off,
//  * the migrator's target policy (Algorithm 2 idle-first vs. variants),
//  * idle housekeeping (how quickly vacated vCPUs are refilled).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace irs;

exp::ScenarioConfig cfg_with(const std::string& app,
                             const guest::GuestConfig& gc, int n_inter,
                             core::Strategy strategy) {
  bench::PanelOptions o;
  exp::ScenarioConfig cfg = bench::make_cfg(app, strategy, n_inter, o);
  cfg.fg_guest = gc;
  return cfg;
}

}  // namespace

int main() {
  const std::vector<std::string> apps = {"streamcluster", "fluidanimate",
                                         "UA"};
  const int seeds = exp::bench_seeds();

  // All three ablation tables are independent simulations: register every
  // cell up front and run one sweep over the union.
  bench::SweepGrid grid;

  struct WakeupRow {
    std::size_t base, fix_on, fix_off;
  };
  std::vector<WakeupRow> wakeup;
  for (const auto& app : apps) {
    guest::GuestConfig on;
    guest::GuestConfig off;
    off.irs_wakeup_fix = false;
    wakeup.push_back(WakeupRow{
        grid.add(cfg_with(app, on, 1, core::Strategy::kBaseline), seeds),
        grid.add(cfg_with(app, on, 1, core::Strategy::kIrs), seeds),
        grid.add(cfg_with(app, off, 1, core::Strategy::kIrs), seeds)});
  }

  const std::vector<guest::MigratorPolicy> policies = {
      guest::MigratorPolicy::kIdleThenLeastLoaded,
      guest::MigratorPolicy::kLeastLoadedOnly,
      guest::MigratorPolicy::kFirstRunning};
  struct PolicyRow {
    std::size_t base;
    std::vector<std::size_t> per_policy;
  };
  std::vector<PolicyRow> policy_rows;
  for (const auto& app : apps) {
    guest::GuestConfig gc;
    PolicyRow row;
    row.base = grid.add(cfg_with(app, gc, 1, core::Strategy::kBaseline), seeds);
    for (const auto pol : policies) {
      gc.migrator_policy = pol;
      row.per_policy.push_back(
          grid.add(cfg_with(app, gc, 1, core::Strategy::kIrs), seeds));
    }
    policy_rows.push_back(std::move(row));
  }

  const std::vector<long> idle_ms = {4L, 10L, 30L, 0L};
  struct IdleRow {
    std::size_t base;
    std::vector<std::size_t> per_period;
  };
  std::vector<IdleRow> idle_rows;
  for (const auto& app : apps) {
    guest::GuestConfig gc;
    IdleRow row;
    row.base = grid.add(cfg_with(app, gc, 1, core::Strategy::kBaseline), seeds);
    for (const long ms : idle_ms) {
      gc.idle_poll_period = sim::milliseconds(ms);
      row.per_period.push_back(
          grid.add(cfg_with(app, gc, 1, core::Strategy::kIrs), seeds));
    }
    idle_rows.push_back(std::move(row));
  }

  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file

  exp::banner(std::cout, "Ablation: IRS wake-up fix (Fig. 4) on/off");
  exp::Table wf({"app", "baseline", "IRS (fix on)", "IRS (fix off)"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto base = grid.avg(wakeup[i].base);
    wf.add_row(
        {apps[i], exp::fmt_ms(base.fg_makespan),
         exp::fmt_pct(exp::improvement_pct(base, grid.avg(wakeup[i].fix_on))),
         exp::fmt_pct(
             exp::improvement_pct(base, grid.avg(wakeup[i].fix_off)))});
  }
  wf.print(std::cout);

  exp::banner(std::cout, "Ablation: migrator target policy (Algorithm 2)");
  exp::Table mp({"app", "idle-then-least (paper)", "least-loaded only",
                 "first-running"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto base = grid.avg(policy_rows[i].base);
    std::vector<std::string> row = {apps[i]};
    for (const std::size_t cell : policy_rows[i].per_policy) {
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, grid.avg(cell))));
    }
    mp.add_row(std::move(row));
  }
  mp.print(std::cout);

  exp::banner(std::cout, "Ablation: idle housekeeping period");
  exp::Table ip({"app", "4ms", "10ms (default)", "30ms", "off"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto base = grid.avg(idle_rows[i].base);
    std::vector<std::string> row = {apps[i]};
    for (const std::size_t cell : idle_rows[i].per_period) {
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, grid.avg(cell))));
    }
    ip.add_row(std::move(row));
  }
  ip.print(std::cout);
  return 0;
}
