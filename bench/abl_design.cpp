// Ablations of IRS design choices called out in DESIGN.md:
//  * the Fig. 4 wake-up fix (tagged-task preemption) on/off,
//  * the migrator's target policy (Algorithm 2 idle-first vs. variants),
//  * idle housekeeping (how quickly vacated vCPUs are refilled).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace irs;

exp::RunResult run_with(const std::string& app,
                        const guest::GuestConfig& gc, int n_inter,
                        core::Strategy strategy) {
  bench::PanelOptions o;
  exp::ScenarioConfig cfg = bench::make_cfg(app, strategy, n_inter, o);
  cfg.fg_guest = gc;
  return exp::run_averaged(cfg, exp::bench_seeds());
}

}  // namespace

int main() {
  const std::vector<std::string> apps = {"streamcluster", "fluidanimate",
                                         "UA"};

  exp::banner(std::cout, "Ablation: IRS wake-up fix (Fig. 4) on/off");
  exp::Table wf({"app", "baseline", "IRS (fix on)", "IRS (fix off)"});
  for (const auto& app : apps) {
    guest::GuestConfig on;
    guest::GuestConfig off;
    off.irs_wakeup_fix = false;
    const auto base =
        run_with(app, on, 1, core::Strategy::kBaseline);
    const auto fix_on = run_with(app, on, 1, core::Strategy::kIrs);
    const auto fix_off = run_with(app, off, 1, core::Strategy::kIrs);
    wf.add_row({app, exp::fmt_ms(base.fg_makespan),
                exp::fmt_pct(exp::improvement_pct(base, fix_on)),
                exp::fmt_pct(exp::improvement_pct(base, fix_off))});
  }
  wf.print(std::cout);

  exp::banner(std::cout, "Ablation: migrator target policy (Algorithm 2)");
  exp::Table mp({"app", "idle-then-least (paper)", "least-loaded only",
                 "first-running"});
  for (const auto& app : apps) {
    guest::GuestConfig gc;
    const auto base = run_with(app, gc, 1, core::Strategy::kBaseline);
    std::vector<std::string> row = {app};
    for (const auto pol :
         {guest::MigratorPolicy::kIdleThenLeastLoaded,
          guest::MigratorPolicy::kLeastLoadedOnly,
          guest::MigratorPolicy::kFirstRunning}) {
      gc.migrator_policy = pol;
      const auto r = run_with(app, gc, 1, core::Strategy::kIrs);
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, r)));
    }
    mp.add_row(std::move(row));
  }
  mp.print(std::cout);

  exp::banner(std::cout, "Ablation: idle housekeeping period");
  exp::Table ip({"app", "4ms", "10ms (default)", "30ms", "off"});
  for (const auto& app : apps) {
    guest::GuestConfig gc;
    const auto base = run_with(app, gc, 1, core::Strategy::kBaseline);
    std::vector<std::string> row = {app};
    for (const long ms : {4L, 10L, 30L, 0L}) {
      gc.idle_poll_period = sim::milliseconds(ms);
      const auto r = run_with(app, gc, 1, core::Strategy::kIrs);
      row.push_back(exp::fmt_pct(exp::improvement_pct(base, r)));
    }
    ip.add_row(std::move(row));
  }
  ip.print(std::cout);
  return 0;
}
