// Shared sweep/printing helpers for the per-figure benchmark binaries.
//
// Every binary regenerates the rows/series of one paper figure. Absolute
// numbers are simulation-specific; the shapes (who wins, by roughly what
// factor, where crossovers fall) are what EXPERIMENTS.md compares.
//
// All figure sweeps are grids of independent simulations, so each panel
// registers its full grid on a SweepGrid and executes it in one run_sweep
// call — IRS_BENCH_JOBS workers (default: hardware concurrency), results
// bit-identical to a serial sweep.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/exp/sweep.h"

namespace irs::bench {

/// Baseline work scale for benchmark runs (keeps each run fast while
/// preserving many hv-scheduling periods per run).
inline constexpr double kWorkScale = 0.5;

struct PanelOptions {
  std::string bg = "hog";
  std::vector<int> inter_levels = {1, 2, 4};
  std::vector<core::Strategy> strategies = {core::Strategy::kPle,
                                            core::Strategy::kRelaxedCo,
                                            core::Strategy::kIrs};
  int n_vcpus = 4;
  int n_pcpus = 4;
  int n_bg_vms = 1;
  bool pinned = true;
  bool npb_spinning = true;
  double work_scale = kWorkScale;
};

inline exp::ScenarioConfig make_cfg(const std::string& app,
                                    core::Strategy strategy, int n_inter,
                                    const PanelOptions& o) {
  exp::ScenarioConfig cfg;
  cfg.fg = app;
  cfg.fg_threads = o.n_vcpus;
  cfg.strategy = strategy;
  cfg.bg = o.bg;
  cfg.n_inter = n_inter;
  cfg.n_bg_vms = o.n_bg_vms;
  cfg.n_vcpus = o.n_vcpus;
  cfg.n_pcpus = o.n_pcpus;
  cfg.pinned = o.pinned;
  cfg.npb_spinning = o.npb_spinning;
  cfg.work_scale = o.work_scale;
  return cfg;
}

/// Accumulates a whole figure's grid of (config x seeds) cells, executes
/// them in one parallel sweep, then hands back per-cell seed averages.
/// Usage: add() every cell, run() once, then avg(cell_id) while formatting.
class SweepGrid {
 public:
  /// Register one averaged data point: `n_seeds` runs of `cfg` with seeds
  /// derived from (cfg.seed, 0..n_seeds-1). Returns the cell id.
  std::size_t add(const exp::ScenarioConfig& cfg, int n_seeds) {
    cells_.push_back(
        Cell{cfgs_.size(), static_cast<std::size_t>(n_seeds)});
    for (const auto& c : exp::seed_grid(cfg, n_seeds)) cfgs_.push_back(c);
    return cells_.size() - 1;
  }

  /// Execute every registered run on the sweep pool. Call exactly once.
  /// When IRS_BENCH_NDJSON names a file, every result is also streamed to
  /// it as NDJSON (one result_json per line, appended in run order) while
  /// the sweep executes.
  void run() {
    if (const char* path = std::getenv("IRS_BENCH_NDJSON")) {
      std::ofstream out(path, std::ios::app);
      if (out) {
        results_ = exp::run_sweep(cfgs_, exp::ndjson_consumer(out));
        return;
      }
      std::cerr << "warning: cannot open IRS_BENCH_NDJSON path '" << path
                << "'; streaming disabled\n";
    }
    results_ = exp::run_sweep(cfgs_);
  }

  /// Seed-averaged result of one cell (run() must have completed).
  [[nodiscard]] exp::RunResult avg(std::size_t cell) const {
    const Cell& c = cells_.at(cell);
    return exp::average_results(std::vector<exp::RunResult>(
        results_.begin() + static_cast<std::ptrdiff_t>(c.offset),
        results_.begin() + static_cast<std::ptrdiff_t>(c.offset + c.len)));
  }

  [[nodiscard]] std::size_t n_runs() const { return cfgs_.size(); }

 private:
  struct Cell {
    std::size_t offset = 0;
    std::size_t len = 0;
  };
  std::vector<Cell> cells_;
  std::vector<exp::ScenarioConfig> cfgs_;
  std::vector<exp::RunResult> results_;
};

namespace detail {

/// Shared skeleton of the improvement/weighted panels: one baseline cell
/// plus one cell per strategy for every (app, inter-level), submitted as a
/// single grid; `fmt` turns (baseline, strategy result) into a table cell.
template <typename Fmt>
void strategy_panel(const std::string& title,
                    const std::vector<std::string>& apps,
                    const PanelOptions& o, Fmt&& fmt) {
  exp::banner(std::cout, title);
  std::vector<std::string> headers = {"app"};
  for (const int n : o.inter_levels) {
    for (const auto s : o.strategies) {
      headers.push_back(std::to_string(n) + "-inter " +
                        core::strategy_name(s));
    }
  }
  exp::Table table(headers);
  const int seeds = exp::bench_seeds();

  SweepGrid grid;
  struct Point {
    std::size_t base;
    std::vector<std::size_t> per_strategy;
  };
  std::vector<std::vector<Point>> points;  // [app][inter]
  for (const auto& app : apps) {
    std::vector<Point> row;
    for (const int n : o.inter_levels) {
      Point p;
      p.base = grid.add(make_cfg(app, core::Strategy::kBaseline, n, o),
                        seeds);
      for (const auto s : o.strategies) {
        p.per_strategy.push_back(grid.add(make_cfg(app, s, n, o), seeds));
      }
      row.push_back(std::move(p));
    }
    points.push_back(std::move(row));
  }
  grid.run();

  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<std::string> row = {apps[a]};
    for (const Point& p : points[a]) {
      const exp::RunResult base = grid.avg(p.base);
      for (const std::size_t cell : p.per_strategy) {
        row.push_back(fmt(base, grid.avg(cell)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace detail

/// One figure panel: performance improvement (%) over vanilla Xen/Linux
/// for each app x (strategy, inter-level). Mirrors Fig. 5/6/12/13 rows.
inline void improvement_panel(const std::string& title,
                              const std::vector<std::string>& apps,
                              const PanelOptions& o) {
  detail::strategy_panel(
      title, apps, o, [](const exp::RunResult& base, const exp::RunResult& r) {
        return exp::fmt_pct(exp::improvement_pct(base, r));
      });
}

/// Weighted-speedup panel (Fig. 7/9): fg+bg speedup vs vanilla, percent
/// (100 = parity).
inline void weighted_panel(const std::string& title,
                           const std::vector<std::string>& apps,
                           const PanelOptions& o) {
  detail::strategy_panel(
      title, apps, o, [](const exp::RunResult& base, const exp::RunResult& r) {
        return exp::fmt_f(exp::weighted_speedup_pct(base, r), 1) + "%";
      });
}

}  // namespace irs::bench
