// Shared sweep/printing helpers for the per-figure benchmark binaries.
//
// Every binary regenerates the rows/series of one paper figure. Absolute
// numbers are simulation-specific; the shapes (who wins, by roughly what
// factor, where crossovers fall) are what EXPERIMENTS.md compares.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"

namespace irs::bench {

/// Baseline work scale for benchmark runs (keeps each run fast while
/// preserving many hv-scheduling periods per run).
inline constexpr double kWorkScale = 0.5;

struct PanelOptions {
  std::string bg = "hog";
  std::vector<int> inter_levels = {1, 2, 4};
  std::vector<core::Strategy> strategies = {core::Strategy::kPle,
                                            core::Strategy::kRelaxedCo,
                                            core::Strategy::kIrs};
  int n_vcpus = 4;
  int n_pcpus = 4;
  int n_bg_vms = 1;
  bool pinned = true;
  bool npb_spinning = true;
  double work_scale = kWorkScale;
};

inline exp::ScenarioConfig make_cfg(const std::string& app,
                                    core::Strategy strategy, int n_inter,
                                    const PanelOptions& o) {
  exp::ScenarioConfig cfg;
  cfg.fg = app;
  cfg.fg_threads = o.n_vcpus;
  cfg.strategy = strategy;
  cfg.bg = o.bg;
  cfg.n_inter = n_inter;
  cfg.n_bg_vms = o.n_bg_vms;
  cfg.n_vcpus = o.n_vcpus;
  cfg.n_pcpus = o.n_pcpus;
  cfg.pinned = o.pinned;
  cfg.npb_spinning = o.npb_spinning;
  cfg.work_scale = o.work_scale;
  return cfg;
}

/// One figure panel: performance improvement (%) over vanilla Xen/Linux
/// for each app x (strategy, inter-level). Mirrors Fig. 5/6/12/13 rows.
inline void improvement_panel(const std::string& title,
                              const std::vector<std::string>& apps,
                              const PanelOptions& o) {
  exp::banner(std::cout, title);
  std::vector<std::string> headers = {"app"};
  for (const int n : o.inter_levels) {
    for (const auto s : o.strategies) {
      headers.push_back(std::to_string(n) + "-inter " +
                        core::strategy_name(s));
    }
  }
  exp::Table table(headers);
  const int seeds = exp::bench_seeds();
  for (const auto& app : apps) {
    std::vector<std::string> row = {app};
    for (const int n : o.inter_levels) {
      const exp::RunResult base = exp::run_averaged(
          make_cfg(app, core::Strategy::kBaseline, n, o), seeds);
      for (const auto s : o.strategies) {
        const exp::RunResult r =
            exp::run_averaged(make_cfg(app, s, n, o), seeds);
        row.push_back(exp::fmt_pct(exp::improvement_pct(base, r)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// Weighted-speedup panel (Fig. 7/9): fg+bg speedup vs vanilla, percent
/// (100 = parity).
inline void weighted_panel(const std::string& title,
                           const std::vector<std::string>& apps,
                           const PanelOptions& o) {
  exp::banner(std::cout, title);
  std::vector<std::string> headers = {"app"};
  for (const int n : o.inter_levels) {
    for (const auto s : o.strategies) {
      headers.push_back(std::to_string(n) + "-inter " +
                        core::strategy_name(s));
    }
  }
  exp::Table table(headers);
  const int seeds = exp::bench_seeds();
  for (const auto& app : apps) {
    std::vector<std::string> row = {app};
    for (const int n : o.inter_levels) {
      const exp::RunResult base = exp::run_averaged(
          make_cfg(app, core::Strategy::kBaseline, n, o), seeds);
      for (const auto s : o.strategies) {
        const exp::RunResult r =
            exp::run_averaged(make_cfg(app, s, n, o), seeds);
        row.push_back(exp::fmt_f(exp::weighted_speedup_pct(base, r), 1) + "%");
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace irs::bench
