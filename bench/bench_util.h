// Shared sweep/printing helpers for the per-figure benchmark binaries.
//
// Every binary regenerates the rows/series of one paper figure. Absolute
// numbers are simulation-specific; the shapes (who wins, by roughly what
// factor, where crossovers fall) are what EXPERIMENTS.md compares.
//
// All figure sweeps are grids of independent simulations, so each panel
// registers its full grid on a SweepGrid and executes it in one run_sweep
// call — IRS_BENCH_JOBS workers (default: hardware concurrency), results
// bit-identical to a serial sweep.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/grids.h"
#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/exp/shard.h"
#include "src/exp/sweep.h"

namespace irs::bench {

/// Panel knobs and cell construction live in src/exp/grids.h now, shared
/// with the named-grid registry so `irs_sweep --fig figNN` and the bench
/// binaries cannot drift apart. These aliases keep the bench code reading
/// as before.
using exp::kPanelWorkScale;
using exp::PanelOptions;
inline constexpr double kWorkScale = exp::kPanelWorkScale;

inline exp::ScenarioConfig make_cfg(const std::string& app,
                                    core::Strategy strategy, int n_inter,
                                    const PanelOptions& o) {
  return exp::panel_cfg(app, strategy, n_inter, o);
}

/// Accumulates a whole figure's grid of (config x seeds) cells, executes
/// them in one parallel sweep, then hands back per-cell seed averages.
/// Usage: add() every cell, run() once, then avg(cell_id) while formatting.
class SweepGrid {
 public:
  /// Register one averaged data point: `n_seeds` runs of `cfg` with seeds
  /// derived from (cfg.seed, 0..n_seeds-1). Returns the cell id.
  std::size_t add(const exp::ScenarioConfig& cfg, int n_seeds) {
    cells_.push_back(
        Cell{cfgs_.size(), static_cast<std::size_t>(n_seeds)});
    for (const auto& c : exp::seed_grid(cfg, n_seeds)) cfgs_.push_back(c);
    return cells_.size() - 1;
  }

  /// Name the grid for shard-file headers (lets a merge's repair plan emit
  /// runnable `irs_sweep --fig` commands). Optional; empty is fine.
  void set_fig(std::string fig) { fig_ = std::move(fig); }

  /// Execute every registered run on the sweep pool. Call exactly once.
  ///
  /// Returns true when the full grid ran and avg() is usable. When
  /// IRS_BENCH_SHARD=i/N is set, only that round-robin shard of the grid
  /// runs, streamed in exp::shard NDJSON form (header + one line per run,
  /// keyed by *global* run index) to IRS_BENCH_NDJSON — required in shard
  /// mode — and run() returns false: averages would be partial, so callers
  /// skip table rendering and the shards are instead merged with
  /// irs_sweep_merge. One shard file per grid: binaries that run several
  /// panels should shard only single-grid figures (e.g. bench_report).
  ///
  /// Without IRS_BENCH_SHARD, IRS_BENCH_NDJSON still streams every result
  /// as one result_json per line, appended in run order.
  [[nodiscard]] bool run() {
    if (const char* spec = std::getenv("IRS_BENCH_SHARD")) {
      exp::ShardSpec shard;
      if (!exp::parse_shard_spec(spec, &shard)) {
        std::cerr << "error: bad IRS_BENCH_SHARD '" << spec
                  << "' (want i/N)\n";
        std::exit(64);
      }
      const char* path = std::getenv("IRS_BENCH_NDJSON");
      if (path == nullptr) {
        std::cerr << "error: IRS_BENCH_SHARD requires IRS_BENCH_NDJSON "
                     "(a shard's results only exist in its NDJSON file)\n";
        std::exit(64);
      }
      std::ofstream out(path, std::ios::app);
      if (!out) {
        std::cerr << "error: cannot open IRS_BENCH_NDJSON path '" << path
                  << "'\n";
        std::exit(64);
      }
      exp::ShardHeader h;
      h.shard = shard.index;
      h.n_shards = shard.count;
      h.total_runs = cfgs_.size();
      h.fig = fig_;
      h.seeds = exp::bench_seeds();
      out << exp::shard_header_json(h) << '\n';
      out.flush();
      const auto owned =
          exp::shard_run_indices(cfgs_.size(), shard.index, shard.count);
      exp::run_sweep(exp::shard_grid(cfgs_, shard.index, shard.count),
                     [&](std::size_t i, const exp::RunResult& r) {
                       out << exp::shard_line_json(owned[i], r) << '\n';
                       out.flush();
                     });
      return false;
    }
    if (const char* path = std::getenv("IRS_BENCH_NDJSON")) {
      std::ofstream out(path, std::ios::app);
      if (out) {
        results_ = exp::run_sweep(cfgs_, exp::ndjson_consumer(out));
        return true;
      }
      std::cerr << "warning: cannot open IRS_BENCH_NDJSON path '" << path
                << "'; streaming disabled\n";
    }
    results_ = exp::run_sweep(cfgs_);
    return true;
  }

  /// Seed-averaged result of one cell (run() must have completed).
  [[nodiscard]] exp::RunResult avg(std::size_t cell) const {
    const Cell& c = cells_.at(cell);
    return exp::average_results(std::vector<exp::RunResult>(
        results_.begin() + static_cast<std::ptrdiff_t>(c.offset),
        results_.begin() + static_cast<std::ptrdiff_t>(c.offset + c.len)));
  }

  [[nodiscard]] std::size_t n_runs() const { return cfgs_.size(); }

 private:
  struct Cell {
    std::size_t offset = 0;
    std::size_t len = 0;
  };
  std::string fig_;
  std::vector<Cell> cells_;
  std::vector<exp::ScenarioConfig> cfgs_;
  std::vector<exp::RunResult> results_;
};

namespace detail {

/// Shared skeleton of the improvement/weighted panels: one baseline cell
/// plus one cell per strategy for every (app, inter-level), submitted as a
/// single grid; `fmt` turns (baseline, strategy result) into a table cell.
template <typename Fmt>
void strategy_panel(const std::string& title,
                    const std::vector<std::string>& apps,
                    const PanelOptions& o, Fmt&& fmt) {
  exp::banner(std::cout, title);
  std::vector<std::string> headers = {"app"};
  for (const int n : o.inter_levels) {
    for (const auto s : o.strategies) {
      headers.push_back(std::to_string(n) + "-inter " +
                        core::strategy_name(s));
    }
  }
  exp::Table table(headers);
  const int seeds = exp::bench_seeds();

  SweepGrid grid;
  struct Point {
    std::size_t base;
    std::vector<std::size_t> per_strategy;
  };
  std::vector<std::vector<Point>> points;  // [app][inter]
  for (const auto& app : apps) {
    std::vector<Point> row;
    for (const int n : o.inter_levels) {
      Point p;
      p.base = grid.add(make_cfg(app, core::Strategy::kBaseline, n, o),
                        seeds);
      for (const auto s : o.strategies) {
        p.per_strategy.push_back(grid.add(make_cfg(app, s, n, o), seeds));
      }
      row.push_back(std::move(p));
    }
    points.push_back(std::move(row));
  }
  if (!grid.run()) return;  // shard mode: results live in the NDJSON file

  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<std::string> row = {apps[a]};
    for (const Point& p : points[a]) {
      const exp::RunResult base = grid.avg(p.base);
      for (const std::size_t cell : p.per_strategy) {
        row.push_back(fmt(base, grid.avg(cell)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace detail

/// One figure panel: performance improvement (%) over vanilla Xen/Linux
/// for each app x (strategy, inter-level). Mirrors Fig. 5/6/12/13 rows.
inline void improvement_panel(const std::string& title,
                              const std::vector<std::string>& apps,
                              const PanelOptions& o) {
  detail::strategy_panel(
      title, apps, o, [](const exp::RunResult& base, const exp::RunResult& r) {
        return exp::fmt_pct(exp::improvement_pct(base, r));
      });
}

/// Weighted-speedup panel (Fig. 7/9): fg+bg speedup vs vanilla, percent
/// (100 = parity).
inline void weighted_panel(const std::string& title,
                           const std::vector<std::string>& apps,
                           const PanelOptions& o) {
  detail::strategy_panel(
      title, apps, o, [](const exp::RunResult& base, const exp::RunResult& r) {
        return exp::fmt_f(exp::weighted_speedup_pct(base, r), 1) + "%";
      });
}

}  // namespace irs::bench
