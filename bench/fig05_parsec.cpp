// Figure 5 — PARSEC performance improvement (blocking synchronisation)
// under PLE / Relaxed-Co / IRS, relative to vanilla Xen/Linux, with three
// interference types: (a) CPU-hog micro-benchmark, (b) streamcluster,
// (c) fluidanimate.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/parsec.h"

int main() {
  using namespace irs;
  const auto apps = wl::parsec_names();

  bench::PanelOptions o;
  o.bg = "hog";
  bench::improvement_panel(
      "Figure 5(a): PARSEC improvement w/ micro-benchmark interference",
      apps, o);

  if (std::getenv("IRS_BENCH_FAST") == nullptr) {
    o.bg = "streamcluster";
    bench::improvement_panel(
        "Figure 5(b): PARSEC improvement w/ streamcluster interference",
        apps, o);

    o.bg = "fluidanimate";
    bench::improvement_panel(
        "Figure 5(c): PARSEC improvement w/ fluidanimate interference",
        apps, o);
  }
  return 0;
}
