// Figure 11 — sensitivity to the degree of per-pCPU contention: 4-vCPU
// foreground VM, 1-3 interfering VMs stacked on the same pCPUs, IRS
// improvement over vanilla Xen/Linux. The paper's finding: gains GROW with
// the consolidation degree — IRS matters most in dense packs.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace irs;
  const int seeds = exp::bench_seeds();
  for (const char* app : {"x264", "blackscholes", "EP", "MG"}) {
    const bool npb_spin = app == std::string("MG");
    exp::banner(std::cout, std::string("Figure 11: ") + app +
                               " — IRS improvement vs #interfering VMs");
    exp::Table t({"", "1 VM", "2 VMs", "3 VMs"});

    bench::SweepGrid grid;
    struct Point {
      std::size_t base;
      std::size_t irs;
    };
    std::vector<std::vector<Point>> points;  // [n_inter][vms-1]
    for (const int n_inter : {1, 2, 4}) {
      std::vector<Point> prow;
      for (int vms = 1; vms <= 3; ++vms) {
        bench::PanelOptions o;
        o.bg = "hog";
        o.n_bg_vms = vms;
        o.npb_spinning = npb_spin || app != std::string("EP");
        prow.push_back(Point{
            grid.add(
                bench::make_cfg(app, core::Strategy::kBaseline, n_inter, o),
                seeds),
            grid.add(bench::make_cfg(app, core::Strategy::kIrs, n_inter, o),
                     seeds)});
      }
      points.push_back(std::move(prow));
    }
    if (!grid.run()) continue;  // shard mode: results live in the NDJSON file

    const int inter_levels[] = {1, 2, 4};
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::vector<std::string> row = {std::to_string(inter_levels[i]) +
                                      "-inter"};
      for (const Point& p : points[i]) {
        row.push_back(exp::fmt_pct(
            exp::improvement_pct(grid.avg(p.base), grid.avg(p.irs))));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  return 0;
}
