// Figure 10 — scalability: 8-vCPU VMs on 8 pCPUs, IRS improvement as the
// number of interfered vCPUs grows from 1 to 8, for four synchronisation
// styles: x264 (mutex), blackscholes (barrier), EP (blocking), MG
// (spinning), each against three interference types.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"

namespace {

void panel(const std::string& app, bool npb_spinning,
           const std::string& subtitle) {
  using namespace irs;
  exp::banner(std::cout, "Figure 10: " + app + " (" + subtitle + ")");
  const bool fast = std::getenv("IRS_BENCH_FAST") != nullptr;
  const std::vector<std::string> bgs =
      fast ? std::vector<std::string>{"hog"}
           : std::vector<std::string>{"hog", "fluidanimate", "streamcluster"};
  std::vector<std::string> headers = {"interference"};
  const std::vector<int> levels = {1, 2, 4, 6, 8};
  for (const int n : levels) headers.push_back(std::to_string(n) + "-inter");
  exp::Table t(headers);
  const int seeds = exp::bench_seeds();

  // Full bg x level x {baseline, IRS} grid in one sweep.
  bench::SweepGrid grid;
  struct Point {
    std::size_t base;
    std::size_t irs;
  };
  std::vector<std::vector<Point>> points;  // [bg][level]
  for (const auto& bg : bgs) {
    std::vector<Point> row;
    for (const int n : levels) {
      bench::PanelOptions o;
      o.n_vcpus = 8;
      o.n_pcpus = 8;
      o.bg = bg;
      o.npb_spinning = npb_spinning;
      row.push_back(Point{
          grid.add(bench::make_cfg(app, core::Strategy::kBaseline, n, o),
                   seeds),
          grid.add(bench::make_cfg(app, core::Strategy::kIrs, n, o), seeds)});
    }
    points.push_back(std::move(row));
  }
  if (!grid.run()) return;  // shard mode: results live in the NDJSON file

  for (std::size_t b = 0; b < bgs.size(); ++b) {
    std::vector<std::string> row = {"w/ " + bgs[b]};
    for (const Point& p : points[b]) {
      row.push_back(
          exp::fmt_pct(exp::improvement_pct(grid.avg(p.base), grid.avg(p.irs))));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  panel("x264", true, "pthread mutex");
  panel("blackscholes", true, "pthread barrier");
  panel("EP", false, "blocking OMP barrier");
  panel("MG", true, "spinning OMP barrier");
  return 0;
}
