// Figure 2 — CPU utilisation relative to fair share under interference.
// Blocking-sync PARSEC and NPB (OMP_WAIT_POLICY=passive) apps fall well
// short of their fair share; raytrace's user-level load balancing keeps it
// near 1.0.
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/npb.h"
#include "src/wl/parsec.h"

int main() {
  using namespace irs;
  exp::banner(std::cout,
              "Figure 2: CPU utilisation relative to fair share "
              "(1-inter, blocking sync)");
  exp::Table t({"app", "suite", "util/fair", "useful/fair"});
  const int seeds = exp::bench_seeds();

  auto run_one = [&](const std::string& app, const char* suite,
                     bool npb_spinning) {
    bench::PanelOptions o;
    o.npb_spinning = npb_spinning;
    exp::ScenarioConfig cfg =
        bench::make_cfg(app, core::Strategy::kBaseline, 1, o);
    const exp::RunResult r = exp::run_averaged(cfg, seeds);
    return std::vector<std::string>{app, suite,
                                    exp::fmt_f(r.fg_util_vs_fair, 2),
                                    exp::fmt_f(r.fg_efficiency, 2)};
  };

  for (const char* app :
       {"streamcluster", "canneal", "fluidanimate", "bodytrack", "x264",
        "facesim", "blackscholes"}) {
    t.add_row(run_one(app, "PARSEC", false));
  }
  // Paper Fig. 2 runs NPB with the passive (blocking) wait policy.
  for (const char* app : {"BT", "CG", "MG", "FT", "SP", "UA"}) {
    t.add_row(run_one(app, "NPB", false));
  }
  t.add_row(run_one("raytrace", "PARSEC (work-steal)", false));
  t.print(std::cout);
  return 0;
}
