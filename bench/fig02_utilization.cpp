// Figure 2 — CPU utilisation relative to fair share under interference.
// Blocking-sync PARSEC and NPB (OMP_WAIT_POLICY=passive) apps fall well
// short of their fair share; raytrace's user-level load balancing keeps it
// near 1.0.
#include <iostream>

#include "bench/bench_util.h"
#include "src/wl/npb.h"
#include "src/wl/parsec.h"

int main() {
  using namespace irs;
  exp::banner(std::cout,
              "Figure 2: CPU utilisation relative to fair share "
              "(1-inter, blocking sync)");
  exp::Table t({"app", "suite", "util/fair", "useful/fair"});
  const int seeds = exp::bench_seeds();

  bench::SweepGrid grid;
  struct Entry {
    std::string app;
    const char* suite;
    std::size_t cell;
  };
  std::vector<Entry> entries;
  auto add_one = [&](const std::string& app, const char* suite,
                     bool npb_spinning) {
    bench::PanelOptions o;
    o.npb_spinning = npb_spinning;
    entries.push_back(
        {app, suite,
         grid.add(bench::make_cfg(app, core::Strategy::kBaseline, 1, o),
                  seeds)});
  };

  for (const char* app :
       {"streamcluster", "canneal", "fluidanimate", "bodytrack", "x264",
        "facesim", "blackscholes"}) {
    add_one(app, "PARSEC", false);
  }
  // Paper Fig. 2 runs NPB with the passive (blocking) wait policy.
  for (const char* app : {"BT", "CG", "MG", "FT", "SP", "UA"}) {
    add_one(app, "NPB", false);
  }
  add_one("raytrace", "PARSEC (work-steal)", false);

  if (!grid.run()) return 0;  // shard mode: results live in the NDJSON file
  for (const Entry& e : entries) {
    const exp::RunResult r = grid.avg(e.cell);
    t.add_row({e.app, e.suite, exp::fmt_f(r.fg_util_vs_fair, 2),
               exp::fmt_f(r.fg_efficiency, 2)});
  }
  t.print(std::cout);
  return 0;
}
