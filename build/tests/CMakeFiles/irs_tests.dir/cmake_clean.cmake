file(REMOVE_RECURSE
  "CMakeFiles/irs_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/irs_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/guest_balance_test.cpp.o"
  "CMakeFiles/irs_tests.dir/guest_balance_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/guest_irs_test.cpp.o"
  "CMakeFiles/irs_tests.dir/guest_irs_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/guest_sched_test.cpp.o"
  "CMakeFiles/irs_tests.dir/guest_sched_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/hv_credit_test.cpp.o"
  "CMakeFiles/irs_tests.dir/hv_credit_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/hv_strategy_test.cpp.o"
  "CMakeFiles/irs_tests.dir/hv_strategy_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/hv_unit_test.cpp.o"
  "CMakeFiles/irs_tests.dir/hv_unit_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/integration_test.cpp.o"
  "CMakeFiles/irs_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/property_test.cpp.o"
  "CMakeFiles/irs_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/sim_engine_test.cpp.o"
  "CMakeFiles/irs_tests.dir/sim_engine_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/sim_rng_test.cpp.o"
  "CMakeFiles/irs_tests.dir/sim_rng_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/sim_trace_test.cpp.o"
  "CMakeFiles/irs_tests.dir/sim_trace_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/sync_test.cpp.o"
  "CMakeFiles/irs_tests.dir/sync_test.cpp.o.d"
  "CMakeFiles/irs_tests.dir/wl_test.cpp.o"
  "CMakeFiles/irs_tests.dir/wl_test.cpp.o.d"
  "irs_tests"
  "irs_tests.pdb"
  "irs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
