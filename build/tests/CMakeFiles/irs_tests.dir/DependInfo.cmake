
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/irs_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/guest_balance_test.cpp" "tests/CMakeFiles/irs_tests.dir/guest_balance_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/guest_balance_test.cpp.o.d"
  "/root/repo/tests/guest_irs_test.cpp" "tests/CMakeFiles/irs_tests.dir/guest_irs_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/guest_irs_test.cpp.o.d"
  "/root/repo/tests/guest_sched_test.cpp" "tests/CMakeFiles/irs_tests.dir/guest_sched_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/guest_sched_test.cpp.o.d"
  "/root/repo/tests/hv_credit_test.cpp" "tests/CMakeFiles/irs_tests.dir/hv_credit_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/hv_credit_test.cpp.o.d"
  "/root/repo/tests/hv_strategy_test.cpp" "tests/CMakeFiles/irs_tests.dir/hv_strategy_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/hv_strategy_test.cpp.o.d"
  "/root/repo/tests/hv_unit_test.cpp" "tests/CMakeFiles/irs_tests.dir/hv_unit_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/hv_unit_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/irs_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/irs_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sim_engine_test.cpp" "tests/CMakeFiles/irs_tests.dir/sim_engine_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/sim_engine_test.cpp.o.d"
  "/root/repo/tests/sim_rng_test.cpp" "tests/CMakeFiles/irs_tests.dir/sim_rng_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/sim_rng_test.cpp.o.d"
  "/root/repo/tests/sim_trace_test.cpp" "tests/CMakeFiles/irs_tests.dir/sim_trace_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/sim_trace_test.cpp.o.d"
  "/root/repo/tests/sync_test.cpp" "tests/CMakeFiles/irs_tests.dir/sync_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/sync_test.cpp.o.d"
  "/root/repo/tests/wl_test.cpp" "tests/CMakeFiles/irs_tests.dir/wl_test.cpp.o" "gcc" "tests/CMakeFiles/irs_tests.dir/wl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/irs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
