# Empty compiler generated dependencies file for irs_tests.
# This may be replaced when dependencies are built.
