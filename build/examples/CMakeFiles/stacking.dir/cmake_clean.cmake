file(REMOVE_RECURSE
  "CMakeFiles/stacking.dir/stacking.cpp.o"
  "CMakeFiles/stacking.dir/stacking.cpp.o.d"
  "stacking"
  "stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
