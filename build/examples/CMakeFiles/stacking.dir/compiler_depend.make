# Empty compiler generated dependencies file for stacking.
# This may be replaced when dependencies are built.
