file(REMOVE_RECURSE
  "CMakeFiles/server_latency.dir/server_latency.cpp.o"
  "CMakeFiles/server_latency.dir/server_latency.cpp.o.d"
  "server_latency"
  "server_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
