# Empty compiler generated dependencies file for server_latency.
# This may be replaced when dependencies are built.
