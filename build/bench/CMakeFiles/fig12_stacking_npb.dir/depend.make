# Empty dependencies file for fig12_stacking_npb.
# This may be replaced when dependencies are built.
