file(REMOVE_RECURSE
  "CMakeFiles/fig12_stacking_npb.dir/fig12_stacking_npb.cpp.o"
  "CMakeFiles/fig12_stacking_npb.dir/fig12_stacking_npb.cpp.o.d"
  "fig12_stacking_npb"
  "fig12_stacking_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stacking_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
