file(REMOVE_RECURSE
  "CMakeFiles/fig05_parsec.dir/fig05_parsec.cpp.o"
  "CMakeFiles/fig05_parsec.dir/fig05_parsec.cpp.o.d"
  "fig05_parsec"
  "fig05_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
