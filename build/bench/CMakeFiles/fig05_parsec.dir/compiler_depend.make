# Empty compiler generated dependencies file for fig05_parsec.
# This may be replaced when dependencies are built.
