# Empty dependencies file for fig08_server.
# This may be replaced when dependencies are built.
