file(REMOVE_RECURSE
  "CMakeFiles/fig08_server.dir/fig08_server.cpp.o"
  "CMakeFiles/fig08_server.dir/fig08_server.cpp.o.d"
  "fig08_server"
  "fig08_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
