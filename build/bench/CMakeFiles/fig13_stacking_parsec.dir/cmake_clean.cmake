file(REMOVE_RECURSE
  "CMakeFiles/fig13_stacking_parsec.dir/fig13_stacking_parsec.cpp.o"
  "CMakeFiles/fig13_stacking_parsec.dir/fig13_stacking_parsec.cpp.o.d"
  "fig13_stacking_parsec"
  "fig13_stacking_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stacking_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
