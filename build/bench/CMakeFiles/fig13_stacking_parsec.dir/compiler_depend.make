# Empty compiler generated dependencies file for fig13_stacking_parsec.
# This may be replaced when dependencies are built.
