# Empty dependencies file for fig06_npb.
# This may be replaced when dependencies are built.
