file(REMOVE_RECURSE
  "CMakeFiles/fig06_npb.dir/fig06_npb.cpp.o"
  "CMakeFiles/fig06_npb.dir/fig06_npb.cpp.o.d"
  "fig06_npb"
  "fig06_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
