# Empty dependencies file for abl_sa_overhead.
# This may be replaced when dependencies are built.
