file(REMOVE_RECURSE
  "CMakeFiles/abl_sa_overhead.dir/abl_sa_overhead.cpp.o"
  "CMakeFiles/abl_sa_overhead.dir/abl_sa_overhead.cpp.o.d"
  "abl_sa_overhead"
  "abl_sa_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sa_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
