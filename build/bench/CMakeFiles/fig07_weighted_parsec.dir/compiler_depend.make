# Empty compiler generated dependencies file for fig07_weighted_parsec.
# This may be replaced when dependencies are built.
