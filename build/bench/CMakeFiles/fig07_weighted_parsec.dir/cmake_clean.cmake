file(REMOVE_RECURSE
  "CMakeFiles/fig07_weighted_parsec.dir/fig07_weighted_parsec.cpp.o"
  "CMakeFiles/fig07_weighted_parsec.dir/fig07_weighted_parsec.cpp.o.d"
  "fig07_weighted_parsec"
  "fig07_weighted_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_weighted_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
