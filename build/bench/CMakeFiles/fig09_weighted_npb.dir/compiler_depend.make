# Empty compiler generated dependencies file for fig09_weighted_npb.
# This may be replaced when dependencies are built.
