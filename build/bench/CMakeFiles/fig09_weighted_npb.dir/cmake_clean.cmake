file(REMOVE_RECURSE
  "CMakeFiles/fig09_weighted_npb.dir/fig09_weighted_npb.cpp.o"
  "CMakeFiles/fig09_weighted_npb.dir/fig09_weighted_npb.cpp.o.d"
  "fig09_weighted_npb"
  "fig09_weighted_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_weighted_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
