# Empty compiler generated dependencies file for irs.
# This may be replaced when dependencies are built.
