file(REMOVE_RECURSE
  "libirs.a"
)
