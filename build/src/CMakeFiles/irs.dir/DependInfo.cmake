
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/irs.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/irs.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/CMakeFiles/irs.dir/core/strategy.cpp.o" "gcc" "src/CMakeFiles/irs.dir/core/strategy.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/CMakeFiles/irs.dir/core/world.cpp.o" "gcc" "src/CMakeFiles/irs.dir/core/world.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/irs.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/irs.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/irs.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/irs.dir/exp/runner.cpp.o.d"
  "/root/repo/src/exp/scenarios.cpp" "src/CMakeFiles/irs.dir/exp/scenarios.cpp.o" "gcc" "src/CMakeFiles/irs.dir/exp/scenarios.cpp.o.d"
  "/root/repo/src/guest/cfs_runqueue.cpp" "src/CMakeFiles/irs.dir/guest/cfs_runqueue.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/cfs_runqueue.cpp.o.d"
  "/root/repo/src/guest/context_switcher.cpp" "src/CMakeFiles/irs.dir/guest/context_switcher.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/context_switcher.cpp.o.d"
  "/root/repo/src/guest/guest_cpu.cpp" "src/CMakeFiles/irs.dir/guest/guest_cpu.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/guest_cpu.cpp.o.d"
  "/root/repo/src/guest/guest_kernel.cpp" "src/CMakeFiles/irs.dir/guest/guest_kernel.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/guest_kernel.cpp.o.d"
  "/root/repo/src/guest/load_balancer.cpp" "src/CMakeFiles/irs.dir/guest/load_balancer.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/load_balancer.cpp.o.d"
  "/root/repo/src/guest/migrator.cpp" "src/CMakeFiles/irs.dir/guest/migrator.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/migrator.cpp.o.d"
  "/root/repo/src/guest/sa_receiver.cpp" "src/CMakeFiles/irs.dir/guest/sa_receiver.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/sa_receiver.cpp.o.d"
  "/root/repo/src/guest/softirq.cpp" "src/CMakeFiles/irs.dir/guest/softirq.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/softirq.cpp.o.d"
  "/root/repo/src/guest/steal_clock.cpp" "src/CMakeFiles/irs.dir/guest/steal_clock.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/steal_clock.cpp.o.d"
  "/root/repo/src/guest/task.cpp" "src/CMakeFiles/irs.dir/guest/task.cpp.o" "gcc" "src/CMakeFiles/irs.dir/guest/task.cpp.o.d"
  "/root/repo/src/hv/credit_scheduler.cpp" "src/CMakeFiles/irs.dir/hv/credit_scheduler.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/credit_scheduler.cpp.o.d"
  "/root/repo/src/hv/delay_preempt.cpp" "src/CMakeFiles/irs.dir/hv/delay_preempt.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/delay_preempt.cpp.o.d"
  "/root/repo/src/hv/event_channel.cpp" "src/CMakeFiles/irs.dir/hv/event_channel.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/event_channel.cpp.o.d"
  "/root/repo/src/hv/host.cpp" "src/CMakeFiles/irs.dir/hv/host.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/host.cpp.o.d"
  "/root/repo/src/hv/pcpu.cpp" "src/CMakeFiles/irs.dir/hv/pcpu.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/pcpu.cpp.o.d"
  "/root/repo/src/hv/ple.cpp" "src/CMakeFiles/irs.dir/hv/ple.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/ple.cpp.o.d"
  "/root/repo/src/hv/relaxed_co.cpp" "src/CMakeFiles/irs.dir/hv/relaxed_co.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/relaxed_co.cpp.o.d"
  "/root/repo/src/hv/sa_sender.cpp" "src/CMakeFiles/irs.dir/hv/sa_sender.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/sa_sender.cpp.o.d"
  "/root/repo/src/hv/vcpu.cpp" "src/CMakeFiles/irs.dir/hv/vcpu.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/vcpu.cpp.o.d"
  "/root/repo/src/hv/vm.cpp" "src/CMakeFiles/irs.dir/hv/vm.cpp.o" "gcc" "src/CMakeFiles/irs.dir/hv/vm.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/irs.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/irs.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/irs.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sync/barrier.cpp" "src/CMakeFiles/irs.dir/sync/barrier.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/barrier.cpp.o.d"
  "/root/repo/src/sync/condvar.cpp" "src/CMakeFiles/irs.dir/sync/condvar.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/condvar.cpp.o.d"
  "/root/repo/src/sync/mutex.cpp" "src/CMakeFiles/irs.dir/sync/mutex.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/mutex.cpp.o.d"
  "/root/repo/src/sync/pipe.cpp" "src/CMakeFiles/irs.dir/sync/pipe.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/pipe.cpp.o.d"
  "/root/repo/src/sync/spinlock.cpp" "src/CMakeFiles/irs.dir/sync/spinlock.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/spinlock.cpp.o.d"
  "/root/repo/src/sync/sync_context.cpp" "src/CMakeFiles/irs.dir/sync/sync_context.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/sync_context.cpp.o.d"
  "/root/repo/src/sync/work_pool.cpp" "src/CMakeFiles/irs.dir/sync/work_pool.cpp.o" "gcc" "src/CMakeFiles/irs.dir/sync/work_pool.cpp.o.d"
  "/root/repo/src/wl/behavior.cpp" "src/CMakeFiles/irs.dir/wl/behavior.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/behavior.cpp.o.d"
  "/root/repo/src/wl/hog.cpp" "src/CMakeFiles/irs.dir/wl/hog.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/hog.cpp.o.d"
  "/root/repo/src/wl/npb.cpp" "src/CMakeFiles/irs.dir/wl/npb.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/npb.cpp.o.d"
  "/root/repo/src/wl/parallel_workload.cpp" "src/CMakeFiles/irs.dir/wl/parallel_workload.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/parallel_workload.cpp.o.d"
  "/root/repo/src/wl/parsec.cpp" "src/CMakeFiles/irs.dir/wl/parsec.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/parsec.cpp.o.d"
  "/root/repo/src/wl/registry.cpp" "src/CMakeFiles/irs.dir/wl/registry.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/registry.cpp.o.d"
  "/root/repo/src/wl/server.cpp" "src/CMakeFiles/irs.dir/wl/server.cpp.o" "gcc" "src/CMakeFiles/irs.dir/wl/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
