// CPU-stacking demo (paper §5.6): with every vCPU unpinned, VM-oblivious,
// utilisation-driven placement stacks the parallel VM's vCPUs onto few
// pCPUs while hogs spread out — blocking workloads look deceptively idle.
// IRS keeps threads off descheduled vCPUs and exposes real demand.
//
//   $ ./examples/stacking [app]
#include <cstdio>
#include <string>

#include "src/exp/runner.h"

int main(int argc, char** argv) {
  using namespace irs;
  const std::string app = argc > 1 ? argv[1] : "streamcluster";

  std::printf(
      "CPU stacking: %s (4 threads) + 3 CPU hogs, ALL vCPUs unpinned on 4 "
      "pCPUs\n\n",
      app.c_str());

  // §5.6's example: a 4-thread blocking workload sharing 4 CPUs with
  // THREE persistent hogs — the deceptively idle vCPUs "fit" next to each
  // other on the hog-free pCPU and the parallel VM collapses onto it.
  exp::ScenarioConfig cfg;
  cfg.fg = app;
  cfg.bg = "hog";
  cfg.n_inter = 3;
  cfg.pinned = false;

  exp::RunResult base;
  for (auto strategy : core::all_strategies()) {
    cfg.strategy = strategy;
    const exp::RunResult r = exp::run_averaged(cfg, 3);
    if (strategy == core::Strategy::kBaseline) base = r;
    std::printf("%-10s makespan %8.1f ms   vs vanilla %+6.1f%%   util/fair %.2f\n",
                core::strategy_name(strategy), sim::to_ms(r.fg_makespan),
                exp::improvement_pct(base, r), r.fg_util_vs_fair);
  }

  std::printf(
      "\nFor comparison, the pinned (no-stacking) baseline of the same "
      "setup:\n");
  cfg.pinned = true;
  cfg.strategy = core::Strategy::kBaseline;
  const exp::RunResult pinned = exp::run_averaged(cfg, 3);
  std::printf("%-10s makespan %8.1f ms\n", "pinned", sim::to_ms(pinned.fg_makespan));
  return 0;
}
