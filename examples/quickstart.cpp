// Quickstart: build a consolidated host, run one parallel application under
// CPU interference with and without IRS, and compare.
//
//   $ ./examples/quickstart [app]
//
// This is the minimal end-to-end use of the public API: World + VmConfig +
// workload registry + metrics.
#include <cstdio>
#include <string>

#include "src/core/world.h"
#include "src/exp/runner.h"

int main(int argc, char** argv) {
  using namespace irs;
  const std::string app = argc > 1 ? argv[1] : "streamcluster";

  std::printf("IRS quickstart: %s (4 threads, 4 vCPUs) vs. one CPU hog\n\n",
              app.c_str());

  exp::ScenarioConfig cfg;
  cfg.fg = app;
  cfg.bg = "hog";
  cfg.n_inter = 1;  // one of four vCPUs experiences interference

  exp::RunResult results[2];
  const core::Strategy strategies[2] = {core::Strategy::kBaseline,
                                        core::Strategy::kIrs};
  for (int i = 0; i < 2; ++i) {
    cfg.strategy = strategies[i];
    results[i] = exp::run_scenario(cfg);
    std::printf("%-10s makespan %8.2f ms   util/fair %.2f   LHP %llu LWP %llu\n",
                core::strategy_name(strategies[i]),
                sim::to_ms(results[i].fg_makespan),
                results[i].fg_util_vs_fair,
                static_cast<unsigned long long>(results[i].lhp),
                static_cast<unsigned long long>(results[i].lwp));
  }
  std::printf("\nIRS improvement: %.1f%%  (SA sent %llu, acked %llu, avg ack %0.1fus)\n",
              exp::improvement_pct(results[0], results[1]),
              static_cast<unsigned long long>(results[1].sa_sent),
              static_cast<unsigned long long>(results[1].sa_acked),
              sim::to_us(results[1].sa_delay_avg));
  return 0;
}
