// Server-latency demo (paper §5.3): a SPECjbb-like multi-threaded server
// VM next to CPU-bound neighbours. Prints throughput and the latency
// distribution under each scheduling strategy.
//
//   $ ./examples/server_latency [n_interfering_hogs]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/world.h"
#include "src/wl/registry.h"
#include "src/wl/server.h"

int main(int argc, char** argv) {
  using namespace irs;
  const int n_hogs = argc > 1 ? std::atoi(argv[1]) : 2;

  std::printf("SPECjbb-like server (4 warehouses, 4 vCPUs) vs %d CPU hog(s)\n\n",
              n_hogs);
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "strategy", "txn/s",
              "mean", "p50", "p99", "max");

  for (auto strategy :
       {core::Strategy::kBaseline, core::Strategy::kPle,
        core::Strategy::kRelaxedCo, core::Strategy::kIrs}) {
    core::WorldConfig wc;
    wc.strategy = strategy;
    wc.seed = 21;
    core::World world(wc);

    hv::VmConfig server_cfg;
    server_cfg.name = "server";
    server_cfg.n_vcpus = 4;
    server_cfg.pin_map = {0, 1, 2, 3};
    const auto server = world.add_vm(server_cfg, /*irs_capable=*/true);
    auto& wl = world.attach(
        server, std::make_unique<wl::JbbWorkload>(4, sim::seconds(3)));

    if (n_hogs > 0) {
      hv::VmConfig bg_cfg;
      bg_cfg.name = "neighbours";
      bg_cfg.n_vcpus = n_hogs;
      for (int i = 0; i < n_hogs; ++i) bg_cfg.pin_map.push_back(i);
      const auto bg = world.add_vm(bg_cfg, false);
      wl::WorkloadOptions opts;
      opts.n_threads = n_hogs;
      world.attach(bg, wl::make_workload("hog", opts));
    }

    world.start();
    world.run_until_finished(server, sim::seconds(30));

    auto& jbb = static_cast<wl::JbbWorkload&>(wl);
    std::printf("%-10s %10.0f %9.0fus %9.0fus %9.0fus %9.1fms\n",
                core::strategy_name(strategy), jbb.throughput(),
                sim::to_us(jbb.latency().mean()),
                sim::to_us(jbb.latency().percentile(50)),
                sim::to_us(jbb.latency().percentile(99)),
                sim::to_ms(jbb.latency().max()));
  }
  return 0;
}
