// Consolidation study: two real parallel applications sharing four pCPUs
// (the paper's §5.4 fairness/efficiency setup). Shows per-VM CPU shares,
// weighted speedup, and that IRS never pushes the foreground VM beyond its
// fair share.
//
//   $ ./examples/consolidation [fg-app] [bg-app]
#include <cstdio>
#include <string>

#include "src/exp/runner.h"

int main(int argc, char** argv) {
  using namespace irs;
  const std::string fg = argc > 1 ? argv[1] : "streamcluster";
  const std::string bg = argc > 2 ? argv[2] : "fluidanimate";

  std::printf("Consolidation: %s (foreground) + %s (background), 2-inter\n\n",
              fg.c_str(), bg.c_str());

  exp::ScenarioConfig cfg;
  cfg.fg = fg;
  cfg.bg = bg;
  cfg.n_inter = 2;

  exp::RunResult base;
  for (auto strategy : core::all_strategies()) {
    cfg.strategy = strategy;
    const exp::RunResult r = exp::run_scenario(cfg);
    if (strategy == core::Strategy::kBaseline) base = r;
    std::printf(
        "%-10s fg makespan %8.1f ms  fg util/fair %.2f  bg rate %6.1f/s  "
        "weighted speedup %5.1f%%\n",
        core::strategy_name(strategy), sim::to_ms(r.fg_makespan),
        r.fg_util_vs_fair, r.bg_progress_rate,
        exp::weighted_speedup_pct(base, r));
  }
  std::printf(
      "\nNote: util/fair <= ~1.0 for every strategy — the guest-side IRS\n"
      "machinery must not (and does not) let a VM exceed its hypervisor\n"
      "fair share (paper section 5.4).\n");
  return 0;
}
