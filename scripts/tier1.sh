#!/usr/bin/env bash
# Tier-1 verify line (see ROADMAP.md): configure, build, run the full test
# suite. Any argument is forwarded to cmake configure (e.g. -DIRS_SANITIZE=thread).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Sharded-sweep round-trip: N local shard subprocesses merged must be
# byte-identical to the single-process sweep.
scripts/shard_roundtrip.sh

# Forensics smoke: one traced serving run end-to-end through the
# per-request causal decomposition — the cause table, the violating-window
# root-cause rows, and the CSV renderer must all produce output.
./build/tools/irs_trace_dump --fg specjbb --strategy Xen \
    --forensics --csv > /dev/null

# Open-loop front-end smoke: a short fig08_open arm (frontend workload
# under a hog, tail-drop policy) through the trace dump's conservation
# ledger table — the arrival pipeline, overload accounting, and the
# queue-wait forensics cause must all render end-to-end.
./build/tools/irs_trace_dump --fg frontend --strategy IRS \
    --frontend --fe-overload drop --csv > /dev/null

# Cluster smoke: the two-host virtual datacenter end-to-end — a protected
# "ab" server fixed on host 0 plus one migratable hog VM, admitted by the
# random baseline and by the IRS-informed policy. The placement/migration
# ledger table and the per-host timelines (trace.json + trace.host1.json)
# must all render.
for pol in random irs; do
  ./build/tools/irs_trace_dump --cluster --cluster-policy "$pol" \
      --fg ab --inter 2 --bg-vms 1 --csv \
      build/cluster_smoke_trace.json > /dev/null
done

# Engine deep-queue bench smoke: every EventQueue backend variant (binary,
# quad, wheel x tight/timer shapes, batching off/on) must run clean. The
# old-vs-new ratios the perf trajectory tracks are recorded in
# BENCH_sweep.json as deepqueue_speedup_vs_binary and
# dispatch_batch_speedup by bench/bench_report, which gates on both.
./build/bench/micro_benchmarks --benchmark_filter=BM_EngineDeepQueue \
    --benchmark_min_time=0.05

# Gate check: bench_report fails (exit 1) if dispatch_batch_speedup < 1.3
# or deepqueue_speedup_vs_binary < 0.9, or any determinism/overhead gate
# trips (including the SLO recording-overhead, histogram-memory,
# cross-shard fold-identity, and open-loop front-end per-request overhead
# gates). IRS_BENCH_FAST keeps the sweep portion smoke-sized.
IRS_BENCH_FAST=1 ./build/bench/bench_report build/BENCH_tier1_smoke.json

# Optional UBSan pass (separate build tree, ~one extra compile): set
# IRS_TIER1_UBSAN=1 to run scripts/ubsan.sh as part of the tier-1 line.
if [[ "${IRS_TIER1_UBSAN:-0}" == "1" ]]; then
  scripts/ubsan.sh
fi
