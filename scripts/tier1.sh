#!/usr/bin/env bash
# Tier-1 verify line (see ROADMAP.md): configure, build, run the full test
# suite. Any argument is forwarded to cmake configure (e.g. -DIRS_SANITIZE=thread).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Sharded-sweep round-trip: N local shard subprocesses merged must be
# byte-identical to the single-process sweep.
scripts/shard_roundtrip.sh

# Engine deep-queue bench smoke: every EventQueue backend variant (binary,
# quad, wheel x tight/timer shapes) must run clean. The old-vs-new ratio
# the perf trajectory tracks is recorded in BENCH_sweep.json as
# deepqueue_speedup_vs_binary by bench/bench_report, which gates on it.
./build/bench/micro_benchmarks --benchmark_filter=BM_EngineDeepQueue \
    --benchmark_min_time=0.05
