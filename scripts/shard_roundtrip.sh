#!/usr/bin/env bash
# Sharded-sweep round-trip check: run the smoke grid once in a single
# process and once as N local shard subprocesses, merge + verify the
# shards, and require the merged NDJSON to be byte-identical to the
# single-process file. This is the acceptance test of the sharded-sweep
# layer, runnable standalone or as the sweep_shard_asan CTest job.
#
#   IRS_SWEEP=build/tools/irs_sweep \
#   IRS_SWEEP_MERGE=build/tools/irs_sweep_merge \
#   scripts/shard_roundtrip.sh [fig] [n_shards] [seeds]
set -euo pipefail

cd "$(dirname "$0")/.."

FIG="${1:-smoke}"
N_SHARDS="${2:-4}"
SEEDS="${3:-1}"
SWEEP="${IRS_SWEEP:-build/tools/irs_sweep}"
MERGE="${IRS_SWEEP_MERGE:-build/tools/irs_sweep_merge}"

for bin in "$SWEEP" "$MERGE"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build build --target irs_sweep irs_sweep_merge)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== shard round-trip: --fig $FIG, $N_SHARDS shards, $SEEDS seed(s)"

# Single-process reference (the canonical 0/1 shard file).
"$SWEEP" --fig "$FIG" --seeds "$SEEDS" --ndjson "$WORK/full.ndjson"

# N local shard subprocesses, merged and verified by the parent.
"$SWEEP" --fig "$FIG" --seeds "$SEEDS" --shards "$N_SHARDS" \
  --out-dir "$WORK" --merge "$WORK/merged.ndjson" > "$WORK/summary.json"

# The independently-built merge CLI must agree and exit clean.
"$MERGE" --out "$WORK/merged2.ndjson" --repair-plan \
  "$WORK"/shard[0-9]*.ndjson > "$WORK/summary2.json"

cmp "$WORK/full.ndjson" "$WORK/merged.ndjson"
cmp "$WORK/full.ndjson" "$WORK/merged2.ndjson"
echo "== merged $N_SHARDS shards byte-identical to the single-process sweep"
