#!/usr/bin/env bash
# Memory-safety pass: build with AddressSanitizer in a separate build tree
# and run the full unit suite plus the dedicated jobs registered under
# -DIRS_SANITIZE=address: obs_pipeline_asan (the trace pipeline hands
# pointers between staging buffers, the shared ring, and exporters),
# engine_queue_asan (wheel buckets / due list / compaction move raw
# 24-byte entries), and engine_batch_asan (pop_batch scratch copies,
# half-consumed tail re-pushes, calendar bulk migration), and
# forensics_asan (the request-forensics replay indexes flat per-vCPU/task
# state by trace ids and reads half-open spans after ring wrap, fuzzed
# over randomized ring capacities), and frontend_asan (the bounded accept
# FIFO's push/pop churn and lazily sized per-connection keepalive
# counters under the overload fault matrix), and cluster_asan (replica
# gates are heap booleans captured by parked behaviors and migration
# closures outlive the decision that made them) — exactly the kind of
# ownership bug ASan catches and TSan does not.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DIRS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j --target irs_tests irs_sweep irs_sweep_merge
cd build-asan && ctest --output-on-failure -j
