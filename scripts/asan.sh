#!/usr/bin/env bash
# Memory-safety pass: build with AddressSanitizer in a separate build tree
# and run the full unit suite plus the dedicated obs/trace job registered
# under -DIRS_SANITIZE=address (the trace pipeline hands pointers between
# staging buffers, the shared ring, and exporters — exactly the kind of
# ownership bug ASan catches and TSan does not).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DIRS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j --target irs_tests irs_sweep irs_sweep_merge
cd build-asan && ctest --output-on-failure -j
