#!/usr/bin/env bash
# Prove the parallel sweep pool is race-free: build with ThreadSanitizer in
# a separate build tree and run the sweep determinism suite plus the
# observability pipeline (sampler/trace/export) under the pool — the
# sweep_determinism_tsan, obs_pipeline_tsan, engine_queue_tsan,
# engine_batch_tsan, forensics_tsan (per-run trace replay + fold/digest
# under worker threads), frontend_tsan (the open-loop front-end's
# shared accept pipe/FIFO/ledger under the sweep pool), and cluster_tsan
# (N HostNodes on one engine plus the cluster determinism battery across
# sweep thread counts) CTest jobs registered under -DIRS_SANITIZE=thread.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DIRS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target irs_tests
cd build-tsan && ctest --output-on-failure -R 'sweep_determinism_tsan|obs_pipeline_tsan|engine_queue_tsan|engine_batch_tsan|forensics_tsan|frontend_tsan|cluster_tsan'
