#!/usr/bin/env bash
# Undefined-behaviour pass: build with UBSan (findings fatal via
# -fno-sanitize-recover) in a separate build tree and run the full unit
# suite plus the dedicated jobs registered under -DIRS_SANITIZE=undefined:
# obs_pipeline_ubsan (trace/export/JSON integer round-trips) and slo_ubsan
# (the SLO histogram's bucket-index shifts, 128-bit sums, FNV digest
# mixing, and StatAccumulator moment folds — the arithmetic-heaviest code
# in the repo, where signed overflow or an out-of-range shift would
# otherwise hide behind whatever the optimiser happened to emit), and
# forensics_ubsan (segment arithmetic over trace timestamps and the
# 128-bit per-cause sums behind the exact-sum contract), and
# frontend_ubsan (arrival-gap rate/Duration conversions through doubles
# and the conservation-ledger digest mixing), and cluster_ubsan (the
# placement-ledger digest's 64-bit mixing, steal/downtime arithmetic over
# vCPU state times, and the burn threshold's double conversion).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-ubsan -S . -DIRS_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ubsan -j --target irs_tests irs_sweep irs_sweep_merge
cd build-ubsan && ctest --output-on-failure -j
