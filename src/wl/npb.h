// NAS Parallel Benchmark models (OpenMP — paper §5.1).
//
// With OMP_WAIT_POLICY=active (the paper's Figure 6 setup) threads spin at
// barriers; with the passive policy they block. `spinning` selects between
// the two. EP barely synchronises; CG/IS/UA sync finely.
#pragma once

#include <string>
#include <vector>

#include "src/wl/spec.h"

namespace irs::wl {

/// All modelled NPB applications, Figure 6 order, with the requested wait
/// policy.
std::vector<AppSpec> npb_specs(bool spinning = true);

std::vector<std::string> npb_names();

/// Look up one app; aborts on unknown names.
AppSpec npb_spec(const std::string& name, bool spinning = true);

}  // namespace irs::wl
