// Workload base class: a named bundle of tasks + behaviours + sync
// primitives that can be instantiated into a guest kernel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/guest/guest_kernel.h"
#include "src/obs/counters.h"
#include "src/sync/sync_context.h"
#include "src/wl/spec.h"

namespace irs::wl {

class Workload {
 public:
  explicit Workload(std::string name) : name_(std::move(name)) {}
  virtual ~Workload() = default;
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Create synchronisation primitives, behaviours, and tasks inside `k`.
  /// Called exactly once, before GuestKernel::start().
  virtual void instantiate(guest::GuestKernel& k) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// All tasks have finished (bounded workloads; endless ones never do).
  [[nodiscard]] bool finished() const {
    if (tasks_.empty()) return false;
    for (const guest::Task* t : tasks_) {
      if (!t->finished()) return false;
    }
    return true;
  }

  /// Monotone work counter (phases / items / transactions completed),
  /// folded across the per-task shards of the work registry.
  /// The throughput of endless background workloads is progress()/time.
  [[nodiscard]] double progress() const {
    return static_cast<double>(work_.fold(obs::Cnt::kWorkUnits));
  }

  /// Per-task work-unit registry (behaviours increment their own shard;
  /// see task_shard()).
  [[nodiscard]] obs::Counters& work() { return work_; }
  [[nodiscard]] const obs::Counters& work() const { return work_; }

  [[nodiscard]] const std::vector<guest::Task*>& tasks() const {
    return tasks_;
  }

  /// Total useful compute completed by this workload's tasks.
  [[nodiscard]] sim::Duration useful_compute() const {
    sim::Duration total = 0;
    for (const guest::Task* t : tasks_) total += t->stats.compute_done;
    return total;
  }

  /// Latest finish time across tasks (-1 if any still running).
  [[nodiscard]] sim::Time makespan_end() const {
    sim::Time end = 0;
    for (const guest::Task* t : tasks_) {
      if (t->stats.finished_at < 0) return -1;
      end = std::max(end, t->stats.finished_at);
    }
    return end;
  }

 protected:
  Workload(Workload&&) = default;

  /// Shared by behaviours to report completed units of work, one
  /// cache-line-padded shard per task.
  obs::Counters work_;

  std::string name_;
  std::vector<guest::Task*> tasks_;
  std::unique_ptr<sync::SyncContext> sync_;
  std::vector<std::unique_ptr<guest::Behavior>> behaviors_;
};

}  // namespace irs::wl
