#include "src/wl/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/wl/frontend.h"
#include "src/wl/hog.h"
#include "src/wl/npb.h"
#include "src/wl/parallel_workload.h"
#include "src/wl/parsec.h"
#include "src/wl/server.h"

namespace irs::wl {

namespace {

bool is_parsec(const std::string& name) {
  const auto names = parsec_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

bool is_npb(const std::string& name) {
  const auto names = npb_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

AppSpec scaled(AppSpec s, double scale) {
  s.work_per_thread = static_cast<sim::Duration>(
      static_cast<double>(s.work_per_thread) * scale);
  return s;
}

}  // namespace

bool workload_exists(const std::string& name) {
  return is_parsec(name) || is_npb(name) || name == "specjbb" ||
         name == "ab" || name == "frontend" || name == "hog";
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadOptions& opts) {
  if (is_parsec(name)) {
    return std::make_unique<ParallelWorkload>(
        scaled(parsec_spec(name), opts.work_scale), opts.n_threads,
        opts.endless);
  }
  if (is_npb(name)) {
    return std::make_unique<ParallelWorkload>(
        scaled(npb_spec(name, opts.npb_spinning), opts.work_scale),
        opts.n_threads, opts.endless);
  }
  if (name == "specjbb") {
    return std::make_unique<JbbWorkload>(
        opts.n_threads, opts.server_duration, sim::microseconds(400),
        opts.jbb_cs_len > 0 ? opts.jbb_cs_len : sim::microseconds(80),
        opts.jbb_cs_every > 0 ? opts.jbb_cs_every : 2, opts.jbb_cs_spin);
  }
  if (name == "ab") {
    // ab's connection count is independent of vCPUs; the paper uses 512.
    const int conns = opts.n_threads > 8 ? opts.n_threads : 512;
    return std::make_unique<AbWorkload>(conns, opts.server_duration);
  }
  if (name == "frontend") {
    FrontendOptions fe;
    fe.n_workers = opts.n_threads;
    fe.run_for = opts.server_duration;
    if (!arrival_kind_from_name(opts.fe_arrival, &fe.arrivals.kind)) {
      std::fprintf(stderr, "unknown arrival process: %s\n",
                   opts.fe_arrival.c_str());
      std::abort();
    }
    if (opts.fe_rate_hz > 0.0) fe.arrivals.rate_hz = opts.fe_rate_hz;
    if (!overload_policy_from_name(opts.fe_overload, &fe.overload)) {
      std::fprintf(stderr, "unknown overload policy: %s\n",
                   opts.fe_overload.c_str());
      std::abort();
    }
    if (opts.fe_queue_cap > 0) fe.queue_cap = opts.fe_queue_cap;
    fe.keepalive = opts.fe_keepalive;
    return std::make_unique<FrontendWorkload>(fe);
  }
  if (name == "hog") {
    return std::make_unique<HogWorkload>(opts.n_threads);
  }
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::abort();
}

}  // namespace irs::wl
