#include "src/wl/behavior.h"

#include <algorithm>
#include <cassert>

namespace irs::wl {

const char* sync_type_name(SyncType t) {
  switch (t) {
    case SyncType::kBarrierBlocking: return "barrier-blocking";
    case SyncType::kBarrierSpinning: return "barrier-spinning";
    case SyncType::kMutex: return "mutex";
    case SyncType::kSpinMutex: return "spin-mutex";
    case SyncType::kMutexBarrier: return "mutex+barrier";
    case SyncType::kPipeline: return "pipeline";
    case SyncType::kWorkSteal: return "work-steal";
    case SyncType::kEmbarrassing: return "embarrassing";
  }
  return "?";
}

PhasedShape make_phased_shape(const AppSpec& spec, int n_threads,
                              bool endless, obs::Counters* work) {
  PhasedShape s;
  s.spec = spec;
  s.n_threads = n_threads;
  s.endless = endless;
  s.work = work;
  const bool has_lock = spec.sync == SyncType::kMutex ||
                        spec.sync == SyncType::kSpinMutex ||
                        spec.sync == SyncType::kMutexBarrier;
  const bool has_barrier = spec.sync == SyncType::kBarrierBlocking ||
                           spec.sync == SyncType::kBarrierSpinning ||
                           spec.sync == SyncType::kMutexBarrier;
  if (has_lock) {
    s.cs_len = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(spec.granularity) *
                                      spec.cs_fraction));
    s.outside_len = std::max<sim::Duration>(1, spec.granularity - s.cs_len);
  } else {
    s.cs_len = 0;
    s.outside_len = std::max<sim::Duration>(1, spec.granularity);
  }
  // Lock-only apps sync every round; mixed apps take a few locks per
  // barrier phase; barrier-only apps have one round per phase.
  s.rounds_per_phase = spec.sync == SyncType::kMutexBarrier ? 4 : 1;
  const sim::Duration per_phase =
      spec.granularity * static_cast<sim::Duration>(s.rounds_per_phase);
  s.n_phases = static_cast<int>(
      std::max<sim::Duration>(1, spec.work_per_thread / per_phase));
  (void)has_barrier;
  return s;
}

guest::Action PhasedBehavior::next(guest::Task& t, sim::Time now,
                                   sim::Rng& rng) {
  (void)now;
  const PhasedShape& s = shape_;
  const bool has_lock = s.mutex != nullptr || s.spin != nullptr;
  for (;;) {
    switch (step_) {
      case 0:  // compute outside the critical section
        step_ = 1;
        return guest::Action::compute(
            rng.jittered(s.outside_len, s.spec.jitter));
      case 1:  // acquire
        if (!has_lock) {
          step_ = 4;
          continue;
        }
        step_ = 2;
        return s.mutex != nullptr ? guest::Action::lock(*s.mutex)
                                  : guest::Action::spin_lock(*s.spin);
      case 2:  // critical section
        step_ = 3;
        return guest::Action::compute(rng.jittered(s.cs_len, s.spec.jitter));
      case 3:  // release
        step_ = 4;
        return s.mutex != nullptr ? guest::Action::unlock(*s.mutex)
                                  : guest::Action::spin_unlock(*s.spin);
      case 4:  // end of round
        if (++round_ < shape_.rounds_per_phase) {
          step_ = 0;
          continue;
        }
        round_ = 0;
        step_ = 5;
        if (s.barrier != nullptr) return guest::Action::barrier(*s.barrier);
        continue;
      case 5:  // end of phase
        if (s.work != nullptr) s.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
        ++phase_;
        if (!s.endless && phase_ >= s.n_phases) {
          return guest::Action::finish();
        }
        step_ = 0;
        continue;
      default:
        assert(false);
        return guest::Action::finish();
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

guest::Action PipelineBehavior::finish_stage() {
  auto& live = shape_.stage_live[static_cast<std::size_t>(stage_)];
  --live;
  const int last_stage = static_cast<int>(shape_.pipes.size());
  if (live == 0 && stage_ < last_stage) {
    // Last worker out closes the downstream pipe so the next stage drains.
    shape_.pipes[static_cast<std::size_t>(stage_)]->close();
  }
  done_ = true;
  return guest::Action::finish();
}

guest::Action PipelineBehavior::next(guest::Task& t, sim::Time now,
                                     sim::Rng& rng) {
  (void)now;
  const int last_stage = static_cast<int>(shape_.pipes.size());
  for (;;) {
    if (done_) return guest::Action::finish();
    if (stage_ == 0) {
      switch (step_) {
        case 0:  // claim and generate the next item
          if (shape_.items_produced >= shape_.items_total) {
            return finish_stage();
          }
          ++shape_.items_produced;
          step_ = 1;
          return guest::Action::compute(
              rng.jittered(shape_.item_cost, shape_.spec.jitter));
        case 1:  // hand the item to stage 1
          step_ = 0;
          return guest::Action::pipe_push(*shape_.pipes[0]);
        default:
          assert(false);
      }
    }
    switch (step_) {
      case 0:  // take an item from the upstream pipe
        step_ = 1;
        return guest::Action::pipe_pop(
            *shape_.pipes[static_cast<std::size_t>(stage_ - 1)]);
      case 1:  // got an item? (pipe sets wake_value: 0 = closed empty)
        if (t.wake_value == 0) return finish_stage();
        step_ = 2;
        return guest::Action::compute(
            rng.jittered(shape_.item_cost, shape_.spec.jitter));
      case 2:  // pass downstream, or retire the item at the last stage
        step_ = 0;
        if (stage_ < last_stage) {
          return guest::Action::pipe_push(
              *shape_.pipes[static_cast<std::size_t>(stage_)]);
        }
        if (shape_.work != nullptr) {
          shape_.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
        }
        continue;
      default:
        assert(false);
    }
  }
}

// ---------------------------------------------------------------------------
// Work stealing & hog
// ---------------------------------------------------------------------------

guest::Action WorkStealBehavior::next(guest::Task& t, sim::Time now,
                                      sim::Rng& rng) {
  (void)now;
  if (auto w = shape_.pool->take()) {
    if (shape_.work != nullptr) {
      shape_.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
    }
    return guest::Action::compute(rng.jittered(*w, shape_.spec.jitter));
  }
  return guest::Action::finish();
}

guest::Action HogBehavior::next(guest::Task& t, sim::Time now,
                                sim::Rng& rng) {
  (void)t;
  (void)now;
  return guest::Action::compute(rng.jittered(burst_, 0.05));
}

}  // namespace irs::wl
