#include "src/wl/npb.h"

#include <cstdio>
#include <cstdlib>

namespace irs::wl {

using sim::milliseconds;
using sim::microseconds;

namespace {

struct NpbParams {
  const char* name;
  sim::Duration work;
  sim::Duration gran;
  double jitter;
  double mem;
};

// Granularities follow the paper's descriptions where it gives them
// (lu syncs every ~30 s and ua every 1-2 s at class-C scale; CG/IS/MG/SP
// are fine-grained), scaled to this simulation's ~1-2 s virtual runtimes.
constexpr NpbParams kParams[] = {
    {"BT", milliseconds(1200), milliseconds(20), 0.12, 1.2},
    {"LU", milliseconds(1000), milliseconds(30), 0.12, 1.2},
    {"CG", milliseconds(800), microseconds(1500), 0.10, 1.4},
    {"EP", milliseconds(1200), milliseconds(80), 0.08, 0.5},
    {"FT", milliseconds(1000), milliseconds(15), 0.12, 1.5},
    {"IS", milliseconds(600), milliseconds(1), 0.15, 1.3},
    {"MG", milliseconds(900), milliseconds(2), 0.12, 1.4},
    {"SP", milliseconds(1100), microseconds(2500), 0.12, 1.2},
    {"UA", milliseconds(900), milliseconds(25), 0.15, 1.3},
};

AppSpec to_spec(const NpbParams& p, bool spinning) {
  AppSpec s;
  s.name = p.name;
  s.sync = spinning ? SyncType::kBarrierSpinning : SyncType::kBarrierBlocking;
  s.work_per_thread = p.work;
  s.granularity = p.gran;
  s.jitter = p.jitter;
  s.memory_intensity = p.mem;
  return s;
}

}  // namespace

std::vector<AppSpec> npb_specs(bool spinning) {
  std::vector<AppSpec> out;
  for (const auto& p : kParams) out.push_back(to_spec(p, spinning));
  return out;
}

std::vector<std::string> npb_names() {
  std::vector<std::string> names;
  for (const auto& p : kParams) names.emplace_back(p.name);
  return names;
}

AppSpec npb_spec(const std::string& name, bool spinning) {
  for (const auto& p : kParams) {
    if (name == p.name) return to_spec(p, spinning);
  }
  std::fprintf(stderr, "unknown NPB app: %s\n", name.c_str());
  std::abort();
}

}  // namespace irs::wl
