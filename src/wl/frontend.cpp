#include "src/wl/frontend.h"

#include <algorithm>
#include <string>

namespace irs::wl {

const char* overload_policy_name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kTailDrop: return "drop";
    case OverloadPolicy::kAdmit: return "admit";
    case OverloadPolicy::kShed: return "shed";
  }
  return "?";
}

bool overload_policy_from_name(const std::string& name, OverloadPolicy* out) {
  for (const OverloadPolicy p : {OverloadPolicy::kTailDrop,
                                 OverloadPolicy::kAdmit,
                                 OverloadPolicy::kShed}) {
    if (name == overload_policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shed controller
// ---------------------------------------------------------------------------

void FrontendShape::note_completion(sim::Time now, sim::Duration latency) {
  if (shed_window <= 0) return;
  while (now - win_start >= shed_window) {
    // Settle the window that just closed: shed the next one iff this one
    // burned its error budget (> 1x the allowed violation fraction). A gap
    // with no completions settles subsequent windows at zero counts, which
    // turns shedding back off — no data is read as recovered.
    const double allowed =
        (1.0 - spec.objective) * static_cast<double>(win_requests);
    shed_active =
        win_requests > 0 && static_cast<double>(win_violations) > allowed;
    win_start += shed_window;
    win_requests = 0;
    win_violations = 0;
  }
  ++win_requests;
  if (latency > spec.threshold) ++win_violations;
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

bool FeListenerBehavior::admit(sim::Time arrival, sim::Time now) {
  obs::FrontendResult& st = *shape_.stats;
  ++st.arrivals;
  const auto depth = static_cast<std::uint64_t>(shape_.fifo.size());
  if (opts_.overload == OverloadPolicy::kShed && shape_.shed_active) {
    ++st.shed;
    if (shape_.slo != nullptr) {
      shape_.slo->record(shape_.shed_class, now, 1);
    }
    return false;
  }
  if (opts_.overload == OverloadPolicy::kAdmit) {
    // Reject when the queue alone is predicted to eat the latency budget:
    // (depth + 1) requests ahead of or including this one, served at
    // service_mean across n_workers.
    const sim::Duration est =
        static_cast<sim::Duration>(depth + 1) * shape_.service_mean /
        std::max(1, opts_.n_workers);
    if (est > shape_.spec.threshold) {
      ++st.admit_rejected;
      if (shape_.slo != nullptr) {
        shape_.slo->record(shape_.drop_class, now, 1);
      }
      return false;
    }
  }
  if (static_cast<int>(depth) >= shape_.queue_cap) {
    ++st.tail_dropped;
    if (shape_.slo != nullptr) {
      shape_.slo->record(shape_.drop_class, now, 1);
    }
    return false;
  }
  ++st.accepted;
  const auto conn = static_cast<std::size_t>(
      next_conn_++ % static_cast<std::int64_t>(conn_served_.size()));
  const bool fresh =
      !opts_.keepalive ||
      conn_served_[conn] % std::max(1, opts_.keepalive_max) == 0;
  ++conn_served_[conn];
  if (fresh) {
    ++st.conn_setups;
  } else {
    ++st.keepalive_reuses;
  }
  shape_.fifo.push_back(FeRequest{arrival, shape_.next_req++, fresh});
  st.max_queue_depth =
      std::max(st.max_queue_depth,
               static_cast<std::uint64_t>(shape_.fifo.size()));
  return true;
}

guest::Action FeListenerBehavior::next(guest::Task& /*t*/, sim::Time now,
                                       sim::Rng& rng) {
  if (conn_served_.empty()) {
    const int conns = opts_.n_conns > 0 ? opts_.n_conns
                                        : 8 * std::max(1, opts_.n_workers);
    conn_served_.assign(static_cast<std::size_t>(conns), 0);
  }
  if (!clock_init_) {
    clock_ = now;
    clock_init_ = true;
  }
  for (;;) {
    switch (step_) {
      case 0: {  // pace to the next arrival of the open-loop schedule
        clock_ += arrivals_.next_gap(rng);
        if (clock_ >= shape_.end_time) {
          shape_.accept->close();
          return guest::Action::finish();
        }
        if (clock_ > now) {
          step_ = 1;
          return guest::Action::sleep(clock_ - now);
        }
        // Behind schedule (preempted or processing a burst): handle the
        // arrival late, stamped with its scheduled time — open-loop
        // traffic does not re-pace around a slow server.
        if (admit(clock_, now)) {
          return guest::Action::pipe_push(*shape_.accept);
        }
        continue;
      }
      case 1:  // woke at (or after) the scheduled arrival instant
        step_ = 0;
        if (admit(clock_, now)) {
          return guest::Action::pipe_push(*shape_.accept);
        }
        continue;
      default:
        return guest::Action::finish();
    }
  }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

guest::Action FeWorkerBehavior::next(guest::Task& t, sim::Time now,
                                     sim::Rng& rng) {
  for (;;) {
    switch (step_) {
      case 0:  // wait for work
        if (now >= shape_.end_time) return guest::Action::finish();
        step_ = 1;
        return guest::Action::pipe_pop(*shape_.accept);
      case 1: {  // woke from the accept queue
        if (shape_.fifo.empty()) {
          // Released by close() (or the run ended with nothing queued).
          if (shape_.accept->closed() || now >= shape_.end_time) {
            return guest::Action::finish();
          }
          step_ = 0;
          continue;
        }
        if (now >= shape_.end_time) {
          // Out of time: whatever is still queued stays in flight.
          return guest::Action::finish();
        }
        cur_ = shape_.fifo.front();
        shape_.fifo.pop_front();
        serve_start_ = now;
        step_ = 2;
        sim::Duration work = rng.jittered(shape_.service_mean, 0.5);
        if (cur_.fresh_conn) work += shape_.conn_setup;
        return guest::Action::compute(work);
      }
      case 2: {  // response sent
        const sim::Duration latency = now - cur_.arrival;
        const sim::Duration qwait = serve_start_ - cur_.arrival;
        shape_.latency->add(latency);
        if (shape_.span_log != nullptr) {
          // Back-dated to the arrival instant, carrying the accept-queue
          // wait so the forensics replay charges [arrival, serve_start)
          // to Cause::kQueueWait.
          shape_.span_log->push_back(obs::ReqSpan{
              cur_.arrival, now, cur_.req,
              static_cast<std::int32_t>(shape_.serve_class), t.id(), qwait});
        }
        if (shape_.slo != nullptr) {
          shape_.slo->record(shape_.serve_class, now, latency);
        }
        if (shape_.work != nullptr) {
          shape_.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
        }
        obs::FrontendResult& st = *shape_.stats;
        ++st.completed;
        st.queue_wait_total += qwait;
        st.queue_wait_max = std::max(st.queue_wait_max, qwait);
        shape_.note_completion(now, latency);
        step_ = 0;
        continue;
      }
      default:
        return guest::Action::finish();
    }
  }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

FrontendWorkload::FrontendWorkload(const FrontendOptions& opts)
    : Workload("frontend"), opts_(opts) {
  if (opts_.n_workers < 1) opts_.n_workers = 1;
  if (opts_.queue_cap < 1) opts_.queue_cap = 1;
}

void FrontendWorkload::instantiate(guest::GuestKernel& k) {
  kernel_ = &k;
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(0.8);
  shape_ = std::make_unique<FrontendShape>();
  shape_->end_time = k.engine().now() + opts_.run_for;
  shape_->service_mean = opts_.service_mean;
  shape_->conn_setup = opts_.conn_setup;
  // The pipe only carries wakeups; the deque is the real queue, bounded by
  // queue_cap at the listener. Oversize the pipe so an open-loop listener
  // can never block on its own accept ring.
  shape_->accept = &sync_->make_pipe(opts_.queue_cap + opts_.n_workers + 2,
                                     "fe.accept");
  shape_->queue_cap = opts_.queue_cap;
  shape_->latency = &latency_;
  shape_->work = &work_;
  shape_->stats = &stats_;
  shape_->spec = slo_spec_;
  shape_->shed_window = slo_window_;
  shape_->win_start = k.engine().now();
  if (slo_ != nullptr) {
    shape_->slo = slo_.get();
  }
  if (req_spans_) shape_->span_log = &spans_;
  behaviors_.push_back(
      std::make_unique<FeListenerBehavior>(*shape_, opts_));
  tasks_.push_back(&k.create_task("fe.listen", *behaviors_.back(), 0));
  for (int i = 0; i < opts_.n_workers; ++i) {
    behaviors_.push_back(std::make_unique<FeWorkerBehavior>(*shape_));
    tasks_.push_back(&k.create_task("fe.w" + std::to_string(i),
                                    *behaviors_.back(), i % k.n_cpus()));
  }
}

double FrontendWorkload::throughput() const {
  return progress() / sim::to_sec(opts_.run_for);
}

obs::SloSpec FrontendWorkload::default_slo() {
  return obs::SloSpec{sim::milliseconds(20), 0.999};
}

void FrontendWorkload::enable_slo(sim::Duration window, obs::SloSpec spec) {
  slo_spec_ = spec;
  slo_window_ = window;
  slo_ = std::make_unique<obs::SloTracker>(window);
  slo_->add_class("fe", spec);
  // Refusals burn budget by construction: threshold 0, so the 1 ns
  // "latency" each refusal records is always a violation.
  slo_->add_class("fe.drop", obs::SloSpec{0, spec.objective});
  slo_->add_class("fe.shed", obs::SloSpec{0, spec.objective});
  if (shape_ != nullptr) {  // enabled after instantiate(): wire in place
    shape_->slo = slo_.get();
    shape_->spec = spec;
    shape_->shed_window = window;
  }
}

obs::SloResult FrontendWorkload::slo_result(sim::Time end) {
  if (slo_ == nullptr) return {};
  slo_->flush(end);
  return slo_->result();
}

void FrontendWorkload::enable_request_spans() {
  req_spans_ = true;
  spans_.reserve(std::size_t{1} << 17);  // see JbbWorkload
  if (shape_ != nullptr) shape_->span_log = &spans_;
}

obs::FrontendResult FrontendWorkload::frontend_result() const {
  obs::FrontendResult r = stats_;
  r.in_flight = r.accepted - r.completed;
  return r;
}

}  // namespace irs::wl
