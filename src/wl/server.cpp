#include "src/wl/server.h"

namespace irs::wl {

// ---------------------------------------------------------------------------
// SPECjbb-like worker
// ---------------------------------------------------------------------------

guest::Action JbbWorkerBehavior::next(guest::Task& t, sim::Time now,
                                      sim::Rng& rng) {
  for (;;) {
    switch (step_) {
      case 0:  // start a transaction
        if (now >= shape_.end_time) return guest::Action::finish();
        txn_start_ = now;
        step_ = 1;
        return guest::Action::compute(
            rng.jittered(shape_.service_mean, 0.5));
      case 1:  // main compute done; occasionally touch the shared structure
        if (shape_.cs_every > 0 && ++txn_count_ % shape_.cs_every == 0) {
          step_ = 2;
          if (shape_.spin != nullptr) {
            return guest::Action::spin_lock(*shape_.spin);
          }
          return guest::Action::lock(*shape_.mutex);
        }
        step_ = 4;
        continue;
      case 2:
        step_ = 3;
        return guest::Action::compute(rng.jittered(shape_.cs_len, 0.3));
      case 3:
        step_ = 4;
        if (shape_.spin != nullptr) {
          return guest::Action::spin_unlock(*shape_.spin);
        }
        return guest::Action::unlock(*shape_.mutex);
      case 4:  // transaction complete
        shape_.latency->add(now - txn_start_);
        if (shape_.span_log != nullptr) {
          shape_.span_log->push_back(obs::ReqSpan{
              txn_start_, now, shape_.next_req++,
              static_cast<std::int32_t>(shape_.slo_class), t.id()});
        }
        if (shape_.slo != nullptr) {
          shape_.slo->record(shape_.slo_class, now, now - txn_start_);
        }
        if (shape_.work != nullptr) {
          shape_.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
        }
        step_ = 0;
        continue;
      default:
        return guest::Action::finish();
    }
  }
}

// ---------------------------------------------------------------------------
// ab-like worker
// ---------------------------------------------------------------------------

guest::Action AbWorkerBehavior::next(guest::Task& t, sim::Time now,
                                     sim::Rng& rng) {
  for (;;) {
    switch (step_) {
      case 0: {  // wait for the next request of this connection
        if (now >= shape_.end_time) return guest::Action::finish();
        const sim::Duration think = rng.exponential(shape_.think_mean);
        arrival_ = now + think;
        step_ = 1;
        return guest::Action::sleep(std::max<sim::Duration>(1, think));
      }
      case 1:  // request arrived; service it
        if (now >= shape_.end_time) return guest::Action::finish();
        step_ = 2;
        return guest::Action::compute(
            rng.jittered(shape_.service_mean, 0.5));
      case 2:  // response sent
        shape_.latency->add(now - arrival_);
        if (shape_.span_log != nullptr) {
          // The span begin is back-dated to the arrival instant
          // (mid-sleep): it must cover the wake + ready-wait the latency
          // metric charges.
          shape_.span_log->push_back(obs::ReqSpan{
              arrival_, now, shape_.next_req++,
              static_cast<std::int32_t>(shape_.slo_class), t.id()});
        }
        if (shape_.slo != nullptr) {
          shape_.slo->record(shape_.slo_class, now, now - arrival_);
        }
        if (shape_.work != nullptr) {
          shape_.work->inc(task_shard(t), obs::Cnt::kWorkUnits);
        }
        step_ = 0;
        continue;
      default:
        return guest::Action::finish();
    }
  }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

JbbWorkload::JbbWorkload(int warehouses, sim::Duration run_for,
                         sim::Duration txn_mean, sim::Duration cs_len,
                         int cs_every, bool cs_spin)
    : Workload("specjbb"),
      warehouses_(warehouses),
      run_for_(run_for),
      txn_mean_(txn_mean),
      cs_len_(cs_len),
      cs_every_(cs_every),
      cs_spin_(cs_spin) {}

void JbbWorkload::instantiate(guest::GuestKernel& k) {
  kernel_ = &k;
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(1.0);
  shape_ = std::make_unique<ServerShape>();
  shape_->end_time = k.engine().now() + run_for_;
  shape_->service_mean = txn_mean_;
  // SPECjbb transactions touch shared warehouse structures under a lock
  // often enough that a lock-holder freeze stalls every warehouse — the
  // effect behind the paper's 46% latency improvement.
  shape_->cs_len = cs_len_;
  shape_->cs_every = cs_every_;
  shape_->mutex = &sync_->make_mutex("jbb.shared");
  if (cs_spin_) {
    shape_->spin =
        &sync_->make_spinlock(sync::SpinKind::kTicket, "jbb.shared");
  }
  shape_->latency = &latency_;
  shape_->work = &work_;
  if (slo_ != nullptr) {
    shape_->slo = slo_.get();
    shape_->slo_class = 0;  // the class enable_slo() registered
  }
  if (req_spans_) shape_->span_log = &spans_;
  for (int i = 0; i < warehouses_; ++i) {
    behaviors_.push_back(std::make_unique<JbbWorkerBehavior>(*shape_));
    tasks_.push_back(&k.create_task("jbb.wh" + std::to_string(i),
                                    *behaviors_.back(), i % k.n_cpus()));
  }
}

double JbbWorkload::throughput() const {
  return progress() / sim::to_sec(run_for_);
}

obs::SloSpec JbbWorkload::default_slo() {
  return obs::SloSpec{sim::milliseconds(10), 0.999};
}

void JbbWorkload::enable_slo(sim::Duration window, obs::SloSpec spec) {
  slo_ = std::make_unique<obs::SloTracker>(window);
  slo_->add_class("jbb", spec);
  if (shape_ != nullptr) {  // enabled after instantiate(): wire in place
    shape_->slo = slo_.get();
    shape_->slo_class = 0;
  }
}

obs::SloResult JbbWorkload::slo_result(sim::Time end) {
  if (slo_ == nullptr) return {};
  slo_->flush(end);
  return slo_->result();
}

void JbbWorkload::enable_request_spans() {
  req_spans_ = true;
  // Reserve a fig08-sized run's worth up front: the append is on the
  // serving path, and growth reallocs would otherwise dominate its cost.
  spans_.reserve(std::size_t{1} << 17);
  if (shape_ != nullptr) shape_->span_log = &spans_;
}

AbWorkload::AbWorkload(int connections, sim::Duration run_for,
                       sim::Duration service_mean, sim::Duration think_mean)
    : Workload("ab"),
      connections_(connections),
      run_for_(run_for),
      service_mean_(service_mean),
      think_mean_(think_mean) {}

void AbWorkload::instantiate(guest::GuestKernel& k) {
  kernel_ = &k;
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(0.8);
  shape_ = std::make_unique<ServerShape>();
  shape_->end_time = k.engine().now() + run_for_;
  shape_->service_mean = service_mean_;
  shape_->think_mean = think_mean_;
  shape_->latency = &latency_;
  shape_->work = &work_;
  if (slo_ != nullptr) {
    shape_->slo = slo_.get();
    shape_->slo_class = 0;
  }
  if (req_spans_) shape_->span_log = &spans_;
  for (int i = 0; i < connections_; ++i) {
    behaviors_.push_back(std::make_unique<AbWorkerBehavior>(*shape_));
    tasks_.push_back(&k.create_task("ab.c" + std::to_string(i),
                                    *behaviors_.back(), i % k.n_cpus()));
  }
}

double AbWorkload::throughput() const {
  return progress() / sim::to_sec(run_for_);
}

obs::SloSpec AbWorkload::default_slo() {
  return obs::SloSpec{sim::milliseconds(20), 0.999};
}

void AbWorkload::enable_slo(sim::Duration window, obs::SloSpec spec) {
  slo_ = std::make_unique<obs::SloTracker>(window);
  slo_->add_class("ab", spec);
  if (shape_ != nullptr) {
    shape_->slo = slo_.get();
    shape_->slo_class = 0;
  }
}

obs::SloResult AbWorkload::slo_result(sim::Time end) {
  if (slo_ == nullptr) return {};
  slo_->flush(end);
  return slo_->result();
}

void AbWorkload::enable_request_spans() {
  req_spans_ = true;
  spans_.reserve(std::size_t{1} << 17);  // see JbbWorkload
  if (shape_ != nullptr) shape_->span_log = &spans_;
}

}  // namespace irs::wl
