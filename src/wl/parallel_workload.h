// Generic parallel workload driven by an AppSpec: phase-structured,
// pipeline, work-stealing, or embarrassingly parallel.
#pragma once

#include <memory>

#include "src/wl/behavior.h"
#include "src/wl/spec.h"
#include "src/wl/workload.h"

namespace irs::wl {

class ParallelWorkload final : public Workload {
 public:
  /// `n_threads`: worker threads (pipeline types: threads per stage).
  /// `endless`: loop forever (background / interference use).
  ParallelWorkload(AppSpec spec, int n_threads, bool endless = false);

  void instantiate(guest::GuestKernel& k) override;

  [[nodiscard]] const AppSpec& spec() const { return spec_; }
  [[nodiscard]] int n_threads() const { return n_threads_; }

 private:
  void instantiate_phased(guest::GuestKernel& k);
  void instantiate_pipeline(guest::GuestKernel& k);
  void instantiate_worksteal(guest::GuestKernel& k);

  AppSpec spec_;
  int n_threads_;
  bool endless_;
  std::unique_ptr<PhasedShape> phased_;
  std::unique_ptr<PipelineShape> pipeline_;
  std::unique_ptr<WorkStealShape> worksteal_;
};

}  // namespace irs::wl
