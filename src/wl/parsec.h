// PARSEC benchmark models (blocking synchronisation, pthreads — paper §5.1).
//
// Parameters are calibrated to the paper's descriptions: dedup/ferret are
// 4-/5-stage pipelines with 4 threads per stage; raytrace load-balances at
// user level; streamcluster/fluidanimate sync finely; swaptions/blackscholes
// coarsely. Absolute work sizes are scaled for simulation (~1-2 s virtual
// runtime standalone); only relative behaviour matters.
#pragma once

#include <string>
#include <vector>

#include "src/wl/spec.h"

namespace irs::wl {

/// All modelled PARSEC applications, in the paper's Figure 5 order.
const std::vector<AppSpec>& parsec_specs();

/// Names only (for sweep loops).
std::vector<std::string> parsec_names();

/// Look up one app by name; aborts on unknown names.
AppSpec parsec_spec(const std::string& name);

}  // namespace irs::wl
