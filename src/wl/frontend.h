// Open-loop traffic front-end (ROADMAP "datacenter traffic front-end").
//
// The closed-loop servers (wl/server.h jbb/ab) self-throttle under
// interference: a fixed worker/connection count slows down instead of
// queueing, hiding the tail-latency blowups open-loop traffic exposes.
// This workload generates load the way the outside world does — arrivals
// keep coming whether or not the VM can serve them:
//
//   ArrivalProcess -> listener task -> bounded accept queue -> worker pool
//
// * The listener paces itself on an ArrivalProcess (Poisson / MMPP /
//   diurnal; see wl/arrivals.h) using its own per-task rng, keeping the
//   arrival schedule bit-identical at any sweep thread count and on every
//   event-queue backend. The schedule is open-loop in the strict sense:
//   arrival i happens at gap-sum time even when the listener itself was
//   preempted (it processes late but never re-paces).
// * Accepted requests queue in a bounded accept queue (a sync::Pipe carries
//   the wakeups, a deque the payloads — TUX-style accept ring) and are
//   served by n_workers tasks multiplexing all connections. Connections
//   are round-robin multiplexed; with keepalive every kKeepaliveMax-th
//   request on a connection re-pays the setup cost, without it every
//   request does.
// * Overload behaviour is a policy knob:
//     kTailDrop — refuse arrivals only when the queue is full;
//     kAdmit    — admission control: refuse when the estimated queue delay
//                 (depth * service_mean / workers) exceeds the SLO
//                 threshold (plus tail-drop as the backstop);
//     kShed     — SLO-burn-triggered shedding: a windowed controller
//                 watches completions and sheds *all* arrivals for the next
//                 window once the error budget burns (> 1x), plus
//                 tail-drop as the backstop.
//   Refused arrivals are recorded into dedicated SloTracker drop/shed
//   classes (threshold 0, so every one burns error budget) and counted in
//   the obs::FrontendResult conservation ledger.
// * Completed requests log an obs::ReqSpan back-dated to the arrival
//   instant with qwait = accept-queue wait, so the forensics replay
//   charges queue time to Cause::kQueueWait — cleanly separated from
//   ready-wait — and decomposes the rest from service start.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/core/metrics.h"
#include "src/obs/forensics.h"
#include "src/obs/frontend_stats.h"
#include "src/obs/slo.h"
#include "src/wl/arrivals.h"
#include "src/wl/behavior.h"
#include "src/wl/workload.h"

namespace irs::wl {

enum class OverloadPolicy { kTailDrop, kAdmit, kShed };

/// Stable short name ("drop", "admit", "shed").
const char* overload_policy_name(OverloadPolicy p);
/// Inverse of overload_policy_name. Returns false for unknown names.
bool overload_policy_from_name(const std::string& name, OverloadPolicy* out);

struct FrontendOptions {
  int n_workers = 4;
  sim::Duration run_for = sim::seconds(3);
  /// Per-request service compute (ab-like, so the bench_report overhead
  /// gate compares the two pipelines at matched per-request work).
  sim::Duration service_mean = sim::milliseconds(2);
  /// Extra compute on the first request of a (re-)established connection.
  sim::Duration conn_setup = sim::microseconds(200);
  ArrivalConfig arrivals{};
  int queue_cap = 64;
  OverloadPolicy overload = OverloadPolicy::kTailDrop;
  bool keepalive = true;
  /// Requests served per connection before keepalive expires and the next
  /// one re-pays conn_setup (ignored with keepalive off: every request
  /// pays it).
  int keepalive_max = 16;
  /// Connections multiplexed over the worker pool; 0 = 8 * n_workers.
  int n_conns = 0;
};

/// One queued request: everything a worker needs to serve it.
struct FeRequest {
  sim::Time arrival = 0;
  std::int32_t req = -1;
  bool fresh_conn = false;  // pays the connection-setup cost
};

/// Shared front-end state (one per workload; behaviors hold a reference).
struct FrontendShape {
  sim::Time end_time = 0;
  sim::Duration service_mean = 0;
  sim::Duration conn_setup = 0;
  sync::Pipe* accept = nullptr;       // wakeup channel (close() = shutdown)
  std::deque<FeRequest> fifo;         // payloads, bounded by queue_cap
  int queue_cap = 0;
  core::Histogram* latency = nullptr;
  obs::Counters* work = nullptr;
  obs::SloTracker* slo = nullptr;     // may be null; class ids below
  std::size_t serve_class = 0;
  std::size_t drop_class = 1;
  std::size_t shed_class = 2;
  std::vector<obs::ReqSpan>* span_log = nullptr;
  obs::FrontendResult* stats = nullptr;
  std::int32_t next_req = 0;

  // Shed controller: tumbling window over completions; shed while the
  // previous window burned its error budget.
  obs::SloSpec spec{};                // threshold/objective the shed uses
  sim::Duration shed_window = 0;
  sim::Time win_start = 0;
  std::uint64_t win_requests = 0;
  std::uint64_t win_violations = 0;
  bool shed_active = false;

  /// Record one completion into the shed controller.
  void note_completion(sim::Time now, sim::Duration latency);
};

/// Paces the ArrivalProcess and applies the overload policy at the door.
class FeListenerBehavior final : public guest::Behavior {
 public:
  FeListenerBehavior(FrontendShape& shape, const FrontendOptions& opts)
      : shape_(shape), opts_(opts), arrivals_(opts.arrivals) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  /// Apply the overload policy to the arrival at `arrival` (processed at
  /// `now`). Returns true when accepted (caller pushes the wakeup).
  bool admit(sim::Time arrival, sim::Time now);

  FrontendShape& shape_;
  FrontendOptions opts_;
  ArrivalProcess arrivals_;
  int step_ = 0;
  bool clock_init_ = false;
  sim::Time clock_ = 0;  // open-loop arrival schedule (gap sums)
  std::int64_t next_conn_ = 0;
  std::vector<std::int64_t> conn_served_;
};

/// Pops the accept queue and serves requests until end_time or shutdown.
class FeWorkerBehavior final : public guest::Behavior {
 public:
  explicit FeWorkerBehavior(FrontendShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  FrontendShape& shape_;
  int step_ = 0;
  FeRequest cur_{};
  sim::Time serve_start_ = 0;
};

class FrontendWorkload final : public Workload {
 public:
  explicit FrontendWorkload(const FrontendOptions& opts);
  void instantiate(guest::GuestKernel& k) override;

  [[nodiscard]] core::Histogram& latency() { return latency_; }
  /// Completed requests per simulated second.
  [[nodiscard]] double throughput() const;

  /// Default SLO: 20 ms end-to-end (arrival -> completion) at three nines,
  /// matching the ab arm it is benchmarked against.
  static obs::SloSpec default_slo();
  /// Track windowed SLO latency plus the drop/shed request classes
  /// (threshold 0: every refusal burns error budget). Passive.
  void enable_slo(sim::Duration window = obs::SloTracker::kDefaultWindow,
                  obs::SloSpec spec = default_slo());
  [[nodiscard]] obs::SloResult slo_result(sim::Time end);
  /// Capture a ReqSpan (with qwait) per completed request; see wl/server.h.
  void enable_request_spans();
  [[nodiscard]] const std::vector<obs::ReqSpan>& request_spans() const {
    return spans_;
  }

  /// The conservation ledger; in_flight is settled here (accepted minus
  /// completed at call time).
  [[nodiscard]] obs::FrontendResult frontend_result() const;

 private:
  FrontendOptions opts_;
  obs::SloSpec slo_spec_ = default_slo();
  sim::Duration slo_window_ = obs::SloTracker::kDefaultWindow;
  bool req_spans_ = false;
  guest::GuestKernel* kernel_ = nullptr;
  core::Histogram latency_;
  std::vector<obs::ReqSpan> spans_;
  obs::FrontendResult stats_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<FrontendShape> shape_;
};

}  // namespace irs::wl
