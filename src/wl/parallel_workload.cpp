#include "src/wl/parallel_workload.h"

#include <cassert>

namespace irs::wl {

ParallelWorkload::ParallelWorkload(AppSpec spec, int n_threads, bool endless)
    : Workload(spec.name), spec_(std::move(spec)), n_threads_(n_threads),
      endless_(endless) {
  assert(n_threads > 0);
}

void ParallelWorkload::instantiate(guest::GuestKernel& k) {
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(spec_.memory_intensity);
  switch (spec_.sync) {
    case SyncType::kPipeline:
      instantiate_pipeline(k);
      break;
    case SyncType::kWorkSteal:
      instantiate_worksteal(k);
      break;
    default:
      instantiate_phased(k);
      break;
  }
}

void ParallelWorkload::instantiate_phased(guest::GuestKernel& k) {
  phased_ = std::make_unique<PhasedShape>(
      make_phased_shape(spec_, n_threads_, endless_, &work_));
  switch (spec_.sync) {
    case SyncType::kBarrierBlocking:
      phased_->barrier = &sync_->make_barrier(
          n_threads_, sync::BarrierKind::kBlocking, spec_.name + ".bar");
      break;
    case SyncType::kBarrierSpinning:
      phased_->barrier = &sync_->make_barrier(
          n_threads_, sync::BarrierKind::kSpinning, spec_.name + ".bar");
      break;
    case SyncType::kMutex:
      phased_->mutex = &sync_->make_mutex(spec_.name + ".mtx");
      break;
    case SyncType::kSpinMutex:
      phased_->spin =
          &sync_->make_spinlock(sync::SpinKind::kTicket, spec_.name + ".sl");
      break;
    case SyncType::kMutexBarrier:
      phased_->mutex = &sync_->make_mutex(spec_.name + ".mtx");
      phased_->barrier = &sync_->make_barrier(
          n_threads_, sync::BarrierKind::kBlocking, spec_.name + ".bar");
      break;
    case SyncType::kEmbarrassing:
      break;  // compute rounds only
    default:
      assert(false);
  }
  for (int i = 0; i < n_threads_; ++i) {
    behaviors_.push_back(std::make_unique<PhasedBehavior>(*phased_));
    tasks_.push_back(&k.create_task(spec_.name + "." + std::to_string(i),
                                    *behaviors_.back()));
  }
}

void ParallelWorkload::instantiate_pipeline(guest::GuestKernel& k) {
  pipeline_ = std::make_unique<PipelineShape>();
  pipeline_->spec = spec_;
  pipeline_->work = &work_;
  pipeline_->item_cost = std::max<sim::Duration>(1, spec_.granularity);
  pipeline_->items_total = static_cast<int>(
      spec_.work_per_thread * n_threads_ / pipeline_->item_cost);
  const int stages = spec_.stages;
  for (int s = 0; s + 1 < stages; ++s) {
    pipeline_->pipes.push_back(&sync_->make_pipe(
        16, spec_.name + ".pipe" + std::to_string(s)));
  }
  pipeline_->stage_live.assign(static_cast<std::size_t>(stages), n_threads_);
  for (int s = 0; s < stages; ++s) {
    for (int i = 0; i < n_threads_; ++i) {
      behaviors_.push_back(std::make_unique<PipelineBehavior>(*pipeline_, s));
      tasks_.push_back(&k.create_task(
          spec_.name + ".s" + std::to_string(s) + "." + std::to_string(i),
          *behaviors_.back()));
    }
  }
}

void ParallelWorkload::instantiate_worksteal(guest::GuestKernel& k) {
  worksteal_ = std::make_unique<WorkStealShape>();
  worksteal_->spec = spec_;
  worksteal_->work = &work_;
  worksteal_->pool = &sync_->make_pool();
  const sim::Duration chunk = std::max<sim::Duration>(1, spec_.granularity);
  const int chunks =
      static_cast<int>(spec_.work_per_thread * n_threads_ / chunk);
  worksteal_->pool->add_n(chunks, chunk);
  for (int i = 0; i < n_threads_; ++i) {
    behaviors_.push_back(std::make_unique<WorkStealBehavior>(*worksteal_));
    tasks_.push_back(&k.create_task(spec_.name + "." + std::to_string(i),
                                    *behaviors_.back()));
  }
}

}  // namespace irs::wl
