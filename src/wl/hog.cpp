#include "src/wl/hog.h"

namespace irs::wl {

void HogWorkload::instantiate(guest::GuestKernel& k) {
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(0.1);  // "almost zero memory footprint"
  for (int i = 0; i < n_hogs_; ++i) {
    behaviors_.push_back(std::make_unique<HogBehavior>(burst_));
    tasks_.push_back(
        &k.create_task("hog." + std::to_string(i), *behaviors_.back(),
                       i % k.n_cpus()));
  }
}

}  // namespace irs::wl
