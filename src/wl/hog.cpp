#include "src/wl/hog.h"

namespace irs::wl {

void HogWorkload::instantiate(guest::GuestKernel& k) {
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(0.1);  // "almost zero memory footprint"
  for (int i = 0; i < n_hogs_; ++i) {
    behaviors_.push_back(std::make_unique<HogBehavior>(burst_));
    tasks_.push_back(
        &k.create_task("hog." + std::to_string(i), *behaviors_.back(),
                       i % k.n_cpus()));
  }
}

guest::Action GatedHogBehavior::next(guest::Task& /*t*/, sim::Time /*now*/,
                                     sim::Rng& rng) {
  // A closed gate parks the task without consuming an RNG draw, so the
  // burst-jitter stream a replica produces while active is independent of
  // how long it sat parked — migrations move the stream, not reshuffle it.
  if (!*gate_) return guest::Action::sleep(park_);
  return guest::Action::compute(rng.jittered(burst_, 0.05));
}

void GatedHogWorkload::instantiate(guest::GuestKernel& k) {
  sync_ = std::make_unique<sync::SyncContext>(k);
  k.set_memory_intensity(0.1);
  for (int i = 0; i < n_hogs_; ++i) {
    behaviors_.push_back(
        std::make_unique<GatedHogBehavior>(gate_, burst_, park_));
    tasks_.push_back(
        &k.create_task("hog." + std::to_string(i), *behaviors_.back(),
                       i % k.n_cpus()));
  }
}

}  // namespace irs::wl
