// Name-based workload factory used by the experiment runner, examples, and
// benchmarks.
#pragma once

#include <memory>
#include <string>

#include "src/wl/workload.h"

namespace irs::wl {

/// Options for make_workload.
struct WorkloadOptions {
  int n_threads = 4;
  /// Loop forever (background/interference role).
  bool endless = false;
  /// NPB wait policy: spinning (OMP_WAIT_POLICY=active) or blocking.
  bool npb_spinning = true;
  /// Multiply the spec's per-thread work (shrink/grow runs).
  double work_scale = 1.0;
  /// Server workloads: how long to serve.
  sim::Duration server_duration = sim::seconds(3);
  /// SPECjbb lock-contention overrides (0 = model defaults): critical
  /// section length, and take the lock every Nth transaction.
  sim::Duration jbb_cs_len = 0;
  int jbb_cs_every = 0;
  /// Take the critical section under a ticket spinlock (waiters spin
  /// on-CPU) instead of the blocking mutex — the shape that reproduces the
  /// paper's lock-holder/waiter preemption pathology.
  bool jbb_cs_spin = false;
  /// Open-loop front-end ("frontend") knobs; see src/wl/frontend.h.
  /// Arrival process: "poisson", "mmpp", or "diurnal".
  std::string fe_arrival = "poisson";
  /// Base arrival rate in requests per simulated second (0 = model
  /// default, 1800 — just under the 4-worker service capacity).
  double fe_rate_hz = 0.0;
  /// Overload policy: "drop" (tail-drop), "admit", or "shed".
  std::string fe_overload = "drop";
  /// Accept-queue bound (0 = model default, 64).
  int fe_queue_cap = 0;
  bool fe_keepalive = true;
};

/// Create a workload by name. Accepts every PARSEC name, every NPB name
/// ("BT".."UA"), "specjbb", "ab", "frontend", and "hog". Aborts on unknown
/// names.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadOptions& opts = {});

/// True if `name` resolves.
bool workload_exists(const std::string& name);

}  // namespace irs::wl
