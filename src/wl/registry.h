// Name-based workload factory used by the experiment runner, examples, and
// benchmarks.
#pragma once

#include <memory>
#include <string>

#include "src/wl/workload.h"

namespace irs::wl {

/// Options for make_workload.
struct WorkloadOptions {
  int n_threads = 4;
  /// Loop forever (background/interference role).
  bool endless = false;
  /// NPB wait policy: spinning (OMP_WAIT_POLICY=active) or blocking.
  bool npb_spinning = true;
  /// Multiply the spec's per-thread work (shrink/grow runs).
  double work_scale = 1.0;
  /// Server workloads: how long to serve.
  sim::Duration server_duration = sim::seconds(3);
};

/// Create a workload by name. Accepts every PARSEC name, every NPB name
/// ("BT".."UA"), "specjbb", "ab", and "hog". Aborts on unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadOptions& opts = {});

/// True if `name` resolves.
bool workload_exists(const std::string& name);

}  // namespace irs::wl
