// Multi-threaded server workload models (paper §5.3).
//
// * JbbWorkload — SPECjbb2005-like: `warehouses` worker threads, each a
//   closed loop of transactions with a short shared critical section every
//   few transactions; measures throughput and per-transaction latency.
// * AbWorkload — Apache-bench-like: many concurrent connection threads
//   (far more than vCPUs), each a closed loop of short requests with a
//   small think time; measures throughput and tail latency.
#pragma once

#include <memory>

#include "src/core/metrics.h"
#include "src/obs/slo.h"
#include "src/wl/behavior.h"
#include "src/wl/workload.h"

namespace irs::wl {

struct ServerShape {
  sim::Time end_time = 0;
  sim::Duration service_mean = 0;
  sim::Duration think_mean = 0;       // ab only
  sim::Duration cs_len = 0;           // jbb only
  int cs_every = 0;                   // jbb: lock every N transactions
  sync::Mutex* mutex = nullptr;       // jbb shared structure lock
  core::Histogram* latency = nullptr;
  /// Per-task counters of completed requests/transactions (may be null).
  obs::Counters* work = nullptr;
  /// Optional windowed SLO recorder (see obs/slo.h); recording is passive,
  /// so runs are bit-identical with or without it.
  obs::SloTracker* slo = nullptr;
  std::size_t slo_class = 0;
};

class JbbWorkerBehavior final : public guest::Behavior {
 public:
  explicit JbbWorkerBehavior(ServerShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  ServerShape& shape_;
  int step_ = 0;
  int txn_count_ = 0;
  sim::Time txn_start_ = 0;
};

class AbWorkerBehavior final : public guest::Behavior {
 public:
  explicit AbWorkerBehavior(ServerShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  ServerShape& shape_;
  int step_ = 0;
  sim::Time arrival_ = 0;
};

class JbbWorkload final : public Workload {
 public:
  JbbWorkload(int warehouses, sim::Duration run_for,
              sim::Duration txn_mean = sim::microseconds(400));
  void instantiate(guest::GuestKernel& k) override;
  [[nodiscard]] core::Histogram& latency() { return latency_; }
  /// Transactions per simulated second.
  [[nodiscard]] double throughput() const;

  /// Default SLO: 10 ms transaction latency at three nines (25x the 400 us
  /// service mean — comfortably met uncontended, blown once a hog steals a
  /// 30 ms timeslice from a lock holder).
  static obs::SloSpec default_slo();
  /// Track windowed SLO latency (call before the run). Passive: the
  /// simulation is bit-identical with or without it.
  void enable_slo(sim::Duration window = obs::SloTracker::kDefaultWindow,
                  obs::SloSpec spec = default_slo());
  /// Flush open windows at `end` and snapshot. Empty if SLO not enabled.
  [[nodiscard]] obs::SloResult slo_result(sim::Time end);

 private:
  int warehouses_;
  sim::Duration run_for_;
  sim::Duration txn_mean_;
  core::Histogram latency_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<ServerShape> shape_;
};

class AbWorkload final : public Workload {
 public:
  AbWorkload(int connections, sim::Duration run_for,
             sim::Duration service_mean = sim::milliseconds(2),
             sim::Duration think_mean = sim::milliseconds(2));
  void instantiate(guest::GuestKernel& k) override;
  [[nodiscard]] core::Histogram& latency() { return latency_; }
  [[nodiscard]] double throughput() const;

  /// Default SLO: 20 ms request latency at three nines (10x the 2 ms
  /// service mean; requests queue behind preempted vCPUs under hogs).
  static obs::SloSpec default_slo();
  void enable_slo(sim::Duration window = obs::SloTracker::kDefaultWindow,
                  obs::SloSpec spec = default_slo());
  [[nodiscard]] obs::SloResult slo_result(sim::Time end);

 private:
  int connections_;
  sim::Duration run_for_;
  sim::Duration service_mean_;
  sim::Duration think_mean_;
  core::Histogram latency_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<ServerShape> shape_;
};

}  // namespace irs::wl
