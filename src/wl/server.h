// Multi-threaded server workload models (paper §5.3).
//
// * JbbWorkload — SPECjbb2005-like: `warehouses` worker threads, each a
//   closed loop of transactions with a short shared critical section every
//   few transactions; measures throughput and per-transaction latency.
// * AbWorkload — Apache-bench-like: many concurrent connection threads
//   (far more than vCPUs), each a closed loop of short requests with a
//   small think time; measures throughput and tail latency.
#pragma once

#include <memory>
#include <vector>

#include "src/core/metrics.h"
#include "src/obs/forensics.h"
#include "src/obs/slo.h"
#include "src/wl/behavior.h"
#include "src/wl/workload.h"

namespace irs::wl {

struct ServerShape {
  sim::Time end_time = 0;
  sim::Duration service_mean = 0;
  sim::Duration think_mean = 0;       // ab only
  sim::Duration cs_len = 0;           // jbb only
  int cs_every = 0;                   // jbb: lock every N transactions
  sync::Mutex* mutex = nullptr;       // jbb shared structure lock
  /// When set, the critical section takes this ticket spinlock instead of
  /// `mutex`: waiters busy-wait on-CPU, so a preempted holder (or a
  /// preempted next-in-line waiter) freezes the whole convoy — the paper's
  /// LHP/LWP pathology, which blocking-mutex waiters largely sidestep by
  /// yielding their vCPU.
  sync::SpinLock* spin = nullptr;
  core::Histogram* latency = nullptr;
  /// Per-task counters of completed requests/transactions (may be null).
  obs::Counters* work = nullptr;
  /// Optional windowed SLO recorder (see obs/slo.h); recording is passive,
  /// so runs are bit-identical with or without it.
  obs::SloTracker* slo = nullptr;
  std::size_t slo_class = 0;
  /// Optional request-span capture (see obs::ReqSpan): one completed-span
  /// append per request into the workload's side log — the trace ring is
  /// untouched at runtime; the runner synthesizes kReqBegin/kReqEnd
  /// records from the log for analysis and export. Null unless
  /// enable_request_spans() was called; capture is passive.
  std::vector<obs::ReqSpan>* span_log = nullptr;
  std::int32_t next_req = 0;  // request ids, unique per shape
};

class JbbWorkerBehavior final : public guest::Behavior {
 public:
  explicit JbbWorkerBehavior(ServerShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  ServerShape& shape_;
  int step_ = 0;
  int txn_count_ = 0;
  sim::Time txn_start_ = 0;
};

class AbWorkerBehavior final : public guest::Behavior {
 public:
  explicit AbWorkerBehavior(ServerShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  ServerShape& shape_;
  int step_ = 0;
  sim::Time arrival_ = 0;
};

class JbbWorkload final : public Workload {
 public:
  /// `cs_len`/`cs_every` shape the shared-structure critical section (hold
  /// time, lock every Nth transaction). Defaults match the historical
  /// 80 us / every-2nd shape; forensics fixtures crank them up — and flip
  /// `cs_spin` so the section takes a ticket spinlock whose waiters spin
  /// on-CPU — to make lock-holder/waiter preemption the dominant latency
  /// cause.
  JbbWorkload(int warehouses, sim::Duration run_for,
              sim::Duration txn_mean = sim::microseconds(400),
              sim::Duration cs_len = sim::microseconds(80), int cs_every = 2,
              bool cs_spin = false);
  void instantiate(guest::GuestKernel& k) override;
  [[nodiscard]] core::Histogram& latency() { return latency_; }
  /// Transactions per simulated second.
  [[nodiscard]] double throughput() const;

  /// Default SLO: 10 ms transaction latency at three nines (25x the 400 us
  /// service mean — comfortably met uncontended, blown once a hog steals a
  /// 30 ms timeslice from a lock holder).
  static obs::SloSpec default_slo();
  /// Track windowed SLO latency (call before the run). Passive: the
  /// simulation is bit-identical with or without it.
  void enable_slo(sim::Duration window = obs::SloTracker::kDefaultWindow,
                  obs::SloSpec spec = default_slo());
  /// Flush open windows at `end` and snapshot. Empty if SLO not enabled.
  [[nodiscard]] obs::SloResult slo_result(sim::Time end);
  /// Capture a ReqSpan for every transaction into the side log (forensics
  /// input; the runner turns it into kReqBegin/kReqEnd records at analysis
  /// time). Passive: capture never perturbs the simulation.
  void enable_request_spans();
  [[nodiscard]] const std::vector<obs::ReqSpan>& request_spans() const {
    return spans_;
  }

 private:
  int warehouses_;
  sim::Duration run_for_;
  sim::Duration txn_mean_;
  sim::Duration cs_len_;
  int cs_every_;
  bool cs_spin_;
  bool req_spans_ = false;
  guest::GuestKernel* kernel_ = nullptr;
  core::Histogram latency_;
  std::vector<obs::ReqSpan> spans_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<ServerShape> shape_;
};

class AbWorkload final : public Workload {
 public:
  AbWorkload(int connections, sim::Duration run_for,
             sim::Duration service_mean = sim::milliseconds(2),
             sim::Duration think_mean = sim::milliseconds(2));
  void instantiate(guest::GuestKernel& k) override;
  [[nodiscard]] core::Histogram& latency() { return latency_; }
  [[nodiscard]] double throughput() const;

  /// Default SLO: 20 ms request latency at three nines (10x the 2 ms
  /// service mean; requests queue behind preempted vCPUs under hogs).
  static obs::SloSpec default_slo();
  void enable_slo(sim::Duration window = obs::SloTracker::kDefaultWindow,
                  obs::SloSpec spec = default_slo());
  [[nodiscard]] obs::SloResult slo_result(sim::Time end);
  /// Capture a ReqSpan for every request (see JbbWorkload).
  void enable_request_spans();
  [[nodiscard]] const std::vector<obs::ReqSpan>& request_spans() const {
    return spans_;
  }

 private:
  int connections_;
  sim::Duration run_for_;
  sim::Duration service_mean_;
  sim::Duration think_mean_;
  bool req_spans_ = false;
  guest::GuestKernel* kernel_ = nullptr;
  core::Histogram latency_;
  std::vector<obs::ReqSpan> spans_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<ServerShape> shape_;
};

}  // namespace irs::wl
