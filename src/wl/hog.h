// The CPU-hog interference micro-benchmark (paper §5.1): n compute-bound
// tasks with no synchronisation and near-zero memory footprint that never
// finish.
#pragma once

#include "src/wl/behavior.h"
#include "src/wl/workload.h"

namespace irs::wl {

class HogWorkload final : public Workload {
 public:
  explicit HogWorkload(int n_hogs, sim::Duration burst = sim::milliseconds(1))
      : Workload("cpu-hog"), n_hogs_(n_hogs), burst_(burst) {}

  void instantiate(guest::GuestKernel& k) override;

 private:
  int n_hogs_;
  sim::Duration burst_;
};

}  // namespace irs::wl
