// The CPU-hog interference micro-benchmark (paper §5.1): n compute-bound
// tasks with no synchronisation and near-zero memory footprint that never
// finish.
#pragma once

#include "src/wl/behavior.h"
#include "src/wl/workload.h"

namespace irs::wl {

class HogWorkload final : public Workload {
 public:
  explicit HogWorkload(int n_hogs, sim::Duration burst = sim::milliseconds(1))
      : Workload("cpu-hog"), n_hogs_(n_hogs), burst_(burst) {}

  void instantiate(guest::GuestKernel& k) override;

 private:
  int n_hogs_;
  sim::Duration burst_;
};

/// A hog whose tasks only burn CPU while `*gate` is true; otherwise they
/// park off-CPU (Action::sleep) until woken. This is the replica half of
/// cluster live migration: every host carries a replica of a migratable
/// hog VM, and exactly one replica's gate is open at a time — closing the
/// source gate parks its tasks at the next burst boundary (the pre-copy
/// brownout), opening the destination gate after the modeled downtime and
/// waking the tasks resumes execution there (see src/cluster/cluster.h).
class GatedHogBehavior final : public guest::Behavior {
 public:
  GatedHogBehavior(const bool* gate, sim::Duration burst, sim::Duration park)
      : gate_(gate), burst_(burst), park_(park) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  const bool* gate_;
  sim::Duration burst_;
  sim::Duration park_;
};

class GatedHogWorkload final : public Workload {
 public:
  /// `gate` must outlive the workload (the cluster owns it). `park` bounds
  /// how long an un-woken parked task stays asleep before re-checking the
  /// gate; migration arrival wakes tasks explicitly, so it only needs to
  /// exceed the run length.
  GatedHogWorkload(int n_hogs, const bool* gate,
                   sim::Duration burst = sim::milliseconds(1),
                   sim::Duration park = sim::seconds(3600))
      : Workload("cpu-hog-gated"), n_hogs_(n_hogs), gate_(gate),
        burst_(burst), park_(park) {}

  void instantiate(guest::GuestKernel& k) override;

 private:
  int n_hogs_;
  const bool* gate_;
  sim::Duration burst_;
  sim::Duration park_;
};

}  // namespace irs::wl
