// Deterministic open-loop arrival processes for the traffic front-end
// (src/wl/frontend.h).
//
// Three generators, all pure functions of the sim::Rng stream they are
// handed — the listener task drives them from its own per-task rng, so
// arrival sequences are bit-identical at any sweep thread count, across
// shards, and on every event-queue backend:
//
//   * kPoisson — exponential interarrivals at a constant rate;
//   * kMmpp    — 2-state Markov-modulated Poisson (calm/burst): the rate
//                switches between rate_hz and burst_rate_hz on
//                exponentially distributed dwell times, producing the
//                bursty traffic a constant-rate process can't (index of
//                dispersion > 1);
//   * kDiurnal — piecewise-constant rate trace: rate_hz scaled by
//                diurnal_mult[i] over equal-length segments of
//                diurnal_period, repeating. Its arrival-count integral has
//                a closed form (expected_count) the property tests check.
//
// Generation is exact, not thinned: within a constant-rate stretch the gap
// is one exponential draw; crossing a state switch / segment boundary
// advances to the boundary and redraws (memorylessness makes the spliced
// process exactly the target process).
#pragma once

#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace irs::wl {

enum class ArrivalKind { kPoisson, kMmpp, kDiurnal };

/// Stable short name ("poisson", "mmpp", "diurnal").
const char* arrival_kind_name(ArrivalKind k);
/// Inverse of arrival_kind_name. Returns false for unknown names.
bool arrival_kind_from_name(const std::string& name, ArrivalKind* out);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Base arrival rate (requests per simulated second): the Poisson rate,
  /// the MMPP calm-state rate, and the diurnal multiplier baseline.
  double rate_hz = 1800.0;
  /// MMPP burst-state rate; <= 0 means 4x rate_hz.
  double burst_rate_hz = 0.0;
  sim::Duration calm_dwell_mean = sim::milliseconds(200);
  sim::Duration burst_dwell_mean = sim::milliseconds(50);
  /// Diurnal trace: rate multipliers over equal-length segments of one
  /// period (a day squeezed to simulation scale), repeating.
  std::vector<double> diurnal_mult = {0.25, 0.5, 1.0, 2.0, 1.5, 0.75};
  sim::Duration diurnal_period = sim::seconds(1);
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  /// Gap from the previous arrival to the next one (>= 1 ns), consuming
  /// draws from `rng`. The sequence of gaps is a deterministic function of
  /// the config and the rng stream.
  sim::Duration next_gap(sim::Rng& rng);

  /// Closed-form expected number of arrivals in [0, t) from process start:
  /// exact for Poisson (rate * t) and diurnal (the piecewise integral);
  /// the stationary long-run mean for MMPP (the process starts calm, so
  /// short horizons sit slightly below it).
  [[nodiscard]] double expected_count(sim::Duration t) const;

 private:
  [[nodiscard]] double burst_rate() const;
  [[nodiscard]] sim::Duration segment_len() const;
  [[nodiscard]] double segment_rate(std::size_t seg) const;

  ArrivalConfig cfg_;
  // MMPP state:
  bool burst_ = false;
  sim::Duration dwell_left_ = 0;
  // Diurnal state: offset into the current period.
  sim::Duration phase_ = 0;
};

}  // namespace irs::wl
