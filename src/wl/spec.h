// Workload model descriptors.
//
// Each benchmark from the paper's evaluation (PARSEC, NPB, servers) is
// modelled by a synchronisation *shape* — type, granularity, critical-
// section fraction — which is what determines its LHP/LWP behaviour. See
// DESIGN.md §1 for the substitution argument and §5 for calibration.
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace irs::wl {

/// Synchronisation style of a parallel application.
enum class SyncType : std::uint8_t {
  kBarrierBlocking,  // pthread_barrier-like group sync (PARSEC)
  kBarrierSpinning,  // OpenMP OMP_WAIT_POLICY=active (NPB spinning)
  kMutex,            // blocking point-to-point critical sections
  kSpinMutex,        // ticket-spinlock critical sections
  kMutexBarrier,     // locks inside barrier phases (fluidanimate-like)
  kPipeline,         // staged producer/consumer (dedup, ferret)
  kWorkSteal,        // user-level load balancing (raytrace)
  kEmbarrassing,     // no inter-thread sync (swaptions-ish, hogs)
};

const char* sync_type_name(SyncType t);

/// Parameters of one modelled application.
struct AppSpec {
  std::string name;
  SyncType sync = SyncType::kBarrierBlocking;
  /// Useful CPU work per thread for one full run (scaled by the runner).
  sim::Duration work_per_thread = sim::milliseconds(1500);
  /// Compute between consecutive synchronisation points.
  sim::Duration granularity = sim::milliseconds(4);
  /// Fraction of each round's compute spent inside the critical section
  /// (mutex-style types only).
  double cs_fraction = 0.1;
  /// Relative jitter on compute bursts (models data-dependent imbalance).
  double jitter = 0.15;
  /// Scales the cache-refill penalty on migration (1.0 = default).
  double memory_intensity = 1.0;
  /// Pipeline types: number of stages; kWorkSteal: chunks per thread.
  int stages = 4;
  /// Pipeline types: worker threads per stage.
  int threads_per_stage = 4;
};

}  // namespace irs::wl
