// Reusable behaviour building blocks for the workload catalogue.
#pragma once

#include <cstdint>
#include <memory>

#include "src/guest/action.h"
#include "src/guest/task.h"
#include "src/obs/counters.h"
#include "src/sync/barrier.h"
#include "src/sync/mutex.h"
#include "src/sync/pipe.h"
#include "src/sync/spinlock.h"
#include "src/sync/work_pool.h"
#include "src/wl/spec.h"

namespace irs::wl {

/// Shard convention for workload counters: shard 0 is the workload-global
/// lane, shard task_id+1 is the task's own lane.
inline std::size_t task_shard(const guest::Task& t) {
  return static_cast<std::size_t>(t.id()) + 1;
}

/// Shared state of a phase-structured parallel application (barrier and/or
/// critical-section rounds). One instance per workload.
struct PhasedShape {
  AppSpec spec;
  int n_threads = 4;
  bool endless = false;          // background workloads loop forever
  int rounds_per_phase = 1;      // critical-section rounds between barriers
  int n_phases = 0;              // per-task phase count (bounded mode)
  sim::Duration outside_len = 0; // compute outside the critical section
  sim::Duration cs_len = 0;      // compute inside the critical section
  sync::Barrier* barrier = nullptr;
  sync::Mutex* mutex = nullptr;
  sync::SpinLock* spin = nullptr;
  /// Per-task phase counters (kWorkUnits lanes; may be null).
  obs::Counters* work = nullptr;
};

/// Derive round/phase structure from an AppSpec.
PhasedShape make_phased_shape(const AppSpec& spec, int n_threads,
                              bool endless, obs::Counters* work);

/// Executes the phase structure described by a PhasedShape. Covers
/// kBarrierBlocking, kBarrierSpinning, kMutex, kSpinMutex, kMutexBarrier
/// and kEmbarrassing.
class PhasedBehavior final : public guest::Behavior {
 public:
  explicit PhasedBehavior(PhasedShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  PhasedShape& shape_;
  int step_ = 0;
  int round_ = 0;
  int phase_ = 0;
};

/// Shared state of a pipeline-parallel application (dedup/ferret-like):
/// `stages` stages, `threads_per_stage` workers each, bounded pipes between
/// consecutive stages.
struct PipelineShape {
  AppSpec spec;
  int items_total = 0;           // items flowing through the pipeline
  sim::Duration item_cost = 0;   // per-stage compute per item
  std::vector<sync::Pipe*> pipes;  // stages-1 pipes
  std::vector<int> stage_live;   // live workers per stage (for pipe close)
  int items_produced = 0;        // stage-0 generation counter
  /// Per-task counters of items retired at the last stage (may be null).
  obs::Counters* work = nullptr;
};

class PipelineBehavior final : public guest::Behavior {
 public:
  PipelineBehavior(PipelineShape& shape, int stage)
      : shape_(shape), stage_(stage) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  guest::Action finish_stage();

  PipelineShape& shape_;
  int stage_;
  int step_ = 0;
  bool done_ = false;
};

/// Shared state for user-level work stealing (raytrace-like).
struct WorkStealShape {
  AppSpec spec;
  sync::WorkPool* pool = nullptr;
  obs::Counters* work = nullptr;  // per-task chunk counters (may be null)
};

class WorkStealBehavior final : public guest::Behavior {
 public:
  explicit WorkStealBehavior(WorkStealShape& shape) : shape_(shape) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  WorkStealShape& shape_;
};

/// CPU hog: endless compute in bursts — the paper's interference
/// micro-benchmark ("CPU hogs with almost zero memory footprint").
class HogBehavior final : public guest::Behavior {
 public:
  explicit HogBehavior(sim::Duration burst = sim::milliseconds(1))
      : burst_(burst) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override;

 private:
  sim::Duration burst_;
};

}  // namespace irs::wl
