#include "src/wl/parsec.h"

#include <cstdio>
#include <cstdlib>

namespace irs::wl {

using sim::milliseconds;
using sim::microseconds;

const std::vector<AppSpec>& parsec_specs() {
  static const std::vector<AppSpec> kSpecs = {
      {.name = "blackscholes",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(1200),
       .granularity = milliseconds(10),
       .jitter = 0.10,
       .memory_intensity = 0.6},
      {.name = "dedup",
       .sync = SyncType::kPipeline,
       .work_per_thread = milliseconds(600),
       .granularity = microseconds(1500),
       .jitter = 0.35,
       .memory_intensity = 1.5,
       .stages = 4,
       .threads_per_stage = 4},
      {.name = "streamcluster",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(900),
       .granularity = microseconds(1500),
       .jitter = 0.10,
       .memory_intensity = 1.5},
      {.name = "canneal",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(1000),
       .granularity = milliseconds(6),
       .jitter = 0.15,
       .memory_intensity = 1.8},
      {.name = "fluidanimate",
       .sync = SyncType::kMutexBarrier,
       .work_per_thread = milliseconds(900),
       .granularity = microseconds(1500),
       .cs_fraction = 0.12,
       .jitter = 0.12,
       .memory_intensity = 1.2},
      {.name = "vips",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(1000),
       .granularity = milliseconds(4),
       .jitter = 0.15,
       .memory_intensity = 1.1},
      {.name = "bodytrack",
       .sync = SyncType::kMutexBarrier,
       .work_per_thread = milliseconds(1000),
       .granularity = milliseconds(2),
       .cs_fraction = 0.15,
       .jitter = 0.20,
       .memory_intensity = 1.0},
      {.name = "ferret",
       .sync = SyncType::kPipeline,
       .work_per_thread = milliseconds(600),
       .granularity = microseconds(1200),
       .jitter = 0.30,
       .memory_intensity = 1.2,
       .stages = 5,
       .threads_per_stage = 4},
      {.name = "swaptions",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(1200),
       .granularity = milliseconds(25),
       .jitter = 0.08,
       .memory_intensity = 0.7},
      {.name = "x264",
       .sync = SyncType::kMutex,
       .work_per_thread = milliseconds(1000),
       .granularity = milliseconds(3),
       .cs_fraction = 0.10,
       .jitter = 0.25,
       .memory_intensity = 1.0},
      {.name = "raytrace",
       .sync = SyncType::kWorkSteal,
       .work_per_thread = milliseconds(1000),
       .granularity = milliseconds(4),
       .jitter = 0.20,
       .memory_intensity = 0.8},
      {.name = "facesim",
       .sync = SyncType::kBarrierBlocking,
       .work_per_thread = milliseconds(1200),
       .granularity = microseconds(2500),
       .jitter = 0.15,
       .memory_intensity = 1.3},
  };
  return kSpecs;
}

std::vector<std::string> parsec_names() {
  std::vector<std::string> names;
  for (const auto& s : parsec_specs()) names.push_back(s.name);
  return names;
}

AppSpec parsec_spec(const std::string& name) {
  for (const auto& s : parsec_specs()) {
    if (s.name == name) return s;
  }
  std::fprintf(stderr, "unknown PARSEC app: %s\n", name.c_str());
  std::abort();
}

}  // namespace irs::wl
