#include "src/wl/arrivals.h"

#include <algorithm>
#include <cmath>

namespace irs::wl {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp: return "mmpp";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

bool arrival_kind_from_name(const std::string& name, ArrivalKind* out) {
  for (const ArrivalKind k :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal}) {
    if (name == arrival_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

/// Mean interarrival gap (ns) at `rate_hz`; saturates degenerate rates to
/// something finite so a bad config degrades instead of dividing by zero.
sim::Duration mean_gap(double rate_hz) {
  if (rate_hz <= 0.0) return sim::seconds(3600);
  const double ns = 1e9 / rate_hz;
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(ns));
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg) : cfg_(cfg) {
  if (cfg_.rate_hz <= 0.0) cfg_.rate_hz = 1800.0;
  if (cfg_.diurnal_mult.empty()) cfg_.diurnal_mult = {1.0};
  if (cfg_.diurnal_period <= 0) cfg_.diurnal_period = sim::seconds(1);
  if (cfg_.calm_dwell_mean <= 0) cfg_.calm_dwell_mean = sim::milliseconds(200);
  if (cfg_.burst_dwell_mean <= 0) cfg_.burst_dwell_mean = sim::milliseconds(50);
}

double ArrivalProcess::burst_rate() const {
  return cfg_.burst_rate_hz > 0.0 ? cfg_.burst_rate_hz : 4.0 * cfg_.rate_hz;
}

sim::Duration ArrivalProcess::segment_len() const {
  return std::max<sim::Duration>(
      1, cfg_.diurnal_period /
             static_cast<sim::Duration>(cfg_.diurnal_mult.size()));
}

double ArrivalProcess::segment_rate(std::size_t seg) const {
  return cfg_.rate_hz * cfg_.diurnal_mult[seg % cfg_.diurnal_mult.size()];
}

sim::Duration ArrivalProcess::next_gap(sim::Rng& rng) {
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      return std::max<sim::Duration>(1,
                                     rng.exponential(mean_gap(cfg_.rate_hz)));
    case ArrivalKind::kMmpp: {
      sim::Duration gap = 0;
      for (;;) {
        if (dwell_left_ <= 0) {
          dwell_left_ = std::max<sim::Duration>(
              1, rng.exponential(burst_ ? cfg_.burst_dwell_mean
                                        : cfg_.calm_dwell_mean));
        }
        const double rate = burst_ ? burst_rate() : cfg_.rate_hz;
        const sim::Duration d = rng.exponential(mean_gap(rate));
        if (d < dwell_left_) {
          dwell_left_ -= d;
          return std::max<sim::Duration>(1, gap + d);
        }
        // The modulating chain switches first: spend the dwell remainder
        // and redraw at the new rate (memoryless, so this is exact).
        gap += dwell_left_;
        dwell_left_ = 0;
        burst_ = !burst_;
      }
    }
    case ArrivalKind::kDiurnal: {
      const sim::Duration seg_len = segment_len();
      const sim::Duration n_segs =
          static_cast<sim::Duration>(cfg_.diurnal_mult.size());
      sim::Duration gap = 0;
      for (;;) {
        const std::size_t seg =
            static_cast<std::size_t>((phase_ / seg_len) % n_segs);
        const sim::Duration seg_end = ((phase_ / seg_len) + 1) * seg_len;
        const double rate = segment_rate(seg);
        if (rate <= 0.0) {  // silent segment: skip to its end
          gap += seg_end - phase_;
          phase_ = seg_end % (seg_len * n_segs);
          continue;
        }
        const sim::Duration d = rng.exponential(mean_gap(rate));
        if (phase_ + d < seg_end) {
          phase_ += d;
          return std::max<sim::Duration>(1, gap + d);
        }
        gap += seg_end - phase_;
        phase_ = seg_end % (seg_len * n_segs);
      }
    }
  }
  return 1;
}

double ArrivalProcess::expected_count(sim::Duration t) const {
  if (t <= 0) return 0.0;
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      return cfg_.rate_hz * sim::to_sec(t);
    case ArrivalKind::kMmpp: {
      const double dc = sim::to_sec(cfg_.calm_dwell_mean);
      const double db = sim::to_sec(cfg_.burst_dwell_mean);
      const double stationary =
          (cfg_.rate_hz * dc + burst_rate() * db) / (dc + db);
      return stationary * sim::to_sec(t);
    }
    case ArrivalKind::kDiurnal: {
      const sim::Duration seg_len = segment_len();
      double n = 0.0;
      sim::Duration at = 0;
      std::size_t seg = 0;
      while (at < t) {
        const sim::Duration step = std::min<sim::Duration>(seg_len, t - at);
        n += segment_rate(seg) * sim::to_sec(step);
        at += step;
        ++seg;
      }
      return n;
    }
  }
  return 0.0;
}

}  // namespace irs::wl
