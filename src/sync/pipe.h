// Bounded single-item-type queue for pipeline-parallel workloads
// (dedup/ferret-style stages): producers block when full, consumers block
// when empty.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/guest/sched_api.h"
#include "src/sync/wait.h"

namespace irs::sync {

class Pipe {
 public:
  Pipe(guest::SchedApi& api, int capacity, std::string name = "pipe");

  /// Producer side. On kBlocked the task sleeps until a slot frees; its
  /// item is considered inserted at wake-up time.
  AcquireResult push(guest::Task& t);

  /// Consumer side. On kBlocked the task sleeps until an item arrives; the
  /// item is considered handed over at wake-up time.
  AcquireResult pop(guest::Task& t);

  /// Close the pipe: blocked and future consumers are released immediately
  /// (pop returns kAcquired; callers check closed() to stop looping).
  void close();
  [[nodiscard]] bool closed() const { return closed_; }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] std::size_t blocked_producers() const {
    return producers_.size();
  }
  [[nodiscard]] std::size_t blocked_consumers() const {
    return consumers_.size();
  }

 private:
  guest::SchedApi& api_;
  int capacity_;
  std::string name_;
  int size_ = 0;
  bool closed_ = false;
  std::deque<guest::Task*> producers_;
  std::deque<guest::Task*> consumers_;
};

}  // namespace irs::sync
