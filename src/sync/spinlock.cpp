#include "src/sync/spinlock.h"

#include <algorithm>
#include <cassert>

namespace irs::sync {

SpinResult SpinLock::lock(guest::Task& t) {
  if (owner_ == nullptr && waiters_.empty()) {
    owner_ = &t;
    ++t.locks_held;
    t.held_lock_name = name_.c_str();
    return SpinResult::kAcquired;
  }
  waiters_.push_back(&t);
  return SpinResult::kSpin;
}

void SpinLock::grant(guest::Task& t) {
  assert(owner_ == nullptr);
  auto it = std::find(waiters_.begin(), waiters_.end(), &t);
  if (it == waiters_.end()) return;  // raced with another grant path
  waiters_.erase(it);
  owner_ = &t;
  ++t.locks_held;
  t.held_lock_name = name_.c_str();
  api_.spin_granted(t);
}

void SpinLock::unlock(guest::Task& t) {
  assert(owner_ == &t && "unlock by non-owner");
  --t.locks_held;
  if (t.locks_held == 0) t.held_lock_name = nullptr;
  owner_ = nullptr;
  if (waiters_.empty()) return;
  if (kind_ == SpinKind::kTicket) {
    // Strict FIFO: only the head waiter may take the lock. If its vCPU is
    // preempted, nobody gets the lock until that vCPU runs again (LWP).
    guest::Task* head = waiters_.front();
    if (api_.task_executing(*head)) grant(*head);
  } else {
    // Opportunistic: the earliest waiter whose loop is actually executing
    // wins the race.
    for (guest::Task* w : waiters_) {
      if (api_.task_executing(*w)) {
        grant(*w);
        return;
      }
    }
  }
}

void SpinLock::poll(guest::Task& t) {
  if (owner_ != nullptr) return;
  if (kind_ == SpinKind::kTicket) {
    if (!waiters_.empty() && waiters_.front() == &t) grant(t);
  } else {
    grant(t);
  }
}

}  // namespace irs::sync
