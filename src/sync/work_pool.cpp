#include "src/sync/work_pool.h"

// Header-only; this translation unit anchors the target in the build.
