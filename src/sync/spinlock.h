// Spin locks: busy-waiting waiters burn CPU until they observe the release.
//
// Two grant disciplines:
//  * kTicket — FIFO, like Linux paravirt ticket spinlocks. Only the
//    next-in-line waiter may take the lock; if its vCPU is preempted the
//    lock stays logically free but unclaimable — the classic LWP stall.
//  * kOpportunistic — any waiter that is actually executing may grab a
//    released lock (test-and-set semantics); preempted waiters simply miss
//    their chance, so LWP is milder.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/guest/sched_api.h"
#include "src/sync/wait.h"

namespace irs::sync {

enum class SpinKind : std::uint8_t { kTicket, kOpportunistic };

class SpinLock final : public SpinWaitable {
 public:
  explicit SpinLock(guest::SchedApi& api, SpinKind kind = SpinKind::kTicket,
                    std::string name = "spinlock")
      : api_(api), kind_(kind), name_(std::move(name)) {}

  /// Try to acquire for `t`; on kSpin the caller must busy-wait the task
  /// (set spin_waiting etc. — done by the guest CPU interpreter).
  SpinResult lock(guest::Task& t);

  /// Release; may immediately grant to an executing waiter.
  void unlock(guest::Task& t);

  /// SpinWaitable: a waiter's spin loop resumed execution; grant if its
  /// turn has come.
  void poll(guest::Task& t) override;

  [[nodiscard]] guest::Task* owner() const { return owner_; }
  [[nodiscard]] std::size_t n_waiters() const { return waiters_.size(); }
  [[nodiscard]] SpinKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const char* wait_name() const override { return name_.c_str(); }

 private:
  void grant(guest::Task& t);

  guest::SchedApi& api_;
  SpinKind kind_;
  std::string name_;
  guest::Task* owner_ = nullptr;
  std::deque<guest::Task*> waiters_;  // FIFO arrival order
};

}  // namespace irs::sync
