#include "src/sync/condvar.h"

#include <cassert>

namespace irs::sync {

void CondVar::wait(guest::Task& t, Mutex& m) {
  assert(m.owner() == &t && "cond wait requires the mutex held");
  m.unlock(t);
  t.reacquire = &m;
  waiters_.push_back(&t);
}

bool CondVar::signal() {
  if (waiters_.empty()) return false;
  guest::Task* w = waiters_.front();
  waiters_.pop_front();
  api_.wake_task(*w);
  return true;
}

int CondVar::broadcast() {
  int n = 0;
  std::deque<guest::Task*> to_wake;
  to_wake.swap(waiters_);
  for (guest::Task* w : to_wake) {
    api_.wake_task(*w);
    ++n;
  }
  return n;
}

}  // namespace irs::sync
