#include "src/sync/pipe.h"

#include <cassert>

namespace irs::sync {

Pipe::Pipe(guest::SchedApi& api, int capacity, std::string name)
    : api_(api), capacity_(capacity), name_(std::move(name)) {
  assert(capacity > 0);
}

AcquireResult Pipe::push(guest::Task& t) {
  if (!consumers_.empty()) {
    // Hand the item straight to a blocked consumer.
    guest::Task* c = consumers_.front();
    consumers_.pop_front();
    c->wake_value = 1;  // the consumer received an item
    api_.wake_task(*c);
    t.wake_value = 1;
    return AcquireResult::kAcquired;
  }
  if (size_ == capacity_) {
    producers_.push_back(&t);
    return AcquireResult::kBlocked;
  }
  ++size_;
  t.wake_value = 1;
  return AcquireResult::kAcquired;
}

AcquireResult Pipe::pop(guest::Task& t) {
  if (closed_ && size_ == 0) {
    t.wake_value = 0;  // closed and drained: no item
    return AcquireResult::kAcquired;
  }
  if (size_ == 0) {
    consumers_.push_back(&t);
    return AcquireResult::kBlocked;
  }
  --size_;
  t.wake_value = 1;
  if (!producers_.empty()) {
    // A blocked producer's item takes the freed slot.
    guest::Task* p = producers_.front();
    producers_.pop_front();
    ++size_;
    p->wake_value = 1;
    api_.wake_task(*p);
  }
  return AcquireResult::kAcquired;
}

void Pipe::close() {
  closed_ = true;
  std::deque<guest::Task*> to_wake;
  to_wake.swap(consumers_);
  for (guest::Task* c : to_wake) {
    c->wake_value = 0;  // woken by close: no item
    api_.wake_task(*c);
  }
}

}  // namespace irs::sync
