// Condition variable paired with a blocking Mutex (pthread_cond-style).
//
// wait() releases the mutex and queues the task; signal()/broadcast() wake
// waiters, which then reacquire the mutex (possibly blocking again) before
// their next action — the guest CPU interpreter drives the reacquire via
// Task::reacquire.
#pragma once

#include <deque>
#include <string>

#include "src/guest/sched_api.h"
#include "src/sync/mutex.h"
#include "src/sync/wait.h"

namespace irs::sync {

class CondVar {
 public:
  explicit CondVar(guest::SchedApi& api, std::string name = "cond")
      : api_(api), name_(std::move(name)) {}

  /// Release `m` (owned by `t`) and queue `t`. Caller blocks the task and
  /// sets t.reacquire = &m so it re-locks on wake-up.
  void wait(guest::Task& t, Mutex& m);

  /// Wake the head waiter. Returns false if none was queued.
  bool signal();

  /// Wake all waiters. Returns how many were woken.
  int broadcast();

  [[nodiscard]] std::size_t n_waiters() const { return waiters_.size(); }

 private:
  guest::SchedApi& api_;
  std::string name_;
  std::deque<guest::Task*> waiters_;
};

}  // namespace irs::sync
