// User-level work-stealing pool, modelling raytrace's application-level
// load balancing (paper §2.3): threads that finish early take work that
// would otherwise sit with a slow (interfered) thread. Purely a data
// structure — taking work never blocks, so a preempted thread holds at most
// its current chunk.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/sim/time.h"

namespace irs::sync {

class WorkPool {
 public:
  WorkPool() = default;

  /// Add one chunk of `work` compute time.
  void add(sim::Duration work) { chunks_.push_back(work); }

  /// Add `n` chunks of equal size.
  void add_n(int n, sim::Duration work) {
    for (int i = 0; i < n; ++i) add(work);
  }

  /// Take the next chunk (FIFO). Empty pool -> nullopt (thread is done).
  std::optional<sim::Duration> take() {
    if (chunks_.empty()) return std::nullopt;
    const sim::Duration w = chunks_.front();
    chunks_.pop_front();
    ++taken_;
    return w;
  }

  [[nodiscard]] std::size_t remaining() const { return chunks_.size(); }
  [[nodiscard]] std::uint64_t taken() const { return taken_; }

 private:
  std::deque<sim::Duration> chunks_;
  std::uint64_t taken_ = 0;
};

}  // namespace irs::sync
