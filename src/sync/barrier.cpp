#include "src/sync/barrier.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace irs::sync {

Barrier::Barrier(guest::SchedApi& api, int parties, BarrierKind kind,
                 std::string name)
    : api_(api), parties_(parties), kind_(kind), name_(std::move(name)) {
  assert(parties > 0);
}

BarrierResult Barrier::arrive(guest::Task& t) {
  ++arrived_;
  if (arrived_ < parties_) {
    if (kind_ == BarrierKind::kBlocking) {
      blocked_.push_back(&t);
      return BarrierResult::kBlocked;
    }
    // Spinning flavour: remember which generation the task waits for.
    t.spin_ticket = generation_;
    spinners_.push_back(&t);
    return BarrierResult::kSpin;
  }
  // Last arrival: open the barrier for this generation.
  arrived_ = 0;
  ++generation_;
  if (kind_ == BarrierKind::kBlocking) {
    std::deque<guest::Task*> to_wake;
    to_wake.swap(blocked_);
    for (guest::Task* w : to_wake) api_.wake_task(*w);
  } else {
    // Release every spinner whose loop is actually executing right now;
    // preempted spinners notice on poll() when their vCPU runs again.
    // Granting may re-enter this barrier (the released task can preempt
    // another CPU's spinner, whose poll() removes it from spinners_), so
    // re-scan from scratch after every grant instead of iterating a
    // snapshot.
    for (;;) {
      guest::Task* next = nullptr;
      for (guest::Task* w : spinners_) {
        // Only old-generation waiters are releasable; a re-entrant arrival
        // may already have queued new-generation spinners.
        if (w->spin_ticket != generation_ && api_.task_executing(*w)) {
          next = w;
          break;
        }
      }
      if (next == nullptr) break;
      spinners_.erase(std::find(spinners_.begin(), spinners_.end(), next));
      api_.spin_granted(*next);
    }
  }
  return BarrierResult::kReleased;
}

void Barrier::poll(guest::Task& t) {
  assert(kind_ == BarrierKind::kSpinning);
  if (t.spin_ticket == generation_) return;  // barrier still closed
  auto it = std::find(spinners_.begin(), spinners_.end(), &t);
  if (it == spinners_.end()) return;  // already granted via another path
  spinners_.erase(it);
  api_.spin_granted(t);
}

}  // namespace irs::sync
