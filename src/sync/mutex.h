// Blocking mutex with futex-style barging, modelling a pthread mutex:
// waiters sleep; unlock releases the lock and wakes the head waiter, which
// must RE-COMPETE for the lock when it runs (another thread may barge in
// first). Barging avoids the lock convoy that strict hand-off develops
// when a woken owner is slow to get back on a CPU — exactly the condition
// virtualisation creates.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/guest/sched_api.h"
#include "src/sync/wait.h"

namespace irs::sync {

class Mutex {
 public:
  explicit Mutex(guest::SchedApi& api, std::string name = "mutex")
      : api_(api), name_(std::move(name)) {}

  /// Try to acquire for `t`. On kBlocked the caller must block the task;
  /// a later unlock wakes it with Task::reacquire set so it retries.
  AcquireResult lock(guest::Task& t);

  /// Release; `t` must be the owner. Wakes the head waiter (which then
  /// barges for the lock like any other contender).
  void unlock(guest::Task& t);

  /// Remove a blocked waiter (used when a waiting task is cancelled).
  bool cancel_wait(guest::Task& t);

  [[nodiscard]] guest::Task* owner() const { return owner_; }
  [[nodiscard]] std::size_t n_waiters() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Cumulative time tasks spent blocked on this mutex (metrics).
  [[nodiscard]] sim::Duration total_wait() const { return total_wait_; }
  /// Number of contended acquisitions.
  [[nodiscard]] std::uint64_t contentions() const { return contentions_; }

 private:
  guest::SchedApi& api_;
  std::string name_;
  guest::Task* owner_ = nullptr;
  std::deque<guest::Task*> waiters_;
  std::deque<sim::Time> wait_since_;
  sim::Duration total_wait_ = 0;
  std::uint64_t contentions_ = 0;
};

}  // namespace irs::sync
