#include "src/sync/mutex.h"

#include <algorithm>
#include <cassert>

namespace irs::sync {

AcquireResult Mutex::lock(guest::Task& t) {
  if (owner_ == nullptr) {
    assert(waiters_.empty());
    owner_ = &t;
    ++t.locks_held;
    t.held_lock_name = name_.c_str();
    return AcquireResult::kAcquired;
  }
  assert(owner_ != &t && "mutex is not recursive");
  ++contentions_;
  waiters_.push_back(&t);
  wait_since_.push_back(api_.now());
  return AcquireResult::kBlocked;
}

void Mutex::unlock(guest::Task& t) {
  assert(owner_ == &t && "unlock by non-owner");
  --t.locks_held;
  if (t.locks_held == 0) t.held_lock_name = nullptr;
  owner_ = nullptr;
  if (waiters_.empty()) return;
  guest::Task* next = waiters_.front();
  waiters_.pop_front();
  total_wait_ += api_.now() - wait_since_.front();
  wait_since_.pop_front();
  // Futex barging: the woken waiter retries the acquire when it next runs
  // (Task::reacquire drives the retry in the guest CPU's interpreter); a
  // third task may legitimately take the lock first.
  next->reacquire = this;
  api_.wake_task(*next);
}

bool Mutex::cancel_wait(guest::Task& t) {
  auto it = std::find(waiters_.begin(), waiters_.end(), &t);
  if (it == waiters_.end()) return false;
  wait_since_.erase(wait_since_.begin() + (it - waiters_.begin()));
  waiters_.erase(it);
  return true;
}

}  // namespace irs::sync
