#include "src/sync/sync_context.h"

namespace irs::sync {

sim::Duration SyncContext::total_mutex_wait() const {
  sim::Duration total = 0;
  for (const auto& m : mutexes_) total += m->total_wait();
  return total;
}

}  // namespace irs::sync
