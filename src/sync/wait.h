// Shared result types for guest-level synchronisation primitives.
#pragma once

#include <cstdint>

namespace irs::guest {
class Task;
}

namespace irs::sync {

/// Outcome of a blocking acquire/arrive.
enum class AcquireResult : std::uint8_t {
  kAcquired,  // proceed immediately
  kBlocked,   // caller must block the task; a later wake-up resumes it
};

/// Outcome of a spinning acquire/arrive.
enum class SpinResult : std::uint8_t {
  kAcquired,  // proceed immediately
  kSpin,      // caller must put the task into a busy-wait loop
};

/// Objects a task can busy-wait on (ticket locks, spinning barriers).
/// The guest CPU calls poll() whenever a spin-waiting task's loop actually
/// executes again (vCPU rescheduled, task context-switched in) so the
/// primitive can decide whether the wait is over. This models the
/// fundamental property behind LWP: a preempted spinner cannot observe a
/// release until its vCPU runs.
class SpinWaitable {
 public:
  virtual ~SpinWaitable() = default;
  virtual void poll(guest::Task& t) = 0;
  /// Name of the primitive being waited on, for LWP attribution. The
  /// returned storage must outlive the waitable.
  [[nodiscard]] virtual const char* wait_name() const { return "spin"; }
};

}  // namespace irs::sync
