// Group synchronisation barrier in blocking (pthread_barrier-like) and
// spinning (OpenMP OMP_WAIT_POLICY=active-like) flavours.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/guest/sched_api.h"
#include "src/sync/wait.h"

namespace irs::sync {

enum class BarrierKind : std::uint8_t { kBlocking, kSpinning };

/// Outcome of Barrier::arrive.
enum class BarrierResult : std::uint8_t {
  kReleased,  // last arrival — everyone proceeds, including the caller
  kBlocked,   // caller must block until the generation completes
  kSpin,      // caller must busy-wait until the generation completes
};

class Barrier final : public SpinWaitable {
 public:
  Barrier(guest::SchedApi& api, int parties,
          BarrierKind kind = BarrierKind::kBlocking,
          std::string name = "barrier");

  /// Arrive at the barrier.
  BarrierResult arrive(guest::Task& t);

  /// SpinWaitable: a spinning waiter resumed execution.
  void poll(guest::Task& t) override;

  [[nodiscard]] const char* wait_name() const override { return name_.c_str(); }

  [[nodiscard]] int parties() const { return parties_; }
  [[nodiscard]] int arrived() const { return arrived_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] BarrierKind kind() const { return kind_; }

 private:
  guest::SchedApi& api_;
  int parties_;
  BarrierKind kind_;
  std::string name_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::deque<guest::Task*> blocked_;  // blocking flavour
  std::deque<guest::Task*> spinners_;  // spinning flavour
};

}  // namespace irs::sync
