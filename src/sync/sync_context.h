// Owning container for the synchronisation primitives one workload uses.
//
// Behaviors hold references into this context; the context outlives all
// tasks of the workload. Created lazily so workload constructors stay
// declarative ("I need 1 barrier and 2 mutexes").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/guest/sched_api.h"
#include "src/sync/barrier.h"
#include "src/sync/condvar.h"
#include "src/sync/mutex.h"
#include "src/sync/pipe.h"
#include "src/sync/spinlock.h"
#include "src/sync/work_pool.h"

namespace irs::sync {

class SyncContext {
 public:
  explicit SyncContext(guest::SchedApi& api) : api_(api) {}

  Mutex& make_mutex(std::string name = "mutex") {
    mutexes_.push_back(std::make_unique<Mutex>(api_, std::move(name)));
    return *mutexes_.back();
  }
  SpinLock& make_spinlock(SpinKind kind = SpinKind::kTicket,
                          std::string name = "spin") {
    spins_.push_back(std::make_unique<SpinLock>(api_, kind, std::move(name)));
    return *spins_.back();
  }
  Barrier& make_barrier(int parties, BarrierKind kind = BarrierKind::kBlocking,
                        std::string name = "barrier") {
    barriers_.push_back(
        std::make_unique<Barrier>(api_, parties, kind, std::move(name)));
    return *barriers_.back();
  }
  Pipe& make_pipe(int capacity, std::string name = "pipe") {
    pipes_.push_back(std::make_unique<Pipe>(api_, capacity, std::move(name)));
    return *pipes_.back();
  }
  CondVar& make_condvar(std::string name = "cond") {
    conds_.push_back(std::make_unique<CondVar>(api_, std::move(name)));
    return *conds_.back();
  }
  WorkPool& make_pool() {
    pools_.push_back(std::make_unique<WorkPool>());
    return *pools_.back();
  }

  [[nodiscard]] guest::SchedApi& api() { return api_; }

  /// Aggregate lock-wait time across all mutexes (metrics).
  [[nodiscard]] sim::Duration total_mutex_wait() const;

 private:
  guest::SchedApi& api_;
  std::vector<std::unique_ptr<Mutex>> mutexes_;
  std::vector<std::unique_ptr<SpinLock>> spins_;
  std::vector<std::unique_ptr<Barrier>> barriers_;
  std::vector<std::unique_ptr<Pipe>> pipes_;
  std::vector<std::unique_ptr<CondVar>> conds_;
  std::vector<std::unique_ptr<WorkPool>> pools_;
};

}  // namespace irs::sync
