#include "src/core/host_node.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace irs::core {

HostNode::HostNode(sim::Engine& eng, HostNodeConfig cfg)
    : cfg_(std::move(cfg)), eng_(eng) {
  host_ = std::make_unique<hv::Host>(eng_, cfg_.hv, cfg_.n_pcpus);
  if (cfg_.telemetry.trace_capacity > 0) {
    host_->trace().set_capacity(cfg_.telemetry.trace_capacity);
  }
  if (cfg_.telemetry.trace_batch > 0) {
    host_->trace_buffer().set_batch(cfg_.telemetry.trace_batch);
  }
  switch (cfg_.strategy) {
    case Strategy::kBaseline:
      break;
    case Strategy::kPle:
      host_->enable_ple();
      break;
    case Strategy::kRelaxedCo:
      host_->enable_relaxed_co();
      break;
    case Strategy::kIrs:
      host_->enable_irs();
      break;
    case Strategy::kIrsPull:
      // Pull-only variant (paper §6): no scheduler activations — the guest
      // rescues "running" tasks from preempted vCPUs when a CPU idles.
      break;
    case Strategy::kDelayPreempt:
      host_->enable_delay_preempt();
      break;
  }
}

HostNode::~HostNode() = default;

HostNode::Slot& HostNode::slot(hv::VmId vm, const char* what) {
  const auto& self = *this;
  return const_cast<Slot&>(self.slot(vm, what));
}

const HostNode::Slot& HostNode::slot(hv::VmId vm, const char* what) const {
  const auto i = static_cast<std::size_t>(vm);
  if (vm < 0 || i >= slots_.size()) {
    throw std::out_of_range(
        std::string(what) + ": VmId " + std::to_string(vm) +
        " is not a VM of host '" + cfg_.name + "' (" +
        std::to_string(slots_.size()) +
        " VMs; ids are host-local — a foreign or stale id?)");
  }
  return slots_[i];
}

wl::Workload& HostNode::workload(hv::VmId vm, std::size_t i) {
  Slot& s = slot(vm, "workload");
  if (i >= s.workloads.size()) {
    throw std::out_of_range(
        "workload: VM " + std::to_string(vm) + " on host '" + cfg_.name +
        "' has " + std::to_string(s.workloads.size()) +
        " workloads, index " + std::to_string(i) + " requested");
  }
  return *s.workloads[i];
}

hv::VmId HostNode::add_vm(const hv::VmConfig& vm_cfg, bool irs_capable,
                          guest::GuestConfig guest_cfg) {
  assert(!started_);
  hv::Vm& vm = host_->add_vm(vm_cfg);
  guest_cfg.irs_enabled = cfg_.strategy == Strategy::kIrs && irs_capable;
  if (cfg_.strategy == Strategy::kIrsPull && irs_capable) {
    guest_cfg.irs_pull = true;
  }
  // Paravirtual lock hints apply to every guest under the delay-preemption
  // baseline (it is a guest-kernel feature, not per-VM opt-in).
  if (cfg_.strategy == Strategy::kDelayPreempt) {
    guest_cfg.paravirt_lock_hints = true;
  }
  Slot slot;
  slot.vm = &vm;
  hv::Host* host = host_.get();
  hv::Vm* vmp = &vm;
  slot.kernel = std::make_unique<guest::GuestKernel>(
      eng_, guest_cfg, vm_cfg.n_vcpus, host_->hypercalls(vm),
      [host, vmp](int cpu, bool spinning) {
        host->note_spinning(*vmp, cpu, spinning);
      },
      cfg_.telemetry.trace_capacity > 0 ? &host_->trace() : nullptr,
      [host, vmp](int cpu, bool holds) {
        host->note_lock_hint(*vmp, cpu, holds);
      });
  vm.set_guest(slot.kernel.get());
  if (!vm.vcpus().empty()) {
    // Guest trace records carry global vCPU ids so every timeline consumer
    // shares one id space with the hv records.
    slot.kernel->set_trace_vcpu_base(vm.vcpus().front()->id());
  }
  if (cfg_.telemetry.trace_batch > 0) {
    slot.kernel->trace_buf().set_batch(cfg_.telemetry.trace_batch);
  }
  slot.kernel->seed(cfg_.seed * 1000003ULL +
                    static_cast<std::uint64_t>(vm.id()) + 1);
  slots_.push_back(std::move(slot));
  return vm.id();
}

wl::Workload& HostNode::attach(hv::VmId vm, std::unique_ptr<wl::Workload> w) {
  assert(!started_);
  Slot& s = slot(vm, "attach");
  s.workloads.push_back(std::move(w));
  return *s.workloads.back();
}

void HostNode::start() {
  assert(!started_);
  started_ = true;
  t0_ = eng_.now();
  host_->start();
  for (auto& slot : slots_) {
    for (auto& w : slot.workloads) w->instantiate(*slot.kernel);
    slot.kernel->start();
  }
  if (cfg_.telemetry.sample_period > 0) arm_sampler();
}

void HostNode::arm_sampler() {
  sampler_ = std::make_unique<obs::Sampler>(
      eng_, cfg_.telemetry.sample_period,
      cfg_.telemetry.sample_capacity > 0 ? cfg_.telemetry.sample_capacity
                                         : obs::Sampler::kDefaultCapacity);
  const std::string p = cfg_.prefix_series ? cfg_.name + "/" : "";
  hv::Host* host = host_.get();
  sim::Engine* eng = &eng_;
  const obs::Counters* cnt = &host_->counters();

  // Host-wide tracks.
  sampler_->add_gauge(p + "hv/runnable_vcpus", [host]() {
    return static_cast<std::int64_t>(host->runnable_vcpus());
  });
  sampler_->add_rate(p + "hv/steal_ns", [host, eng]() {
    return static_cast<std::int64_t>(host->total_steal(eng->now()));
  });
  sampler_->add_counter(p + "hv/preemptions", cnt, obs::Cnt::kHvPreemptions);
  sampler_->add_counter(p + "hv/lhp", cnt, obs::Cnt::kHvLhp);
  sampler_->add_counter(p + "hv/lwp", cnt, obs::Cnt::kHvLwp);
  sampler_->add_counter(p + "hv/sa_sent", cnt, obs::Cnt::kSaSent);
  sampler_->add_counter(p + "hv/sa_acked", cnt, obs::Cnt::kSaAcked);

  // Per-vCPU tracks: steal rate from runstate accounting, SA deliveries
  // from the vCPU's counter shard (shard vcpu_id + 1; shard 0 is global).
  for (int vm_i = 0; vm_i < host_->n_vms(); ++vm_i) {
    hv::Vm& vm = host_->vm(vm_i);
    const auto& vs = vm.vcpus();
    for (std::size_t idx = 0; idx < vs.size(); ++idx) {
      hv::Vcpu* v = vs[idx];
      const std::string base =
          p + "hv/" + vm.name() + "/vcpu" + std::to_string(idx);
      sampler_->add_rate(base + "/steal_ns", [v, eng]() {
        return static_cast<std::int64_t>(v->time_runnable(eng->now()));
      });
      sampler_->add_counter(base + "/sa_sent", cnt, obs::Cnt::kSaSent,
                            v->id() + 1);
    }
  }

  // Per-VM guest run-queue depth.
  for (auto& slot : slots_) {
    guest::GuestKernel* k = slot.kernel.get();
    sampler_->add_gauge(p + "guest/" + slot.vm->name() + "/runnable_tasks",
                        [k]() {
                          return static_cast<std::int64_t>(k->runnable_tasks());
                        });
  }
  sampler_->start();
}

bool HostNode::workloads_finished(const Slot& s) const {
  if (s.workloads.empty()) return true;
  for (const auto& w : s.workloads) {
    if (!w->finished()) return false;
  }
  return true;
}

bool HostNode::workloads_finished(hv::VmId vm) const {
  return workloads_finished(slot(vm, "workloads_finished"));
}

sim::Duration HostNode::fair_share(const Slot& s,
                                   sim::Duration elapsed) const {
  // Pinned topology: each vCPU is entitled to an equal split of its pCPU
  // among the vCPUs pinned there. Unpinned: weight-proportional host share
  // capped by the VM's own parallelism.
  bool all_pinned = true;
  for (const hv::Vcpu* v : s.vm->vcpus()) {
    if (v->affinity().size() != 1) all_pinned = false;
  }
  if (all_pinned) {
    // Count how many vCPUs (of any VM) are pinned to each pCPU.
    std::vector<int> pinned(static_cast<std::size_t>(host_->n_pcpus()), 0);
    for (int vm_i = 0; vm_i < host_->n_vms(); ++vm_i) {
      for (const hv::Vcpu* v : host_->vm(vm_i).vcpus()) {
        if (v->affinity().size() == 1) {
          ++pinned[static_cast<std::size_t>(v->affinity()[0])];
        }
      }
    }
    sim::Duration share = 0;
    for (const hv::Vcpu* v : s.vm->vcpus()) {
      const int n = pinned[static_cast<std::size_t>(v->affinity()[0])];
      share += elapsed / std::max(1, n);
    }
    return share;
  }
  std::int64_t total_weight = 0;
  for (int vm_i = 0; vm_i < host_->n_vms(); ++vm_i) {
    total_weight += host_->vm(vm_i).weight();
  }
  const double host_capacity =
      static_cast<double>(elapsed) * host_->n_pcpus();
  double share = host_capacity * s.vm->weight() /
                 static_cast<double>(std::max<std::int64_t>(1, total_weight));
  const double cap = static_cast<double>(elapsed) * s.vm->n_vcpus();
  if (share > cap) share = cap;
  return static_cast<sim::Duration>(share);
}

VmMetrics HostNode::vm_metrics(hv::VmId vm) const {
  const Slot& slot = this->slot(vm, "vm_metrics");
  VmMetrics m;
  m.vm_name = slot.vm->name();
  m.elapsed = eng_.now() - t0_;
  for (const hv::Vcpu* v : slot.vm->vcpus()) {
    m.cpu_time += v->time_running(eng_.now());
    m.steal_time += v->time_runnable(eng_.now());
  }
  m.fair_share = fair_share(slot, m.elapsed);
  for (const auto& w : slot.workloads) {
    m.useful_compute += w->useful_compute();
    m.progress += w->progress();
  }
  m.workload_finished = workloads_finished(slot);
  if (m.workload_finished && !slot.workloads.empty()) {
    sim::Time end = 0;
    for (const auto& w : slot.workloads) {
      end = std::max(end, w->makespan_end());
    }
    m.makespan = end - t0_;
  }
  return m;
}

}  // namespace irs::core
