#include "src/core/metrics.h"

// Header-only utilities; this translation unit anchors the target.
