// World: the public facade that assembles a simulated host, VMs with guest
// kernels, workloads, and a scheduling strategy — the library's main entry
// point (see examples/quickstart.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/strategy.h"
#include "src/guest/guest_kernel.h"
#include "src/hv/host.h"
#include "src/obs/sampler.h"
#include "src/sim/engine.h"
#include "src/wl/workload.h"

namespace irs::core {

struct WorldConfig {
  int n_pcpus = 4;
  hv::HvConfig hv;
  Strategy strategy = Strategy::kBaseline;
  /// Base seed for all randomness in the simulation (fully deterministic).
  std::uint64_t seed = 1;
  /// >0 enables the trace ring with this capacity.
  std::size_t trace_capacity = 0;
  /// >0 overrides the staging-buffer batch size of every trace producer
  /// (hypervisor and guests); 0 keeps obs::TraceBuffer::kDefaultBatch.
  std::size_t trace_batch = 0;
  /// >0 arms an obs::Sampler at start() on this simulated-time cadence.
  /// 0 (default) disables sampling entirely.
  sim::Duration sample_period = 0;
  /// >0 overrides obs::Sampler::kDefaultCapacity per series ring.
  std::size_t sample_capacity = 0;
  /// Event-queue backend for the engine. Defaults to the process-wide
  /// default (IRS_ENGINE_QUEUE or the hybrid wheel); tests override it to
  /// prove results are backend-independent within one process.
  sim::QueueKind queue = sim::default_queue_kind();
};

class World {
 public:
  explicit World(WorldConfig cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Add a VM. `irs_capable` marks guests that register VIRQ_SA_UPCALL —
  /// the foreground VM in the paper's setup; it only takes effect under
  /// Strategy::kIrs. Returns the VM id.
  hv::VmId add_vm(const hv::VmConfig& vm_cfg, bool irs_capable,
                  guest::GuestConfig guest_cfg = {});

  /// Attach a workload to a VM (may be called multiple times per VM).
  wl::Workload& attach(hv::VmId vm, std::unique_ptr<wl::Workload> w);

  /// Instantiate workloads and start the host and guests. Call once.
  void start();

  /// Run until every bounded workload on `vm` finishes, or `timeout` of
  /// simulated time elapses. Returns true when finished.
  bool run_until_finished(hv::VmId vm, sim::Duration timeout);

  /// Advance simulated time by `d`.
  void run_for(sim::Duration d);

  /// Summarise one VM's run so far.
  [[nodiscard]] VmMetrics vm_metrics(hv::VmId vm) const;

  // --- accessors ---
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] hv::Host& host() { return *host_; }
  [[nodiscard]] guest::GuestKernel& kernel(hv::VmId vm) {
    return *slots_.at(static_cast<std::size_t>(vm)).kernel;
  }
  [[nodiscard]] wl::Workload& workload(hv::VmId vm, std::size_t i = 0) {
    return *slots_.at(static_cast<std::size_t>(vm)).workloads.at(i);
  }
  [[nodiscard]] std::size_t n_workloads(hv::VmId vm) const {
    return slots_.at(static_cast<std::size_t>(vm)).workloads.size();
  }
  [[nodiscard]] Strategy strategy() const { return cfg_.strategy; }
  [[nodiscard]] sim::Time started_at() const { return t0_; }
  /// Null unless cfg.sample_period > 0 and start() has run.
  [[nodiscard]] obs::Sampler* sampler() { return sampler_.get(); }

 private:
  struct Slot {
    hv::Vm* vm = nullptr;
    std::unique_ptr<guest::GuestKernel> kernel;
    std::vector<std::unique_ptr<wl::Workload>> workloads;
  };

  [[nodiscard]] bool workloads_finished(const Slot& s) const;
  [[nodiscard]] sim::Duration fair_share(const Slot& s,
                                         sim::Duration elapsed) const;

  void arm_sampler();

  WorldConfig cfg_;
  sim::Engine eng_;  // constructed from cfg_.queue (declaration order holds)
  std::unique_ptr<hv::Host> host_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::vector<Slot> slots_;
  sim::Time t0_ = 0;
  bool started_ = false;
};

}  // namespace irs::core
