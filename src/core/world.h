// World: the public facade that assembles a simulated host, VMs with guest
// kernels, workloads, and a scheduling strategy — the library's main entry
// point (see examples/quickstart.cpp). Since the cluster layer landed it is
// the one-host special case of core::HostNode: World owns the engine and
// delegates the per-host assembly; cluster::Cluster composes N HostNodes on
// one shared engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/host_node.h"
#include "src/core/metrics.h"
#include "src/core/strategy.h"
#include "src/guest/guest_kernel.h"
#include "src/hv/host.h"
#include "src/obs/sampler.h"
#include "src/obs/telemetry.h"
#include "src/sim/engine.h"
#include "src/wl/workload.h"

namespace irs::core {

/// Inherits the shared telemetry knobs (trace_capacity, trace_batch,
/// sample_period, sample_capacity) from obs::TelemetryConfig — one
/// definition shared with ScenarioConfig and HostNodeConfig; existing
/// `cfg.trace_capacity = ...` call sites are unchanged.
struct WorldConfig : obs::TelemetryConfig {
  int n_pcpus = 4;
  hv::HvConfig hv;
  Strategy strategy = Strategy::kBaseline;
  /// Base seed for all randomness in the simulation (fully deterministic).
  std::uint64_t seed = 1;
  /// Event-queue backend for the engine. Defaults to the process-wide
  /// default (IRS_ENGINE_QUEUE or the hybrid wheel); tests override it to
  /// prove results are backend-independent within one process.
  sim::QueueKind queue = sim::default_queue_kind();
};

class World {
 public:
  explicit World(WorldConfig cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Add a VM. `irs_capable` marks guests that register VIRQ_SA_UPCALL —
  /// the foreground VM in the paper's setup; it only takes effect under
  /// Strategy::kIrs. Returns the VM id.
  hv::VmId add_vm(const hv::VmConfig& vm_cfg, bool irs_capable,
                  guest::GuestConfig guest_cfg = {}) {
    return node_->add_vm(vm_cfg, irs_capable, std::move(guest_cfg));
  }

  /// Attach a workload to a VM (may be called multiple times per VM).
  wl::Workload& attach(hv::VmId vm, std::unique_ptr<wl::Workload> w) {
    return node_->attach(vm, std::move(w));
  }

  /// Instantiate workloads and start the host and guests. Call once.
  void start() { node_->start(); }

  /// Run until every bounded workload on `vm` finishes, or `timeout` of
  /// simulated time elapses. Returns true when finished.
  bool run_until_finished(hv::VmId vm, sim::Duration timeout);

  /// Advance simulated time by `d`.
  void run_for(sim::Duration d);

  /// Summarise one VM's run so far.
  [[nodiscard]] VmMetrics vm_metrics(hv::VmId vm) const {
    return node_->vm_metrics(vm);
  }

  // --- accessors ---
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] hv::Host& host() { return node_->host(); }
  [[nodiscard]] HostNode& node() { return *node_; }
  [[nodiscard]] guest::GuestKernel& kernel(hv::VmId vm) {
    return node_->kernel(vm);
  }
  [[nodiscard]] wl::Workload& workload(hv::VmId vm, std::size_t i = 0) {
    return node_->workload(vm, i);
  }
  [[nodiscard]] std::size_t n_workloads(hv::VmId vm) const {
    return node_->n_workloads(vm);
  }
  [[nodiscard]] Strategy strategy() const { return node_->strategy(); }
  [[nodiscard]] sim::Time started_at() const { return node_->started_at(); }
  /// Null unless cfg.sample_period > 0 and start() has run.
  [[nodiscard]] obs::Sampler* sampler() { return node_->sampler(); }

 private:
  sim::Engine eng_;  // constructed from cfg.queue before node_
  std::unique_ptr<HostNode> node_;
};

}  // namespace irs::core
