// The four scheduling strategies compared in the paper's evaluation (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace irs::core {

enum class Strategy : std::uint8_t {
  kBaseline,      // vanilla Xen credit scheduler + vanilla Linux guest
  kPle,           // hardware pause-loop exiting (HVM)
  kRelaxedCo,     // VMware-style relaxed co-scheduling (paper's Xen port)
  kIrs,           // interference-resilient scheduling (this paper)
  kDelayPreempt,  // Uhlig-style lock-holder delay (related work, §2.2)
  kIrsPull,       // IRS + pull-based "running task" migration (paper §6)
};

const char* strategy_name(Strategy s);

/// Baseline first, then the paper's comparison order: PLE, Relaxed-Co, IRS.
const std::vector<Strategy>& all_strategies();

/// The three non-baseline strategies (figures report improvement vs
/// baseline).
const std::vector<Strategy>& compared_strategies();

/// The extension strategies beyond the paper's evaluation: the delay-
/// preemption baseline it discusses in related work, and the pull-based
/// migration its §6 proposes as future work.
const std::vector<Strategy>& extension_strategies();

}  // namespace irs::core
