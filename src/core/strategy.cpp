#include "src/core/strategy.h"

namespace irs::core {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBaseline: return "Xen";
    case Strategy::kPle: return "PLE";
    case Strategy::kRelaxedCo: return "Relaxed-Co";
    case Strategy::kIrs: return "IRS";
    case Strategy::kDelayPreempt: return "Delay-Preempt";
    case Strategy::kIrsPull: return "IRS-Pull";
  }
  return "?";
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> kAll = {
      Strategy::kBaseline, Strategy::kPle, Strategy::kRelaxedCo,
      Strategy::kIrs};
  return kAll;
}

const std::vector<Strategy>& compared_strategies() {
  static const std::vector<Strategy> kCmp = {
      Strategy::kPle, Strategy::kRelaxedCo, Strategy::kIrs};
  return kCmp;
}

const std::vector<Strategy>& extension_strategies() {
  static const std::vector<Strategy> kExt = {Strategy::kDelayPreempt,
                                             Strategy::kIrsPull};
  return kExt;
}

}  // namespace irs::core
