#include "src/core/world.h"

#include <cassert>

namespace irs::core {

World::World(WorldConfig cfg) : eng_(cfg.queue) {
  HostNodeConfig nc;
  nc.name = "host";
  nc.n_pcpus = cfg.n_pcpus;
  nc.hv = cfg.hv;
  nc.strategy = cfg.strategy;
  nc.seed = cfg.seed;
  nc.telemetry = cfg.telemetry();
  // prefix_series stays off: single-host sampler series keep their
  // pre-HostNode names ("hv/...", "guest/...") and digests.
  node_ = std::make_unique<HostNode>(eng_, std::move(nc));
  if (cfg.trace_capacity > 0) {
    eng_.set_trace(&node_->host().trace());
  }
}

World::~World() = default;

bool World::run_until_finished(hv::VmId vm, sim::Duration timeout) {
  assert(node_->started());
  const sim::Time deadline = eng_.now() + timeout;
  eng_.run_while([&]() {
    return !node_->workloads_finished(vm) && eng_.now() < deadline;
  });
  return node_->workloads_finished(vm);
}

void World::run_for(sim::Duration d) {
  assert(node_->started());
  eng_.run_until(eng_.now() + d);
}

}  // namespace irs::core
