// Measurement utilities: latency histograms and per-run summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace irs::core {

/// Exact-sample latency recorder (simulations produce modest sample counts,
/// so we keep every value and compute exact percentiles).
class Histogram {
 public:
  void add(sim::Duration v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] sim::Duration mean() const {
    if (samples_.empty()) return 0;
    // Accumulate in 128 bits: a sum of int64 ns durations overflows int64
    // at ~9.2e18 ns·samples (e.g. 1e9 samples of ~9.2 s), which large
    // serving runs can reach.
    __int128 total = 0;
    for (auto v : samples_) total += v;
    return static_cast<sim::Duration>(
        total / static_cast<__int128>(samples_.size()));
  }

  /// Exact percentile, p in [0, 100]: linear interpolation between closest
  /// ranks (the "C = 1" / numpy default convention), so e.g. the median of
  /// {10, 20} is 15 rather than either sample.
  [[nodiscard]] sim::Duration percentile(double p) const {
    if (samples_.empty()) return 0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    p = std::min(100.0, std::max(0.0, p));
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    const double below = static_cast<double>(samples_[lo]);
    if (frac == 0.0 || lo + 1 >= samples_.size()) {
      return samples_[lo];
    }
    const double above = static_cast<double>(samples_[lo + 1]);
    return static_cast<sim::Duration>(
        std::llround(below + frac * (above - below)));
  }

  [[nodiscard]] sim::Duration max() const {
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  // Sort-on-demand cache: percentile() is logically const (the sample
  // multiset is unchanged), so the storage order and its validity flag are
  // mutable.
  mutable std::vector<sim::Duration> samples_;
  mutable bool sorted_ = false;
};

/// Per-VM summary extracted from a finished run.
struct VmMetrics {
  std::string vm_name;
  sim::Duration elapsed = 0;
  sim::Duration cpu_time = 0;        // sum of vCPU running time
  sim::Duration steal_time = 0;      // sum of vCPU runnable time
  sim::Duration fair_share = 0;      // entitled CPU time over the run
  sim::Duration useful_compute = 0;  // task-level productive work
  double progress = 0;               // workload progress counter
  bool workload_finished = false;
  sim::Duration makespan = -1;       // fg completion time (bounded loads)

  /// CPU utilisation relative to fair share (Fig. 2's metric).
  [[nodiscard]] double util_vs_fair() const {
    return fair_share > 0 ? static_cast<double>(cpu_time) /
                                static_cast<double>(fair_share)
                          : 0.0;
  }
  /// Useful work relative to fair share (excludes spin waste).
  [[nodiscard]] double efficiency_vs_fair() const {
    return fair_share > 0 ? static_cast<double>(useful_compute) /
                                static_cast<double>(fair_share)
                          : 0.0;
  }
};

/// Percentage improvement of `x` over baseline `base` where smaller is
/// better (runtimes, latencies).
inline double improvement_pct(double base, double x) {
  if (base <= 0) return 0.0;
  return (base - x) / base * 100.0;
}

/// Percentage improvement where larger is better (throughput).
inline double gain_pct(double base, double x) {
  if (base <= 0) return 0.0;
  return (x - base) / base * 100.0;
}

}  // namespace irs::core
