// HostNode: one simulated host assembly — an hv::Host, its VMs with guest
// kernels, attached workloads, a scheduling strategy, and (optionally) a
// per-host sampler — built on an engine the *caller* owns. core::World is
// the one-host special case (it owns the engine); cluster::Cluster composes
// N HostNodes on one shared engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/strategy.h"
#include "src/guest/guest_kernel.h"
#include "src/hv/host.h"
#include "src/obs/sampler.h"
#include "src/obs/telemetry.h"
#include "src/sim/engine.h"
#include "src/wl/workload.h"

namespace irs::core {

struct HostNodeConfig {
  /// Host name — appears in VmId-validation error messages and (when
  /// `prefix_series` is set) in front of every sampler series.
  std::string name = "host";
  int n_pcpus = 4;
  hv::HvConfig hv;
  Strategy strategy = Strategy::kBaseline;
  /// Base seed for all randomness on this host (fully deterministic).
  std::uint64_t seed = 1;
  obs::TelemetryConfig telemetry;
  /// Prefix sampler series with "<name>/" so N hosts on one engine keep
  /// distinct series. World leaves this off — single-host series names
  /// (and their digests) are unchanged by the HostNode extraction.
  bool prefix_series = false;
};

class HostNode {
 public:
  /// The engine must outlive the node; the node registers events on it but
  /// never owns or advances it.
  HostNode(sim::Engine& eng, HostNodeConfig cfg);
  ~HostNode();
  HostNode(const HostNode&) = delete;
  HostNode& operator=(const HostNode&) = delete;

  /// Add a VM. `irs_capable` marks guests that register VIRQ_SA_UPCALL —
  /// the foreground VM in the paper's setup; it only takes effect under
  /// Strategy::kIrs. Returns the VM id (host-local).
  hv::VmId add_vm(const hv::VmConfig& vm_cfg, bool irs_capable,
                  guest::GuestConfig guest_cfg = {});

  /// Attach a workload to a VM (may be called multiple times per VM).
  wl::Workload& attach(hv::VmId vm, std::unique_ptr<wl::Workload> w);

  /// Instantiate workloads and start the host and guests. Call once.
  void start();

  /// True when every bounded workload on `vm` has finished.
  [[nodiscard]] bool workloads_finished(hv::VmId vm) const;

  /// Summarise one VM's run since start().
  [[nodiscard]] VmMetrics vm_metrics(hv::VmId vm) const;

  // --- accessors ---
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] hv::Host& host() { return *host_; }
  [[nodiscard]] const hv::Host& host() const { return *host_; }
  [[nodiscard]] guest::GuestKernel& kernel(hv::VmId vm) {
    return *slot(vm, "kernel").kernel;
  }
  [[nodiscard]] wl::Workload& workload(hv::VmId vm, std::size_t i = 0);
  [[nodiscard]] std::size_t n_workloads(hv::VmId vm) const {
    return slot(vm, "n_workloads").workloads.size();
  }
  [[nodiscard]] std::size_t n_vms() const { return slots_.size(); }
  [[nodiscard]] Strategy strategy() const { return cfg_.strategy; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] sim::Time started_at() const { return t0_; }
  [[nodiscard]] bool started() const { return started_; }
  /// Null unless cfg.telemetry.sample_period > 0 and start() has run.
  [[nodiscard]] obs::Sampler* sampler() { return sampler_.get(); }

 private:
  struct Slot {
    hv::Vm* vm = nullptr;
    std::unique_ptr<guest::GuestKernel> kernel;
    std::vector<std::unique_ptr<wl::Workload>> workloads;
  };

  /// Validated slot lookup: a stale or foreign VmId fails with a message
  /// naming the id, this host, and the accessor — not an opaque
  /// std::out_of_range from vector::at. Load-bearing once VMs are
  /// cluster-scoped and host-local ids stop being globally unique.
  [[nodiscard]] Slot& slot(hv::VmId vm, const char* what);
  [[nodiscard]] const Slot& slot(hv::VmId vm, const char* what) const;

  [[nodiscard]] bool workloads_finished(const Slot& s) const;
  [[nodiscard]] sim::Duration fair_share(const Slot& s,
                                         sim::Duration elapsed) const;

  void arm_sampler();

  HostNodeConfig cfg_;
  sim::Engine& eng_;
  std::unique_ptr<hv::Host> host_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::vector<Slot> slots_;
  sim::Time t0_ = 0;
  bool started_ = false;
};

}  // namespace irs::core
