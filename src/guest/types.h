// Shared types and tunables for the guest-kernel substrate.
//
// The guest model follows Linux 3.18-era CFS: per-CPU runqueues ordered by
// vruntime, a 250 Hz tick, wake-up preemption, and push/pull/wake-up load
// balancing. IRS's guest half (SA receiver, context switcher, migrator,
// wake-up fix) is configured here too.
#pragma once

#include <cstdint>

#include "src/sim/time.h"

namespace irs::guest {

using TaskId = std::int32_t;
inline constexpr TaskId kNoTask = -1;
inline constexpr int kNoCpu = -1;

/// Guest-visible task states.
enum class TaskState : std::uint8_t {
  kRunning,    // current on some guest CPU (may still be frozen if the
               // backing vCPU is preempted — the semantic gap)
  kReady,      // enqueued on a runqueue, waiting for the CPU
  kSpinning,   // current on a CPU, burning cycles on a spin lock
  kBlocked,    // waiting on a blocking primitive (mutex/barrier/pipe/cv)
  kSleeping,   // timed sleep
  kMigrating,  // dequeued by the IRS context switcher, held by the migrator
  kFinished,
};

const char* task_state_name(TaskState s);

/// How the IRS migrator chooses a destination vCPU (ablation knob; the
/// paper's Algorithm 2 is kIdleThenLeastLoaded).
enum class MigratorPolicy : std::uint8_t {
  kIdleThenLeastLoaded,  // idle sibling first, else least rt_avg RUNNING one
  kLeastLoadedOnly,      // skip the idle-first shortcut
  kFirstRunning,         // naive: first sibling the hypervisor says runs
};

/// Guest-kernel tunables (defaults model Linux 3.18 CFS + the paper's
/// measured IRS costs).
struct GuestConfig {
  sim::Duration tick_period = sim::milliseconds(4);  // CONFIG_HZ=250
  sim::Duration sched_latency = sim::milliseconds(6);
  sim::Duration min_granularity = sim::microseconds(750);
  sim::Duration wakeup_granularity = sim::microseconds(1000);
  sim::Duration ctx_switch_cost = sim::microseconds(2);
  /// Period of the per-CPU periodic (push) load balancer.
  sim::Duration balance_interval = sim::milliseconds(16);
  /// Decay time constant of the per-CPU steal-fraction estimate feeding
  /// rt_avg.
  sim::Duration steal_avg_tau = sim::milliseconds(100);
  /// Idle housekeeping period: a blocked (idle) vCPU wakes this often for
  /// residual timers/RCU work and runs a new-idle balance before blocking
  /// again — this is how work drifts back onto a vCPU that went idle.
  /// 0 disables (full tickless idle).
  sim::Duration idle_poll_period = sim::milliseconds(10);

  // --- IRS guest half ---
  bool irs_enabled = false;
  /// vIRQ handler + context switch cost charged while acknowledging an SA
  /// (paper §3.1 measures 20–26 us end to end; jittered at runtime).
  sim::Duration sa_handler_cost = sim::microseconds(20);
  /// Delay before the asynchronously woken migrator performs a migration.
  sim::Duration migrator_cost = sim::microseconds(4);
  MigratorPolicy migrator_policy = MigratorPolicy::kIdleThenLeastLoaded;
  /// Fix of Fig. 4: a waking task preempts a tagged (IRS-migrated) task on
  /// its old CPU instead of being bounced to another CPU.
  bool irs_wakeup_fix = true;
  /// Paper §6 extension ("the ideal migration should be pull-based"):
  /// an idle guest CPU may pull the *current* task off a sibling vCPU that
  /// the hypervisor has preempted — the "migrate a running task" mechanism
  /// the paper calls future work.
  bool irs_pull = false;
  /// Paravirtual lock hints (delay-preemption baseline): the guest tells
  /// the hypervisor whenever the current task holds a lock.
  bool paravirt_lock_hints = false;
  /// A task stays "migrating"-tagged until the load balancer moves it back
  /// or it blocks; this cap on tagged CPU time is only a safety valve.
  sim::Duration tag_ttl = sim::milliseconds(100);

  // --- locality model ---
  /// Base cache-refill penalty charged to a task's next compute burst after
  /// a cross-CPU migration; workloads scale it by their memory intensity.
  sim::Duration migration_cache_penalty = sim::microseconds(60);
};

}  // namespace irs::guest
