// IRS migrator (paper §3.3, Algorithm 2): a kernel-thread-like component
// that moves a task descheduled by the context switcher to the best sibling
// vCPU — an idle (hypervisor-blocked) one if it exists, else the RUNNING
// sibling with the lowest rt_avg. Preempted (runnable) siblings are never
// chosen: the whole point is that the task must not wait behind a
// descheduled vCPU.
//
// Unlike Linux's migration_cpu_stop, the migrator does not need to run on
// the source vCPU (paper §4.2); it only needs *some* vCPU of the VM to be
// executing.
#pragma once

#include <cstdint>
#include <deque>

#include "src/guest/task.h"
#include "src/guest/types.h"
#include "src/sim/engine.h"

namespace irs::guest {

class GuestKernel;

struct MigratorStats {
  std::uint64_t requests = 0;
  std::uint64_t to_idle = 0;      // target was an idle (blocked) vCPU
  std::uint64_t to_running = 0;   // target was the least-loaded running one
  std::uint64_t fallback_src = 0; // no eligible target; task went home
};

class Migrator {
 public:
  Migrator(sim::Engine& eng, GuestKernel& kernel);

  /// Queue a task held in kMigrating limbo by the context switcher.
  void request(Task& t, int src_cpu);

  /// Try to make progress; called on request and whenever a vCPU of this
  /// VM starts executing (the migrator needs a live vCPU to run on).
  void pump();

  [[nodiscard]] const MigratorStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }

  /// Algorithm 2 target selection. Exposed for unit tests.
  [[nodiscard]] int pick_target(int src_cpu) const;

  /// Whether migrating away from `src_cpu` is worthwhile right now: the
  /// best target is idle, or meaningfully less loaded than the source.
  /// Under uniform contention (every sibling equally interfered) moving a
  /// task only desynchronises the VM, so the context switcher declines the
  /// activation instead.
  [[nodiscard]] bool migration_worthwhile(int src_cpu) const;

 private:
  struct Req {
    Task* task;
    int src;
  };

  void execute();

  sim::Engine& eng_;
  GuestKernel& kernel_;
  std::deque<Req> queue_;
  bool busy_ = false;
  MigratorStats stats_;
};

}  // namespace irs::guest
