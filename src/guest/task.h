// A guest task (thread) — the unit the Linux-model scheduler schedules and
// the IRS migrator moves.
#pragma once

#include <cstdint>
#include <string>

#include "src/guest/action.h"
#include "src/guest/types.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"
#include "src/sync/wait.h"

namespace irs::sync {
class Mutex;
}  // namespace irs::sync

namespace irs::guest {

/// Per-task statistics, exported to the metrics layer.
struct TaskStats {
  sim::Duration compute_done = 0;  // useful CPU time completed
  sim::Duration spin_time = 0;     // CPU burnt spinning
  std::uint64_t migrations = 0;    // cross-CPU moves (all causes)
  std::uint64_t irs_migrations = 0;
  std::uint64_t wakeups = 0;
  sim::Time finished_at = -1;
};

class Task {
 public:
  Task(TaskId id, std::string name, Behavior* behavior, sim::Rng rng)
      : id_(id), name_(std::move(name)), behavior_(behavior), rng_(rng) {}

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Behavior& behavior() const { return *behavior_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  [[nodiscard]] TaskState state() const { return state_; }
  void set_state(TaskState s) { state_ = s; }
  [[nodiscard]] bool finished() const { return state_ == TaskState::kFinished; }

  /// Guest CPU index the task is on (running/ready) or last ran on.
  [[nodiscard]] int cpu() const { return cpu_; }
  void set_cpu(int c) { cpu_ = c; }

  // --- CFS bookkeeping ---
  sim::Duration vruntime = 0;
  /// CPU time consumed since the task was last picked (slice check).
  sim::Duration slice_used = 0;

  // --- current in-flight action ---
  /// The action being executed; kind kCompute means op_remaining of CPU is
  /// still owed. After a blocking action completes via wake-up, `op` is
  /// reset and the behavior is asked for the next action.
  Action op{.kind = ActionKind::kYield};  // kYield doubles as "none"
  sim::Duration op_remaining = 0;
  bool has_op = false;

  /// Mutex to reacquire when resuming from a condvar wait.
  sync::Mutex* reacquire = nullptr;

  /// Out-of-band result of the last blocking primitive op (e.g. Pipe::pop
  /// sets 1 = item received, 0 = pipe closed empty). Read by behaviours.
  int wake_value = 0;

  // --- synchronisation status (for LHP/LWP classification) ---
  int locks_held = 0;
  /// Name of the most recently acquired still-held lock (nullptr when none).
  /// Maintained by the sync layer so LHP records can name the lock; with
  /// nested locks only the innermost name is kept — good enough for
  /// attribution, which wants *a* culprit, not the full held set.
  const char* held_lock_name = nullptr;
  /// Primitive this task is busy-waiting on (nullptr when not spinning).
  sync::SpinWaitable* spin_waiting = nullptr;
  std::uint64_t spin_ticket = 0;
  sim::Time spin_since = 0;

  // --- IRS migrating tag (paper §3.3, Fig. 4) ---
  bool migrating_tag = false;
  /// CPU time executed since tagged (tag expires after tag_ttl).
  sim::Duration tag_runtime = 0;
  /// The vCPU the task was displaced from; the load balancer prefers to
  /// migrate it back there once that vCPU is schedulable again.
  int irs_home = kNoCpu;

  /// Cache-locality debt added to the next compute burst after a migration.
  sim::Duration cache_debt = 0;

  /// Timer for kSleep wake-ups.
  sim::EventHandle sleep_timer;

  TaskStats stats;

 private:
  TaskId id_;
  std::string name_;
  Behavior* behavior_;  // owned by the workload layer
  sim::Rng rng_;
  TaskState state_ = TaskState::kReady;
  int cpu_ = kNoCpu;
};

}  // namespace irs::guest
