#include "src/guest/load_balancer.h"

#include <algorithm>

#include "src/guest/guest_cpu.h"
#include "src/guest/guest_kernel.h"

namespace irs::guest {

double LoadBalancer::load_metric(const GuestCpu& c) {
  // Runnable load scaled by the CPU's effective capacity after steal time:
  // a vCPU that only gets half its pCPU counts each runnable task double.
  const double capacity = std::max(0.1, 1.0 - c.steal_frac());
  return static_cast<double>(c.nr_running()) / capacity;
}

GuestCpu* LoadBalancer::busiest_other(const GuestCpu& me) const {
  GuestCpu* busiest = nullptr;
  double best = 0.0;
  for (int i = 0; i < kernel_.n_cpus(); ++i) {
    GuestCpu& c = kernel_.cpu(i);
    if (&c == &me) continue;
    if (c.rq().nr_ready() == 0) continue;  // nothing movable anyway
    const double m = load_metric(c);
    if (busiest == nullptr || m > best) {
      busiest = &c;
      best = m;
    }
  }
  return busiest;
}

bool LoadBalancer::move_one(GuestCpu& from, GuestCpu& to,
                            std::uint64_t BalancerStats::*ctr) {
  // Prefer returning an IRS-displaced task to its home vCPU (paper §3.3:
  // "we rely on the Linux load balancer to migrate the tagged task back to
  // the preempted vCPU when it is scheduled again").
  Task* t = from.rq().tagged_for(to.idx());
  if (t == nullptr) t = from.rq().hottest_to_steal();
  if (t == nullptr) return false;
  from.rq().remove(*t);
  ++(stats_.*ctr);
  kernel_.note_migration(*t, from.idx(), to.idx(),
                         ctr == &BalancerStats::tasks_pulled
                             ? obs::Cnt::kGuestPullMigrations
                             : obs::Cnt::kGuestPushMigrations);
  kernel_.migrate_enqueue(*t, from.idx(), to.idx(), /*wake_preempt=*/false);
  return true;
}

void LoadBalancer::periodic(GuestCpu& me, int max_moves) {
  ++stats_.periodic_calls;
  // Push side (models Linux's nohz-idle balancing on behalf of idle CPUs):
  // if we have excess runnable tasks and a sibling looks idle, hand one
  // over and kick its vCPU. The decision is capacity-aware: pushing onto a
  // CPU whose (last known) steal fraction is high does not improve the
  // effective balance. Note "looks idle" is the guest view — a preempted
  // vCPU with an empty queue is indistinguishable from a truly idle one
  // (the semantic gap), and the steal estimate of a descheduled vCPU is
  // stale, so bad pushes still happen occasionally, as in real Linux.
  if (me.nr_running() >= 2 && me.rq().nr_ready() >= 1) {
    const double my_metric = load_metric(me);
    for (int c = 0; c < kernel_.n_cpus(); ++c) {
      GuestCpu& peer = kernel_.cpu(c);
      if (&peer == &me || !peer.guest_idle()) continue;
      const double peer_cap = std::max(0.1, 1.0 - peer.steal_frac());
      const double peer_after = 1.0 / peer_cap;
      if (peer_after + 0.25 >= my_metric) continue;  // no balance gain
      move_one(me, peer, &BalancerStats::tasks_pushed);
      break;
    }
  }
  // Pull side.
  for (int moved = 0; moved < max_moves; ++moved) {
    GuestCpu* b = busiest_other(me);
    if (b == nullptr) return;
    // Move only on real imbalance: the busiest CPU must stay at least as
    // loaded as us after the move (Linux's imbalance ~= half the gap;
    // a 2-vs-1 split is already balanced and moving would ping-pong).
    if (b->nr_running() < me.nr_running() + 2) return;
    if (load_metric(*b) - load_metric(me) < 1.0) return;
    if (!move_one(*b, me, &BalancerStats::tasks_pushed)) return;
  }
}

bool LoadBalancer::newidle(GuestCpu& me) {
  ++stats_.newidle_calls;
  // Paper §6 extension: an idle CPU may pull the CURRENT task off a
  // sibling vCPU the hypervisor has preempted — "migrating a running task
  // from a preempted vCPU", which vanilla kernels cannot express.
  const auto& cfg = kernel_.config();
  if (cfg.irs_pull) {
    for (int c = 0; c < kernel_.n_cpus(); ++c) {
      GuestCpu& peer = kernel_.cpu(c);
      if (&peer == &me || peer.current() == nullptr || peer.vcpu_running()) {
        continue;
      }
      if (kernel_.hypercalls().vcpu_runstate(c).state !=
          hv::VcpuState::kRunnable) {
        continue;
      }
      guest::Task* t = peer.yank_current_if_preempted();
      if (t == nullptr) continue;
      kernel_.counters().inc(guest_shard(me.idx()),
                             obs::Cnt::kGuestIrsPullMigrations);
      t->migrating_tag = true;
      t->tag_runtime = 0;
      t->irs_home = c;
      kernel_.note_migration(*t, c, me.idx(), obs::Cnt::kGuestIrsMigrations);
      kernel_.enqueue_task(*t, me.idx(), /*wake_preempt=*/false);
      return true;
    }
  }
  GuestCpu* b = busiest_other(me);
  if (b == nullptr) return false;
  if (b->rq().nr_ready() == 0) return false;
  if (b->nr_running() < 2) {
    // Sole-task donor: only rescue a task stranded on a CPU whose vCPU has
    // been hypervisor-preempted (runnable but not running) for a while —
    // that task cannot be dispatched until the vCPU gets a pCPU back. A
    // running / just-kicked donor will schedule it momentarily; stealing
    // would just bounce the task straight back.
    if (b->current() != nullptr) return false;
    const hv::RunstateInfo rs =
        kernel_.hypercalls().vcpu_runstate(b->idx());
    if (rs.state != hv::VcpuState::kRunnable) return false;
    if (kernel_.now() - rs.state_entered < sim::milliseconds(1)) return false;
  }
  return move_one(*b, me, &BalancerStats::tasks_pulled);
}

}  // namespace irs::guest
