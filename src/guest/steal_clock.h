// Paravirtual steal clock: the guest-visible estimate of how contended its
// vCPU's pCPU is.
//
// Linux feeds steal time into rt_avg so load balancing can account for
// hypervisor-level contention (paper §3.3). We keep, per guest CPU, an EWMA
// of the fraction of wall time the vCPU spent runnable-but-not-running,
// updated from the hypervisor's runstate counters at every guest tick —
// which also means the estimate goes stale while the vCPU is preempted,
// exactly the inaccuracy the paper's §6 mentions.
#pragma once

#include "src/hv/hypercalls.h"
#include "src/sim/time.h"

namespace irs::guest {

class StealClock {
 public:
  /// `tau`: decay time constant of the time-weighted average. A sample
  /// covering `wall` time gets weight 1-exp(-wall/tau), so long preemption
  /// gaps dominate short clean ticks (Linux's rt_avg is a ~1 s sliding
  /// window; 100 ms keeps the simulation responsive).
  explicit StealClock(sim::Duration tau = sim::milliseconds(100))
      : tau_(tau) {}

  /// Fold the runstate delta since the previous update into the average.
  void update(const hv::RunstateInfo& rs, sim::Time now);

  /// Smoothed fraction of recent wall time stolen by the hypervisor, in
  /// [0, 1].
  [[nodiscard]] double steal_frac() const { return frac_; }

  /// Raw cumulative steal time at the last update.
  [[nodiscard]] sim::Duration last_steal_total() const { return last_steal_; }

 private:
  sim::Duration tau_;
  double frac_ = 0.0;
  sim::Duration last_steal_ = 0;
  sim::Time last_update_ = 0;
  bool primed_ = false;
};

}  // namespace irs::guest
