#include "src/guest/guest_cpu.h"

#include <algorithm>
#include <cassert>

#include "src/guest/guest_kernel.h"
#include "src/sync/mutex.h"
#include "src/sync/barrier.h"
#include "src/sync/condvar.h"
#include "src/sync/pipe.h"
#include "src/sync/spinlock.h"

namespace irs::guest {

GuestCpu::GuestCpu(GuestKernel& kernel, int idx)
    : kernel_(kernel), idx_(idx), steal_(kernel.config().steal_avg_tau) {
  softirq_.set_handler(SoftirqNr::kTimer, [this]() { timer_softirq(); });
  softirq_.set_handler(SoftirqNr::kUpcall, [this]() { upcall_softirq(); });
  // Stagger the first periodic balance so CPUs don't all balance at once.
  next_balance_ = kernel_.config().balance_interval * (idx + 1);
}

double GuestCpu::load_score() const {
  // rt_avg-style: guest-visible runnable load plus hypervisor contention.
  // Steal is weighted up because a contended vCPU delays everything on it.
  return static_cast<double>(nr_running()) + 2.0 * steal_.steal_frac();
}

sim::Duration GuestCpu::cfs_slice() const {
  const auto& cfg = kernel_.config();
  const auto nr = std::max<std::size_t>(1, nr_running());
  return std::max(cfg.sched_latency / static_cast<sim::Duration>(nr),
                  cfg.min_granularity);
}

// ---------------------------------------------------------------------------
// Execution clock
// ---------------------------------------------------------------------------

void GuestCpu::stop_exec() {
  if (!exec_active_) return;
  exec_active_ = false;
  op_done_.cancel();
  assert(current_ != nullptr);
  Task& t = *current_;
  const sim::Duration delta = kernel_.engine().now() - exec_start_;
  if (delta <= 0) return;
  t.vruntime += delta;
  t.slice_used += delta;
  if (Task* left = rq_.leftmost()) {
    rq_.advance_min_vruntime(std::min(t.vruntime, left->vruntime));
  } else {
    rq_.advance_min_vruntime(t.vruntime);
  }
  if (t.migrating_tag) {
    t.tag_runtime += delta;
    if (t.tag_runtime >= kernel_.config().tag_ttl) t.migrating_tag = false;
  }
  if (t.state() == TaskState::kSpinning) {
    t.stats.spin_time += delta;
  } else if (t.has_op && t.op.kind == ActionKind::kCompute) {
    t.op_remaining = std::max<sim::Duration>(0, t.op_remaining - delta);
    t.stats.compute_done += delta;
  }
}

void GuestCpu::resume_current() {
  if (!vcpu_running_ || current_ == nullptr) return;
  if (maybe_resched()) return;
  Task& t = *current_;
  if (t.spin_waiting != nullptr) {
    // Re-enter the busy-wait loop; poll() may grant immediately (e.g. the
    // lock was released while our vCPU was preempted).
    t.set_state(TaskState::kSpinning);
    exec_start_ = kernel_.engine().now();
    exec_active_ = true;
    kernel_.signal_spin(idx_, true);
    t.spin_waiting->poll(t);
    return;
  }
  if (t.has_op && t.op.kind == ActionKind::kCompute) {
    t.op_remaining += pending_overhead_;
    pending_overhead_ = 0;
    exec_start_ = kernel_.engine().now();
    exec_active_ = true;
    op_done_ = kernel_.engine().schedule(
        t.op_remaining, [this]() { on_op_complete(); }, "guest.op");
    return;
  }
  interpret();
}

void GuestCpu::begin_exec() { resume_current(); }

void GuestCpu::on_op_complete() {
  stop_exec();
  assert(current_ != nullptr);
  current_->has_op = false;
  interpret();
}

// ---------------------------------------------------------------------------
// The action interpreter
// ---------------------------------------------------------------------------

void GuestCpu::update_lock_hint() {
  const bool h = current_ != nullptr && current_->locks_held > 0;
  if (h != lock_hint_) {
    lock_hint_ = h;
    kernel_.signal_lock_hint(idx_, h);
  }
}

void GuestCpu::interpret() {
  assert(current_ != nullptr && vcpu_running_);
  for (int guard = 0; guard < 256; ++guard) {
    update_lock_hint();
    if (maybe_resched()) return;
    Task& t = *current_;
    // Resuming from a condvar wait: reacquire the mutex first.
    if (t.reacquire != nullptr) {
      sync::Mutex* m = t.reacquire;
      t.reacquire = nullptr;
      if (m->lock(t) == sync::AcquireResult::kBlocked) {
        block_current(TaskState::kBlocked);
        return;
      }
      continue;
    }
    if (!t.has_op) {
      t.op = t.behavior().next(t, kernel_.engine().now(), t.rng());
      t.has_op = true;
      if (t.op.kind == ActionKind::kCompute) {
        t.op_remaining = t.op.dur + t.cache_debt;
        t.cache_debt = 0;
      }
    }
    const Action a = t.op;
    switch (a.kind) {
      case ActionKind::kCompute: {
        t.op_remaining += pending_overhead_;
        pending_overhead_ = 0;
        exec_start_ = kernel_.engine().now();
        exec_active_ = true;
        op_done_ = kernel_.engine().schedule(
            t.op_remaining, [this]() { on_op_complete(); }, "guest.op");
        return;
      }
      case ActionKind::kLock: {
        t.has_op = false;
        if (a.mtx->lock(t) == sync::AcquireResult::kAcquired) continue;
        block_current(TaskState::kBlocked);
        return;
      }
      case ActionKind::kUnlock: {
        t.has_op = false;
        a.mtx->unlock(t);
        continue;
      }
      case ActionKind::kSpinLock: {
        if (a.sl->lock(t) == sync::SpinResult::kAcquired) {
          t.has_op = false;
          continue;
        }
        enter_spin(*a.sl);
        return;
      }
      case ActionKind::kSpinUnlock: {
        t.has_op = false;
        a.sl->unlock(t);
        continue;
      }
      case ActionKind::kBarrier: {
        switch (a.bar->arrive(t)) {
          case sync::BarrierResult::kReleased:
            t.has_op = false;
            continue;
          case sync::BarrierResult::kBlocked:
            t.has_op = false;
            block_current(TaskState::kBlocked);
            return;
          case sync::BarrierResult::kSpin:
            enter_spin(*a.bar);
            return;
        }
        continue;
      }
      case ActionKind::kPipePush: {
        t.has_op = false;
        if (a.pp->push(t) == sync::AcquireResult::kAcquired) continue;
        block_current(TaskState::kBlocked);
        return;
      }
      case ActionKind::kPipePop: {
        t.has_op = false;
        if (a.pp->pop(t) == sync::AcquireResult::kAcquired) continue;
        block_current(TaskState::kBlocked);
        return;
      }
      case ActionKind::kCondWait: {
        t.has_op = false;
        a.cv->wait(t, *a.mtx);
        block_current(TaskState::kBlocked);
        return;
      }
      case ActionKind::kCondSignal: {
        t.has_op = false;
        a.cv->signal();
        continue;
      }
      case ActionKind::kCondBroadcast: {
        t.has_op = false;
        a.cv->broadcast();
        continue;
      }
      case ActionKind::kSleep: {
        t.has_op = false;
        Task* tp = &t;
        t.sleep_timer = kernel_.engine().schedule(
            a.dur, [this, tp]() { kernel_.wake_task(*tp); }, "guest.sleep");
        block_current(TaskState::kSleeping);
        return;
      }
      case ActionKind::kYield: {
        t.has_op = false;
        if (!rq_.empty()) {
          t.set_state(TaskState::kReady);
          rq_.enqueue(t);
          current_ = nullptr;
          install(rq_.pop_leftmost(), /*resume=*/true);
          return;
        }
        continue;
      }
      case ActionKind::kFinish: {
        t.has_op = false;
        finish_current();
        return;
      }
    }
  }
  assert(false && "behavior produced too many zero-time actions in a row");
}

bool GuestCpu::maybe_resched() {
  if (!need_resched_ || current_ == nullptr) {
    need_resched_ = false;
    resched_forced_ = false;
    return false;
  }
  need_resched_ = false;
  const bool force = resched_forced_;
  resched_forced_ = false;
  Task* cand = rq_.leftmost();
  if (cand == nullptr) return false;
  Task& cur = *current_;
  if (!force) {
    const auto& cfg = kernel_.config();
    const bool beats = cand->vruntime + cfg.wakeup_granularity < cur.vruntime;
    if (!beats) return false;
  }
  stop_exec();
  if (cur.spin_waiting != nullptr) kernel_.signal_spin(idx_, false);
  cur.set_state(TaskState::kReady);
  rq_.enqueue(cur);
  current_ = nullptr;
  install(rq_.pop_leftmost(), /*resume=*/true);
  return true;
}

void GuestCpu::request_resched(bool force) {
  need_resched_ = true;
  resched_forced_ |= force;
  if (vcpu_running_ && !resched_evt_.pending()) {
    resched_evt_ = kernel_.engine().schedule(
        0,
        [this]() {
          if (vcpu_running_) maybe_resched();
        },
        "guest.resched");
  }
}

// ---------------------------------------------------------------------------
// Task transitions
// ---------------------------------------------------------------------------

void GuestCpu::enter_spin(sync::SpinWaitable& w) {
  Task& t = *current_;
  t.set_state(TaskState::kSpinning);
  t.spin_waiting = &w;
  t.spin_since = kernel_.engine().now();
  exec_start_ = kernel_.engine().now();
  exec_active_ = true;
  kernel_.signal_spin(idx_, true);
}

void GuestCpu::spin_acquired(Task& t) {
  assert(current_ == &t);
  stop_exec();
  kernel_.signal_spin(idx_, false);
  t.spin_waiting = nullptr;
  t.has_op = false;
  t.set_state(TaskState::kRunning);
  if (vcpu_running_) interpret();
}

void GuestCpu::block_current(TaskState st) {
  assert(current_ != nullptr && !exec_active_);
  Task& t = *current_;
  t.set_state(st);
  // Note: the IRS "migrating" tag deliberately survives blocking — it is
  // retired only when the load balancer moves the task back (paper §3.3)
  // or after tag_ttl of CPU time.
  current_ = nullptr;
  update_lock_hint();
  pick_next_or_idle();
}

void GuestCpu::finish_current() {
  assert(current_ != nullptr);
  Task& t = *current_;
  t.set_state(TaskState::kFinished);
  t.stats.finished_at = kernel_.engine().now();
  current_ = nullptr;
  update_lock_hint();
  kernel_.notify_task_finished(t);
  pick_next_or_idle();
}

void GuestCpu::trace_lane(std::int32_t task_id, const char* note) {
  if (task_id == lane_task_) return;
  lane_task_ = task_id;
  kernel_.trace_buf().record(kernel_.engine().now(),
                             sim::TraceKind::kGuestSwitch,
                             kernel_.trace_gcpu(idx_), task_id, note);
}

void GuestCpu::install(Task* next, bool resume) {
  assert(next != nullptr && current_ == nullptr);
  current_ = next;
  trace_lane(next->id());
  update_lock_hint();
  next->set_cpu(idx_);
  next->set_state(next->spin_waiting != nullptr ? TaskState::kSpinning
                                                : TaskState::kRunning);
  next->slice_used = 0;
  pending_overhead_ += kernel_.config().ctx_switch_cost;
  kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestCtxSwitches);
  if (resume) resume_current();
}

void GuestCpu::pick_next_or_idle() {
  assert(current_ == nullptr);
  Task* next = rq_.pop_leftmost();
  if (next == nullptr && vcpu_running_) {
    // new-idle (pull) balancing before committing to idle.
    if (kernel_.balancer().newidle(*this)) next = rq_.pop_leftmost();
  }
  if (next != nullptr) {
    install(next, /*resume=*/true);
    return;
  }
  trace_lane(-1);
  // The migrator kernel thread has queued work and needs a live vCPU:
  // idle here (without blocking) until it drains — it may well enqueue
  // the migrated task right onto this CPU.
  if (vcpu_running_ && kernel_.migrator().backlog() > 0) {
    if (!resched_evt_.pending()) {
      resched_evt_ = kernel_.engine().schedule(
          2 * kernel_.config().migrator_cost,
          [this]() {
            if (vcpu_running_ && current_ == nullptr) pick_next_or_idle();
          },
          "guest.idle_spin");
    }
    return;
  }
  // Guest idle: give the pCPU back (SCHEDOP_block). The idle housekeeping
  // timer is armed by on_vcpu_stop when the block lands.
  if (vcpu_running_) kernel_.hypercalls().sched_block(idx_);
}

void GuestCpu::enqueue_ready(Task& t, bool wake_preempt,
                             bool normalize_vruntime) {
  const auto& cfg = kernel_.config();
  t.set_state(TaskState::kReady);
  t.set_cpu(idx_);
  // Wake-up vruntime normalisation: sleepers re-enter slightly behind the
  // queue head so they get scheduled soon but cannot monopolise.
  if (normalize_vruntime) {
    t.vruntime = std::max(t.vruntime, rq_.min_vruntime() - cfg.sched_latency);
  }
  rq_.enqueue(t);
  if (current_ == nullptr) {
    if (vcpu_running_) {
      if (!resched_evt_.pending()) {
        resched_evt_ = kernel_.engine().schedule(
            0,
            [this]() {
              if (vcpu_running_ && current_ == nullptr && !rq_.empty()) {
                pick_next_or_idle();
              }
            },
            "guest.pick");
      }
    } else {
      kernel_.kick_if_blocked(idx_);
    }
    return;
  }
  if (!wake_preempt) return;
  const bool tag_preempt = (cfg.irs_enabled || cfg.irs_pull) &&
                           cfg.irs_wakeup_fix && current_->migrating_tag;
  if (tag_preempt) {
    kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestTagPreemptions);
  }
  const bool beats =
      t.vruntime + cfg.wakeup_granularity < current_->vruntime;
  if (tag_preempt || beats) request_resched(tag_preempt);
}

// ---------------------------------------------------------------------------
// vCPU lifecycle
// ---------------------------------------------------------------------------

void GuestCpu::on_vcpu_start() {
  vcpu_running_ = true;
  idle_poll_.cancel();
  arm_tick();
  run_stop_requests();
  kernel_.migrator().pump();
  if (!vcpu_running_) return;  // a stop request emptied and blocked us
  if (current_ != nullptr) {
    resume_current();
  } else {
    // Covers both queued work and the housekeeping wake: try a new-idle
    // pull before giving the pCPU back.
    pick_next_or_idle();
  }
}

void GuestCpu::on_vcpu_stop(hv::StopReason reason) {
  stop_exec();
  vcpu_running_ = false;
  tick_timer_.cancel();
  sa_bh_timer_.cancel();
  resched_evt_.cancel();
  op_done_.cancel();
  if (current_ != nullptr && current_->spin_waiting != nullptr) {
    kernel_.signal_spin(idx_, false);
  }
  // Idle housekeeping: a blocked idle vCPU periodically wakes to run a
  // new-idle balance (residual timers/RCU keep real idle CPUs ticking).
  if (reason == hv::StopReason::kBlocked && guest_idle()) {
    arm_idle_housekeeping();
  }
}

void GuestCpu::arm_idle_housekeeping() {
  const sim::Duration poll = kernel_.config().idle_poll_period;
  if (poll <= 0) return;
  idle_poll_ = kernel_.engine().schedule(
      poll,
      [this]() {
        if (!vcpu_running_ && guest_idle()) {
          kernel_.kick_if_blocked(idx_);
        }
      },
      "guest.idle_poll");
}

// ---------------------------------------------------------------------------
// Timer tick
// ---------------------------------------------------------------------------

void GuestCpu::arm_tick() {
  tick_timer_.cancel();
  tick_timer_ = kernel_.engine().schedule(
      kernel_.config().tick_period, [this]() { on_tick(); }, "guest.tick");
}

void GuestCpu::on_tick() {
  if (!vcpu_running_) return;
  softirq_.raise(SoftirqNr::kTimer);
  softirq_.run_pending(SoftirqNr::kTimer);
  if (vcpu_running_) arm_tick();
}

void GuestCpu::timer_softirq() {
  const sim::Time now = kernel_.engine().now();
  steal_.update(kernel_.hypercalls().vcpu_runstate(idx_), now);
  if (current_ != nullptr) {
    stop_exec();
    Task* cand = rq_.leftmost();
    if (cand != nullptr && current_->slice_used >= cfs_slice() &&
        cand->vruntime < current_->vruntime) {
      Task& cur = *current_;
      if (cur.spin_waiting != nullptr) kernel_.signal_spin(idx_, false);
      cur.set_state(TaskState::kReady);
      rq_.enqueue(cur);
      current_ = nullptr;
      install(rq_.pop_leftmost(), /*resume=*/true);
    } else {
      resume_current();
    }
  }
  if (now >= next_balance_) {
    next_balance_ = now + kernel_.config().balance_interval;
    kernel_.balancer().periodic(*this);
  }
}

// ---------------------------------------------------------------------------
// Stop-based migration (Fig. 1b)
// ---------------------------------------------------------------------------

void GuestCpu::request_stop_migration(Task& victim, int dst,
                                      std::function<void(sim::Duration)> done) {
  stop_reqs_.push_back(
      StopRequest{&victim, dst, kernel_.engine().now(), std::move(done)});
  if (vcpu_running_) {
    kernel_.engine().schedule(
        0,
        [this]() {
          if (vcpu_running_) run_stop_requests();
        },
        "guest.stopper");
  }
  // Otherwise the request executes when the vCPU next gets a pCPU — the
  // very delay Fig. 1b measures.
}

Task* GuestCpu::yank_current_if_preempted() {
  if (vcpu_running_ || current_ == nullptr) return nullptr;
  assert(!exec_active_);  // the vCPU stop folded the execution clock
  Task* t = current_;
  current_ = nullptr;
  trace_lane(-1, "pull");
  t->set_state(TaskState::kReady);
  return t;
}

void GuestCpu::run_stop_requests() {
  if (stop_reqs_.empty()) return;
  std::vector<StopRequest> reqs;
  reqs.swap(stop_reqs_);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!vcpu_running_) {
      // pick_next_or_idle blocked the vCPU mid-batch; keep the rest queued.
      stop_reqs_.insert(stop_reqs_.end(),
                        std::make_move_iterator(reqs.begin() + static_cast<std::ptrdiff_t>(i)),
                        std::make_move_iterator(reqs.end()));
      return;
    }
    StopRequest& r = reqs[i];
    Task& t = *r.victim;
    const bool is_current = current_ == &t;
    const bool is_queued = !is_current && t.cpu() == idx_ &&
                           t.state() == TaskState::kReady;
    if (is_current) {
      stop_exec();
      if (t.spin_waiting != nullptr) kernel_.signal_spin(idx_, false);
      current_ = nullptr;
      t.set_state(TaskState::kReady);
    } else if (is_queued) {
      rq_.remove(t);
    }
    if (is_current || is_queued) {
      kernel_.note_migration(t, idx_, r.dst, obs::Cnt::kGuestStopMigrations);
      kernel_.migrate_enqueue(t, idx_, r.dst, true);
    }
    if (r.done) r.done(kernel_.engine().now() - r.requested_at);
    if (current_ == nullptr) pick_next_or_idle();
  }
}

}  // namespace irs::guest
