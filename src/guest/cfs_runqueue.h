// CFS-style per-CPU runqueue: ready tasks ordered by vruntime.
// The current task is NOT in the runqueue (Linux convention) — this is
// load-bearing for the paper's second semantic gap: a task "running" on a
// preempted vCPU is not in any runqueue, so pull-based balancing can never
// take it.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>

#include "src/guest/task.h"
#include "src/sim/time.h"

namespace irs::guest {

class CfsRunqueue {
 public:
  void enqueue(Task& t);
  /// Remove a specific task; returns false if it was not queued.
  bool remove(Task& t);

  /// Task with the smallest vruntime (next to run), or nullptr.
  [[nodiscard]] Task* leftmost() const;
  /// Remove and return the leftmost task, or nullptr.
  Task* pop_leftmost();
  /// Task with the largest vruntime — the coldest candidate, preferred by
  /// load balancing pulls. Returns nullptr if empty.
  [[nodiscard]] Task* hottest_to_steal() const;
  /// A queued task displaced by IRS whose home is `cpu` (nullptr if none) —
  /// the balancer sends these back first (paper §3.3).
  [[nodiscard]] Task* tagged_for(int cpu) const;

  [[nodiscard]] std::size_t nr_ready() const { return by_vruntime_.size(); }
  [[nodiscard]] bool empty() const { return by_vruntime_.empty(); }

  /// Monotonic floor used to normalise sleepers' vruntime on wake-up.
  [[nodiscard]] sim::Duration min_vruntime() const { return min_vruntime_; }
  /// Advance the floor (called as the current task accrues vruntime).
  void advance_min_vruntime(sim::Duration candidate);

 private:
  std::multimap<sim::Duration, Task*> by_vruntime_;
  sim::Duration min_vruntime_ = 0;
};

}  // namespace irs::guest
