// IRS guest half, part 2: the context switcher (paper §3.2, Algorithm 1).
//
// Runs as the UPCALL_SOFTIRQ handler. It makes the guest's view match the
// imminent hypervisor preemption: the current task is descheduled and
// tagged "migrating", the migrator is woken asynchronously to move it to a
// live sibling vCPU, and the hypervisor is acknowledged with SCHEDOP_block
// (runqueue empty — the vCPU should be treated as idle) or SCHEDOP_yield
// (more work queued — stay runnable), preserving Xen's state-dependent
// scheduling policies.
#include "src/guest/guest_cpu.h"
#include "src/guest/guest_kernel.h"

namespace irs::guest {

void GuestCpu::upcall_softirq() {
  if (!vcpu_running_) return;
  Task* t = current_;
  // Safety valve: if no sibling vCPU could possibly run the migrator (all
  // others hypervisor-blocked), descheduling the task would strand it in
  // migration limbo. Decline the activation and let the preemption proceed
  // vanilla-style.
  if (t != nullptr && !kernel_.sibling_may_execute(idx_)) {
    kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestSaRepliedYield);
    kernel_.hypercalls().sched_yield(idx_);
    return;
  }
  // Decline when the migrator has nowhere better to put the task — every
  // sibling preempted (Algorithm 2 falls back to this vCPU) or equally
  // contended: descheduling would only cede this vCPU's share and
  // desynchronise the VM.
  if (t != nullptr && !kernel_.migrator().migration_worthwhile(idx_)) {
    kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestSaRepliedYield);
    kernel_.hypercalls().sched_yield(idx_);
    return;
  }
  if (t != nullptr) {
    stop_exec();
    if (t->spin_waiting != nullptr) kernel_.signal_spin(idx_, false);
    t->set_state(TaskState::kMigrating);
    t->migrating_tag = true;
    t->tag_runtime = 0;
    t->irs_home = idx_;
    current_ = nullptr;
    // Put another runnable task on the vCPU if there is one; it will run
    // when the (now runnable) vCPU is next scheduled.
    if (Task* next = rq_.pop_leftmost()) {
      install(next, /*resume=*/false);
    }
    // Wake the migrator asynchronously (it runs on some live sibling).
    kernel_.migrator().request(*t, idx_);
  } else if (current_ == nullptr && !rq_.empty()) {
    install(rq_.pop_leftmost(), /*resume=*/false);
  }
  // Lane record: install() above traced any replacement task; if the CPU
  // ends up empty the lane goes idle with an "sa-cs" marker so timelines
  // show the context switcher (not the scheduler) vacated it.
  if (current_ == nullptr) trace_lane(-1, "sa-cs");
  // Acknowledge: return control to the hypervisor (Algorithm 1 line 15).
  if (current_ == nullptr && rq_.empty()) {
    kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestSaRepliedBlock);
    kernel_.hypercalls().sched_block(idx_);
  } else {
    kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestSaRepliedYield);
    kernel_.hypercalls().sched_yield(idx_);
  }
}

}  // namespace irs::guest
