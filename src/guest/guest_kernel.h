// The guest kernel for one VM: owns tasks and per-vCPU contexts, implements
// the hypervisor-facing GuestOs interface and the scheduler API used by the
// synchronisation layer, and hosts the IRS guest components (SA receiver /
// context switcher live in GuestCpu; migrator and load balancer here).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/guest/guest_cpu.h"
#include "src/guest/load_balancer.h"
#include "src/guest/migrator.h"
#include "src/guest/sched_api.h"
#include "src/guest/task.h"
#include "src/guest/types.h"
#include "src/hv/guest_os.h"
#include "src/hv/hypercalls.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"

namespace irs::guest {

/// Shard convention for the guest-side obs::Counters: shard 0 is the
/// kernel-global lane, shard cpu+1 is the guest CPU's own lane.
inline std::size_t guest_shard(int cpu) {
  return static_cast<std::size_t>(cpu) + 1;
}

/// Guest-wide counters: a report-time fold of the per-CPU obs::Counters
/// shards (producers increment the sharded registry, never this struct).
struct GuestStats {
  std::uint64_t guest_ctx_switches = 0;
  std::uint64_t wake_migrations = 0;   // wake-up balancing moved a task
  std::uint64_t push_migrations = 0;   // periodic balancer
  std::uint64_t pull_migrations = 0;   // new-idle balancer
  std::uint64_t irs_migrations = 0;    // IRS migrator
  std::uint64_t stop_migrations = 0;   // explicit stop-based migration
  std::uint64_t sa_received = 0;       // VIRQ_SA_UPCALL delivered
  std::uint64_t sa_replied_block = 0;  // context switcher -> SCHEDOP_block
  std::uint64_t sa_replied_yield = 0;  // context switcher -> SCHEDOP_yield
  std::uint64_t tag_preemptions = 0;   // Fig. 4 fix: waker preempted tagged
  std::uint64_t irs_pull_migrations = 0;  // §6 extension: pulled a "running"
                                          // task off a preempted vCPU
};

class GuestKernel final : public hv::GuestOs, public SchedApi {
 public:
  /// `spin_signal(cpu, spinning)` reports PAUSE-loop activity to the host
  /// (consumed by the PLE monitor); `lock_signal(cpu, holds)` reports
  /// paravirtual lock hints (delay-preemption baseline). Either may be
  /// empty.
  GuestKernel(sim::Engine& eng, GuestConfig cfg, int n_cpus,
              hv::Hypercalls& hc,
              std::function<void(int, bool)> spin_signal = {},
              sim::Trace* trace = nullptr,
              std::function<void(int, bool)> lock_signal = {});
  ~GuestKernel() override;

  // --- construction-time API ---
  /// Create a task; it starts Ready on `initial_cpu` (default round-robin)
  /// once start() is called.
  Task& create_task(std::string name, Behavior& behavior,
                    int initial_cpu = kNoCpu);

  /// Enqueue all created tasks and kick their vCPUs. Call once, after the
  /// host has been started.
  void start();

  // --- hv::GuestOs ---
  void vcpu_started(int vcpu) override;
  void vcpu_stopped(int vcpu, hv::StopReason reason) override;
  void deliver_virq(int vcpu, hv::Virq irq) override;
  [[nodiscard]] bool sa_registered() const override {
    return cfg_.irs_enabled;
  }
  [[nodiscard]] hv::PreemptClass classify_preemption(int vcpu) const override;

  // --- SchedApi (used by sync primitives) ---
  [[nodiscard]] sim::Time now() const override;
  void wake_task(Task& t) override;
  [[nodiscard]] bool task_executing(const Task& t) const override;
  void spin_granted(Task& t) override;

  // --- scheduling services used by components ---
  /// Place a ready task on `cpu`'s queue (normalises vruntime, kicks a
  /// blocked vCPU, runs preemption checks).
  void enqueue_task(Task& t, int cpu, bool wake_preempt);
  /// Move a runnable task between CPUs preserving its relative CFS
  /// position: vruntime is rebased from the source queue's min_vruntime to
  /// the destination's (what Linux's migrate_task_rq_fair does).
  void migrate_enqueue(Task& t, int from, int to, bool wake_preempt);
  /// Wake-up CPU selection incl. the IRS wake-up fix (paper Fig. 4).
  [[nodiscard]] int select_task_rq(Task& t);
  /// Account a cross-CPU migration: stats, cache debt, tag bookkeeping.
  /// `ctr` names the migration-kind counter to bump (kGuest*Migrations).
  void note_migration(Task& t, int from, int to, obs::Cnt ctr);
  /// Kick the vCPU behind `cpu` if the hypervisor reports it blocked.
  void kick_if_blocked(int cpu);
  /// True if any *other* vCPU is not hypervisor-blocked — i.e. someone will
  /// eventually execute and can run the migrator. Guards the context
  /// switcher against stranding a task in migration limbo.
  [[nodiscard]] bool sibling_may_execute(int except_cpu) const;
  /// RNG used for modelled overhead jitter (SA handler cost etc.).
  [[nodiscard]] sim::Rng& cost_rng() { return cost_rng_; }
  /// Reseed all kernel-internal randomness. Call before workloads are
  /// instantiated so runs with different seeds diverge.
  void seed(std::uint64_t s) {
    task_seed_rng_.reseed(s);
    cost_rng_.reseed(s ^ 0x5EEDC0DEULL);
  }

  // --- accessors ---
  [[nodiscard]] int n_cpus() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] GuestCpu& cpu(int i) { return *cpus_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const GuestCpu& cpu(int i) const {
    return *cpus_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const GuestConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] hv::Hypercalls& hypercalls() { return hc_; }
  [[nodiscard]] Migrator& migrator() { return *migrator_; }
  [[nodiscard]] LoadBalancer& balancer() { return *balancer_; }
  /// Snapshot of the guest counters, folded across shards on demand.
  [[nodiscard]] const GuestStats& stats() const;
  /// The kernel's sharded counter registry (shard 0 global, shard cpu+1
  /// per guest CPU — see guest_shard()).
  [[nodiscard]] obs::Counters& counters() { return counters_; }
  [[nodiscard]] const obs::Counters& counters() const { return counters_; }
  /// The kernel's trace staging buffer (records are dropped when the host
  /// trace is absent or disabled).
  [[nodiscard]] obs::TraceBuffer& trace_buf() { return tbuf_; }
  /// Guest trace records identify CPUs by *global* vCPU id so one trace can
  /// hold several VMs. The base is the global id of this VM's vCPU 0
  /// (host ids are contiguous per VM); standalone kernels leave it at 0.
  void set_trace_vcpu_base(int base) { trace_vcpu_base_ = base; }
  [[nodiscard]] std::int32_t trace_gcpu(int cpu) const {
    return static_cast<std::int32_t>(trace_vcpu_base_ + cpu);
  }
  /// Guest-visible runnable load summed over CPUs (sampler gauge).
  [[nodiscard]] std::size_t runnable_tasks() const;
  [[nodiscard]] std::size_t n_tasks() const { return tasks_.size(); }
  [[nodiscard]] Task& task(std::size_t i) { return *tasks_.at(i); }
  [[nodiscard]] bool any_cpu_executing() const;

  /// How much cache-locality debt a migration of `t` costs (scaled by the
  /// workload's memory intensity, set via set_memory_intensity()).
  [[nodiscard]] sim::Duration migration_penalty() const;
  void set_memory_intensity(double mi) { memory_intensity_ = mi; }

  /// Called when any task finishes (workload completion tracking).
  void set_on_task_finished(std::function<void(Task&)> cb) {
    on_finished_ = std::move(cb);
  }
  void notify_task_finished(Task& t);

  void signal_spin(int cpu, bool spinning);
  void signal_lock_hint(int cpu, bool holds_lock);

 private:
  sim::Engine& eng_;
  GuestConfig cfg_;
  hv::Hypercalls& hc_;
  std::function<void(int, bool)> spin_signal_;
  std::function<void(int, bool)> lock_signal_;
  sim::Trace* trace_;
  obs::Counters counters_;
  obs::TraceBuffer tbuf_{trace_};  // after trace_: hook deregistration order
  std::vector<std::unique_ptr<GuestCpu>> cpus_;
  std::deque<std::unique_ptr<Task>> tasks_;
  std::unique_ptr<Migrator> migrator_;
  std::unique_ptr<LoadBalancer> balancer_;
  mutable GuestStats stats_cache_;  // fold target for stats()
  std::function<void(Task&)> on_finished_;
  double memory_intensity_ = 1.0;
  sim::Rng task_seed_rng_{0xB0BACAFE};
  sim::Rng cost_rng_{0xC05CC05C};
  int trace_vcpu_base_ = 0;
  bool started_ = false;
};

}  // namespace irs::guest
