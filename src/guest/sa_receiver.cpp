// IRS guest half, part 1: the SA receiver (paper §3.1, §4.2).
//
// The receiver is the interrupt handler of VIRQ_SA_UPCALL. Interrupt
// handlers must stay small, so it only raises UPCALL_SOFTIRQ; the heavy
// lifting (context switch + migrator wake-up + hypervisor acknowledgement)
// happens in the softirq bottom half — see context_switcher.cpp. The
// modelled handler cost is the paper's measured 20–26 us, jittered.
#include "src/guest/guest_cpu.h"
#include "src/guest/guest_kernel.h"

namespace irs::guest {

void GuestCpu::on_sa_upcall() {
  if (!vcpu_running_) return;  // raced with a forced preemption
  kernel_.counters().inc(guest_shard(idx_), obs::Cnt::kGuestSaReceived);
  softirq_.raise(SoftirqNr::kUpcall);
  const sim::Duration cost =
      kernel_.cost_rng().jittered(kernel_.config().sa_handler_cost, 0.15);
  sa_bh_timer_ = kernel_.engine().schedule(
      cost,
      [this]() {
        // UPCALL_SOFTIRQ has lower priority than TIMER_SOFTIRQ: a pending
        // timer tick is processed first (run_pending drains in order), so
        // a task the timer wanted to switch out is not migrated by IRS.
        if (vcpu_running_) softirq_.run_pending(SoftirqNr::kUpcall);
      },
      "guest.sa_bh");
}

}  // namespace irs::guest
