#include "src/guest/migrator.h"

#include <cassert>
#include <limits>

#include "src/guest/guest_kernel.h"

namespace irs::guest {

Migrator::Migrator(sim::Engine& eng, GuestKernel& kernel)
    : eng_(eng), kernel_(kernel) {}

void Migrator::request(Task& t, int src_cpu) {
  assert(t.state() == TaskState::kMigrating);
  ++stats_.requests;
  queue_.push_back(Req{&t, src_cpu});
  pump();
}

void Migrator::pump() {
  if (busy_ || queue_.empty()) return;
  // The migrator is a kernel thread: it needs some vCPU of this VM to be
  // executing (though not the source one — paper §4.2).
  if (!kernel_.any_cpu_executing()) return;
  busy_ = true;
  eng_.schedule(kernel_.config().migrator_cost, [this]() { execute(); },
                "guest.migrator");
}

int Migrator::pick_target(int src_cpu) const {
  const MigratorPolicy policy = kernel_.config().migrator_policy;
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  int first_running = -1;
  for (int w = 0; w < kernel_.n_cpus(); ++w) {
    if (w == src_cpu) continue;
    // Algorithm 2 line 7: "call down to the hypervisor to check the actual
    // vCPU state" — guest-visible "online" is not enough.
    const hv::RunstateInfo rs =
        const_cast<GuestKernel&>(kernel_).hypercalls().vcpu_runstate(w);
    const GuestCpu& c = kernel_.cpu(w);
    const bool hv_idle =
        rs.state == hv::VcpuState::kBlocked && c.guest_idle();
    if (policy == MigratorPolicy::kIdleThenLeastLoaded && hv_idle) {
      return w;  // Algorithm 2 lines 8-10: idle sibling ends the search
    }
    if (rs.state == hv::VcpuState::kRunning) {
      if (first_running < 0) first_running = w;
      const double s = c.load_score();
      if (s < best_score) {
        best_score = s;
        best = w;
      }
    } else if (policy == MigratorPolicy::kLeastLoadedOnly && hv_idle) {
      const double s = c.load_score();
      if (s < best_score) {
        best_score = s;
        best = w;
      }
    }
    // Runnable (preempted) siblings are never eligible: the task would
    // just wait behind another descheduled vCPU.
  }
  if (policy == MigratorPolicy::kFirstRunning) {
    return first_running >= 0 ? first_running : src_cpu;
  }
  return best >= 0 ? best : src_cpu;
}

bool Migrator::migration_worthwhile(int src_cpu) const {
  const int target = pick_target(src_cpu);
  if (target == src_cpu) return false;
  const hv::RunstateInfo rs =
      const_cast<GuestKernel&>(kernel_).hypercalls().vcpu_runstate(target);
  if (rs.state == hv::VcpuState::kBlocked) return true;  // idle sibling
  return kernel_.cpu(target).load_score() + 0.5 <=
         kernel_.cpu(src_cpu).load_score();
}

void Migrator::execute() {
  busy_ = false;
  if (queue_.empty()) return;
  if (!kernel_.any_cpu_executing()) return;  // re-pumped on next vcpu start
  Req r = queue_.front();
  queue_.pop_front();
  Task& t = *r.task;
  assert(t.state() == TaskState::kMigrating);
  const int target = pick_target(r.src);
  if (target == r.src) {
    ++stats_.fallback_src;
  } else if (const_cast<GuestKernel&>(kernel_)
                 .hypercalls()
                 .vcpu_runstate(target)
                 .state == hv::VcpuState::kBlocked) {
    ++stats_.to_idle;
  } else {
    ++stats_.to_running;
  }
  t.set_state(TaskState::kReady);
  if (target != r.src) {
    kernel_.note_migration(t, r.src, target, obs::Cnt::kGuestIrsMigrations);
  }
  // __migrate_task: enqueue on the destination, kicking its vCPU if idle.
  // Wake-style placement (no min_vruntime rebase): the descheduled task
  // kept its low absolute vruntime while its vCPU was starved, so CFS
  // prioritises it on the destination — the paper's §5.2 observation that
  // "the migrated task likely has smaller virtual runtime and would be
  // prioritized by the CFS".
  kernel_.enqueue_task(t, target, /*wake_preempt=*/true);
  pump();
}

}  // namespace irs::guest
