// Per-vCPU guest scheduling context: the CFS runqueue, the current task,
// the action interpreter that advances tasks through their behaviours, the
// guest timer tick, and the IRS context switcher (softirq bottom half).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/guest/cfs_runqueue.h"
#include "src/guest/softirq.h"
#include "src/guest/steal_clock.h"
#include "src/guest/task.h"
#include "src/guest/types.h"
#include "src/hv/types.h"
#include "src/sim/engine.h"

namespace irs::guest {

class GuestKernel;

/// Pending Fig-1b-style stop migration: move `victim` to `dst` once this
/// CPU actually executes (requires the backing vCPU to hold a pCPU —
/// which is exactly why migration latency explodes under contention).
struct StopRequest {
  Task* victim = nullptr;
  int dst = kNoCpu;
  sim::Time requested_at = 0;
  std::function<void(sim::Duration)> done;
};

class GuestCpu {
 public:
  GuestCpu(GuestKernel& kernel, int idx);
  GuestCpu(const GuestCpu&) = delete;
  GuestCpu& operator=(const GuestCpu&) = delete;
  GuestCpu(GuestCpu&&) = delete;

  [[nodiscard]] int idx() const { return idx_; }
  [[nodiscard]] Task* current() const { return current_; }
  [[nodiscard]] CfsRunqueue& rq() { return rq_; }
  [[nodiscard]] const CfsRunqueue& rq() const { return rq_; }

  /// Guest-visible idleness: no current task and empty runqueue. Note a
  /// *preempted* vCPU with an empty queue also reads as idle — the guest
  /// cannot tell (semantic gap exploited in Fig. 4).
  [[nodiscard]] bool guest_idle() const {
    return current_ == nullptr && rq_.empty();
  }

  /// The backing vCPU currently holds a pCPU and guest code can run.
  [[nodiscard]] bool vcpu_running() const { return vcpu_running_; }

  /// Guest-visible runnable load: ready tasks plus the current one.
  [[nodiscard]] std::size_t nr_running() const {
    return rq_.nr_ready() + (current_ != nullptr ? 1 : 0);
  }

  /// rt_avg-style score: runnable load plus hypervisor contention. Used by
  /// the IRS migrator and the load balancer (paper §3.3).
  [[nodiscard]] double load_score() const;
  [[nodiscard]] double steal_frac() const { return steal_.steal_frac(); }

  // --- hypervisor upcalls (fanned out by GuestKernel) ---
  void on_vcpu_start();
  void on_vcpu_stop(hv::StopReason reason);
  void on_sa_upcall();  // VIRQ_SA_UPCALL handler (SA receiver top half)

  // --- task lifecycle ---
  /// Add a ready task to this CPU's queue and kick / preempt as
  /// appropriate. `wake_preempt` enables the wake-up preemption check
  /// against the current task. `normalize_vruntime` applies the sleeper
  /// wake-up rule (vruntime floored near min_vruntime); migrations must
  /// pass false and pre-adjust vruntime relative to the two queues instead
  /// (GuestKernel::migrate_enqueue), or the task would be pushed to the
  /// back of the new queue forever.
  void enqueue_ready(Task& t, bool wake_preempt,
                     bool normalize_vruntime = true);

  /// A spin lock/barrier granted the current (spinning) task; resume it.
  void spin_acquired(Task& t);

  /// Voluntarily let the scheduler reconsider (used in tests).
  void request_resched(bool force);

  // --- stop-based migration (Fig. 1b measurement) ---
  void request_stop_migration(Task& victim, int dst,
                              std::function<void(sim::Duration)> done);

  /// Arm the idle housekeeping timer (used at boot for CPUs that start
  /// with nothing to run; otherwise armed automatically when idling).
  void arm_idle_housekeeping();

  /// IRS pull extension (paper §6): detach and return the current task if
  /// this CPU's vCPU is hypervisor-preempted; nullptr otherwise. The
  /// caller re-enqueues the task elsewhere.
  Task* yank_current_if_preempted();

  [[nodiscard]] Softirq& softirq() { return softirq_; }

 private:
  friend class GuestKernel;

  // Execution clock: [begin_exec, stop_exec] brackets intervals where the
  // current task genuinely consumes CPU (compute or spin).
  void begin_exec();
  void stop_exec();
  void resume_current();
  void on_op_complete();

  /// Drive the current task's behaviour until it computes, blocks, spins,
  /// finishes, or is preempted.
  void interpret();

  /// Returns true if a pending resched switched tasks (caller must stop).
  bool maybe_resched();

  void enter_spin(sync::SpinWaitable& w);
  void block_current(TaskState st);
  void finish_current();
  /// Make `next` current (must already be off the runqueue).
  void install(Task* next, bool resume);
  /// current_ == nullptr: pick from the queue or go idle (SCHEDOP_block).
  void pick_next_or_idle();

  /// Emit a kGuestSwitch lane record when the on-CPU task changes. `a` is
  /// the global vCPU id, `b` the incoming task (-1 = idle); a span in the
  /// guest timeline runs from one lane record to the next on the same vCPU.
  /// Dedups: re-picking the same task (or re-confirming idle) is silent.
  void trace_lane(std::int32_t task_id, const char* note = "");

  void on_tick();           // timer IRQ: raises TIMER softirq
  void timer_softirq();     // tick bottom half: clocks, preemption, balance
  void upcall_softirq();    // IRS context switcher (paper §3.2)
  void arm_tick();

  void run_stop_requests();

  /// Per-task CFS slice given current queue depth.
  [[nodiscard]] sim::Duration cfs_slice() const;

  /// Send the paravirtual lock hint if it changed (delay-preempt baseline).
  void update_lock_hint();

  GuestKernel& kernel_;
  int idx_;
  CfsRunqueue rq_;
  Task* current_ = nullptr;
  std::int32_t lane_task_ = -1;  // last task id traced on this lane

  bool vcpu_running_ = false;
  bool exec_active_ = false;
  sim::Time exec_start_ = 0;
  sim::Duration pending_overhead_ = 0;  // context-switch cost to charge

  bool need_resched_ = false;
  bool resched_forced_ = false;  // IRS tagged-task preemption bypasses the
                                 // vruntime check
  bool lock_hint_ = false;       // last paravirtual lock hint sent

  sim::EventHandle op_done_;
  sim::EventHandle tick_timer_;
  sim::EventHandle sa_bh_timer_;   // delayed UPCALL softirq processing
  sim::EventHandle resched_evt_;
  sim::EventHandle idle_poll_;     // housekeeping wake for blocked vCPUs

  sim::Time next_balance_ = 0;

  Softirq softirq_;
  StealClock steal_;

  std::vector<StopRequest> stop_reqs_;
};

}  // namespace irs::guest
