#include "src/guest/softirq.h"

namespace irs::guest {

void Softirq::run_pending(SoftirqNr max_nr) {
  for (std::size_t nr = 0; nr <= static_cast<std::size_t>(max_nr); ++nr) {
    if (!pending_[nr]) continue;
    pending_[nr] = false;
    if (handlers_[nr]) handlers_[nr]();
  }
}

}  // namespace irs::guest
