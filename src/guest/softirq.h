// Minimal per-CPU softirq layer (paper §4.2).
//
// The IRS context switcher runs as the handler of a new UPCALL_SOFTIRQ,
// deliberately prioritised BELOW TIMER_SOFTIRQ so that a simultaneous timer
// tick — which may itself deschedule the current task — is handled first,
// preventing IRS from migrating a task the timer was about to switch out.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

namespace irs::guest {

enum class SoftirqNr : std::uint8_t {
  kTimer = 0,   // TIMER_SOFTIRQ: highest priority here
  kUpcall = 1,  // UPCALL_SOFTIRQ: the IRS context switcher
};
inline constexpr int kNumSoftirqs = 2;

class Softirq {
 public:
  using Handler = std::function<void()>;

  void set_handler(SoftirqNr nr, Handler h) {
    handlers_[static_cast<std::size_t>(nr)] = std::move(h);
  }

  /// Mark a softirq pending (idempotent).
  void raise(SoftirqNr nr) { pending_[static_cast<std::size_t>(nr)] = true; }

  [[nodiscard]] bool pending(SoftirqNr nr) const {
    return pending_[static_cast<std::size_t>(nr)];
  }

  /// Run pending softirqs with number <= max_nr, in priority order. Running
  /// kUpcall therefore first drains a pending kTimer.
  void run_pending(SoftirqNr max_nr);

 private:
  std::array<bool, kNumSoftirqs> pending_{};
  std::array<Handler, kNumSoftirqs> handlers_{};
};

}  // namespace irs::guest
