#include "src/guest/guest_kernel.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace irs::guest {

GuestKernel::GuestKernel(sim::Engine& eng, GuestConfig cfg, int n_cpus,
                         hv::Hypercalls& hc,
                         std::function<void(int, bool)> spin_signal,
                         sim::Trace* trace,
                         std::function<void(int, bool)> lock_signal)
    : eng_(eng),
      cfg_(cfg),
      hc_(hc),
      spin_signal_(std::move(spin_signal)),
      lock_signal_(std::move(lock_signal)),
      trace_(trace),
      counters_(static_cast<std::size_t>(n_cpus) + 1) {
  assert(n_cpus > 0);
  cpus_.reserve(static_cast<std::size_t>(n_cpus));
  for (int i = 0; i < n_cpus; ++i) {
    cpus_.push_back(std::make_unique<GuestCpu>(*this, i));
  }
  migrator_ = std::make_unique<Migrator>(eng_, *this);
  balancer_ = std::make_unique<LoadBalancer>(*this);
}

GuestKernel::~GuestKernel() = default;

const GuestStats& GuestKernel::stats() const {
  stats_cache_.guest_ctx_switches =
      counters_.fold_u(obs::Cnt::kGuestCtxSwitches);
  stats_cache_.wake_migrations =
      counters_.fold_u(obs::Cnt::kGuestWakeMigrations);
  stats_cache_.push_migrations =
      counters_.fold_u(obs::Cnt::kGuestPushMigrations);
  stats_cache_.pull_migrations =
      counters_.fold_u(obs::Cnt::kGuestPullMigrations);
  stats_cache_.irs_migrations = counters_.fold_u(obs::Cnt::kGuestIrsMigrations);
  stats_cache_.stop_migrations =
      counters_.fold_u(obs::Cnt::kGuestStopMigrations);
  stats_cache_.sa_received = counters_.fold_u(obs::Cnt::kGuestSaReceived);
  stats_cache_.sa_replied_block =
      counters_.fold_u(obs::Cnt::kGuestSaRepliedBlock);
  stats_cache_.sa_replied_yield =
      counters_.fold_u(obs::Cnt::kGuestSaRepliedYield);
  stats_cache_.tag_preemptions =
      counters_.fold_u(obs::Cnt::kGuestTagPreemptions);
  stats_cache_.irs_pull_migrations =
      counters_.fold_u(obs::Cnt::kGuestIrsPullMigrations);
  return stats_cache_;
}

Task& GuestKernel::create_task(std::string name, Behavior& behavior,
                               int initial_cpu) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::make_unique<Task>(id, std::move(name), &behavior,
                                          task_seed_rng_.fork()));
  Task& t = *tasks_.back();
  t.set_cpu(initial_cpu != kNoCpu ? initial_cpu
                                  : id % static_cast<TaskId>(n_cpus()));
  return t;
}

void GuestKernel::start() {
  assert(!started_);
  started_ = true;
  for (auto& tp : tasks_) {
    Task& t = *tp;
    if (t.state() != TaskState::kReady || t.cpu() == kNoCpu) continue;
    // Boot enqueue counts as a wake for the timeline/attribution: the task
    // is runnable from here on even if its vCPU waits a while for a pCPU.
    tbuf_.record(eng_.now(), sim::TraceKind::kGuestWake, t.id(),
                 trace_gcpu(t.cpu()));
    enqueue_task(t, t.cpu(), /*wake_preempt=*/false);
  }
  // CPUs that boot with nothing to run still wake periodically for idle
  // housekeeping (they may pull work that appears later).
  for (auto& c : cpus_) {
    if (c->guest_idle() && !c->vcpu_running()) c->arm_idle_housekeeping();
  }
}

// ---------------------------------------------------------------------------
// hv::GuestOs
// ---------------------------------------------------------------------------

void GuestKernel::vcpu_started(int vcpu) { cpu(vcpu).on_vcpu_start(); }

void GuestKernel::vcpu_stopped(int vcpu, hv::StopReason reason) {
  cpu(vcpu).on_vcpu_stop(reason);
}

void GuestKernel::deliver_virq(int vcpu, hv::Virq irq) {
  if (irq == hv::Virq::kSaUpcall) cpu(vcpu).on_sa_upcall();
}

hv::PreemptClass GuestKernel::classify_preemption(int vcpu) const {
  hv::PreemptClass pc;
  const Task* t = cpu(vcpu).current();
  if (t == nullptr) return pc;
  pc.holds_lock = t->locks_held > 0;
  pc.waits_lock = t->spin_waiting != nullptr;
  pc.task = t->id();
  // LWP names the primitive being spun on; LHP the held lock. A task can be
  // both (spinning while holding another lock) — the wait wins: that is the
  // dependency the preemption actually froze.
  if (pc.waits_lock) {
    pc.lock_name = t->spin_waiting->wait_name();
  } else if (pc.holds_lock) {
    pc.lock_name = t->held_lock_name;
  }
  return pc;
}

std::size_t GuestKernel::runnable_tasks() const {
  std::size_t n = 0;
  for (const auto& c : cpus_) n += c->nr_running();
  return n;
}

// ---------------------------------------------------------------------------
// SchedApi
// ---------------------------------------------------------------------------

sim::Time GuestKernel::now() const { return eng_.now(); }

bool GuestKernel::task_executing(const Task& t) const {
  if (t.cpu() == kNoCpu) return false;
  const GuestCpu& c = cpu(t.cpu());
  return c.current() == &t && c.vcpu_running();
}

void GuestKernel::spin_granted(Task& t) { cpu(t.cpu()).spin_acquired(t); }

void GuestKernel::wake_task(Task& t) {
  if (t.state() != TaskState::kBlocked && t.state() != TaskState::kSleeping) {
    return;  // spurious wake (e.g. already woken through another path)
  }
  ++t.stats.wakeups;
  t.sleep_timer.cancel();
  const int from = t.cpu();
  const int target = select_task_rq(t);
  if (target != from) {
    note_migration(t, from, target, obs::Cnt::kGuestWakeMigrations);
  }
  tbuf_.record(eng_.now(), sim::TraceKind::kGuestWake, t.id(),
               trace_gcpu(target));
  cpu(target).enqueue_ready(t, /*wake_preempt=*/true);
}

// ---------------------------------------------------------------------------
// Scheduling services
// ---------------------------------------------------------------------------

int GuestKernel::select_task_rq(Task& t) {
  const int prev = t.cpu() == kNoCpu ? 0 : t.cpu();
  const GuestCpu& pc = cpu(prev);
  // 1) Previous CPU if (guest-)idle — note a preempted vCPU with an empty
  //    queue also looks idle; the guest cannot tell the difference.
  if (pc.guest_idle()) return prev;
  // 2) IRS wake-up fix (Fig. 4): if the previous CPU currently runs a task
  //    that was force-migrated there by IRS, wake in place and preempt it
  //    rather than ping-ponging away.
  if ((cfg_.irs_enabled || cfg_.irs_pull) && cfg_.irs_wakeup_fix &&
      pc.current() != nullptr && pc.current()->migrating_tag) {
    return prev;
  }
  // 3) select_idle_sibling: first guest-idle CPU, scanning from prev+1.
  for (int i = 1; i < n_cpus(); ++i) {
    const int c = (prev + i) % n_cpus();
    if (cpu(c).guest_idle()) return c;
  }
  // 4) No idle CPU: pick the least-loaded by the rt_avg-style score (steal
  //    time included), preferring prev on ties.
  int best = prev;
  double best_score = pc.load_score();
  for (int c = 0; c < n_cpus(); ++c) {
    if (c == prev) continue;
    const double s = cpu(c).load_score();
    if (s + 1e-9 < best_score) {
      best = c;
      best_score = s;
    }
  }
  return best;
}

void GuestKernel::enqueue_task(Task& t, int target, bool wake_preempt) {
  cpu(target).enqueue_ready(t, wake_preempt);
}

void GuestKernel::migrate_enqueue(Task& t, int from, int to,
                                  bool wake_preempt) {
  if (from != to && from != kNoCpu) {
    t.vruntime = t.vruntime - cpu(from).rq().min_vruntime() +
                 cpu(to).rq().min_vruntime();
    if (t.vruntime < 0) t.vruntime = 0;
  }
  cpu(to).enqueue_ready(t, wake_preempt, /*normalize_vruntime=*/false);
}

void GuestKernel::note_migration(Task& t, int from, int to, obs::Cnt ctr) {
  if (from == to) return;
  ++t.stats.migrations;
  counters_.inc(guest_shard(to), ctr);
  t.cache_debt += migration_penalty();
  if (ctr == obs::Cnt::kGuestIrsMigrations) {
    ++t.stats.irs_migrations;  // tag stays: the wake-up fix needs it
  } else {
    t.migrating_tag = false;  // a regular balancer move retires the tag
  }
  // Carry the charged cache penalty (ns) in the note so forensics can
  // attribute the post-migration transient without re-deriving the model.
  char penalty[sim::TraceNote::kMax + 1];
  std::snprintf(penalty, sizeof penalty, "%lld",
                static_cast<long long>(migration_penalty()));
  tbuf_.record(eng_.now(), sim::TraceKind::kMigrate, t.id(), trace_gcpu(to),
               penalty, trace_gcpu(from));
}

void GuestKernel::kick_if_blocked(int c) {
  if (hc_.vcpu_runstate(c).state == hv::VcpuState::kBlocked) {
    hc_.vcpu_kick(c);
  }
}

bool GuestKernel::sibling_may_execute(int except_cpu) const {
  if (n_cpus() <= 1) return false;  // nowhere to migrate to
  // Blocked siblings are revivable: the migrator's enqueue kicks them, and
  // idle housekeeping wakes them periodically. Only with housekeeping off
  // must we insist on a sibling that is already runnable/running, or a
  // migrated task could be stranded in limbo.
  if (cfg_.idle_poll_period > 0) return true;
  for (int c = 0; c < n_cpus(); ++c) {
    if (c == except_cpu) continue;
    if (hc_.vcpu_runstate(c).state != hv::VcpuState::kBlocked) return true;
  }
  return false;
}

bool GuestKernel::any_cpu_executing() const {
  for (const auto& c : cpus_) {
    if (c->vcpu_running()) return true;
  }
  return false;
}

sim::Duration GuestKernel::migration_penalty() const {
  const double p =
      static_cast<double>(cfg_.migration_cache_penalty) * memory_intensity_;
  return static_cast<sim::Duration>(p);
}

void GuestKernel::notify_task_finished(Task& t) {
  if (on_finished_) on_finished_(t);
}

void GuestKernel::signal_spin(int c, bool spinning) {
  if (spin_signal_) spin_signal_(c, spinning);
}

void GuestKernel::signal_lock_hint(int c, bool holds_lock) {
  if (cfg_.paravirt_lock_hints && lock_signal_) lock_signal_(c, holds_lock);
}

}  // namespace irs::guest
