#include "src/guest/task.h"

namespace irs::guest {

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::kRunning: return "running";
    case TaskState::kReady: return "ready";
    case TaskState::kSpinning: return "spinning";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kSleeping: return "sleeping";
    case TaskState::kMigrating: return "migrating";
    case TaskState::kFinished: return "finished";
  }
  return "?";
}

}  // namespace irs::guest
