// The instruction set tasks execute, and the Behavior interface workloads
// implement.
//
// A task is a state machine: whenever the guest scheduler gives it the CPU
// and its previous action has completed, it asks its Behavior for the next
// Action. Compute consumes simulated CPU time; synchronisation actions act
// on primitives in src/sync and may block or spin the task.
#pragma once

#include <cstdint>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace irs::sync {
class Mutex;
class SpinLock;
class Barrier;
class Pipe;
class CondVar;
}  // namespace irs::sync

namespace irs::guest {

class Task;

enum class ActionKind : std::uint8_t {
  kCompute,     // burn `dur` of CPU
  kLock,        // acquire blocking mutex
  kUnlock,      // release blocking mutex
  kSpinLock,    // acquire ticket/opportunistic spin lock (busy-waits)
  kSpinUnlock,  // release spin lock
  kBarrier,     // arrive at a (blocking or spinning) barrier
  kPipePush,    // bounded-queue push; blocks when full
  kPipePop,     // bounded-queue pop; blocks when empty
  kCondWait,    // release mutex + wait; reacquires mutex on wake
  kCondSignal,
  kCondBroadcast,
  kSleep,       // timed sleep (off-CPU)
  kYield,       // give up the CPU voluntarily
  kFinish,      // task is done
};

struct Action {
  ActionKind kind = ActionKind::kFinish;
  sim::Duration dur = 0;      // kCompute / kSleep
  sync::Mutex* mtx = nullptr;
  sync::SpinLock* sl = nullptr;
  sync::Barrier* bar = nullptr;
  sync::Pipe* pp = nullptr;
  sync::CondVar* cv = nullptr;

  // Named constructors keep workload code readable.
  static Action compute(sim::Duration d) {
    return {.kind = ActionKind::kCompute, .dur = d};
  }
  static Action lock(sync::Mutex& m) {
    return {.kind = ActionKind::kLock, .mtx = &m};
  }
  static Action unlock(sync::Mutex& m) {
    return {.kind = ActionKind::kUnlock, .mtx = &m};
  }
  static Action spin_lock(sync::SpinLock& s) {
    return {.kind = ActionKind::kSpinLock, .sl = &s};
  }
  static Action spin_unlock(sync::SpinLock& s) {
    return {.kind = ActionKind::kSpinUnlock, .sl = &s};
  }
  static Action barrier(sync::Barrier& b) {
    return {.kind = ActionKind::kBarrier, .bar = &b};
  }
  static Action pipe_push(sync::Pipe& p) {
    return {.kind = ActionKind::kPipePush, .pp = &p};
  }
  static Action pipe_pop(sync::Pipe& p) {
    return {.kind = ActionKind::kPipePop, .pp = &p};
  }
  static Action cond_wait(sync::CondVar& c, sync::Mutex& m) {
    return {.kind = ActionKind::kCondWait, .mtx = &m, .cv = &c};
  }
  static Action cond_signal(sync::CondVar& c) {
    return {.kind = ActionKind::kCondSignal, .cv = &c};
  }
  static Action cond_broadcast(sync::CondVar& c) {
    return {.kind = ActionKind::kCondBroadcast, .cv = &c};
  }
  static Action sleep(sim::Duration d) {
    return {.kind = ActionKind::kSleep, .dur = d};
  }
  static Action yield() { return {.kind = ActionKind::kYield}; }
  static Action finish() { return {.kind = ActionKind::kFinish}; }
};

/// Implemented by workload models (src/wl). One Behavior instance per task.
class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Produce the task's next action. Called when the previous action has
  /// completed and the task holds a CPU. `now` is the simulated time.
  virtual Action next(Task& task, sim::Time now, sim::Rng& rng) = 0;
};

}  // namespace irs::guest
