#include "src/guest/cfs_runqueue.h"

#include <algorithm>

namespace irs::guest {

void CfsRunqueue::enqueue(Task& t) {
  by_vruntime_.emplace(t.vruntime, &t);
  advance_min_vruntime(leftmost()->vruntime);
}

bool CfsRunqueue::remove(Task& t) {
  auto [lo, hi] = by_vruntime_.equal_range(t.vruntime);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == &t) {
      by_vruntime_.erase(it);
      return true;
    }
  }
  // The task's vruntime key may be stale if it changed while queued; fall
  // back to a linear scan (should not happen in practice).
  for (auto it = by_vruntime_.begin(); it != by_vruntime_.end(); ++it) {
    if (it->second == &t) {
      by_vruntime_.erase(it);
      return true;
    }
  }
  return false;
}

Task* CfsRunqueue::leftmost() const {
  return by_vruntime_.empty() ? nullptr : by_vruntime_.begin()->second;
}

Task* CfsRunqueue::pop_leftmost() {
  if (by_vruntime_.empty()) return nullptr;
  Task* t = by_vruntime_.begin()->second;
  by_vruntime_.erase(by_vruntime_.begin());
  return t;
}

Task* CfsRunqueue::hottest_to_steal() const {
  return by_vruntime_.empty() ? nullptr : by_vruntime_.rbegin()->second;
}

Task* CfsRunqueue::tagged_for(int cpu) const {
  for (const auto& [vr, t] : by_vruntime_) {
    if (t->migrating_tag && t->irs_home == cpu) return t;
  }
  return nullptr;
}

void CfsRunqueue::advance_min_vruntime(sim::Duration candidate) {
  min_vruntime_ = std::max(min_vruntime_, candidate);
}

}  // namespace irs::guest
