#include "src/guest/steal_clock.h"

#include <algorithm>
#include <cmath>

namespace irs::guest {

void StealClock::update(const hv::RunstateInfo& rs, sim::Time now) {
  if (!primed_) {
    primed_ = true;
    last_steal_ = rs.time_runnable;
    last_update_ = now;
    return;
  }
  const sim::Duration wall = now - last_update_;
  if (wall <= 0) return;
  const sim::Duration steal = rs.time_runnable - last_steal_;
  last_steal_ = rs.time_runnable;
  last_update_ = now;
  const double inst =
      std::clamp(static_cast<double>(steal) / static_cast<double>(wall), 0.0, 1.0);
  // Time-weighted EWMA: a sample spanning more wall time carries more
  // weight, so the estimate converges to the true steal fraction even
  // though updates only run while the vCPU is scheduled.
  const double w =
      1.0 - std::exp(-static_cast<double>(wall) / static_cast<double>(tau_));
  frac_ = w * inst + (1.0 - w) * frac_;
}

}  // namespace irs::guest
