// Narrow scheduler interface the synchronisation primitives use, so that
// src/sync does not depend on the full guest kernel.
#pragma once

#include "src/guest/task.h"
#include "src/sim/time.h"

namespace irs::guest {

class SchedApi {
 public:
  virtual ~SchedApi() = default;

  /// Current simulated time.
  [[nodiscard]] virtual sim::Time now() const = 0;

  /// Wake a blocked/sleeping task through the regular wake-up path
  /// (including wake-up balancing and preemption checks).
  virtual void wake_task(Task& t) = 0;

  /// True if the task is the current task of a guest CPU whose vCPU holds a
  /// pCPU right now — i.e. the task's spin loop is actually executing.
  [[nodiscard]] virtual bool task_executing(const Task& t) const = 0;

  /// A spin lock has been granted to `t` while it is executing; the task
  /// leaves its spin loop and continues with its next action.
  virtual void spin_granted(Task& t) = 0;
};

}  // namespace irs::guest
