// Vanilla-Linux-style load balancing for the guest (paper §2.3):
//  * periodic (push) balancing from each CPU's timer tick,
//  * new-idle (pull) balancing when a CPU is about to go idle.
//
// Only READY tasks sitting on a runqueue can be moved — a task that is
// "current" on a preempted vCPU is invisible to both paths. That blind spot
// is the second semantic gap IRS closes.
//
// Load is measured rt_avg-style: runnable tasks scaled by the CPU's
// effective capacity after hypervisor steal time, which is how stock Linux
// ends up spreading ab's many threads away from interfered vCPUs (§5.3).
#pragma once

#include <cstdint>

#include "src/guest/types.h"

namespace irs::guest {

class GuestCpu;
class GuestKernel;
class Task;

struct BalancerStats {
  std::uint64_t periodic_calls = 0;
  std::uint64_t newidle_calls = 0;
  std::uint64_t tasks_pushed = 0;  // moved by periodic balancing
  std::uint64_t tasks_pulled = 0;  // moved by new-idle balancing
};

class LoadBalancer {
 public:
  explicit LoadBalancer(GuestKernel& kernel) : kernel_(kernel) {}

  /// Periodic balance on behalf of `me` (runs from its tick). Pulls up to
  /// `max_moves` ready tasks from the busiest CPU if imbalanced.
  void periodic(GuestCpu& me, int max_moves = 4);

  /// `me` is about to go idle: try to pull one ready task. Returns true if
  /// a task was enqueued on `me`.
  bool newidle(GuestCpu& me);

  [[nodiscard]] const BalancerStats& stats() const { return stats_; }

  /// Effective-capacity load metric used for imbalance decisions.
  [[nodiscard]] static double load_metric(const GuestCpu& c);

 private:
  GuestCpu* busiest_other(const GuestCpu& me) const;
  bool move_one(GuestCpu& from, GuestCpu& to, std::uint64_t BalancerStats::*ctr);

  GuestKernel& kernel_;
  BalancerStats stats_;
};

}  // namespace irs::guest
