#include "src/hv/credit_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace irs::hv {

CreditScheduler::CreditScheduler(sim::Engine& eng, const HvConfig& cfg,
                                 std::vector<Pcpu>& pcpus,
                                 std::vector<Vm*>& vms,
                                 obs::Counters& counters,
                                 obs::TraceBuffer& tbuf)
    : eng_(eng),
      cfg_(cfg),
      pcpus_(pcpus),
      vms_(vms),
      counters_(counters),
      tbuf_(tbuf) {}

const SchedStats& CreditScheduler::stats() const {
  stats_cache_.context_switches = counters_.fold_u(obs::Cnt::kHvCtxSwitches);
  stats_cache_.preemptions = counters_.fold_u(obs::Cnt::kHvPreemptions);
  stats_cache_.lhp_events = counters_.fold_u(obs::Cnt::kHvLhp);
  stats_cache_.lwp_events = counters_.fold_u(obs::Cnt::kHvLwp);
  stats_cache_.wakeups = counters_.fold_u(obs::Cnt::kHvWakeups);
  stats_cache_.steals = counters_.fold_u(obs::Cnt::kHvSteals);
  stats_cache_.migrations = counters_.fold_u(obs::Cnt::kHvMigrations);
  return stats_cache_;
}

void CreditScheduler::start() {
  for (auto& p : pcpus_) {
    Pcpu* pp = &p;
    // Stagger nothing: ticks are per-pCPU but deterministic order by id.
    std::function<void()> tick = [this, pp]() { on_tick(*pp); };
    p.tick_timer = eng_.schedule(cfg_.tick_period, tick, "hv.tick");
  }
  eng_.schedule(cfg_.accounting_period, [this]() { on_accounting(); },
                "hv.acct");
}

void CreditScheduler::request_resched(Pcpu& p) {
  if (p.sched_pending) return;
  p.sched_pending = true;
  eng_.schedule(0, [this, pp = &p]() { do_schedule(*pp); }, "hv.sched");
}

PcpuId CreditScheduler::cpu_pick(const Vcpu& v) const {
  // 1) the pCPU it last lived on, if idle.
  const PcpuId home = v.resident();
  if (home != kNoPcpu && v.allowed_on(home) && pcpus_[home].idle() &&
      pcpus_[home].queue_len() == 0) {
    return home;
  }
  // 2) any idle allowed pCPU (lowest id).
  for (const auto& p : pcpus_) {
    if (v.allowed_on(p.id()) && p.idle() && p.queue_len() == 0) return p.id();
  }
  // 3) the allowed pCPU whose *resident vCPUs' summed load averages* are
  //    lowest (queue length as tiebreak). This is utilisation-driven and
  //    VM-sibling-oblivious: blocking-sync vCPUs read deceptively idle, so
  //    several of them "fit" on one pCPU next to a full hog elsewhere —
  //    the CPU-stacking behaviour of §5.6.
  std::vector<double> score(pcpus_.size(), 0.0);
  for (const Vm* vm : vms_) {
    for (const Vcpu* w : vm->vcpus()) {
      if (w == &v || w->resident() == kNoPcpu) continue;
      score[static_cast<std::size_t>(w->resident())] += w->load_avg(eng_.now());
    }
  }
  PcpuId best = kNoPcpu;
  double best_score = std::numeric_limits<double>::max();
  for (const auto& p : pcpus_) {
    if (!v.allowed_on(p.id())) continue;
    const double s = score[static_cast<std::size_t>(p.id())] +
                     0.05 * static_cast<double>(p.queue_len());
    if (s < best_score) {
      best_score = s;
      best = p.id();
    }
  }
  assert(best != kNoPcpu && "vCPU affinity excludes every pCPU");
  return best;
}

void CreditScheduler::wake(Vcpu& v) {
  if (v.state() != VcpuState::kBlocked) return;  // spurious kick
  counters_.inc(cnt_shard(v), obs::Cnt::kHvWakeups);
  v.set_state(VcpuState::kRunnable, eng_.now());
  // credit1 BOOST: a waking vCPU that has not exhausted its credits gets
  // top priority so latency-sensitive guests run promptly.
  if (v.credits() > 0 || v.prio() == CreditPrio::kUnder) {
    v.set_prio(CreditPrio::kBoost);
  }
  const PcpuId target = cpu_pick(v);
  if (target != v.resident() && v.resident() != kNoPcpu) {
    counters_.inc(cnt_shard(v), obs::Cnt::kHvMigrations);
  }
  Pcpu& p = pcpus_[target];
  p.enqueue(&v);
  tbuf_.record(eng_.now(), sim::TraceKind::kHvWake, v.id(), target);
  // Tickle: preempt the current occupant if we beat its priority.
  if (p.idle() || (p.current() && prio_better(v, *p.current()))) {
    request_resched(p);
  }
}

void CreditScheduler::block(Vcpu& v) {
  assert(v.state() == VcpuState::kRunning);
  Pcpu& p = pcpus_[v.pcpu()];
  assert(p.current() == &v);
  // A block acknowledges any outstanding SA (Algorithm 1 line 15).
  if (v.sa_pending()) {
    v.set_sa_pending(false);
    v.sa_cap_timer.cancel();
    if (hook_ != nullptr) hook_->note_ack(v);
  }
  notify_stopped(v, StopReason::kBlocked);
  v.set_state(VcpuState::kBlocked, eng_.now());
  v.set_pcpu(kNoPcpu);
  p.set_current(nullptr);
  p.slice_timer.cancel();
  tbuf_.record(eng_.now(), sim::TraceKind::kHvBlock, v.id(), p.id());
  request_resched(p);
}

void CreditScheduler::yield(Vcpu& v) {
  assert(v.state() == VcpuState::kRunning);
  Pcpu& p = pcpus_[v.pcpu()];
  assert(p.current() == &v);
  if (v.sa_pending()) {
    v.set_sa_pending(false);
    v.sa_cap_timer.cancel();
    if (hook_ != nullptr) hook_->note_ack(v);
  }
  notify_stopped(v, StopReason::kYielded);
  v.set_state(VcpuState::kRunnable, eng_.now());
  v.set_pcpu(kNoPcpu);
  p.set_current(nullptr);
  p.slice_timer.cancel();
  p.enqueue(&v);  // tail of its priority class
  request_resched(p);
}

void CreditScheduler::force_preempt(Vcpu& v) {
  if (v.state() != VcpuState::kRunning) return;
  Pcpu& p = pcpus_[v.pcpu()];
  assert(p.current() == &v);
  v.set_sa_pending(false);
  v.sa_cap_timer.cancel();
  deschedule_current(p, StopReason::kPreempted);
  request_resched(p);
}

void CreditScheduler::deschedule_current(Pcpu& p, StopReason reason) {
  Vcpu* cur = p.current();
  assert(cur != nullptr && cur->state() == VcpuState::kRunning);
  counters_.inc(cnt_shard(*cur), obs::Cnt::kHvPreemptions);
  notify_stopped(*cur, reason);
  cur->set_state(VcpuState::kRunnable, eng_.now());
  cur->set_pcpu(kNoPcpu);
  p.set_current(nullptr);
  p.slice_timer.cancel();
  p.enqueue(cur);
  // OVER means the vCPU burned through its credit share: the deschedule is
  // a credit throttle, not generic contention — forensics separates the two.
  tbuf_.record(eng_.now(), sim::TraceKind::kHvPreempt, cur->id(), p.id(),
               cur->prio() == CreditPrio::kOver ? "throttle" : "");
}

void CreditScheduler::notify_stopped(Vcpu& v, StopReason reason) {
  if (!v.guest_active) {
    // Preempted inside the world-switch window: the guest never saw the
    // vCPU start, so it must not see it stop either.
    v.start_notice.cancel();
    return;
  }
  if (reason == StopReason::kPreempted && v.vm().has_guest()) {
    const PreemptClass pc = v.vm().guest().classify_preemption(v.idx());
    // c carries the on-CPU task id and note the lock name so attribution
    // can charge the preemption window to a specific task/lock.
    if (pc.holds_lock) {
      counters_.inc(cnt_shard(v), obs::Cnt::kHvLhp);
      tbuf_.record(eng_.now(), sim::TraceKind::kLhp, v.id(), v.pcpu(),
                   pc.lock_name != nullptr ? pc.lock_name : "", pc.task);
    }
    if (pc.waits_lock) {
      counters_.inc(cnt_shard(v), obs::Cnt::kHvLwp);
      tbuf_.record(eng_.now(), sim::TraceKind::kLwp, v.id(), v.pcpu(),
                   pc.lock_name != nullptr ? pc.lock_name : "", pc.task);
    }
  }
  v.guest_active = false;
  if (v.vm().has_guest()) v.vm().guest().vcpu_stopped(v.idx(), reason);
}

void CreditScheduler::switch_to(Pcpu& p, Vcpu* next) {
  if (next == nullptr) {
    p.set_current(nullptr);
    return;
  }
  counters_.inc(cnt_shard(*next), obs::Cnt::kHvCtxSwitches);
  next->set_state(VcpuState::kRunning, eng_.now());
  next->set_pcpu(p.id());
  next->set_resident(p.id());
  next->slice_start = eng_.now();
  p.set_current(next);
  tbuf_.record(eng_.now(), sim::TraceKind::kHvSchedule, next->id(), p.id());
  // Slice-expiry timer.
  p.slice_timer.cancel();
  p.slice_timer = eng_.schedule(
      cfg_.time_slice, [this, pp = &p]() { request_resched(*pp); },
      "hv.slice");
  // Deliver vcpu_started after the world-switch cost.
  next->start_notice.cancel();
  next->guest_active = false;
  Vcpu* nv = next;
  next->start_notice = eng_.schedule(
      cfg_.vcpu_switch_cost,
      [nv]() {
        nv->guest_active = true;
        if (nv->vm().has_guest()) nv->vm().guest().vcpu_started(nv->idx());
      },
      "hv.vcpu_start");
}

Vcpu* CreditScheduler::steal_for(Pcpu& p) {
  // Scan peers for the best-priority queued vCPU we are allowed to take.
  Vcpu* best = nullptr;
  Pcpu* from = nullptr;
  for (auto& peer : pcpus_) {
    if (peer.id() == p.id()) continue;
    for (Vcpu* v : peer.queue()) {
      if (v->co_stopped || !v->allowed_on(p.id())) continue;
      // credit1 steals only BOOST/UNDER vCPUs; OVER ones have consumed
      // their share and wait for the next accounting refill.
      if (v->prio() == CreditPrio::kOver) continue;
      if (best == nullptr || prio_better(*v, *best)) {
        best = v;
        from = &peer;
      }
      break;  // queue is sorted best-first; first eligible is its best
    }
  }
  if (best != nullptr) {
    from->remove(best);
    counters_.inc(cnt_shard(*best), obs::Cnt::kHvSteals);
    tbuf_.record(eng_.now(), sim::TraceKind::kHvSchedule, best->id(), p.id(),
                 "steal");
  }
  return best;
}

void CreditScheduler::do_schedule(Pcpu& p) {
  p.sched_pending = false;
  Vcpu* cur = p.current();
  if (cur != nullptr) {
    // Inside an SA grace window the vCPU keeps the pCPU until the guest
    // acknowledges (or the hard cap fires); never re-preempt here.
    if (cur->sa_pending()) return;
    const bool slice_expired =
        eng_.now() - cur->slice_start >= cfg_.time_slice;
    Vcpu* best = p.peek_best();
    const bool boosted_waiter = best != nullptr && prio_better(*best, *cur);
    const bool rotate =
        slice_expired && best != nullptr && prio_not_worse(*best, *cur);
    if (!boosted_waiter && !rotate) {
      if (slice_expired) {
        // Nobody eligible to take over: renew the slice in place.
        cur->slice_start = eng_.now();
        p.slice_timer.cancel();
        p.slice_timer = eng_.schedule(
            cfg_.time_slice, [this, pp = &p]() { request_resched(*pp); },
            "hv.slice");
      }
      return;
    }
    // Involuntary preemption imminent — IRS gets a chance to notify the
    // guest first (paper Algorithm 1).
    if (hook_ != nullptr && hook_->delay_preemption(*cur)) return;
    deschedule_current(p, StopReason::kPreempted);
  }
  Vcpu* next = p.pop_best();
  if (next == nullptr && cfg_.work_stealing) next = steal_for(p);
  switch_to(p, next);
}

void CreditScheduler::on_tick(Pcpu& p) {
  p.sample_util(eng_.now());
  Vcpu* cur = p.current();
  if (cur != nullptr) {
    cur->add_credits(-cfg_.credits_per_tick, cfg_.credit_cap);
    // Ticks degrade BOOST back to a credit-derived priority.
    cur->refresh_prio();
    Vcpu* best = p.peek_best();
    if (best != nullptr && prio_better(*best, *cur)) request_resched(p);
  } else if (p.queue_len() > 0 || cfg_.work_stealing) {
    // Idle pCPU with queued/stealable work (can happen transiently).
    request_resched(p);
  }
  p.tick_timer = eng_.schedule(
      cfg_.tick_period, [this, pp = &p]() { on_tick(*pp); }, "hv.tick");
}

void CreditScheduler::on_accounting() {
  // Total credits minted per accounting period across the host.
  const std::int64_t ticks_per_period =
      cfg_.accounting_period / cfg_.tick_period;
  const std::int64_t total = ticks_per_period * cfg_.credits_per_tick *
                             static_cast<std::int64_t>(pcpus_.size());

  // A VM is active if any of its vCPUs is not blocked.
  std::int64_t total_weight = 0;
  for (Vm* vm : vms_) {
    bool active = false;
    for (Vcpu* v : vm->vcpus()) {
      if (v->state() != VcpuState::kBlocked) active = true;
    }
    if (active) total_weight += vm->weight();
  }
  if (total_weight > 0) {
    for (Vm* vm : vms_) {
      bool active = false;
      for (Vcpu* v : vm->vcpus()) {
        if (v->state() != VcpuState::kBlocked) active = true;
      }
      if (!active) continue;
      // credit1 splits the domain's share across all of its vCPUs; idle
      // ones accumulate up to the cap (one slice's worth), which is what
      // lets a mostly-idle vCPU BOOST promptly when it wakes.
      const std::int64_t share = total * vm->weight() / total_weight;
      const std::int32_t per_vcpu = static_cast<std::int32_t>(
          share / static_cast<std::int64_t>(vm->n_vcpus()));
      for (Vcpu* v : vm->vcpus()) v->add_credits(per_vcpu, cfg_.credit_cap);
    }
  }
  // Refresh priorities (clears BOOST) and re-sort queues accordingly.
  for (Vm* vm : vms_) {
    for (Vcpu* v : vm->vcpus()) v->refresh_prio();
  }
  rebuild_queues();
  for (auto& p : pcpus_) request_resched(p);
  eng_.schedule(cfg_.accounting_period, [this]() { on_accounting(); },
                "hv.acct");
}

void CreditScheduler::rebuild_queues() {
  for (auto& p : pcpus_) {
    std::vector<Vcpu*> q(p.queue().begin(), p.queue().end());
    while (p.queue_len() > 0) {
      p.remove(p.queue().front());
    }
    std::stable_sort(q.begin(), q.end(), [](const Vcpu* a, const Vcpu* b) {
      return static_cast<int>(a->prio()) < static_cast<int>(b->prio());
    });
    for (Vcpu* v : q) p.enqueue(v);
  }
}

}  // namespace irs::hv
