// The guest's view of the hypervisor: the hypercall surface.
//
// Mirrors the Xen interfaces the paper's Linux changes use:
//   HYPERVISOR_sched_op(SCHEDOP_block / SCHEDOP_yield)  -> sched_block/yield
//   HYPERVISOR_vcpu_op (runstate queries)               -> vcpu_runstate
//   event-channel kick of a blocked sibling vCPU        -> vcpu_kick
// plus the paravirtual steal clock Linux uses for rt_avg.
#pragma once

#include "src/hv/types.h"

namespace irs::hv {

/// Snapshot of a vCPU's hypervisor runstate, as returned by
/// HYPERVISOR_vcpu_op(VCPUOP_get_runstate_info).
struct RunstateInfo {
  VcpuState state = VcpuState::kBlocked;
  sim::Time state_entered = 0;      // when the current state began
  sim::Duration time_running = 0;   // cumulative ns in kRunning
  sim::Duration time_runnable = 0;  // cumulative ns waiting for a pCPU (steal)
  sim::Duration time_blocked = 0;   // cumulative ns blocked
};

/// Hypercalls available to one VM. `vcpu` is the index within the VM.
class Hypercalls {
 public:
  virtual ~Hypercalls() = default;

  /// SCHEDOP_block: the calling vCPU has nothing to run; block it.
  /// Must be invoked for the vCPU that is currently executing.
  virtual void sched_block(int vcpu) = 0;

  /// SCHEDOP_yield: relinquish the pCPU without changing state to blocked.
  virtual void sched_yield(int vcpu) = 0;

  /// Query a sibling vCPU's runstate (used by the IRS migrator and by the
  /// guest's steal clock).
  [[nodiscard]] virtual RunstateInfo vcpu_runstate(int vcpu) const = 0;

  /// Send an event to a blocked sibling vCPU so it wakes up (models the
  /// event-channel kick Linux performs when enqueueing work on an idle CPU).
  virtual void vcpu_kick(int vcpu) = 0;
};

}  // namespace irs::hv
