// The hypervisor's view of a guest operating system.
//
// The hypervisor never reaches into guest data structures; everything it can
// do to a guest goes through this narrow interface — exactly the semantic
// boundary whose gaps the paper studies. `vcpu` arguments are indices within
// the VM (0..n_vcpus-1), not global ids.
#pragma once

#include <cstdint>

#include "src/hv/types.h"

namespace irs::hv {

/// Classification of what a vCPU was doing when it lost its pCPU, used by
/// metrics to count lock-holder (LHP) and lock-waiter (LWP) preemptions and
/// by obs::Attribution to charge the preemption window back to a task/lock.
struct PreemptClass {
  bool holds_lock = false;   // current task holds >=1 lock: LHP
  bool waits_lock = false;   // current task spins/queues on a lock: LWP
  std::int32_t task = -1;    // on-CPU task id (-1 when the vCPU was idle)
  /// Name of the lock involved (held for LHP, spun on for LWP). Points at
  /// sync-layer storage that outlives the classification; may be nullptr.
  const char* lock_name = nullptr;
};

/// Interface implemented by guest kernels (see guest::GuestKernel).
class GuestOs {
 public:
  virtual ~GuestOs() = default;

  /// The vCPU has been placed on a pCPU and begins executing guest code.
  virtual void vcpu_started(int vcpu) = 0;

  /// The vCPU lost its pCPU. No guest code on this vCPU runs until the next
  /// vcpu_started(). The guest must freeze in-flight work accounting.
  virtual void vcpu_stopped(int vcpu, StopReason reason) = 0;

  /// Deliver a virtual IRQ. Only called while the vCPU is running.
  virtual void deliver_virq(int vcpu, Virq irq) = 0;

  /// True if the guest registered a handler for VIRQ_SA_UPCALL. Vanilla
  /// guests return false and the hypervisor never sends them SAs
  /// (paper §5.4 footnote: the background VM ignores SA).
  [[nodiscard]] virtual bool sa_registered() const = 0;

  /// Describe what the vCPU's current task is doing, for LHP/LWP accounting
  /// at deschedule time. Purely observational (a real system cannot do this;
  /// the simulator uses it only for metrics, never for scheduling).
  [[nodiscard]] virtual PreemptClass classify_preemption(int vcpu) const = 0;
};

}  // namespace irs::hv
