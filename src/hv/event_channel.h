// Minimal event-channel model: the notification fabric between the
// hypervisor and guests (and between sibling vCPUs of one guest).
//
// Two operations matter for IRS:
//  * notify(): deliver a virtual IRQ to a *running* vCPU (the SA upcall is
//    designed as a vIRQ so delivery is immediate, paper §3.1);
//  * kick(): wake a *blocked* sibling vCPU, as Linux does when it enqueues
//    work on an idle CPU.
#pragma once

#include "src/hv/credit_scheduler.h"
#include "src/hv/types.h"
#include "src/hv/vcpu.h"

namespace irs::hv {

class EventChannel {
 public:
  explicit EventChannel(CreditScheduler& sched) : sched_(sched) {}

  /// Deliver `irq` to the guest if the vCPU currently executes guest code.
  /// Returns false (dropped) otherwise — callers that need wake semantics
  /// use kick() instead.
  bool notify(Vcpu& v, Virq irq);

  /// Wake a blocked vCPU. No-op if it is not blocked.
  void kick(Vcpu& v);

 private:
  CreditScheduler& sched_;
};

}  // namespace irs::hv
