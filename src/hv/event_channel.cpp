#include "src/hv/event_channel.h"

#include "src/hv/vm.h"

namespace irs::hv {

bool EventChannel::notify(Vcpu& v, Virq irq) {
  if (v.state() != VcpuState::kRunning || !v.guest_active) return false;
  if (!v.vm().has_guest()) return false;
  v.vm().guest().deliver_virq(v.idx(), irq);
  return true;
}

void EventChannel::kick(Vcpu& v) {
  if (v.state() != VcpuState::kBlocked) return;
  sched_.wake(v);
}

}  // namespace irs::hv
