// The physical host: pCPUs, VMs, the credit scheduler, and the optional
// strategy components (IRS SA sender, PLE, relaxed co-scheduling).
#pragma once

#include <memory>
#include <vector>

#include "src/hv/credit_scheduler.h"
#include "src/hv/hypercalls.h"
#include "src/hv/pcpu.h"
#include "src/hv/types.h"
#include "src/hv/vcpu.h"
#include "src/hv/vm.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"

namespace irs::hv {

class SaSender;
class PleMonitor;
class RelaxedCoMonitor;
class DelayPreemptHook;
class EventChannel;

/// Counters for the optional strategy components. Like SchedStats, this is
/// a report-time fold of the sharded obs::Counters registry.
struct StrategyStats {
  std::uint64_t sa_sent = 0;     // SA notifications delivered
  std::uint64_t sa_acked = 0;    // guest acknowledged in time
  std::uint64_t sa_forced = 0;   // hard cap expired, forced preemption
  sim::Duration sa_delay_total = 0;  // cumulative preemption delay
  std::uint64_t ple_exits = 0;
  std::uint64_t co_stops = 0;
  std::uint64_t delay_grants = 0;    // delay-preemption windows opened
  std::uint64_t delay_released = 0;  // lock released inside the window
  std::uint64_t delay_expired = 0;   // window hit the hard cap
};

class Host {
 public:
  Host(sim::Engine& eng, HvConfig cfg, int n_pcpus);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Create a VM and its vCPUs (pinned per cfg.pin_map if given).
  Vm& add_vm(const VmConfig& cfg);

  /// Arm periodic timers. Call once after all VMs are added.
  void start();

  // --- strategy installation (call before start()) ---
  void enable_irs();            // SA sender half of IRS
  void enable_ple();            // pause-loop-exiting emulation
  void enable_relaxed_co();     // VMware-style relaxed co-scheduling
  void enable_delay_preempt();  // Uhlig-style lock-holder delay baseline

  // --- accessors ---
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] const HvConfig& config() const { return cfg_; }
  [[nodiscard]] int n_pcpus() const { return static_cast<int>(pcpus_.size()); }
  [[nodiscard]] Pcpu& pcpu(PcpuId id) { return pcpus_.at(id); }
  [[nodiscard]] int n_vms() const { return static_cast<int>(vms_.size()); }
  [[nodiscard]] Vm& vm(VmId id) { return *vms_.at(id); }
  [[nodiscard]] Vcpu& vcpu(VcpuId id) { return *vcpus_.at(id); }
  [[nodiscard]] int n_vcpus() const { return static_cast<int>(vcpus_.size()); }
  /// vCPUs currently runnable-but-not-running (sampler gauge).
  [[nodiscard]] int runnable_vcpus() const;
  /// Cumulative runnable-wait (steal) time across all vCPUs up to `now`
  /// (sampler rate source).
  [[nodiscard]] sim::Duration total_steal(sim::Time now) const;
  [[nodiscard]] CreditScheduler& sched() { return *sched_; }
  [[nodiscard]] const SchedStats& sched_stats() const { return sched_->stats(); }
  /// Snapshot of the strategy counters, folded across shards on demand.
  [[nodiscard]] const StrategyStats& strategy_stats() const;
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  /// The hypervisor's sharded counter registry (shard 0 global, shard
  /// vcpu_id+1 per vCPU — see cnt_shard()).
  [[nodiscard]] obs::Counters& counters() { return counters_; }
  [[nodiscard]] const obs::Counters& counters() const { return counters_; }
  /// The hypervisor's trace staging buffer.
  [[nodiscard]] obs::TraceBuffer& trace_buffer() { return tbuf_; }

  /// Per-VM hypercall surface handed to guest kernels.
  [[nodiscard]] Hypercalls& hypercalls(Vm& vm);

  /// Guest-side spin signal (models the PAUSE loops PLE hardware observes).
  /// Safe to call regardless of whether PLE is enabled.
  void note_spinning(Vm& vm, int vcpu_idx, bool spinning);

  /// Guest paravirtual lock hint (consumed by the delay-preemption
  /// baseline; a no-op otherwise).
  void note_lock_hint(Vm& vm, int vcpu_idx, bool holds_lock);

 private:
  class VmHypercalls;

  sim::Engine& eng_;
  HvConfig cfg_;
  obs::Counters counters_;
  sim::Trace trace_;
  // Declared after trace_: the buffer deregisters its flush hook on
  // destruction, which must happen while trace_ is still alive.
  obs::TraceBuffer tbuf_{&trace_};
  std::vector<Pcpu> pcpus_;
  std::vector<std::unique_ptr<Vm>> vm_storage_;
  std::vector<Vm*> vms_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  std::vector<std::unique_ptr<VmHypercalls>> hypercalls_;
  std::unique_ptr<EventChannel> evtchn_;
  std::unique_ptr<CreditScheduler> sched_;
  std::unique_ptr<SaSender> sa_sender_;
  std::unique_ptr<DelayPreemptHook> delay_;
  std::unique_ptr<PleMonitor> ple_;
  std::unique_ptr<RelaxedCoMonitor> relaxed_co_;
  mutable StrategyStats sstats_cache_;  // fold target for strategy_stats()
};

}  // namespace irs::hv
