#include "src/hv/ple.h"

#include "src/hv/host.h"

namespace irs::hv {

PleMonitor::PleMonitor(sim::Engine& eng, const HvConfig& cfg,
                       CreditScheduler& sched, std::vector<Pcpu>& pcpus,
                       obs::Counters& counters, obs::TraceBuffer& tbuf)
    : eng_(eng),
      cfg_(cfg),
      sched_(sched),
      pcpus_(pcpus),
      counters_(counters),
      tbuf_(tbuf) {}

void PleMonitor::on_spin_signal(Vcpu& v, bool spinning) {
  if (!spinning || v.state() != VcpuState::kRunning) {
    v.ple_timer.cancel();
    return;
  }
  if (v.ple_timer.pending()) return;  // window already counting
  arm(v);
}

void PleMonitor::arm(Vcpu& v) {
  Vcpu* vp = &v;
  v.ple_timer =
      eng_.schedule(cfg_.ple_window, [this, vp]() { fire(*vp); }, "hv.ple");
}

void PleMonitor::fire(Vcpu& v) {
  // The window only counts while the vCPU keeps spinning on a pCPU.
  if (v.state() != VcpuState::kRunning || !v.spinning()) return;
  Pcpu& p = pcpus_[v.pcpu()];
  if (p.queue_len() == 0) {
    // Nobody to yield to; keep running and keep watching.
    arm(v);
    return;
  }
  counters_.inc(cnt_shard(v), obs::Cnt::kPleExits);
  tbuf_.record(eng_.now(), sim::TraceKind::kPleExit, v.id(), v.pcpu());
  // Charge the VM-exit cost, then let the scheduler pick someone else.
  Vcpu* vp = &v;
  eng_.schedule(
      cfg_.ple_exit_cost,
      [this, vp]() {
        if (vp->state() == VcpuState::kRunning) sched_.force_preempt(*vp);
      },
      "hv.ple_exit");
}

}  // namespace irs::hv
