// VMware-style relaxed co-scheduling, as re-implemented for Xen in the
// paper's evaluation (§5.1).
//
// Every accounting period the monitor measures per-vCPU progress for each
// SMP VM. Progress is time spent running *or idle-blocked* — the paper
// points out this is exactly the flaw that makes relaxed-co ineffective for
// blocking workloads (deceptive idleness counts as progress). When the skew
// between the most- and least-progressed sibling exceeds a threshold, the
// leading vCPU is stopped for one period and the most-lagging runnable
// sibling is boosted into its slot.
#pragma once

#include <vector>

#include "src/hv/credit_scheduler.h"
#include "src/hv/types.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"

namespace irs::hv {

class RelaxedCoMonitor {
 public:
  RelaxedCoMonitor(sim::Engine& eng, const HvConfig& cfg,
                   CreditScheduler& sched, std::vector<Pcpu>& pcpus,
                   std::vector<Vm*>& vms, obs::Counters& counters,
                   obs::TraceBuffer& tbuf);

  /// Arm the periodic skew check. Call once.
  void start();

 private:
  void on_period();
  void check_vm(Vm& vm);

  sim::Engine& eng_;
  const HvConfig& cfg_;
  CreditScheduler& sched_;
  std::vector<Pcpu>& pcpus_;
  std::vector<Vm*>& vms_;
  obs::Counters& counters_;
  obs::TraceBuffer& tbuf_;

  // progress_[vcpu global id] = cumulative run+blocked time at last period.
  std::vector<sim::Duration> last_snapshot_;
  std::vector<sim::Duration> progress_;
};

}  // namespace irs::hv
