#include "src/hv/pcpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace irs::hv {

void Pcpu::enqueue(Vcpu* v) {
  assert(v != nullptr);
  // Insert before the first vCPU of a strictly worse priority class so the
  // queue stays sorted best-first, FIFO within a class.
  auto it = std::find_if(runq_.begin(), runq_.end(), [&](const Vcpu* q) {
    return static_cast<int>(q->prio()) > static_cast<int>(v->prio());
  });
  runq_.insert(it, v);
  v->set_resident(id_);
}

void Pcpu::enqueue_front(Vcpu* v) {
  assert(v != nullptr);
  // Insert before the first vCPU of an equal-or-worse class: head of class.
  auto it = std::find_if(runq_.begin(), runq_.end(), [&](const Vcpu* q) {
    return static_cast<int>(q->prio()) >= static_cast<int>(v->prio());
  });
  runq_.insert(it, v);
  v->set_resident(id_);
}

bool Pcpu::remove(Vcpu* v) {
  auto it = std::find(runq_.begin(), runq_.end(), v);
  if (it == runq_.end()) return false;
  runq_.erase(it);
  return true;
}

void Pcpu::sample_util(sim::Time now) {
  const sim::Duration wall = now - last_util_sample_;
  if (wall <= 0) return;
  last_util_sample_ = now;
  // The sample treats the whole interval as busy iff someone runs at its
  // end — at 10 ms ticks against 30 ms slices that tracks closely.
  const double inst = current_ != nullptr ? 1.0 : 0.0;
  const double tau = static_cast<double>(sim::milliseconds(100));
  const double w = 1.0 - std::exp(-static_cast<double>(wall) / tau);
  util_avg_ = w * inst + (1.0 - w) * util_avg_;
}

Vcpu* Pcpu::peek_best() const {
  for (Vcpu* v : runq_) {
    if (!v->co_stopped) return v;
  }
  return nullptr;
}

Vcpu* Pcpu::pop_best() {
  for (auto it = runq_.begin(); it != runq_.end(); ++it) {
    if (!(*it)->co_stopped) {
      Vcpu* v = *it;
      runq_.erase(it);
      return v;
    }
  }
  return nullptr;
}

}  // namespace irs::hv
