#include "src/hv/vm.h"

namespace irs::hv {

Vm::Vm(VmId id, VmConfig cfg) : id_(id), cfg_(std::move(cfg)) {}

}  // namespace irs::hv
