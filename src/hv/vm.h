// A virtual machine (Xen "domain"): a set of vCPUs plus the guest OS that
// runs on them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hv/guest_os.h"
#include "src/hv/types.h"

namespace irs::hv {

class Vcpu;

/// Per-VM configuration.
struct VmConfig {
  std::string name = "vm";
  int n_vcpus = 4;
  /// Credit-scheduler weight (Xen default 256).
  std::int32_t weight = 256;
  /// If non-empty, vCPU i is pinned to pin_map[i]. Otherwise unpinned.
  std::vector<PcpuId> pin_map;
};

class Vm {
 public:
  Vm(VmId id, VmConfig cfg);

  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] const VmConfig& config() const { return cfg_; }
  [[nodiscard]] std::int32_t weight() const { return cfg_.weight; }

  [[nodiscard]] int n_vcpus() const { return static_cast<int>(vcpus_.size()); }
  [[nodiscard]] Vcpu& vcpu(int idx) const { return *vcpus_.at(idx); }
  [[nodiscard]] const std::vector<Vcpu*>& vcpus() const { return vcpus_; }
  void attach_vcpu(Vcpu* v) { vcpus_.push_back(v); }

  /// The guest kernel; set once by the world builder before simulation.
  [[nodiscard]] GuestOs& guest() const { return *guest_; }
  [[nodiscard]] bool has_guest() const { return guest_ != nullptr; }
  void set_guest(GuestOs* g) { guest_ = g; }

 private:
  VmId id_;
  VmConfig cfg_;
  std::vector<Vcpu*> vcpus_;  // owned by Host
  GuestOs* guest_ = nullptr;  // owned by World
};

}  // namespace irs::hv
