#include "src/hv/relaxed_co.h"

#include <algorithm>

#include "src/hv/host.h"

namespace irs::hv {

RelaxedCoMonitor::RelaxedCoMonitor(sim::Engine& eng, const HvConfig& cfg,
                                   CreditScheduler& sched,
                                   std::vector<Pcpu>& pcpus,
                                   std::vector<Vm*>& vms,
                                   obs::Counters& counters,
                                   obs::TraceBuffer& tbuf)
    : eng_(eng),
      cfg_(cfg),
      sched_(sched),
      pcpus_(pcpus),
      vms_(vms),
      counters_(counters),
      tbuf_(tbuf) {}

void RelaxedCoMonitor::start() {
  eng_.schedule(cfg_.accounting_period, [this]() { on_period(); }, "hv.co");
}

void RelaxedCoMonitor::on_period() {
  // Release vCPUs stopped last period, then re-evaluate skew.
  for (Vm* vm : vms_) {
    for (Vcpu* v : vm->vcpus()) {
      if (v->co_stopped) {
        v->co_stopped = false;
        if (v->state() == VcpuState::kRunnable &&
            v->resident() != kNoPcpu) {
          sched_.request_resched(pcpus_[v->resident()]);
        }
      }
    }
  }
  for (Vm* vm : vms_) {
    if (vm->n_vcpus() > 1) check_vm(*vm);
  }
  eng_.schedule(cfg_.accounting_period, [this]() { on_period(); }, "hv.co");
}

void RelaxedCoMonitor::check_vm(Vm& vm) {
  const sim::Time now = eng_.now();
  Vcpu* leader = nullptr;
  Vcpu* laggard = nullptr;
  sim::Duration lead_prog = 0;
  sim::Duration lag_prog = 0;
  for (Vcpu* v : vm.vcpus()) {
    const auto id = static_cast<std::size_t>(v->id());
    if (last_snapshot_.size() <= id) {
      last_snapshot_.resize(id + 1, 0);
      progress_.resize(id + 1, 0);
    }
    // "A vCPU makes progress when it executes guest instructions or is in
    // the IDLE state" — running + blocked time counts; runnable (steal)
    // time does not. Skew is evaluated per accounting period (the monitor
    // "stops vCPUs that accrue enough skew" within a window; cumulative
    // skew would saturate under persistent interference and stop leaders
    // forever).
    const sim::Duration cum = v->time_running(now) + v->time_blocked(now);
    progress_[id] = cum - last_snapshot_[id];
    last_snapshot_[id] = cum;
    if (leader == nullptr || progress_[id] > lead_prog) {
      leader = v;
      lead_prog = progress_[id];
    }
    if (laggard == nullptr || progress_[id] < lag_prog) {
      laggard = v;
      lag_prog = progress_[id];
    }
  }
  if (leader == nullptr || laggard == nullptr || leader == laggard) return;
  if (lead_prog - lag_prog <= cfg_.co_skew_threshold) return;

  counters_.inc(cnt_shard(*leader), obs::Cnt::kCoStops);
  tbuf_.record(now, sim::TraceKind::kCoStop, leader->id(), laggard->id());
  const PcpuId freed =
      leader->state() == VcpuState::kRunning ? leader->pcpu() : kNoPcpu;
  leader->co_stopped = true;
  if (leader->state() == VcpuState::kRunning) {
    sched_.force_preempt(*leader);
  }
  // Release the leader once the laggard has had a chance to catch up —
  // stopping for a whole accounting period would stall group-synchronised
  // guests for dozens of phases.
  Vcpu* lead = leader;
  eng_.schedule(
      cfg_.co_stop_duration,
      [this, lead]() {
        if (!lead->co_stopped) return;
        lead->co_stopped = false;
        if (lead->state() == VcpuState::kRunnable &&
            lead->resident() != kNoPcpu) {
          sched_.request_resched(pcpus_[lead->resident()]);
        }
      },
      "hv.co_unstop");
  // The paper's optimisation: switch the stopped leader with the slowest
  // sibling — boost the laggard into the freed slot.
  if (laggard->state() == VcpuState::kRunnable) {
    Pcpu& from = pcpus_[laggard->resident()];
    from.remove(laggard);
    laggard->set_prio(CreditPrio::kBoost);
    // Move into the freed slot only if affinity allows it.
    Pcpu& to = (freed != kNoPcpu && laggard->allowed_on(freed))
                   ? pcpus_[freed]
                   : from;
    to.enqueue_front(laggard);
    sched_.request_resched(to);
  }
}

}  // namespace irs::hv
