// IRS hypervisor half: the scheduler-activation sender (paper §3.1, §4.1).
//
// Hooks the credit scheduler's involuntary-preemption path. When a runnable
// vCPU of an SA-registered guest is about to be preempted and has no SA
// outstanding, the sender delivers VIRQ_SA_UPCALL, marks the SA pending, and
// lets the vCPU keep running until the guest acknowledges via SCHEDOP_yield /
// SCHEDOP_block — bounded by a hard cap against rogue guests.
#pragma once

#include "src/hv/credit_scheduler.h"
#include "src/hv/types.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"

namespace irs::hv {

class SaSender final : public PreemptHook {
 public:
  SaSender(sim::Engine& eng, const HvConfig& cfg, CreditScheduler& sched,
           obs::Counters& counters, obs::TraceBuffer& tbuf);

  /// PreemptHook: returns true if preemption was deferred pending guest ack.
  bool delay_preemption(Vcpu& cur) override;

  /// Called by the scheduler paths that complete an SA (yield/block clear
  /// the pending flag there); used here only for delay accounting.
  void note_ack(Vcpu& v);

 private:
  sim::Engine& eng_;
  const HvConfig& cfg_;
  CreditScheduler& sched_;
  obs::Counters& counters_;
  obs::TraceBuffer& tbuf_;
};

}  // namespace irs::hv
