// Delay-preemption baseline (Uhlig et al., "Towards scalable multiprocessor
// virtual machines", VM'04 — discussed in paper §2.2).
//
// The guest hints the hypervisor while its current task holds a lock; the
// hypervisor then defers involuntary preemption of that vCPU for a bounded
// window so critical sections complete before the vCPU is descheduled —
// avoiding LHP without any guest-side load balancing. The paper's critique:
// the guest only passes information down and the hypervisor must deviate
// from its scheduling policy; fairness bounds force the window to be small.
#pragma once

#include "src/hv/credit_scheduler.h"
#include "src/hv/types.h"
#include "src/obs/counters.h"
#include "src/sim/engine.h"

namespace irs::hv {

class DelayPreemptHook final : public PreemptHook {
 public:
  DelayPreemptHook(sim::Engine& eng, const HvConfig& cfg,
                   CreditScheduler& sched, obs::Counters& counters);

  /// PreemptHook: defer while the guest signals a held lock, up to the cap.
  bool delay_preemption(Vcpu& cur) override;
  void note_ack(Vcpu& cur) override;

  /// Guest lock hint (routed via Host::note_lock_hint).
  void on_lock_hint(Vcpu& v, bool holds_lock);

 private:
  void expire(Vcpu& v);

  sim::Engine& eng_;
  const HvConfig& cfg_;
  CreditScheduler& sched_;
  obs::Counters& counters_;
};

}  // namespace irs::hv
