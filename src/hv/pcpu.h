// Physical CPU: one credit-scheduler runqueue plus the currently running
// vCPU.
#pragma once

#include <deque>
#include <vector>

#include "src/hv/types.h"
#include "src/hv/vcpu.h"
#include "src/sim/engine.h"

namespace irs::hv {

/// A physical CPU. The runqueue holds runnable vCPUs grouped by priority
/// class (BOOST, UNDER, OVER), FIFO within a class — credit1's layout.
class Pcpu {
 public:
  explicit Pcpu(PcpuId id) : id_(id) {}

  [[nodiscard]] PcpuId id() const { return id_; }

  [[nodiscard]] Vcpu* current() const { return current_; }
  void set_current(Vcpu* v) { current_ = v; }
  [[nodiscard]] bool idle() const { return current_ == nullptr; }

  /// Fold the busy/idle interval since the last sample into the decayed
  /// utilisation average (called from the scheduler tick).
  void sample_util(sim::Time now);
  /// Time-decayed fraction of recent time this pCPU was busy. This is the
  /// "computational load" signal VM-oblivious placement uses — and why
  /// deceptively-idle (blocking) vCPUs attract each other onto one pCPU
  /// (paper §5.6).
  [[nodiscard]] double util_avg() const { return util_avg_; }

  /// Insert at the tail of the vCPU's priority class.
  void enqueue(Vcpu* v);
  /// Insert at the head of the vCPU's priority class (used when a preempted
  /// vCPU should run again as soon as possible, e.g. relaxed-co boosting).
  void enqueue_front(Vcpu* v);
  /// Remove a specific vCPU from the queue. Returns false if absent.
  bool remove(Vcpu* v);

  /// Best queued candidate without removing it (skips co-stopped vCPUs).
  [[nodiscard]] Vcpu* peek_best() const;
  /// Remove and return the best queued candidate (skips co-stopped vCPUs).
  Vcpu* pop_best();

  [[nodiscard]] const std::deque<Vcpu*>& queue() const { return runq_; }
  [[nodiscard]] std::size_t queue_len() const { return runq_.size(); }
  /// Runnable load: queued vCPUs plus the running one. Used by wake
  /// placement (this is the utilisation-driven metric that causes the
  /// CPU-stacking behaviour of §5.6).
  [[nodiscard]] std::size_t load() const {
    return runq_.size() + (current_ ? 1 : 0);
  }

  /// Pending one-shot resched event (coalesces schedule requests).
  bool sched_pending = false;
  /// Slice-expiry timer for the running vCPU.
  sim::EventHandle slice_timer;
  /// Periodic credit-burn tick.
  sim::EventHandle tick_timer;

 private:
  PcpuId id_;
  Vcpu* current_ = nullptr;
  std::deque<Vcpu*> runq_;
  double util_avg_ = 0.0;
  sim::Time last_util_sample_ = 0;
};

}  // namespace irs::hv
