#include "src/hv/delay_preempt.h"

#include "src/hv/host.h"

namespace irs::hv {

DelayPreemptHook::DelayPreemptHook(sim::Engine& eng, const HvConfig& cfg,
                                   CreditScheduler& sched,
                                   obs::Counters& counters)
    : eng_(eng), cfg_(cfg), sched_(sched), counters_(counters) {}

bool DelayPreemptHook::delay_preemption(Vcpu& cur) {
  if (cur.state() != VcpuState::kRunning) return false;
  if (!cur.lock_hint) return false;  // not in a critical section
  if (cur.sa_pending()) return true;  // delay window already open
  // Open a bounded delay window; re-uses the SA pending plumbing (the
  // scheduler will not re-preempt while pending).
  cur.set_sa_pending(true);
  cur.sa_sent_at = eng_.now();
  counters_.inc(cnt_shard(cur), obs::Cnt::kDelayGrants);
  Vcpu* v = &cur;
  cur.sa_cap_timer = eng_.schedule(
      cfg_.delay_preempt_cap,
      [this, v]() { expire(*v); }, "hv.delay_preempt");
  return true;
}

void DelayPreemptHook::expire(Vcpu& v) {
  if (!v.sa_pending()) return;
  v.set_sa_pending(false);
  counters_.inc(cnt_shard(v), obs::Cnt::kDelayExpired);
  sched_.force_preempt(v);
}

void DelayPreemptHook::note_ack(Vcpu& v) {
  (void)v;  // voluntary yield/block while delayed; nothing extra to do
}

void DelayPreemptHook::on_lock_hint(Vcpu& v, bool holds_lock) {
  v.lock_hint = holds_lock;
  if (!holds_lock && v.sa_pending()) {
    // Critical section finished inside the delay window: complete the
    // deferred preemption now.
    v.sa_cap_timer.cancel();
    v.set_sa_pending(false);
    counters_.inc(cnt_shard(v), obs::Cnt::kDelayReleased);
    if (v.state() == VcpuState::kRunning) sched_.force_preempt(v);
  }
}

}  // namespace irs::hv
