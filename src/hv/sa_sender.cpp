#include "src/hv/sa_sender.h"

#include "src/hv/host.h"

namespace irs::hv {

SaSender::SaSender(sim::Engine& eng, const HvConfig& cfg,
                   CreditScheduler& sched, obs::Counters& counters,
                   obs::TraceBuffer& tbuf)
    : eng_(eng), cfg_(cfg), sched_(sched), counters_(counters), tbuf_(tbuf) {}

bool SaSender::delay_preemption(Vcpu& cur) {
  // Algorithm 1, send_sa_event: only runnable (still willing to run) vCPUs
  // of SA-registered guests, and only when no SA is already pending.
  if (cur.state() != VcpuState::kRunning) return false;
  if (!cur.vm().has_guest() || !cur.vm().guest().sa_registered()) return false;
  if (cur.sa_pending()) return true;  // grace window already in progress

  cur.set_sa_pending(true);
  cur.sa_sent_at = eng_.now();
  counters_.inc(cnt_shard(cur), obs::Cnt::kSaSent);
  tbuf_.record(eng_.now(), sim::TraceKind::kSaSend, cur.id(), cur.pcpu());
  cur.vm().guest().deliver_virq(cur.idx(), Virq::kSaUpcall);

  // Hard cap: a guest that never acknowledges loses the pCPU anyway.
  Vcpu* v = &cur;
  cur.sa_cap_timer = eng_.schedule(
      cfg_.sa_ack_cap,
      [this, v]() {
        if (!v->sa_pending()) return;  // raced with a just-arrived ack
        v->set_sa_pending(false);
        counters_.inc(cnt_shard(*v), obs::Cnt::kSaForced);
        counters_.inc(cnt_shard(*v), obs::Cnt::kSaDelayTotalNs,
                      eng_.now() - v->sa_sent_at);
        sched_.force_preempt(*v);
      },
      "sa.cap");
  return true;
}

void SaSender::note_ack(Vcpu& v) {
  counters_.inc(cnt_shard(v), obs::Cnt::kSaAcked);
  counters_.inc(cnt_shard(v), obs::Cnt::kSaDelayTotalNs,
                eng_.now() - v.sa_sent_at);
  tbuf_.record(eng_.now(), sim::TraceKind::kSaAck, v.id(), v.pcpu());
}

}  // namespace irs::hv
