#include "src/hv/sa_sender.h"

#include "src/hv/host.h"

namespace irs::hv {

SaSender::SaSender(sim::Engine& eng, const HvConfig& cfg,
                   CreditScheduler& sched, StrategyStats& stats,
                   sim::Trace& trace)
    : eng_(eng), cfg_(cfg), sched_(sched), stats_(stats), trace_(trace) {}

bool SaSender::delay_preemption(Vcpu& cur) {
  // Algorithm 1, send_sa_event: only runnable (still willing to run) vCPUs
  // of SA-registered guests, and only when no SA is already pending.
  if (cur.state() != VcpuState::kRunning) return false;
  if (!cur.vm().has_guest() || !cur.vm().guest().sa_registered()) return false;
  if (cur.sa_pending()) return true;  // grace window already in progress

  cur.set_sa_pending(true);
  cur.sa_sent_at = eng_.now();
  ++stats_.sa_sent;
  trace_.record(eng_.now(), sim::TraceKind::kSaSend, cur.id(), cur.pcpu());
  cur.vm().guest().deliver_virq(cur.idx(), Virq::kSaUpcall);

  // Hard cap: a guest that never acknowledges loses the pCPU anyway.
  Vcpu* v = &cur;
  cur.sa_cap_timer = eng_.schedule(
      cfg_.sa_ack_cap,
      [this, v]() {
        if (!v->sa_pending()) return;  // raced with a just-arrived ack
        v->set_sa_pending(false);
        ++stats_.sa_forced;
        stats_.sa_delay_total += eng_.now() - v->sa_sent_at;
        sched_.force_preempt(*v);
      },
      "sa.cap");
  return true;
}

void SaSender::note_ack(Vcpu& v) {
  ++stats_.sa_acked;
  stats_.sa_delay_total += eng_.now() - v.sa_sent_at;
  trace_.record(eng_.now(), sim::TraceKind::kSaAck, v.id(), v.pcpu());
}

}  // namespace irs::hv
