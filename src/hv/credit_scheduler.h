// Xen credit1-style scheduler.
//
// Implements the behaviours the paper's analysis depends on:
//  * 30 ms time slices with FIFO rotation inside a priority class,
//  * per-tick credit burn and periodic weight-proportional accounting,
//  * BOOST on wake-up from blocked (latency-sensitive vCPUs preempt),
//  * idle-time work stealing and utilisation-driven wake placement
//    (the source of the CPU-stacking problem, §5.6),
//  * a pre-preemption hook through which the IRS scheduler-activation
//    sender delays involuntary preemptions (§3.1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hv/pcpu.h"
#include "src/hv/types.h"
#include "src/hv/vcpu.h"
#include "src/hv/vm.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"

namespace irs::hv {

/// Shard convention for the hypervisor-side obs::Counters: shard 0 is the
/// global lane, shard v.id()+1 is the vCPU's own lane.
inline std::size_t cnt_shard(const Vcpu& v) {
  return static_cast<std::size_t>(v.id()) + 1;
}

/// Installed by the IRS SA sender. Called when the scheduler is about to
/// involuntarily preempt `cur`; returning true defers the preemption (the
/// hook is then responsible for eventually completing it via the guest's
/// yield/block acknowledgement or the hard-cap timer).
class PreemptHook {
 public:
  virtual ~PreemptHook() = default;
  virtual bool delay_preemption(Vcpu& cur) = 0;
  /// Called when a pending SA is acknowledged by the guest's yield/block.
  virtual void note_ack(Vcpu& cur) = 0;
};

/// Scheduler event counters (exported through Host for metrics/tests).
/// A report-time fold of the per-vCPU obs::Counters shards; producers
/// increment the sharded registry, never this struct.
struct SchedStats {
  std::uint64_t context_switches = 0;
  std::uint64_t preemptions = 0;  // involuntary deschedules
  std::uint64_t lhp_events = 0;   // preempted while current task held a lock
  std::uint64_t lwp_events = 0;   // preempted while current task waited
  std::uint64_t wakeups = 0;
  std::uint64_t steals = 0;       // vCPUs pulled by idle pCPUs
  std::uint64_t migrations = 0;   // vCPU changed home pCPU on wake
};

class CreditScheduler {
 public:
  CreditScheduler(sim::Engine& eng, const HvConfig& cfg,
                  std::vector<Pcpu>& pcpus, std::vector<Vm*>& vms,
                  obs::Counters& counters, obs::TraceBuffer& tbuf);

  /// Arm the periodic tick and accounting timers. Call once.
  void start();

  /// A blocked vCPU becomes runnable (event-channel kick, task enqueue).
  void wake(Vcpu& v);

  /// SCHEDOP_block from the running vCPU: guest has nothing to run.
  void block(Vcpu& v);

  /// SCHEDOP_yield from the running vCPU.
  void yield(Vcpu& v);

  /// Force an involuntary preemption right now, bypassing the preempt hook
  /// (used by the SA hard-cap timer, PLE exits, and relaxed-co stops).
  void force_preempt(Vcpu& v);

  /// Coalesced request to run the scheduler on a pCPU "soon" (this instant,
  /// after currently queued events).
  void request_resched(Pcpu& p);

  /// Install the IRS pre-preemption hook (nullptr to remove).
  void set_preempt_hook(PreemptHook* hook) { hook_ = hook; }

  /// Snapshot of the scheduler counters, folded across shards on demand.
  [[nodiscard]] const SchedStats& stats() const;

  /// Re-sort all runqueues after a global priority refresh.
  void rebuild_queues();

  /// Deterministic wake placement: last-used pCPU if idle, else any idle
  /// allowed pCPU, else the least-loaded allowed pCPU (lowest id wins ties).
  [[nodiscard]] PcpuId cpu_pick(const Vcpu& v) const;

 private:
  void do_schedule(Pcpu& p);
  void on_tick(Pcpu& p);
  void on_accounting();
  /// Move `cur` off `p` into the runnable queue (involuntary).
  void deschedule_current(Pcpu& p, StopReason reason);
  /// Install `next` (may be nullptr -> idle) on `p` and start its slice.
  void switch_to(Pcpu& p, Vcpu* next);
  /// Try to steal a runnable vCPU for idle pCPU `p` from its peers.
  Vcpu* steal_for(Pcpu& p);
  /// Notify the guest that its vCPU stopped, with LHP/LWP classification.
  void notify_stopped(Vcpu& v, StopReason reason);

  static bool prio_better(const Vcpu& a, const Vcpu& b) {
    return static_cast<int>(a.prio()) < static_cast<int>(b.prio());
  }
  static bool prio_not_worse(const Vcpu& a, const Vcpu& b) {
    return static_cast<int>(a.prio()) <= static_cast<int>(b.prio());
  }

  sim::Engine& eng_;
  const HvConfig& cfg_;
  std::vector<Pcpu>& pcpus_;
  std::vector<Vm*>& vms_;
  obs::Counters& counters_;
  obs::TraceBuffer& tbuf_;
  PreemptHook* hook_ = nullptr;
  mutable SchedStats stats_cache_;  // fold target for stats()
};

}  // namespace irs::hv
