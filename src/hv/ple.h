// Pause-loop-exiting (PLE) emulation.
//
// Real PLE hardware counts PAUSE iterations inside a guest and forces a
// VM-exit when a spin loop exceeds the PLE window; Xen's credit scheduler
// then yields the spinning vCPU. We model the same observable behaviour:
// when a vCPU's guest has been continuously spinning for `ple_window` while
// the vCPU holds a pCPU, the vCPU is charged the exit cost and yielded —
// but only if some other vCPU is waiting (yielding to nobody is pointless,
// matching Xen's behaviour).
#pragma once

#include "src/hv/credit_scheduler.h"
#include "src/hv/types.h"
#include "src/obs/counters.h"
#include "src/obs/trace_buffer.h"
#include "src/sim/engine.h"

namespace irs::hv {

class PleMonitor {
 public:
  PleMonitor(sim::Engine& eng, const HvConfig& cfg, CreditScheduler& sched,
             std::vector<Pcpu>& pcpus, obs::Counters& counters,
             obs::TraceBuffer& tbuf);

  /// Guest spin-state edge (also re-signalled when a spinning vCPU regains
  /// a pCPU, since preemption resets the hardware's continuity counter).
  void on_spin_signal(Vcpu& v, bool spinning);

 private:
  void arm(Vcpu& v);
  void fire(Vcpu& v);

  sim::Engine& eng_;
  const HvConfig& cfg_;
  CreditScheduler& sched_;
  std::vector<Pcpu>& pcpus_;
  obs::Counters& counters_;
  obs::TraceBuffer& tbuf_;
};

}  // namespace irs::hv
