// Core identifier types and tunables for the hypervisor substrate.
//
// The hypervisor model follows Xen's credit scheduler (credit1) as described
// in the IRS paper: 30 ms time slices, 10 ms ticks, 30 ms credit accounting,
// BOOST/UNDER/OVER priorities, wake-up boosting and idle-time vCPU stealing.
#pragma once

#include <cstdint>
#include <limits>

#include "src/sim/time.h"

namespace irs::hv {

using PcpuId = std::int32_t;
using VcpuId = std::int32_t;
using VmId = std::int32_t;

inline constexpr PcpuId kNoPcpu = -1;
inline constexpr VcpuId kNoVcpu = -1;

/// Hypervisor-visible vCPU states (paper §3.2): running on a pCPU, runnable
/// (preempted but has work), or blocked (guest idle / waiting for events).
enum class VcpuState : std::uint8_t { kRunning, kRunnable, kBlocked };

const char* vcpu_state_name(VcpuState s);

/// Credit-scheduler priority classes, ordered best-first.
enum class CreditPrio : std::uint8_t { kBoost = 0, kUnder = 1, kOver = 2 };

const char* credit_prio_name(CreditPrio p);

/// Why a vCPU lost its pCPU (guest kernels pause accounting either way, but
/// tests and metrics distinguish the cases).
enum class StopReason : std::uint8_t {
  kPreempted,  // involuntary: slice expiry, boost preemption, PLE, co-stop
  kYielded,    // voluntary SCHEDOP_yield
  kBlocked,    // voluntary SCHEDOP_block
};

/// Virtual IRQ numbers delivered over event channels.
enum class Virq : std::uint8_t {
  kSaUpcall,  // VIRQ_SA_UPCALL — the IRS scheduler-activation notification
};

/// Hypervisor tunables. Defaults mirror Xen 4.5 credit1 and the paper's
/// measured IRS costs.
struct HvConfig {
  sim::Duration time_slice = sim::milliseconds(30);
  sim::Duration tick_period = sim::milliseconds(10);
  sim::Duration accounting_period = sim::milliseconds(30);

  /// Credits debited from the running vCPU per tick (credit1 uses 100).
  std::int32_t credits_per_tick = 100;
  /// Credit clamp (credit1 caps at one accounting period's worth per pCPU).
  std::int32_t credit_cap = 300;

  /// Cost of a hypervisor-level vCPU context switch (world switch).
  sim::Duration vcpu_switch_cost = sim::microseconds(3);

  /// Whether idle pCPUs steal runnable vCPUs from busy peers (credit1 does;
  /// disabled automatically when every vCPU is pinned to one pCPU).
  bool work_stealing = true;

  /// --- IRS scheduler-activation knobs (hypervisor half, §3.1/§4.1) ---
  /// Hard cap on how long a preemption may be delayed waiting for the guest
  /// to acknowledge an SA (defends against rogue guests).
  sim::Duration sa_ack_cap = sim::microseconds(100);

  /// --- PLE (pause-loop exiting) knobs ---
  /// Continuous guest spin time that triggers a PLE VM-exit.
  sim::Duration ple_window = sim::microseconds(50);
  /// VM-exit + hypervisor handling overhead charged per PLE exit.
  sim::Duration ple_exit_cost = sim::microseconds(5);

  /// --- Delay-preemption baseline (Uhlig et al., paper §2.2) ---
  /// Upper bound on how long a lock-holding vCPU's preemption is deferred.
  sim::Duration delay_preempt_cap = sim::microseconds(500);

  /// --- Relaxed co-scheduling knobs (§5.1 "Relaxed-Co") ---
  /// Skew threshold beyond which the leading vCPU is stopped.
  sim::Duration co_skew_threshold = sim::milliseconds(15);
  /// How long a leading vCPU stays stopped — long enough for the boosted
  /// laggard to close the skew, well short of a full accounting period
  /// (ESX re-evaluates continuously rather than stopping for whole
  /// periods).
  sim::Duration co_stop_duration = sim::milliseconds(8);
};

}  // namespace irs::hv
