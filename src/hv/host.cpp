#include "src/hv/host.h"

#include <cassert>

#include "src/hv/delay_preempt.h"
#include "src/hv/event_channel.h"
#include "src/hv/ple.h"
#include "src/hv/relaxed_co.h"
#include "src/hv/sa_sender.h"

namespace irs::hv {

/// Per-VM hypercall adapter: maps VM-local vCPU indices onto global vCPUs
/// and forwards to the scheduler.
class Host::VmHypercalls final : public Hypercalls {
 public:
  VmHypercalls(Host& host, Vm& vm, EventChannel& evtchn)
      : host_(host), vm_(vm), evtchn_(evtchn) {}

  void sched_block(int vcpu) override {
    host_.sched().block(vm_.vcpu(vcpu));
  }

  void sched_yield(int vcpu) override {
    host_.sched().yield(vm_.vcpu(vcpu));
  }

  [[nodiscard]] RunstateInfo vcpu_runstate(int vcpu) const override {
    return vm_.vcpu(vcpu).runstate(host_.eng_.now());
  }

  void vcpu_kick(int vcpu) override { evtchn_.kick(vm_.vcpu(vcpu)); }

 private:
  Host& host_;
  Vm& vm_;
  EventChannel& evtchn_;
};

Host::Host(sim::Engine& eng, HvConfig cfg, int n_pcpus) : eng_(eng), cfg_(cfg) {
  assert(n_pcpus > 0);
  pcpus_.reserve(static_cast<std::size_t>(n_pcpus));
  for (int i = 0; i < n_pcpus; ++i) pcpus_.emplace_back(i);
  sched_ = std::make_unique<CreditScheduler>(eng_, cfg_, pcpus_, vms_,
                                             counters_, tbuf_);
  evtchn_ = std::make_unique<EventChannel>(*sched_);
}

Host::~Host() = default;

const StrategyStats& Host::strategy_stats() const {
  sstats_cache_.sa_sent = counters_.fold_u(obs::Cnt::kSaSent);
  sstats_cache_.sa_acked = counters_.fold_u(obs::Cnt::kSaAcked);
  sstats_cache_.sa_forced = counters_.fold_u(obs::Cnt::kSaForced);
  sstats_cache_.sa_delay_total = counters_.fold(obs::Cnt::kSaDelayTotalNs);
  sstats_cache_.ple_exits = counters_.fold_u(obs::Cnt::kPleExits);
  sstats_cache_.co_stops = counters_.fold_u(obs::Cnt::kCoStops);
  sstats_cache_.delay_grants = counters_.fold_u(obs::Cnt::kDelayGrants);
  sstats_cache_.delay_released = counters_.fold_u(obs::Cnt::kDelayReleased);
  sstats_cache_.delay_expired = counters_.fold_u(obs::Cnt::kDelayExpired);
  return sstats_cache_;
}

Vm& Host::add_vm(const VmConfig& vm_cfg) {
  const VmId id = static_cast<VmId>(vm_storage_.size());
  vm_storage_.push_back(std::make_unique<Vm>(id, vm_cfg));
  Vm& vm = *vm_storage_.back();
  vms_.push_back(&vm);
  for (int i = 0; i < vm_cfg.n_vcpus; ++i) {
    const VcpuId vid = static_cast<VcpuId>(vcpus_.size());
    vcpus_.push_back(std::make_unique<Vcpu>(vid, &vm, i));
    Vcpu& v = *vcpus_.back();
    if (!vm_cfg.pin_map.empty()) {
      assert(static_cast<std::size_t>(i) < vm_cfg.pin_map.size() &&
             "pin_map must cover every vCPU");
      const PcpuId p = vm_cfg.pin_map[static_cast<std::size_t>(i)];
      assert(p >= 0 && p < n_pcpus());
      v.set_affinity({p});
      v.set_resident(p);
    } else {
      v.set_resident(static_cast<PcpuId>(i % n_pcpus()));
    }
    vm.attach_vcpu(&v);
  }
  hypercalls_.push_back(std::make_unique<VmHypercalls>(*this, vm, *evtchn_));
  return vm;
}

void Host::start() {
  sched_->start();
  if (relaxed_co_) relaxed_co_->start();
}

void Host::enable_irs() {
  sa_sender_ =
      std::make_unique<SaSender>(eng_, cfg_, *sched_, counters_, tbuf_);
  sched_->set_preempt_hook(sa_sender_.get());
}

void Host::enable_delay_preempt() {
  delay_ = std::make_unique<DelayPreemptHook>(eng_, cfg_, *sched_, counters_);
  sched_->set_preempt_hook(delay_.get());
}

void Host::enable_ple() {
  ple_ = std::make_unique<PleMonitor>(eng_, cfg_, *sched_, pcpus_, counters_,
                                      tbuf_);
}

void Host::enable_relaxed_co() {
  relaxed_co_ = std::make_unique<RelaxedCoMonitor>(eng_, cfg_, *sched_,
                                                   pcpus_, vms_, counters_,
                                                   tbuf_);
}

int Host::runnable_vcpus() const {
  int n = 0;
  for (const auto& v : vcpus_) {
    if (v->state() == VcpuState::kRunnable) ++n;
  }
  return n;
}

sim::Duration Host::total_steal(sim::Time now) const {
  sim::Duration d = 0;
  for (const auto& v : vcpus_) d += v->time_runnable(now);
  return d;
}

Hypercalls& Host::hypercalls(Vm& vm) {
  return *hypercalls_.at(static_cast<std::size_t>(vm.id()));
}

void Host::note_spinning(Vm& vm, int vcpu_idx, bool spinning) {
  Vcpu& v = vm.vcpu(vcpu_idx);
  v.set_spinning(spinning);
  if (ple_) ple_->on_spin_signal(v, spinning);
}

void Host::note_lock_hint(Vm& vm, int vcpu_idx, bool holds_lock) {
  Vcpu& v = vm.vcpu(vcpu_idx);
  if (delay_) {
    delay_->on_lock_hint(v, holds_lock);
  } else {
    v.lock_hint = holds_lock;
  }
}

}  // namespace irs::hv
