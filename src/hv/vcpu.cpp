#include "src/hv/vcpu.h"

#include <algorithm>
#include <cmath>

namespace irs::hv {

const char* vcpu_state_name(VcpuState s) {
  switch (s) {
    case VcpuState::kRunning: return "running";
    case VcpuState::kRunnable: return "runnable";
    case VcpuState::kBlocked: return "blocked";
  }
  return "?";
}

const char* credit_prio_name(CreditPrio p) {
  switch (p) {
    case CreditPrio::kBoost: return "BOOST";
    case CreditPrio::kUnder: return "UNDER";
    case CreditPrio::kOver: return "OVER";
  }
  return "?";
}

Vcpu::Vcpu(VcpuId id, Vm* vm, int idx_in_vm)
    : id_(id), vm_(vm), idx_(idx_in_vm) {}

void Vcpu::set_state(VcpuState s, sim::Time now) {
  (void)load_avg(now);  // fold the ending interval into the load average
  acc_[static_cast<int>(state_)] += now - state_since_;
  state_since_ = now;
  state_ = s;
}

double Vcpu::load_avg(sim::Time now) const {
  const sim::Duration wall = now - load_sampled_;
  if (wall > 0) {
    const double inst = state_ == VcpuState::kRunning ? 1.0 : 0.0;
    const double tau = static_cast<double>(sim::milliseconds(100));
    const double w = 1.0 - std::exp(-static_cast<double>(wall) / tau);
    load_avg_ = w * inst + (1.0 - w) * load_avg_;
    load_sampled_ = now;
  }
  return load_avg_;
}

bool Vcpu::allowed_on(PcpuId p) const {
  if (affinity_.empty()) return true;
  return std::find(affinity_.begin(), affinity_.end(), p) != affinity_.end();
}

void Vcpu::add_credits(std::int32_t c, std::int32_t cap) {
  credits_ = std::clamp(credits_ + c, -cap, cap);
}

void Vcpu::refresh_prio() {
  prio_ = credits_ > 0 ? CreditPrio::kUnder : CreditPrio::kOver;
}

RunstateInfo Vcpu::runstate(sim::Time now) const {
  RunstateInfo info;
  info.state = state_;
  info.state_entered = state_since_;
  info.time_running = time_running(now);
  info.time_runnable = time_runnable(now);
  info.time_blocked = time_blocked(now);
  return info;
}

sim::Duration Vcpu::time_running(sim::Time now) const {
  auto t = acc_[static_cast<int>(VcpuState::kRunning)];
  if (state_ == VcpuState::kRunning) t += now - state_since_;
  return t;
}

sim::Duration Vcpu::time_runnable(sim::Time now) const {
  auto t = acc_[static_cast<int>(VcpuState::kRunnable)];
  if (state_ == VcpuState::kRunnable) t += now - state_since_;
  return t;
}

sim::Duration Vcpu::time_blocked(sim::Time now) const {
  auto t = acc_[static_cast<int>(VcpuState::kBlocked)];
  if (state_ == VcpuState::kBlocked) t += now - state_since_;
  return t;
}

}  // namespace irs::hv
