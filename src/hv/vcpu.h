// Hypervisor-side virtual CPU.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hv/hypercalls.h"
#include "src/hv/types.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace irs::hv {

class Vm;

/// A virtual CPU as the hypervisor sees it: a schedulable entity with a
/// runstate, credit-scheduler bookkeeping, and per-state time accounting.
class Vcpu {
 public:
  Vcpu(VcpuId id, Vm* vm, int idx_in_vm);

  [[nodiscard]] VcpuId id() const { return id_; }
  [[nodiscard]] Vm& vm() const { return *vm_; }
  /// Index of this vCPU within its VM (0..n-1).
  [[nodiscard]] int idx() const { return idx_; }

  [[nodiscard]] VcpuState state() const { return state_; }
  /// Transition runstate, folding elapsed time into the old state's bucket.
  void set_state(VcpuState s, sim::Time now);

  /// pCPU currently executing this vCPU (kNoPcpu unless running).
  [[nodiscard]] PcpuId pcpu() const { return pcpu_; }
  void set_pcpu(PcpuId p) { pcpu_ = p; }

  /// Home runqueue: the pCPU whose queue holds this vCPU when runnable.
  [[nodiscard]] PcpuId resident() const { return resident_; }
  void set_resident(PcpuId p) { resident_ = p; }

  /// Hard affinity. Empty means "any pCPU".
  [[nodiscard]] const std::vector<PcpuId>& affinity() const { return affinity_; }
  void set_affinity(std::vector<PcpuId> mask) { affinity_ = std::move(mask); }
  [[nodiscard]] bool allowed_on(PcpuId p) const;

  // --- credit scheduler bookkeeping ---
  [[nodiscard]] CreditPrio prio() const { return prio_; }
  void set_prio(CreditPrio p) { prio_ = p; }
  [[nodiscard]] std::int32_t credits() const { return credits_; }
  void add_credits(std::int32_t c, std::int32_t cap);
  /// Recompute UNDER/OVER from the credit balance (clears BOOST).
  void refresh_prio();

  sim::Time slice_start = 0;  // when the current slice began

  // --- scheduler-activation state (IRS, paper Algorithm 1) ---
  [[nodiscard]] bool sa_pending() const { return sa_pending_; }
  void set_sa_pending(bool p) { sa_pending_ = p; }
  /// Timestamp of the outstanding SA notification (for delay accounting).
  sim::Time sa_sent_at = 0;
  /// Cancellable timer enforcing the SA acknowledgement hard cap.
  sim::EventHandle sa_cap_timer;

  // --- spin tracking (for PLE) ---
  [[nodiscard]] bool spinning() const { return spinning_; }
  void set_spinning(bool s) { spinning_ = s; }
  sim::EventHandle ple_timer;

  // --- relaxed co-scheduling ---
  bool co_stopped = false;

  /// Guest paravirtual hint: the current task holds a lock (used by the
  /// delay-preemption baseline).
  bool lock_hint = false;

  /// Cancellable deferred call that delivers GuestOs::vcpu_started after the
  /// world-switch cost has elapsed.
  sim::EventHandle start_notice;
  /// True once vcpu_started was delivered for the current placement (the
  /// matching vcpu_stopped is only sent when this is set).
  bool guest_active = false;

  /// Time-decayed fraction of recent wall time spent Running — the
  /// "computational load" signal utilisation-driven placement uses. A
  /// blocking-sync vCPU reads low here even though it stalls whenever
  /// descheduled: deceptive idleness (paper §5.6).
  [[nodiscard]] double load_avg(sim::Time now) const;

  // --- runstate accounting ---
  [[nodiscard]] RunstateInfo runstate(sim::Time now) const;
  [[nodiscard]] sim::Duration time_running(sim::Time now) const;
  [[nodiscard]] sim::Duration time_runnable(sim::Time now) const;
  [[nodiscard]] sim::Duration time_blocked(sim::Time now) const;

 private:
  VcpuId id_;
  Vm* vm_;
  int idx_;
  VcpuState state_ = VcpuState::kBlocked;
  PcpuId pcpu_ = kNoPcpu;
  PcpuId resident_ = kNoPcpu;
  std::vector<PcpuId> affinity_;

  CreditPrio prio_ = CreditPrio::kUnder;
  std::int32_t credits_ = 0;

  bool sa_pending_ = false;
  bool spinning_ = false;

  sim::Time state_since_ = 0;
  sim::Duration acc_[3] = {0, 0, 0};  // indexed by VcpuState
  mutable double load_avg_ = 0.0;     // decayed running fraction
  mutable sim::Time load_sampled_ = 0;
};

}  // namespace irs::hv
