#include "src/exp/grids.h"

#include "src/exp/sweep.h"
#include "src/obs/sampler.h"
#include "src/wl/npb.h"
#include "src/wl/parsec.h"

namespace irs::exp {

PanelOptions::PanelOptions() = default;

ScenarioConfig panel_cfg(const std::string& app, core::Strategy strategy,
                         int n_inter, const PanelOptions& o) {
  ScenarioConfig cfg;
  cfg.fg = app;
  cfg.fg_threads = o.n_vcpus;
  cfg.strategy = strategy;
  cfg.bg = o.bg;
  cfg.n_inter = n_inter;
  cfg.n_bg_vms = o.n_bg_vms;
  cfg.n_vcpus = o.n_vcpus;
  cfg.n_pcpus = o.n_pcpus;
  cfg.pinned = o.pinned;
  cfg.npb_spinning = o.npb_spinning;
  cfg.work_scale = o.work_scale;
  return cfg;
}

namespace {

/// Builder collecting seed-expanded cells in registration order.
class Grid {
 public:
  explicit Grid(int seeds) : seeds_(seeds) {}

  void add(const ScenarioConfig& cfg) {
    for (const auto& c : seed_grid(cfg, seeds_)) cfgs_.push_back(c);
  }

  /// One panel the shape of detail::strategy_panel: for every (app, level),
  /// a baseline cell then one cell per compared strategy.
  void strategy_panel(const std::vector<std::string>& apps,
                      const PanelOptions& o) {
    for (const auto& app : apps) {
      for (const int n : o.inter_levels) {
        add(panel_cfg(app, core::Strategy::kBaseline, n, o));
        for (const auto s : o.strategies) add(panel_cfg(app, s, n, o));
      }
    }
  }

  std::vector<ScenarioConfig> take() { return std::move(cfgs_); }

 private:
  int seeds_;
  std::vector<ScenarioConfig> cfgs_;
};

/// IRS_BENCH_FAST trimming of an improvement/weighted panel's app and
/// level lists, mirroring bench_util.h's behaviour.
std::vector<std::string> trim_apps(std::vector<std::string> apps, bool fast) {
  if (fast && apps.size() > 3) apps.resize(3);
  return apps;
}

/// Multi-panel improvement/weighted figure: one strategy_panel per
/// background workload; fast mode keeps the first panel only and trims
/// apps/levels (the bench binaries skip panels (b)/(c) under
/// IRS_BENCH_FAST).
void bg_panels(Grid& g, const std::vector<std::string>& apps,
               const std::vector<std::string>& bgs, PanelOptions o,
               bool fast, char panel /* 0 = all */) {
  const std::vector<std::string> trimmed = trim_apps(apps, fast);
  if (fast) o.inter_levels = {1};
  for (std::size_t i = 0; i < bgs.size(); ++i) {
    if (panel != 0 && panel != static_cast<char>('a' + i)) continue;
    if (panel == 0 && fast && i > 0) break;
    o.bg = bgs[i];
    g.strategy_panel(trimmed, o);
  }
}

void fig02(Grid& g) {
  auto add_one = [&](const std::string& app) {
    PanelOptions o;
    o.npb_spinning = false;
    g.add(panel_cfg(app, core::Strategy::kBaseline, 1, o));
  };
  for (const char* app :
       {"streamcluster", "canneal", "fluidanimate", "bodytrack", "x264",
        "facesim", "blackscholes"}) {
    add_one(app);
  }
  for (const char* app : {"BT", "CG", "MG", "FT", "SP", "UA"}) add_one(app);
  add_one("raytrace");
}

void fig08(Grid& g) {
  for (const char* app : {"specjbb", "ab"}) {
    for (int n = 1; n <= 4; ++n) {
      PanelOptions o;
      ScenarioConfig base = panel_cfg(app, core::Strategy::kBaseline, n, o);
      base.server_duration = sim::seconds(2);
      ScenarioConfig irs = base;
      irs.strategy = core::Strategy::kIrs;
      g.add(base);
      g.add(irs);
    }
  }
}

/// Open-loop variant of Fig. 8: does IRS hold the tail when arrivals do
/// not back off? Same jbb/ab shape (four vCPUs, 1..4 hogs, Baseline vs.
/// IRS) but the foreground is the "frontend" workload, whose open-loop
/// Poisson arrivals keep coming during freezes — the accept queue absorbs
/// and the drop/shed ledgers expose what closed-loop clients hide. Two
/// overload arms: plain tail-drop and SLO-burn shedding.
void fig08_open(Grid& g) {
  for (const char* ov : {"drop", "shed"}) {
    for (int n = 1; n <= 4; ++n) {
      PanelOptions o;
      ScenarioConfig base =
          panel_cfg("frontend", core::Strategy::kBaseline, n, o);
      base.server_duration = sim::seconds(2);
      base.fe_overload = ov;
      ScenarioConfig irs = base;
      irs.strategy = core::Strategy::kIrs;
      g.add(base);
      g.add(irs);
    }
  }
}

void fig10(Grid& g, bool fast) {
  struct App {
    const char* name;
    bool npb_spinning;
  };
  const std::vector<std::string> bgs =
      fast ? std::vector<std::string>{"hog"}
           : std::vector<std::string>{"hog", "fluidanimate", "streamcluster"};
  for (const App app : {App{"x264", true}, App{"blackscholes", true},
                        App{"EP", false}, App{"MG", true}}) {
    for (const auto& bg : bgs) {
      for (const int n : {1, 2, 4, 6, 8}) {
        PanelOptions o;
        o.n_vcpus = 8;
        o.n_pcpus = 8;
        o.bg = bg;
        o.npb_spinning = app.npb_spinning;
        g.add(panel_cfg(app.name, core::Strategy::kBaseline, n, o));
        g.add(panel_cfg(app.name, core::Strategy::kIrs, n, o));
      }
    }
  }
}

void fig11(Grid& g) {
  for (const char* app : {"x264", "blackscholes", "EP", "MG"}) {
    const bool npb_spin = app == std::string("MG");
    for (const int n_inter : {1, 2, 4}) {
      for (int vms = 1; vms <= 3; ++vms) {
        PanelOptions o;
        o.bg = "hog";
        o.n_bg_vms = vms;
        o.npb_spinning = npb_spin || app != std::string("EP");
        g.add(panel_cfg(app, core::Strategy::kBaseline, n_inter, o));
        g.add(panel_cfg(app, core::Strategy::kIrs, n_inter, o));
      }
    }
  }
}

/// Cluster figure: the two-host virtual datacenter. A protected "ab"
/// server fixed on host 0 and 1..4 migratable two-vCPU hog VMs admitted by
/// each placement policy; compares the foreground tail (lat_p999_ns)
/// across random / first-fit / IRS-informed placement, with Baseline and
/// IRS per-host scheduling as the inner arms.
void fig_cluster(Grid& g, bool fast) {
  const int max_hogs = fast ? 2 : 4;
  for (const char* pol : {"random", "firstfit", "irs"}) {
    for (int n = 1; n <= max_hogs; ++n) {
      for (const auto s : {core::Strategy::kBaseline, core::Strategy::kIrs}) {
        PanelOptions o;
        ScenarioConfig cfg = panel_cfg("ab", s, 2, o);
        cfg.server_duration = sim::seconds(2);
        cfg.n_bg_vms = n;
        cfg.cluster.n_hosts = 2;
        cfg.cluster.policy = pol;
        g.add(cfg);
      }
    }
  }
}

void smoke(Grid& g) {
  // Tiny sampler-armed grid for CI round-trips: 2 apps x {baseline, IRS}
  // x 2 interference levels, scaled way down. Sampling is on so digests
  // are nonzero and the merge identity check covers them.
  for (const char* app : {"blackscholes", "streamcluster"}) {
    for (const auto s : {core::Strategy::kBaseline, core::Strategy::kIrs}) {
      for (const int n : {1, 2}) {
        PanelOptions o;
        o.work_scale = 0.05;
        ScenarioConfig cfg = panel_cfg(app, s, n, o);
        cfg.sample_period = obs::Sampler::kDefaultPeriod;
        g.add(cfg);
      }
    }
  }
}

}  // namespace

std::vector<std::string> figure_grid_names() {
  return {"fig02",  "fig05",  "fig05a", "fig05b", "fig05c", "fig06",
          "fig06a", "fig06b", "fig06c", "fig07",  "fig07a", "fig07b",
          "fig08",  "fig08_open",        "fig09",  "fig09a", "fig09b",
          "fig10",  "fig11",  "fig12",  "fig13",  "fig_cluster", "smoke"};
}

std::vector<ScenarioConfig> figure_grid(const std::string& name,
                                        const GridOptions& opt) {
  const int seeds = opt.seeds > 0 ? opt.seeds : bench_seeds();
  Grid g(seeds);
  const bool fast = opt.fast;
  // "figNN" runs the whole figure; "figNNx" one panel of it.
  auto panel_of = [&](const std::string& base) -> char {
    if (name == base) return 0;
    if (name.size() == base.size() + 1 && name.compare(0, base.size(), base) == 0) {
      return name.back();
    }
    return '?';
  };

  if (name == "fig02") {
    fig02(g);
  } else if (const char p = panel_of("fig05"); p != '?') {
    bg_panels(g, wl::parsec_names(),
              {"hog", "streamcluster", "fluidanimate"}, PanelOptions{}, fast,
              p);
  } else if (const char p = panel_of("fig06"); p != '?') {
    PanelOptions o;
    o.npb_spinning = true;
    bg_panels(g, wl::npb_names(), {"hog", "UA", "LU"}, o, fast, p);
  } else if (const char p = panel_of("fig07"); p != '?') {
    bg_panels(g, wl::parsec_names(), {"fluidanimate", "streamcluster"},
              PanelOptions{}, fast, p);
  } else if (name == "fig08") {
    fig08(g);
  } else if (name == "fig08_open") {
    fig08_open(g);
  } else if (const char p = panel_of("fig09"); p != '?') {
    PanelOptions o;
    o.npb_spinning = true;
    bg_panels(g, wl::npb_names(), {"LU", "UA"}, o, fast, p);
  } else if (name == "fig10") {
    fig10(g, fast);
  } else if (name == "fig11") {
    fig11(g);
  } else if (name == "fig12") {
    PanelOptions o;
    o.bg = "hog";
    o.pinned = false;
    o.inter_levels = {4};
    o.npb_spinning = true;
    g.strategy_panel(trim_apps(wl::npb_names(), fast), o);
  } else if (name == "fig13") {
    PanelOptions o;
    o.bg = "hog";
    o.pinned = false;
    o.inter_levels = {4};
    g.strategy_panel(trim_apps(wl::parsec_names(), fast), o);
  } else if (name == "fig_cluster") {
    fig_cluster(g, fast);
  } else if (name == "smoke") {
    smoke(g);
  } else {
    return {};
  }
  return g.take();
}

}  // namespace irs::exp
