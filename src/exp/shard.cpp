#include "src/exp/shard.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/exp/report.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"

namespace irs::exp {

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

bool parse_shard_spec(const std::string& s, ShardSpec* out) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    return false;
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == slash) continue;
    if (s[i] < '0' || s[i] > '9') return false;
  }
  const long index = std::strtol(s.c_str(), nullptr, 10);
  const long count = std::strtol(s.c_str() + slash + 1, nullptr, 10);
  if (count <= 0 || index < 0 || index >= count) return false;
  out->index = static_cast<int>(index);
  out->count = static_cast<int>(count);
  return true;
}

std::vector<std::size_t> shard_run_indices(std::size_t n_runs, int shard,
                                           int n_shards) {
  std::vector<std::size_t> owned;
  if (shard < 0 || n_shards <= 0 || shard >= n_shards) return owned;
  owned.reserve(n_runs / static_cast<std::size_t>(n_shards) + 1);
  for (std::size_t i = static_cast<std::size_t>(shard); i < n_runs;
       i += static_cast<std::size_t>(n_shards)) {
    owned.push_back(i);
  }
  return owned;
}

std::vector<ScenarioConfig> shard_grid(const std::vector<ScenarioConfig>& cfgs,
                                       int shard, int n_shards) {
  std::vector<ScenarioConfig> out;
  for (const std::size_t i : shard_run_indices(cfgs.size(), shard, n_shards)) {
    out.push_back(cfgs[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// NDJSON shard format
// ---------------------------------------------------------------------------

std::string shard_header_json(const ShardHeader& h) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  w.begin_object();
  w.field("shard", h.shard);
  w.field("n_shards", h.n_shards);
  w.field("total_runs", h.total_runs);
  w.field("fig", h.fig);
  w.field("seeds", h.seeds);
  w.end_object();
  return w.str();
}

std::string shard_line_json(std::size_t run_index, const RunResult& r) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  w.begin_object();
  w.field("run", static_cast<std::uint64_t>(run_index));
  result_json_fields(w, r);
  w.end_object();
  return w.str();
}

bool parse_shard_header(const std::string& line, ShardHeader* out,
                        std::string* err) {
  obs::JsonReader reader;
  obs::JsonValue v;
  if (!reader.parse(line, &v)) {
    if (err) *err = "header: " + reader.error();
    return false;
  }
  if (!v.is_object()) {
    if (err) *err = "header is not a JSON object";
    return false;
  }
  ShardHeader h;
  std::int64_t shard = 0, n_shards = 0, seeds = 0;
  const obs::JsonValue* f = nullptr;
  if ((f = v.find("shard")) == nullptr || !f->get(&shard) ||
      (f = v.find("n_shards")) == nullptr || !f->get(&n_shards) ||
      (f = v.find("total_runs")) == nullptr || !f->get(&h.total_runs)) {
    if (err) *err = "header missing shard/n_shards/total_runs";
    return false;
  }
  if (n_shards <= 0 || shard < 0 || shard >= n_shards) {
    if (err) *err = "header shard index out of range";
    return false;
  }
  h.shard = static_cast<int>(shard);
  h.n_shards = static_cast<int>(n_shards);
  if ((f = v.find("fig")) != nullptr) f->get(&h.fig);
  if ((f = v.find("seeds")) != nullptr && f->get(&seeds)) {
    h.seeds = static_cast<int>(seeds);
  }
  *out = h;
  return true;
}

bool parse_shard_line(const std::string& line, std::size_t* run_index,
                      RunResult* out, std::string* err) {
  obs::JsonReader reader;
  obs::JsonValue v;
  if (!reader.parse(line, &v)) {
    if (err) *err = reader.error();
    return false;
  }
  if (!v.is_object()) {
    if (err) *err = "result line is not a JSON object";
    return false;
  }
  const obs::JsonValue* run = v.find("run");
  std::uint64_t idx = 0;
  if (run == nullptr || !run->get(&idx)) {
    if (err) *err = "missing or non-integer 'run' field";
    return false;
  }
  if (!result_from_value(v, out, err)) return false;
  *run_index = static_cast<std::size_t>(idx);
  return true;
}

// ---------------------------------------------------------------------------
// Merge + verification
// ---------------------------------------------------------------------------

namespace {

void sort_dedup(std::vector<std::uint64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

MergeReport merge_shard_streams(
    const std::vector<std::pair<std::string, std::string>>& files,
    const MergeOptions& opt) {
  MergeReport rep;
  bool have_header = false;

  struct Entry {
    std::uint64_t run;
    RunResult result;
  };
  std::vector<Entry> entries;  // in input order, pre-sizing pass below
  std::vector<int> claimed_shards;

  for (const auto& [name, content] : files) {
    ShardFileReport fr;
    fr.name = name;
    auto note = [&](const std::string& msg) {
      rep.errors.push_back(name + ": " + msg);
    };

    // Split into complete lines; a newline-less tail is a torn write from
    // a killed shard — valid-prefix by design, so it is reported, not
    // fatal.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < content.size()) {
      const std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) {
        fr.truncated = true;
        break;
      }
      lines.push_back(content.substr(start, nl - start));
      start = nl + 1;
    }
    if (fr.truncated) {
      rep.status |= kMergeTruncated;
      rep.truncated_files.push_back(name);
      note("torn final line discarded (shard killed mid-write?)");
    }

    if (lines.empty()) {
      rep.status |= kMergeBadFile;
      note("no complete header line");
      rep.files.push_back(std::move(fr));
      continue;
    }

    std::string err;
    if (!parse_shard_header(lines[0], &fr.header, &err)) {
      rep.status |= kMergeBadFile;
      note(err);
      rep.files.push_back(std::move(fr));
      continue;
    }
    fr.header_ok = true;

    // Headers must describe one and the same grid.
    if (!have_header) {
      have_header = true;
      rep.fig = fr.header.fig;
      rep.seeds = fr.header.seeds;
      rep.n_shards = fr.header.n_shards;
      rep.expected_runs = fr.header.total_runs;
    } else if (fr.header.n_shards != rep.n_shards ||
               fr.header.total_runs != rep.expected_runs ||
               fr.header.fig != rep.fig || fr.header.seeds != rep.seeds) {
      rep.status |= kMergeBadFile;
      note("header disagrees with previous shards (different grid?)");
    }
    claimed_shards.push_back(fr.header.shard);

    bool first = true;
    std::uint64_t prev = 0;
    for (std::size_t li = 1; li < lines.size(); ++li) {
      std::size_t run = 0;
      RunResult r;
      if (!parse_shard_line(lines[li], &run, &r, &err)) {
        rep.status |= kMergeBadFile;
        note("line " + std::to_string(li + 1) + ": " + err);
        continue;
      }
      const std::uint64_t idx = run;
      if (fr.header.total_runs > 0 && idx >= fr.header.total_runs) {
        rep.status |= kMergeBadFile;
        note("line " + std::to_string(li + 1) + ": run " +
             std::to_string(idx) + " out of range");
        continue;
      }
      if (fr.header.n_shards > 0 &&
          idx % static_cast<std::uint64_t>(fr.header.n_shards) !=
              static_cast<std::uint64_t>(fr.header.shard)) {
        rep.status |= kMergeDisorder;
        note("line " + std::to_string(li + 1) + ": run " +
             std::to_string(idx) + " is not owned by shard " +
             std::to_string(fr.header.shard));
      } else if (!first && idx < prev) {
        rep.status |= kMergeDisorder;
        note("line " + std::to_string(li + 1) + ": run " +
             std::to_string(idx) + " out of order (after " +
             std::to_string(prev) + ")");
      }
      if (first || idx > prev) {
        prev = idx;
        first = false;
      }
      entries.push_back(Entry{idx, r});
      ++fr.n_results;
    }
    rep.files.push_back(std::move(fr));
  }

  if (opt.expect_shards > 0) rep.n_shards = opt.expect_shards;
  if (opt.expect_runs > 0) rep.expected_runs = opt.expect_runs;

  // Key every entry by run index; first occurrence wins, repeats are
  // classified as duplicate (identical) or conflict (diverging).
  rep.results.assign(rep.expected_runs, RunResult{});
  rep.present.assign(rep.expected_runs, 0);
  std::vector<std::string> conflict_notes;
  for (const Entry& e : entries) {
    if (e.run >= rep.expected_runs) {
      // Only reachable with expect_runs overrides smaller than headers.
      rep.status |= kMergeBadFile;
      rep.errors.push_back("run " + std::to_string(e.run) +
                           " beyond expected " +
                           std::to_string(rep.expected_runs));
      continue;
    }
    if (rep.present[e.run] == 0) {
      rep.present[e.run] = 1;
      rep.results[e.run] = e.result;
      continue;
    }
    if (results_identical(rep.results[e.run], e.result)) {
      rep.status |= kMergeDuplicate;
      rep.duplicate_runs.push_back(e.run);
    } else {
      rep.status |= kMergeConflict;
      rep.conflict_runs.push_back(e.run);
      rep.errors.push_back("run " + std::to_string(e.run) +
                           ": conflicting results (digest " +
                           std::to_string(rep.results[e.run].sampler_digest) +
                           " vs " + std::to_string(e.result.sampler_digest) +
                           ")");
    }
  }
  sort_dedup(rep.duplicate_runs);
  sort_dedup(rep.conflict_runs);

  for (std::uint64_t i = 0; i < rep.expected_runs; ++i) {
    if (rep.present[i]) {
      ++rep.merged;
      if (rep.results[i].trace_dropped > 0) {
        rep.truncated_trace_runs.push_back(i);
      }
    } else {
      rep.missing.push_back(i);
    }
  }
  if (!rep.missing.empty()) rep.status |= kMergeMissingRuns;

  // Shards no file claimed (the whole-file-lost case).
  std::sort(claimed_shards.begin(), claimed_shards.end());
  for (int s = 0; s < rep.n_shards; ++s) {
    if (!std::binary_search(claimed_shards.begin(), claimed_shards.end(),
                            s)) {
      rep.missing_shards.push_back(s);
    }
  }

  return rep;
}

MergeReport merge_shards(const std::vector<std::string>& paths,
                         const MergeOptions& opt) {
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<std::string> unreadable;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      unreadable.push_back(path);
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.emplace_back(path, ss.str());
  }
  MergeReport rep = merge_shard_streams(files, opt);
  for (const std::string& path : unreadable) {
    rep.status |= kMergeBadFile;
    rep.errors.push_back(path + ": cannot read file");
  }
  return rep;
}

std::string merge_summary_json(const MergeReport& rep) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  w.begin_object();
  w.field("status", rep.status);
  w.field("ok", rep.ok());
  w.field("fig", rep.fig);
  w.field("seeds", rep.seeds);
  w.field("n_shards", rep.n_shards);
  w.field("expected_runs", rep.expected_runs);
  w.field("merged", rep.merged);
  auto run_list = [&](const char* key, const std::vector<std::uint64_t>& v) {
    w.key(key);
    w.begin_array();
    for (const std::uint64_t i : v) w.value(i);
    w.end_array();
  };
  run_list("missing", rep.missing);
  run_list("duplicates", rep.duplicate_runs);
  run_list("conflicts", rep.conflict_runs);
  run_list("truncated_traces", rep.truncated_trace_runs);
  w.key("missing_shards");
  w.begin_array();
  for (const int s : rep.missing_shards) w.value(s);
  w.end_array();
  w.key("truncated");
  w.begin_array();
  for (const std::string& f : rep.truncated_files) w.value(f);
  w.end_array();
  w.key("errors");
  w.begin_array();
  for (const std::string& e : rep.errors) w.value(e);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string repair_plan(const MergeReport& rep) {
  if (rep.n_shards <= 0) return {};
  // Runs needing a rerun: everything missing plus everything conflicted
  // (a conflict means at least one side is wrong — rerun to arbitrate).
  std::vector<std::vector<std::uint64_t>> by_shard(
      static_cast<std::size_t>(rep.n_shards));
  auto claim = [&](std::uint64_t run) {
    by_shard[run % static_cast<std::uint64_t>(rep.n_shards)].push_back(run);
  };
  for (const std::uint64_t run : rep.missing) claim(run);
  for (const std::uint64_t run : rep.conflict_runs) claim(run);

  const std::string fig = rep.fig.empty() ? "?" : rep.fig;
  std::string plan;
  for (int s = 0; s < rep.n_shards; ++s) {
    auto& runs = by_shard[static_cast<std::size_t>(s)];
    if (runs.empty()) continue;
    sort_dedup(runs);
    const std::size_t owned =
        rep.expected_runs == 0
            ? 0
            : (rep.expected_runs - static_cast<std::uint64_t>(s) +
               static_cast<std::uint64_t>(rep.n_shards) - 1) /
                  static_cast<std::uint64_t>(rep.n_shards);
    plan += "irs_sweep --fig " + fig;
    if (rep.seeds > 0) plan += " --seeds " + std::to_string(rep.seeds);
    plan += " --shard " + std::to_string(s) + "/" +
            std::to_string(rep.n_shards);
    if (runs.size() != owned) {
      plan += " --runs ";
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i > 0) plan += ",";
        plan += std::to_string(runs[i]);
      }
    }
    plan += " --ndjson rerun-shard" + std::to_string(s) + ".ndjson\n";
  }
  return plan;
}

void write_merged_ndjson(std::ostream& os, const MergeReport& rep) {
  ShardHeader h;
  h.shard = 0;
  h.n_shards = 1;
  h.total_runs = rep.expected_runs;
  h.fig = rep.fig;
  h.seeds = rep.seeds;
  os << shard_header_json(h) << '\n';
  for (std::uint64_t i = 0; i < rep.expected_runs; ++i) {
    if (rep.present[i]) {
      os << shard_line_json(static_cast<std::size_t>(i), rep.results[i])
         << '\n';
    }
  }
}

}  // namespace irs::exp
