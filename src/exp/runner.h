// Experiment runner: builds the paper's standard two-VM (or N-VM) topology
// around a foreground workload and interference, runs it to completion, and
// extracts the metrics the figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/world.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/cluster_stats.h"
#include "src/obs/forensics.h"
#include "src/obs/frontend_stats.h"
#include "src/obs/slo.h"
#include "src/obs/telemetry.h"

namespace irs::exp {

/// Cluster sub-config of a scenario: n_hosts >= 2 switches the runner from
/// the classic single-host World to a cluster::Cluster of that many hosts —
/// the foreground VM fixed on host 0, each interfering VM (always gated
/// hogs in cluster mode) a *migratable* logical VM the placement policy
/// admits and the kIrs policy may live-migrate (see src/cluster/cluster.h).
struct ClusterOptions {
  /// 0 or 1 = classic single-host run; >= 2 = cluster run.
  int n_hosts = 0;
  /// Placement policy name: "random", "firstfit", or "irs".
  std::string policy = "irs";
  /// Per-host collector sampling cadence.
  sim::Duration collect_period = sim::milliseconds(10);
  /// Central scheduler decision cadence (irs policy only).
  sim::Duration decide_period = sim::milliseconds(30);
  /// Migration cost model: blackout + per-task cache warmup debt.
  sim::Duration migration_downtime = sim::milliseconds(20);
  sim::Duration warmup_debt = sim::microseconds(500);
  /// Steal fraction of a collector window that counts as the protected VM
  /// "burning budget" and triggers an eviction.
  double burn_frac = 0.1;
  /// Minimum spacing between migrations of one VM.
  sim::Duration cooldown = sim::milliseconds(90);
};

/// One experimental condition (paper §5.1 "Experimental Settings").
/// Inherits the telemetry knobs (trace_capacity, trace_batch,
/// sample_period, sample_capacity) from obs::TelemetryConfig — the one
/// definition shared with WorldConfig and HostNodeConfig.
struct ScenarioConfig : obs::TelemetryConfig {
  core::Strategy strategy = core::Strategy::kBaseline;

  /// Foreground workload (PARSEC/NPB name, "specjbb", "ab").
  std::string fg = "streamcluster";
  int fg_threads = 4;  // matches n_vcpus in the paper

  /// Interference: "hog" or a real application name; empty = run alone.
  std::string bg = "hog";
  /// #foreground vCPUs subject to interference ("1-inter." etc.): the
  /// background VM gets this many vCPUs/threads, pinned to pCPUs 0..n-1.
  int n_inter = 1;
  /// Number of co-located interfering VMs (Fig. 11 varies this).
  int n_bg_vms = 1;

  int n_vcpus = 4;
  int n_pcpus = 4;
  /// Pinned topology (§5.1 "CPU pinning") vs. free placement (§5.6).
  bool pinned = true;

  bool npb_spinning = true;  // OMP_WAIT_POLICY for NPB models
  double work_scale = 1.0;
  sim::Duration server_duration = sim::seconds(3);
  sim::Duration timeout = sim::seconds(150);
  std::uint64_t seed = 1;

  /// SPECjbb lock-contention knobs (0 = the model's defaults): critical
  /// section length and "every Nth transaction takes the lock". Cranking
  /// these — and flipping `jbb_cs_spin` so the section takes a ticket
  /// spinlock whose waiters burn CPU instead of yielding their vCPU —
  /// makes lock-holder/waiter preemption the dominant interference
  /// channel — how the forensics tests reproduce the paper's LHP story on
  /// a small fixture.
  sim::Duration jbb_cs_len = 0;
  int jbb_cs_every = 0;
  bool jbb_cs_spin = false;

  /// Open-loop front-end knobs (fg == "frontend"; see src/wl/frontend.h):
  /// arrival process ("poisson"/"mmpp"/"diurnal"), base rate (0 = model
  /// default), overload policy ("drop"/"admit"/"shed"), accept-queue bound
  /// (0 = model default), and connection keepalive.
  std::string fe_arrival = "poisson";
  double fe_rate_hz = 0.0;
  std::string fe_overload = "drop";
  int fe_queue_cap = 0;
  bool fe_keepalive = true;

  /// Event-queue backend override (see WorldConfig::queue); defaults to
  /// the process-wide default. Results must be backend-independent.
  sim::QueueKind queue = sim::default_queue_kind();

  /// Guest kernel tunables for the foreground VM (ablation knobs; the IRS
  /// enable flag is controlled by `strategy`, not here).
  guest::GuestConfig fg_guest{};
  /// Hypervisor tunables (e.g. SA ack cap sweeps).
  hv::HvConfig hv{};

  /// Cluster topology (n_hosts >= 2 switches to the cluster runner).
  ClusterOptions cluster;

  /// Windowed SLO tracking for server workloads (jbb/ab): 0 = on at the
  /// default 30 ms credit-window cadence, >0 = on at that window, <0 = off
  /// (the bench overhead gate's "raw counters only" arm). Tracking is
  /// passive — every other result field is bit-identical either way.
  sim::Duration slo_window = 0;
  /// Per-request causal forensics for server workloads (jbb/ab): captures
  /// a ReqSpan per transaction into a side log (the runner synthesizes
  /// kReqBegin/kReqEnd records from it at analysis time) and decomposes
  /// each request's latency by cause (see obs/forensics.h). Enables the
  /// trace ring if trace_capacity is 0 (at a generous default). Passive:
  /// only the trace-telemetry and forensics fields of the result change.
  bool forensics = false;
  /// With forensics on, run the decomposition at the end of the run
  /// (ring snapshot + one-pass analyzer). false records the request
  /// brackets but leaves RunResult::forensics empty — how bench_report
  /// times the always-on recording cost separately from the explicit
  /// analysis pass.
  bool forensics_analyze = true;
};

/// Metrics extracted from one run.
struct RunResult {
  bool finished = false;
  sim::Duration fg_makespan = 0;
  double fg_util_vs_fair = 0;    // Fig. 2 metric
  double fg_efficiency = 0;      // useful work / fair share
  double bg_progress_rate = 0;   // bg units/sec (weighted-speedup input)
  /// Server workloads only:
  double throughput = 0;
  sim::Duration lat_mean = 0;
  sim::Duration lat_p99 = 0;
  /// Exact 99.9th percentile of request latency (server workloads only) —
  /// the tail metric fig_cluster compares across placement policies.
  sim::Duration lat_p999 = 0;
  /// Scheduler event counters:
  std::uint64_t lhp = 0;
  std::uint64_t lwp = 0;
  std::uint64_t irs_migrations = 0;
  std::uint64_t sa_sent = 0;
  std::uint64_t sa_acked = 0;
  sim::Duration sa_delay_avg = 0;
  /// FNV-1a digest of every sampler series (0 when sampling was off).
  /// Determinism sentinel: equal configs must produce equal digests
  /// regardless of sweep thread count.
  std::uint64_t sampler_digest = 0;
  /// Trace-ring truncation telemetry (0/0 when tracing was off): folds and
  /// merges warn instead of silently aggregating a truncated run.
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_total_recorded = 0;
  /// Windowed SLO capture (empty unless a server workload ran with
  /// cfg.slo_window >= 0) and its digest — XOR-folded through sweeps like
  /// sampler_digest, and the merge's bucket-exactness sentinel.
  obs::SloResult slo;
  std::uint64_t slo_digest = 0;
  /// Per-request causal decomposition (empty unless cfg.forensics) and its
  /// digest — folded through sweeps exactly like the SLO capture.
  obs::ForensicsResult forensics;
  std::uint64_t forensics_digest = 0;
  /// Open-loop front-end conservation ledger (empty unless fg ==
  /// "frontend") and its digest — folded through sweeps like the SLO
  /// capture (counters add exactly, maxes take the max).
  obs::FrontendResult frontend;
  std::uint64_t frontend_digest = 0;
  /// Cluster placement/migration ledger (empty unless cluster.n_hosts >= 2)
  /// and its digest — folded through sweeps like the front-end ledger
  /// (counters add exactly; see src/obs/cluster_stats.h).
  obs::ClusterResult cluster;
  std::uint64_t cluster_digest = 0;
};

/// A run's trace, captured for export: the snapshot (time-ordered, flushed)
/// plus the topology/bookkeeping metadata the exporters need.
struct TraceDump {
  std::vector<sim::TraceRecord> records;
  obs::TraceMeta meta;
  /// Sampler series captured at the end of the run (counter tracks).
  std::vector<obs::SeriesData> series;
  /// Windowed SLO capture (empty for non-server workloads).
  obs::SloResult slo;
  /// Per-request causal decomposition (empty unless cfg.forensics).
  obs::ForensicsResult forensics;
};

/// Exact equality over every RunResult field (doubles compared bitwise via
/// ==). The determinism contract of this repo: equal configs on equal seeds
/// must compare identical regardless of thread count, process count, or a
/// trip through NDJSON.
bool results_identical(const RunResult& a, const RunResult& b);

/// Capture options for run_scenario — the open-ended replacement for the
/// old run_scenario(cfg) / run_scenario(cfg, TraceDump*) overload pair:
/// new capture surfaces extend this struct instead of multiplying
/// overloads. Any requested capture enables the trace ring (and sampler)
/// at generous defaults when the config left them off.
struct RunCapture {
  /// Capture the run's trace: single-host runs fill it with the host's
  /// timeline; cluster runs with host 0's.
  TraceDump* dump = nullptr;
  /// Cluster runs only: resized to n_hosts and filled with one TraceDump
  /// per host (host 0's entry equals what *dump receives).
  std::vector<TraceDump>* host_dumps = nullptr;
};

/// Run one scenario, capturing whatever `capture` asks for.
RunResult run_scenario(const ScenarioConfig& cfg, const RunCapture& capture);

/// Back-compat wrapper: run with no capture.
inline RunResult run_scenario(const ScenarioConfig& cfg) {
  return run_scenario(cfg, RunCapture{});
}

/// Back-compat wrapper for the old dump overload (ignored when null).
inline RunResult run_scenario(const ScenarioConfig& cfg, TraceDump* dump) {
  return run_scenario(cfg, RunCapture{.dump = dump});
}

/// Average `n_seeds` runs whose seeds are derive_seed(cfg.seed, i) (the
/// paper averages 5 runs). Runs execute on the parallel sweep pool (see
/// src/exp/sweep.h) and the result is bit-identical to averaging n_seeds
/// serial run_scenario calls over the same derived seeds.
RunResult run_averaged(ScenarioConfig cfg, int n_seeds);

/// Makespan improvement of `x` over `base`, percent (Fig. 5/6 metric).
double improvement_pct(const RunResult& base, const RunResult& x);

/// Weighted speedup of fg+bg vs. baseline, percent (Fig. 7/9 metric: 100 =
/// parity with vanilla Xen/Linux).
double weighted_speedup_pct(const RunResult& base, const RunResult& x);

/// Number of seeds per data point, honouring the IRS_BENCH_SEEDS and
/// IRS_BENCH_FAST environment variables (default 3).
int bench_seeds();

}  // namespace irs::exp
