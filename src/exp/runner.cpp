#include "src/exp/runner.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "src/cluster/cluster.h"
#include "src/exp/sweep.h"
#include "src/wl/frontend.h"
#include "src/wl/registry.h"
#include "src/wl/server.h"

namespace irs::exp {

namespace {

/// Pin vCPU i of a VM with n vCPUs to pCPU i.
std::vector<hv::PcpuId> identity_pins(int n) {
  std::vector<hv::PcpuId> pins;
  for (int i = 0; i < n; ++i) pins.push_back(i);
  return pins;
}

/// Foreground workload options shared by the single-host and cluster paths.
wl::WorkloadOptions fg_options(const ScenarioConfig& cfg) {
  wl::WorkloadOptions fg_opts;
  fg_opts.n_threads = cfg.fg_threads;
  fg_opts.npb_spinning = cfg.npb_spinning;
  fg_opts.work_scale = cfg.work_scale;
  fg_opts.server_duration = cfg.server_duration;
  fg_opts.jbb_cs_len = cfg.jbb_cs_len;
  fg_opts.jbb_cs_every = cfg.jbb_cs_every;
  fg_opts.jbb_cs_spin = cfg.jbb_cs_spin;
  fg_opts.fe_arrival = cfg.fe_arrival;
  fg_opts.fe_rate_hz = cfg.fe_rate_hz;
  fg_opts.fe_overload = cfg.fe_overload;
  fg_opts.fe_queue_cap = cfg.fe_queue_cap;
  fg_opts.fe_keepalive = cfg.fe_keepalive;
  return fg_opts;
}

/// Windowed SLO tracking (server workloads; passive, so the simulation is
/// unperturbed). slo_window < 0 disables; 0 means the 30 ms default.
void enable_slo_if_server(const ScenarioConfig& cfg, wl::Workload& fg_wl) {
  if (cfg.slo_window < 0) return;
  const sim::Duration w =
      cfg.slo_window > 0 ? cfg.slo_window : obs::SloTracker::kDefaultWindow;
  if (auto* jbb = dynamic_cast<wl::JbbWorkload*>(&fg_wl)) {
    jbb->enable_slo(w);
  } else if (auto* ab = dynamic_cast<wl::AbWorkload*>(&fg_wl)) {
    ab->enable_slo(w);
  } else if (auto* fe = dynamic_cast<wl::FrontendWorkload*>(&fg_wl)) {
    fe->enable_slo(w);
  }
}

/// Server metrics if the foreground was a server workload: throughput, the
/// latency tail (p99 and the exact p999 fig_cluster compares), the SLO
/// capture, and — front-end only — the conservation ledger.
void extract_server_metrics(wl::Workload& fg_wl, sim::Time now, RunResult* r) {
  if (auto* jbb = dynamic_cast<wl::JbbWorkload*>(&fg_wl)) {
    r->throughput = jbb->throughput();
    r->lat_mean = jbb->latency().mean();
    r->lat_p99 = jbb->latency().percentile(99.0);
    r->lat_p999 = jbb->latency().percentile(99.9);
    r->slo = jbb->slo_result(now);
  } else if (auto* ab = dynamic_cast<wl::AbWorkload*>(&fg_wl)) {
    r->throughput = ab->throughput();
    r->lat_mean = ab->latency().mean();
    r->lat_p99 = ab->latency().percentile(99.0);
    r->lat_p999 = ab->latency().percentile(99.9);
    r->slo = ab->slo_result(now);
  } else if (auto* fe = dynamic_cast<wl::FrontendWorkload*>(&fg_wl)) {
    r->throughput = fe->throughput();
    r->lat_mean = fe->latency().mean();
    r->lat_p99 = fe->latency().percentile(99.0);
    r->lat_p999 = fe->latency().percentile(99.9);
    r->slo = fe->slo_result(now);
    r->frontend = fe->frontend_result();
  }
  r->slo_digest = r->slo.digest();
  r->frontend_digest = r->frontend.digest();
}

/// Fill a TraceDump from one host node (cluster path; the single-host path
/// keeps its own fill because forensics interleaves request spans there).
void fill_node_dump(core::HostNode& node, const std::string& title,
                    int n_pcpus, TraceDump* dump) {
  sim::Trace& trace = node.host().trace();
  dump->records = trace.snapshot();  // flushes all staging buffers
  obs::TraceMeta meta;
  meta.title = title;
  meta.n_pcpus = n_pcpus;
  for (int vm_i = 0; vm_i < node.host().n_vms(); ++vm_i) {
    const hv::Vm& vm = node.host().vm(vm_i);
    int idx = 0;
    for (const hv::Vcpu* v : vm.vcpus()) {
      meta.vcpus.push_back(obs::VcpuInfo{v->id(), vm.name(), idx++});
    }
    guest::GuestKernel& k = node.kernel(vm_i);
    for (std::size_t t = 0; t < k.n_tasks(); ++t) {
      meta.tasks.push_back(
          obs::TaskInfo{k.task(t).id(), vm.name(), k.task(t).name()});
    }
  }
  meta.start = node.started_at();
  meta.end = node.engine().now();
  meta.dropped = trace.dropped();
  meta.total_recorded = trace.total_recorded();
  dump->meta = std::move(meta);
  if (obs::Sampler* smp = node.sampler()) dump->series = smp->dump();
}

/// The classic single-host run (cfg.cluster.n_hosts < 2).
RunResult run_single(const ScenarioConfig& cfg, const RunCapture& capture) {
  TraceDump* dump = capture.dump;
  core::WorldConfig wc;
  wc.n_pcpus = cfg.n_pcpus;
  wc.strategy = cfg.strategy;
  wc.seed = cfg.seed;
  wc.hv = cfg.hv;
  wc.telemetry() = cfg.telemetry();
  wc.queue = cfg.queue;
  if (dump != nullptr && wc.trace_capacity == 0) wc.trace_capacity = 1 << 16;
  // Forensics replays the scheduler trace around every request span, so it
  // needs the ring on — and roomy, so the scheduler evidence around early
  // spans survives to analysis (spans themselves live in a side log).
  if (cfg.forensics && wc.trace_capacity == 0) wc.trace_capacity = 1 << 18;
  if (dump != nullptr && wc.sample_period == 0) {
    wc.sample_period = obs::Sampler::kDefaultPeriod;
  }
  core::World world(wc);

  // Foreground VM.
  hv::VmConfig fg_vm;
  fg_vm.name = "fg";
  fg_vm.n_vcpus = cfg.n_vcpus;
  if (cfg.pinned) fg_vm.pin_map = identity_pins(cfg.n_vcpus);
  const hv::VmId fg = world.add_vm(fg_vm, /*irs_capable=*/true, cfg.fg_guest);

  wl::Workload& fg_wl =
      world.attach(fg, wl::make_workload(cfg.fg, fg_options(cfg)));

  enable_slo_if_server(cfg, fg_wl);
  if (cfg.forensics) {
    if (auto* jbb = dynamic_cast<wl::JbbWorkload*>(&fg_wl)) {
      jbb->enable_request_spans();
    } else if (auto* ab = dynamic_cast<wl::AbWorkload*>(&fg_wl)) {
      ab->enable_request_spans();
    } else if (auto* fe = dynamic_cast<wl::FrontendWorkload*>(&fg_wl)) {
      fe->enable_request_spans();
    }
  }

  // Interfering VM(s): n_inter vCPUs pinned to pCPUs 0..n_inter-1, running
  // either CPU hogs or an endless real application (paper §5.1).
  std::vector<hv::VmId> bgs;
  if (!cfg.bg.empty() && cfg.n_inter > 0) {
    for (int i = 0; i < cfg.n_bg_vms; ++i) {
      hv::VmConfig bg_vm;
      bg_vm.name = "bg" + std::to_string(i);
      bg_vm.n_vcpus = cfg.n_inter;
      if (cfg.pinned) bg_vm.pin_map = identity_pins(cfg.n_inter);
      const hv::VmId bg = world.add_vm(bg_vm, /*irs_capable=*/false);
      wl::WorkloadOptions bg_opts;
      bg_opts.n_threads = cfg.n_inter;
      bg_opts.endless = true;
      bg_opts.npb_spinning = cfg.npb_spinning;
      world.attach(bg, wl::make_workload(cfg.bg, bg_opts));
      bgs.push_back(bg);
    }
  }

  world.start();
  RunResult r;
  r.finished = world.run_until_finished(fg, cfg.timeout);

  const core::VmMetrics fgm = world.vm_metrics(fg);
  r.fg_makespan = fgm.makespan >= 0 ? fgm.makespan : fgm.elapsed;
  r.fg_util_vs_fair = fgm.util_vs_fair();
  r.fg_efficiency = fgm.efficiency_vs_fair();
  if (!bgs.empty()) {
    double rate = 0;
    for (const hv::VmId bg : bgs) {
      const core::VmMetrics bgm = world.vm_metrics(bg);
      rate += bgm.progress / sim::to_sec(std::max<sim::Duration>(1, bgm.elapsed));
    }
    r.bg_progress_rate = rate;
  }

  extract_server_metrics(fg_wl, world.engine().now(), &r);

  const hv::SchedStats& ss = world.host().sched_stats();
  r.lhp = ss.lhp_events;
  r.lwp = ss.lwp_events;
  r.irs_migrations = world.kernel(fg).stats().irs_migrations;
  const hv::StrategyStats& st = world.host().strategy_stats();
  r.sa_sent = st.sa_sent;
  r.sa_acked = st.sa_acked;
  const std::uint64_t completed = st.sa_acked + st.sa_forced;
  r.sa_delay_avg = completed > 0
                       ? st.sa_delay_total / static_cast<sim::Duration>(completed)
                       : 0;
  if (obs::Sampler* smp = world.sampler()) {
    r.sampler_digest = smp->digest();
  }
  {
    sim::Trace& trace = world.host().trace();
    if (trace.enabled()) trace.flush_buffers();  // count the staged tail too
    r.trace_dropped = trace.dropped();
    r.trace_total_recorded = trace.total_recorded();
  }

  if (dump != nullptr || (cfg.forensics && cfg.forensics_analyze)) {
    sim::Trace& trace = world.host().trace();
    std::vector<sim::TraceRecord> records =
        trace.snapshot();  // flushes all staging buffers
    obs::TraceMeta meta;
    meta.title = cfg.fg + (cfg.bg.empty() ? "" : "+" + cfg.bg) + " [" +
                 core::strategy_name(cfg.strategy) + "]";
    meta.n_pcpus = cfg.n_pcpus;
    for (int vm_i = 0; vm_i < world.host().n_vms(); ++vm_i) {
      const hv::Vm& vm = world.host().vm(vm_i);
      int idx = 0;
      for (const hv::Vcpu* v : vm.vcpus()) {
        meta.vcpus.push_back(obs::VcpuInfo{v->id(), vm.name(), idx++});
      }
      guest::GuestKernel& k = world.kernel(vm_i);
      for (std::size_t t = 0; t < k.n_tasks(); ++t) {
        meta.tasks.push_back(
            obs::TaskInfo{k.task(t).id(), vm.name(), k.task(t).name()});
      }
    }
    meta.start = world.started_at();
    meta.end = world.engine().now();
    meta.dropped = trace.dropped();
    meta.total_recorded = trace.total_recorded();
    if (cfg.forensics) {
      // Request spans were captured in the workload's side log, not the
      // ring; synthesize their kReqBegin/kReqEnd records into the snapshot
      // so the analyzer and the exporters see one interleaved stream.
      const std::vector<obs::ReqSpan>* spans = nullptr;
      if (auto* jbb = dynamic_cast<wl::JbbWorkload*>(&fg_wl)) {
        spans = &jbb->request_spans();
      } else if (auto* ab = dynamic_cast<wl::AbWorkload*>(&fg_wl)) {
        spans = &ab->request_spans();
      } else if (auto* fe = dynamic_cast<wl::FrontendWorkload*>(&fg_wl)) {
        spans = &fe->request_spans();
      }
      if (spans != nullptr && !spans->empty()) {
        records =
            obs::with_request_spans(records, *spans, meta.total_recorded);
      }
    }
    if (cfg.forensics && cfg.forensics_analyze) {
      r.forensics = obs::request_forensics(records, meta, r.slo);
      r.forensics_digest = r.forensics.digest();
    }
    if (dump != nullptr) {
      dump->records = std::move(records);
      dump->meta = std::move(meta);
      if (obs::Sampler* smp = world.sampler()) {
        dump->series = smp->dump();
      }
      dump->slo = r.slo;
      dump->forensics = r.forensics;
    }
  }
  return r;
}

/// The cluster run (cfg.cluster.n_hosts >= 2): the foreground VM fixed on
/// host 0 and marked protected, every interfering VM a migratable gated-hog
/// VM the placement policy admits. Forensics is a single-host feature and
/// is ignored here; everything else folds across hosts (counters add,
/// sampler digests XOR).
RunResult run_cluster(const ScenarioConfig& cfg, const RunCapture& capture) {
  cluster::ClusterConfig cc;
  cc.n_hosts = cfg.cluster.n_hosts;
  cc.n_pcpus = cfg.n_pcpus;
  cc.hv = cfg.hv;
  cc.strategy = cfg.strategy;
  cc.seed = cfg.seed;
  cc.telemetry = cfg.telemetry();
  cc.queue = cfg.queue;
  if (!cluster::policy_from_name(cfg.cluster.policy, &cc.policy)) {
    throw std::invalid_argument("run_scenario: unknown cluster policy '" +
                                cfg.cluster.policy +
                                "' (want random|firstfit|irs)");
  }
  cc.collect_period = cfg.cluster.collect_period;
  cc.decide_period = cfg.cluster.decide_period;
  cc.migration.downtime = cfg.cluster.migration_downtime;
  cc.migration.warmup_debt = cfg.cluster.warmup_debt;
  cc.burn_frac = cfg.cluster.burn_frac;
  cc.cooldown = cfg.cluster.cooldown;
  const bool want_dump =
      capture.dump != nullptr || capture.host_dumps != nullptr;
  if (want_dump && cc.telemetry.trace_capacity == 0) {
    cc.telemetry.trace_capacity = 1 << 16;
  }
  if (want_dump && cc.telemetry.sample_period == 0) {
    cc.telemetry.sample_period = obs::Sampler::kDefaultPeriod;
  }
  cluster::Cluster cl(cc);

  // Foreground VM: fixed on host 0 and protected — the kIrs policy defends
  // its SLO budget by evicting noisy co-tenants from host 0.
  hv::VmConfig fg_vm;
  fg_vm.name = "fg";
  fg_vm.n_vcpus = cfg.n_vcpus;
  if (cfg.pinned) fg_vm.pin_map = identity_pins(cfg.n_vcpus);
  const cluster::CvmId fg =
      cl.add_vm(0, fg_vm, /*irs_capable=*/true, cfg.fg_guest);
  cl.set_protected(fg);
  wl::Workload& fg_wl =
      cl.attach(fg, wl::make_workload(cfg.fg, fg_options(cfg)));
  enable_slo_if_server(cfg, fg_wl);

  // Interference: n_bg_vms migratable hog VMs, n_inter vCPUs/hogs each.
  if (!cfg.bg.empty() && cfg.n_inter > 0) {
    for (int i = 0; i < cfg.n_bg_vms; ++i) {
      cl.add_migratable_hog("bg" + std::to_string(i), cfg.n_inter,
                            cfg.n_inter);
    }
  }

  cl.start();
  RunResult r;
  r.finished = cl.run_until_finished(fg, cfg.timeout);

  const core::VmMetrics fgm = cl.vm_metrics(fg);
  r.fg_makespan = fgm.makespan >= 0 ? fgm.makespan : fgm.elapsed;
  r.fg_util_vs_fair = fgm.util_vs_fair();
  r.fg_efficiency = fgm.efficiency_vs_fair();
  // bg_progress_rate stays 0: hogs report no work units (same as the
  // single-host hog runs).

  extract_server_metrics(fg_wl, cl.engine().now(), &r);

  r.irs_migrations = cl.kernel(fg).stats().irs_migrations;
  std::uint64_t sa_completed = 0;
  sim::Duration sa_delay_total = 0;
  for (int h = 0; h < cl.n_hosts(); ++h) {
    core::HostNode& node = cl.node(h);
    const hv::SchedStats& ss = node.host().sched_stats();
    r.lhp += ss.lhp_events;
    r.lwp += ss.lwp_events;
    const hv::StrategyStats& st = node.host().strategy_stats();
    r.sa_sent += st.sa_sent;
    r.sa_acked += st.sa_acked;
    sa_completed += st.sa_acked + st.sa_forced;
    sa_delay_total += st.sa_delay_total;
    if (obs::Sampler* smp = node.sampler()) {
      r.sampler_digest ^= smp->digest();
    }
    sim::Trace& trace = node.host().trace();
    if (trace.enabled()) trace.flush_buffers();
    r.trace_dropped += trace.dropped();
    r.trace_total_recorded += trace.total_recorded();
  }
  r.sa_delay_avg =
      sa_completed > 0
          ? sa_delay_total / static_cast<sim::Duration>(sa_completed)
          : 0;

  r.cluster = cl.result();
  r.cluster_digest = r.cluster.digest();

  if (want_dump) {
    const std::string title =
        cfg.fg + "+hog [" + core::strategy_name(cfg.strategy) + ", " +
        cluster::policy_name(cc.policy) + "]";
    const auto n = static_cast<std::size_t>(cl.n_hosts());
    if (capture.host_dumps != nullptr) {
      capture.host_dumps->assign(n, TraceDump{});
      for (std::size_t h = 0; h < n; ++h) {
        core::HostNode& node = cl.node(static_cast<int>(h));
        fill_node_dump(node, title + " " + node.name(), cfg.n_pcpus,
                       &(*capture.host_dumps)[h]);
      }
      (*capture.host_dumps)[0].slo = r.slo;
      if (capture.dump != nullptr) *capture.dump = (*capture.host_dumps)[0];
    } else if (capture.dump != nullptr) {
      fill_node_dump(cl.node(0), title + " " + cl.node(0).name(),
                     cfg.n_pcpus, capture.dump);
      capture.dump->slo = r.slo;
    }
  }
  return r;
}

}  // namespace

bool results_identical(const RunResult& a, const RunResult& b) {
  return a.finished == b.finished && a.fg_makespan == b.fg_makespan &&
         a.fg_util_vs_fair == b.fg_util_vs_fair &&
         a.fg_efficiency == b.fg_efficiency &&
         a.bg_progress_rate == b.bg_progress_rate &&
         a.throughput == b.throughput && a.lat_mean == b.lat_mean &&
         a.lat_p99 == b.lat_p99 && a.lat_p999 == b.lat_p999 &&
         a.lhp == b.lhp && a.lwp == b.lwp &&
         a.irs_migrations == b.irs_migrations && a.sa_sent == b.sa_sent &&
         a.sa_acked == b.sa_acked && a.sa_delay_avg == b.sa_delay_avg &&
         a.sampler_digest == b.sampler_digest &&
         a.trace_dropped == b.trace_dropped &&
         a.trace_total_recorded == b.trace_total_recorded &&
         a.slo == b.slo && a.slo_digest == b.slo_digest &&
         a.forensics == b.forensics &&
         a.forensics_digest == b.forensics_digest &&
         a.frontend == b.frontend && a.frontend_digest == b.frontend_digest &&
         a.cluster == b.cluster && a.cluster_digest == b.cluster_digest;
}

RunResult run_scenario(const ScenarioConfig& cfg, const RunCapture& capture) {
  if (cfg.cluster.n_hosts >= 2) return run_cluster(cfg, capture);
  return run_single(cfg, capture);
}

RunResult run_averaged(ScenarioConfig cfg, int n_seeds) {
  return average_results(run_sweep(seed_grid(cfg, n_seeds)));
}

double improvement_pct(const RunResult& base, const RunResult& x) {
  return core::improvement_pct(static_cast<double>(base.fg_makespan),
                               static_cast<double>(x.fg_makespan));
}

double weighted_speedup_pct(const RunResult& base, const RunResult& x) {
  const double fg_speedup =
      x.fg_makespan > 0 ? static_cast<double>(base.fg_makespan) /
                              static_cast<double>(x.fg_makespan)
                        : 0.0;
  const double bg_speedup =
      base.bg_progress_rate > 0 ? x.bg_progress_rate / base.bg_progress_rate
                                : 1.0;
  return 0.5 * (fg_speedup + bg_speedup) * 100.0;
}

int bench_seeds() {
  if (const char* s = std::getenv("IRS_BENCH_SEEDS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  if (std::getenv("IRS_BENCH_FAST") != nullptr) return 1;
  return 2;
}

}  // namespace irs::exp
