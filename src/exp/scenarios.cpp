#include "src/exp/scenarios.h"

#include <memory>

#include "src/wl/hog.h"
#include "src/wl/registry.h"

namespace irs::exp {

double fig1a_slowdown(const std::string& app, std::uint64_t seed) {
  ScenarioConfig alone;
  alone.fg = app;
  alone.bg = "";  // no interference
  alone.seed = seed;
  const RunResult base = run_scenario(alone);

  ScenarioConfig interfered = alone;
  interfered.bg = "hog";
  interfered.n_inter = 1;
  const RunResult r = run_scenario(interfered);
  if (base.fg_makespan <= 0) return 0;
  return static_cast<double>(r.fg_makespan) /
         static_cast<double>(base.fg_makespan);
}

MigrationLatencyResult fig1b_migration_latency(int n_colocated_vms,
                                               int samples,
                                               std::uint64_t seed) {
  core::WorldConfig wc;
  wc.n_pcpus = 4;
  wc.strategy = core::Strategy::kBaseline;
  wc.seed = seed;
  core::World world(wc);

  hv::VmConfig fg_cfg;
  fg_cfg.name = "fg";
  fg_cfg.n_vcpus = 4;
  fg_cfg.pin_map = {0, 1, 2, 3};
  const hv::VmId fg = world.add_vm(fg_cfg, false);
  // The process to migrate: a CPU-bound task that starts on vCPU 0 (the
  // contended one). It never blocks, so it stays "current" there and the
  // only way to move it is the stop-based migration path.
  world.attach(fg, std::make_unique<wl::HogWorkload>(1));

  for (int i = 0; i < n_colocated_vms; ++i) {
    hv::VmConfig bg_cfg;
    bg_cfg.name = "bg" + std::to_string(i);
    bg_cfg.n_vcpus = 1;
    bg_cfg.pin_map = {0};  // all interference shares pCPU 0 with vCPU 0
    const hv::VmId bg = world.add_vm(bg_cfg, false);
    world.attach(bg, std::make_unique<wl::HogWorkload>(1));
  }

  world.start();
  world.run_for(sim::milliseconds(100));  // settle

  guest::GuestKernel& k = world.kernel(fg);
  guest::Task& victim = k.task(0);

  MigrationLatencyResult result;
  double total_ms = 0;
  for (int i = 0; i < samples; ++i) {
    // Let the system run a pseudo-random amount so requests land at
    // arbitrary phases of the 30 ms scheduling pattern.
    world.run_for(sim::milliseconds(17) + (i * 7919) % 23 * sim::kMillisecond);
    sim::Duration measured = -1;
    k.cpu(0).request_stop_migration(victim, 1,
                                    [&](sim::Duration d) { measured = d; });
    // Run until the callback fires.
    world.engine().run_while([&]() { return measured < 0; });
    total_ms += sim::to_ms(measured);
    result.max_ms = std::max(result.max_ms, sim::to_ms(measured));
    ++result.samples;
    // Move the task back to vCPU 0 (from the quiet side this is fast).
    sim::Duration back = -1;
    k.cpu(victim.cpu())
        .request_stop_migration(victim, 0, [&](sim::Duration d) { back = d; });
    world.engine().run_while([&]() { return back < 0; });
  }
  result.mean_ms = total_ms / std::max(1, result.samples);
  return result;
}

}  // namespace irs::exp
