// Plain-text table rendering for the benchmark binaries: each bench prints
// the same rows/series the corresponding paper figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/obs/attribution.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/sim/time.h"

namespace irs::exp {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV: header row then data rows; cells containing a comma,
  /// quote, or newline are double-quoted with quotes doubled.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "+12.3%" / "-4.5%"
std::string fmt_pct(double pct);
/// "12.34" with the given precision.
std::string fmt_f(double v, int prec = 2);
/// Milliseconds with two decimals: "26.40ms".
std::string fmt_ms(sim::Duration d);
/// Microseconds with one decimal: "23.4us".
std::string fmt_us(sim::Duration d);

/// Print a figure banner ("=== Figure 5(a): ... ===").
void banner(std::ostream& os, const std::string& title);

/// Stable JSON rendering of a RunResult: one object, fixed key order,
/// durations in nanoseconds as integers, doubles in shortest round-trip
/// form (so result_from_json recovers the exact bits). The machine-readable
/// sibling of the text tables — sweeps stream one object per run.
std::string result_json(const RunResult& r);

/// Append the result_json fields (same keys, same order) to an object that
/// is already open on `w`. Lets callers prefix extra fields (the sharded
/// sweeps prepend the global run index) while keeping one field list.
void result_json_fields(obs::JsonWriter& w, const RunResult& r);

/// Inverse of result_json over a parsed object: every field is required and
/// type-checked, unknown keys are ignored. On failure returns false and
/// names the offending field in *err (when non-null).
bool result_from_value(const obs::JsonValue& v, RunResult* r,
                       std::string* err);

/// Parse one result_json document. result_json(parsed) reproduces the
/// input byte-for-byte, and the parsed result is bit-identical to the one
/// that was serialized (round-trip doubles).
bool result_from_json(const std::string& json, RunResult* r,
                      std::string* err);

/// JSON for a whole sweep: {"results": [result_json...]} with the input
/// order preserved.
std::string sweep_json(const std::vector<RunResult>& rs);

/// Streaming NDJSON sink over run_sweep's in-order consumer overload: one
/// result_json object per line, flushed per run so a killed sweep leaves a
/// readable prefix. `out` must outlive the sweep.
SweepConsumer ndjson_consumer(std::ostream& out);

/// Per-task interference breakdown as a fixed-width table: one row per
/// charged task (largest first) plus totals, coverage, and an explicit
/// truncation note when the trace ring wrapped.
void print_attribution(std::ostream& os, const obs::AttributionResult& a);

/// Stable JSON rendering of an AttributionResult (fixed key order,
/// durations in nanoseconds).
std::string attribution_json(const obs::AttributionResult& a);

}  // namespace irs::exp
