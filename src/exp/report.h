// Plain-text table rendering for the benchmark binaries: each bench prints
// the same rows/series the corresponding paper figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/obs/attribution.h"
#include "src/sim/time.h"

namespace irs::exp {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "+12.3%" / "-4.5%"
std::string fmt_pct(double pct);
/// "12.34" with the given precision.
std::string fmt_f(double v, int prec = 2);
/// Milliseconds with two decimals: "26.40ms".
std::string fmt_ms(sim::Duration d);
/// Microseconds with one decimal: "23.4us".
std::string fmt_us(sim::Duration d);

/// Print a figure banner ("=== Figure 5(a): ... ===").
void banner(std::ostream& os, const std::string& title);

/// Stable JSON rendering of a RunResult: one object, fixed key order,
/// durations in nanoseconds as integers. The machine-readable sibling of
/// the text tables — sweeps stream one object per run.
std::string result_json(const RunResult& r);

/// JSON for a whole sweep: {"results": [result_json...]} with the input
/// order preserved.
std::string sweep_json(const std::vector<RunResult>& rs);

/// Streaming NDJSON sink over run_sweep's in-order consumer overload: one
/// result_json object per line, flushed per run so a killed sweep leaves a
/// readable prefix. `out` must outlive the sweep.
SweepConsumer ndjson_consumer(std::ostream& out);

/// Per-task interference breakdown as a fixed-width table: one row per
/// charged task (largest first) plus totals, coverage, and an explicit
/// truncation note when the trace ring wrapped.
void print_attribution(std::ostream& os, const obs::AttributionResult& a);

/// Stable JSON rendering of an AttributionResult (fixed key order,
/// durations in nanoseconds).
std::string attribution_json(const obs::AttributionResult& a);

}  // namespace irs::exp
