// Plain-text table rendering for the benchmark binaries: each bench prints
// the same rows/series the corresponding paper figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/exp/runner.h"
#include "src/sim/time.h"

namespace irs::exp {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "+12.3%" / "-4.5%"
std::string fmt_pct(double pct);
/// "12.34" with the given precision.
std::string fmt_f(double v, int prec = 2);
/// Milliseconds with two decimals: "26.40ms".
std::string fmt_ms(sim::Duration d);
/// Microseconds with one decimal: "23.4us".
std::string fmt_us(sim::Duration d);

/// Print a figure banner ("=== Figure 5(a): ... ===").
void banner(std::ostream& os, const std::string& title);

/// Stable JSON rendering of a RunResult: one object, fixed key order,
/// durations in nanoseconds as integers. The machine-readable sibling of
/// the text tables — sweeps stream one object per run.
std::string result_json(const RunResult& r);

/// JSON for a whole sweep: {"results": [result_json...]} with the input
/// order preserved.
std::string sweep_json(const std::vector<RunResult>& rs);

}  // namespace irs::exp
