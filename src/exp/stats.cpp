#include "src/exp/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>

#include "src/exp/report.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"

namespace irs::exp {

// ---------------------------------------------------------------------------
// StatAccumulator
// ---------------------------------------------------------------------------

int StatAccumulator::bucket_key(double v) {
  if (v == 0.0 || std::isnan(v)) return 0;
  const bool neg = v < 0.0;
  const double a = neg ? -v : v;
  // For positive doubles the bit pattern is order-preserving; dropping the
  // low 47 bits keeps the exponent plus the top 5 mantissa bits — buckets
  // with ~3 % relative width. +1 keeps the smallest positives distinct
  // from the zero bucket.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(a);
  const int k = static_cast<int>(bits >> 47) + 1;
  return neg ? -k : k;
}

double StatAccumulator::bucket_value(int key) {
  if (key == 0) return 0.0;
  const bool neg = key < 0;
  const std::uint64_t seg = static_cast<std::uint64_t>((neg ? -key : key) - 1);
  // Midpoint of the truncated 47-bit mantissa segment.
  const std::uint64_t bits = (seg << 47) | (std::uint64_t{1} << 46);
  const double v = std::bit_cast<double>(bits);
  return neg ? -v : v;
}

void StatAccumulator::add(double v) {
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double d = v - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (v - mean_);
  ++buckets_[bucket_key(v)];
}

double StatAccumulator::stddev() const {
  if (n_ == 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

double StatAccumulator::percentile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Nearest-rank: the smallest value whose cumulative count covers rank k.
  const auto k = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n_)));
  const std::uint64_t rank = std::max<std::uint64_t>(k, 1);
  std::uint64_t cum = 0;
  for (const auto& [key, cnt] : buckets_) {
    cum += cnt;
    if (cum >= rank) {
      // Clamp the bucket representative into the observed range so the
      // sketch never reports beyond the exact extremes.
      return std::clamp(bucket_value(key), min_, max_);
    }
  }
  return max_;  // unreachable: bucket counts sum to n_
}

void StatAccumulator::merge(const StatAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  // Chan et al. parallel combine of (n, mean, M2).
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double d = o.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += d * (nb / n_total);
  m2_ += o.m2_ + d * d * (na * nb / n_total);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  for (const auto& [key, cnt] : o.buckets_) buckets_[key] += cnt;
}

// ---------------------------------------------------------------------------
// SweepStats
// ---------------------------------------------------------------------------

namespace {

struct MetricDef {
  const char* name;
  double (*get)(const RunResult&);
};

/// One entry per scalar result_json field, in field order.
constexpr MetricDef kMetrics[] = {
    {"fg_makespan_ns",
     [](const RunResult& r) { return static_cast<double>(r.fg_makespan); }},
    {"fg_util_vs_fair", [](const RunResult& r) { return r.fg_util_vs_fair; }},
    {"fg_efficiency", [](const RunResult& r) { return r.fg_efficiency; }},
    {"bg_progress_rate",
     [](const RunResult& r) { return r.bg_progress_rate; }},
    {"throughput", [](const RunResult& r) { return r.throughput; }},
    {"lat_mean_ns",
     [](const RunResult& r) { return static_cast<double>(r.lat_mean); }},
    {"lat_p99_ns",
     [](const RunResult& r) { return static_cast<double>(r.lat_p99); }},
    {"lat_p999_ns",
     [](const RunResult& r) { return static_cast<double>(r.lat_p999); }},
    {"lhp", [](const RunResult& r) { return static_cast<double>(r.lhp); }},
    {"lwp", [](const RunResult& r) { return static_cast<double>(r.lwp); }},
    {"irs_migrations",
     [](const RunResult& r) { return static_cast<double>(r.irs_migrations); }},
    {"sa_sent",
     [](const RunResult& r) { return static_cast<double>(r.sa_sent); }},
    {"sa_acked",
     [](const RunResult& r) { return static_cast<double>(r.sa_acked); }},
    {"sa_delay_avg_ns",
     [](const RunResult& r) { return static_cast<double>(r.sa_delay_avg); }},
};
constexpr std::size_t kNMetrics = std::size(kMetrics);

}  // namespace

const std::vector<std::string>& SweepStats::metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    v.reserve(kNMetrics);
    for (const MetricDef& m : kMetrics) v.emplace_back(m.name);
    return v;
  }();
  return names;
}

void SweepStats::add(const RunResult& r) {
  if (acc_.empty()) acc_.resize(kNMetrics);
  ++runs_;
  if (r.finished) ++finished_;
  for (std::size_t i = 0; i < kNMetrics; ++i) acc_[i].add(kMetrics[i].get(r));
  slo_digest_xor_ ^= r.slo_digest;
  fold_slo(slo_, r.slo);
  forensics_digest_xor_ ^= r.forensics_digest;
  obs::fold_forensics(forensics_, r.forensics);
  frontend_digest_xor_ ^= r.frontend_digest;
  obs::fold_frontend(frontend_, r.frontend);
  cluster_digest_xor_ ^= r.cluster_digest;
  obs::fold_cluster(cluster_, r.cluster);
}

void fold_slo(obs::SloResult& acc, const obs::SloResult& r) {
  if (r.empty()) return;
  if (acc.empty()) {
    acc = r;
    return;
  }
  for (const obs::SloClassResult& c : r.classes) {
    obs::SloClassResult* dst = nullptr;
    for (obs::SloClassResult& d : acc.classes) {
      if (d.name == c.name) {
        dst = &d;
        break;
      }
    }
    if (dst == nullptr) {
      acc.classes.push_back(c);
      continue;
    }
    dst->total.merge(c.total);
    for (const obs::SloWindow& w : c.windows) {
      obs::SloWindow* dw = nullptr;
      for (obs::SloWindow& x : dst->windows) {
        if (x.index == w.index) {
          dw = &x;
          break;
        }
      }
      if (dw == nullptr) {
        dst->windows.push_back(w);
      } else {
        dw->count += w.count;
        dw->violations += w.violations;
        dw->p50 = std::max(dw->p50, w.p50);
        dw->p99 = std::max(dw->p99, w.p99);
        dw->p999 = std::max(dw->p999, w.p999);
      }
    }
    std::sort(dst->windows.begin(), dst->windows.end(),
              [](const obs::SloWindow& a, const obs::SloWindow& b) {
                return a.index < b.index;
              });
  }
}

const StatAccumulator& SweepStats::metric(std::size_t i) const {
  static const StatAccumulator kEmpty;
  if (acc_.empty() || i >= acc_.size()) return kEmpty;
  return acc_[i];
}

std::string sweep_stats_json(const SweepStats& s) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  w.begin_object();
  w.field("runs", s.runs());
  w.field("finished", s.finished());
  w.key("metrics");
  w.begin_object();
  for (std::size_t i = 0; i < kNMetrics; ++i) {
    const StatAccumulator& a = s.metric(i);
    w.key(kMetrics[i].name);
    w.begin_object();
    w.field("count", a.count());
    w.field("mean", a.mean());
    w.field("stddev", a.stddev());
    w.field("min", a.min());
    w.field("max", a.max());
    w.field("p50", a.percentile(50));
    w.field("p90", a.percentile(90));
    w.field("p99", a.percentile(99));
    w.end_object();
  }
  w.end_object();
  if (!s.slo().empty()) {
    const obs::SloResult& slo = s.slo();
    w.key("slo");
    w.begin_object();
    w.field("digest_xor", s.slo_digest_xor());
    w.field("window_ns", static_cast<std::int64_t>(slo.window));
    w.key("classes");
    w.begin_array();
    for (const obs::SloClassResult& c : slo.classes) {
      w.begin_object();
      w.field("name", c.name);
      w.field("threshold_ns", static_cast<std::int64_t>(c.spec.threshold));
      w.field("objective", c.spec.objective);
      w.field("count", c.total.count());
      w.field("violations", c.violations());
      w.field("mean_ns", static_cast<std::int64_t>(c.total.mean()));
      w.field("p50_ns", static_cast<std::int64_t>(c.total.percentile(50)));
      w.field("p99_ns", static_cast<std::int64_t>(c.total.percentile(99)));
      w.field("p999_ns",
              static_cast<std::int64_t>(c.total.percentile(99.9)));
      w.field("max_ns", static_cast<std::int64_t>(c.total.max()));
      w.field("windows", c.windows.size());
      w.field("hist_digest", c.total.digest());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (!s.forensics().empty()) {
    const obs::ForensicsResult& fz = s.forensics();
    w.key("forensics");
    w.begin_object();
    w.field("digest_xor", s.forensics_digest_xor());
    w.field("window_ns", static_cast<std::int64_t>(fz.window));
    w.key("classes");
    w.begin_array();
    for (const obs::ForensicsClassResult& c : fz.classes) {
      w.begin_object();
      w.field("name", c.name);
      w.field("spans", c.spans);
      w.field("truncated", c.truncated);
      w.field("open", c.open);
      w.field("violating_windows", c.windows.size());
      w.key("cause_totals_ns");
      w.begin_object();
      for (int i = 0; i < obs::kNumCauses; ++i) {
        w.field(obs::cause_name(static_cast<obs::Cause>(i)),
                static_cast<std::int64_t>(
                    c.cause_total(static_cast<obs::Cause>(i))));
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (!s.frontend().empty()) {
    w.key("frontend");
    w.begin_object();
    w.field("digest_xor", s.frontend_digest_xor());
    w.key("totals");
    obs::frontend_json(w, s.frontend());
    w.end_object();
  }
  if (!s.cluster().empty()) {
    w.key("cluster");
    w.begin_object();
    w.field("digest_xor", s.cluster_digest_xor());
    w.key("totals");
    obs::cluster_json(w, s.cluster());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Streaming NDJSON fold
// ---------------------------------------------------------------------------

NdjsonFoldReport fold_ndjson_stream(std::istream& in, SweepStats* stats) {
  constexpr std::size_t kMaxErrors = 8;
  NdjsonFoldReport rep;
  std::string line;
  RunResult r;  // the only result-sized state, reused per line
  auto note = [&](std::uint64_t line_no, const std::string& msg) {
    ++rep.bad_lines;
    if (rep.errors.size() < kMaxErrors) {
      rep.errors.push_back("line " + std::to_string(line_no) + ": " + msg);
    }
  };
  while (std::getline(in, line)) {
    ++rep.lines;
    if (line.empty()) continue;
    obs::JsonReader reader;
    obs::JsonValue v;
    if (!reader.parse(line, &v) || !v.is_object()) {
      note(rep.lines, reader.error().empty() ? "not a JSON object"
                                             : reader.error());
      continue;
    }
    if (v.find("run") == nullptr) {
      // Shard headers carry grid identity, not samples.
      if (v.find("shard") != nullptr) {
        ++rep.headers;
      } else {
        note(rep.lines, "object has neither 'run' nor 'shard'");
      }
      continue;
    }
    std::string err;
    if (!result_from_value(v, &r, &err)) {
      note(rep.lines, err);
      continue;
    }
    ++rep.results;
    if (r.trace_dropped > 0) ++rep.truncated_traces;
    stats->add(r);
  }
  return rep;
}

}  // namespace irs::exp
