#include "src/exp/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "src/exp/stats.h"

namespace irs::exp {

namespace {

/// One worker's deque of run indices. The owner pops from the front; idle
/// workers steal from the back, so an owner and a thief only collide on the
/// last element (classic Chase-Lev shape, mutex-guarded for simplicity —
/// the tasks here are whole simulations, microseconds of locking per run
/// is noise).
class WorkerQueue {
 public:
  void push(std::size_t v) {
    const std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(v);
  }
  bool pop_front(std::size_t& v) {
    const std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    v = q_.front();
    q_.pop_front();
    return true;
  }
  bool steal_back(std::size_t& v) {
    const std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    v = q_.back();
    q_.pop_back();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<std::size_t> q_;
};

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t run_index) {
  // SplitMix64 step keyed by the base seed. +1 keeps run 0 of base 0 away
  // from the all-zero state.
  std::uint64_t z = base_seed + (run_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int sweep_jobs() {
  if (const char* s = std::getenv("IRS_BENCH_JOBS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int n_threads) {
  if (n == 0) return;
  std::size_t jobs =
      static_cast<std::size_t>(n_threads > 0 ? n_threads : sweep_jobs());
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  queues.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    queues.push_back(std::make_unique<WorkerQueue>());
  }
  // Deal indices round-robin so every worker starts with a contiguous-ish
  // share; stealing evens out runs of uneven cost.
  for (std::size_t i = 0; i < n; ++i) queues[i % jobs]->push(i);

  std::mutex err_mu;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t me) {
    std::size_t idx = 0;
    while (true) {
      bool got = queues[me]->pop_front(idx);
      for (std::size_t k = 1; !got && k < jobs; ++k) {
        got = queues[(me + k) % jobs]->steal_back(idx);
      }
      if (!got) return;  // every queue drained; tasks never spawn tasks
      try {
        fn(idx);
      } catch (...) {
        const std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (std::size_t w = 1; w < jobs; ++w) threads.emplace_back(worker, w);
  worker(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> run_sweep(const std::vector<ScenarioConfig>& cfgs,
                                 int n_threads) {
  std::vector<RunResult> results(cfgs.size());
  parallel_for(
      cfgs.size(), [&](std::size_t i) { results[i] = run_scenario(cfgs[i]); },
      n_threads);
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<ScenarioConfig>& cfgs,
                                 const SweepConsumer& consumer,
                                 int n_threads) {
  if (!consumer) return run_sweep(cfgs, n_threads);
  std::vector<RunResult> results(cfgs.size());
  // In-order delivery: a finished run is marked done, and whichever worker
  // advances the cursor delivers every consecutive completed result under
  // the mutex. Thread scheduling affects only *who* delivers, never the
  // order or the content.
  std::vector<char> done(cfgs.size(), 0);
  std::size_t next = 0;
  std::mutex mu;
  parallel_for(
      cfgs.size(),
      [&](std::size_t i) {
        RunResult r = run_scenario(cfgs[i]);
        const std::lock_guard<std::mutex> lk(mu);
        results[i] = r;
        done[i] = 1;
        while (next < cfgs.size() && done[next] != 0) {
          const std::size_t k = next++;
          consumer(k, results[k]);
        }
      },
      n_threads);
  return results;
}

std::vector<ScenarioConfig> seed_grid(const ScenarioConfig& cfg,
                                      int n_seeds) {
  std::vector<ScenarioConfig> grid;
  grid.reserve(static_cast<std::size_t>(n_seeds));
  for (int i = 0; i < n_seeds; ++i) {
    ScenarioConfig c = cfg;
    c.seed = derive_seed(cfg.seed, static_cast<std::uint64_t>(i));
    grid.push_back(c);
  }
  return grid;
}

RunResult average_results(const std::vector<RunResult>& rs) {
  RunResult acc;
  if (rs.empty()) return acc;
  double makespan = 0, util = 0, eff = 0, bg_rate = 0, thr = 0;
  double lat_mean = 0, lat_p99 = 0, lat_p999 = 0, sa_delay = 0;
  for (const RunResult& r : rs) {
    acc.finished = acc.finished || r.finished;
    makespan += static_cast<double>(r.fg_makespan);
    util += r.fg_util_vs_fair;
    eff += r.fg_efficiency;
    bg_rate += r.bg_progress_rate;
    thr += r.throughput;
    lat_mean += static_cast<double>(r.lat_mean);
    lat_p99 += static_cast<double>(r.lat_p99);
    lat_p999 += static_cast<double>(r.lat_p999);
    sa_delay += static_cast<double>(r.sa_delay_avg);
    acc.lhp += r.lhp;
    acc.lwp += r.lwp;
    acc.irs_migrations += r.irs_migrations;
    acc.sa_sent += r.sa_sent;
    acc.sa_acked += r.sa_acked;
    // XOR keeps the digest order-independent and zero when sampling was off
    // everywhere; an average would be meaningless for a hash.
    acc.sampler_digest ^= r.sampler_digest;
    acc.slo_digest ^= r.slo_digest;
    acc.forensics_digest ^= r.forensics_digest;
    acc.frontend_digest ^= r.frontend_digest;
    acc.cluster_digest ^= r.cluster_digest;
    acc.trace_dropped += r.trace_dropped;
    acc.trace_total_recorded += r.trace_total_recorded;
    fold_slo(acc.slo, r.slo);  // bucket-exact class fold (see exp/stats.h)
    obs::fold_forensics(acc.forensics, r.forensics);
    obs::fold_frontend(acc.frontend, r.frontend);
    obs::fold_cluster(acc.cluster, r.cluster);
  }
  const double n = static_cast<double>(rs.size());
  acc.fg_makespan = static_cast<sim::Duration>(makespan / n);
  acc.fg_util_vs_fair = util / n;
  acc.fg_efficiency = eff / n;
  acc.bg_progress_rate = bg_rate / n;
  acc.throughput = thr / n;
  acc.lat_mean = static_cast<sim::Duration>(lat_mean / n);
  acc.lat_p99 = static_cast<sim::Duration>(lat_p99 / n);
  acc.lat_p999 = static_cast<sim::Duration>(lat_p999 / n);
  acc.sa_delay_avg = static_cast<sim::Duration>(sa_delay / n);
  acc.lhp /= rs.size();
  acc.lwp /= rs.size();
  return acc;
}

}  // namespace irs::exp
