// Named figure grids: every plain-sweep figure of the paper (fig02,
// fig05-fig13) as a deterministic function from a name to the flat
// vector<ScenarioConfig> its benchmark executes. This is the unit the
// sharded-sweep tooling distributes: `irs_sweep --fig fig05 --shard 2/8`
// runs rows {i : i % 8 == 2} of exactly this grid, and a merge of all
// shards is bit-identical to running the grid in one process.
//
// Grid order is part of the contract (run index == NDJSON merge key):
// panels in figure order, then apps, then interference levels, then
// strategies (baseline first), then seeds innermost — the same nesting the
// bench binaries register. fig01 is excluded: it is a bespoke procedure
// (src/exp/scenarios.h), not a grid.
#pragma once

#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/exp/runner.h"

namespace irs::exp {

/// Baseline per-thread work scale for figure sweeps (keeps each run fast
/// while preserving many hv-scheduling periods per run).
inline constexpr double kPanelWorkScale = 0.5;

/// Knobs shared by the figure panels (previously bench/bench_util.h; moved
/// here so the grid registry and the bench binaries build identical
/// configs from one definition).
struct PanelOptions {
  PanelOptions();  // out of line: GCC 12 mis-fires maybe-uninitialized on
                   // the inlined initializer_list copies otherwise
  std::string bg = "hog";
  std::vector<int> inter_levels = {1, 2, 4};
  std::vector<core::Strategy> strategies = {core::Strategy::kPle,
                                            core::Strategy::kRelaxedCo,
                                            core::Strategy::kIrs};
  int n_vcpus = 4;
  int n_pcpus = 4;
  int n_bg_vms = 1;
  bool pinned = true;
  bool npb_spinning = true;
  double work_scale = kPanelWorkScale;
};

/// One cell of a figure panel: `app` under `strategy` with `n_inter`
/// interfered vCPUs, remaining knobs from `o`.
ScenarioConfig panel_cfg(const std::string& app, core::Strategy strategy,
                         int n_inter, const PanelOptions& o);

struct GridOptions {
  /// Seeds per data point; 0 = bench_seeds() (IRS_BENCH_SEEDS/FAST aware).
  int seeds = 0;
  /// Trim the grid the way IRS_BENCH_FAST trims the bench binaries
  /// (fewer apps/levels, first panel only). Changes the grid size, so
  /// every shard of one sweep must agree on it (the NDJSON header's
  /// total_runs check catches a mismatch).
  bool fast = false;
};

/// Names accepted by figure_grid, in display order. Multi-panel figures
/// are listed both whole ("fig05") and per panel ("fig05a".."fig05c");
/// "smoke" is a 16-run sampler-armed CI grid.
std::vector<std::string> figure_grid_names();

/// The named grid, seeds expanded (derive_seed per point). Returns an
/// empty vector for unknown names — no real grid is empty.
std::vector<ScenarioConfig> figure_grid(const std::string& name,
                                        const GridOptions& opt = {});

}  // namespace irs::exp
