// Pre-packaged experiment procedures for figures that need more than a
// plain run_scenario sweep (Fig. 1's motivation experiments).
#pragma once

#include <cstdint>
#include <vector>

#include "src/exp/runner.h"
#include "src/sim/time.h"

namespace irs::exp {

/// Fig. 1(a): slowdown of `app` when one of four vCPUs is interfered,
/// relative to running alone (no interference). Returns the ratio (>1).
double fig1a_slowdown(const std::string& app, std::uint64_t seed);

/// Fig. 1(b): average latency of stop-based process migration from a
/// contended vCPU (sharing its pCPU with `n_colocated_vms` CPU-bound VMs)
/// to a quiet one. `samples` migrations are averaged (the paper uses 30).
struct MigrationLatencyResult {
  double mean_ms = 0;
  double max_ms = 0;
  int samples = 0;
};
MigrationLatencyResult fig1b_migration_latency(int n_colocated_vms,
                                               int samples,
                                               std::uint64_t seed);

}  // namespace irs::exp
