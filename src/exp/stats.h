// Streaming aggregate statistics over sweep results.
//
// The NDJSON sweep files (exp/shard.h) can hold hundreds of thousands of
// runs across a sharded fleet; consumers that only want aggregates (count,
// mean, spread, tail percentiles) should not have to materialise a
// std::vector<RunResult> first. This header provides the streaming
// alternative to the result_from_json -> vector pattern:
//
//   * StatAccumulator — one metric's running count/mean/variance (Welford),
//     exact min/max, and a log-linear histogram sketch for percentiles
//     (~3 % relative error, fixed memory, deterministic);
//   * SweepStats — one StatAccumulator per RunResult metric, folded one
//     run at a time: feed it from run_sweep's streaming consumer, from a
//     merge, or line-by-line from an NDJSON file;
//   * fold_ndjson_stream — parse an NDJSON sweep stream (shard or merged
//     canonical file) with a single RunResult of state, folding every
//     result line into a SweepStats. O(1) memory in the number of runs.
//
// `irs_sweep_merge --stats[-only]` and bench_report's merged-file gate are
// the in-tree consumers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/exp/runner.h"

namespace irs::exp {

/// Running statistics for one scalar metric. add() is O(log bins) and the
/// state is O(distinct magnitude buckets) — never O(samples). All derived
/// values are deterministic functions of the multiset of samples plus, for
/// mean/stddev, their order (Welford folds in arrival order; sweeps fold
/// in run-index order, so reports are reproducible).
class StatAccumulator {
 public:
  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population standard deviation (consistent with the figure tables).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Nearest-rank percentile (p in [0, 100]) from the log-linear sketch:
  /// the returned value is within ~3 % (one half mantissa bucket) of the
  /// exact order statistic. p <= 0 returns min(), p >= 100 returns max().
  [[nodiscard]] double percentile(double p) const;

  /// Fold another accumulator in, as if its samples had been add()ed here:
  /// count/min/max and the percentile sketch merge exactly; mean/m2 merge
  /// via Chan's parallel update (deterministic for a fixed merge order,
  /// equal to serial accumulation up to float rounding).
  void merge(const StatAccumulator& o);

 private:
  /// Order-preserving bucket key: 0 for zero, positive for positive v,
  /// mirrored negative for negative v. Exponent plus top 5 mantissa bits.
  static int bucket_key(double v);
  /// Representative value of a bucket (mantissa-segment midpoint).
  static double bucket_value(int key);

  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations (Welford)
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<int, std::uint64_t> buckets_;  // ordered => percentile walk
};

/// Aggregate statistics over a stream of RunResults: one accumulator per
/// scalar metric plus run/finished counts. Metric order and names match
/// result_json's fields.
class SweepStats {
 public:
  /// Names of the tracked metrics, in report order.
  static const std::vector<std::string>& metric_names();

  /// Fold one run. Order matters only for mean/stddev determinism; fold in
  /// run-index order for reproducible reports.
  void add(const RunResult& r);

  [[nodiscard]] std::uint64_t runs() const { return runs_; }
  [[nodiscard]] std::uint64_t finished() const { return finished_; }
  /// Accumulator for metric_names()[i].
  [[nodiscard]] const StatAccumulator& metric(std::size_t i) const;

  /// Sweep-wide SLO fold: class histograms merged bucket-exact across every
  /// run seen (see fold_slo). Empty when no run carried an slo block.
  [[nodiscard]] const obs::SloResult& slo() const { return slo_; }
  /// XOR of every run's slo_digest — the order-independent identity
  /// sentinel the shard merge checks, mirroring sampler digests.
  [[nodiscard]] std::uint64_t slo_digest_xor() const {
    return slo_digest_xor_;
  }

  /// Sweep-wide forensics fold: per-cause histograms merged exactly across
  /// every run seen (see obs::fold_forensics). Empty when no run carried a
  /// forensics block.
  [[nodiscard]] const obs::ForensicsResult& forensics() const {
    return forensics_;
  }
  /// XOR of every run's forensics_digest (see slo_digest_xor).
  [[nodiscard]] std::uint64_t forensics_digest_xor() const {
    return forensics_digest_xor_;
  }

  /// Sweep-wide front-end fold: the conservation ledgers of every run
  /// summed exactly (see obs::fold_frontend). Empty when no run carried a
  /// frontend block.
  [[nodiscard]] const obs::FrontendResult& frontend() const {
    return frontend_;
  }
  /// XOR of every run's frontend_digest (see slo_digest_xor).
  [[nodiscard]] std::uint64_t frontend_digest_xor() const {
    return frontend_digest_xor_;
  }

  /// Sweep-wide cluster fold: every run's placement/migration ledger summed
  /// exactly (see obs::fold_cluster). Empty when no run was a cluster run.
  [[nodiscard]] const obs::ClusterResult& cluster() const { return cluster_; }
  /// XOR of every run's cluster_digest (see slo_digest_xor).
  [[nodiscard]] std::uint64_t cluster_digest_xor() const {
    return cluster_digest_xor_;
  }

 private:
  std::uint64_t runs_ = 0;
  std::uint64_t finished_ = 0;
  std::vector<StatAccumulator> acc_;
  obs::SloResult slo_;
  std::uint64_t slo_digest_xor_ = 0;
  obs::ForensicsResult forensics_;
  std::uint64_t forensics_digest_xor_ = 0;
  obs::FrontendResult frontend_;
  std::uint64_t frontend_digest_xor_ = 0;
  obs::ClusterResult cluster_;
  std::uint64_t cluster_digest_xor_ = 0;
};

/// Fold one run's SLO capture into `acc`: classes match by name, totals
/// merge bucket-exact (integer histogram fold — order- and
/// grouping-independent), windows merge by index summing count/violations
/// and keeping the max percentile (a conservative "worst run" envelope:
/// percentiles of disjoint streams do not average). Shared by
/// average_results and SweepStats.
void fold_slo(obs::SloResult& acc, const obs::SloResult& r);

/// Stable JSON rendering of a SweepStats (fixed key order; count, mean,
/// stddev, min, max, p50/p90/p99 per metric; an "slo" section with the
/// folded per-class distributions when any run carried one).
std::string sweep_stats_json(const SweepStats& s);

/// Outcome of a streaming fold over an NDJSON sweep stream.
struct NdjsonFoldReport {
  std::uint64_t lines = 0;    // total lines seen (including headers)
  std::uint64_t headers = 0;  // shard-header lines skipped
  std::uint64_t results = 0;  // result lines folded
  std::uint64_t bad_lines = 0;
  /// Result lines whose run had a truncated trace ring (trace_dropped > 0):
  /// their timeline-derived numbers are partial, so consumers warn rather
  /// than silently folding them.
  std::uint64_t truncated_traces = 0;
  std::vector<std::string> errors;  // one per bad line, capped
  [[nodiscard]] bool ok() const { return bad_lines == 0; }
};

/// Fold every result line of an NDJSON sweep stream (shard file, merged
/// canonical file, or a concatenation) into `stats`, line by line, holding
/// a single RunResult of state. Shard-header lines (objects with a
/// "shard" key and no "run" key) are skipped and counted. A trailing
/// newline-less line is processed if parseable, counted bad otherwise.
NdjsonFoldReport fold_ndjson_stream(std::istream& in, SweepStats* stats);

}  // namespace irs::exp
