#include "src/exp/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/obs/json.h"

namespace irs::exp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c] + 2; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

std::string fmt_f(double v, int prec) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fms", sim::to_ms(d));
  return buf;
}

std::string fmt_us(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fus", sim::to_us(d));
  return buf;
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

namespace {

void write_result(obs::JsonWriter& w, const RunResult& r) {
  w.begin_object();
  w.field("finished", r.finished);
  w.field("fg_makespan_ns", static_cast<std::int64_t>(r.fg_makespan));
  w.field("fg_util_vs_fair", r.fg_util_vs_fair);
  w.field("fg_efficiency", r.fg_efficiency);
  w.field("bg_progress_rate", r.bg_progress_rate);
  w.field("throughput", r.throughput);
  w.field("lat_mean_ns", static_cast<std::int64_t>(r.lat_mean));
  w.field("lat_p99_ns", static_cast<std::int64_t>(r.lat_p99));
  w.field("lhp", r.lhp);
  w.field("lwp", r.lwp);
  w.field("irs_migrations", r.irs_migrations);
  w.field("sa_sent", r.sa_sent);
  w.field("sa_acked", r.sa_acked);
  w.field("sa_delay_avg_ns", static_cast<std::int64_t>(r.sa_delay_avg));
  w.end_object();
}

}  // namespace

std::string result_json(const RunResult& r) {
  obs::JsonWriter w;
  write_result(w, r);
  return w.str();
}

std::string sweep_json(const std::vector<RunResult>& rs) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("results");
  w.begin_array();
  for (const RunResult& r : rs) write_result(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace irs::exp
