#include "src/exp/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/obs/json.h"
#include "src/obs/slo.h"

namespace irs::exp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c] + 2; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto put_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto put_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      put_cell(c < row.size() ? row[c] : "");
    }
    os << '\n';
  };
  put_row(headers_);
  for (const auto& row : rows_) put_row(row);
}

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

std::string fmt_f(double v, int prec) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fms", sim::to_ms(d));
  return buf;
}

std::string fmt_us(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fus", sim::to_us(d));
  return buf;
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

void result_json_fields(obs::JsonWriter& w, const RunResult& r) {
  w.field("finished", r.finished);
  w.field("fg_makespan_ns", static_cast<std::int64_t>(r.fg_makespan));
  w.field("fg_util_vs_fair", r.fg_util_vs_fair);
  w.field("fg_efficiency", r.fg_efficiency);
  w.field("bg_progress_rate", r.bg_progress_rate);
  w.field("throughput", r.throughput);
  w.field("lat_mean_ns", static_cast<std::int64_t>(r.lat_mean));
  w.field("lat_p99_ns", static_cast<std::int64_t>(r.lat_p99));
  w.field("lat_p999_ns", static_cast<std::int64_t>(r.lat_p999));
  w.field("lhp", r.lhp);
  w.field("lwp", r.lwp);
  w.field("irs_migrations", r.irs_migrations);
  w.field("sa_sent", r.sa_sent);
  w.field("sa_acked", r.sa_acked);
  w.field("sa_delay_avg_ns", static_cast<std::int64_t>(r.sa_delay_avg));
  w.field("sampler_digest", r.sampler_digest);
  w.field("trace_dropped", r.trace_dropped);
  w.field("trace_total_recorded", r.trace_total_recorded);
  w.field("slo_digest", r.slo_digest);
  if (!r.slo.empty()) {
    w.key("slo");
    obs::slo_result_json(w, r.slo);
  }
  w.field("forensics_digest", r.forensics_digest);
  if (!r.forensics.empty()) {
    w.key("forensics");
    obs::forensics_json(w, r.forensics);
  }
  w.field("frontend_digest", r.frontend_digest);
  if (!r.frontend.empty()) {
    w.key("frontend");
    obs::frontend_json(w, r.frontend);
  }
  w.field("cluster_digest", r.cluster_digest);
  if (!r.cluster.empty()) {
    w.key("cluster");
    obs::cluster_json(w, r.cluster);
  }
}

namespace {

void write_result(obs::JsonWriter& w, const RunResult& r) {
  w.begin_object();
  result_json_fields(w, r);
  w.end_object();
}

/// Field-lookup helpers shared by the RunResult parser: fetch `key` from
/// `v`, coerce into *out, and record a deterministic error otherwise.
template <typename T>
bool read_field(const obs::JsonValue& v, const char* key, T* out,
                std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) {
    if (err) *err = std::string("missing field '") + key + "'";
    return false;
  }
  if (!f->get(out)) {
    if (err) *err = std::string("bad type for field '") + key + "'";
    return false;
  }
  return true;
}

bool read_duration(const obs::JsonValue& v, const char* key, sim::Duration* out,
                   std::string* err) {
  std::int64_t ns = 0;
  if (!read_field(v, key, &ns, err)) return false;
  *out = static_cast<sim::Duration>(ns);
  return true;
}

}  // namespace

std::string result_json(const RunResult& r) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  write_result(w, r);
  return w.str();
}

std::string sweep_json(const std::vector<RunResult>& rs) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  w.begin_object();
  w.key("results");
  w.begin_array();
  for (const RunResult& r : rs) write_result(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

bool result_from_value(const obs::JsonValue& v, RunResult* r,
                       std::string* err) {
  if (!v.is_object()) {
    if (err) *err = "result is not a JSON object";
    return false;
  }
  RunResult out;
  if (!read_field(v, "finished", &out.finished, err)) return false;
  if (!read_duration(v, "fg_makespan_ns", &out.fg_makespan, err)) return false;
  if (!read_field(v, "fg_util_vs_fair", &out.fg_util_vs_fair, err)) {
    return false;
  }
  if (!read_field(v, "fg_efficiency", &out.fg_efficiency, err)) return false;
  if (!read_field(v, "bg_progress_rate", &out.bg_progress_rate, err)) {
    return false;
  }
  if (!read_field(v, "throughput", &out.throughput, err)) return false;
  if (!read_duration(v, "lat_mean_ns", &out.lat_mean, err)) return false;
  if (!read_duration(v, "lat_p99_ns", &out.lat_p99, err)) return false;
  // Absent in pre-cluster captures (like forensics/frontend below).
  if (v.find("lat_p999_ns") != nullptr &&
      !read_duration(v, "lat_p999_ns", &out.lat_p999, err)) {
    return false;
  }
  if (!read_field(v, "lhp", &out.lhp, err)) return false;
  if (!read_field(v, "lwp", &out.lwp, err)) return false;
  if (!read_field(v, "irs_migrations", &out.irs_migrations, err)) return false;
  if (!read_field(v, "sa_sent", &out.sa_sent, err)) return false;
  if (!read_field(v, "sa_acked", &out.sa_acked, err)) return false;
  if (!read_duration(v, "sa_delay_avg_ns", &out.sa_delay_avg, err)) {
    return false;
  }
  if (!read_field(v, "sampler_digest", &out.sampler_digest, err)) return false;
  if (!read_field(v, "trace_dropped", &out.trace_dropped, err)) return false;
  if (!read_field(v, "trace_total_recorded", &out.trace_total_recorded, err)) {
    return false;
  }
  if (!read_field(v, "slo_digest", &out.slo_digest, err)) return false;
  if (const obs::JsonValue* slo = v.find("slo")) {
    if (!obs::slo_result_from_value(*slo, &out.slo, err)) return false;
  }
  // Absent in pre-forensics captures: default to 0/empty so old NDJSON
  // shards stay parseable.
  if (v.find("forensics_digest") != nullptr &&
      !read_field(v, "forensics_digest", &out.forensics_digest, err)) {
    return false;
  }
  if (const obs::JsonValue* fz = v.find("forensics")) {
    if (!obs::forensics_from_value(*fz, &out.forensics, err)) return false;
  }
  if (v.find("frontend_digest") != nullptr &&
      !read_field(v, "frontend_digest", &out.frontend_digest, err)) {
    return false;
  }
  if (const obs::JsonValue* fe = v.find("frontend")) {
    if (!obs::frontend_from_value(*fe, &out.frontend, err)) return false;
  }
  if (v.find("cluster_digest") != nullptr &&
      !read_field(v, "cluster_digest", &out.cluster_digest, err)) {
    return false;
  }
  if (const obs::JsonValue* cl = v.find("cluster")) {
    if (!obs::cluster_from_value(*cl, &out.cluster, err)) return false;
  }
  *r = out;
  return true;
}

bool result_from_json(const std::string& json, RunResult* r,
                      std::string* err) {
  obs::JsonReader reader;
  obs::JsonValue v;
  if (!reader.parse(json, &v)) {
    if (err) *err = reader.error();
    return false;
  }
  return result_from_value(v, r, err);
}

SweepConsumer ndjson_consumer(std::ostream& out) {
  return [&out](std::size_t /*i*/, const RunResult& r) {
    out << result_json(r) << '\n';
    out.flush();
  };
}

void print_attribution(std::ostream& os, const obs::AttributionResult& a) {
  if (a.head_truncated_at >= 0) {
    os << "note: trace head truncated at t=" << fmt_ms(a.head_truncated_at)
       << " — windows opened before that are not charged\n";
  }
  Table t({"task", "steal", "lhp", "lwp", "windows", "locks"});
  for (const obs::TaskCharge& c : a.tasks) {
    std::string locks;
    for (const auto& [lock, d] : c.by_lock) {
      if (!locks.empty()) locks += ", ";
      locks += lock + "=" + fmt_ms(d);
    }
    t.add_row({c.label, fmt_ms(c.total), fmt_ms(c.lhp), fmt_ms(c.lwp),
               std::to_string(c.windows), locks});
  }
  t.print(os);
  os << "total steal " << fmt_ms(a.total_steal) << ", charged "
     << fmt_ms(a.charged) << " (" << fmt_f(a.coverage() * 100.0, 1)
     << "%), uncharged " << fmt_ms(a.uncharged) << "\n";
}

std::string attribution_json(const obs::AttributionResult& a) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("total_steal_ns", static_cast<std::int64_t>(a.total_steal));
  w.field("charged_ns", static_cast<std::int64_t>(a.charged));
  w.field("uncharged_ns", static_cast<std::int64_t>(a.uncharged));
  w.field("coverage", a.coverage());
  w.field("head_truncated_at_ns",
          static_cast<std::int64_t>(a.head_truncated_at));
  w.key("tasks");
  w.begin_array();
  for (const obs::TaskCharge& c : a.tasks) {
    w.begin_object();
    w.field("vm", c.vm);
    w.field("task", c.task);
    w.field("label", c.label);
    w.field("steal_ns", static_cast<std::int64_t>(c.total));
    w.field("lhp_ns", static_cast<std::int64_t>(c.lhp));
    w.field("lwp_ns", static_cast<std::int64_t>(c.lwp));
    w.field("windows", c.windows);
    w.key("by_lock");
    w.begin_object();
    for (const auto& [lock, d] : c.by_lock) {
      w.field(lock.c_str(), static_cast<std::int64_t>(d));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace irs::exp
