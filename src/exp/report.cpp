#include "src/exp/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace irs::exp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c] + 2; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

std::string fmt_f(double v, int prec) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fms", sim::to_ms(d));
  return buf;
}

std::string fmt_us(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fus", sim::to_us(d));
  return buf;
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace irs::exp
