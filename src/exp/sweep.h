// Parallel sweep runner: executes a vector of independent ScenarioConfigs
// concurrently on a work-stealing thread pool, one private Engine/World per
// run. Every figure in the paper is a grid of independent simulations
// (strategies x apps x interference x seeds), so sweeps scale linearly with
// cores while staying bit-identical to serial execution:
//   * per-run seeds are derived by SplitMix64 from (base_seed, run_index),
//     never from execution order;
//   * results land in a slot indexed by run_index, so thread scheduling
//     cannot reorder them;
//   * simulations share no mutable state (each owns its World).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/exp/runner.h"

namespace irs::exp {

/// Statistically independent per-run seed from a base seed and a run index
/// (SplitMix64 of the index keyed by the base). Stable across platforms,
/// thread counts, and grid sizes.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t run_index);

/// Worker count for sweeps: IRS_BENCH_JOBS if set (>0), else
/// hardware_concurrency. Always >= 1.
int sweep_jobs();

/// Run fn(0..n-1) on a work-stealing pool with `n_threads` workers
/// (0 = sweep_jobs()). With one worker (or n <= 1) runs inline, serially,
/// in index order — the reference execution the parallel path must match.
/// Exceptions thrown by `fn` are rethrown (first one wins) after all
/// workers drain.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int n_threads = 0);

/// Run every config concurrently; results[i] is run_scenario(cfgs[i]).
/// Bit-identical to the serial loop regardless of thread count.
std::vector<RunResult> run_sweep(const std::vector<ScenarioConfig>& cfgs,
                                 int n_threads = 0);

/// Per-run callback for streaming sweeps: invoked once per run with the run
/// index and its result. Calls arrive strictly in index order (0, 1, 2, …)
/// regardless of the completion order on the pool — completed runs are
/// buffered until every predecessor has been delivered, so a consumer that
/// appends to a file or reports progress sees the same sequence the serial
/// loop would produce. The callback runs on whichever worker thread
/// completed the run that unblocked it; delivery is serialised, so the
/// consumer needs no locking of its own, but it must not call back into the
/// sweep machinery.
using SweepConsumer = std::function<void(std::size_t, const RunResult&)>;

/// run_sweep with incremental, in-order result delivery (progress meters,
/// streaming JSON emission). Returns the same vector as the plain overload.
std::vector<RunResult> run_sweep(const std::vector<ScenarioConfig>& cfgs,
                                 const SweepConsumer& consumer,
                                 int n_threads = 0);

/// Expand one config into `n_seeds` configs whose seeds are
/// derive_seed(cfg.seed, 0..n_seeds-1). The unit of averaging.
std::vector<ScenarioConfig> seed_grid(const ScenarioConfig& cfg, int n_seeds);

/// Average a batch of runs: the exact aggregation run_averaged applies
/// (means for continuous metrics, per-run means for lhp/lwp, sums for the
/// remaining counters).
RunResult average_results(const std::vector<RunResult>& rs);

}  // namespace irs::exp
