// Sharded multi-process/multi-host sweeps: plan a grid's round-robin
// split, stream each shard's results as self-describing NDJSON, and merge
// the shard files back into the exact result vector a single-process
// run_sweep would have produced — with the merge *verified*, not assumed.
//
// File format (one shard = one NDJSON file, every line a JSON object):
//   line 0:  header   {"shard":2,"n_shards":8,"total_runs":96,
//                      "fig":"fig05","seeds":2}
//   line 1+: result   {"run":<global run index>, <result_json fields...>}
// Lines are flushed per run, so a killed shard leaves a valid NDJSON
// prefix (possibly plus one torn, newline-less tail that the merge
// discards and reports). Doubles use shortest round-trip formatting; a
// result survives serialize -> parse bit-identically, which is what makes
// the cross-shard bit-identity guarantee testable rather than aspirational.
//
// Merge verification is exhaustive and machine-readable: the CLI exit code
// is the OR of the MergeStatus bits below, and repair_plan() lists the
// exact `irs_sweep --shard i/N --runs ...` invocations that regenerate
// what is missing or in doubt. A merge is never silently partial.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/runner.h"

namespace irs::exp {

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

/// A shard identity: 0-based index within `count` shards ("2/8" = index 2
/// of 8).
struct ShardSpec {
  int index = 0;
  int count = 1;
};

/// Parse "i/N" (0 <= i < N). Returns false on malformed input.
bool parse_shard_spec(const std::string& s, ShardSpec* out);

/// Global run indices owned by shard `shard` of `n_shards` over an n-run
/// grid: deterministic round-robin by run index (i % n_shards == shard),
/// ascending. Placement-independent because per-run seeds derive from the
/// run index, never from execution order.
std::vector<std::size_t> shard_run_indices(std::size_t n_runs, int shard,
                                           int n_shards);

/// The configs this shard executes, in ascending global-run-index order
/// (cfgs[i] for every owned index i).
std::vector<ScenarioConfig> shard_grid(const std::vector<ScenarioConfig>& cfgs,
                                       int shard, int n_shards);

// ---------------------------------------------------------------------------
// NDJSON shard format
// ---------------------------------------------------------------------------

/// First line of every shard file. `fig`/`seeds` describe the grid so a
/// repair plan can name the exact rerun command; they may be empty/0 for
/// ad-hoc grids (bench binaries), in which case plans fall back to
/// placeholders.
struct ShardHeader {
  int shard = 0;
  int n_shards = 1;
  std::uint64_t total_runs = 0;
  std::string fig;
  int seeds = 0;
};

std::string shard_header_json(const ShardHeader& h);
std::string shard_line_json(std::size_t run_index, const RunResult& r);

bool parse_shard_header(const std::string& line, ShardHeader* out,
                        std::string* err);
bool parse_shard_line(const std::string& line, std::size_t* run_index,
                      RunResult* out, std::string* err);

// ---------------------------------------------------------------------------
// Merge + verification
// ---------------------------------------------------------------------------

/// Verification outcome bits; the merge CLI's exit code is their OR
/// (0 = clean). Documented order of severity is low bit = most common.
enum MergeStatus : int {
  kMergeOk = 0,
  /// Run indices absent from every shard file (includes the runs of a
  /// shard whose file is missing entirely and of a truncated tail).
  kMergeMissingRuns = 1,
  /// A run index appeared more than once with identical payload (e.g. a
  /// shard retried after a partial upload). Harmless but reported.
  kMergeDuplicate = 2,
  /// A run index appeared with two *different* payloads — the
  /// determinism contract is broken somewhere; both runs are suspect. The
  /// first occurrence is kept, the index lands in the repair plan.
  kMergeConflict = 4,
  /// A shard file ends in a torn, newline-less line (killed writer). The
  /// torn tail is discarded; its run surfaces as missing.
  kMergeTruncated = 8,
  /// Unreadable file, unparseable header/line, or header disagreement
  /// (n_shards/total_runs/fig/seeds differ between files).
  kMergeBadFile = 16,
  /// Run indices within one shard file were out of order or not owned by
  /// the shard its header claims — the file was reordered or hand-edited.
  /// Results still merge (content is keyed by index, not position).
  kMergeDisorder = 32,
};

struct MergeOptions {
  /// Expected total runs; 0 = trust the (consistent) headers.
  std::uint64_t expect_runs = 0;
  /// Expected shard count; 0 = trust the headers.
  int expect_shards = 0;
};

/// Per-input-file detail for reports and tests.
struct ShardFileReport {
  std::string name;
  ShardHeader header;
  bool header_ok = false;
  bool truncated = false;
  std::size_t n_results = 0;
};

struct MergeReport {
  int status = kMergeOk;  // OR of MergeStatus bits
  std::string fig;
  int seeds = 0;
  int n_shards = 0;
  std::uint64_t expected_runs = 0;
  std::uint64_t merged = 0;  // distinct run indices recovered

  /// results[i] valid iff present[i]; size == expected_runs.
  std::vector<RunResult> results;
  std::vector<char> present;

  std::vector<std::uint64_t> missing;         // ascending
  std::vector<std::uint64_t> duplicate_runs;  // ascending, deduped
  std::vector<std::uint64_t> conflict_runs;   // ascending, deduped
  /// Merged runs whose trace ring wrapped (trace_dropped > 0): their
  /// timeline-derived numbers are partial. Not a status bit — the merge is
  /// still exact — but the CLI warns so they aren't folded silently.
  std::vector<std::uint64_t> truncated_trace_runs;  // ascending
  std::vector<int> missing_shards;            // no file claimed this index
  std::vector<std::string> truncated_files;
  std::vector<std::string> errors;  // human-readable detail, in input order
  std::vector<ShardFileReport> files;

  [[nodiscard]] bool ok() const { return status == kMergeOk; }
};

/// Merge shard streams given as (name, content) pairs — the in-memory core
/// the fault-injection tests drive directly.
MergeReport merge_shard_streams(
    const std::vector<std::pair<std::string, std::string>>& files,
    const MergeOptions& opt = {});

/// File-reading wrapper: unreadable paths set kMergeBadFile and are
/// otherwise treated as absent.
MergeReport merge_shards(const std::vector<std::string>& paths,
                         const MergeOptions& opt = {});

/// One-line machine-readable summary of the verification (fixed key
/// order): status, grid identity, and every anomaly list.
std::string merge_summary_json(const MergeReport& rep);

/// The exact reruns that repair the merge: one `irs_sweep` line per shard
/// owning missing or conflicted runs (`--runs` omitted when the whole
/// shard must rerun). Empty string when nothing needs rerunning.
std::string repair_plan(const MergeReport& rep);

/// Write the merged sweep as a canonical single-shard NDJSON file
/// (header with shard 0/1, then every present run ascending). Re-emitted
/// through the round-trip serializer, so merging N shards of a grid and
/// running the grid in one process produce byte-identical files.
void write_merged_ndjson(std::ostream& os, const MergeReport& rep);

}  // namespace irs::exp
