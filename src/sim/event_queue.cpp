#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace irs::sim {

namespace {

/// Comparator adapting the dispatch order to std::*_heap's max-heap
/// convention (the "latest" entry compares greatest, so the heap front is
/// the earliest).
struct Later {
  bool operator()(const QEntry& a, const QEntry& b) const {
    return entry_before(b, a);
  }
};

// ---------------------------------------------------------------------------
// Binary heap (reference oracle)
// ---------------------------------------------------------------------------

class BinaryHeapQueue final : public EventQueue {
 public:
  [[nodiscard]] QueueKind kind() const override {
    return QueueKind::kBinaryHeap;
  }
  [[nodiscard]] const char* name() const override { return "binary"; }

  void push(const QEntry& e) override {
    h_.push_back(e);
    std::push_heap(h_.begin(), h_.end(), Later{});
  }

  bool peek(QEntry* out) override {
    if (h_.empty()) return false;
    *out = h_.front();
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    if (h_.empty() || h_.front().when > deadline) return false;
    std::pop_heap(h_.begin(), h_.end(), Later{});
    *out = h_.back();
    h_.pop_back();
    return true;
  }

  std::size_t pop_batch(Time deadline, QEntry* out, std::size_t max) override {
    std::size_t k = 0;
    while (k < max && !h_.empty() && h_.front().when <= deadline) {
      std::pop_heap(h_.begin(), h_.end(), Later{});
      out[k++] = h_.back();
      h_.pop_back();
    }
    return k;
  }

  [[nodiscard]] std::size_t size() const override { return h_.size(); }

  std::size_t compact(LiveFn live, void* ctx) override {
    const std::size_t before = h_.size();
    h_.erase(std::remove_if(h_.begin(), h_.end(),
                            [&](const QEntry& e) {
                              return !live(ctx, e.slot, e.gen);
                            }),
             h_.end());
    std::make_heap(h_.begin(), h_.end(), Later{});
    return before - h_.size();
  }

 private:
  std::vector<QEntry> h_;
};

// ---------------------------------------------------------------------------
// 4-ary implicit heap
// ---------------------------------------------------------------------------

/// Min-heap on {when, seq} with fan-out 4: children of node i are
/// 4i+1..4i+4. Depth is half a binary heap's, and the four children sit in
/// 96 contiguous bytes (two cache lines at worst), so a sift-down pays ~one
/// line fetch per level instead of two scattered ones. Non-virtual core so
/// the hybrid wheel can embed it as its spill structure without paying a
/// second dispatch.
class QuadHeap {
 public:
  void push(const QEntry& e) {
    h_.push_back(e);
    sift_up(h_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return h_.empty(); }
  [[nodiscard]] std::size_t size() const { return h_.size(); }
  [[nodiscard]] const QEntry& top() const { return h_.front(); }

  void pop() {
    h_.front() = h_.back();
    h_.pop_back();
    if (!h_.empty()) sift_down(0);
  }

  std::size_t compact(EventQueue::LiveFn live, void* ctx) {
    const std::size_t before = h_.size();
    h_.erase(std::remove_if(h_.begin(), h_.end(),
                            [&](const QEntry& e) {
                              return !live(ctx, e.slot, e.gen);
                            }),
             h_.end());
    // Floyd heapify: sift down every internal node, last parent first.
    if (h_.size() > 1) {
      for (std::size_t i = (h_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
    }
    return before - h_.size();
  }

 private:
  void sift_up(std::size_t i) {
    const QEntry e = h_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!entry_before(e, h_[parent])) break;
      h_[i] = h_[parent];
      i = parent;
    }
    h_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = h_.size();
    const QEntry e = h_[i];
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + 4, n);
      std::size_t min_child = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (entry_before(h_[c], h_[min_child])) min_child = c;
      }
      if (!entry_before(h_[min_child], e)) break;
      h_[i] = h_[min_child];
      i = min_child;
    }
    h_[i] = e;
  }

  std::vector<QEntry> h_;
};

class QuadHeapQueue final : public EventQueue {
 public:
  [[nodiscard]] QueueKind kind() const override { return QueueKind::kQuadHeap; }
  [[nodiscard]] const char* name() const override { return "quad"; }

  void push(const QEntry& e) override { h_.push(e); }

  bool peek(QEntry* out) override {
    if (h_.empty()) return false;
    *out = h_.top();
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    if (h_.empty() || h_.top().when > deadline) return false;
    *out = h_.top();
    h_.pop();
    return true;
  }

  std::size_t pop_batch(Time deadline, QEntry* out, std::size_t max) override {
    std::size_t k = 0;
    while (k < max && !h_.empty() && h_.top().when <= deadline) {
      out[k++] = h_.top();
      h_.pop();
    }
    return k;
  }

  [[nodiscard]] std::size_t size() const override { return h_.size(); }

  std::size_t compact(LiveFn live, void* ctx) override {
    return h_.compact(live, ctx);
  }

 private:
  QuadHeap h_;
};

// ---------------------------------------------------------------------------
// Hybrid near-future wheel + far-future calendar tier
// ---------------------------------------------------------------------------

/// Timer wheel over kWheelBuckets buckets of 2^shift ns (default
/// kDefaultWheelShift: 131 µs buckets, ~67 ms horizon — see the constant
/// derivations in event_queue.h), with two backing tiers:
///
///   * a calendar queue of kCalBuckets unsorted buckets, each spanning
///     half a wheel horizon, that absorbs far-future events in O(1) and
///     bulk-migrates whole buckets into the wheel as the cursor
///     approaches them (instead of parking them in a heap and paying a
///     sift per pop);
///   * an embedded 4-ary spill heap for everything neither tier can hold:
///     entries at/behind the open bucket and entries beyond the calendar
///     span.
///
/// Placement is governed by the calendar boundary B (`cal_base_` in
/// calendar-bucket units): wheel-resident entries are strictly below B,
/// calendar-resident entries are in [B, B + kCalBuckets spans). B is a
/// multiple of the calendar span, which is a multiple of the bucket
/// width, so every entry in any calendar bucket is later than every
/// wheel-resident entry — dispatch never needs to compare against the
/// calendar, only merge (due front, heap top). B advances (migrating the
/// bucket it passes) whenever a whole calendar span fits inside the
/// wheel horizon.
///
/// Geometry is adaptive: retune() re-derives `shift_` from the engine's
/// inter-dispatch gap EWMA, but only when wheel, due list, and calendar
/// are all empty — no resident entry ever needs re-bucketing, heap
/// entries are placement-independent, and the pop order is untouched.
class HybridWheelQueue final : public EventQueue {
 public:
  void push(const QEntry& e) override {
    const std::uint64_t idx = static_cast<std::uint64_t>(e.when) >> shift_;
    if (idx > open_idx_ + kMask && wheel_count_ == 0 && cal_count_ == 0 &&
        due_pos_ >= due_.size()) {
      // Wheel and calendar empty and the event is beyond the horizon
      // (e.g. after a long idle gap): teleport the cursor so the wheel
      // keeps absorbing near-future traffic around the new epoch.
      open_idx_ = idx - 1;
      cal_base_ = horizon_end() >> cal_shift();
    }
    const Time boundary = cal_start();
    if (e.when < boundary) {
      if (idx > open_idx_ && idx - open_idx_ <= kMask) {
        const std::size_t slot = static_cast<std::size_t>(idx) & kMask;
        buckets_[slot].push_back(e);
        words_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        ++wheel_count_;
        return;
      }
    } else {
      const std::uint64_t cidx =
          static_cast<std::uint64_t>(e.when) >> cal_shift();
      if (cidx - cal_base_ < kCalBuckets) {
        const std::size_t slot = static_cast<std::size_t>(cidx) & kCalMask;
        cal_[slot].push_back(e);
        cal_bitmap_ |= std::uint64_t{1} << slot;
        ++cal_count_;
        return;
      }
    }
    heap_.push(e);  // behind the cursor, or beyond the calendar span
  }

  bool peek(QEntry* out) override {
    const bool have_due = ensure_due();
    if (heap_.empty()) {
      if (!have_due) return false;
      *out = due_[due_pos_];
      return true;
    }
    if (have_due && entry_before(due_[due_pos_], heap_.top())) {
      *out = due_[due_pos_];
    } else {
      *out = heap_.top();
    }
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    const bool have_due = ensure_due();
    if (heap_.empty() ||
        (have_due && entry_before(due_[due_pos_], heap_.top()))) {
      if (!have_due || due_[due_pos_].when > deadline) return false;
      *out = due_[due_pos_++];
    } else {
      if (heap_.top().when > deadline) return false;
      *out = heap_.top();
      heap_.pop();
    }
    anchor_ = out->when;
    return true;
  }

  std::size_t pop_batch(Time deadline, QEntry* out, std::size_t max) override {
    std::size_t k = 0;
    while (k < max) {
      if (!ensure_due()) {
        // Wheel and calendar drained: only the spill heap remains.
        while (k < max && !heap_.empty() && heap_.top().when <= deadline) {
          out[k++] = heap_.top();
          heap_.pop();
        }
        break;
      }
      if (heap_.empty()) {
        // The common batched case: serve a straight run of the sorted
        // open bucket with no per-entry merge or virtual dispatch.
        const std::size_t lim = due_.size();
        while (k < max && due_pos_ < lim && due_[due_pos_].when <= deadline) {
          out[k++] = due_[due_pos_++];
        }
        if (due_pos_ < lim) break;  // stopped by the deadline (or max)
        continue;                   // bucket exhausted: open the next one
      }
      // Both the due list and the heap hold entries: per-entry merge.
      bool refill = false;
      while (k < max) {
        if (entry_before(due_[due_pos_], heap_.top())) {
          if (due_[due_pos_].when > deadline) break;
          out[k++] = due_[due_pos_++];
          if (due_pos_ >= due_.size()) {
            refill = true;
            break;
          }
        } else {
          if (heap_.top().when > deadline) break;
          out[k++] = heap_.top();
          heap_.pop();
          if (heap_.empty()) {
            refill = true;  // fall back to the straight-run loop
            break;
          }
        }
      }
      if (!refill) break;  // deadline or max reached
    }
    if (k > 0) anchor_ = out[k - 1].when;
    return k;
  }

  [[nodiscard]] std::size_t size() const override {
    return heap_.size() + wheel_count_ + cal_count_ + (due_.size() - due_pos_);
  }

  std::size_t compact(LiveFn live, void* ctx) override {
    std::size_t removed = heap_.compact(live, ctx);

    // Unconsumed tail of the open bucket (order is preserved by filtering).
    std::vector<QEntry> kept;
    kept.reserve(due_.size() - due_pos_);
    for (std::size_t i = due_pos_; i < due_.size(); ++i) {
      if (live(ctx, due_[i].slot, due_[i].gen)) {
        kept.push_back(due_[i]);
      } else {
        ++removed;
      }
    }
    due_ = std::move(kept);
    due_pos_ = 0;

    // Wheel-resident shells: a cancel-heavy workload confined to the wheel
    // must compact here, not just in the heap.
    for (std::size_t slot = 0; slot < kWheelBuckets; ++slot) {
      std::vector<QEntry>& b = buckets_[slot];
      if (b.empty()) continue;
      const std::size_t before = b.size();
      b.erase(std::remove_if(b.begin(), b.end(),
                             [&](const QEntry& e) {
                               return !live(ctx, e.slot, e.gen);
                             }),
              b.end());
      const std::size_t dropped = before - b.size();
      removed += dropped;
      wheel_count_ -= dropped;
      if (b.empty()) {
        words_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      }
    }

    // Calendar-resident shells: same story one tier further out — a
    // far-future cancel storm parks its shells here, and both the engine's
    // shell ratio (via size()) and this sweep must see them.
    for (std::size_t slot = 0; slot < kCalBuckets; ++slot) {
      std::vector<QEntry>& b = cal_[slot];
      if (b.empty()) continue;
      const std::size_t before = b.size();
      b.erase(std::remove_if(b.begin(), b.end(),
                             [&](const QEntry& e) {
                               return !live(ctx, e.slot, e.gen);
                             }),
              b.end());
      const std::size_t dropped = before - b.size();
      removed += dropped;
      cal_count_ -= dropped;
      if (b.empty()) {
        cal_bitmap_ &= ~(std::uint64_t{1} << slot);
      }
    }
    return removed;
  }

  bool retune(Time gap_ewma, QueueGeometry* geo) override {
    // Only at a full-empty rollover point. Emptiness of the bucketed tiers
    // makes the retune safe (no resident entry needs re-bucketing); also
    // requiring the spill heap empty makes it *batch-deterministic*: heap
    // entries would stay ordered across a shift change, but how many
    // entries sit in the heap vs the wheel depends on how far pop_batch
    // ran the cursor ahead of the dispatch point, and the retune decision
    // must be identical for every batch size. Total queue emptiness is
    // batch-size independent; the split is not.
    if (!heap_.empty() || wheel_count_ != 0 || cal_count_ != 0 ||
        due_pos_ < due_.size()) {
      return false;
    }
    const auto gap =
        static_cast<std::uint64_t>(gap_ewma < 1 ? Time{1} : gap_ewma);
    // Aim for ~4 inter-event gaps per bucket: floor(log2(gap)) + 2.
    int want = std::bit_width(gap) - 1 + 2;
    want = std::clamp(want, kMinWheelShift, kMaxWheelShift);
    if (want == shift_) return false;
    shift_ = want;
    open_idx_ = static_cast<std::uint64_t>(anchor_) >> shift_;
    cal_base_ = horizon_end() >> cal_shift();
    *geo = geometry();
    return true;
  }

  [[nodiscard]] QueueGeometry geometry() const override {
    QueueGeometry g;
    g.shift = shift_;
    g.bucket_ns = Time{1} << shift_;
    g.horizon_ns = static_cast<Time>(kWheelBuckets) << shift_;
    g.calendar_ns = static_cast<Time>(kCalBuckets) << cal_shift();
    return g;
  }

  [[nodiscard]] QueueKind kind() const override {
    return QueueKind::kHybridWheel;
  }
  [[nodiscard]] const char* name() const override { return "wheel"; }

 private:
  static constexpr std::size_t kMask = kWheelBuckets - 1;
  static constexpr std::size_t kWords = kWheelBuckets / 64;
  /// Calendar tier: 64 buckets, each spanning half a wheel horizon
  /// (kWheelBuckets/2 wheel buckets), i.e. ~32 wheel horizons of far-future
  /// coverage (~2.1 s at the default geometry). Half a horizon guarantees a
  /// whole calendar bucket always fits inside the wheel when it migrates.
  static constexpr std::size_t kCalBuckets = 64;
  static constexpr std::size_t kCalMask = kCalBuckets - 1;

  /// log2 width of one calendar bucket: half the wheel horizon.
  [[nodiscard]] int cal_shift() const {
    return shift_ + std::bit_width(kWheelBuckets) - 2;
  }
  /// First timestamp past the wheel's current coverage.
  [[nodiscard]] Time horizon_end() const {
    return static_cast<Time>((open_idx_ + kMask + 1) << shift_);
  }
  /// Calendar boundary B: wheel-resident entries are < this, calendar
  /// entries >= it.
  [[nodiscard]] Time cal_start() const {
    return static_cast<Time>(cal_base_ << cal_shift());
  }

  /// Advance the calendar boundary while a whole calendar span fits inside
  /// the wheel horizon, bulk-migrating each matured bucket into the wheel.
  void advance_boundary() {
    while ((cal_start() + (Time{1} << cal_shift())) <= horizon_end()) {
      const std::size_t slot = static_cast<std::size_t>(cal_base_) & kCalMask;
      ++cal_base_;
      if (cal_[slot].empty()) continue;
      migrate_cal_bucket(slot);
    }
  }

  /// Scatter one calendar bucket's entries into the wheel in bulk. The
  /// boundary has already advanced past the bucket, so push() routes every
  /// entry to a wheel bucket (or, at the open-bucket edge, the heap) —
  /// never back to the calendar.
  void migrate_cal_bucket(std::size_t slot) {
    std::vector<QEntry> moving;
    moving.swap(cal_[slot]);
    cal_bitmap_ &= ~(std::uint64_t{1} << slot);
    cal_count_ -= moving.size();
    for (const QEntry& e : moving) push(e);
    // Hand the drained vector's capacity back to the slot so steady-state
    // calendar traffic stays allocation-free.
    moving.clear();
    cal_[slot] = std::move(moving);
  }

  /// Refill the due list from the next non-empty bucket, pulling matured
  /// calendar buckets into the wheel as the cursor approaches them.
  /// Returns true if due_[due_pos_] is valid afterwards.
  bool ensure_due() {
    if (due_pos_ < due_.size()) return true;
    due_.clear();
    due_pos_ = 0;
    for (;;) {
      if (wheel_count_ != 0) {
        const std::uint64_t idx = next_nonempty();
        open_idx_ = idx;
        const std::size_t slot = static_cast<std::size_t>(idx) & kMask;
        due_.swap(buckets_[slot]);
        words_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        wheel_count_ -= due_.size();
        std::sort(due_.begin(), due_.end(),
                  [](const QEntry& a, const QEntry& b) {
                    return entry_before(a, b);
                  });
        // The cursor moved, so more of the calendar may fit in the wheel
        // now. Migrated entries are all >= the boundary and therefore
        // later than every entry in the just-opened bucket.
        advance_boundary();
        return true;
      }
      if (cal_count_ != 0) {
        // Wheel drained up to the boundary: jump the cursor to the
        // earliest non-empty calendar bucket and migrate it wholesale.
        const std::uint64_t cidx = next_nonempty_cal();
        open_idx_ =
            (cidx << cal_shift()) >> shift_;  // bucket *before* the span
        if (open_idx_ > 0) --open_idx_;
        cal_base_ = cidx + 1;
        migrate_cal_bucket(static_cast<std::size_t>(cidx) & kCalMask);
        continue;  // wheel_count_ > 0 now (or the entries hit the heap)
      }
      return false;
    }
  }

  /// Absolute index of the first non-empty wheel bucket strictly after
  /// open_idx_. Requires wheel_count_ > 0; every resident entry is within
  /// one rotation of open_idx_, so a circular bitmap scan starting just
  /// past the open slot finds the minimum.
  [[nodiscard]] std::uint64_t next_nonempty() const {
    const std::size_t open_slot = static_cast<std::size_t>(open_idx_) & kMask;
    const std::size_t start = (open_slot + 1) & kMask;
    std::size_t w = start >> 6;
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
      if (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        const std::size_t delta = (slot - open_slot + kWheelBuckets) & kMask;
        return open_idx_ + delta;
      }
      w = (w + 1) & (kWords - 1);
      word = words_[w];
    }
    std::abort();  // unreachable: wheel_count_ > 0 implies a set bit
  }

  /// Absolute index of the first non-empty calendar bucket at or after
  /// cal_base_. Requires cal_count_ > 0; every calendar entry is within
  /// kCalBuckets spans of the boundary.
  [[nodiscard]] std::uint64_t next_nonempty_cal() const {
    const std::size_t start = static_cast<std::size_t>(cal_base_) & kCalMask;
    const std::uint64_t rot = (cal_bitmap_ >> start) |
                              (start == 0 ? 0 : cal_bitmap_ << (64 - start));
    const auto delta =
        static_cast<std::uint64_t>(std::countr_zero(rot));  // rot != 0
    return cal_base_ + delta;
  }

  int shift_ = kDefaultWheelShift;
  std::array<std::vector<QEntry>, kWheelBuckets> buckets_;
  std::array<std::uint64_t, kWords> words_{};  // non-empty bucket bitmap
  /// Absolute index of the bucket last drained into `due_` (the "open"
  /// bucket). Monotone; only buckets strictly after it accept entries.
  std::uint64_t open_idx_ = 0;
  std::vector<QEntry> due_;  // open bucket, sorted ascending, consumed from
  std::size_t due_pos_ = 0;  // due_pos_
  std::size_t wheel_count_ = 0;  // entries resident in buckets_
  Time anchor_ = 0;              // `when` of the last entry popped

  std::array<std::vector<QEntry>, kCalBuckets> cal_;  // far-future tier
  std::uint64_t cal_bitmap_ = 0;  // non-empty calendar bucket bitmap
  /// Calendar-bucket index of the boundary B (see class comment); depends
  /// only on open_idx_ and shift_, both initialised above.
  std::uint64_t cal_base_ =
      static_cast<std::uint64_t>(horizon_end()) >> cal_shift();
  std::size_t cal_count_ = 0;  // entries resident in cal_

  QuadHeap heap_;  // behind-the-cursor + beyond-the-calendar spill
};

}  // namespace

bool parse_queue_kind(const char* s, QueueKind* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "binary") == 0) {
    *out = QueueKind::kBinaryHeap;
  } else if (std::strcmp(s, "quad") == 0) {
    *out = QueueKind::kQuadHeap;
  } else if (std::strcmp(s, "wheel") == 0) {
    *out = QueueKind::kHybridWheel;
  } else {
    return false;
  }
  return true;
}

QueueKind default_queue_kind() {
  static const QueueKind kind = [] {
    QueueKind k = QueueKind::kHybridWheel;
    parse_queue_kind(std::getenv("IRS_ENGINE_QUEUE"), &k);
    return k;
  }();
  return kind;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapQueue>();
    case QueueKind::kQuadHeap:
      return std::make_unique<QuadHeapQueue>();
    case QueueKind::kHybridWheel:
      break;
  }
  return std::make_unique<HybridWheelQueue>();
}

}  // namespace irs::sim
