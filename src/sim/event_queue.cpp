#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace irs::sim {

namespace {

/// Comparator adapting the dispatch order to std::*_heap's max-heap
/// convention (the "latest" entry compares greatest, so the heap front is
/// the earliest).
struct Later {
  bool operator()(const QEntry& a, const QEntry& b) const {
    return entry_before(b, a);
  }
};

// ---------------------------------------------------------------------------
// Binary heap (reference oracle)
// ---------------------------------------------------------------------------

class BinaryHeapQueue final : public EventQueue {
 public:
  [[nodiscard]] QueueKind kind() const override {
    return QueueKind::kBinaryHeap;
  }
  [[nodiscard]] const char* name() const override { return "binary"; }

  void push(const QEntry& e) override {
    h_.push_back(e);
    std::push_heap(h_.begin(), h_.end(), Later{});
  }

  bool peek(QEntry* out) override {
    if (h_.empty()) return false;
    *out = h_.front();
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    if (h_.empty() || h_.front().when > deadline) return false;
    std::pop_heap(h_.begin(), h_.end(), Later{});
    *out = h_.back();
    h_.pop_back();
    return true;
  }

  [[nodiscard]] std::size_t size() const override { return h_.size(); }

  std::size_t compact(LiveFn live, void* ctx) override {
    const std::size_t before = h_.size();
    h_.erase(std::remove_if(h_.begin(), h_.end(),
                            [&](const QEntry& e) {
                              return !live(ctx, e.slot, e.gen);
                            }),
             h_.end());
    std::make_heap(h_.begin(), h_.end(), Later{});
    return before - h_.size();
  }

 private:
  std::vector<QEntry> h_;
};

// ---------------------------------------------------------------------------
// 4-ary implicit heap
// ---------------------------------------------------------------------------

/// Min-heap on {when, seq} with fan-out 4: children of node i are
/// 4i+1..4i+4. Depth is half a binary heap's, and the four children sit in
/// 96 contiguous bytes (two cache lines at worst), so a sift-down pays ~one
/// line fetch per level instead of two scattered ones. Non-virtual core so
/// the hybrid wheel can embed it as its far-future spill without paying a
/// second dispatch.
class QuadHeap {
 public:
  void push(const QEntry& e) {
    h_.push_back(e);
    sift_up(h_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return h_.empty(); }
  [[nodiscard]] std::size_t size() const { return h_.size(); }
  [[nodiscard]] const QEntry& top() const { return h_.front(); }

  void pop() {
    h_.front() = h_.back();
    h_.pop_back();
    if (!h_.empty()) sift_down(0);
  }

  std::size_t compact(EventQueue::LiveFn live, void* ctx) {
    const std::size_t before = h_.size();
    h_.erase(std::remove_if(h_.begin(), h_.end(),
                            [&](const QEntry& e) {
                              return !live(ctx, e.slot, e.gen);
                            }),
             h_.end());
    // Floyd heapify: sift down every internal node, last parent first.
    if (h_.size() > 1) {
      for (std::size_t i = (h_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
    }
    return before - h_.size();
  }

 private:
  void sift_up(std::size_t i) {
    const QEntry e = h_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!entry_before(e, h_[parent])) break;
      h_[i] = h_[parent];
      i = parent;
    }
    h_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = h_.size();
    const QEntry e = h_[i];
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + 4, n);
      std::size_t min_child = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (entry_before(h_[c], h_[min_child])) min_child = c;
      }
      if (!entry_before(h_[min_child], e)) break;
      h_[i] = h_[min_child];
      i = min_child;
    }
    h_[i] = e;
  }

  std::vector<QEntry> h_;
};

class QuadHeapQueue final : public EventQueue {
 public:
  [[nodiscard]] QueueKind kind() const override { return QueueKind::kQuadHeap; }
  [[nodiscard]] const char* name() const override { return "quad"; }

  void push(const QEntry& e) override { h_.push(e); }

  bool peek(QEntry* out) override {
    if (h_.empty()) return false;
    *out = h_.top();
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    if (h_.empty() || h_.top().when > deadline) return false;
    *out = h_.top();
    h_.pop();
    return true;
  }

  [[nodiscard]] std::size_t size() const override { return h_.size(); }

  std::size_t compact(LiveFn live, void* ctx) override {
    return h_.compact(live, ctx);
  }

 private:
  QuadHeap h_;
};

// ---------------------------------------------------------------------------
// Hybrid near-future wheel
// ---------------------------------------------------------------------------

/// Timer wheel over 512 buckets of 2^17 ns (131.072 µs) — a ~67 ms horizon
/// that comfortably covers the dense periodic traffic (10 ms hv ticks,
/// 30 ms slices, sub-ms softirq timers) the simulations are dominated by.
///
/// An entry whose bucket lies strictly after the open bucket and within
/// one rotation of it goes to the wheel: an O(1) append. Everything else —
/// beyond the horizon, or at/behind the open bucket — spills to the
/// embedded 4-ary heap. Dispatch drains one bucket at a time: when the
/// open bucket ("due" list) empties, the bitmap locates the next non-empty
/// bucket, whose entries are sorted by {when, seq} once and consumed in
/// order. Because buckets partition disjoint, increasing time ranges,
/// every entry in a later bucket is strictly later than the whole due
/// list, so comparing only due-front against heap-top reproduces the
/// global {when, seq} order exactly.
class HybridWheelQueue final : public EventQueue {
 public:
  [[nodiscard]] QueueKind kind() const override {
    return QueueKind::kHybridWheel;
  }
  [[nodiscard]] const char* name() const override { return "wheel"; }

  void push(const QEntry& e) override {
    const std::uint64_t idx = static_cast<std::uint64_t>(e.when) >> kShift;
    if (idx > open_idx_ + kMask && wheel_count_ == 0 &&
        due_pos_ >= due_.size()) {
      // Empty wheel and the event is beyond the horizon (e.g. after a long
      // idle gap): teleport the cursor so the wheel keeps absorbing
      // near-future traffic around the new epoch.
      open_idx_ = idx - 1;
    }
    if (idx > open_idx_ && idx - open_idx_ <= kMask) {
      const std::size_t slot = static_cast<std::size_t>(idx) & kMask;
      buckets_[slot].push_back(e);
      words_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++wheel_count_;
      return;
    }
    heap_.push(e);
  }

  bool peek(QEntry* out) override {
    const bool have_due = ensure_due();
    if (heap_.empty()) {
      if (!have_due) return false;
      *out = due_[due_pos_];
      return true;
    }
    if (have_due && entry_before(due_[due_pos_], heap_.top())) {
      *out = due_[due_pos_];
    } else {
      *out = heap_.top();
    }
    return true;
  }

  bool pop_until(Time deadline, QEntry* out) override {
    const bool have_due = ensure_due();
    if (heap_.empty() ||
        (have_due && entry_before(due_[due_pos_], heap_.top()))) {
      if (!have_due || due_[due_pos_].when > deadline) return false;
      *out = due_[due_pos_++];
    } else {
      if (heap_.top().when > deadline) return false;
      *out = heap_.top();
      heap_.pop();
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const override {
    return heap_.size() + wheel_count_ + (due_.size() - due_pos_);
  }

  std::size_t compact(LiveFn live, void* ctx) override {
    std::size_t removed = heap_.compact(live, ctx);

    // Unconsumed tail of the open bucket (order is preserved by filtering).
    std::vector<QEntry> kept;
    kept.reserve(due_.size() - due_pos_);
    for (std::size_t i = due_pos_; i < due_.size(); ++i) {
      if (live(ctx, due_[i].slot, due_[i].gen)) {
        kept.push_back(due_[i]);
      } else {
        ++removed;
      }
    }
    due_ = std::move(kept);
    due_pos_ = 0;

    // Wheel-resident shells: a cancel-heavy workload confined to the wheel
    // must compact here, not just in the heap.
    for (std::size_t slot = 0; slot < kBuckets; ++slot) {
      std::vector<QEntry>& b = buckets_[slot];
      if (b.empty()) continue;
      const std::size_t before = b.size();
      b.erase(std::remove_if(b.begin(), b.end(),
                             [&](const QEntry& e) {
                               return !live(ctx, e.slot, e.gen);
                             }),
              b.end());
      const std::size_t dropped = before - b.size();
      removed += dropped;
      wheel_count_ -= dropped;
      if (b.empty()) {
        words_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      }
    }
    return removed;
  }

 private:
  static constexpr int kShift = 17;             // 131.072 µs buckets
  static constexpr std::size_t kBuckets = 512;  // ~67 ms horizon
  static constexpr std::size_t kMask = kBuckets - 1;
  static constexpr std::size_t kWords = kBuckets / 64;

  /// Refill the due list from the next non-empty bucket. Returns true if
  /// due_[due_pos_] is valid afterwards.
  bool ensure_due() {
    if (due_pos_ < due_.size()) return true;
    due_.clear();
    due_pos_ = 0;
    if (wheel_count_ == 0) return false;
    const std::uint64_t idx = next_nonempty();
    open_idx_ = idx;
    const std::size_t slot = static_cast<std::size_t>(idx) & kMask;
    due_.swap(buckets_[slot]);
    words_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    wheel_count_ -= due_.size();
    std::sort(due_.begin(), due_.end(),
              [](const QEntry& a, const QEntry& b) {
                return entry_before(a, b);
              });
    return true;
  }

  /// Absolute index of the first non-empty bucket strictly after
  /// open_idx_. Requires wheel_count_ > 0; every resident entry is within
  /// one rotation of open_idx_, so a circular bitmap scan starting just
  /// past the open slot finds the minimum.
  [[nodiscard]] std::uint64_t next_nonempty() const {
    const std::size_t open_slot = static_cast<std::size_t>(open_idx_) & kMask;
    const std::size_t start = (open_slot + 1) & kMask;
    std::size_t w = start >> 6;
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
      if (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        const std::size_t delta = (slot - open_slot + kBuckets) & kMask;
        return open_idx_ + delta;
      }
      w = (w + 1) & (kWords - 1);
      word = words_[w];
    }
    std::abort();  // unreachable: wheel_count_ > 0 implies a set bit
  }

  std::array<std::vector<QEntry>, kBuckets> buckets_;
  std::array<std::uint64_t, kWords> words_{};  // non-empty bucket bitmap
  /// Absolute index of the bucket last drained into `due_` (the "open"
  /// bucket). Monotone; only buckets strictly after it accept entries.
  std::uint64_t open_idx_ = 0;
  std::vector<QEntry> due_;  // open bucket, sorted ascending, consumed from
  std::size_t due_pos_ = 0;  // due_pos_
  std::size_t wheel_count_ = 0;  // entries resident in buckets_
  QuadHeap heap_;                // far-future + behind-the-cursor spill
};

}  // namespace

bool parse_queue_kind(const char* s, QueueKind* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "binary") == 0) {
    *out = QueueKind::kBinaryHeap;
  } else if (std::strcmp(s, "quad") == 0) {
    *out = QueueKind::kQuadHeap;
  } else if (std::strcmp(s, "wheel") == 0) {
    *out = QueueKind::kHybridWheel;
  } else {
    return false;
  }
  return true;
}

QueueKind default_queue_kind() {
  static const QueueKind kind = [] {
    QueueKind k = QueueKind::kHybridWheel;
    parse_queue_kind(std::getenv("IRS_ENGINE_QUEUE"), &k);
    return k;
  }();
  return kind;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapQueue>();
    case QueueKind::kQuadHeap:
      return std::make_unique<QuadHeapQueue>();
    case QueueKind::kHybridWheel:
      break;
  }
  return std::make_unique<HybridWheelQueue>();
}

}  // namespace irs::sim
