// Deterministic random numbers for the simulator.
//
// std::mt19937 would work, but its huge state makes simulations expensive to
// fork and its distributions are not portable across standard libraries.
// xoshiro256** seeded by SplitMix64 is small, fast, and fully specified, so
// two builds of this repo produce bit-identical experiment outputs.
#pragma once

#include <cstdint>

#include "src/sim/time.h"

namespace irs::sim {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Reset the stream from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) using Lemire's multiply-shift reduction
  /// (bound == 0 returns 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Duration uniformly jittered around `mean` by +/- `frac` (e.g. 0.2 for
  /// 20% jitter). Never returns a negative duration.
  Duration jittered(Duration mean, double frac);

  /// Exponentially distributed duration with the given mean (for
  /// open-loop request arrivals). Never negative.
  Duration exponential(Duration mean);

  /// Derive an independent child stream (e.g. one per task) such that the
  /// child sequence is stable under unrelated parent draws.
  Rng fork();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace irs::sim
