// Simulated-time primitives for the IRS reproduction.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts. Signed arithmetic keeps subtraction safe; the range (~292 years)
// is far beyond any experiment here.
#pragma once

#include <cstdint>

namespace irs::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A duration in simulated nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Convenience constructors so configuration code reads like the paper
/// ("30 ms slice", "20 us upcall").
constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Render a Time/Duration as fractional milliseconds (for reports).
constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Render a Time/Duration as fractional microseconds (for reports).
constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Render a Time/Duration as fractional seconds (for reports).
constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace irs::sim
