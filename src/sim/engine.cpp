#include "src/sim/engine.h"

#include <utility>

namespace irs::sim {

EventHandle Engine::schedule(Duration delay, Callback fn, const char* label) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn), label);
}

EventHandle Engine::schedule_at(Time when, Callback fn, const char* label) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled, label});
  return EventHandle{std::move(cancelled)};
}

bool Engine::dispatch_one() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the small fields and move the callback through a pop-then-run
    // pattern: take a copy of the shared state, pop, then invoke.
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;  // cancelled shell; skip silently
    *ev.cancelled = true;         // mark fired so late cancel() is a no-op
    now_ = ev.when;
    ++dispatched_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && dispatch_one()) ++n;
  assert(n < max_events && "event budget exhausted: runaway simulation?");
  return n;
}

bool Engine::run_while(const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (!dispatch_one()) return false;  // drained before predicate flipped
  }
  return true;
}

}  // namespace irs::sim
