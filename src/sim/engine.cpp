#include "src/sim/engine.h"

#include <utility>

#include "src/sim/trace.h"

namespace irs::sim {

EventHandle Engine::schedule(Duration delay, Callback fn, const char* label) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn), label);
}

EventHandle Engine::schedule_at(Time when, Callback fn, const char* label) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.label = label;
  queue_->push(QEntry{when, next_seq_++, slot, s.gen});
  return EventHandle{this, slot, s.gen};
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.label = "";
  ++s.gen;  // invalidate every outstanding handle/queue entry (may wrap)
  s.next_free = free_head_;
  free_head_ = slot;
}

void Engine::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (!event_pending(slot, gen)) return;
  release_slot(slot);
  ++cancelled_shells_;  // the queue entry stays behind as a stale shell
  // The trigger (shells > size/2 with size >= 64) requires > 32 shells, so
  // skip the queue-size query until that is even possible.
  if (cancelled_shells_ > 32) {
    const std::size_t sz = queue_->size();
    if (cancelled_shells_ > sz / 2 && sz >= 64) compact();
  }
}

void Engine::compact() {
  queue_->compact(
      [](void* ctx, std::uint32_t slot, std::uint32_t gen) {
        return static_cast<Engine*>(ctx)->event_pending(slot, gen);
      },
      this);
  cancelled_shells_ = 0;  // compact removes exactly the stale shells
}

bool Engine::peek_live(QEntry* out) {
  while (queue_->peek(out)) {
    if (event_pending(out->slot, out->gen)) return true;
    queue_->pop(out);  // discard the stale shell
    --cancelled_shells_;
  }
  return false;
}

void Engine::dispatch_entry(const QEntry& e) {
  // Move the callback out and free the slot *before* invoking: the
  // callback may itself schedule (reusing this slot) or cancel, and a
  // handle to this event must already read !pending() while it runs.
  Callback fn = std::move(slots_[e.slot].fn);
  release_slot(e.slot);
  now_ = e.when;
  ++dispatched_;
  fn();
}

bool Engine::dispatch_one() {
  QEntry e;
  while (queue_->pop(&e)) {
    if (event_pending(e.slot, e.gen)) {
      dispatch_entry(e);
      return true;
    }
    --cancelled_shells_;  // discard the stale shell
  }
  return false;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  QEntry e;
  while (queue_->pop_until(deadline, &e)) {
    if (!event_pending(e.slot, e.gen)) {
      --cancelled_shells_;  // discard the stale shell
      continue;
    }
    dispatch_entry(e);
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Engine::RunOutcome Engine::run(std::uint64_t max_events) {
  RunOutcome out;
  while (out.dispatched < max_events && dispatch_one()) ++out.dispatched;
  QEntry e;
  if (peek_live(&e)) {
    out.budget_exhausted = true;
    if (trace_ != nullptr) {
      trace_->record(now_, TraceKind::kEngineStop, -1, -1,
                     "event budget exhausted: runaway simulation?");
    }
  }
  return out;
}

bool Engine::run_while(const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (!dispatch_one()) return false;  // drained before predicate flipped
  }
  return true;
}

}  // namespace irs::sim
