#include "src/sim/engine.h"

#include <algorithm>
#include <utility>

#include "src/sim/trace.h"

namespace irs::sim {

EventHandle Engine::schedule(Duration delay, Callback fn, const char* label) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn), label);
}

EventHandle Engine::schedule_at(Time when, Callback fn, const char* label) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.label = label;
  heap_.push_back(QEntry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{this, slot, s.gen};
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.label = "";
  ++s.gen;  // invalidate every outstanding handle/heap entry (may wrap)
  s.next_free = free_head_;
  free_head_ = slot;
}

void Engine::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (!event_pending(slot, gen)) return;
  release_slot(slot);
  ++cancelled_shells_;  // the heap entry stays behind as a stale shell
  if (cancelled_shells_ > heap_.size() / 2 && heap_.size() >= 64) compact();
}

void Engine::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const QEntry& e) {
                               return slots_[e.slot].gen != e.gen;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_shells_ = 0;
}

void Engine::prune_top() {
  while (!heap_.empty()) {
    const QEntry& top = heap_.front();
    if (slots_[top.slot].gen == top.gen) return;  // live
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --cancelled_shells_;
  }
}

bool Engine::dispatch_one() {
  prune_top();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const QEntry e = heap_.back();
  heap_.pop_back();
  // Move the callback out and free the slot *before* invoking: the
  // callback may itself schedule (reusing this slot) or cancel, and a
  // handle to this event must already read !pending() while it runs.
  Callback fn = std::move(slots_[e.slot].fn);
  release_slot(e.slot);
  now_ = e.when;
  ++dispatched_;
  fn();
  return true;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    prune_top();
    if (heap_.empty() || heap_.front().when > deadline) break;
    if (dispatch_one()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Engine::RunOutcome Engine::run(std::uint64_t max_events) {
  RunOutcome out;
  while (out.dispatched < max_events && dispatch_one()) ++out.dispatched;
  prune_top();
  if (!heap_.empty()) {
    out.budget_exhausted = true;
    if (trace_ != nullptr) {
      trace_->record(now_, TraceKind::kEngineStop, -1, -1,
                     "event budget exhausted: runaway simulation?");
    }
  }
  return out;
}

bool Engine::run_while(const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (!dispatch_one()) return false;  // drained before predicate flipped
  }
  return true;
}

}  // namespace irs::sim
