#include "src/sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/sim/trace.h"

namespace irs::sim {

EventHandle Engine::schedule(Duration delay, Callback fn, const char* label) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn), label);
}

EventHandle Engine::schedule_at(Time when, Callback fn, const char* label) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.label = label;
  queue_->push(QEntry{when, next_seq_++, slot, s.gen});
  // Batch-order guard: remember the earliest in-batch schedule so the
  // dispatch loop can interleave the queue before a later scratch entry.
  // One predictable compare outside a batch (min_batch_push_ is kTimeMax).
  if (when < min_batch_push_) min_batch_push_ = when;
  return EventHandle{this, slot, s.gen};
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.label = "";
  ++s.gen;  // invalidate every outstanding handle/queue entry (may wrap)
  s.next_free = free_head_;
  free_head_ = slot;
}

void Engine::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (!event_pending(slot, gen)) return;
  release_slot(slot);
  ++cancelled_shells_;  // the queue entry stays behind as a stale shell
  // Deferred while a batch is in flight: a cancelled entry may sit in the
  // dispatch scratch, where compact() cannot reach it (the loop runs the
  // trigger again between batches).
  if (!in_batch_) maybe_compact();
}

void Engine::maybe_compact() {
  // The trigger (shells > size/2 with size >= kCompactMinQueue) requires
  // more than kCompactShellFloor shells, so skip the queue-size query — a
  // virtual call — until that is even possible.
  if (cancelled_shells_ > kCompactShellFloor) {
    const std::size_t sz = queue_->size();
    if (cancelled_shells_ > sz / 2 && sz >= kCompactMinQueue) compact();
  }
}

void Engine::compact() {
  queue_->compact(
      [](void* ctx, std::uint32_t slot, std::uint32_t gen) {
        return static_cast<Engine*>(ctx)->event_pending(slot, gen);
      },
      this);
  cancelled_shells_ = 0;  // compact removes exactly the stale shells
}

bool Engine::peek_live(QEntry* out) {
  while (queue_->peek(out)) {
    if (event_pending(out->slot, out->gen)) return true;
    queue_->pop(out);  // discard the stale shell
    --cancelled_shells_;
  }
  return false;
}

void Engine::dispatch_entry(const QEntry& e) {
  // Move the callback out and free the slot *before* invoking: the
  // callback may itself schedule (reusing this slot) or cancel, and a
  // handle to this event must already read !pending() while it runs.
  Callback fn = std::move(slots_[e.slot].fn);
  release_slot(e.slot);
  // Inter-dispatch gap EWMA (alpha = 1/8), the retune input. Depends only
  // on the dispatch order, so it is identical across queue backends and
  // batch sizes.
  const Time gap = e.when - now_;
  gap_ewma_ += (gap - gap_ewma_) >> 3;
  now_ = e.when;
  ++dispatched_;
  fn();
}

bool Engine::dispatch_one() {
  if (in_batch_) flush_batch_tail();  // nested run: make the queue whole
  QEntry e;
  while (queue_->pop(&e)) {
    if (event_pending(e.slot, e.gen)) {
      dispatch_entry(e);
      return true;
    }
    --cancelled_shells_;  // discard the stale shell
  }
  return false;
}

void Engine::flush_batch_tail() {
  for (std::size_t i = batch_pos_; i < batch_len_; ++i) {
    queue_->push(batch_buf_[i]);
  }
  batch_pos_ = 0;
  batch_len_ = 0;
  in_batch_ = false;
  min_batch_push_ = kTimeMax;
}

void Engine::drain_before(Time when) {
  QEntry e;
  while (dispatched_ < budget_end_ && queue_->pop_until(when - 1, &e)) {
    if (!event_pending(e.slot, e.gen)) {
      --cancelled_shells_;  // discard the stale shell
      continue;
    }
    dispatch_entry(e);
  }
  // Everything strictly before `when` has fired (unless the budget cut the
  // drain short, in which case the caller stops anyway), so the watermark
  // can rise to `when`: a same-timestamp schedule orders after the scratch
  // entry by seq and needs no drain.
  if (dispatched_ < budget_end_) min_batch_push_ = when;
}

std::uint64_t Engine::dispatch_loop(Time deadline, std::uint64_t max_events) {
  if (in_batch_) flush_batch_tail();  // nested run: make the queue whole
  const std::uint64_t start = dispatched_;
  const std::uint64_t saved_budget = budget_end_;  // restored for nesting
  budget_end_ = (max_events > UINT64_MAX - dispatched_)
                    ? UINT64_MAX
                    : dispatched_ + max_events;
  while (dispatched_ < budget_end_) {
    batch_len_ = queue_->pop_batch(deadline, batch_buf_.data(),
                                   batch_buf_.size());
    if (batch_len_ == 0) break;
    batch_pos_ = 0;
    in_batch_ = true;
    min_batch_push_ = kTimeMax;
    while (batch_pos_ < batch_len_ && dispatched_ < budget_end_) {
      const QEntry e = batch_buf_[batch_pos_];
      if (!event_pending(e.slot, e.gen)) {
        --cancelled_shells_;  // stale shell popped into the scratch
        ++batch_pos_;
        continue;
      }
      if (min_batch_push_ < e.when) {
        // An earlier callback scheduled before this entry: fire everything
        // strictly before it so the global {when, seq} order holds.
        drain_before(e.when);
        if (!in_batch_) break;  // a nested run flushed the scratch
        if (dispatched_ >= budget_end_) break;
        if (!event_pending(e.slot, e.gen)) {
          --cancelled_shells_;  // a drained event cancelled this entry
          ++batch_pos_;
          continue;
        }
      }
      // Consume before invoking: if the callback starts a nested run, the
      // flushed tail must exclude this (already firing) entry.
      ++batch_pos_;
      dispatch_entry(e);
    }
    if (!in_batch_) continue;  // scratch flushed by a nested run
    if (batch_pos_ < batch_len_) {
      flush_batch_tail();  // budget stop mid-batch: re-queue the tail
      break;
    }
    batch_pos_ = 0;
    batch_len_ = 0;
    in_batch_ = false;
    min_batch_push_ = kTimeMax;
    maybe_compact();  // deferred shell-ratio trigger (see cancel_event)
  }
  budget_end_ = saved_budget;
  return dispatched_ - start;
}

std::uint64_t Engine::run_until(Time deadline) {
  const std::uint64_t n = dispatch_loop(deadline, UINT64_MAX);
  if (now_ < deadline) now_ = deadline;
  maybe_retune();
  return n;
}

Engine::RunOutcome Engine::run(std::uint64_t max_events) {
  RunOutcome out;
  out.dispatched = dispatch_loop(kTimeMax, max_events);
  if (out.dispatched >= max_events) {
    QEntry e;
    if (peek_live(&e)) {
      out.budget_exhausted = true;
      if (trace_ != nullptr) {
        trace_->record(now_, TraceKind::kEngineStop, -1, -1,
                       "event budget exhausted: runaway simulation?");
      }
    }
  }
  maybe_retune();
  return out;
}

bool Engine::run_while(const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (!dispatch_one()) return false;  // drained before predicate flipped
  }
  return true;
}

void Engine::maybe_retune() {
  if (retune_period_ == 0 ||
      dispatched_ - last_retune_dispatched_ < retune_period_) {
    return;
  }
  last_retune_dispatched_ = dispatched_;
  QueueGeometry geo;
  if (queue_->retune(gap_ewma_, &geo)) {
    // Recorded so a run's geometry history is reproducible from its trace.
    // Identical across batch sizes: the retune offer happens at the end of
    // a run (scratch empty), where queue contents, gap_ewma_, and
    // dispatched_ are all batch-size independent.
    if (trace_ != nullptr) {
      trace_->record(now_, TraceKind::kQueueGeometry, geo.shift, -1,
                     "wheel retune");
    }
  }
}

void Engine::set_dispatch_batch(std::size_t n) {
  if (in_batch_) flush_batch_tail();  // resize invalidates the scratch
  n = std::clamp<std::size_t>(n, 1, kMaxDispatchBatch);
  batch_buf_.assign(n, QEntry{});
}

std::size_t Engine::default_dispatch_batch() {
  static const std::size_t n = [] {
    const char* s = std::getenv("IRS_ENGINE_BATCH");
    if (s == nullptr) return kDefaultDispatchBatch;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 1) return kDefaultDispatchBatch;
    return std::min(static_cast<std::size_t>(v), kMaxDispatchBatch);
  }();
  return n;
}

}  // namespace irs::sim
