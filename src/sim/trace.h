// Lightweight event tracing for debugging, for tests that assert on
// scheduling decisions, and for the obs exporters. Disabled by default;
// enabling keeps the most recent `capacity` records in a ring buffer.
//
// Producers normally go through an obs::TraceBuffer (per-module staging,
// flushed in blocks — see src/obs/trace_buffer.h); the direct record() path
// remains for low-rate producers and as the unbatched baseline the
// bench_report overhead metric compares against.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace irs::sim {

/// Trace record categories, roughly one per subsystem.
enum class TraceKind : std::uint8_t {
  kHvSchedule,    // hypervisor picked a vCPU for a pCPU
  kHvPreempt,     // involuntary vCPU deschedule
  kHvBlock,       // vCPU blocked (guest idle / SCHEDOP_block)
  kHvWake,        // vCPU woke
  kSaSend,        // SA notification sent (IRS)
  kSaAck,         // guest acknowledged SA
  kGuestSwitch,   // guest context switch on a vCPU
  kGuestWake,     // task wakeup
  kMigrate,       // task migrated between vCPUs
  kLhp,           // lock-holder preemption detected
  kLwp,           // lock-waiter preemption detected
  kPleExit,       // pause-loop exit fired
  kCoStop,        // relaxed-co stopped a leading vCPU
  kEngineStop,    // engine stopped dispatching (event budget exhausted)
  kQueueGeometry, // event-queue backend retuned its wheel geometry
  kReqBegin,      // request began (a=req id, b=SLO class, c=task;
                  //   synthesized from the workload span log at analysis
                  //   time — never recorded into the ring at runtime)
  kReqEnd,        // request completed (same payload and provenance)
  kUser,          // free-form
};

/// One past the last enumerator — lets tests iterate every kind.
inline constexpr int kNumTraceKinds = static_cast<int>(TraceKind::kUser) + 1;

const char* trace_kind_name(TraceKind k);

/// Inverse of trace_kind_name. Returns false for unknown names (including
/// the "?" placeholder), so exporter names can never silently desync from
/// the enum.
bool trace_kind_from_name(const char* name, TraceKind* out);

/// Owned small-string annotation. TraceRecord used to hold a `const char*`,
/// which dangled whenever a producer passed anything but a string literal;
/// records now copy (and truncate) the note into inline storage.
class TraceNote {
 public:
  static constexpr std::size_t kMax = 15;  // + NUL terminator

  TraceNote() { buf_[0] = '\0'; }
  TraceNote(const char* s) {  // NOLINT(google-explicit-constructor)
    if (s == nullptr) s = "";
    std::size_t n = std::strlen(s);
    if (n > kMax) n = kMax;
    std::memcpy(buf_, s, n);
    buf_[n] = '\0';
  }

  [[nodiscard]] const char* c_str() const { return buf_; }
  [[nodiscard]] bool empty() const { return buf_[0] == '\0'; }
  friend bool operator==(const TraceNote& a, const char* b) {
    return std::strcmp(a.buf_, b) == 0;
  }

 private:
  char buf_[kMax + 1];
};

struct TraceRecord {
  Time when = 0;
  /// Global record-order sequence number, assigned when the record is
  /// produced (not when its staging buffer is flushed): snapshots sort by
  /// (when, seq), so block-flushed records from different modules
  /// interleave exactly as they were recorded.
  std::uint64_t seq = 0;
  TraceKind kind = TraceKind::kUser;
  std::int32_t a = -1;  // subsystem-defined (e.g. vCPU id)
  std::int32_t b = -1;  // subsystem-defined (e.g. pCPU or task id)
  std::int32_t c = -1;  // subsystem-defined third payload (e.g. source vCPU)
  TraceNote note;
};

/// Fixed-capacity ring of trace records.
///
/// Capacity overflow is not silent: `dropped()` counts overwritten records
/// and `total_recorded()` counts every accepted record, so tests can detect
/// a wrapped ring and the exporter annotates truncation.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) { set_capacity(capacity); }

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  void set_capacity(std::size_t capacity);

  void record(Time when, TraceKind kind, std::int32_t a, std::int32_t b,
              const char* note = "", std::int32_t c = -1);

  /// Sequence number for a record produced into a staging buffer. Must be
  /// drawn at record time (see TraceRecord::seq).
  [[nodiscard]] std::uint64_t alloc_seq() { return next_seq_++; }

  /// Bulk insert from a staging buffer. Records may arrive out of global
  /// order across blocks; snapshot() restores (when, seq) order.
  void append_block(const TraceRecord* recs, std::size_t n);

  /// Staging buffers attached to this ring register a flush hook so that
  /// snapshot()/count()/dump() always observe fully-flushed data. Returns a
  /// registration id for remove_flush_hook().
  int add_flush_hook(std::function<void()> hook);
  void remove_flush_hook(int id);

  /// Flush every attached staging buffer into the ring.
  void flush_buffers();

  /// Records in chronological order (oldest first). Flushes staging
  /// buffers first.
  [[nodiscard]] std::vector<TraceRecord> snapshot();

  /// Count of records of a given kind currently retained.
  [[nodiscard]] std::size_t count(TraceKind kind);

  /// Human-readable dump (for failing-test diagnostics).
  [[nodiscard]] std::string dump();

  /// Records lost to ring wrap-around since the last set_capacity/clear.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Records accepted (retained + dropped) since the last
  /// set_capacity/clear.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }

  void clear();

 private:
  void push(const TraceRecord& rec);

  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  std::vector<TraceRecord> ring_;
  std::vector<std::pair<int, std::function<void()>>> flush_hooks_;
  int next_hook_id_ = 0;
};

}  // namespace irs::sim
