// Lightweight event tracing for debugging and for tests that assert on
// scheduling decisions. Disabled by default; enabling keeps the most recent
// `capacity` records in a ring buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace irs::sim {

/// Trace record categories, roughly one per subsystem.
enum class TraceKind : std::uint8_t {
  kHvSchedule,    // hypervisor picked a vCPU for a pCPU
  kHvPreempt,     // involuntary vCPU deschedule
  kHvBlock,       // vCPU blocked (guest idle / SCHEDOP_block)
  kHvWake,        // vCPU woke
  kSaSend,        // SA notification sent (IRS)
  kSaAck,         // guest acknowledged SA
  kGuestSwitch,   // guest context switch on a vCPU
  kGuestWake,     // task wakeup
  kMigrate,       // task migrated between vCPUs
  kLhp,           // lock-holder preemption detected
  kLwp,           // lock-waiter preemption detected
  kPleExit,       // pause-loop exit fired
  kCoStop,        // relaxed-co stopped a leading vCPU
  kEngineStop,    // engine stopped dispatching (event budget exhausted)
  kUser,          // free-form
};

const char* trace_kind_name(TraceKind k);

struct TraceRecord {
  Time when = 0;
  TraceKind kind = TraceKind::kUser;
  std::int32_t a = -1;  // subsystem-defined (e.g. vCPU id)
  std::int32_t b = -1;  // subsystem-defined (e.g. pCPU or task id)
  const char* note = "";
};

/// Fixed-capacity ring of trace records.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  void set_capacity(std::size_t capacity);

  void record(Time when, TraceKind kind, std::int32_t a, std::int32_t b,
              const char* note = "");

  /// Records in chronological order (oldest first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Count of records of a given kind currently retained.
  [[nodiscard]] std::size_t count(TraceKind kind) const;

  /// Human-readable dump (for failing-test diagnostics).
  [[nodiscard]] std::string dump() const;

  void clear();

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write slot
  bool wrapped_ = false;
  std::vector<TraceRecord> ring_;
};

}  // namespace irs::sim
