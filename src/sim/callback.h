// Small-buffer-optimised move-only callable for the event engine's hot
// path. std::function heap-allocates for captures beyond ~2 pointers; every
// event the simulator schedules captures a handful of pointers/values, so a
// 64-byte inline buffer holds essentially all of them with zero heap
// traffic. Oversized callables (rare, cold paths only) transparently fall
// back to a single heap allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace irs::sim {

/// Move-only `void()` callable with inline storage. Relocation (move) is
/// destructive on the source, so moved-from InlineFns are empty.
class InlineFn {
 public:
  /// Inline capacity. Sized so that every steady-state callback in the
  /// simulator (lambdas capturing a few pointers, ids, and durations) stays
  /// on the stack-side buffer; see SimCallbacksFitInline in the tests.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when callables of type `F` live in the inline buffer (no heap).
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, kill src
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void relocate(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr Ops kOps{invoke, relocate, destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& ptr(void* p) { return *static_cast<F**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) F*(ptr(src));
    }
    static void destroy(void* p) { delete ptr(p); }
    static constexpr Ops kOps{invoke, relocate, destroy};
  };

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace irs::sim
