// Priority-queue backends for the discrete-event engine.
//
// The engine's schedule/cancel/dispatch loop is the hottest code in the
// repo, and everything it needs from a queue is five operations over a
// 24-byte POD entry: push, peek-min, deadline-bounded pop (single or
// batched), and an occasional stale-shell compaction sweep. `EventQueue`
// pins that contract down as a small interface so backends can compete on
// cache behaviour while the engine's determinism story stays in one place:
//
//   * total order — entries are ordered by {when, seq}; `seq` is the
//     engine's monotone schedule counter, so same-timestamp events fire in
//     scheduling order (stable FIFO tie-break). Every backend must honour
//     the exact same total order: simulations are bit-identical across
//     backends, which the randomized oracle tests assert.
//   * shells — the engine cancels events by bumping the slot generation
//     and leaving the entry behind as a stale "shell". Backends store
//     shells like any other entry; the engine discards them on pop and
//     triggers compact() when shells outnumber half the queue, wherever
//     they sit (heap, wheel bucket, or calendar bucket).
//
// Backends (make_event_queue):
//   * kBinaryHeap — the original std::push_heap/pop_heap binary heap; kept
//     as the reference oracle and the "before" of the deep-queue bench.
//   * kQuadHeap — 4-ary implicit heap. Half the tree depth of a binary
//     heap, and the four children of a node share at most two cache lines,
//     so deep-queue sifts touch fewer lines per level.
//   * kHybridWheel — the default: a timestamp-bucketed near-future timer
//     wheel that absorbs dense periodic tick/slice/softirq traffic in O(1)
//     pushes, backed by a far-future calendar tier (64 half-horizon
//     buckets that bulk-migrate into the wheel as they mature) and a 4-ary
//     spill heap for behind-the-cursor and beyond-calendar entries.
//     Bucket width is adaptive: retune() re-derives it from the engine's
//     observed inter-event gap EWMA at safe rollover points (the queue
//     fully empty), so tight-cadence workloads get
//     narrow buckets and timer-cadence workloads keep the default
//     geometry. Buckets are sorted lazily when the dispatch cursor reaches
//     them, and pops merge-compare the open bucket against the heap top,
//     preserving the {when, seq} order exactly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace irs::sim {

// ---------------------------------------------------------------------------
// Tuning constants, each derived from the simulator's event cadence
// ---------------------------------------------------------------------------

/// Engine shell-compaction trigger: compact when stale shells outnumber
/// half the queue AND the queue holds at least this many entries. Below
/// 64 entries an O(n) sweep saves less than the bookkeeping costs — the
/// steady-state queue of a 2-VM simulation (per-pCPU slice timers, hv
/// ticks, softirqs) is ~50-200 entries, so 64 ≈ "at least a typical
/// queue's worth of entries".
inline constexpr std::size_t kCompactMinQueue = 64;

/// Shell count below which the trigger above cannot possibly fire
/// (shells > size/2 with size >= kCompactMinQueue requires more than
/// kCompactMinQueue/2 shells). cancel_event skips the queue-size query —
/// a virtual call — entirely until the count clears this floor.
inline constexpr std::size_t kCompactShellFloor = kCompactMinQueue / 2;

/// Default timer-wheel bucket width, as a log2 of nanoseconds: 2^17 ns =
/// 131.072 µs. Derived from the scheduling cadence the simulations are
/// dominated by: the hypervisor accounting tick (10 ms) and scheduling
/// slice (30 ms) spawn sub-ms softirq/IPI/wake follow-ups, so adjacent
/// events are typically tens-to-hundreds of µs apart — a 131 µs bucket
/// holds ~1-2 of them, keeping the lazy per-bucket sort trivial.
inline constexpr int kDefaultWheelShift = 17;

/// Bucket count of the timer wheel (power of two for mask arithmetic).
/// With the default shift this spans 512 × 131 µs ≈ 67 ms — longer than
/// two 30 ms slices plus margin, so every periodic rearm (tick, slice,
/// credit window) lands inside the wheel instead of spilling.
inline constexpr std::size_t kWheelBuckets = 512;

/// Bounds for the adaptive bucket shift (see EventQueue::retune):
/// 2^6 ns = 64 ns buckets at the tight end (sub-µs cadences batch ~dozens
/// of events per bucket without pathological migration churn) up to
/// 2^20 ns ≈ 1 ms buckets (horizon ≈ 0.5 s) for very sparse workloads.
inline constexpr int kMinWheelShift = 6;
inline constexpr int kMaxWheelShift = 20;

/// 24-byte POD queue entry; cheap to move during sift operations. `slot`
/// and `gen` identify the engine pool slot the callback lives in; an entry
/// is live iff the slot's current generation still equals `gen`.
struct QEntry {
  Time when = 0;
  std::uint64_t seq = 0;  // FIFO tie-break for identical timestamps
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// Strict total order of dispatch: earlier `when` first, then lower `seq`.
inline bool entry_before(const QEntry& a, const QEntry& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

/// Deadline that never bounds a pop (every event `when` is below it).
inline constexpr Time kTimeMax = INT64_MAX;

/// Selects an EventQueue backend (see make_event_queue).
enum class QueueKind : std::uint8_t {
  kBinaryHeap,
  kQuadHeap,
  kHybridWheel,
};

/// Snapshot of a backend's internal geometry, for tests and diagnostics.
/// All-zero for backends without a wheel.
struct QueueGeometry {
  int shift = 0;          // log2 of the bucket width in ns
  Time bucket_ns = 0;     // 1 << shift
  Time horizon_ns = 0;    // wheel span: kWheelBuckets << shift
  Time calendar_ns = 0;   // calendar tier span beyond the horizon
};

/// Minimal priority-queue contract the engine dispatch loop needs.
/// Entries are opaque to the queue apart from the {when, seq} order;
/// liveness is the engine's business (see compact()).
class EventQueue {
 public:
  /// Liveness predicate for compaction: returns true if the entry
  /// {slot, gen} is still live. Plain function pointer + context so
  /// backends stay free of std::function on any path.
  using LiveFn = bool (*)(void* ctx, std::uint32_t slot, std::uint32_t gen);

  virtual ~EventQueue() = default;

  [[nodiscard]] virtual QueueKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Insert an entry. `e.when` must be >= the `when` of every entry already
  /// popped, and `e.seq` must never collide with a resident entry's seq.
  /// Normal scheduling pushes monotone seqs (the engine clamps `when` to
  /// now() and draws seq from a counter); the engine may also *re-insert*
  /// entries it previously popped via pop_batch but did not dispatch (a
  /// nested run or an exhausted event budget) — those arrive with older
  /// seqs, which every backend must order correctly.
  virtual void push(const QEntry& e) = 0;

  /// Earliest entry by {when, seq} without removing it; false when empty.
  /// May reorganise internal state (the wheel opens its next bucket), so it
  /// is non-const, but never changes the pop sequence. Off the hot path —
  /// the dispatch loop uses pop_until/pop_batch so extraction costs one
  /// virtual call per event (or per batch) and one min-selection.
  virtual bool peek(QEntry* out) = 0;

  /// Remove and return the earliest entry iff its `when` is <= deadline;
  /// false when the queue is empty or the earliest entry is later. The
  /// single-event extraction primitive: deadline-bounded runs and
  /// unbounded runs (deadline = kTimeMax) share it.
  virtual bool pop_until(Time deadline, QEntry* out) = 0;

  /// Remove the up-to-`max` earliest entries whose `when` is <= deadline
  /// into `out[0..)` in strict {when, seq} order; returns the count (0
  /// when nothing is due). Exactly equivalent to `max` pop_until calls —
  /// the batched engine dispatch drains a whole run of due entries in one
  /// virtual call and amortises the per-call cursor-advance/merge setup
  /// (the wheel serves an open-bucket run as a straight copy loop).
  virtual std::size_t pop_batch(Time deadline, QEntry* out,
                                std::size_t max) = 0;

  /// Remove and return the earliest entry; false when empty.
  bool pop(QEntry* out) { return pop_until(kTimeMax, out); }

  /// Entries currently stored, including stale shells — the denominator of
  /// the engine's shell-ratio compaction trigger, so it must count every
  /// resident entry wherever it sits (heap, wheel bucket, open bucket, or
  /// calendar bucket).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Drop every entry for which `live` returns false, preserving the
  /// {when, seq} order of the survivors. Returns the number removed.
  virtual std::size_t compact(LiveFn live, void* ctx) = 0;

  /// Offer the backend a chance to re-derive its geometry from the
  /// engine's EWMA of observed inter-dispatch gaps. Backends may only act
  /// at safe rollover points — the wheel requires itself *fully* empty:
  /// emptiness of the bucketed tiers makes the retune order-safe, and
  /// including the spill heap makes the decision identical for every
  /// dispatch batch size (the wheel/heap split depends on how far
  /// pop_batch ran the cursor ahead; total emptiness does not). Must
  /// never change the pop order. Returns true and fills `*geo` iff the
  /// geometry changed — the engine records that on the trace so runs
  /// stay reproducible. Default: fixed-geometry backends decline.
  virtual bool retune(Time /*gap_ewma*/, QueueGeometry* /*geo*/) {
    return false;
  }

  /// Current geometry (all-zero for heap backends).
  [[nodiscard]] virtual QueueGeometry geometry() const { return {}; }
};

/// The backend the engine uses when none is requested explicitly:
/// kHybridWheel, overridable for experiments via IRS_ENGINE_QUEUE
/// ("binary", "quad", "wheel"); unknown values fall back to the default.
/// Read once per process.
QueueKind default_queue_kind();

/// Parse a backend name ("binary", "quad", "wheel"). Returns false on
/// unknown names.
bool parse_queue_kind(const char* s, QueueKind* out);

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace irs::sim
