// Priority-queue backends for the discrete-event engine.
//
// The engine's schedule/cancel/dispatch loop is the hottest code in the
// repo, and everything it needs from a queue is four operations over a
// 24-byte POD entry: push, peek-min, pop-min, and an occasional stale-shell
// compaction sweep. `EventQueue` pins that contract down as a small
// interface so backends can compete on cache behaviour while the engine's
// determinism story stays in one place:
//
//   * total order — entries are ordered by {when, seq}; `seq` is the
//     engine's monotone schedule counter, so same-timestamp events fire in
//     scheduling order (stable FIFO tie-break). Every backend must honour
//     the exact same total order: simulations are bit-identical across
//     backends, which the randomized oracle tests assert.
//   * shells — the engine cancels events by bumping the slot generation
//     and leaving the entry behind as a stale "shell". Backends store
//     shells like any other entry; the engine discards them on pop and
//     triggers compact() when shells outnumber half the queue, wherever
//     they sit (heap or wheel).
//
// Backends (make_event_queue):
//   * kBinaryHeap — the original std::push_heap/pop_heap binary heap; kept
//     as the reference oracle and the "before" of the deep-queue bench.
//   * kQuadHeap — 4-ary implicit heap. Half the tree depth of a binary
//     heap, and the four children of a node share at most two cache lines,
//     so deep-queue sifts touch fewer lines per level.
//   * kHybridWheel — the default: a timestamp-bucketed near-future timer
//     wheel (131 µs buckets, ~67 ms horizon) that absorbs the dense
//     periodic tick/slice/softirq traffic in O(1) pushes, spilling only
//     far-future (or behind-the-cursor) events to a 4-ary heap. Buckets
//     are sorted lazily when the dispatch cursor reaches them, and pops
//     merge-compare the open bucket against the heap top, preserving the
//     {when, seq} order exactly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace irs::sim {

/// 24-byte POD queue entry; cheap to move during sift operations. `slot`
/// and `gen` identify the engine pool slot the callback lives in; an entry
/// is live iff the slot's current generation still equals `gen`.
struct QEntry {
  Time when = 0;
  std::uint64_t seq = 0;  // FIFO tie-break for identical timestamps
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// Strict total order of dispatch: earlier `when` first, then lower `seq`.
inline bool entry_before(const QEntry& a, const QEntry& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

/// Deadline that never bounds a pop (every event `when` is below it).
inline constexpr Time kTimeMax = INT64_MAX;

/// Selects an EventQueue backend (see make_event_queue).
enum class QueueKind : std::uint8_t {
  kBinaryHeap,
  kQuadHeap,
  kHybridWheel,
};

/// Minimal priority-queue contract the engine dispatch loop needs.
/// Entries are opaque to the queue apart from the {when, seq} order;
/// liveness is the engine's business (see compact()).
class EventQueue {
 public:
  /// Liveness predicate for compaction: returns true if the entry
  /// {slot, gen} is still live. Plain function pointer + context so
  /// backends stay free of std::function on any path.
  using LiveFn = bool (*)(void* ctx, std::uint32_t slot, std::uint32_t gen);

  virtual ~EventQueue() = default;

  [[nodiscard]] virtual QueueKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Insert an entry. `e.when` must be >= the `when` of every entry already
  /// popped (the engine clamps to now()), and `e.seq` must be strictly
  /// greater than every seq ever pushed.
  virtual void push(const QEntry& e) = 0;

  /// Earliest entry by {when, seq} without removing it; false when empty.
  /// May reorganise internal state (the wheel opens its next bucket), so it
  /// is non-const, but never changes the pop sequence. Off the hot path —
  /// the dispatch loop uses pop_until so each event costs one virtual call
  /// and one min-selection.
  virtual bool peek(QEntry* out) = 0;

  /// Remove and return the earliest entry iff its `when` is <= deadline;
  /// false when the queue is empty or the earliest entry is later. The
  /// engine's one hot-path extraction primitive: deadline-bounded runs and
  /// unbounded runs (deadline = kTimeMax) share it.
  virtual bool pop_until(Time deadline, QEntry* out) = 0;

  /// Remove and return the earliest entry; false when empty.
  bool pop(QEntry* out) { return pop_until(kTimeMax, out); }

  /// Entries currently stored, including stale shells — the denominator of
  /// the engine's shell-ratio compaction trigger, so it must count every
  /// resident entry wherever it sits (heap, wheel bucket, or open bucket).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Drop every entry for which `live` returns false, preserving the
  /// {when, seq} order of the survivors. Returns the number removed.
  virtual std::size_t compact(LiveFn live, void* ctx) = 0;
};

/// The backend the engine uses when none is requested explicitly:
/// kHybridWheel, overridable for experiments via IRS_ENGINE_QUEUE
/// ("binary", "quad", "wheel"); unknown values fall back to the default.
/// Read once per process.
QueueKind default_queue_kind();

/// Parse a backend name ("binary", "quad", "wheel"). Returns false on
/// unknown names.
bool parse_queue_kind(const char* s, QueueKind* out);

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace irs::sim
