// Discrete-event simulation engine.
//
// The engine owns a priority queue of event references backed by a slab
// pool of event slots. Events scheduled for the same timestamp fire in
// scheduling order (stable FIFO tie-break), which keeps simulations
// deterministic regardless of queue internals.
//
// Memory layout (the schedule/cancel/dispatch path is the hottest code in
// the repo — see bench/micro_benchmarks.cpp):
//   * callbacks live in a slab of reusable `Slot`s, each holding a
//     small-buffer-optimised `InlineFn` — no per-event heap allocation in
//     steady state;
//   * the queue stores 24-byte POD entries {when, seq, slot, gen} behind
//     the sim::EventQueue interface (src/sim/event_queue.h). The default
//     backend is a near-future timer wheel that absorbs the dense periodic
//     tick/slice/softirq traffic in O(1) and spills far-future events to a
//     4-ary heap; the original binary heap remains available as the
//     reference oracle. All backends dispatch in the identical {when, seq}
//     order, so traces are bit-identical across them;
//   * cancellation bumps the slot's generation counter, instantly
//     invalidating every outstanding handle and leaving a stale "shell"
//     entry in the queue that dispatch skips. When shells outnumber half
//     the queue — counting shells parked in wheel buckets, not just the
//     heap — the engine compacts them away in one O(n) pass.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace irs::sim {

class Engine;
class Trace;
struct EngineTestAccess;

/// Handle to a scheduled event, a {slot, generation} reference into the
/// engine's event pool. Handles are value types: trivially copyable, two
/// words wide, never owning.
///
/// A handle is in exactly one of three states:
///   1. detached  — default-constructed, never bound to an engine:
///                  `!attached() && !pending()`;
///   2. pending   — the event is queued and will fire:
///                  `attached() && pending()`;
///   3. spent     — the event fired or was cancelled (the two are
///                  deliberately indistinguishable: either way it will
///                  never run): `attached() && !pending()`.
/// Cancelling an already-spent or detached handle is a no-op, so callers
/// can hold handles without tracking lifecycle precisely. A handle must not
/// outlive its engine.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still waiting to fire.
  [[nodiscard]] bool pending() const;

  /// True if this handle was ever returned by a schedule call (i.e. it is
  /// not default-constructed). Distinguishes state 1 from state 3 above.
  [[nodiscard]] bool attached() const { return eng_ != nullptr; }

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel();

 private:
  friend class Engine;
  EventHandle(Engine* eng, std::uint32_t slot, std::uint32_t gen)
      : eng_(eng), slot_(slot), gen_(gen) {}

  Engine* eng_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event-driven clock that everything in the simulation hangs off.
class Engine {
 public:
  using Callback = InlineFn;

  /// The queue backend defaults to default_queue_kind() (the hybrid wheel,
  /// or IRS_ENGINE_QUEUE when set); tests and benches pass one explicitly.
  Engine() : Engine(default_queue_kind()) {}
  explicit Engine(QueueKind queue_kind)
      : queue_(make_event_queue(queue_kind)) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Negative delays are clamped
  /// to zero (fires this instant, after already-queued same-time events).
  EventHandle schedule(Duration delay, Callback fn, const char* label = "");

  /// Schedule `fn` at an absolute timestamp (clamped to now()).
  EventHandle schedule_at(Time when, Callback fn, const char* label = "");

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events dispatched.
  std::uint64_t run_until(Time deadline);

  /// Outcome of a bounded run() call.
  struct RunOutcome {
    std::uint64_t dispatched = 0;
    /// True when the run stopped because `max_events` was hit while live
    /// events remained queued — a runaway self-rescheduling loop. Also
    /// recorded on the trace ring (TraceKind::kEngineStop) when tracing is
    /// enabled.
    bool budget_exhausted = false;
  };

  /// Run until no events remain, or until `max_events` have been
  /// dispatched. Callers passing a budget must check
  /// `RunOutcome::budget_exhausted` — hitting the guard is a simulation
  /// bug (runaway loop), not a normal completion.
  RunOutcome run(std::uint64_t max_events = UINT64_MAX);

  /// Dispatch events while `keep_going()` returns true. Returns true if the
  /// loop stopped because the predicate flipped, false if the queue drained
  /// first.
  bool run_while(const std::function<bool()>& keep_going);

  /// Number of events waiting in the queue (including cancelled shells not
  /// yet skipped or compacted away), wherever they sit — wheel buckets
  /// count too.
  [[nodiscard]] std::size_t queued() const { return queue_->size(); }

  /// Cancelled shells currently sitting in the queue.
  [[nodiscard]] std::size_t cancelled_shells() const {
    return cancelled_shells_;
  }

  /// Size of the slot pool (high-water mark of concurrently queued events).
  [[nodiscard]] std::size_t pool_slots() const { return slots_.size(); }

  /// Total events dispatched over the engine's lifetime.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// The queue backend this engine dispatches from.
  [[nodiscard]] QueueKind queue_kind() const { return queue_->kind(); }
  [[nodiscard]] const char* queue_name() const { return queue_->name(); }

  /// Attach a trace ring for engine-level diagnostics (budget exhaustion).
  void set_trace(Trace* trace) { trace_ = trace; }

 private:
  friend class EventHandle;
  friend struct EngineTestAccess;

  static constexpr std::uint32_t kNpos = UINT32_MAX;

  /// Pooled event body. `gen` counts reuses of the slot; an EventHandle or
  /// queue entry referring to it is live iff its generation matches.
  /// Generations are 32-bit: a stale handle could alias a future event
  /// only after 2^32 reuses of one slot while the handle is still held,
  /// which no simulation approaches (engines dispatch ~1e7 events total).
  struct Slot {
    Callback fn;
    const char* label = "";
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNpos;
  };

  [[nodiscard]] bool event_pending(std::uint32_t slot,
                                   std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen;
  }
  void cancel_event(std::uint32_t slot, std::uint32_t gen);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// Discard stale shells off the queue front so *out is the earliest live
  /// entry; false when no live entry remains. Off the hot path (run()'s
  /// budget-exhaustion check) — the dispatch loops pop directly.
  bool peek_live(QEntry* out);
  /// Consume a popped live entry: free its slot, advance the clock, invoke.
  void dispatch_entry(const QEntry& e);
  /// Drop every stale shell in one O(n) pass; called lazily when shells
  /// exceed half the queue (wheel-resident shells included on both sides
  /// of that ratio).
  void compact();
  bool dispatch_one();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t cancelled_shells_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  Trace* trace_ = nullptr;
};

inline bool EventHandle::pending() const {
  return eng_ != nullptr && eng_->event_pending(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (eng_ != nullptr) eng_->cancel_event(slot_, gen_);
}

}  // namespace irs::sim
