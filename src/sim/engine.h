// Discrete-event simulation engine.
//
// The engine owns a priority queue of event references backed by a slab
// pool of event slots. Events scheduled for the same timestamp fire in
// scheduling order (stable FIFO tie-break), which keeps simulations
// deterministic regardless of queue internals.
//
// Memory layout (the schedule/cancel/dispatch path is the hottest code in
// the repo — see bench/micro_benchmarks.cpp):
//   * callbacks live in a slab of reusable `Slot`s, each holding a
//     small-buffer-optimised `InlineFn` — no per-event heap allocation in
//     steady state;
//   * the queue stores 24-byte POD entries {when, seq, slot, gen} behind
//     the sim::EventQueue interface (src/sim/event_queue.h). The default
//     backend is a near-future timer wheel that absorbs the dense periodic
//     tick/slice/softirq traffic in O(1), parks far-future events in a
//     calendar tier, and spills the rest to a 4-ary heap; the original
//     binary heap remains available as the reference oracle. All backends
//     dispatch in the identical {when, seq} order, so traces are
//     bit-identical across them;
//   * run_until()/run() dispatch in batches: pop_batch() drains up to
//     dispatch_batch() due entries into a scratch buffer in one virtual
//     call, and the loop consumes the scratch. Observable behaviour is
//     identical to single pops for ANY batch size — a low-watermark of
//     in-batch schedules (min_batch_push_) forces a drain of the queue
//     whenever a callback schedules ahead of the remaining scratch, and a
//     nested run() flushes the scratch tail back into the queue first;
//   * cancellation bumps the slot's generation counter, instantly
//     invalidating every outstanding handle and leaving a stale "shell"
//     entry in the queue that dispatch skips. When shells outnumber half
//     the queue — counting shells parked in wheel buckets, not just the
//     heap — the engine compacts them away in one O(n) pass.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace irs::sim {

class Engine;
class Trace;
struct EngineTestAccess;

/// Default dispatch-batch size: one pop_batch per 64 events amortises the
/// two virtual calls per event to ~1/32 of one while the 24-byte * 64 =
/// 1.5 KiB scratch stays well inside L1. Overridable per engine with
/// set_dispatch_batch() or process-wide via IRS_ENGINE_BATCH.
inline constexpr std::size_t kDefaultDispatchBatch = 64;

/// Upper bound on the batch size (6 KiB of scratch): past a few hundred
/// entries the virtual-call amortisation is already ~100% and a bigger
/// scratch only adds cache pressure and nested-run flush cost.
inline constexpr std::size_t kMaxDispatchBatch = 256;

/// How many dispatches between offers to retune the queue geometry
/// (Engine::set_retune_period): rare enough that the retune() virtual
/// call never shows up in profiles, frequent enough that a workload
/// phase change (timer cadence -> tight cadence) is picked up within a
/// few ms of simulated time.
inline constexpr std::uint64_t kDefaultRetunePeriod = 4096;

/// Handle to a scheduled event, a {slot, generation} reference into the
/// engine's event pool. Handles are value types: trivially copyable, two
/// words wide, never owning.
///
/// A handle is in exactly one of three states:
///   1. detached  — default-constructed, never bound to an engine:
///                  `!attached() && !pending()`;
///   2. pending   — the event is queued and will fire:
///                  `attached() && pending()`;
///   3. spent     — the event fired or was cancelled (the two are
///                  deliberately indistinguishable: either way it will
///                  never run): `attached() && !pending()`.
/// Cancelling an already-spent or detached handle is a no-op, so callers
/// can hold handles without tracking lifecycle precisely. A handle must not
/// outlive its engine.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still waiting to fire.
  [[nodiscard]] bool pending() const;

  /// True if this handle was ever returned by a schedule call (i.e. it is
  /// not default-constructed). Distinguishes state 1 from state 3 above.
  [[nodiscard]] bool attached() const { return eng_ != nullptr; }

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel();

 private:
  friend class Engine;
  EventHandle(Engine* eng, std::uint32_t slot, std::uint32_t gen)
      : eng_(eng), slot_(slot), gen_(gen) {}

  Engine* eng_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event-driven clock that everything in the simulation hangs off.
class Engine {
 public:
  using Callback = InlineFn;

  /// The queue backend defaults to default_queue_kind() (the hybrid wheel,
  /// or IRS_ENGINE_QUEUE when set); tests and benches pass one explicitly.
  Engine() : Engine(default_queue_kind()) {}
  explicit Engine(QueueKind queue_kind)
      : queue_(make_event_queue(queue_kind)),
        batch_buf_(default_dispatch_batch()) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Negative delays are clamped
  /// to zero (fires this instant, after already-queued same-time events).
  EventHandle schedule(Duration delay, Callback fn, const char* label = "");

  /// Schedule `fn` at an absolute timestamp (clamped to now()).
  EventHandle schedule_at(Time when, Callback fn, const char* label = "");

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events dispatched.
  std::uint64_t run_until(Time deadline);

  /// Outcome of a bounded run() call.
  struct RunOutcome {
    std::uint64_t dispatched = 0;
    /// True when the run stopped because `max_events` was hit while live
    /// events remained queued — a runaway self-rescheduling loop. Also
    /// recorded on the trace ring (TraceKind::kEngineStop) when tracing is
    /// enabled.
    bool budget_exhausted = false;
  };

  /// Run until no events remain, or until `max_events` have been
  /// dispatched. Callers passing a budget must check
  /// `RunOutcome::budget_exhausted` — hitting the guard is a simulation
  /// bug (runaway loop), not a normal completion.
  RunOutcome run(std::uint64_t max_events = UINT64_MAX);

  /// Dispatch events while `keep_going()` returns true. Returns true if the
  /// loop stopped because the predicate flipped, false if the queue drained
  /// first.
  bool run_while(const std::function<bool()>& keep_going);

  /// Number of events waiting to fire (including cancelled shells not yet
  /// skipped or compacted away), wherever they sit — wheel buckets,
  /// calendar buckets, and the in-flight dispatch scratch all count.
  [[nodiscard]] std::size_t queued() const {
    return queue_->size() + (batch_len_ - batch_pos_);
  }

  /// Cancelled shells currently sitting in the queue.
  [[nodiscard]] std::size_t cancelled_shells() const {
    return cancelled_shells_;
  }

  /// Size of the slot pool (high-water mark of concurrently queued events).
  [[nodiscard]] std::size_t pool_slots() const { return slots_.size(); }

  /// Total events dispatched over the engine's lifetime.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// The queue backend this engine dispatches from.
  [[nodiscard]] QueueKind queue_kind() const { return queue_->kind(); }
  [[nodiscard]] const char* queue_name() const { return queue_->name(); }

  /// The backend's current wheel geometry (all-zero for heap backends);
  /// changes only via retune, which records TraceKind::kQueueGeometry.
  [[nodiscard]] QueueGeometry queue_geometry() const {
    return queue_->geometry();
  }

  /// Attach a trace ring for engine-level diagnostics (budget exhaustion,
  /// queue-geometry retunes).
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Events drained per pop_batch call in run_until()/run(). Clamped to
  /// [1, kMaxDispatchBatch]; 1 degenerates to the single-pop loop.
  /// Dispatch order and every observable side effect are batch-size
  /// independent (asserted by the batch oracle property test).
  void set_dispatch_batch(std::size_t n);
  [[nodiscard]] std::size_t dispatch_batch() const {
    return batch_buf_.size();
  }

  /// Process-wide default batch size: IRS_ENGINE_BATCH when set (clamped
  /// to [1, kMaxDispatchBatch]), else kDefaultDispatchBatch. Read once.
  static std::size_t default_dispatch_batch();

  /// Dispatches between geometry-retune offers to the queue backend
  /// (see EventQueue::retune); 0 disables retuning entirely.
  void set_retune_period(std::uint64_t period) { retune_period_ = period; }

  /// EWMA of inter-dispatch gaps (ns), the retune input. Identical across
  /// queue backends and batch sizes because the dispatch order is.
  [[nodiscard]] Time gap_ewma() const { return gap_ewma_; }

 private:
  friend class EventHandle;
  friend struct EngineTestAccess;

  static constexpr std::uint32_t kNpos = UINT32_MAX;

  /// Pooled event body. `gen` counts reuses of the slot; an EventHandle or
  /// queue entry referring to it is live iff its generation matches.
  /// Generations are 32-bit: a stale handle could alias a future event
  /// only after 2^32 reuses of one slot while the handle is still held,
  /// which no simulation approaches (engines dispatch ~1e7 events total).
  struct Slot {
    Callback fn;
    const char* label = "";
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNpos;
  };

  [[nodiscard]] bool event_pending(std::uint32_t slot,
                                   std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen;
  }
  void cancel_event(std::uint32_t slot, std::uint32_t gen);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// Discard stale shells off the queue front so *out is the earliest live
  /// entry; false when no live entry remains. Off the hot path (run()'s
  /// budget-exhaustion check) — the dispatch loops pop directly.
  bool peek_live(QEntry* out);
  /// Consume a popped live entry: free its slot, advance the clock, invoke.
  void dispatch_entry(const QEntry& e);
  /// Drop every stale shell in one O(n) pass; called lazily when shells
  /// exceed half the queue (wheel/calendar-resident shells included on
  /// both sides of that ratio).
  void compact();
  /// Run the shell-ratio trigger; deferred while a batch is in flight
  /// because scratch-resident shells are in cancelled_shells_ but not in
  /// queue_->size().
  void maybe_compact();
  bool dispatch_one();

  /// The batched core of run_until()/run(): dispatch while `when` is
  /// <= deadline and fewer than max_events have fired. Returns the number
  /// dispatched (including events fired by drain_before interleaves).
  std::uint64_t dispatch_loop(Time deadline, std::uint64_t max_events);
  /// Dispatch every queued entry with `when` strictly before `when` —
  /// called when an in-batch callback scheduled ahead of the remaining
  /// scratch, to restore the global {when, seq} order before the next
  /// scratch entry fires.
  void drain_before(Time when);
  /// Push the unconsumed scratch tail back into the queue (the push
  /// contract allows re-inserting previously popped entries). Restores
  /// the queue-is-everything invariant for nested runs and budget stops.
  void flush_batch_tail();
  /// Offer the backend a geometry retune every retune_period_ dispatches;
  /// records TraceKind::kQueueGeometry when the backend acts.
  void maybe_retune();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t cancelled_shells_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  Trace* trace_ = nullptr;

  // Batched-dispatch state. Entries in batch_buf_[batch_pos_, batch_len_)
  // have been popped from the queue but not yet dispatched; in_batch_ is
  // true exactly while that range may be non-empty.
  std::vector<QEntry> batch_buf_;
  std::size_t batch_pos_ = 0;
  std::size_t batch_len_ = 0;
  bool in_batch_ = false;
  /// Earliest `when` scheduled since the current scratch was filled; when
  /// it undercuts the next scratch entry, drain_before() interleaves the
  /// queue. kTimeMax outside a batch.
  Time min_batch_push_ = kTimeMax;
  /// dispatched_ value at which the current bounded run must stop; shared
  /// with drain_before so interleaved dispatches respect the budget.
  /// Saved/restored across nested dispatch_loop calls.
  std::uint64_t budget_end_ = 0;

  // Adaptive-geometry state (see EventQueue::retune).
  Time gap_ewma_ = 0;
  std::uint64_t retune_period_ = kDefaultRetunePeriod;
  std::uint64_t last_retune_dispatched_ = 0;
};

inline bool EventHandle::pending() const {
  return eng_ != nullptr && eng_->event_pending(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (eng_ != nullptr) eng_->cancel_event(slot_, gen_);
}

}  // namespace irs::sim
