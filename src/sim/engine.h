// Discrete-event simulation engine.
//
// The engine owns a priority queue of cancellable events. Events scheduled
// for the same timestamp fire in scheduling order (stable FIFO tie-break),
// which keeps simulations deterministic regardless of heap internals.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace irs::sim {

class Engine;

/// Handle to a scheduled event. Default-constructed handles are inert.
/// Cancelling an already-fired or already-cancelled event is a no-op, so
/// callers can hold handles without tracking lifecycle precisely.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still waiting to fire.
  [[nodiscard]] bool pending() const { return state_ && !*state_; }

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel() {
    if (state_) *state_ = true;
    state_.reset();
  }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}

  std::shared_ptr<bool> state_;  // *state_ == true means cancelled/fired
};

/// The event-driven clock that everything in the simulation hangs off.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Negative delays are clamped
  /// to zero (fires this instant, after already-queued same-time events).
  EventHandle schedule(Duration delay, Callback fn, const char* label = "");

  /// Schedule `fn` at an absolute timestamp (clamped to now()).
  EventHandle schedule_at(Time when, Callback fn, const char* label = "");

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events dispatched.
  std::uint64_t run_until(Time deadline);

  /// Run until no events remain. `max_events` guards against runaway
  /// self-rescheduling loops; exceeding it aborts via assert in debug and
  /// stops dispatching in release.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Dispatch events while `keep_going()` returns true. Returns true if the
  /// loop stopped because the predicate flipped, false if the queue drained
  /// first.
  bool run_while(const std::function<bool()>& keep_going);

  /// Number of events waiting in the queue (including cancelled shells).
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Total events dispatched over the engine's lifetime.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;  // FIFO tie-break for identical timestamps
    Callback fn;
    std::shared_ptr<bool> cancelled;
    const char* label = "";
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace irs::sim
