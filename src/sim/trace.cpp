#include "src/sim/trace.h"

#include <sstream>

namespace irs::sim {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kHvSchedule: return "hv.schedule";
    case TraceKind::kHvPreempt: return "hv.preempt";
    case TraceKind::kHvBlock: return "hv.block";
    case TraceKind::kHvWake: return "hv.wake";
    case TraceKind::kSaSend: return "sa.send";
    case TraceKind::kSaAck: return "sa.ack";
    case TraceKind::kGuestSwitch: return "guest.switch";
    case TraceKind::kGuestWake: return "guest.wake";
    case TraceKind::kMigrate: return "guest.migrate";
    case TraceKind::kLhp: return "sync.lhp";
    case TraceKind::kLwp: return "sync.lwp";
    case TraceKind::kPleExit: return "hv.ple";
    case TraceKind::kCoStop: return "hv.co-stop";
    case TraceKind::kEngineStop: return "engine.stop";
    case TraceKind::kUser: return "user";
  }
  return "?";
}

void Trace::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  head_ = 0;
  wrapped_ = false;
}

void Trace::record(Time when, TraceKind kind, std::int32_t a, std::int32_t b,
                   const char* note) {
  if (!enabled()) return;
  TraceRecord rec{when, kind, a, b, note};
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    head_ = ring_.size() % capacity_;
  } else {
    ring_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
  }
}

std::vector<TraceRecord> Trace::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (!wrapped_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::size_t Trace::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& r : ring_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::ostringstream os;
  for (const auto& r : snapshot()) {
    os << to_ms(r.when) << "ms " << trace_kind_name(r.kind) << " a=" << r.a
       << " b=" << r.b;
    if (r.note && r.note[0]) os << " (" << r.note << ")";
    os << '\n';
  }
  return os.str();
}

void Trace::clear() {
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
}

}  // namespace irs::sim
