#include "src/sim/trace.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace irs::sim {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kHvSchedule: return "hv.schedule";
    case TraceKind::kHvPreempt: return "hv.preempt";
    case TraceKind::kHvBlock: return "hv.block";
    case TraceKind::kHvWake: return "hv.wake";
    case TraceKind::kSaSend: return "sa.send";
    case TraceKind::kSaAck: return "sa.ack";
    case TraceKind::kGuestSwitch: return "guest.switch";
    case TraceKind::kGuestWake: return "guest.wake";
    case TraceKind::kMigrate: return "guest.migrate";
    case TraceKind::kLhp: return "sync.lhp";
    case TraceKind::kLwp: return "sync.lwp";
    case TraceKind::kPleExit: return "hv.ple";
    case TraceKind::kCoStop: return "hv.co-stop";
    case TraceKind::kEngineStop: return "engine.stop";
    case TraceKind::kQueueGeometry: return "engine.geometry";
    case TraceKind::kReqBegin: return "req.begin";
    case TraceKind::kReqEnd: return "req.end";
    case TraceKind::kUser: return "user";
  }
  return "?";
}

bool trace_kind_from_name(const char* name, TraceKind* out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kNumTraceKinds; ++i) {
    const auto k = static_cast<TraceKind>(i);
    if (std::strcmp(trace_kind_name(k), name) == 0) {
      if (out != nullptr) *out = k;
      return true;
    }
  }
  return false;
}

void Trace::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  head_ = 0;
  dropped_ = 0;
  total_ = 0;
}

void Trace::push(const TraceRecord& rec) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[head_] = rec;
  ++head_;
  if (head_ == capacity_) head_ = 0;
  ++dropped_;
}

void Trace::record(Time when, TraceKind kind, std::int32_t a, std::int32_t b,
                   const char* note, std::int32_t c) {
  if (!enabled()) return;
  push(TraceRecord{when, alloc_seq(), kind, a, b, c, note});
}

void Trace::append_block(const TraceRecord* recs, std::size_t n) {
  if (!enabled()) return;
  for (std::size_t i = 0; i < n; ++i) push(recs[i]);
}

int Trace::add_flush_hook(std::function<void()> hook) {
  const int id = next_hook_id_++;
  flush_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Trace::remove_flush_hook(int id) {
  for (auto it = flush_hooks_.begin(); it != flush_hooks_.end(); ++it) {
    if (it->first == id) {
      flush_hooks_.erase(it);
      return;
    }
  }
}

void Trace::flush_buffers() {
  for (auto& [id, hook] : flush_hooks_) hook();
}

std::vector<TraceRecord> Trace::snapshot() {
  flush_buffers();
  std::vector<TraceRecord> out = ring_;
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& x, const TraceRecord& y) {
              if (x.when != y.when) return x.when < y.when;
              return x.seq < y.seq;
            });
  return out;
}

std::size_t Trace::count(TraceKind kind) {
  flush_buffers();
  std::size_t n = 0;
  for (const auto& r : ring_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

std::string Trace::dump() {
  std::ostringstream os;
  if (dropped_ > 0) {
    os << "[trace truncated: " << dropped_ << " of " << total_
       << " records dropped]\n";
  }
  for (const auto& r : snapshot()) {
    os << to_ms(r.when) << "ms " << trace_kind_name(r.kind) << " a=" << r.a
       << " b=" << r.b;
    if (!r.note.empty()) os << " (" << r.note.c_str() << ")";
    os << '\n';
  }
  return os.str();
}

void Trace::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  total_ = 0;
}

}  // namespace irs::sim
