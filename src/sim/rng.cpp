#include "src/sim/rng.h"

#include <cassert>
#include <cmath>

namespace irs::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire reduction; bias is < 2^-64 * bound, irrelevant for simulation.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

Duration Rng::jittered(Duration mean, double frac) {
  if (mean <= 0) return 0;
  const double f = 1.0 + frac * (2.0 * next_double() - 1.0);
  const double v = static_cast<double>(mean) * f;
  return v < 0 ? 0 : static_cast<Duration>(v);
}

Duration Rng::exponential(Duration mean) {
  if (mean <= 0) return 0;
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  const double v = -static_cast<double>(mean) * std::log(u);
  return static_cast<Duration>(v);
}

Rng Rng::fork() {
  Rng child(0);
  std::uint64_t sm = next_u64();
  for (auto& s : child.s_) s = splitmix64(sm);
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace irs::sim
