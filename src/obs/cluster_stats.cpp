#include "src/obs/cluster_stats.h"

#include <algorithm>

namespace irs::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t ClusterResult::digest() const {
  if (empty()) return 0;
  std::uint64_t h = kFnvOffset;
  fnv(h, n_hosts);
  fnv(h, policy);
  fnv(h, vms);
  fnv(h, migratable);
  fnv(h, decisions);
  fnv(h, migrations);
  fnv(h, in_transit_end);
  fnv(h, static_cast<std::uint64_t>(downtime_total));
  fnv(h, hosts.size());
  for (const ClusterHostLedger& hl : hosts) {
    fnv(h, hl.placed);
    fnv(h, hl.migr_in);
    fnv(h, hl.migr_out);
    fnv(h, hl.active_end);
    fnv(h, hl.samples);
    fnv(h, hl.lhp);
    fnv(h, hl.lwp);
    fnv(h, static_cast<std::uint64_t>(hl.steal));
  }
  return h;
}

void fold_cluster(ClusterResult& acc, const ClusterResult& r) {
  if (r.empty()) return;
  acc.n_hosts = std::max(acc.n_hosts, r.n_hosts);
  acc.policy = std::max(acc.policy, r.policy);
  acc.vms += r.vms;
  acc.migratable += r.migratable;
  acc.decisions += r.decisions;
  acc.migrations += r.migrations;
  acc.in_transit_end += r.in_transit_end;
  acc.downtime_total += r.downtime_total;
  if (acc.hosts.size() < r.hosts.size()) acc.hosts.resize(r.hosts.size());
  for (std::size_t i = 0; i < r.hosts.size(); ++i) {
    ClusterHostLedger& a = acc.hosts[i];
    const ClusterHostLedger& b = r.hosts[i];
    a.placed += b.placed;
    a.migr_in += b.migr_in;
    a.migr_out += b.migr_out;
    a.active_end += b.active_end;
    a.samples += b.samples;
    a.lhp += b.lhp;
    a.lwp += b.lwp;
    a.steal += b.steal;
  }
}

void cluster_json(JsonWriter& w, const ClusterResult& c) {
  w.begin_object();
  w.field("n_hosts", static_cast<std::uint64_t>(c.n_hosts));
  w.field("policy", static_cast<std::uint64_t>(c.policy));
  w.field("vms", c.vms);
  w.field("migratable", c.migratable);
  w.field("decisions", c.decisions);
  w.field("migrations", c.migrations);
  w.field("in_transit_end", c.in_transit_end);
  w.field("downtime_total_ns", static_cast<std::int64_t>(c.downtime_total));
  w.key("hosts");
  w.begin_array();
  for (const ClusterHostLedger& hl : c.hosts) {
    w.begin_array();
    w.value(hl.placed);
    w.value(hl.migr_in);
    w.value(hl.migr_out);
    w.value(hl.active_end);
    w.value(hl.samples);
    w.value(hl.lhp);
    w.value(hl.lwp);
    w.value(static_cast<std::int64_t>(hl.steal));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

namespace {

bool cl_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool read_u64(const JsonValue& v, const char* key, std::uint64_t* out,
              std::string* err) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->get(out)) {
    return cl_err(err, std::string("cluster: missing or bad '") + key + "'");
  }
  return true;
}

bool read_dur(const JsonValue& v, const char* key, sim::Duration* out,
              std::string* err) {
  std::int64_t ns = 0;
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->get(&ns)) {
    return cl_err(err, std::string("cluster: missing or bad '") + key + "'");
  }
  *out = ns;
  return true;
}

}  // namespace

bool cluster_from_value(const JsonValue& v, ClusterResult* out,
                        std::string* err) {
  if (!v.is_object()) return cl_err(err, "cluster is not a JSON object");
  ClusterResult c;
  std::uint64_t u = 0;
  if (!read_u64(v, "n_hosts", &u, err)) return false;
  c.n_hosts = static_cast<std::uint32_t>(u);
  if (!read_u64(v, "policy", &u, err)) return false;
  c.policy = static_cast<std::uint32_t>(u);
  if (!read_u64(v, "vms", &c.vms, err)) return false;
  if (!read_u64(v, "migratable", &c.migratable, err)) return false;
  if (!read_u64(v, "decisions", &c.decisions, err)) return false;
  if (!read_u64(v, "migrations", &c.migrations, err)) return false;
  if (!read_u64(v, "in_transit_end", &c.in_transit_end, err)) return false;
  if (!read_dur(v, "downtime_total_ns", &c.downtime_total, err)) return false;
  const JsonValue* hosts = v.find("hosts");
  if (hosts == nullptr || !hosts->is_array()) {
    return cl_err(err, "cluster: missing or bad 'hosts'");
  }
  for (const JsonValue& hv : hosts->items) {
    if (!hv.is_array() || hv.items.size() != 8) {
      return cl_err(err, "cluster: host row is not an 8-element array");
    }
    ClusterHostLedger hl;
    std::int64_t steal_ns = 0;
    if (!hv.items[0].get(&hl.placed) || !hv.items[1].get(&hl.migr_in) ||
        !hv.items[2].get(&hl.migr_out) || !hv.items[3].get(&hl.active_end) ||
        !hv.items[4].get(&hl.samples) || !hv.items[5].get(&hl.lhp) ||
        !hv.items[6].get(&hl.lwp) || !hv.items[7].get(&steal_ns)) {
      return cl_err(err, "cluster: bad value in host row");
    }
    hl.steal = steal_ns;
    c.hosts.push_back(hl);
  }
  *out = c;
  return true;
}

}  // namespace irs::obs
