// Telemetry knobs shared by every host assembly.
//
// WorldConfig and ScenarioConfig used to carry verbatim copies of the same
// four observability fields (trace ring capacity, trace staging batch,
// sampler cadence, sampler ring capacity); core::HostNode and
// cluster::Cluster would have grown a third and fourth copy. This struct is
// the single definition: the config structs inherit it (so existing
// `cfg.trace_capacity = ...` call sites compile unchanged) and the host
// assembly layers take it by value.
#pragma once

#include <cstddef>

#include "src/sim/time.h"

namespace irs::obs {

struct TelemetryConfig {
  /// >0 enables the trace ring with this capacity.
  std::size_t trace_capacity = 0;
  /// >0 overrides the staging-buffer batch size of every trace producer
  /// (hypervisor and guests); 0 keeps obs::TraceBuffer::kDefaultBatch.
  std::size_t trace_batch = 0;
  /// >0 arms an obs::Sampler at start() on this simulated-time cadence.
  /// 0 (default) disables sampling entirely.
  sim::Duration sample_period = 0;
  /// >0 overrides obs::Sampler::kDefaultCapacity per series ring.
  std::size_t sample_capacity = 0;

  /// The four knobs as one assignable unit: `wc.telemetry() = sc.telemetry()`
  /// copies exactly the shared fields between two unrelated config structs.
  [[nodiscard]] TelemetryConfig& telemetry() { return *this; }
  [[nodiscard]] const TelemetryConfig& telemetry() const { return *this; }
};

}  // namespace irs::obs
