// Minimal streaming JSON writer for the obs exporters. Deterministic output
// (keys appear in call order, doubles rendered with fixed precision), string
// escaping per RFC 8259, automatic comma placement.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace irs::obs {

class JsonWriter {
 public:
  /// Double rendering policy. kCompact ("%.6g") is the human-oriented
  /// default used by the trace exporters. kRoundTrip emits the shortest
  /// decimal that parses back to the exact same double (std::to_chars), so
  /// a value can cross an NDJSON file and come back bit-identical — the
  /// sharded-sweep merge depends on this.
  enum class Doubles { kCompact, kRoundTrip };

  explicit JsonWriter(Doubles doubles = Doubles::kCompact)
      : doubles_(doubles) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key+value in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  void comma();

  std::ostringstream os_;
  // One entry per open container: number of elements emitted so far.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
  Doubles doubles_ = Doubles::kCompact;
};

/// JSON string literal (quotes + escapes applied).
std::string json_escape(const std::string& s);

}  // namespace irs::obs
