// Per-request causal forensics: latency decomposition and SLO-violation
// root-cause attribution.
//
// PR 7's SloTracker says *that* a window violated its SLO and obs::attribute
// says *who* absorbed steal time run-wide — this module says *why a specific
// request was slow*. Serving workloads (wl::server jbb/ab) log a ReqSpan
// per transaction into a side log (one cheap append — nothing rides the
// trace ring at runtime); with_request_spans() renders the log as
// kReqBegin/kReqEnd records (request id + SLO class in a/b, serving task
// in c) merged into the trace snapshot, and request_forensics() walks that
// merged stream once — the same snapshot obs::attribute consumes — replays
// the scheduler state around each request span, and splits its end-to-end
// latency into named causal segments:
//
//   run        on-CPU compute (vCPU held a pCPU, no SA grace pending)
//   ready_wait runnable in the guest runqueue, vCPU present but busy
//   lhp        stalled behind lock-holder preemption: on a vCPU frozen in an
//              LHP-classified steal window, queued on one, or blocked on a
//              lock while the VM had an LHP freeze in progress
//   lwp        on/behind a vCPU frozen in an LWP-classified steal window
//   steal      unclassified hypervisor steal (preempt/runnable-wait windows
//              with no lock classification)
//   throttle   steal windows opened by a credit throttle (vCPU was OVER)
//   migration  post-migration cache-refill transient (charged from the
//              penalty the guest model applied, carried in kMigrate notes)
//   sa_notify  running inside an SA notify→ack grace window
//   block      voluntarily off-CPU (lock wait / sleep) with no LHP freeze
//   untracked  remainder: pre-trace cold start or states the replay cannot
//              classify — kept so segments sum *exactly* to the latency
//   queue_wait accept-queue wait before service start (open-loop front-end
//              workloads back-date the span to the arrival instant and
//              carry the wait in ReqSpan::qwait) — first-class so
//              ready-wait and accept-queue wait separate cleanly
//
// The decomposition is exact by construction: every segment is an overlap
// of the span with a replayed scheduler state, the remainder goes to
// `untracked`, and per class each cause histogram records one value per
// request (zeros included) — so summing the per-cause histogram sums
// reproduces the total latency sum bit-exactly, which tests assert.
//
// Like every obs result, ForensicsResult is integer-exact, merges across
// sweep shards bit-identically (fold_forensics), serializes round-trip
// (forensics_json / forensics_from_value), and condenses to one FNV-1a
// digest() word for cross-process identity checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/obs/slo.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace irs::obs {

/// Causal segment identifiers. Order is the serialization order; new causes
/// append (the JSON schema stores names, so old captures stay readable).
enum class Cause : int {
  kRun = 0,
  kReadyWait,
  kLhp,
  kLwp,
  kSteal,
  kThrottle,
  kMigration,
  kSaNotify,
  kBlock,
  kUntracked,
  kQueueWait,
};
inline constexpr int kNumCauses = static_cast<int>(Cause::kQueueWait) + 1;

/// Stable short name ("run", "ready_wait", ... "queue_wait").
const char* cause_name(Cause c);

/// Per-cause latency totals of the SLO-violating requests that completed in
/// one violating window — the ranked root-cause table is sorted from these.
struct ForensicsWindow {
  std::int64_t index = 0;       // same numbering as SloWindow::index
  std::uint64_t requests = 0;   // spans completing in this window
  std::uint64_t violations = 0; // of those, latency > spec.threshold
  sim::Duration causes[kNumCauses] = {};  // totals over violating spans

  bool operator==(const ForensicsWindow& o) const;
};

/// One SLO class's forensic capture: per-cause latency distributions over
/// every completed span, plus root-cause tables for violating windows.
struct ForensicsClassResult {
  std::string name;
  SloSpec spec;
  /// One histogram per cause; each records one value per completed span
  /// (zeros included), so counts match `spans` and the cause sums add up to
  /// the exact total latency.
  LatencyHistogram causes[kNumCauses];
  /// Violating windows only (error-budget burn > 1), ascending by index.
  std::vector<ForensicsWindow> windows;
  std::uint64_t spans = 0;       // fully-charged completed spans
  std::uint64_t truncated = 0;   // spans that began before the ring head
  std::uint64_t open = 0;        // spans still open at trace end

  /// Total latency charged to `c` across all completed spans (exact).
  [[nodiscard]] sim::Duration cause_total(Cause c) const;

  bool operator==(const ForensicsClassResult& o) const;
};

/// The full forensic capture of one run — what RunResult carries,
/// result_json serializes, and the sweep folder merges.
struct ForensicsResult {
  sim::Duration window = 0;        // violation-window length; 0 = untracked
  /// When the ring wrapped: start of the contiguous retained tail —
  /// scheduler evidence before this instant is incomplete, spans beginning
  /// there are reported as truncated, never charged. -1 = nothing dropped.
  sim::Time head_truncated_at = -1;
  std::vector<ForensicsClassResult> classes;

  [[nodiscard]] bool empty() const { return classes.empty(); }
  /// FNV-1a over every field. 0 is reserved for the empty result.
  [[nodiscard]] std::uint64_t digest() const;
  bool operator==(const ForensicsResult& o) const;
};

/// One completed request span, captured by the serving workloads into a
/// plain side log instead of the trace ring: recording costs one small
/// fixed-size append per request (no per-request ring traffic or seq
/// allocation — the bench_report recording gate rides on this), and the
/// analysis/export path re-synthesizes the kReqBegin/kReqEnd records from
/// the log with with_request_spans().
struct ReqSpan {
  sim::Time begin = 0;       // service start (jbb) / arrival (ab, frontend)
  sim::Time end = 0;         // completion — the SLO-recording instant
  std::int32_t req = -1;     // request id, unique per workload
  std::int32_t cls = 0;      // SLO class
  std::int32_t task = -1;    // serving guest task id
  /// Accept-queue wait inside [begin, end): the span spent [begin,
  /// begin+qwait) queued before any task touched it. The replay charges it
  /// to Cause::kQueueWait and starts the scheduler decomposition at
  /// begin+qwait. 0 for the closed-loop workloads (jbb/ab).
  sim::Duration qwait = 0;
};

/// Render `spans` as kReqBegin/kReqEnd records and merge them into a
/// (when, seq)-sorted trace snapshot, preserving the sort. Synthesized
/// records take sequence numbers from `base_seq` (pass the ring's
/// total_recorded — one past the largest real seq) so that at equal
/// timestamps they order deterministically after every ring record, the
/// same place a bracket recorded at that instant would have sorted.
/// A span with qwait > 0 synthesizes its kReqBegin at the *service start*
/// (begin + qwait) carrying the wait as a decimal-ns note — the same idiom
/// kMigrate uses for its penalty — so the replay never mischarges worker
/// activity that happened while the request sat in the accept queue.
std::vector<sim::TraceRecord> with_request_spans(
    const std::vector<sim::TraceRecord>& records,
    const std::vector<ReqSpan>& spans, std::uint64_t base_seq);

/// Walk `records` (snapshot order: sorted by (when, seq)) once and decompose
/// every request span of the VM named `vm`. `meta` supplies the vCPU→VM
/// mapping and the dropped count; `slo` supplies class names/specs, the
/// window length, and which windows violated (burn rate > 1) — pass an
/// empty SloResult to decompose without violation tables.
/// Request spans ride in as the synthesized bracket records of
/// with_request_spans(); spans that began before the retained ring head
/// (head_truncated_at) have partial scheduler evidence and are reported as
/// `truncated`, never charged.
ForensicsResult request_forensics(const std::vector<sim::TraceRecord>& records,
                                  const TraceMeta& meta, const SloResult& slo,
                                  const std::string& vm = "fg");

/// Exact fold of `r` into `acc` (for sweep averaging): histograms merge
/// integer-exactly, windows merge by index, counters add. Folding N shards
/// in any order is bit-identical to any other order.
void fold_forensics(ForensicsResult& acc, const ForensicsResult& r);

/// Serialize as one JSON object on an open writer (fixed key order,
/// integers exact). Inverse below round-trips bit-identically.
void forensics_json(JsonWriter& w, const ForensicsResult& f);
bool forensics_from_value(const JsonValue& v, ForensicsResult* out,
                          std::string* err);

}  // namespace irs::obs
