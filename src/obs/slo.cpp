#include "src/obs/slo.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace irs::obs {

// ---------------------------------------------------------------------------
// LatencyHistogram — bucket geometry
// ---------------------------------------------------------------------------
//
// Index layout (kSub = 32):
//   v in [0, 64)            -> index v                (unit buckets, exact)
//   v in [2^(k), 2^(k+1)),
//        k >= 6             -> shift = k - 5,
//                              index = shift*32 + (v >> shift)  (32/octave)
// Consecutive octaves tile contiguously: the first log octave [64, 128)
// maps to [64, 96), the next to [96, 128), and so on — index is a
// monotone, gap-free function of v.

namespace {

int bucket_index_impl(std::int64_t v) {
  if (v <= 0) return 0;
  if (v > LatencyHistogram::kMaxValueNs) v = LatencyHistogram::kMaxValueNs;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < 2 * static_cast<std::uint64_t>(LatencyHistogram::kSub)) {
    return static_cast<int>(u);
  }
  const int shift = std::bit_width(u) - (LatencyHistogram::kMantissaBits + 1);
  return static_cast<int>(
      (static_cast<std::uint64_t>(shift) << LatencyHistogram::kMantissaBits) +
      (u >> shift));
}

}  // namespace

int LatencyHistogram::bucket_index(std::int64_t v) {
  return bucket_index_impl(v);
}

const int LatencyHistogram::kNumBuckets =
    bucket_index_impl(LatencyHistogram::kMaxValueNs) + 1;

std::int64_t LatencyHistogram::bucket_lower(int idx) {
  if (idx < 2 * kSub) return idx;
  const int shift = (idx >> kMantissaBits) - 1;
  const std::int64_t base =
      static_cast<std::int64_t>((idx & (kSub - 1)) | kSub);
  return base << shift;
}

std::int64_t LatencyHistogram::bucket_value(int idx) {
  if (idx < 2 * kSub) return idx;  // unit bucket: exact
  const int shift = (idx >> kMantissaBits) - 1;
  const std::int64_t lower = bucket_lower(idx);
  // Midpoint of [lower, lower + 2^shift).
  return lower + (std::int64_t{1} << shift) / 2;
}

void LatencyHistogram::add(sim::Duration v) {
  ensure_buckets();
  std::int64_t clamped = v < 0 ? 0 : v;
  if (clamped > kMaxValueNs) clamped = kMaxValueNs;
  if (count_ == 0) {
    min_ = clamped;
    max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
  sum_ += static_cast<unsigned __int128>(clamped);
  ++counts_[static_cast<std::size_t>(bucket_index_impl(clamped))];
}

sim::Duration LatencyHistogram::mean() const {
  if (count_ == 0) return 0;
  return static_cast<sim::Duration>(sum_ / count_);
}

std::uint64_t LatencyHistogram::sum_lo() const {
  return static_cast<std::uint64_t>(sum_);
}

std::uint64_t LatencyHistogram::sum_hi() const {
  return static_cast<std::uint64_t>(sum_ >> 64);
}

sim::Duration LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const auto k = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t rank = std::max<std::uint64_t>(k, 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      return std::clamp<sim::Duration>(bucket_value(static_cast<int>(i)),
                                       min_, max_);
    }
  }
  return max_;  // unreachable: bucket counts sum to count_
}

void LatencyHistogram::percentiles3(sim::Duration* p50, sim::Duration* p99,
                                    sim::Duration* p999) const {
  *p50 = *p99 = *p999 = 0;
  if (count_ == 0) return;
  const auto rank_of = [this](double p) {
    return std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            std::ceil(p / 100.0 * static_cast<double>(count_))),
        1);
  };
  // Ranks are ordered, so one cumulative pass resolves all three; the scan
  // stops at max()'s bucket, not the vector end.
  const std::uint64_t r50 = rank_of(50.0);
  const std::uint64_t r99 = rank_of(99.0);
  const std::uint64_t r999 = rank_of(99.9);
  const auto lo = static_cast<std::size_t>(bucket_index_impl(min_));
  const auto hi =
      std::min(static_cast<std::size_t>(bucket_index_impl(max_)) + 1,
               counts_.size());
  std::uint64_t cum = 0;
  int stage = 0;  // next unresolved: 0 = p50, 1 = p99, 2 = p999
  for (std::size_t i = lo; i < hi && stage < 3; ++i) {
    cum += counts_[i];
    const sim::Duration v = std::clamp<sim::Duration>(
        bucket_value(static_cast<int>(i)), min_, max_);
    if (stage == 0 && cum >= r50) {
      *p50 = v;
      stage = 1;
    }
    if (stage == 1 && cum >= r99) {
      *p99 = v;
      stage = 2;
    }
    if (stage == 2 && cum >= r999) {
      *p999 = v;
      stage = 3;
    }
  }
  if (stage < 3) *p999 = max_;  // unreachable: counts sum to count_
  if (stage < 2) *p99 = max_;
  if (stage < 1) *p50 = max_;
}

std::uint64_t LatencyHistogram::count_above(sim::Duration threshold) const {
  if (count_ == 0) return 0;
  if (threshold < 0) return count_;
  // Buckets strictly above the one containing the threshold are certain
  // violations; the threshold's own bucket counts as within-SLO (values
  // there are indistinguishable from the threshold at bucket resolution).
  const int t = bucket_index_impl(threshold);
  const auto hi =
      std::min(static_cast<std::size_t>(bucket_index_impl(max_)) + 1,
               counts_.size());
  std::uint64_t above = 0;
  for (std::size_t i = static_cast<std::size_t>(t) + 1; i < hi; ++i) {
    above += counts_[i];
  }
  return above;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  if (o.count_ == 0) return;
  ensure_buckets();
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
  // o's nonzero buckets all lie in [index(o.min), index(o.max)] — a 30 ms
  // serving window spans ~100 buckets, not the full table, and per-window
  // merges are on the tracker's near-hot path.
  const auto lo = static_cast<std::size_t>(bucket_index_impl(o.min_));
  const auto hi = std::min(
      static_cast<std::size_t>(bucket_index_impl(o.max_)) + 1,
      o.counts_.size());
  for (std::size_t i = lo; i < hi; ++i) {
    counts_[i] += o.counts_[i];
  }
}

void LatencyHistogram::clear() {
  // Zero only the occupied range (add() never touches outside
  // [index(min), index(max)]); per-window clears would otherwise sweep the
  // whole table 33 times a simulated second.
  if (count_ > 0 && !counts_.empty()) {
    const auto lo = static_cast<std::size_t>(bucket_index_impl(min_));
    const auto hi = std::min(
        static_cast<std::size_t>(bucket_index_impl(max_)) + 1,
        counts_.size());
    std::fill(counts_.begin() + static_cast<std::ptrdiff_t>(lo),
              counts_.begin() + static_cast<std::ptrdiff_t>(hi), 0);
  }
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::size_t LatencyHistogram::memory_bytes() const {
  return sizeof(*this) + counts_.capacity() * sizeof(std::uint64_t);
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t LatencyHistogram::digest() const {
  std::uint64_t h = kFnvOffset;
  fnv(h, count_);
  fnv(h, sum_lo());
  fnv(h, sum_hi());
  fnv(h, static_cast<std::uint64_t>(min()));
  fnv(h, static_cast<std::uint64_t>(max()));
  for_each_bucket([&h](int idx, std::uint64_t c) {
    fnv(h, static_cast<std::uint64_t>(idx));
    fnv(h, c);
  });
  return h;
}

void LatencyHistogram::restore_bucket(int idx, std::uint64_t count) {
  ensure_buckets();
  if (idx < 0 || idx >= kNumBuckets) return;
  counts_[static_cast<std::size_t>(idx)] = count;
}

void LatencyHistogram::restore_summary(std::uint64_t count,
                                       std::uint64_t sum_lo,
                                       std::uint64_t sum_hi,
                                       sim::Duration min, sim::Duration max) {
  ensure_buckets();
  count_ = count;
  sum_ = (static_cast<unsigned __int128>(sum_hi) << 64) | sum_lo;
  min_ = min;
  max_ = max;
}

bool LatencyHistogram::operator==(const LatencyHistogram& o) const {
  if (count_ != o.count_ || sum_ != o.sum_ || min() != o.min() ||
      max() != o.max()) {
    return false;
  }
  // Lazily-sized vectors: compare as-if zero-extended.
  const std::size_t n = std::max(counts_.size(), o.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < counts_.size() ? counts_[i] : 0;
    const std::uint64_t b = i < o.counts_.size() ? o.counts_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SloWindow / SloClassResult / SloResult
// ---------------------------------------------------------------------------

double burn_rate(const SloWindow& w, const SloSpec& spec) {
  if (w.count == 0) return 0.0;
  const double budget = spec.budget();
  if (budget <= 0.0) return w.violations > 0 ? HUGE_VAL : 0.0;
  const double viol_frac =
      static_cast<double>(w.violations) / static_cast<double>(w.count);
  return viol_frac / budget;
}

bool SloClassResult::operator==(const SloClassResult& o) const {
  return name == o.name && spec == o.spec && total == o.total &&
         windows == o.windows;
}

std::uint64_t SloResult::digest() const {
  if (classes.empty()) return 0;
  std::uint64_t h = kFnvOffset;
  fnv(h, static_cast<std::uint64_t>(window));
  fnv(h, classes.size());
  for (const SloClassResult& c : classes) {
    fnv_str(h, c.name);
    fnv(h, static_cast<std::uint64_t>(c.spec.threshold));
    fnv(h, std::bit_cast<std::uint64_t>(c.spec.objective));
    fnv(h, c.total.digest());
    fnv(h, c.windows.size());
    for (const SloWindow& w : c.windows) {
      fnv(h, static_cast<std::uint64_t>(w.index));
      fnv(h, w.count);
      fnv(h, w.violations);
      fnv(h, static_cast<std::uint64_t>(w.p50));
      fnv(h, static_cast<std::uint64_t>(w.p99));
      fnv(h, static_cast<std::uint64_t>(w.p999));
    }
  }
  return h;
}

bool SloResult::operator==(const SloResult& o) const {
  return window == o.window && classes == o.classes;
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

SloTracker::SloTracker(sim::Duration window)
    : window_(window > 0 ? window : kDefaultWindow) {}

std::size_t SloTracker::add_class(std::string name, SloSpec spec) {
  ClassState c;
  c.out.name = std::move(name);
  c.out.spec = spec;
  classes_.push_back(std::move(c));
  return classes_.size() - 1;
}

void SloTracker::close_window(ClassState& c) {
  if (c.cur_index < 0 || c.cur.count() == 0) {
    c.cur_index = -1;
    c.cur_violations = 0;
    return;
  }
  SloWindow w;
  w.index = c.cur_index;
  w.count = c.cur.count();
  w.violations = c.cur_violations;
  c.cur.percentiles3(&w.p50, &w.p99, &w.p999);
  c.out.windows.push_back(w);
  c.out.total.merge(c.cur);
  c.cur.clear();
  c.cur_violations = 0;
  c.cur_index = -1;
}

void SloTracker::record(std::size_t cls, sim::Time when,
                        sim::Duration latency) {
  ClassState& c = classes_[cls];
  // Hot path: staying inside the open window is one compare. The division
  // only runs when a window boundary is crossed (or on the first record).
  if (c.cur_index < 0 || when >= c.cur_end) {
    close_window(c);
    const std::int64_t idx = when / window_;
    c.cur_index = idx;
    c.cur_end = (idx + 1) * window_;
  }
  c.cur.add(latency);
  if (latency > c.out.spec.threshold) ++c.cur_violations;
}

void SloTracker::flush(sim::Time /*end*/) {
  for (ClassState& c : classes_) close_window(c);
}

SloResult SloTracker::result() const {
  SloResult r;
  r.window = window_;
  for (const ClassState& c : classes_) {
    r.classes.push_back(c.out);
    // An unflushed in-progress window folds into the snapshot so result()
    // is usable mid-run; flush() first for canonical end-of-run output.
    if (c.cur_index >= 0 && c.cur.count() > 0) {
      SloClassResult& out = r.classes.back();
      SloWindow w;
      w.index = c.cur_index;
      w.count = c.cur.count();
      w.violations = c.cur_violations;
      c.cur.percentiles3(&w.p50, &w.p99, &w.p999);
      out.windows.push_back(w);
      out.total.merge(c.cur);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

void slo_result_json(JsonWriter& w, const SloResult& s) {
  w.begin_object();
  w.field("window_ns", static_cast<std::int64_t>(s.window));
  w.key("classes");
  w.begin_array();
  for (const SloClassResult& c : s.classes) {
    w.begin_object();
    w.field("name", c.name);
    w.field("threshold_ns", static_cast<std::int64_t>(c.spec.threshold));
    w.field("objective", c.spec.objective);
    w.field("count", c.total.count());
    w.field("sum_lo", c.total.sum_lo());
    w.field("sum_hi", c.total.sum_hi());
    w.field("min_ns", static_cast<std::int64_t>(c.total.min()));
    w.field("max_ns", static_cast<std::int64_t>(c.total.max()));
    w.key("buckets");
    w.begin_array();
    c.total.for_each_bucket([&w](int idx, std::uint64_t cnt) {
      w.begin_array();
      w.value(idx);
      w.value(cnt);
      w.end_array();
    });
    w.end_array();
    w.key("windows");
    w.begin_array();
    for (const SloWindow& win : c.windows) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(win.index));
      w.value(win.count);
      w.value(win.violations);
      w.value(static_cast<std::int64_t>(win.p50));
      w.value(static_cast<std::int64_t>(win.p99));
      w.value(static_cast<std::int64_t>(win.p999));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

bool slo_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool slo_result_from_value(const JsonValue& v, SloResult* out,
                           std::string* err) {
  if (!v.is_object()) return slo_err(err, "slo is not a JSON object");
  SloResult s;
  std::int64_t window = 0;
  const JsonValue* f = v.find("window_ns");
  if (f == nullptr || !f->get(&window)) {
    return slo_err(err, "slo: missing or bad 'window_ns'");
  }
  s.window = window;
  const JsonValue* classes = v.find("classes");
  if (classes == nullptr || !classes->is_array()) {
    return slo_err(err, "slo: missing or bad 'classes'");
  }
  for (const JsonValue& cv : classes->items) {
    if (!cv.is_object()) return slo_err(err, "slo: class is not an object");
    SloClassResult c;
    std::int64_t threshold = 0, min_ns = 0, max_ns = 0;
    std::uint64_t count = 0, sum_lo = 0, sum_hi = 0;
    if ((f = cv.find("name")) == nullptr || !f->get(&c.name)) {
      return slo_err(err, "slo class: missing 'name'");
    }
    if ((f = cv.find("threshold_ns")) == nullptr || !f->get(&threshold)) {
      return slo_err(err, "slo class: missing 'threshold_ns'");
    }
    if ((f = cv.find("objective")) == nullptr ||
        !f->get(&c.spec.objective)) {
      return slo_err(err, "slo class: missing 'objective'");
    }
    c.spec.threshold = threshold;
    if ((f = cv.find("count")) == nullptr || !f->get(&count)) {
      return slo_err(err, "slo class: missing 'count'");
    }
    if ((f = cv.find("sum_lo")) == nullptr || !f->get(&sum_lo)) {
      return slo_err(err, "slo class: missing 'sum_lo'");
    }
    if ((f = cv.find("sum_hi")) == nullptr || !f->get(&sum_hi)) {
      return slo_err(err, "slo class: missing 'sum_hi'");
    }
    if ((f = cv.find("min_ns")) == nullptr || !f->get(&min_ns)) {
      return slo_err(err, "slo class: missing 'min_ns'");
    }
    if ((f = cv.find("max_ns")) == nullptr || !f->get(&max_ns)) {
      return slo_err(err, "slo class: missing 'max_ns'");
    }
    const JsonValue* buckets = cv.find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return slo_err(err, "slo class: missing 'buckets'");
    }
    for (const JsonValue& bv : buckets->items) {
      std::int64_t idx = 0;
      std::uint64_t cnt = 0;
      if (!bv.is_array() || bv.items.size() != 2 ||
          !bv.items[0].get(&idx) || !bv.items[1].get(&cnt)) {
        return slo_err(err, "slo class: bad bucket entry");
      }
      if (idx < 0 || idx >= LatencyHistogram::kNumBuckets) {
        return slo_err(err, "slo class: bucket index out of range");
      }
      c.total.restore_bucket(static_cast<int>(idx), cnt);
    }
    c.total.restore_summary(count, sum_lo, sum_hi, min_ns, max_ns);
    const JsonValue* windows = cv.find("windows");
    if (windows == nullptr || !windows->is_array()) {
      return slo_err(err, "slo class: missing 'windows'");
    }
    for (const JsonValue& wv : windows->items) {
      if (!wv.is_array() || wv.items.size() != 6) {
        return slo_err(err, "slo class: bad window entry");
      }
      SloWindow win;
      std::int64_t idx = 0, p50 = 0, p99 = 0, p999 = 0;
      if (!wv.items[0].get(&idx) || !wv.items[1].get(&win.count) ||
          !wv.items[2].get(&win.violations) || !wv.items[3].get(&p50) ||
          !wv.items[4].get(&p99) || !wv.items[5].get(&p999)) {
        return slo_err(err, "slo class: bad window field");
      }
      win.index = idx;
      win.p50 = p50;
      win.p99 = p99;
      win.p999 = p999;
      c.windows.push_back(win);
    }
    s.classes.push_back(std::move(c));
  }
  *out = std::move(s);
  return true;
}

}  // namespace irs::obs
