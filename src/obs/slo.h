// Windowed tail-latency & SLO observability.
//
// The serving-workload figures (Fig. 8) are about *tail* latency under
// interference, but core::Histogram keeps every sample (O(requests)
// memory), cannot be merged across sweep shards, and has no time
// resolution — it answers "what was p999 over the whole run", never "what
// was p999 *during* the hog burst vs after the migrator reacted". This
// header provides the streaming, mergeable, time-resolved alternative:
//
//   * LatencyHistogram — log-bucketed (HDR-style) latency recorder:
//     fixed-geometry log-linear buckets with <= 1/64 (~1.6 %) relative
//     error from 1 ns to 100 s, O(1) add, O(buckets) memory, and
//     deterministic *exact-integer* merge — merging the histograms of N
//     shards is bit-identical to recording the union stream, in any merge
//     order. Counts, sum, min, max are exact; only percentiles are
//     quantised to bucket representatives.
//
//   * SloTracker — aggregates per-class latencies into tumbling windows
//     aligned to the 30 ms credit-accounting window (configurable; the
//     same cadence obs::Sampler defaults to), emitting a per-window
//     p50/p99/p999 time series plus violation counts against an SLO spec
//     (threshold + objective fraction), from which error-budget burn rate
//     per window falls out. Recording is entirely passive — no engine
//     events — so a run with SLO tracking enabled is bit-identical to the
//     same run without it.
//
// Everything here is integer-exact except SloSpec::objective (a double,
// serialized in round-trip form), so results fold across NDJSON sweep
// shards bit-identically and digests are comparable across processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/sim/time.h"

namespace irs::obs {

/// Log-bucketed latency histogram (HDR-style log-linear geometry).
///
/// Bucket layout: values 0..2*kSub-1 land in exact unit-width buckets;
/// above that, each power-of-two octave splits into kSub equal sub-buckets,
/// so the relative bucket width — and therefore the worst-case percentile
/// error — is 1/kSub (= 1/32, ~3 %) and the midpoint representative is off
/// by at most half that (~1.6 %). Values clamp to [0, kMaxValueNs]
/// (100 simulated seconds; nothing this repo measures is slower).
class LatencyHistogram {
 public:
  /// Sub-buckets per octave; 32 => <= 1.6 % representative error.
  static constexpr int kMantissaBits = 5;
  static constexpr std::int64_t kSub = std::int64_t{1} << kMantissaBits;
  /// 100 s in ns — the histogram's upper bound (larger values clamp).
  static constexpr std::int64_t kMaxValueNs = 100'000'000'000'000 / 1000;

  /// Bucket index for a clamped value; total bucket count in kNumBuckets.
  static int bucket_index(std::int64_t v);
  /// Inclusive lower bound of bucket `idx`.
  static std::int64_t bucket_lower(int idx);
  /// Deterministic representative (midpoint, exact for unit buckets).
  static std::int64_t bucket_value(int idx);
  static const int kNumBuckets;

  void add(sim::Duration v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] sim::Duration min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] sim::Duration max() const { return count_ > 0 ? max_ : 0; }
  /// Exact integer mean (sum accumulates in 128 bits — ~1.8e38 ns·samples,
  /// unreachable — so no overflow at any request count).
  [[nodiscard]] sim::Duration mean() const;
  /// Low/high halves of the exact 128-bit sum (for serialization).
  [[nodiscard]] std::uint64_t sum_lo() const;
  [[nodiscard]] std::uint64_t sum_hi() const;

  /// Nearest-rank percentile (p in [0,100]) from the buckets: the
  /// representative of the bucket covering rank ceil(p/100*n), clamped to
  /// the exact [min, max] — within ~1.6 % of the exact order statistic.
  [[nodiscard]] sim::Duration percentile(double p) const;

  /// p50/p99/p999 in one cumulative pass (what every window close needs —
  /// one bounded scan instead of three full ones).
  void percentiles3(sim::Duration* p50, sim::Duration* p99,
                    sim::Duration* p999) const;

  /// Fraction of samples strictly above `threshold` — computed from the
  /// bucket containing the threshold, so it is exact whenever the
  /// threshold falls on a bucket boundary and bucket-quantised otherwise.
  [[nodiscard]] std::uint64_t count_above(sim::Duration threshold) const;

  /// Exact integer fold of `o` into this histogram: equivalent to having
  /// add()ed o's stream here, regardless of merge order or grouping.
  void merge(const LatencyHistogram& o);

  void clear();

  /// Heap + object footprint in bytes (the O(buckets) memory claim; the
  /// bench gates this against exact-sample storage).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// FNV-1a over count/sum/min/max and every nonzero (index, count) pair.
  /// Equal digests <=> equal histograms (up to hash collision); merge
  /// determinism condenses to one comparable word.
  [[nodiscard]] std::uint64_t digest() const;

  /// Visit nonzero buckets ascending: fn(index, count).
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] != 0) fn(static_cast<int>(i), counts_[i]);
    }
  }

  /// Restore one bucket (deserialization; index from a prior
  /// for_each_bucket walk). count/sum/min/max are restored separately via
  /// restore_summary().
  void restore_bucket(int idx, std::uint64_t count);
  void restore_summary(std::uint64_t count, std::uint64_t sum_lo,
                       std::uint64_t sum_hi, sim::Duration min,
                       sim::Duration max);

  bool operator==(const LatencyHistogram& o) const;

 private:
  void ensure_buckets() {
    if (counts_.empty()) counts_.assign(static_cast<std::size_t>(kNumBuckets), 0);
  }

  std::uint64_t count_ = 0;
  unsigned __int128 sum_ = 0;
  sim::Duration min_ = 0;
  sim::Duration max_ = 0;
  std::vector<std::uint64_t> counts_;  // empty until first add (lazily sized)
};

/// A latency SLO: `objective` fraction of requests must complete within
/// `threshold` (e.g. {20 ms, 0.999} = "p999 <= 20 ms").
struct SloSpec {
  sim::Duration threshold = 0;
  double objective = 0.999;

  /// Allowed violation fraction (the error budget per window).
  [[nodiscard]] double budget() const { return 1.0 - objective; }
  bool operator==(const SloSpec& o) const {
    return threshold == o.threshold && objective == o.objective;
  }
};

/// One closed tumbling window of one class: counts are exact integers,
/// percentiles are bucket representatives from the window's histogram.
struct SloWindow {
  std::int64_t index = 0;  // window number: start time == index * window
  std::uint64_t count = 0;
  std::uint64_t violations = 0;  // latency > spec.threshold
  sim::Duration p50 = 0;
  sim::Duration p99 = 0;
  sim::Duration p999 = 0;

  bool operator==(const SloWindow& o) const {
    return index == o.index && count == o.count &&
           violations == o.violations && p50 == o.p50 && p99 == o.p99 &&
           p999 == o.p999;
  }
};

/// Error-budget burn rate of a window: observed violation fraction over
/// the budget. 1.0 = burning exactly the budget; >1 = SLO-violating pace.
double burn_rate(const SloWindow& w, const SloSpec& spec);

/// One latency class (e.g. "jbb" transactions) as captured from a run.
struct SloClassResult {
  std::string name;
  SloSpec spec;
  LatencyHistogram total;          // whole-run distribution
  std::vector<SloWindow> windows;  // non-empty windows, ascending by index

  /// Whole-run violation count against spec.threshold.
  [[nodiscard]] std::uint64_t violations() const {
    return total.count_above(spec.threshold);
  }
  bool operator==(const SloClassResult& o) const;
};

/// The full SLO capture of one run — what RunResult carries, result_json
/// serializes, and the sweep folder merges.
struct SloResult {
  sim::Duration window = 0;  // tumbling-window length; 0 = nothing tracked
  std::vector<SloClassResult> classes;

  [[nodiscard]] bool empty() const { return classes.empty(); }
  /// FNV-1a over window length and every class (name, spec, histogram
  /// digest, windows). 0 is reserved for the empty result.
  [[nodiscard]] std::uint64_t digest() const;
  bool operator==(const SloResult& o) const;
};

/// Aggregates per-class request latencies into tumbling windows aligned to
/// simulated time zero (window i covers [i*window, (i+1)*window)), the
/// same 30 ms cadence the credit scheduler accounts on and obs::Sampler
/// samples on by default. record() is O(1); windows close lazily when a
/// later record (or flush) moves past them, and empty windows are skipped.
class SloTracker {
 public:
  /// Default window: the hypervisor's 30 ms credit-accounting period, so
  /// "p999 recovered N windows after the migration" reads in scheduler
  /// time units and lines up with sampler counter tracks.
  static constexpr sim::Duration kDefaultWindow = sim::milliseconds(30);

  explicit SloTracker(sim::Duration window = kDefaultWindow);

  /// Register a latency class before recording. Returns its id.
  std::size_t add_class(std::string name, SloSpec spec);

  /// Record one request latency observed at simulated time `when` (its
  /// completion time — the window it lands in). `when` must be
  /// non-decreasing per class (simulated time is).
  void record(std::size_t cls, sim::Time when, sim::Duration latency);

  /// Close the in-progress window of every class (call at run end with
  /// engine.now()). Idempotent; record() after flush() reopens windows.
  void flush(sim::Time end);

  [[nodiscard]] sim::Duration window() const { return window_; }
  [[nodiscard]] std::size_t n_classes() const { return classes_.size(); }

  /// Snapshot the capture. Call after flush() for complete final windows.
  [[nodiscard]] SloResult result() const;

 private:
  struct ClassState {
    SloClassResult out;
    LatencyHistogram cur;           // in-progress window
    std::uint64_t cur_violations = 0;
    std::int64_t cur_index = -1;    // -1 = no window open
    sim::Time cur_end = 0;          // exclusive end of the open window (the
                                    // hot-path same-window test is a compare,
                                    // not a division)
  };

  void close_window(ClassState& c);

  sim::Duration window_;
  std::vector<ClassState> classes_;
};

/// Serialize `s` as one JSON object on an open writer (fixed key order,
/// integers exact, objective in round-trip form):
///   {"window_ns":W,"classes":[{"name":..,"threshold_ns":..,"objective":..,
///    "count":..,"sum_lo":..,"sum_hi":..,"min_ns":..,"max_ns":..,
///    "buckets":[[idx,count],..],"windows":[[idx,count,viol,p50,p99,p999],..]}]}
void slo_result_json(JsonWriter& w, const SloResult& s);

/// Inverse of slo_result_json over a parsed value. Round-trips
/// bit-identically: parse(serialize(s)) == s and re-serialization is
/// byte-identical. On failure returns false and describes the field in
/// *err (when non-null).
bool slo_result_from_value(const JsonValue& v, SloResult* out,
                           std::string* err);

}  // namespace irs::obs
