// Sharded counter/stat registry — the single observability accumulator for
// the whole stack.
//
// Model objects used to bump fields of shared structs (hv::SchedStats,
// hv::StrategyStats, guest::GuestStats, a workload-wide progress double)
// directly. Every producer now increments a named counter in its own
// cache-line-padded shard — one shard per vCPU on the hypervisor side, per
// guest CPU inside a kernel, per task inside a workload — and readers fold
// the shards into the legacy report structs on demand. A future intra-run
// parallel engine (or finer-grained sampling) therefore never serialises
// producers on one cache line, and per-entity breakdowns come for free.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

namespace irs::obs {

/// Every named counter in the system. Grouped by the subsystem that
/// produces it; the fold helpers in hv/ and guest/ map these back onto the
/// legacy report structs.
enum class Cnt : std::uint16_t {
  // hv::CreditScheduler (per-vCPU shards)
  kHvCtxSwitches,
  kHvPreemptions,
  kHvLhp,
  kHvLwp,
  kHvWakeups,
  kHvSteals,
  kHvMigrations,
  // hv strategy components (per-vCPU shards)
  kSaSent,
  kSaAcked,
  kSaForced,
  kSaDelayTotalNs,
  kPleExits,
  kCoStops,
  kDelayGrants,
  kDelayReleased,
  kDelayExpired,
  // guest::GuestKernel and friends (per-guest-CPU shards)
  kGuestCtxSwitches,
  kGuestWakeMigrations,
  kGuestPushMigrations,
  kGuestPullMigrations,
  kGuestIrsMigrations,
  kGuestStopMigrations,
  kGuestSaReceived,
  kGuestSaRepliedBlock,
  kGuestSaRepliedYield,
  kGuestTagPreemptions,
  kGuestIrsPullMigrations,
  // wl::* workload progress (per-task shards)
  kWorkUnits,

  kCount,
};

inline constexpr std::size_t kCntCount = static_cast<std::size_t>(Cnt::kCount);

/// A set of named counters split into cache-line-padded shards. Shard
/// addresses are stable across growth (deque-backed), so producers may
/// cache pointers into their shard.
class Counters {
 public:
  explicit Counters(std::size_t n_shards = 1) { ensure(n_shards); }

  /// Grow to at least `n` shards (never shrinks).
  void ensure(std::size_t n) {
    while (shards_.size() < n) shards_.emplace_back();
  }

  void inc(std::size_t shard, Cnt c, std::int64_t n = 1) {
    if (shard >= shards_.size()) ensure(shard + 1);
    shards_[shard].v[static_cast<std::size_t>(c)] += n;
  }

  /// One shard's value (0 for shards never grown).
  [[nodiscard]] std::int64_t at(std::size_t shard, Cnt c) const {
    if (shard >= shards_.size()) return 0;
    return shards_[shard].v[static_cast<std::size_t>(c)];
  }

  /// Sum across all shards — the report-time fold.
  [[nodiscard]] std::int64_t fold(Cnt c) const {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.v[static_cast<std::size_t>(c)];
    return total;
  }

  [[nodiscard]] std::uint64_t fold_u(Cnt c) const {
    return static_cast<std::uint64_t>(fold(c));
  }

  [[nodiscard]] std::size_t n_shards() const { return shards_.size(); }

  void reset() {
    for (auto& s : shards_) s.v.fill(0);
  }

 private:
  struct alignas(64) Shard {
    std::array<std::int64_t, kCntCount> v{};
  };
  static_assert(alignof(Shard) >= 64, "shards must be cache-line aligned");

  std::deque<Shard> shards_;  // deque: stable shard addresses across ensure()
};

}  // namespace irs::obs
