#include "src/obs/json_reader.h"

#include <charconv>
#include <cmath>
#include <limits>

namespace irs::obs {

namespace {

/// Containers deeper than this are rejected (the writers here emit depth
/// <= 4; a hard cap keeps recursion bounded on adversarial input).
constexpr int kMaxDepth = 64;

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Encode a BMP code point as UTF-8 (JsonWriter only ever emits \u00XX,
/// but the reader accepts any non-surrogate \uXXXX).
void append_utf8(std::string* out, unsigned cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::get(bool* out) const {
  if (kind != Kind::kBool) return false;
  *out = bool_v;
  return true;
}

bool JsonValue::get(std::uint64_t* out) const {
  if (kind != Kind::kNumber || !is_integer || is_negative) return false;
  *out = uint_v;
  return true;
}

bool JsonValue::get(std::int64_t* out) const {
  if (kind != Kind::kNumber || !is_integer) return false;
  if (is_negative) {
    *out = int_v;
    return true;
  }
  if (uint_v > static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max())) {
    return false;
  }
  *out = static_cast<std::int64_t>(uint_v);
  return true;
}

bool JsonValue::get(double* out) const {
  if (kind != Kind::kNumber) return false;
  *out = num_v;
  return true;
}

bool JsonValue::get(std::string* out) const {
  if (kind != Kind::kString) return false;
  *out = str_v;
  return true;
}

bool JsonReader::fail(const std::string& msg) {
  // Keep the first error; parse_value unwinds without overwriting it.
  if (error_.empty()) {
    error_ = msg;
    error_offset_ = pos_;
  }
  return false;
}

void JsonReader::skip_ws() {
  while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
}

bool JsonReader::parse(std::string_view text, JsonValue* out) {
  text_ = text;
  pos_ = 0;
  error_.clear();
  error_offset_ = 0;
  *out = JsonValue{};
  skip_ws();
  if (!parse_value(out, 0)) return false;
  skip_ws();
  if (pos_ != text_.size()) return fail("trailing characters after value");
  return true;
}

bool JsonReader::parse_string(std::string* out) {
  // Caller consumed the opening quote.
  out->clear();
  while (true) {
    if (pos_ >= text_.size()) return fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (static_cast<unsigned char>(c) < 0x20) {
      --pos_;
      return fail("unescaped control character in string");
    }
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) return fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          if (pos_ >= text_.size()) return fail("truncated \\u escape");
          const int d = hex_digit(text_[pos_]);
          if (d < 0) return fail("bad hex digit in \\u escape");
          cp = cp * 16 + static_cast<unsigned>(d);
          ++pos_;
        }
        if (cp >= 0xD800 && cp <= 0xDFFF) {
          return fail("surrogate \\u escapes are not supported");
        }
        append_utf8(out, cp);
        break;
      }
      default:
        --pos_;
        return fail("unknown escape character");
    }
  }
}

bool JsonReader::parse_number(JsonValue* out) {
  const std::size_t start = pos_;
  bool integer = true;
  if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c >= '0' && c <= '9') {
      ++pos_;
    } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
      integer = false;
      ++pos_;
    } else {
      break;
    }
  }
  const std::string_view lexeme = text_.substr(start, pos_ - start);
  out->kind = JsonValue::Kind::kNumber;
  out->is_negative = !lexeme.empty() && lexeme.front() == '-';
  // from_chars both validates the grammar (it accepts a superset of JSON —
  // leading '+'/dots never reach it because the lexeme started as JSON
  // number characters) and rounds correctly, so parse(print(x)) == x.
  const auto res = std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(),
                                   out->num_v);
  if (res.ec != std::errc() || res.ptr != lexeme.data() + lexeme.size()) {
    pos_ = start;
    return fail("malformed number");
  }
  out->is_integer = false;
  if (integer) {
    // Re-parse the digits exactly; overflow beyond 64 bits silently demotes
    // the value to its double reading (our writers never emit that).
    if (out->is_negative) {
      std::int64_t v = 0;
      const auto ires =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
      if (ires.ec == std::errc() &&
          ires.ptr == lexeme.data() + lexeme.size()) {
        out->is_integer = true;
        out->int_v = v;
      }
    } else {
      std::uint64_t v = 0;
      const auto ures =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
      if (ures.ec == std::errc() &&
          ures.ptr == lexeme.data() + lexeme.size()) {
        out->is_integer = true;
        out->uint_v = v;
      }
    }
  }
  return true;
}

bool JsonReader::parse_value(JsonValue* out, int depth) {
  if (depth > kMaxDepth) return fail("nesting too deep");
  if (pos_ >= text_.size()) return fail("unexpected end of input");
  const char c = text_[pos_];
  auto literal = [&](std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("unexpected token");
    }
    pos_ += word.size();
    return true;
  };
  switch (c) {
    case 'n':
      out->kind = JsonValue::Kind::kNull;
      return literal("null");
    case 't':
      out->kind = JsonValue::Kind::kBool;
      out->bool_v = true;
      return literal("true");
    case 'f':
      out->kind = JsonValue::Kind::kBool;
      out->bool_v = false;
      return literal("false");
    case '"':
      ++pos_;
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->str_v);
    case '[': {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        skip_ws();
        if (!parse_value(&item, depth + 1)) return false;
        out->items.push_back(std::move(item));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '{': {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          return fail("expected object key");
        }
        ++pos_;
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':' after object key");
        }
        ++pos_;
        skip_ws();
        JsonValue member;
        if (!parse_value(&member, depth + 1)) return false;
        out->members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    default:
      if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
      return fail("unexpected character");
  }
}

}  // namespace irs::obs
