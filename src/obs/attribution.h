// Per-task interference attribution: one pass over a trace snapshot that
// charges every hypervisor-level steal window (preemption or runnable wait)
// to the guest task that was on-CPU — and, when the sync layer classified
// the preemption, to the lock that task held (LHP) or spun on (LWP).
//
// This makes the paper's reverse semantic gap visible *per task*: the
// end-of-run counters say how often LHP/LWP happened, the timeline shows
// when, and this profiler says who absorbed the time and through which
// lock. Windows open at kHvPreempt / kHvWake (the vCPU became runnable
// without a pCPU), close at the next kHvSchedule for that vCPU, and are
// charged to the task the guest-lane records (kGuestSwitch) place on the
// vCPU. A kLhp/kLwp record emitted at deschedule time (same timestamp,
// earlier seq than the kHvPreempt) refines the charge with the lock name.
// Wake windows on an idle lane are charged to the task whose guest-side
// wake (kGuestWake) triggered them — the task is runnable but has not
// reached the lane yet, so the lane alone would under-charge.
//
// Truncated traces are handled explicitly: when the ring wrapped, windows
// whose opening record was dropped are never charged (no kHvPreempt/kHvWake
// was seen, so no window is open), and `head_truncated_at` reports the
// first retained timestamp so consumers can annotate the gap instead of
// silently under-reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace irs::obs {

/// Interference absorbed by one guest task.
struct TaskCharge {
  std::string vm;       // owning VM name ("?" when unknown)
  std::int32_t task = -1;
  std::string label;    // "vm/taskname" (or "vm/task<id>")
  sim::Duration total = 0;  // all steal time charged to this task
  sim::Duration lhp = 0;    // charged while the task held a lock
  sim::Duration lwp = 0;    // charged while the task spun on a lock
  std::uint64_t windows = 0;
  /// Steal time by lock name (LHP/LWP windows with a classified lock).
  std::map<std::string, sim::Duration> by_lock;
};

struct AttributionResult {
  /// Sum of every closed steal window (preempt/wake -> schedule).
  sim::Duration total_steal = 0;
  /// Portion charged to a specific task.
  sim::Duration charged = 0;
  /// Windows on vCPUs whose guest lane was idle / unknown.
  sim::Duration uncharged = 0;
  /// First retained timestamp when the ring wrapped; -1 = complete trace.
  sim::Time head_truncated_at = -1;
  /// Per-task charges, largest total first (ties: vm, then task id).
  std::vector<TaskCharge> tasks;

  [[nodiscard]] double coverage() const {
    return total_steal > 0
               ? static_cast<double>(charged) / static_cast<double>(total_steal)
               : 1.0;
  }
};

/// Walk `records` (snapshot order: sorted by (when, seq)) once and build the
/// per-task interference breakdown. `meta` supplies the vCPU->VM mapping,
/// task names, and the dropped-record count.
AttributionResult attribute(const std::vector<sim::TraceRecord>& records,
                            const TraceMeta& meta);

}  // namespace irs::obs
