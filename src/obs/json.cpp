#include "src/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace irs::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty() && counts_.back() > 0) os_ << ',';
  if (!counts_.empty()) ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  os_ << json_escape(k) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  os_ << json_escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[64];
  if (doubles_ == Doubles::kRoundTrip) {
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    *res.ptr = '\0';
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace irs::obs
