// Cluster placement & live-migration accounting: the ledger of one
// cluster::Cluster run (see src/cluster/cluster.h).
//
// Every migratable VM is placed on exactly one host at add time and is
// assigned to exactly one host at every instant thereafter (assignment
// flips atomically at the migration decision; the modeled downtime only
// delays when the destination replica starts executing). The conservation
// identities
//
//   placed_i + migr_in_i - migr_out_i == active_end_i      (per host i)
//   sum_i migr_in_i == sum_i migr_out_i == migrations      (cluster-wide)
//   sum_i placed_i == vms
//
// are test invariants (tests/cluster_test.cpp), and like every obs result
// the block is integer-exact, folds across sweep shards order-independently
// (fold_cluster), serializes round-trip (cluster_json / cluster_from_value),
// and condenses to one FNV-1a digest() word.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/sim/time.h"

namespace irs::obs {

/// One host's slice of the placement ledger plus the collector's view of
/// it (steal / LHP / LWP deltas summed over every sample window).
struct ClusterHostLedger {
  std::uint64_t placed = 0;      // initial placements
  std::uint64_t migr_in = 0;     // migrations targeting this host
  std::uint64_t migr_out = 0;    // migrations evicting from this host
  std::uint64_t active_end = 0;  // VMs assigned here when the run ended
  std::uint64_t samples = 0;     // collector samples taken on this host
  std::uint64_t lhp = 0;         // collector-observed LHP events
  std::uint64_t lwp = 0;         // collector-observed LWP events
  sim::Duration steal = 0;       // collector-observed steal time

  bool operator==(const ClusterHostLedger& o) const = default;
};

struct ClusterResult {
  std::uint32_t n_hosts = 0;
  /// Numeric policy id (cluster::Policy). Folds as max so a mixed-policy
  /// sweep folds order-independently; per-run it is exact.
  std::uint32_t policy = 0;
  std::uint64_t vms = 0;             // logical VMs (fixed + migratable)
  std::uint64_t migratable = 0;      // VMs the scheduler may move
  std::uint64_t decisions = 0;       // scheduler decision-loop evaluations
  std::uint64_t migrations = 0;      // live migrations executed
  std::uint64_t in_transit_end = 0;  // migrations still in downtime at end
  sim::Duration downtime_total = 0;  // summed modeled downtime
  std::vector<ClusterHostLedger> hosts;  // indexed by host id

  /// No cluster ran (every field at its default).
  [[nodiscard]] bool empty() const { return *this == ClusterResult{}; }
  /// FNV-1a over every field. 0 is reserved for the empty result.
  [[nodiscard]] std::uint64_t digest() const;
  bool operator==(const ClusterResult& o) const = default;
};

/// Exact fold of `r` into `acc` (for sweep averaging): counters add
/// element-wise (the hosts vector grows to the larger size), n_hosts and
/// policy take the max. Folding N shards in any order is bit-identical to
/// any other order.
void fold_cluster(ClusterResult& acc, const ClusterResult& r);

/// Serialize as one JSON object on an open writer (fixed key order,
/// integers exact; hosts as [[placed,in,out,active,samples,lhp,lwp,
/// steal_ns],..]). Inverse below round-trips bit-identically.
void cluster_json(JsonWriter& w, const ClusterResult& c);
bool cluster_from_value(const JsonValue& v, ClusterResult* out,
                        std::string* err);

}  // namespace irs::obs
