// Minimal deterministic JSON reader — the parsing counterpart of
// JsonWriter. Parses one complete JSON document into a small DOM
// (JsonValue) with insertion-ordered object members, exact integer
// classification (so a uint64 counter or sampler digest survives a trip
// through NDJSON untouched), and correctly-rounded doubles
// (std::from_chars), which together make
//   JsonWriter -> text -> JsonReader -> JsonWriter
// byte-identical for round-trip-formatted documents. Errors are reported
// with a message and the byte offset they occurred at; the same input
// always produces the same result.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irs::obs {

/// One parsed JSON value. Numbers remember whether their lexeme was an
/// integer (no '.', 'e', 'E'): integers in [0, 2^64) are held exactly in
/// `uint_v` (negatives in `int_v`), everything else falls back to the
/// correctly-rounded double in `num_v`.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  bool is_integer = false;   // number lexeme had no fraction/exponent
  bool is_negative = false;  // number lexeme started with '-'
  std::uint64_t uint_v = 0;  // valid when is_integer && !is_negative
  std::int64_t int_v = 0;    // valid when is_integer && is_negative
  double num_v = 0;          // always valid for numbers
  std::string str_v;
  std::vector<JsonValue> items;  // array elements
  std::vector<std::pair<std::string, JsonValue>> members;  // object, in order

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  /// First member with the given key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed accessors; return false (leaving *out untouched) when the value
  /// has the wrong kind or does not fit the target type.
  bool get(bool* out) const;
  bool get(std::uint64_t* out) const;
  bool get(std::int64_t* out) const;
  bool get(double* out) const;
  bool get(std::string* out) const;
};

/// Parses one JSON document per call. Reusable; not thread-safe.
class JsonReader {
 public:
  /// Parse `text` as exactly one JSON value (leading/trailing whitespace
  /// allowed, anything else after the value is an error). Returns false and
  /// records error()/error_offset() on malformed input; *out is unspecified
  /// then.
  bool parse(std::string_view text, JsonValue* out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t error_offset() const { return error_offset_; }

 private:
  bool fail(const std::string& msg);
  void skip_ws();
  bool parse_value(JsonValue* out, int depth);
  bool parse_string(std::string* out);
  bool parse_number(JsonValue* out);

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_offset_ = 0;
};

}  // namespace irs::obs
