// Open-loop front-end accounting: the request-conservation ledger of one
// wl::FrontendWorkload run (see src/wl/frontend.h).
//
// Every arrival is exactly one of: accepted, tail-dropped (accept queue
// full), admission-rejected (estimated queue delay over budget), or shed
// (SLO-burn-triggered load shedding). Accepted requests either complete or
// are still in flight when the run quiesces. The conservation identity
//
//   arrivals == completed + tail_dropped + admit_rejected + shed + in_flight
//
// is a test invariant (tests/frontend_test.cpp), and like every obs result
// the block is integer-exact, folds across sweep shards order-independently
// (fold_frontend), serializes round-trip (frontend_json /
// frontend_from_value), and condenses to one FNV-1a digest() word.
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/sim/time.h"

namespace irs::obs {

struct FrontendResult {
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t tail_dropped = 0;    // accept queue was full
  std::uint64_t admit_rejected = 0;  // admission controller said no
  std::uint64_t shed = 0;            // SLO-burn load shedding
  std::uint64_t in_flight = 0;       // accepted, not completed at quiesce
  std::uint64_t conn_setups = 0;     // connections (re-)established
  std::uint64_t keepalive_reuses = 0;
  std::uint64_t max_queue_depth = 0;
  /// Accept-queue wait summed / maxed over completed requests (the same
  /// quantity forensics charges to Cause::kQueueWait).
  sim::Duration queue_wait_total = 0;
  sim::Duration queue_wait_max = 0;

  /// Requests refused at the door, whatever the policy called it.
  [[nodiscard]] std::uint64_t dropped() const {
    return tail_dropped + admit_rejected;
  }
  /// No front-end ran (every field at its default).
  [[nodiscard]] bool empty() const { return *this == FrontendResult{}; }
  /// FNV-1a over every field. 0 is reserved for the empty result.
  [[nodiscard]] std::uint64_t digest() const;
  bool operator==(const FrontendResult& o) const = default;
};

/// Exact fold of `r` into `acc` (for sweep averaging): counters add, the
/// max fields take the max. Folding N shards in any order is bit-identical
/// to any other order.
void fold_frontend(FrontendResult& acc, const FrontendResult& r);

/// Serialize as one JSON object on an open writer (fixed key order,
/// integers exact). Inverse below round-trips bit-identically.
void frontend_json(JsonWriter& w, const FrontendResult& f);
bool frontend_from_value(const JsonValue& v, FrontendResult* out,
                         std::string* err);

}  // namespace irs::obs
