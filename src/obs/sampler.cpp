#include "src/obs/sampler.h"

namespace irs::obs {

Sampler::Sampler(sim::Engine& eng, sim::Duration period, std::size_t capacity)
    : eng_(eng),
      period_(period > 0 ? period : kDefaultPeriod),
      capacity_(capacity > 0 ? capacity : kDefaultCapacity) {}

std::size_t Sampler::add_channel(std::string name, Desc d,
                                 std::function<std::int64_t()> fn) {
  const std::size_t i = descs_.size();
  descs_.push_back(d);
  prev_.push_back(0);
  primed_.push_back(0);
  fns_.push_back(std::move(fn));
  series_.emplace_back(std::move(name), capacity_);
  return i;
}

void Sampler::add_counter(std::string name, const Counters* src, Cnt c,
                          int shard) {
  Desc d;
  d.kind = ChannelKind::kCounter;
  d.src = src;
  d.cnt = c;
  d.shard = shard;
  const std::size_t i = add_channel(std::move(name), d, nullptr);
  prev_[i] = read_channel(i);
}

void Sampler::add_gauge(std::string name, std::function<std::int64_t()> fn) {
  add_channel(std::move(name), Desc{}, std::move(fn));
}

void Sampler::add_rate(std::string name, std::function<std::int64_t()> fn) {
  Desc d;
  d.kind = ChannelKind::kRate;
  const std::size_t i = add_channel(std::move(name), d, std::move(fn));
  prev_[i] = fns_[i]();
}

std::int64_t Sampler::read_channel(std::size_t i) const {
  const Desc& d = descs_[i];
  switch (d.kind) {
    case ChannelKind::kCounter:
      return d.shard < 0
                 ? d.src->fold(d.cnt)
                 : d.src->at(static_cast<std::size_t>(d.shard), d.cnt);
    case ChannelKind::kGauge:
    case ChannelKind::kRate:
      return fns_[i]();
  }
  return 0;
}

void Sampler::sample_now() {
  const sim::Time now = eng_.now();
  const std::size_t n = descs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cur = read_channel(i);
    if (descs_[i].kind == ChannelKind::kGauge) {
      // Sparse: a counter track carries its value forward, so only level
      // changes need a point (the first observation always does).
      if (primed_[i] == 0 || cur != prev_[i]) series_[i].push(now, cur);
      prev_[i] = cur;
      primed_[i] = 1;
    } else {
      const std::int64_t delta = cur - prev_[i];
      prev_[i] = cur;
      // Sparse: an absent sample is a zero delta by construction, so idle
      // periods cost no ring writes (most channels are idle most ticks).
      if (delta != 0) series_[i].push(now, delta);
    }
  }
}

void Sampler::tick() {
  sample_now();
  tick_evt_ = eng_.schedule(period_, [this]() { tick(); }, "obs.sample");
}

void Sampler::start() {
  if (started_) return;
  started_ = true;
  tick_evt_ = eng_.schedule(period_, [this]() { tick(); }, "obs.sample");
}

void Sampler::stop() {
  tick_evt_.cancel();
  started_ = false;
}

std::vector<SeriesData> Sampler::dump() const {
  std::vector<SeriesData> out;
  out.reserve(series_.size());
  for (const Series& s : series_) {
    out.push_back(SeriesData{s.name(), s.samples(), s.dropped()});
  }
  return out;
}

namespace {

inline void fnv(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
}

// splitmix64 finalizer: full-width word mixing so the sample loop hashes
// 16 bytes per iteration instead of byte-at-a-time FNV (the digest runs
// once per scenario and must stay off the sweep's critical path).
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t Sampler::digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const Series& s : series_) {
    fnv(h, s.name().data(), s.name().size());
    h = mix(h ^ s.dropped());
    s.for_each([&h](const Sample& smp) {
      h = mix(h ^ static_cast<std::uint64_t>(smp.when));
      h = mix(h ^ static_cast<std::uint64_t>(smp.value));
    });
  }
  return h;
}

}  // namespace irs::obs
