#include "src/obs/forensics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <set>
#include <vector>

namespace irs::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kRun: return "run";
    case Cause::kReadyWait: return "ready_wait";
    case Cause::kLhp: return "lhp";
    case Cause::kLwp: return "lwp";
    case Cause::kSteal: return "steal";
    case Cause::kThrottle: return "throttle";
    case Cause::kMigration: return "migration";
    case Cause::kSaNotify: return "sa_notify";
    case Cause::kBlock: return "block";
    case Cause::kUntracked: return "untracked";
    case Cause::kQueueWait: return "queue_wait";
  }
  return "?";
}

bool ForensicsWindow::operator==(const ForensicsWindow& o) const {
  if (index != o.index || requests != o.requests ||
      violations != o.violations) {
    return false;
  }
  for (int c = 0; c < kNumCauses; ++c) {
    if (causes[c] != o.causes[c]) return false;
  }
  return true;
}

sim::Duration ForensicsClassResult::cause_total(Cause c) const {
  const LatencyHistogram& h = causes[static_cast<int>(c)];
  const unsigned __int128 s =
      (static_cast<unsigned __int128>(h.sum_hi()) << 64) | h.sum_lo();
  return static_cast<sim::Duration>(s);
}

bool ForensicsClassResult::operator==(const ForensicsClassResult& o) const {
  if (name != o.name || !(spec == o.spec) || spans != o.spans ||
      truncated != o.truncated || open != o.open || windows != o.windows) {
    return false;
  }
  for (int c = 0; c < kNumCauses; ++c) {
    if (!(causes[c] == o.causes[c])) return false;
  }
  return true;
}

bool ForensicsResult::operator==(const ForensicsResult& o) const {
  return window == o.window && head_truncated_at == o.head_truncated_at &&
         classes == o.classes;
}

// ---------------------------------------------------------------------------
// Digest (same FNV-1a scheme as SloResult::digest)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t ForensicsResult::digest() const {
  if (classes.empty()) return 0;
  std::uint64_t h = kFnvOffset;
  fnv(h, static_cast<std::uint64_t>(window));
  fnv(h, static_cast<std::uint64_t>(head_truncated_at));
  fnv(h, classes.size());
  for (const ForensicsClassResult& c : classes) {
    fnv_str(h, c.name);
    fnv(h, static_cast<std::uint64_t>(c.spec.threshold));
    fnv(h, std::bit_cast<std::uint64_t>(c.spec.objective));
    fnv(h, c.spans);
    fnv(h, c.truncated);
    fnv(h, c.open);
    for (int i = 0; i < kNumCauses; ++i) fnv(h, c.causes[i].digest());
    fnv(h, c.windows.size());
    for (const ForensicsWindow& w : c.windows) {
      fnv(h, static_cast<std::uint64_t>(w.index));
      fnv(h, w.requests);
      fnv(h, w.violations);
      for (int i = 0; i < kNumCauses; ++i) {
        fnv(h, static_cast<std::uint64_t>(w.causes[i]));
      }
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

namespace {

/// Lazily-accruing cumulative stopwatch: value(t) is the total time the
/// tracked condition has held up to t. Idempotent start/stop.
struct Accum {
  sim::Duration sum = 0;
  sim::Time since = -1;

  void start(sim::Time t) {
    if (since < 0) since = t;
  }
  void stop(sim::Time t) {
    if (since >= 0) {
      sum += t - since;
      since = -1;
    }
  }
  [[nodiscard]] bool active() const { return since >= 0; }
  [[nodiscard]] sim::Duration value(sim::Time t) const {
    return active() ? sum + (t - since) : sum;
  }
};

/// Steal-window classes (index into VcpuState::steal).
constexpr int kStLhp = 0;
constexpr int kStLwp = 1;
constexpr int kStThrottle = 2;
constexpr int kStOther = 3;
constexpr int kNumStealClasses = 4;

constexpr Cause kStealCause[kNumStealClasses] = {
    Cause::kLhp, Cause::kLwp, Cause::kThrottle, Cause::kSteal};

struct VcpuState {
  Accum run;                        // holds a pCPU
  Accum sa;                         // running inside an SA grace window
  Accum steal[kNumStealClasses];    // runnable without a pCPU, by class
  int open_steal = -1;              // class of the open steal window, or -1
};

/// A closed sub-span of an off-CPU chain whose cause (blocked vs
/// ready-wait) is not yet known: both candidate charges are precomputed
/// from accumulator deltas so resolution is a pure re-labeling.
struct SubCharge {
  sim::Duration dur = 0;
  sim::Duration steal[kNumStealClasses] = {};  // ready-wait resolution
  sim::Duration lhp_active = 0;                // blocked resolution
  bool in_req = false;
};

enum TaskPhase : int {
  kPhUnknown = 0,
  kPhOn,       // on a guest lane
  kPhPending,  // left the lane, wake not yet seen (blocked or ready-wait)
  kPhWaiting,  // woken, runnable, waiting for the lane
};

struct TaskState {
  int phase = kPhUnknown;
  int vcpu = -1;           // lane (on) or assigned runqueue (off)
  sim::Time seg_start = -1;
  // Accumulator snapshots of `vcpu` taken at seg_start:
  sim::Duration run0 = 0;
  sim::Duration sa0 = 0;
  sim::Duration steal0[kNumStealClasses] = {};
  sim::Duration lhp_active0 = 0;
  std::vector<SubCharge> chain;  // closed sub-spans of the open off-chain
  // Active request span:
  bool req_active = false;
  sim::Time req_begin = 0;
  std::int32_t req_cls = 0;
  sim::Duration causes[kNumCauses] = {};
  // Unconsumed migration cache penalty (charged against future run time).
  sim::Duration mig_debt = 0;
};

struct Analyzer {
  const SloResult& slo;
  sim::Duration window = 0;
  Accum lhp_active{};  // >= 1 LHP-classified steal window open in the VM
  int lhp_open = 0;
  // Flat id-indexed state: vCPU and task ids are small dense integers
  // (TraceMeta enumerates them), so the per-record lookups on the replay
  // hot path are array loads, not tree walks. The four vCPU arrays are
  // sized together up front from the meta; every handler reaches them only
  // through the bounds-checked fg_vcpu() test, so ids beyond the meta
  // (foreign or synthetic records) are simply not foreground. Task state
  // grows on demand.
  std::vector<VcpuState> vcpus{};          // global vCPU id -> state
  std::vector<signed char> is_fg{};        // global vCPU id -> foreground?
  std::vector<signed char> pending_cls{};  // vCPU -> steal hint, -1 none
  std::vector<std::int32_t> lane{};        // fg gcpu -> on-lane task, -1 idle
  std::vector<TaskState> tasks{};          // task id -> state
  ForensicsResult out{};
  std::vector<std::set<std::int64_t>> violating{};  // per class: window idxs

  [[nodiscard]] bool fg_vcpu(int v) const {
    return v >= 0 && v < static_cast<int>(is_fg.size()) && is_fg[v] != 0;
  }
  TaskState& task(std::int32_t t) {
    if (t >= static_cast<std::int32_t>(tasks.size())) tasks.resize(t + 1);
    return tasks[t];
  }

  void ensure_class(int cls) {
    while (static_cast<int>(out.classes.size()) <= cls) {
      ForensicsClassResult c;
      const std::size_t i = out.classes.size();
      if (i < slo.classes.size()) {
        c.name = slo.classes[i].name;
        c.spec = slo.classes[i].spec;
      } else {
        c.name = "class" + std::to_string(i);
      }
      out.classes.push_back(std::move(c));
      std::set<std::int64_t> viol;
      if (i < slo.classes.size()) {
        for (const SloWindow& w : slo.classes[i].windows) {
          if (burn_rate(w, slo.classes[i].spec) > 1.0) viol.insert(w.index);
        }
      }
      violating.push_back(std::move(viol));
    }
  }

  void lhp_inc(sim::Time t) {
    if (lhp_open++ == 0) lhp_active.start(t);
  }
  void lhp_dec(sim::Time t) {
    if (--lhp_open == 0) lhp_active.stop(t);
  }

  VcpuState& vc(int v) { return vcpus[static_cast<std::size_t>(v)]; }

  /// Snapshot the accumulators of ts.vcpu at t and restart the segment.
  void snapshot(TaskState& ts, sim::Time t) {
    ts.seg_start = t;
    ts.lhp_active0 = lhp_active.value(t);
    if (fg_vcpu(ts.vcpu)) {
      VcpuState& v = vc(ts.vcpu);
      ts.run0 = v.run.value(t);
      ts.sa0 = v.sa.value(t);
      for (int c = 0; c < kNumStealClasses; ++c) {
        ts.steal0[c] = v.steal[c].value(t);
      }
    } else {
      ts.run0 = ts.sa0 = 0;
      for (int c = 0; c < kNumStealClasses; ++c) ts.steal0[c] = 0;
    }
  }

  /// Settle an on-lane segment [seg_start, t]: charge run / SA / steal /
  /// migration overlaps to the active request (when there is one) and
  /// consume migration debt either way.
  void close_on(TaskState& ts, sim::Time t) {
    if (ts.seg_start < 0 || t <= ts.seg_start) return;
    const sim::Duration dur = t - ts.seg_start;
    sim::Duration d_run = 0, d_sa = 0, d_steal[kNumStealClasses] = {};
    sim::Duration steal_sum = 0;
    if (fg_vcpu(ts.vcpu)) {
      VcpuState& v = vc(ts.vcpu);
      d_run = v.run.value(t) - ts.run0;
      d_sa = v.sa.value(t) - ts.sa0;
      for (int c = 0; c < kNumStealClasses; ++c) {
        d_steal[c] = v.steal[c].value(t) - ts.steal0[c];
        steal_sum += d_steal[c];
      }
    }
    sim::Duration run_raw = d_run - d_sa;
    if (run_raw < 0) run_raw = 0;
    const sim::Duration mig = std::min(ts.mig_debt, run_raw);
    ts.mig_debt -= mig;
    if (ts.req_active) {
      ts.causes[static_cast<int>(Cause::kSaNotify)] += d_sa;
      ts.causes[static_cast<int>(Cause::kMigration)] += mig;
      ts.causes[static_cast<int>(Cause::kRun)] += run_raw - mig;
      for (int c = 0; c < kNumStealClasses; ++c) {
        ts.causes[static_cast<int>(kStealCause[c])] += d_steal[c];
      }
      const sim::Duration rest = dur - d_run - steal_sum;
      if (rest > 0) ts.causes[static_cast<int>(Cause::kUntracked)] += rest;
    }
  }

  /// Close the current off-chain sub-span [seg_start, t] with both
  /// candidate charges; resolution happens when the chain's cause is known.
  void close_off_sub(TaskState& ts, sim::Time t) {
    if (ts.seg_start < 0 || t <= ts.seg_start) return;
    SubCharge s;
    s.dur = t - ts.seg_start;
    s.in_req = ts.req_active;
    s.lhp_active = lhp_active.value(t) - ts.lhp_active0;
    if (s.lhp_active > s.dur) s.lhp_active = s.dur;
    if (fg_vcpu(ts.vcpu)) {
      VcpuState& v = vc(ts.vcpu);
      for (int c = 0; c < kNumStealClasses; ++c) {
        s.steal[c] = v.steal[c].value(t) - ts.steal0[c];
      }
    }
    ts.chain.push_back(s);
  }

  /// The chain's cause became known: `blocked` chains (ended by a wake)
  /// split into lock-freeze overlap (lhp) + voluntary block; ready chains
  /// (reached the lane with no wake) split into runqueue-vCPU steal
  /// overlaps + genuine CPU contention (ready_wait).
  void resolve_chain(TaskState& ts, bool blocked) {
    for (const SubCharge& s : ts.chain) {
      if (!s.in_req) continue;
      if (blocked) {
        ts.causes[static_cast<int>(Cause::kLhp)] += s.lhp_active;
        ts.causes[static_cast<int>(Cause::kBlock)] += s.dur - s.lhp_active;
      } else {
        sim::Duration steal_sum = 0;
        for (int c = 0; c < kNumStealClasses; ++c) {
          ts.causes[static_cast<int>(kStealCause[c])] += s.steal[c];
          steal_sum += s.steal[c];
        }
        const sim::Duration rest = s.dur - steal_sum;
        if (rest > 0) ts.causes[static_cast<int>(Cause::kReadyWait)] += rest;
      }
    }
    ts.chain.clear();
  }

  // --- event handlers -----------------------------------------------------

  void on_guest_switch(const sim::TraceRecord& r) {
    const int gcpu = r.a;
    const std::int32_t old = lane[static_cast<std::size_t>(gcpu)];
    if (old >= 0 && old != r.b) {
      TaskState& ot = task(old);
      if (ot.phase == kPhOn && ot.vcpu == gcpu) {
        close_on(ot, r.when);
        ot.phase = kPhPending;
        snapshot(ot, r.when);
      }
    }
    lane[static_cast<std::size_t>(gcpu)] = r.b;
    if (r.b < 0) return;
    TaskState& ts = task(r.b);
    if (ts.phase == kPhOn) {
      if (ts.vcpu != gcpu) {
        close_on(ts, r.when);
        ts.vcpu = gcpu;
        snapshot(ts, r.when);
      }
      return;
    }
    if (ts.phase == kPhPending || ts.phase == kPhWaiting) {
      // Reached the lane without a wake in between: the whole chain was
      // runnable-wait (and for kPhWaiting, the post-wake tail of it).
      close_off_sub(ts, r.when);
      resolve_chain(ts, /*blocked=*/false);
    }
    ts.phase = kPhOn;
    ts.vcpu = gcpu;
    snapshot(ts, r.when);
  }

  void on_guest_wake(const sim::TraceRecord& r) {
    // a = task, b = target gcpu
    if (r.a < 0) return;
    TaskState& ts = task(r.a);
    if (ts.phase == kPhOn) return;  // spurious (already running)
    if (ts.phase == kPhPending) {
      // A wake proves the chain so far was a voluntary block.
      close_off_sub(ts, r.when);
      resolve_chain(ts, /*blocked=*/true);
      ts.phase = kPhWaiting;
      ts.vcpu = r.b;
      snapshot(ts, r.when);
      return;
    }
    if (ts.phase == kPhWaiting) {
      if (ts.vcpu != r.b) {
        close_off_sub(ts, r.when);
        ts.vcpu = r.b;
        snapshot(ts, r.when);
      }
      return;
    }
    ts.phase = kPhWaiting;  // cold start mid-wake
    ts.vcpu = r.b;
    snapshot(ts, r.when);
  }

  void on_migrate(const sim::TraceRecord& r) {
    // a = task, b = to gcpu, c = from gcpu, note = charged penalty (ns)
    if (r.a < 0) return;
    TaskState& ts = task(r.a);
    ts.mig_debt += std::atoll(r.note.c_str());
    if (ts.phase == kPhPending || ts.phase == kPhWaiting) {
      if (ts.vcpu != r.b) {
        close_off_sub(ts, r.when);
        ts.vcpu = r.b;
        snapshot(ts, r.when);
      }
    } else if (ts.phase == kPhUnknown) {
      ts.vcpu = r.b;
    }
  }

  void on_req_begin(const sim::TraceRecord& r) {
    // a = req id, b = SLO class, c = task
    if (r.c < 0) return;
    TaskState& ts = task(r.c);
    // Boundary first (with req_active still false / previous span closed),
    // so nothing before the begin instant is ever charged to this span.
    if (ts.phase == kPhOn) {
      close_on(ts, r.when);
      snapshot(ts, r.when);
    } else if (ts.phase == kPhPending || ts.phase == kPhWaiting) {
      close_off_sub(ts, r.when);
      snapshot(ts, r.when);
    }
    ts.req_active = true;
    ts.req_cls = r.b >= 0 ? r.b : 0;
    for (int c = 0; c < kNumCauses; ++c) ts.causes[c] = 0;
    // The bracket sits at the service start; the note carries the
    // accept-queue wait (ns) the request spent before any task touched it.
    // Back-date the span and pre-charge the wait so the end-to-end total
    // still covers arrival -> completion, exactly.
    const sim::Duration qwait = std::atoll(r.note.c_str());
    ts.req_begin = r.when - qwait;
    ts.causes[static_cast<int>(Cause::kQueueWait)] = qwait;
  }

  void on_req_end(const sim::TraceRecord& r) {
    const int cls = r.b >= 0 ? r.b : 0;
    ensure_class(cls);
    ForensicsClassResult& cr = out.classes[static_cast<std::size_t>(cls)];
    if (r.c < 0) {  // no task to attribute to: report, never charge
      ++cr.truncated;
      return;
    }
    TaskState& ts = task(r.c);
    if (!ts.req_active) {
      // No kReqBegin was seen for this span: report, never charge.
      ++cr.truncated;
      return;
    }
    if (ts.phase == kPhOn) {
      close_on(ts, r.when);
      snapshot(ts, r.when);
    } else if (ts.phase == kPhPending || ts.phase == kPhWaiting) {
      close_off_sub(ts, r.when);
      resolve_chain(ts, /*blocked=*/false);
      snapshot(ts, r.when);
    }
    if (out.head_truncated_at >= 0 && ts.req_begin < out.head_truncated_at) {
      // The span began before the retained ring head: the scheduler
      // evidence inside it is partial. Report, never charge (the segment
      // state above still had to be settled to stay consistent).
      ++cr.truncated;
      ts.req_active = false;
      return;
    }
    const sim::Duration total = r.when - ts.req_begin;
    sim::Duration charged = 0;
    for (int c = 0; c < kNumCauses; ++c) charged += ts.causes[c];
    // Cold starts (span opened before the replay knew the task's state)
    // leave a gap; it lands in `untracked` so the sum stays exact.
    if (total > charged) {
      ts.causes[static_cast<int>(Cause::kUntracked)] += total - charged;
    }
    for (int c = 0; c < kNumCauses; ++c) cr.causes[c].add(ts.causes[c]);
    ++cr.spans;
    const std::int64_t idx = window > 0 ? r.when / window : 0;
    if (violating[static_cast<std::size_t>(cls)].count(idx) != 0) {
      auto wit = std::find_if(
          cr.windows.begin(), cr.windows.end(),
          [idx](const ForensicsWindow& w) { return w.index == idx; });
      if (wit == cr.windows.end()) {
        ForensicsWindow w;
        w.index = idx;
        cr.windows.push_back(w);
        wit = cr.windows.end() - 1;
      }
      ++wit->requests;
      if (total > cr.spec.threshold) {
        ++wit->violations;
        for (int c = 0; c < kNumCauses; ++c) {
          wit->causes[c] += ts.causes[c];
        }
      }
    }
    ts.req_active = false;
  }

  void on_hv(const sim::TraceRecord& r) {
    VcpuState& v = vc(r.a);
    switch (r.kind) {
      case sim::TraceKind::kHvSchedule:
        if (v.open_steal >= 0) {
          v.steal[v.open_steal].stop(r.when);
          if (v.open_steal == kStLhp) lhp_dec(r.when);
          v.open_steal = -1;
        }
        v.run.start(r.when);
        pending_cls[static_cast<std::size_t>(r.a)] = -1;
        break;
      case sim::TraceKind::kHvPreempt: {
        v.run.stop(r.when);
        v.sa.stop(r.when);
        int cls = pending_cls[static_cast<std::size_t>(r.a)];
        if (cls >= 0) {
          pending_cls[static_cast<std::size_t>(r.a)] = -1;
        } else if (r.note == "throttle") {
          cls = kStThrottle;
        } else {
          cls = kStOther;
        }
        if (v.open_steal < 0) {
          v.open_steal = cls;
          v.steal[cls].start(r.when);
          if (cls == kStLhp) lhp_inc(r.when);
        }
        break;
      }
      case sim::TraceKind::kHvBlock:
        v.run.stop(r.when);
        v.sa.stop(r.when);
        if (v.open_steal >= 0) {
          v.steal[v.open_steal].stop(r.when);
          if (v.open_steal == kStLhp) lhp_dec(r.when);
          v.open_steal = -1;
        }
        pending_cls[static_cast<std::size_t>(r.a)] = -1;
        break;
      case sim::TraceKind::kHvWake:
        // Runnable-wait half of steal time (often zero-length).
        if (!v.run.active() && v.open_steal < 0) {
          v.open_steal = kStOther;
          v.steal[kStOther].start(r.when);
        }
        break;
      case sim::TraceKind::kSaSend:
        if (v.run.active()) v.sa.start(r.when);
        break;
      case sim::TraceKind::kSaAck:
        v.sa.stop(r.when);
        break;
      case sim::TraceKind::kLhp:
        pending_cls[static_cast<std::size_t>(r.a)] = kStLhp;
        break;
      case sim::TraceKind::kLwp:
        pending_cls[static_cast<std::size_t>(r.a)] = kStLwp;
        break;
      default:
        break;
    }
  }
};

}  // namespace

std::vector<sim::TraceRecord> with_request_spans(
    const std::vector<sim::TraceRecord>& records,
    const std::vector<ReqSpan>& spans, std::uint64_t base_seq) {
  std::vector<sim::TraceRecord> synth;
  synth.reserve(spans.size() * 2);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const ReqSpan& s = spans[i];
    // The begin bracket sits at the service start; a nonzero accept-queue
    // wait rides in the note (decimal ns) and the analyzer back-dates the
    // span by it (see header).
    sim::TraceRecord begin{s.begin + s.qwait, base_seq + 2 * i,
                           sim::TraceKind::kReqBegin, s.req, s.cls, s.task,
                           ""};
    if (s.qwait > 0) {
      // A 15-char note holds any wait below ~11.5 simulated days;
      // TraceNote truncates (never overflows) beyond that.
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(s.qwait));
      begin.note = buf;
    }
    synth.push_back(begin);
    synth.push_back(sim::TraceRecord{s.end, base_seq + 2 * i + 1,
                                     sim::TraceKind::kReqEnd, s.req, s.cls,
                                     s.task, ""});
  }
  const auto by_when_seq = [](const sim::TraceRecord& x,
                              const sim::TraceRecord& y) {
    return x.when != y.when ? x.when < y.when : x.seq < y.seq;
  };
  // Ends are already in completion order; begins (ab back-dates to the
  // arrival instant) are not, so sort before the merge.
  std::sort(synth.begin(), synth.end(), by_when_seq);
  std::vector<sim::TraceRecord> merged;
  merged.reserve(records.size() + synth.size());
  std::merge(records.begin(), records.end(), synth.begin(), synth.end(),
             std::back_inserter(merged), by_when_seq);
  return merged;
}

ForensicsResult request_forensics(const std::vector<sim::TraceRecord>& records,
                                  const TraceMeta& meta, const SloResult& slo,
                                  const std::string& vm) {
  Analyzer az{slo, slo.window > 0 ? slo.window : SloTracker::kDefaultWindow};
  az.out.window = az.window;
  int max_vcpu = -1;
  for (const VcpuInfo& v : meta.vcpus) max_vcpu = std::max(max_vcpu, v.id);
  az.vcpus.resize(static_cast<std::size_t>(max_vcpu + 1));
  az.is_fg.assign(static_cast<std::size_t>(max_vcpu + 1), 0);
  az.pending_cls.assign(static_cast<std::size_t>(max_vcpu + 1), -1);
  az.lane.assign(static_cast<std::size_t>(max_vcpu + 1), -1);
  for (const VcpuInfo& v : meta.vcpus) {
    if (v.vm == vm) az.is_fg[static_cast<std::size_t>(v.id)] = 1;
  }
  int max_task = -1;
  for (const TaskInfo& t : meta.tasks) max_task = std::max(max_task, t.id);
  az.tasks.resize(static_cast<std::size_t>(max_task + 1));
  if (meta.dropped > 0) {
    // The retained-ring head. The ring overwrites oldest-by-arrival, but
    // batched staging flushes whole blocks, so a stale buffer can land
    // ancient records after mid-run slots were already overwritten —
    // retention is not a clean seq suffix and "first retained record"
    // would underestimate the damage. Scheduler evidence is complete only
    // over the contiguous-by-seq tail ending at the newest record (seqs
    // and timestamps are co-monotonic within a run); its earliest record
    // marks the head. Synthesized request brackets never drop and carry
    // seqs past the ring's, so they are skipped on the way back.
    std::uint64_t expect = meta.total_recorded;  // one past the largest seq
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->kind == sim::TraceKind::kReqBegin ||
          it->kind == sim::TraceKind::kReqEnd) {
        continue;
      }
      if (it->seq != expect - 1) break;
      expect = it->seq;
      az.out.head_truncated_at = it->when;
    }
  }
  // Classes (and their violating-window sets) exist up front so an
  // all-truncated capture still reports per-class truncation counts.
  for (std::size_t i = 0; i < slo.classes.size(); ++i) {
    az.ensure_class(static_cast<int>(i));
  }

  for (const sim::TraceRecord& r : records) {
    switch (r.kind) {
      case sim::TraceKind::kGuestSwitch:
        if (az.fg_vcpu(r.a)) az.on_guest_switch(r);
        break;
      case sim::TraceKind::kGuestWake:
        if (az.fg_vcpu(r.b)) az.on_guest_wake(r);
        break;
      case sim::TraceKind::kMigrate:
        if (az.fg_vcpu(r.b)) az.on_migrate(r);
        break;
      case sim::TraceKind::kReqBegin:
        az.on_req_begin(r);
        break;
      case sim::TraceKind::kReqEnd:
        az.on_req_end(r);
        break;
      case sim::TraceKind::kHvSchedule:
      case sim::TraceKind::kHvPreempt:
      case sim::TraceKind::kHvBlock:
      case sim::TraceKind::kHvWake:
      case sim::TraceKind::kSaSend:
      case sim::TraceKind::kSaAck:
      case sim::TraceKind::kLhp:
      case sim::TraceKind::kLwp:
        if (az.fg_vcpu(r.a)) az.on_hv(r);
        break;
      default:
        break;
    }
  }

  // Spans still open when the trace ends are reported, never charged.
  for (TaskState& ts : az.tasks) {
    if (ts.req_active) {
      az.ensure_class(ts.req_cls);
      ++az.out.classes[static_cast<std::size_t>(ts.req_cls)].open;
    }
  }
  for (ForensicsClassResult& c : az.out.classes) {
    std::sort(c.windows.begin(), c.windows.end(),
              [](const ForensicsWindow& x, const ForensicsWindow& y) {
                return x.index < y.index;
              });
  }
  return az.out;
}

// ---------------------------------------------------------------------------
// Fold
// ---------------------------------------------------------------------------

void fold_forensics(ForensicsResult& acc, const ForensicsResult& r) {
  if (r.empty()) return;
  if (acc.empty()) {
    acc = r;
    return;
  }
  acc.head_truncated_at = std::max(acc.head_truncated_at, r.head_truncated_at);
  for (const ForensicsClassResult& rc : r.classes) {
    ForensicsClassResult* ac = nullptr;
    for (ForensicsClassResult& c : acc.classes) {
      if (c.name == rc.name) {
        ac = &c;
        break;
      }
    }
    if (ac == nullptr) {
      acc.classes.push_back(rc);
      continue;
    }
    ac->spans += rc.spans;
    ac->truncated += rc.truncated;
    ac->open += rc.open;
    for (int c = 0; c < kNumCauses; ++c) ac->causes[c].merge(rc.causes[c]);
    for (const ForensicsWindow& rw : rc.windows) {
      auto it = std::find_if(
          ac->windows.begin(), ac->windows.end(),
          [&rw](const ForensicsWindow& w) { return w.index == rw.index; });
      if (it == ac->windows.end()) {
        ac->windows.push_back(rw);
      } else {
        it->requests += rw.requests;
        it->violations += rw.violations;
        for (int c = 0; c < kNumCauses; ++c) it->causes[c] += rw.causes[c];
      }
    }
    std::sort(ac->windows.begin(), ac->windows.end(),
              [](const ForensicsWindow& x, const ForensicsWindow& y) {
                return x.index < y.index;
              });
  }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

void forensics_json(JsonWriter& w, const ForensicsResult& f) {
  w.begin_object();
  w.field("window_ns", static_cast<std::int64_t>(f.window));
  w.field("head_truncated_at",
          static_cast<std::int64_t>(f.head_truncated_at));
  w.key("classes");
  w.begin_array();
  for (const ForensicsClassResult& c : f.classes) {
    w.begin_object();
    w.field("name", c.name);
    w.field("threshold_ns", static_cast<std::int64_t>(c.spec.threshold));
    w.field("objective", c.spec.objective);
    w.field("spans", c.spans);
    w.field("truncated", c.truncated);
    w.field("open", c.open);
    w.key("causes");
    w.begin_array();
    for (int i = 0; i < kNumCauses; ++i) {
      const LatencyHistogram& h = c.causes[i];
      w.begin_object();
      w.field("name", std::string(cause_name(static_cast<Cause>(i))));
      w.field("count", h.count());
      w.field("sum_lo", h.sum_lo());
      w.field("sum_hi", h.sum_hi());
      w.field("min_ns", static_cast<std::int64_t>(h.min()));
      w.field("max_ns", static_cast<std::int64_t>(h.max()));
      w.key("buckets");
      w.begin_array();
      h.for_each_bucket([&w](int idx, std::uint64_t cnt) {
        w.begin_array();
        w.value(idx);
        w.value(cnt);
        w.end_array();
      });
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("windows");
    w.begin_array();
    for (const ForensicsWindow& win : c.windows) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(win.index));
      w.value(win.requests);
      w.value(win.violations);
      for (int i = 0; i < kNumCauses; ++i) {
        w.value(static_cast<std::int64_t>(win.causes[i]));
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

bool fz_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

int cause_index(const std::string& name) {
  for (int i = 0; i < kNumCauses; ++i) {
    if (name == cause_name(static_cast<Cause>(i))) return i;
  }
  return -1;
}

}  // namespace

bool forensics_from_value(const JsonValue& v, ForensicsResult* out,
                          std::string* err) {
  if (!v.is_object()) return fz_err(err, "forensics is not a JSON object");
  ForensicsResult f;
  std::int64_t window = 0, head = 0;
  const JsonValue* fld = v.find("window_ns");
  if (fld == nullptr || !fld->get(&window)) {
    return fz_err(err, "forensics: missing or bad 'window_ns'");
  }
  f.window = window;
  if ((fld = v.find("head_truncated_at")) == nullptr || !fld->get(&head)) {
    return fz_err(err, "forensics: missing 'head_truncated_at'");
  }
  f.head_truncated_at = head;
  const JsonValue* classes = v.find("classes");
  if (classes == nullptr || !classes->is_array()) {
    return fz_err(err, "forensics: missing or bad 'classes'");
  }
  for (const JsonValue& cv : classes->items) {
    if (!cv.is_object()) {
      return fz_err(err, "forensics: class is not an object");
    }
    ForensicsClassResult c;
    std::int64_t threshold = 0;
    if ((fld = cv.find("name")) == nullptr || !fld->get(&c.name)) {
      return fz_err(err, "forensics class: missing 'name'");
    }
    if ((fld = cv.find("threshold_ns")) == nullptr || !fld->get(&threshold)) {
      return fz_err(err, "forensics class: missing 'threshold_ns'");
    }
    c.spec.threshold = threshold;
    if ((fld = cv.find("objective")) == nullptr ||
        !fld->get(&c.spec.objective)) {
      return fz_err(err, "forensics class: missing 'objective'");
    }
    if ((fld = cv.find("spans")) == nullptr || !fld->get(&c.spans)) {
      return fz_err(err, "forensics class: missing 'spans'");
    }
    if ((fld = cv.find("truncated")) == nullptr || !fld->get(&c.truncated)) {
      return fz_err(err, "forensics class: missing 'truncated'");
    }
    if ((fld = cv.find("open")) == nullptr || !fld->get(&c.open)) {
      return fz_err(err, "forensics class: missing 'open'");
    }
    const JsonValue* causes = cv.find("causes");
    if (causes == nullptr || !causes->is_array()) {
      return fz_err(err, "forensics class: missing 'causes'");
    }
    for (const JsonValue& hv : causes->items) {
      if (!hv.is_object()) {
        return fz_err(err, "forensics class: cause is not an object");
      }
      std::string cname;
      if ((fld = hv.find("name")) == nullptr || !fld->get(&cname)) {
        return fz_err(err, "forensics cause: missing 'name'");
      }
      const int ci = cause_index(cname);
      if (ci < 0) return fz_err(err, "forensics cause: unknown '" + cname + "'");
      LatencyHistogram& h = c.causes[ci];
      std::uint64_t count = 0, sum_lo = 0, sum_hi = 0;
      std::int64_t min_ns = 0, max_ns = 0;
      if ((fld = hv.find("count")) == nullptr || !fld->get(&count)) {
        return fz_err(err, "forensics cause: missing 'count'");
      }
      if ((fld = hv.find("sum_lo")) == nullptr || !fld->get(&sum_lo)) {
        return fz_err(err, "forensics cause: missing 'sum_lo'");
      }
      if ((fld = hv.find("sum_hi")) == nullptr || !fld->get(&sum_hi)) {
        return fz_err(err, "forensics cause: missing 'sum_hi'");
      }
      if ((fld = hv.find("min_ns")) == nullptr || !fld->get(&min_ns)) {
        return fz_err(err, "forensics cause: missing 'min_ns'");
      }
      if ((fld = hv.find("max_ns")) == nullptr || !fld->get(&max_ns)) {
        return fz_err(err, "forensics cause: missing 'max_ns'");
      }
      const JsonValue* buckets = hv.find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        return fz_err(err, "forensics cause: missing 'buckets'");
      }
      for (const JsonValue& bv : buckets->items) {
        std::int64_t idx = 0;
        std::uint64_t cnt = 0;
        if (!bv.is_array() || bv.items.size() != 2 ||
            !bv.items[0].get(&idx) || !bv.items[1].get(&cnt)) {
          return fz_err(err, "forensics cause: bad bucket entry");
        }
        if (idx < 0 || idx >= LatencyHistogram::kNumBuckets) {
          return fz_err(err, "forensics cause: bucket index out of range");
        }
        h.restore_bucket(static_cast<int>(idx), cnt);
      }
      h.restore_summary(count, sum_lo, sum_hi, min_ns, max_ns);
    }
    const JsonValue* windows = cv.find("windows");
    if (windows == nullptr || !windows->is_array()) {
      return fz_err(err, "forensics class: missing 'windows'");
    }
    for (const JsonValue& wv : windows->items) {
      // Window causes are positional (enum order); causes append, so a
      // capture from before a cause existed is shorter — accept it and
      // default the missing tail to 0. Longer than we know is malformed.
      if (!wv.is_array() || wv.items.size() < 3 ||
          wv.items.size() > static_cast<std::size_t>(3 + kNumCauses)) {
        return fz_err(err, "forensics class: bad window entry");
      }
      ForensicsWindow win;
      std::int64_t idx = 0;
      if (!wv.items[0].get(&idx) || !wv.items[1].get(&win.requests) ||
          !wv.items[2].get(&win.violations)) {
        return fz_err(err, "forensics class: bad window field");
      }
      win.index = idx;
      for (int i = 0; 3 + i < static_cast<int>(wv.items.size()); ++i) {
        std::int64_t d = 0;
        if (!wv.items[static_cast<std::size_t>(3 + i)].get(&d)) {
          return fz_err(err, "forensics class: bad window cause");
        }
        win.causes[i] = d;
      }
      c.windows.push_back(win);
    }
    f.classes.push_back(std::move(c));
  }
  *out = std::move(f);
  return true;
}

}  // namespace irs::obs
