#include "src/obs/counters.h"

// Header-only registry; this translation unit anchors the target.
