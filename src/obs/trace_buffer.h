// Batched trace pipeline: per-module staging buffers over the shared
// sim::Trace ring, plus typed query helpers over snapshots.
//
// sim::Trace::record() was the hottest line after the event engine in
// trace-heavy runs (ROADMAP "Batched trace ring"): every producer paid the
// full ring bookkeeping per record. Each module (the hypervisor, each guest
// kernel) now owns a TraceBuffer that stages records locally and flushes
// them into the ring in blocks. Sequence numbers are drawn from the ring at
// record time, so flushed blocks from different modules interleave in
// exactly the order they were recorded (Trace::snapshot sorts by
// (when, seq)). The buffer registers a flush hook with the ring, so
// snapshot/count/dump always see fully-flushed data.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/trace.h"

namespace irs::obs {

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultBatch = 64;

  /// `trace` may be nullptr (tracing disabled for this module).
  explicit TraceBuffer(sim::Trace* trace, std::size_t batch = kDefaultBatch)
      : trace_(trace), batch_(batch > 0 ? batch : 1) {
    staged_.reserve(batch_);
    if (trace_ != nullptr) {
      hook_id_ = trace_->add_flush_hook([this]() { flush(); });
    }
  }
  ~TraceBuffer() {
    if (trace_ != nullptr) {
      flush();
      trace_->remove_flush_hook(hook_id_);
    }
  }
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  [[nodiscard]] bool enabled() const {
    return trace_ != nullptr && trace_->enabled();
  }

  void record(sim::Time when, sim::TraceKind kind, std::int32_t a,
              std::int32_t b, const char* note = "", std::int32_t c = -1) {
    if (!enabled()) return;
    staged_.push_back(
        sim::TraceRecord{when, trace_->alloc_seq(), kind, a, b, c, note});
    if (staged_.size() >= batch_) flush();
  }

  /// Push every staged record into the shared ring in one block.
  void flush() {
    if (staged_.empty()) return;
    trace_->append_block(staged_.data(), staged_.size());
    staged_.clear();
  }

  /// Records staged but not yet flushed (test/bench introspection).
  [[nodiscard]] std::size_t staged() const { return staged_.size(); }

  /// Batch size 1 degenerates to the unbatched direct-ring path — the
  /// "before" of the bench_report trace-overhead metric.
  void set_batch(std::size_t n) {
    flush();
    batch_ = n > 0 ? n : 1;
    staged_.reserve(batch_);
  }
  [[nodiscard]] std::size_t batch() const { return batch_; }

 private:
  sim::Trace* trace_;
  std::size_t batch_;
  int hook_id_ = -1;
  std::vector<sim::TraceRecord> staged_;
};

/// Typed filter chain over a trace snapshot, so tests assert on records
/// instead of string-matching dumps.
class TraceQuery {
 public:
  explicit TraceQuery(std::vector<sim::TraceRecord> recs)
      : recs_(std::move(recs)) {}
  /// Convenience: snapshot (flushing staging buffers) and wrap.
  explicit TraceQuery(sim::Trace& trace) : recs_(trace.snapshot()) {}

  [[nodiscard]] TraceQuery of_kind(sim::TraceKind k) const {
    return filter([k](const sim::TraceRecord& r) { return r.kind == k; });
  }
  /// Records with `when` in [t0, t1].
  [[nodiscard]] TraceQuery between(sim::Time t0, sim::Time t1) const {
    return filter([t0, t1](const sim::TraceRecord& r) {
      return r.when >= t0 && r.when <= t1;
    });
  }
  [[nodiscard]] TraceQuery with_a(std::int32_t a) const {
    return filter([a](const sim::TraceRecord& r) { return r.a == a; });
  }
  [[nodiscard]] TraceQuery with_b(std::int32_t b) const {
    return filter([b](const sim::TraceRecord& r) { return r.b == b; });
  }

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] bool empty() const { return recs_.empty(); }
  [[nodiscard]] const sim::TraceRecord& first() const { return recs_.front(); }
  [[nodiscard]] const sim::TraceRecord& last() const { return recs_.back(); }
  [[nodiscard]] const std::vector<sim::TraceRecord>& records() const {
    return recs_;
  }

 private:
  template <typename Pred>
  [[nodiscard]] TraceQuery filter(Pred pred) const {
    std::vector<sim::TraceRecord> out;
    for (const auto& r : recs_) {
      if (pred(r)) out.push_back(r);
    }
    return TraceQuery(std::move(out));
  }

  std::vector<sim::TraceRecord> recs_;
};

}  // namespace irs::obs
