#include "src/obs/chrome_trace.h"

#include <map>

#include "src/obs/json.h"

namespace irs::obs {

namespace {

constexpr int kPidPcpus = 0;
constexpr int kPidVcpus = 1;

std::string vcpu_label(const TraceMeta& meta, int vcpu) {
  for (const auto& v : meta.vcpus) {
    if (v.id == vcpu) {
      return v.vm + "/vcpu" + std::to_string(v.idx);
    }
  }
  return "vcpu" + std::to_string(vcpu);
}

void meta_event(JsonWriter& w, const char* name, int pid, int tid,
                const std::string& arg) {
  w.begin_object()
      .field("name", name)
      .field("ph", "M")
      .field("pid", pid)
      .field("tid", tid)
      .key("args")
      .begin_object()
      .field("name", arg)
      .end_object()
      .end_object();
}

void span_event(JsonWriter& w, const std::string& name, int pid, int tid,
                sim::Time start, sim::Time end) {
  w.begin_object()
      .field("name", name)
      .field("ph", "X")
      .field("pid", pid)
      .field("tid", tid)
      .field("ts", sim::to_us(start))
      .field("dur", sim::to_us(end - start))
      .end_object();
}

void flow_event(JsonWriter& w, const char* ph, std::uint64_t id, int tid,
                sim::Time when, bool binding_next) {
  w.begin_object()
      .field("name", "sa")
      .field("cat", "sa")
      .field("ph", ph)
      .field("id", id)
      .field("pid", kPidVcpus)
      .field("tid", tid)
      .field("ts", sim::to_us(when));
  if (binding_next) w.field("bp", "e");
  w.end_object();
}

void instant_event(JsonWriter& w, const std::string& name, int pid, int tid,
                   sim::Time when, const char* scope, std::int32_t arg_task) {
  w.begin_object()
      .field("name", name)
      .field("ph", "i")
      .field("s", scope)
      .field("pid", pid)
      .field("tid", tid)
      .field("ts", sim::to_us(when));
  if (arg_task >= 0) {
    w.key("args").begin_object().field("task", arg_task).end_object();
  }
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta) {
  JsonWriter w;
  w.begin_object()
      .field("displayTimeUnit", "ms")
      .field("otherData", meta.title)  // free-form run label
      .key("traceEvents")
      .begin_array();

  meta_event(w, "process_name", kPidPcpus, 0, "pCPUs");
  meta_event(w, "process_name", kPidVcpus, 0, "vCPUs");
  for (int p = 0; p < meta.n_pcpus; ++p) {
    meta_event(w, "thread_name", kPidPcpus, p, "pCPU " + std::to_string(p));
  }
  for (const auto& v : meta.vcpus) {
    meta_event(w, "thread_name", kPidVcpus, v.id, vcpu_label(meta, v.id));
  }

  if (meta.dropped > 0) {
    w.begin_object()
        .field("name", "trace truncated")
        .field("ph", "i")
        .field("s", "g")
        .field("pid", kPidPcpus)
        .field("tid", 0)
        .field("ts", sim::to_us(meta.start))
        .key("args")
        .begin_object()
        .field("dropped", meta.dropped)
        .field("total_recorded", meta.total_recorded)
        .end_object()
        .end_object();
  }

  // vCPU id -> (pcpu, on-cpu-since) for the currently open span.
  std::map<int, std::pair<int, sim::Time>> on_cpu;
  // vCPU id -> flow id of an SA send still awaiting its ack.
  std::map<int, std::uint64_t> pending_sa;
  std::uint64_t next_flow_id = 1;

  auto close_span = [&](int vcpu, int pcpu, sim::Time start, sim::Time end) {
    const std::string label = vcpu_label(meta, vcpu);
    span_event(w, label, kPidPcpus, pcpu, start, end);
    span_event(w, "on pCPU " + std::to_string(pcpu), kPidVcpus, vcpu, start,
               end);
  };

  for (const auto& r : records) {
    switch (r.kind) {
      case sim::TraceKind::kHvSchedule: {
        // A reschedule of an already-running vCPU closes its prior span.
        auto it = on_cpu.find(r.a);
        if (it != on_cpu.end()) {
          close_span(r.a, it->second.first, it->second.second, r.when);
        }
        on_cpu[r.a] = {r.b, r.when};
        break;
      }
      case sim::TraceKind::kHvPreempt:
      case sim::TraceKind::kHvBlock: {
        auto it = on_cpu.find(r.a);
        if (it != on_cpu.end()) {
          close_span(r.a, it->second.first, it->second.second, r.when);
          on_cpu.erase(it);
        }
        break;
      }
      case sim::TraceKind::kSaSend: {
        const std::uint64_t id = next_flow_id++;
        pending_sa[r.a] = id;
        flow_event(w, "s", id, r.a, r.when, /*binding_next=*/false);
        break;
      }
      case sim::TraceKind::kSaAck: {
        auto it = pending_sa.find(r.a);
        if (it != pending_sa.end()) {
          flow_event(w, "f", it->second, r.a, r.when, /*binding_next=*/true);
          pending_sa.erase(it);
        }
        break;
      }
      case sim::TraceKind::kLhp:
        instant_event(w, "LHP", kPidVcpus, r.a, r.when, "t", r.b);
        break;
      case sim::TraceKind::kLwp:
        instant_event(w, "LWP", kPidVcpus, r.a, r.when, "t", r.b);
        break;
      default:
        break;
    }
  }

  // Close spans still open at the end of the trace (std::map iteration
  // gives deterministic vCPU-id order).
  for (const auto& [vcpu, span] : on_cpu) {
    close_span(vcpu, span.first, span.second, meta.end);
  }

  w.end_array().end_object();
  return w.str();
}

}  // namespace irs::obs
