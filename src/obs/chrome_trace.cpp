#include "src/obs/chrome_trace.h"

#include <map>
#include <set>

#include "src/obs/forensics.h"
#include "src/obs/json.h"

namespace irs::obs {

namespace {

constexpr int kPidPcpus = 0;
constexpr int kPidVcpus = 1;
constexpr int kPidGuest = 2;
constexpr int kPidCounters = 3;
constexpr int kPidRequests = 4;

std::string vcpu_label(const TraceMeta& meta, int vcpu) {
  for (const auto& v : meta.vcpus) {
    if (v.id == vcpu) {
      return v.vm + "/vcpu" + std::to_string(v.idx);
    }
  }
  return "vcpu" + std::to_string(vcpu);
}

/// "vm/taskname" for a task seen on `vcpu` (task ids are VM-local).
std::string task_label(const TraceMeta& meta, int vcpu, std::int32_t task) {
  const std::string* vm = nullptr;
  for (const auto& v : meta.vcpus) {
    if (v.id == vcpu) {
      vm = &v.vm;
      break;
    }
  }
  if (vm == nullptr) return "task" + std::to_string(task);
  for (const auto& t : meta.tasks) {
    if (t.id == task && t.vm == *vm) return *vm + "/" + t.name;
  }
  return *vm + "/task" + std::to_string(task);
}

/// Lane label for a request-emitting task. Request records carry no VM, but
/// only the serving workload emits them, so the first id match is the one.
std::string req_task_label(const TraceMeta& meta, std::int32_t task) {
  for (const auto& t : meta.tasks) {
    if (t.id == task) return t.vm + "/" + t.name;
  }
  return "task" + std::to_string(task);
}

void meta_event(JsonWriter& w, const char* name, int pid, int tid,
                const std::string& arg) {
  w.begin_object()
      .field("name", name)
      .field("ph", "M")
      .field("pid", pid)
      .field("tid", tid)
      .key("args")
      .begin_object()
      .field("name", arg)
      .end_object()
      .end_object();
}

void span_event(JsonWriter& w, const std::string& name, int pid, int tid,
                sim::Time start, sim::Time end) {
  w.begin_object()
      .field("name", name)
      .field("ph", "X")
      .field("pid", pid)
      .field("tid", tid)
      .field("ts", sim::to_us(start))
      .field("dur", sim::to_us(end - start))
      .end_object();
}

void flow_event(JsonWriter& w, const char* ph, const std::string& name,
                const char* cat, std::uint64_t id, int pid, int tid,
                sim::Time when, bool binding_next) {
  w.begin_object()
      .field("name", name)
      .field("cat", cat)
      .field("ph", ph)
      .field("id", id)
      .field("pid", pid)
      .field("tid", tid)
      .field("ts", sim::to_us(when));
  if (binding_next) w.field("bp", "e");
  w.end_object();
}

void counter_event(JsonWriter& w, const std::string& name, sim::Time when,
                   std::int64_t value) {
  w.begin_object()
      .field("name", name)
      .field("ph", "C")
      .field("pid", kPidCounters)
      .field("ts", sim::to_us(when))
      .key("args")
      .begin_object()
      .field("value", value)
      .end_object()
      .end_object();
}

void counter_event_f(JsonWriter& w, const std::string& name, sim::Time when,
                     double value) {
  w.begin_object()
      .field("name", name)
      .field("ph", "C")
      .field("pid", kPidCounters)
      .field("ts", sim::to_us(when))
      .key("args")
      .begin_object()
      .field("value", value)
      .end_object()
      .end_object();
}

void instant_event(JsonWriter& w, const std::string& name, int pid, int tid,
                   sim::Time when, const char* scope, std::int32_t arg_task) {
  w.begin_object()
      .field("name", name)
      .field("ph", "i")
      .field("s", scope)
      .field("pid", pid)
      .field("tid", tid)
      .field("ts", sim::to_us(when));
  if (arg_task >= 0) {
    w.key("args").begin_object().field("task", arg_task).end_object();
  }
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta) {
  return chrome_trace_json(records, meta, ChromeTraceOptions{});
}

std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta,
                              const ChromeTraceOptions& opt) {
  JsonWriter w;
  w.begin_object()
      .field("displayTimeUnit", "ms")
      .field("otherData", meta.title)  // free-form run label
      .key("traceEvents")
      .begin_array();

  meta_event(w, "process_name", kPidPcpus, 0, "pCPUs");
  meta_event(w, "process_name", kPidVcpus, 0, "vCPUs");
  for (int p = 0; p < meta.n_pcpus; ++p) {
    meta_event(w, "thread_name", kPidPcpus, p, "pCPU " + std::to_string(p));
  }
  for (const auto& v : meta.vcpus) {
    meta_event(w, "thread_name", kPidVcpus, v.id, vcpu_label(meta, v.id));
  }
  if (opt.guest_lanes) {
    meta_event(w, "process_name", kPidGuest, 0, "guest tasks");
    for (const auto& v : meta.vcpus) {
      meta_event(w, "thread_name", kPidGuest, v.id, vcpu_label(meta, v.id));
    }
  }
  if (opt.request_lanes) {
    meta_event(w, "process_name", kPidRequests, 0, "requests");
  }
  if ((opt.counters != nullptr && !opt.counters->empty()) ||
      (opt.slo != nullptr && !opt.slo->empty()) ||
      (opt.forensics != nullptr && !opt.forensics->empty())) {
    meta_event(w, "process_name", kPidCounters, 0, "counters");
  }

  if (meta.dropped > 0) {
    // Place the marker where the retained portion begins: everything before
    // this timestamp was dropped when the ring wrapped.
    const sim::Time head = records.empty() ? meta.start : records.front().when;
    w.begin_object()
        .field("name", "trace truncated")
        .field("ph", "i")
        .field("s", "g")
        .field("pid", kPidPcpus)
        .field("tid", 0)
        .field("ts", sim::to_us(head))
        .key("args")
        .begin_object()
        .field("head_us", sim::to_us(head))
        .field("dropped", meta.dropped)
        .field("total_recorded", meta.total_recorded)
        .end_object()
        .end_object();
  }

  // vCPU id -> (pcpu, on-cpu-since) for the currently open span.
  std::map<int, std::pair<int, sim::Time>> on_cpu;
  // vCPU id -> flow id of an SA send still awaiting its ack.
  std::map<int, std::uint64_t> pending_sa;
  // Guest lanes: vCPU id -> (task, on-vcpu-since) for the open task span.
  std::map<int, std::pair<std::int32_t, sim::Time>> on_vcpu;
  // Request lanes: req id -> (task, begin time) for spans still in flight,
  // plus the set of tasks that already have a lane label.
  std::map<std::int32_t, std::pair<std::int32_t, sim::Time>> open_req;
  std::set<std::int32_t> req_lanes_named;
  std::uint64_t next_flow_id = 1;

  auto name_req_lane = [&](std::int32_t task) {
    if (!req_lanes_named.insert(task).second) return;
    meta_event(w, "thread_name", kPidRequests, task,
               req_task_label(meta, task));
  };

  auto close_guest_span = [&](int vcpu, std::int32_t task, sim::Time start,
                              sim::Time end) {
    span_event(w, task_label(meta, vcpu, task), kPidGuest, vcpu, start, end);
  };

  auto close_span = [&](int vcpu, int pcpu, sim::Time start, sim::Time end) {
    const std::string label = vcpu_label(meta, vcpu);
    span_event(w, label, kPidPcpus, pcpu, start, end);
    span_event(w, "on pCPU " + std::to_string(pcpu), kPidVcpus, vcpu, start,
               end);
  };

  for (const auto& r : records) {
    switch (r.kind) {
      case sim::TraceKind::kHvSchedule: {
        // A reschedule of an already-running vCPU closes its prior span.
        auto it = on_cpu.find(r.a);
        if (it != on_cpu.end()) {
          close_span(r.a, it->second.first, it->second.second, r.when);
        }
        on_cpu[r.a] = {r.b, r.when};
        break;
      }
      case sim::TraceKind::kHvPreempt:
      case sim::TraceKind::kHvBlock: {
        auto it = on_cpu.find(r.a);
        if (it != on_cpu.end()) {
          close_span(r.a, it->second.first, it->second.second, r.when);
          on_cpu.erase(it);
        }
        break;
      }
      case sim::TraceKind::kSaSend: {
        const std::uint64_t id = next_flow_id++;
        pending_sa[r.a] = id;
        flow_event(w, "s", "sa", "sa", id, kPidVcpus, r.a, r.when,
                   /*binding_next=*/false);
        break;
      }
      case sim::TraceKind::kSaAck: {
        auto it = pending_sa.find(r.a);
        if (it != pending_sa.end()) {
          flow_event(w, "f", "sa", "sa", it->second, kPidVcpus, r.a, r.when,
                     /*binding_next=*/true);
          pending_sa.erase(it);
        }
        break;
      }
      case sim::TraceKind::kLhp:
        instant_event(w, "LHP", kPidVcpus, r.a, r.when, "t", r.c);
        break;
      case sim::TraceKind::kLwp:
        instant_event(w, "LWP", kPidVcpus, r.a, r.when, "t", r.c);
        break;
      case sim::TraceKind::kGuestSwitch: {
        if (!opt.guest_lanes) break;
        auto it = on_vcpu.find(r.a);
        if (it != on_vcpu.end()) {
          close_guest_span(r.a, it->second.first, it->second.second, r.when);
          on_vcpu.erase(it);
        }
        if (r.b >= 0) on_vcpu[r.a] = {r.b, r.when};
        break;
      }
      case sim::TraceKind::kReqBegin: {
        if (!opt.request_lanes) break;
        // a = request id, b = SLO class, c = serving task.
        name_req_lane(r.c);
        open_req[r.a] = {r.c, r.when};
        break;
      }
      case sim::TraceKind::kReqEnd: {
        if (!opt.request_lanes) break;
        auto it = open_req.find(r.a);
        if (it == open_req.end()) break;  // begin dropped by ring wrap
        span_event(w, "req " + std::to_string(r.a), kPidRequests,
                   it->second.first, it->second.second, r.when);
        open_req.erase(it);
        break;
      }
      case sim::TraceKind::kMigrate: {
        if (!opt.guest_lanes) break;
        // a = task, b = destination vCPU, c = source vCPU.
        const std::uint64_t id = next_flow_id++;
        const std::string label = task_label(meta, r.b, r.a);
        flow_event(w, "s", label, "migrate", id, kPidGuest, r.c, r.when,
                   /*binding_next=*/false);
        flow_event(w, "f", label, "migrate", id, kPidGuest, r.b, r.when,
                   /*binding_next=*/true);
        break;
      }
      default:
        break;
    }
  }

  // Close spans still open at the end of the trace (std::map iteration
  // gives deterministic vCPU-id order).
  for (const auto& [vcpu, span] : on_cpu) {
    close_span(vcpu, span.first, span.second, meta.end);
  }
  for (const auto& [vcpu, span] : on_vcpu) {
    close_guest_span(vcpu, span.first, span.second, meta.end);
  }
  for (const auto& [req, span] : open_req) {
    span_event(w, "req " + std::to_string(req) + " (open)", kPidRequests,
               span.first, span.second, meta.end);
  }

  if (opt.counters != nullptr) {
    for (const auto& s : *opt.counters) {
      for (const auto& smp : s.samples) {
        counter_event(w, s.name, smp.when, smp.value);
      }
    }
  }

  if (opt.slo != nullptr && !opt.slo->empty()) {
    for (const auto& c : opt.slo->classes) {
      for (const SloWindow& win : c.windows) {
        // Step each track at the window's start time; Perfetto holds the
        // value until the next sample, so gaps (empty windows) read as the
        // previous window's level — acceptable for a step series.
        const sim::Time at = win.index * opt.slo->window;
        counter_event_f(w, "slo:" + c.name + ":p50", at, sim::to_ms(win.p50));
        counter_event_f(w, "slo:" + c.name + ":p99", at, sim::to_ms(win.p99));
        counter_event_f(w, "slo:" + c.name + ":p999", at,
                        sim::to_ms(win.p999));
        counter_event_f(w, "slo:" + c.name + ":burn", at,
                        burn_rate(win, c.spec));
      }
    }
  }

  if (opt.forensics != nullptr && !opt.forensics->empty()) {
    // One step track per (class, cause): the ms of latency charged to that
    // cause inside each SLO-violating window. Every cause is stepped at
    // every violating window (including zeros) so the hold-until-next-sample
    // rendering never carries a stale value into a later window.
    for (const auto& c : opt.forensics->classes) {
      for (const ForensicsWindow& win : c.windows) {
        const sim::Time at = win.index * opt.forensics->window;
        for (int i = 0; i < kNumCauses; ++i) {
          counter_event_f(
              w, "why:" + c.name + ":" + cause_name(static_cast<Cause>(i)),
              at, sim::to_ms(win.causes[i]));
        }
      }
    }
  }

  w.end_array().end_object();
  return w.str();
}

}  // namespace irs::obs
