#include "src/obs/attribution.h"

#include <algorithm>

namespace irs::obs {

namespace {

struct PendingClass {
  int kind = 0;  // 0 = plain, 1 = LHP, 2 = LWP
  std::string lock;
  std::int32_t task = -1;
};

struct Window {
  sim::Time start = 0;
  int kind = 0;
  std::string lock;
  std::int32_t task = -1;
  std::string vm;
  bool from_wake = false;
};

}  // namespace

AttributionResult attribute(const std::vector<sim::TraceRecord>& records,
                            const TraceMeta& meta) {
  AttributionResult res;
  if (meta.dropped > 0 && !records.empty()) {
    res.head_truncated_at = records.front().when;
  }

  std::map<int, std::string> vcpu_vm;
  for (const auto& v : meta.vcpus) vcpu_vm[v.id] = v.vm;

  std::map<int, std::int32_t> lane;  // global vCPU -> on-CPU task (-1 idle)
  // global vCPU -> task whose guest-side wake last targeted it. Covers wake
  // windows on idle vCPUs: the kGuestWake precedes the kHvWake (same
  // timestamp, earlier seq), but the task only reaches the lane when the
  // vCPU next runs — so the lane alone would leave the wait uncharged.
  std::map<int, std::int32_t> wake_hint;
  std::map<int, PendingClass> pending;
  std::map<int, Window> open;
  // (vm, task) -> charge bucket.
  std::map<std::pair<std::string, std::int32_t>, TaskCharge> buckets;

  auto vm_of = [&](int vcpu) -> std::string {
    auto it = vcpu_vm.find(vcpu);
    return it != vcpu_vm.end() ? it->second : std::string("?");
  };

  auto close_window = [&](int vcpu, Window& w, sim::Time end) {
    const sim::Duration dur = end - w.start;
    if (dur <= 0) return;
    if (w.task < 0 && w.from_wake) {
      // The guest-side wake may land after the hv-side kHvWake (boot-time
      // enqueues share the start timestamp), so re-check the hint on close.
      auto wh = wake_hint.find(vcpu);
      if (wh != wake_hint.end()) w.task = wh->second;
    }
    res.total_steal += dur;
    if (w.task < 0) {
      res.uncharged += dur;
      return;
    }
    res.charged += dur;
    TaskCharge& b = buckets[{w.vm, w.task}];
    b.vm = w.vm;
    b.task = w.task;
    b.total += dur;
    ++b.windows;
    if (w.kind == 1) b.lhp += dur;
    if (w.kind == 2) b.lwp += dur;
    if (w.kind != 0 && !w.lock.empty()) b.by_lock[w.lock] += dur;
    (void)vcpu;
  };

  auto open_window = [&](int vcpu, sim::Time when, const PendingClass& pc,
                         bool from_wake = false) {
    if (open.count(vcpu) != 0) return;  // keep the earlier opening
    Window w;
    w.start = when;
    w.kind = pc.kind;
    w.lock = pc.lock;
    auto it = lane.find(vcpu);
    w.task = pc.task >= 0 ? pc.task : (it != lane.end() ? it->second : -1);
    w.vm = vm_of(vcpu);
    w.from_wake = from_wake;
    open.emplace(vcpu, std::move(w));
  };

  for (const auto& r : records) {
    switch (r.kind) {
      case sim::TraceKind::kGuestSwitch:
        lane[r.a] = r.b;
        break;
      case sim::TraceKind::kGuestWake:
        wake_hint[r.b] = r.a;  // a = task, b = target global vCPU
        break;
      case sim::TraceKind::kLhp:
        pending[r.a] = PendingClass{1, r.note.c_str(), r.c};
        break;
      case sim::TraceKind::kLwp:
        pending[r.a] = PendingClass{2, r.note.c_str(), r.c};
        break;
      case sim::TraceKind::kHvPreempt: {
        // The classifying kLhp/kLwp (if any) was recorded just before this,
        // at the same timestamp with an earlier seq.
        PendingClass pc;
        auto it = pending.find(r.a);
        if (it != pending.end()) {
          pc = it->second;
          pending.erase(it);
        }
        open_window(r.a, r.when, pc);
        break;
      }
      case sim::TraceKind::kHvWake: {
        // Runnable-wait half of steal time: the vCPU woke but has no pCPU
        // until the next kHvSchedule. Often zero-length (idle pCPU). When
        // the lane is idle, charge the task whose wake caused this.
        PendingClass pc;
        auto lt = lane.find(r.a);
        if (lt == lane.end() || lt->second < 0) {
          auto wh = wake_hint.find(r.a);
          if (wh != wake_hint.end()) pc.task = wh->second;
        }
        open_window(r.a, r.when, pc, /*from_wake=*/true);
        break;
      }
      case sim::TraceKind::kHvSchedule: {
        auto it = open.find(r.a);
        if (it != open.end()) {
          close_window(r.a, it->second, r.when);
          open.erase(it);
        }
        pending.erase(r.a);
        break;
      }
      case sim::TraceKind::kHvBlock: {
        // A blocked vCPU stopped competing: whatever window was open is not
        // steal (the guest went idle before getting a pCPU back).
        open.erase(r.a);
        pending.erase(r.a);
        break;
      }
      default:
        break;
    }
  }

  // Windows still open when the trace ends count up to meta.end.
  for (auto& [vcpu, w] : open) close_window(vcpu, w, meta.end);

  // Labels: "vm/taskname" when meta.tasks knows the task, else "vm/task<id>".
  for (auto& [key, b] : buckets) {
    std::string name;
    for (const auto& t : meta.tasks) {
      if (t.vm == b.vm && t.id == b.task) {
        name = t.name;
        break;
      }
    }
    if (name.empty()) name = "task" + std::to_string(b.task);
    b.label = b.vm + "/" + name;
    res.tasks.push_back(b);
  }
  std::sort(res.tasks.begin(), res.tasks.end(),
            [](const TaskCharge& x, const TaskCharge& y) {
              if (x.total != y.total) return x.total > y.total;
              if (x.vm != y.vm) return x.vm < y.vm;
              return x.task < y.task;
            });
  return res;
}

}  // namespace irs::obs
