// Chrome trace_event / Perfetto JSON exporter.
//
// Renders a run's trace as a timeline loadable in chrome://tracing or
// ui.perfetto.dev:
//   - one "pCPUs" process with a lane per pCPU, showing which vCPU is
//     on-CPU as complete ("X") spans, opened at kHvSchedule and closed at
//     the matching kHvPreempt/kHvBlock (or the trace end);
//   - one "vCPUs" process mirroring the same spans per vCPU lane, where SA
//     send→ack pairs render as flow ("s"/"f") arrows and LHP/LWP events as
//     instants ("i");
//   - a truncation metadata instant when the ring wrapped and dropped
//     records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/trace.h"

namespace irs::obs {

/// Topology context the exporter needs but the raw records don't carry.
struct VcpuInfo {
  int id = 0;          // global vCPU id (TraceRecord::a in hv records)
  std::string vm;      // owning VM name
  int idx = 0;         // index within the VM
};

struct TraceMeta {
  std::string title = "irs run";
  int n_pcpus = 0;
  std::vector<VcpuInfo> vcpus;
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint64_t dropped = 0;         // Trace::dropped()
  std::uint64_t total_recorded = 0;  // Trace::total_recorded()
};

/// Records must be in snapshot order (sorted by (when, seq)).
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta);

}  // namespace irs::obs
