// Chrome trace_event / Perfetto JSON exporter.
//
// Renders a run's trace as a timeline loadable in chrome://tracing or
// ui.perfetto.dev:
//   - one "pCPUs" process with a lane per pCPU, showing which vCPU is
//     on-CPU as complete ("X") spans, opened at kHvSchedule and closed at
//     the matching kHvPreempt/kHvBlock (or the trace end);
//   - one "vCPUs" process mirroring the same spans per vCPU lane, where SA
//     send→ack pairs render as flow ("s"/"f") arrows and LHP/LWP events as
//     instants ("i");
//   - optionally (ChromeTraceOptions::guest_lanes) a "guest tasks" process
//     with a lane per vCPU showing which guest task is on-vCPU, folded from
//     kGuestSwitch records, plus migration flow arrows from kMigrate;
//   - optionally (ChromeTraceOptions::counters) Perfetto "C" counter tracks
//     rendered from sampler series;
//   - a truncation metadata instant when the ring wrapped and dropped
//     records, placed at the first *retained* timestamp so the gap is
//     visible where it actually is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sampler.h"
#include "src/obs/slo.h"
#include "src/sim/trace.h"

namespace irs::obs {

/// Topology context the exporter needs but the raw records don't carry.
struct VcpuInfo {
  int id = 0;          // global vCPU id (TraceRecord::a in hv records)
  std::string vm;      // owning VM name
  int idx = 0;         // index within the VM
};

/// Guest task names, for labelling guest-lane spans and attribution rows.
/// Task ids are VM-local, so the pair (vm, id) identifies a task.
struct TaskInfo {
  int id = 0;
  std::string vm;
  std::string name;
};

struct TraceMeta {
  std::string title = "irs run";
  int n_pcpus = 0;
  std::vector<VcpuInfo> vcpus;
  std::vector<TaskInfo> tasks;
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint64_t dropped = 0;         // Trace::dropped()
  std::uint64_t total_recorded = 0;  // Trace::total_recorded()
};

struct ChromeTraceOptions {
  bool guest_lanes = false;
  /// When set, each series renders as a Perfetto "C" counter track.
  const std::vector<SeriesData>* counters = nullptr;
  /// When set, each SLO class renders per-window counter tracks
  /// ("slo:<class>:p50/p99/p999" in ms and "slo:<class>:burn", the
  /// error-budget burn rate), stepped at window starts.
  const SloResult* slo = nullptr;
  /// Render a "requests" process with one lane per serving task, each
  /// kReqBegin/kReqEnd pair a complete span (folded by request id).
  bool request_lanes = false;
  /// When set, each violating window renders per-cause counter tracks
  /// ("why:<class>:<cause>" in ms of latency charged), stepped at window
  /// starts — the "why did p999 move" overlay for the SLO tracks above.
  const struct ForensicsResult* forensics = nullptr;
};

/// Records must be in snapshot order (sorted by (when, seq)).
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta);
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const TraceMeta& meta,
                              const ChromeTraceOptions& opt);

}  // namespace irs::obs
