// Counter time-series sampler: periodic engine-driven snapshots of
// obs::Counters (and arbitrary gauges) into fixed-capacity ring-buffered
// series, exported as Perfetto "C" counter tracks.
//
// The sampler lives entirely off the hot path: producers keep incrementing
// their sharded counters exactly as before, and the sampler reads the
// registry on a simulated-time cadence from an ordinary engine event. The
// tick is read-only — it mutates nothing any model object observes — so a
// run with sampling enabled is bit-identical to the same run without it
// (the engine's stable FIFO tie-break means extra same-time events never
// reorder existing ones). Because sampling rides simulated time, the series
// are also bit-identical across sweep thread counts; digest() condenses
// that invariant into one comparable word.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/counters.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace irs::obs {

struct Sample {
  sim::Time when = 0;
  std::int64_t value = 0;
};

/// One named time-series: a fixed-capacity ring of samples. Overflow drops
/// the oldest samples and is counted, mirroring sim::Trace.
class Series {
 public:
  Series() = default;
  Series(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity > 0 ? capacity : 1) {}
  // The ring grows geometrically up to `capacity` instead of reserving it
  // upfront: a default-capacity sampler would otherwise allocate (and
  // page-fault) 128 KiB per series per run, which dwarfs the sampling
  // itself on short sweeps.

  void push(sim::Time when, std::int64_t value) {
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(Sample{when, value});
      return;
    }
    ring_[head_] = Sample{when, value};
    ++head_;
    if (head_ == capacity_) head_ = 0;
    ++dropped_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Visit samples oldest-first without copying (digest hot path).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }
  /// Samples oldest-first.
  [[nodiscard]] std::vector<Sample> samples() const {
    std::vector<Sample> out;
    out.reserve(ring_.size());
    for_each([&out](const Sample& s) { out.push_back(s); });
    return out;
  }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::string name_;
  std::size_t capacity_ = 1;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  std::vector<Sample> ring_;
};

/// A series detached from its sampler — what run captures and exporters
/// consume.
struct SeriesData {
  std::string name;
  std::vector<Sample> samples;
  std::uint64_t dropped = 0;
};

class Sampler {
 public:
  /// Default cadence: the hypervisor's credit accounting period (30 ms,
  /// hv::SchedParams). One sample per accounting window makes the counter
  /// deltas the natural rate unit for scheduler-level phenomena
  /// (preemptions / steal / SA traffic per slice), gives 30-300 points per
  /// simulated-seconds-long run — plenty for a Perfetto counter plot — and
  /// keeps sampling inside the bench's 6% traced-sweep overhead gate even
  /// on the sparsest sweeps. Denser series are an explicit opt-in via
  /// `sample_period` (tests use 100 us - 1 ms).
  static constexpr sim::Duration kDefaultPeriod = sim::milliseconds(30);
  static constexpr std::size_t kDefaultCapacity = 8192;

  Sampler(sim::Engine& eng, sim::Duration period = kDefaultPeriod,
          std::size_t capacity = kDefaultCapacity);

  // --- channel registration (before start()) ---
  // Series are sparse: ticks where nothing changed push no sample. For
  // delta channels an absent sample *is* a zero delta; for gauges a
  // counter track carries its last value forward, so only level changes
  // (and the first observation) need a point. This keeps idle channels
  // free — most channels are idle most ticks.
  /// Each tick reads Counters::at(shard, c) (shard < 0: fold across all
  /// shards) and pushes the nonzero deltas — events-per-period "rate"
  /// view of a monotone counter.
  void add_counter(std::string name, const Counters* src, Cnt c,
                   int shard = -1);
  /// Each tick reads fn() and pushes it when it changed (instantaneous
  /// level, e.g. runnable vCPUs).
  void add_gauge(std::string name, std::function<std::int64_t()> fn);
  /// Each tick reads fn() and pushes the nonzero deltas (monotone sources
  /// that are not Counters, e.g. cumulative steal nanoseconds).
  void add_rate(std::string name, std::function<std::int64_t()> fn);

  /// Arm the periodic tick. Channels registered later join mid-run.
  void start();
  void stop();

  /// Take one sample of every channel at engine.now() (also what the
  /// periodic tick does).
  void sample_now();

  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] std::size_t n_series() const { return descs_.size(); }
  [[nodiscard]] const Series& series(std::size_t i) const {
    return series_.at(i);
  }

  /// Detach every series for export.
  [[nodiscard]] std::vector<SeriesData> dump() const;

  /// Hash over every series' name, samples, and drop counters. Two runs
  /// produced identical series iff their digests match — the cheap form of
  /// the "bit-identical across sweep thread counts" invariant.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  enum class ChannelKind : std::uint8_t { kCounter, kGauge, kRate };
  /// Read descriptor — everything a tick needs to pull one value. Channel
  /// state lives in parallel arrays (descs_/prev_/primed_/fns_/series_)
  /// rather than one fat struct: a tick strides a few contiguous cache
  /// lines, and the rings are only touched on the (sparse) pushes.
  struct Desc {
    ChannelKind kind = ChannelKind::kGauge;
    Cnt cnt = Cnt::kCount;
    int shard = -1;
    const Counters* src = nullptr;
  };

  std::size_t add_channel(std::string name, Desc d,
                          std::function<std::int64_t()> fn);
  [[nodiscard]] std::int64_t read_channel(std::size_t i) const;
  void tick();

  sim::Engine& eng_;
  sim::Duration period_;
  std::size_t capacity_;
  std::vector<Desc> descs_;
  std::vector<std::int64_t> prev_;
  std::vector<std::uint8_t> primed_;  // gauge: first observation pushes
  std::vector<std::function<std::int64_t()>> fns_;
  std::vector<Series> series_;
  sim::EventHandle tick_evt_;
  bool started_ = false;
};

}  // namespace irs::obs
