#include "src/obs/frontend_stats.h"

#include <algorithm>

namespace irs::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t FrontendResult::digest() const {
  if (empty()) return 0;
  std::uint64_t h = kFnvOffset;
  fnv(h, arrivals);
  fnv(h, accepted);
  fnv(h, completed);
  fnv(h, tail_dropped);
  fnv(h, admit_rejected);
  fnv(h, shed);
  fnv(h, in_flight);
  fnv(h, conn_setups);
  fnv(h, keepalive_reuses);
  fnv(h, max_queue_depth);
  fnv(h, static_cast<std::uint64_t>(queue_wait_total));
  fnv(h, static_cast<std::uint64_t>(queue_wait_max));
  return h;
}

void fold_frontend(FrontendResult& acc, const FrontendResult& r) {
  if (r.empty()) return;
  acc.arrivals += r.arrivals;
  acc.accepted += r.accepted;
  acc.completed += r.completed;
  acc.tail_dropped += r.tail_dropped;
  acc.admit_rejected += r.admit_rejected;
  acc.shed += r.shed;
  acc.in_flight += r.in_flight;
  acc.conn_setups += r.conn_setups;
  acc.keepalive_reuses += r.keepalive_reuses;
  acc.max_queue_depth = std::max(acc.max_queue_depth, r.max_queue_depth);
  acc.queue_wait_total += r.queue_wait_total;
  acc.queue_wait_max = std::max(acc.queue_wait_max, r.queue_wait_max);
}

void frontend_json(JsonWriter& w, const FrontendResult& f) {
  w.begin_object();
  w.field("arrivals", f.arrivals);
  w.field("accepted", f.accepted);
  w.field("completed", f.completed);
  w.field("tail_dropped", f.tail_dropped);
  w.field("admit_rejected", f.admit_rejected);
  w.field("shed", f.shed);
  w.field("in_flight", f.in_flight);
  w.field("conn_setups", f.conn_setups);
  w.field("keepalive_reuses", f.keepalive_reuses);
  w.field("max_queue_depth", f.max_queue_depth);
  w.field("queue_wait_total_ns",
          static_cast<std::int64_t>(f.queue_wait_total));
  w.field("queue_wait_max_ns", static_cast<std::int64_t>(f.queue_wait_max));
  w.end_object();
}

namespace {

bool fe_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool read_u64(const JsonValue& v, const char* key, std::uint64_t* out,
              std::string* err) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->get(out)) {
    return fe_err(err, std::string("frontend: missing or bad '") + key + "'");
  }
  return true;
}

bool read_dur(const JsonValue& v, const char* key, sim::Duration* out,
              std::string* err) {
  std::int64_t ns = 0;
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->get(&ns)) {
    return fe_err(err, std::string("frontend: missing or bad '") + key + "'");
  }
  *out = ns;
  return true;
}

}  // namespace

bool frontend_from_value(const JsonValue& v, FrontendResult* out,
                         std::string* err) {
  if (!v.is_object()) return fe_err(err, "frontend is not a JSON object");
  FrontendResult f;
  if (!read_u64(v, "arrivals", &f.arrivals, err)) return false;
  if (!read_u64(v, "accepted", &f.accepted, err)) return false;
  if (!read_u64(v, "completed", &f.completed, err)) return false;
  if (!read_u64(v, "tail_dropped", &f.tail_dropped, err)) return false;
  if (!read_u64(v, "admit_rejected", &f.admit_rejected, err)) return false;
  if (!read_u64(v, "shed", &f.shed, err)) return false;
  if (!read_u64(v, "in_flight", &f.in_flight, err)) return false;
  if (!read_u64(v, "conn_setups", &f.conn_setups, err)) return false;
  if (!read_u64(v, "keepalive_reuses", &f.keepalive_reuses, err)) {
    return false;
  }
  if (!read_u64(v, "max_queue_depth", &f.max_queue_depth, err)) return false;
  if (!read_dur(v, "queue_wait_total_ns", &f.queue_wait_total, err)) {
    return false;
  }
  if (!read_dur(v, "queue_wait_max_ns", &f.queue_wait_max, err)) return false;
  *out = f;
  return true;
}

}  // namespace irs::obs
