#include "src/cluster/cluster.h"

#include <cassert>
#include <stdexcept>

namespace irs::cluster {

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg), eng_(cfg.queue) {
  if (cfg_.n_hosts < 1) {
    throw std::invalid_argument("ClusterConfig.n_hosts must be >= 1");
  }
  ledger_.n_hosts = static_cast<std::uint32_t>(cfg_.n_hosts);
  ledger_.policy = static_cast<std::uint32_t>(cfg_.policy);
  ledger_.hosts.resize(static_cast<std::size_t>(cfg_.n_hosts));
  fixed_per_host_.assign(static_cast<std::size_t>(cfg_.n_hosts), 0);
  for (int h = 0; h < cfg_.n_hosts; ++h) {
    core::HostNodeConfig nc;
    nc.name = "host" + std::to_string(h);
    nc.n_pcpus = cfg_.n_pcpus;
    nc.hv = cfg_.hv;
    nc.strategy = cfg_.strategy;
    nc.seed = cfg_.seed + static_cast<std::uint64_t>(h);
    nc.telemetry = cfg_.telemetry;
    // N hosts share one engine and one sampler namespace: prefix series
    // with the host name so "hv/steal_ns" stays unambiguous.
    nc.prefix_series = true;
    nodes_.push_back(std::make_unique<core::HostNode>(eng_, std::move(nc)));
    collectors_.push_back(std::make_unique<Collector>(
        eng_, *nodes_.back(), cfg_.collect_period,
        &ledger_.hosts[static_cast<std::size_t>(h)]));
  }
  // Engine-level trace diagnostics go to host 0's ring (one ring per
  // engine; per-host rings still capture their own host's records).
  if (cfg_.telemetry.trace_capacity > 0) {
    eng_.set_trace(&nodes_.front()->host().trace());
  }
  sched_ = std::make_unique<Scheduler>(*this, cfg_.policy, cfg_.seed,
                                       cfg_.decide_period, cfg_.migration,
                                       cfg_.burn_frac, cfg_.cooldown);
}

Cluster::~Cluster() = default;

core::HostNode& Cluster::node(int host) {
  if (host < 0 || host >= n_hosts()) {
    throw std::out_of_range("cluster: host " + std::to_string(host) +
                            " out of range (cluster has " +
                            std::to_string(n_hosts()) + " hosts)");
  }
  return *nodes_[static_cast<std::size_t>(host)];
}

Collector& Cluster::collector(int host) {
  static_cast<void>(node(host));  // range check
  return *collectors_[static_cast<std::size_t>(host)];
}

CvmId Cluster::add_vm(int host, const hv::VmConfig& vm_cfg, bool irs_capable,
                      guest::GuestConfig guest_cfg) {
  assert(!started_);
  core::HostNode& n = node(host);
  const hv::VmId id = n.add_vm(vm_cfg, irs_capable, std::move(guest_cfg));
  sched_->note_fixed(host, vm_cfg.n_vcpus);
  fixed_per_host_[static_cast<std::size_t>(host)] += 1;
  ledger_.vms += 1;
  ledger_.hosts[static_cast<std::size_t>(host)].placed += 1;
  return CvmId{host, id};
}

wl::Workload& Cluster::attach(CvmId vm, std::unique_ptr<wl::Workload> w) {
  return node(vm.host).attach(vm.vm, std::move(w));
}

void Cluster::set_protected(CvmId vm) {
  static_cast<void>(node(vm.host));  // range check
  protected_ = vm;
}

int Cluster::add_migratable_hog(const std::string& name, int n_vcpus,
                                int n_hogs, sim::Duration burst) {
  assert(!started_);
  const int home = sched_->place(n_vcpus);
  MigVm mv;
  mv.name = name;
  mv.assigned = home;
  for (int h = 0; h < n_hosts(); ++h) {
    mv.gate.push_back(std::make_unique<bool>(h == home));
    hv::VmConfig vc;
    vc.name = name;
    vc.n_vcpus = n_vcpus;
    const hv::VmId id = node(h).add_vm(vc, /*irs_capable=*/false);
    node(h).attach(CvmId{h, id}.vm,
                   std::make_unique<wl::GatedHogWorkload>(
                       n_hogs, mv.gate.back().get(), burst));
    mv.replica.push_back(id);
  }
  ledger_.vms += 1;
  ledger_.migratable += 1;
  ledger_.hosts[static_cast<std::size_t>(home)].placed += 1;
  migs_.push_back(std::move(mv));
  return static_cast<int>(migs_.size()) - 1;
}

void Cluster::start() {
  assert(!started_);
  started_ = true;
  for (auto& n : nodes_) n->start();
  for (auto& c : collectors_) c->start();
  sched_->start();
}

void Cluster::run_for(sim::Duration d) {
  assert(started_);
  eng_.run_until(eng_.now() + d);
}

bool Cluster::run_until_finished(CvmId vm, sim::Duration timeout) {
  assert(started_);
  core::HostNode& n = node(vm.host);
  const sim::Time deadline = eng_.now() + timeout;
  eng_.run_while([&]() {
    return !n.workloads_finished(vm.vm) && eng_.now() < deadline;
  });
  return n.workloads_finished(vm.vm);
}

core::VmMetrics Cluster::vm_metrics(CvmId vm) const {
  return nodes_.at(static_cast<std::size_t>(vm.host))->vm_metrics(vm.vm);
}

int Cluster::assigned_host(int mig) const {
  return migs_.at(static_cast<std::size_t>(mig)).assigned;
}

void Cluster::migrate(int mig, int dst_host) {
  MigVm& mv = migs_[static_cast<std::size_t>(mig)];
  const int src = mv.assigned;
  if (src == dst_host || mv.in_transit) return;

  // Brownout starts now: the source replica's tasks park at their next
  // burst boundary.
  *mv.gate[static_cast<std::size_t>(src)] = false;
  mv.assigned = dst_host;
  mv.in_transit = true;
  mv.last_moved = eng_.now();

  ledger_.migrations += 1;
  ledger_.downtime_total += cfg_.migration.downtime;
  ledger_.hosts[static_cast<std::size_t>(src)].migr_out += 1;
  ledger_.hosts[static_cast<std::size_t>(dst_host)].migr_in += 1;

  const int dst = dst_host;
  eng_.schedule(
      cfg_.migration.downtime,
      [this, mig, dst]() {
        MigVm& m = migs_[static_cast<std::size_t>(mig)];
        m.in_transit = false;
        *m.gate[static_cast<std::size_t>(dst)] = true;
        core::HostNode& n = *nodes_[static_cast<std::size_t>(dst)];
        const hv::VmId id = m.replica[static_cast<std::size_t>(dst)];
        wl::Workload& w = n.workload(id);
        guest::GuestKernel& k = n.kernel(id);
        for (guest::Task* t : w.tasks()) {
          // Transient warmup: the first burst on the destination stretches
          // by the cache/working-set refill cost.
          t->cache_debt += cfg_.migration.warmup_debt;
          k.wake_task(*t);
        }
      },
      "cluster.migrate.arrive");
}

obs::ClusterResult Cluster::result() const {
  obs::ClusterResult r = ledger_;
  for (int h = 0; h < n_hosts(); ++h) {
    r.hosts[static_cast<std::size_t>(h)].active_end =
        static_cast<std::uint64_t>(fixed_per_host_[static_cast<std::size_t>(h)]);
  }
  for (const MigVm& mv : migs_) {
    r.hosts[static_cast<std::size_t>(mv.assigned)].active_end += 1;
    if (mv.in_transit) r.in_transit_end += 1;
  }
  return r;
}

}  // namespace irs::cluster
