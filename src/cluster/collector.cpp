#include "src/cluster/collector.h"

namespace irs::cluster {

Collector::Collector(sim::Engine& eng, core::HostNode& node,
                     sim::Duration period, obs::ClusterHostLedger* ledger)
    : eng_(eng), node_(node), period_(period), ledger_(ledger) {}

void Collector::start() {
  const auto n = static_cast<std::size_t>(node_.host().n_vms());
  prev_.assign(n, Totals{});
  latest_.assign(n, VmSample{});
  // Baseline snapshot so the first window measures [t0, t0+period), not
  // [time origin, t0+period).
  for (std::size_t i = 0; i < n; ++i) prev_[i] = totals(static_cast<int>(i));
  eng_.schedule(period_, [this]() { collect(); }, "cluster.collect");
}

Collector::Totals Collector::totals(int vm_i) const {
  Totals t;
  hv::Host& host = node_.host();
  const sim::Time now = eng_.now();
  for (const hv::Vcpu* v : host.vm(vm_i).vcpus()) {
    t.run += v->time_running(now);
    t.steal += v->time_runnable(now);
    // LHP/LWP live on the vCPU's counter shard (shard vcpu_id + 1; shard 0
    // is the host-global lane), which is what makes per-VM charge-back a
    // plain sum over the VM's vCPUs.
    t.lhp += host.counters().at(static_cast<std::size_t>(v->id()) + 1,
                                obs::Cnt::kHvLhp);
    t.lwp += host.counters().at(static_cast<std::size_t>(v->id()) + 1,
                                obs::Cnt::kHvLwp);
  }
  return t;
}

void Collector::collect() {
  const auto n = static_cast<std::size_t>(node_.host().n_vms());
  sim::Duration host_steal = 0;
  std::int64_t host_lhp = 0;
  std::int64_t host_lwp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Totals t = totals(static_cast<int>(i));
    const Totals& p = prev_[i];
    VmSample& s = latest_[i];
    s.run_delta = t.run - p.run;
    s.steal_delta = t.steal - p.steal;
    s.lhp_delta = t.lhp - p.lhp;
    s.lwp_delta = t.lwp - p.lwp;
    host_steal += s.steal_delta;
    host_lhp += s.lhp_delta;
    host_lwp += s.lwp_delta;
    prev_[i] = t;
  }
  if (ledger_ != nullptr) {
    ledger_->samples += 1;
    ledger_->steal += host_steal;
    ledger_->lhp += static_cast<std::uint64_t>(host_lhp);
    ledger_->lwp += static_cast<std::uint64_t>(host_lwp);
  }
  eng_.schedule(period_, [this]() { collect(); }, "cluster.collect");
}

const Collector::VmSample& Collector::sample(hv::VmId vm) const {
  const auto i = static_cast<std::size_t>(vm);
  if (vm < 0 || i >= latest_.size()) return zero_;
  return latest_[i];
}

sim::Duration Collector::host_run_delta() const {
  sim::Duration total = 0;
  for (const VmSample& s : latest_) total += s.run_delta;
  return total;
}

}  // namespace irs::cluster
