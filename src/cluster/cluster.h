// Cluster: N simulated hosts — one virtual datacenter — inside one
// sim::Engine. Each host is a full core::HostNode (hv::Host + guests +
// workloads) and the layer adds the two cluster components the related
// dynamic-VM-scheduler repo splits the problem into: a per-host
// cluster::Collector sampling LHP/LWP charge-back and steal on a cadence,
// and a central cluster::Scheduler that places VMs at admission and
// live-migrates them between hosts under a pluggable Policy.
//
// Live migration model. An hv::Vm cannot change hosts (its vCPUs belong to
// one credit scheduler), so a *migratable* logical VM is realised as one
// replica VM on every host, all sharing per-replica boolean gates: the
// gated hog tasks (wl::GatedHogWorkload) burn CPU while their gate is open
// and park off-CPU otherwise. Exactly one gate per logical VM is open at
// any time. A migration at decision time t closes the source gate (tasks
// park at the next burst boundary — the pre-copy brownout), flips the
// assignment, and schedules the arrival at t + downtime: the destination
// gate opens, every destination task is woken and charged `warmup_debt` of
// cache_debt (stretching its first burst — the transient warmup penalty).
// The ledger (obs::ClusterResult) counts placements, migrations per host,
// downtime, and the collectors' observations; its conservation identities
// are listed in src/obs/cluster_stats.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/collector.h"
#include "src/cluster/scheduler.h"
#include "src/core/host_node.h"
#include "src/obs/cluster_stats.h"
#include "src/obs/telemetry.h"
#include "src/sim/engine.h"
#include "src/wl/hog.h"

namespace irs::cluster {

/// Cluster-scoped VM identity: host-local VmIds repeat across hosts, so
/// every cross-host API takes the pair.
struct CvmId {
  int host = -1;
  hv::VmId vm = -1;
  bool operator==(const CvmId&) const = default;
};

struct ClusterConfig {
  int n_hosts = 2;
  /// Per-host shape (every host identical — the homogeneous-rack case).
  int n_pcpus = 4;
  hv::HvConfig hv;
  core::Strategy strategy = core::Strategy::kBaseline;
  /// Base seed; host h derives seed + h so replicas on different hosts
  /// draw independent streams.
  std::uint64_t seed = 1;
  obs::TelemetryConfig telemetry;
  sim::QueueKind queue = sim::default_queue_kind();

  Policy policy = Policy::kIrs;
  /// Collector sampling cadence (per host).
  sim::Duration collect_period = sim::milliseconds(10);
  /// Scheduler decision cadence (kIrs only).
  sim::Duration decide_period = sim::milliseconds(30);
  MigrationCost migration;
  /// Fraction of a collector window the protected VM must spend stolen
  /// before the kIrs loop evicts a co-tenant.
  double burn_frac = 0.1;
  /// Minimum spacing between migrations of one VM.
  sim::Duration cooldown = sim::milliseconds(90);
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Add a fixed (non-migratable) VM on an explicit host — the foreground
  /// VM in fig_cluster. Same contract as World::add_vm.
  CvmId add_vm(int host, const hv::VmConfig& vm_cfg, bool irs_capable,
               guest::GuestConfig guest_cfg = {});

  /// Attach a workload to a fixed VM.
  wl::Workload& attach(CvmId vm, std::unique_ptr<wl::Workload> w);

  /// Mark the VM whose SLO budget the kIrs policy defends (its host's
  /// collector window drives eviction decisions).
  void set_protected(CvmId vm);

  /// Add a migratable hog VM: the scheduler's admission policy picks the
  /// initial host; replicas are created on every host. Returns the
  /// logical-VM index (the id space of assigned_host()).
  int add_migratable_hog(const std::string& name, int n_vcpus, int n_hogs,
                         sim::Duration burst = sim::milliseconds(1));

  /// Start every host, collector, and the scheduler. Call once.
  void start();

  /// Advance simulated time by `d`.
  void run_for(sim::Duration d);

  /// Run until every bounded workload on `vm` finishes or `timeout`
  /// elapses; true when finished.
  bool run_until_finished(CvmId vm, sim::Duration timeout);

  /// Snapshot the ledger (placements, migrations, downtime, collector
  /// observations, end-of-run assignment).
  [[nodiscard]] obs::ClusterResult result() const;

  // --- accessors ---
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] int n_hosts() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] core::HostNode& node(int host);
  [[nodiscard]] Collector& collector(int host);
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] guest::GuestKernel& kernel(CvmId vm) {
    return node(vm.host).kernel(vm.vm);
  }
  [[nodiscard]] wl::Workload& workload(CvmId vm, std::size_t i = 0) {
    return node(vm.host).workload(vm.vm, i);
  }
  [[nodiscard]] core::VmMetrics vm_metrics(CvmId vm) const;
  [[nodiscard]] int n_migratable() const {
    return static_cast<int>(migs_.size());
  }
  /// Current host assignment of a migratable VM (flips at the decision,
  /// before the downtime elapses).
  [[nodiscard]] int assigned_host(int mig) const;
  [[nodiscard]] CvmId protected_vm() const { return protected_; }

 private:
  friend class Scheduler;

  /// One migratable logical VM and its per-host replicas.
  struct MigVm {
    std::string name;
    int assigned = 0;
    bool in_transit = false;       // arrival event still pending
    sim::Time last_moved = -1;     // cooldown anchor (-1: never)
    std::vector<hv::VmId> replica;            // per host, host-local id
    std::vector<std::unique_ptr<bool>> gate;  // per host (stable address)
  };

  /// Execute one live migration (called by the Scheduler's decision loop).
  void migrate(int mig, int dst_host);

  ClusterConfig cfg_;
  sim::Engine eng_;
  std::vector<std::unique_ptr<core::HostNode>> nodes_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<MigVm> migs_;
  std::vector<int> fixed_per_host_;  // fixed-VM count per host
  CvmId protected_{};
  obs::ClusterResult ledger_;
  bool started_ = false;
};

}  // namespace irs::cluster
