// The per-host sampling daemon of a cluster::Cluster — the "collector"
// half of the collector→scheduler split. On a fixed cadence it walks the
// host's VMs and snapshots, per VM, the window deltas of: CPU time run,
// steal (runnable-wait) time, and the LHP/LWP charge-back counters the IRS
// machinery already maintains per vCPU shard. The central
// cluster::Scheduler reads the latest window when it decides; the host's
// ClusterHostLedger accumulates the same deltas for the run result.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/host_node.h"
#include "src/obs/cluster_stats.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace irs::cluster {

class Collector {
 public:
  /// One VM's activity inside the latest completed sample window.
  struct VmSample {
    sim::Duration run_delta = 0;    // CPU time executed
    sim::Duration steal_delta = 0;  // runnable-but-not-running time
    std::int64_t lhp_delta = 0;     // lock-holder preemptions charged
    std::int64_t lwp_delta = 0;     // lock-waiter preemptions charged
  };

  /// `ledger` (owned by the cluster's ClusterResult) accumulates window
  /// deltas host-wide; must outlive the collector.
  Collector(sim::Engine& eng, core::HostNode& node, sim::Duration period,
            obs::ClusterHostLedger* ledger);

  /// Arm the periodic sampling event. Call once, after node.start().
  void start();

  /// Latest completed window for a host-local VM (zeroes before the first
  /// window closes or for VMs added after construction).
  [[nodiscard]] const VmSample& sample(hv::VmId vm) const;

  /// Host-wide run delta of the latest window (the scheduler's load signal
  /// for destination choice).
  [[nodiscard]] sim::Duration host_run_delta() const;

  [[nodiscard]] sim::Duration period() const { return period_; }

 private:
  struct Totals {
    sim::Duration run = 0;
    sim::Duration steal = 0;
    std::int64_t lhp = 0;
    std::int64_t lwp = 0;
  };

  void collect();
  [[nodiscard]] Totals totals(int vm_i) const;

  sim::Engine& eng_;
  core::HostNode& node_;
  sim::Duration period_;
  obs::ClusterHostLedger* ledger_;
  std::vector<Totals> prev_;
  std::vector<VmSample> latest_;
  VmSample zero_{};
};

}  // namespace irs::cluster
