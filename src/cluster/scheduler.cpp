#include "src/cluster/scheduler.h"

#include <cstring>

#include "src/cluster/cluster.h"

namespace irs::cluster {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kRandom:
      return "random";
    case Policy::kFirstFit:
      return "firstfit";
    case Policy::kIrs:
      return "irs";
  }
  return "?";
}

bool policy_from_name(std::string_view name, Policy* out) {
  for (Policy p : {Policy::kRandom, Policy::kFirstFit, Policy::kIrs}) {
    if (name == policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

Scheduler::Scheduler(Cluster& cluster, Policy policy, std::uint64_t seed,
                     sim::Duration decide_period, MigrationCost cost,
                     double burn_frac, sim::Duration cooldown)
    : cluster_(cluster),
      policy_(policy),
      rng_(seed ^ 0xC1057E12ULL),
      decide_period_(decide_period),
      cost_(cost),
      burn_frac_(burn_frac),
      cooldown_(cooldown),
      placed_vcpus_(static_cast<std::size_t>(cluster.n_hosts()), 0) {}

void Scheduler::note_fixed(int host, int n_vcpus) {
  placed_vcpus_[static_cast<std::size_t>(host)] += n_vcpus;
}

int Scheduler::place(int n_vcpus) {
  const int n = static_cast<int>(placed_vcpus_.size());
  int host = 0;
  switch (policy_) {
    case Policy::kRandom:
      host = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(n)));
      break;
    case Policy::kFirstFit: {
      // First host whose pCPUs still fit the VM; overflow to the least
      // loaded when nothing fits (the rack is oversubscribed anyway).
      host = -1;
      for (int h = 0; h < n; ++h) {
        if (placed_vcpus_[static_cast<std::size_t>(h)] + n_vcpus <=
            cluster_.node(h).host().n_pcpus()) {
          host = h;
          break;
        }
      }
      if (host < 0) {
        host = 0;
        for (int h = 1; h < n; ++h) {
          if (placed_vcpus_[static_cast<std::size_t>(h)] <
              placed_vcpus_[static_cast<std::size_t>(host)]) {
            host = h;
          }
        }
      }
      break;
    }
    case Policy::kIrs: {
      // Admission spread: least vCPUs placed, lowest index on ties.
      host = 0;
      for (int h = 1; h < n; ++h) {
        if (placed_vcpus_[static_cast<std::size_t>(h)] <
            placed_vcpus_[static_cast<std::size_t>(host)]) {
          host = h;
        }
      }
      break;
    }
  }
  placed_vcpus_[static_cast<std::size_t>(host)] += n_vcpus;
  return host;
}

void Scheduler::start() {
  // The baselines are placement-only: no decision loop, no migrations.
  if (policy_ != Policy::kIrs) return;
  cluster_.engine().schedule(decide_period_, [this]() { decide(); },
                             "cluster.decide");
}

void Scheduler::decide() {
  Cluster& c = cluster_;
  c.ledger_.decisions += 1;
  c.engine().schedule(decide_period_, [this]() { decide(); },
                      "cluster.decide");
  const CvmId prot = c.protected_vm();
  if (prot.host < 0 || c.n_hosts() < 2) return;

  // Is the protected VM burning budget? Its steal inside the latest
  // collector window over the burn threshold says yes.
  const Collector& pc = c.collector(prot.host);
  const Collector::VmSample& ps = pc.sample(prot.vm);
  const auto threshold =
      static_cast<sim::Duration>(static_cast<double>(pc.period()) *
                                 burn_frac_);
  if (ps.steal_delta <= threshold) return;

  // Victim: the noisiest migratable co-tenant on the protected host —
  // most CPU run in the window, LHP/LWP charge-back breaking ties
  // (deterministic: strict improvement, lowest index wins ties).
  const sim::Time now = c.engine().now();
  int victim = -1;
  sim::Duration victim_run = -1;
  std::int64_t victim_chatter = -1;
  for (int m = 0; m < c.n_migratable(); ++m) {
    const Cluster::MigVm& mv = c.migs_[static_cast<std::size_t>(m)];
    if (mv.assigned != prot.host || mv.in_transit) continue;
    if (mv.last_moved >= 0 && now - mv.last_moved < cooldown_) continue;
    const Collector::VmSample& s =
        pc.sample(mv.replica[static_cast<std::size_t>(prot.host)]);
    const std::int64_t chatter = s.lhp_delta + s.lwp_delta;
    if (s.run_delta > victim_run ||
        (s.run_delta == victim_run && chatter > victim_chatter)) {
      victim = m;
      victim_run = s.run_delta;
      victim_chatter = chatter;
    }
  }
  if (victim < 0 || victim_run <= 0) return;

  // Destination: least CPU run host-wide in the latest window, protected
  // host excluded; lowest index on ties.
  int dst = -1;
  sim::Duration dst_run = 0;
  for (int h = 0; h < c.n_hosts(); ++h) {
    if (h == prot.host) continue;
    const sim::Duration run = c.collector(h).host_run_delta();
    if (dst < 0 || run < dst_run) {
      dst = h;
      dst_run = run;
    }
  }
  if (dst < 0) return;
  c.migrate(victim, dst);
}

}  // namespace irs::cluster
