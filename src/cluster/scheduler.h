// The central placement/migration decision loop of a cluster::Cluster —
// the "scheduler" half of the collector→scheduler split (the per-host
// sampling half is src/cluster/collector.h). Mirrors the dynamic-VM-
// scheduler architecture the ROADMAP names: per-host collector daemons
// feed one decision loop that places VMs at admission and live-migrates
// them while the cluster runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace irs::cluster {

class Cluster;

/// Placement policies under comparison (fig_cluster):
///  - kRandom:   uniform host choice at admission, never migrates — the
///               oblivious baseline.
///  - kFirstFit: first-fit bin-packing on vCPU count at admission, never
///               migrates — the consolidating baseline.
///  - kIrs:      least-loaded spread at admission, plus a live decision
///               loop that reads the collectors' LHP/LWP charge-back and
///               steal deltas and evicts the noisiest migratable
///               co-tenant from the host where the protected (foreground)
///               VM is burning SLO budget.
enum class Policy : std::uint8_t { kRandom = 0, kFirstFit = 1, kIrs = 2 };

[[nodiscard]] const char* policy_name(Policy p);
/// Inverse of policy_name ("random" / "firstfit" / "irs"); false on an
/// unknown name, leaving *out untouched.
bool policy_from_name(std::string_view name, Policy* out);

struct MigrationCost {
  /// Modeled blackout: the migrated VM executes on neither host for this
  /// long (source parks at the decision, destination resumes this much
  /// later).
  sim::Duration downtime = sim::milliseconds(20);
  /// Transient cache/warmup penalty: added to every migrated task's
  /// cache_debt, stretching its first burst on the destination.
  sim::Duration warmup_debt = sim::microseconds(500);
};

class Scheduler {
 public:
  /// `decide_period` arms the kIrs decision loop (ignored by the static
  /// baselines); `burn_frac` is the fraction of a collector window the
  /// protected VM must spend stolen before an eviction triggers;
  /// `cooldown` is the minimum spacing between moves of one VM.
  Scheduler(Cluster& cluster, Policy policy, std::uint64_t seed,
            sim::Duration decide_period, MigrationCost cost,
            double burn_frac, sim::Duration cooldown);

  /// Admission placement for a VM with `n_vcpus` vCPUs; also records the
  /// load for subsequent placements. Called for migratable VMs.
  [[nodiscard]] int place(int n_vcpus);
  /// Record a fixed VM's footprint so bin-packing sees it.
  void note_fixed(int host, int n_vcpus);

  /// Arm the decision loop (kIrs only; the baselines stay static).
  void start();

  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] const MigrationCost& cost() const { return cost_; }

 private:
  void decide();

  Cluster& cluster_;
  Policy policy_;
  sim::Rng rng_;
  sim::Duration decide_period_;
  MigrationCost cost_;
  double burn_frac_;
  sim::Duration cooldown_;
  std::vector<int> placed_vcpus_;  // per host, for bin-packing/spread
};

}  // namespace irs::cluster
