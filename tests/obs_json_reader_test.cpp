// JsonReader unit tests: literal/kind coverage, string unescaping, the
// exact-integer classification the NDJSON merge relies on, nesting limits,
// and deterministic error reporting with byte offsets.
#include "src/obs/json_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace irs::obs {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonReader r;
  JsonValue v;
  EXPECT_TRUE(r.parse(text, &v)) << text << ": " << r.error();
  return v;
}

void expect_fail(const std::string& text, const std::string& msg_part = "") {
  JsonReader r;
  JsonValue v;
  EXPECT_FALSE(r.parse(text, &v)) << text;
  if (!msg_part.empty()) {
    EXPECT_NE(r.error().find(msg_part), std::string::npos)
        << text << " -> " << r.error();
  }
}

TEST(JsonReader, Literals) {
  EXPECT_EQ(parse_ok("null").kind, JsonValue::Kind::kNull);
  bool b = false;
  EXPECT_TRUE(parse_ok("true").get(&b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(parse_ok("false").get(&b));
  EXPECT_FALSE(b);
  EXPECT_EQ(parse_ok("  true  ").kind, JsonValue::Kind::kBool);
}

TEST(JsonReader, IntegerClassificationIsExact) {
  // Unsigned 64-bit counters (sampler digests!) must survive untouched —
  // this value is not representable as a double.
  const JsonValue big = parse_ok("18446744073709551615");
  ASSERT_TRUE(big.is_number());
  EXPECT_TRUE(big.is_integer);
  EXPECT_FALSE(big.is_negative);
  std::uint64_t u = 0;
  ASSERT_TRUE(big.get(&u));
  EXPECT_EQ(u, 18446744073709551615ULL);

  const JsonValue neg = parse_ok("-9223372036854775808");
  EXPECT_TRUE(neg.is_integer);
  EXPECT_TRUE(neg.is_negative);
  std::int64_t i = 0;
  ASSERT_TRUE(neg.get(&i));
  EXPECT_EQ(i, INT64_MIN);

  // A fraction or exponent demotes to double; a uint read must refuse.
  const JsonValue frac = parse_ok("1.5");
  EXPECT_FALSE(frac.is_integer);
  EXPECT_FALSE(frac.get(&u));
  double d = 0;
  ASSERT_TRUE(frac.get(&d));
  EXPECT_EQ(d, 1.5);
  EXPECT_FALSE(parse_ok("1e3").is_integer);

  // Integer overflow past uint64 demotes to double rather than wrapping.
  EXPECT_FALSE(parse_ok("18446744073709551616").is_integer);
}

TEST(JsonReader, SignedReadsOfUnsignedValues) {
  std::int64_t i = 0;
  EXPECT_TRUE(parse_ok("42").get(&i));
  EXPECT_EQ(i, 42);
  // Unsigned too big for int64: the signed read refuses, unsigned works.
  EXPECT_FALSE(parse_ok("9223372036854775808").get(&i));
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_ok("9223372036854775808").get(&u));
  // Negative into unsigned refuses.
  EXPECT_FALSE(parse_ok("-1").get(&u));
}

TEST(JsonReader, DoublesAreCorrectlyRounded) {
  double d = 0;
  ASSERT_TRUE(parse_ok("0.1").get(&d));
  EXPECT_EQ(d, 0.1);
  ASSERT_TRUE(parse_ok("1e+06").get(&d));
  EXPECT_EQ(d, 1e6);
  ASSERT_TRUE(parse_ok("-2.5e-3").get(&d));
  EXPECT_EQ(d, -2.5e-3);
  // Integers satisfy a double read as well.
  ASSERT_TRUE(parse_ok("7").get(&d));
  EXPECT_EQ(d, 7.0);
}

TEST(JsonReader, StringsUnescape) {
  std::string s;
  ASSERT_TRUE(parse_ok(R"("plain")").get(&s));
  EXPECT_EQ(s, "plain");
  ASSERT_TRUE(parse_ok(R"("a\"b\\c\/d\b\f\n\r\t")").get(&s));
  EXPECT_EQ(s, "a\"b\\c/d\b\f\n\r\t");
  ASSERT_TRUE(parse_ok(R"("Aé中")").get(&s));
  EXPECT_EQ(s, "A\xc3\xa9\xe4\xb8\xad");  // A, é, 中 in UTF-8
}

TEST(JsonReader, ArraysAndObjectsKeepOrder) {
  const JsonValue arr = parse_ok("[1, \"two\", [3], {}]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.items.size(), 4u);
  EXPECT_TRUE(arr.items[0].is_number());
  EXPECT_TRUE(arr.items[1].is_string());
  EXPECT_TRUE(arr.items[2].is_array());
  EXPECT_TRUE(arr.items[3].is_object());
  EXPECT_TRUE(parse_ok("[]").items.empty());

  const JsonValue obj = parse_ok(R"({"z":1,"a":2,"z":3})");
  ASSERT_TRUE(obj.is_object());
  ASSERT_EQ(obj.members.size(), 3u);  // duplicates preserved, order kept
  EXPECT_EQ(obj.members[0].first, "z");
  EXPECT_EQ(obj.members[1].first, "a");
  std::uint64_t u = 0;
  ASSERT_NE(obj.find("z"), nullptr);
  ASSERT_TRUE(obj.find("z")->get(&u));
  EXPECT_EQ(u, 1u);  // find returns the first occurrence
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonReader, NestingDepthIsBounded) {
  std::string deep, close;
  for (int i = 0; i < 80; ++i) {
    deep += "[";
    close += "]";
  }
  expect_fail(deep + close, "nesting too deep");
  // 32 levels is fine.
  std::string ok_doc(32, '[');
  ok_doc += std::string(32, ']');
  parse_ok(ok_doc);
}

TEST(JsonReader, ErrorsNameTheProblemAndOffset) {
  {
    JsonReader r;
    JsonValue v;
    ASSERT_FALSE(r.parse("{\"a\":}", &v));
    EXPECT_EQ(r.error_offset(), 5u);
  }
  expect_fail("");
  expect_fail("   ");
  expect_fail("tru");
  expect_fail("[1,]");
  expect_fail("{\"a\":1,}");
  expect_fail("{\"a\" 1}");
  expect_fail("\"unterminated");
  expect_fail(R"("\q")");       // unknown escape
  expect_fail(R"("\ud800")");   // lone surrogate
  expect_fail("+1");
  expect_fail("1e");            // digitless exponent
  expect_fail("nan");
  // Trailing garbage after a complete value is an error, with the offset
  // pointing at the garbage.
  {
    JsonReader r;
    JsonValue v;
    ASSERT_FALSE(r.parse("{} x", &v));
    EXPECT_EQ(r.error_offset(), 3u);
  }
}

TEST(JsonReader, SameInputSameResult) {
  // Determinism touchstone: parse twice, identical trees (spot-checked).
  const std::string doc = R"({"a":[1,2.5,"x"],"b":{"c":true}})";
  const JsonValue v1 = parse_ok(doc);
  const JsonValue v2 = parse_ok(doc);
  ASSERT_EQ(v1.members.size(), v2.members.size());
  EXPECT_EQ(v1.members[0].second.items[1].num_v,
            v2.members[0].second.items[1].num_v);
}

}  // namespace
}  // namespace irs::obs
