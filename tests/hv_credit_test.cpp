// Credit-scheduler behaviour tests, using guest-less VMs driven directly
// through the scheduler API.
#include <gtest/gtest.h>

#include "src/hv/host.h"

namespace irs::hv {
namespace {

class CreditTest : public ::testing::Test {
 protected:
  Host& make_host(int pcpus, HvConfig cfg = {}) {
    host_ = std::make_unique<Host>(eng_, cfg, pcpus);
    return *host_;
  }

  Vm& add_pinned_vm(const std::string& name, std::vector<PcpuId> pins) {
    VmConfig cfg;
    cfg.name = name;
    cfg.n_vcpus = static_cast<int>(pins.size());
    cfg.pin_map = std::move(pins);
    return host_->add_vm(cfg);
  }

  sim::Engine eng_;
  std::unique_ptr<Host> host_;
};

TEST_F(CreditTest, WakeSchedulesOnIdlePcpu) {
  Host& h = make_host(1);
  Vm& vm = add_pinned_vm("a", {0});
  h.start();
  h.sched().wake(vm.vcpu(0));
  eng_.run_until(sim::milliseconds(1));
  EXPECT_EQ(vm.vcpu(0).state(), VcpuState::kRunning);
  EXPECT_EQ(vm.vcpu(0).pcpu(), 0);
  EXPECT_EQ(h.pcpu(0).current(), &vm.vcpu(0));
}

TEST_F(CreditTest, SpuriousWakeIgnored) {
  Host& h = make_host(1);
  Vm& vm = add_pinned_vm("a", {0});
  h.start();
  h.sched().wake(vm.vcpu(0));
  eng_.run_until(sim::milliseconds(1));
  h.sched().wake(vm.vcpu(0));  // already running
  eng_.run_until(sim::milliseconds(2));
  EXPECT_EQ(vm.vcpu(0).state(), VcpuState::kRunning);
}

TEST_F(CreditTest, TwoVcpusOnOnePcpuRoundRobinFairly) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::seconds(3));
  const auto ta = a.vcpu(0).time_running(eng_.now());
  const auto tb = b.vcpu(0).time_running(eng_.now());
  // Both should get ~50%, and the pCPU should never idle.
  EXPECT_NEAR(sim::to_sec(ta), 1.5, 0.15);
  EXPECT_NEAR(sim::to_sec(tb), 1.5, 0.15);
  EXPECT_NEAR(sim::to_sec(ta + tb), 3.0, 0.01);
}

TEST_F(CreditTest, RotationHappensAtSliceGranularity) {
  HvConfig cfg;
  Host& h = make_host(1, cfg);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::seconds(1));
  // ~1s / 30ms slices -> roughly 33 context switches (plus wakeup churn).
  const auto switches = h.sched_stats().context_switches;
  EXPECT_GE(switches, 25u);
  EXPECT_LE(switches, 80u);
}

TEST_F(CreditTest, WeightsSkewAllocation) {
  HvConfig cfg;
  Host& h = make_host(1, cfg);
  VmConfig a_cfg;
  a_cfg.name = "heavy";
  a_cfg.n_vcpus = 1;
  a_cfg.pin_map = {0};
  a_cfg.weight = 512;
  Vm& a = host_->add_vm(a_cfg);
  VmConfig b_cfg = a_cfg;
  b_cfg.name = "light";
  b_cfg.weight = 256;
  Vm& b = host_->add_vm(b_cfg);
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::seconds(6));
  const double ta = sim::to_sec(a.vcpu(0).time_running(eng_.now()));
  const double tb = sim::to_sec(b.vcpu(0).time_running(eng_.now()));
  // 2:1 weights -> roughly 2:1 CPU time.
  EXPECT_GT(ta / tb, 1.5);
  EXPECT_LT(ta / tb, 2.7);
}

TEST_F(CreditTest, BlockedVcpuYieldsPcpu) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::milliseconds(1));
  Vcpu* running = h.pcpu(0).current();
  ASSERT_NE(running, nullptr);
  h.sched().block(*running);
  eng_.run_until(sim::milliseconds(2));
  EXPECT_EQ(running->state(), VcpuState::kBlocked);
  ASSERT_NE(h.pcpu(0).current(), nullptr);
  EXPECT_NE(h.pcpu(0).current(), running);
}

TEST_F(CreditTest, BoostedWakePreemptsPromptly) {
  Host& h = make_host(1);
  Vm& hog = add_pinned_vm("hog", {0});
  Vm& io = add_pinned_vm("io", {0});
  h.start();
  h.sched().wake(hog.vcpu(0));
  // Run past the first tick so the hog's own wake-up BOOST has decayed
  // back to a credit-derived priority.
  eng_.run_until(sim::milliseconds(15));
  ASSERT_EQ(hog.vcpu(0).state(), VcpuState::kRunning);
  ASSERT_NE(hog.vcpu(0).prio(), CreditPrio::kBoost);
  // io wakes mid-slice with credits -> BOOST -> preempts.
  h.sched().wake(io.vcpu(0));
  eng_.run_until(sim::milliseconds(16));
  EXPECT_EQ(io.vcpu(0).state(), VcpuState::kRunning);
  EXPECT_EQ(hog.vcpu(0).state(), VcpuState::kRunnable);
  EXPECT_EQ(io.vcpu(0).prio(), CreditPrio::kBoost);
}

TEST_F(CreditTest, YieldRotatesToNextRunnable) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::milliseconds(1));
  Vcpu* first = h.pcpu(0).current();
  Vcpu* other = first == &a.vcpu(0) ? &b.vcpu(0) : &a.vcpu(0);
  h.sched().yield(*first);
  eng_.run_until(sim::milliseconds(2));
  EXPECT_EQ(h.pcpu(0).current(), other);
  EXPECT_EQ(first->state(), VcpuState::kRunnable);
}

TEST_F(CreditTest, ForcePreemptMovesCurrentToQueue) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  eng_.run_until(sim::milliseconds(1));
  h.sched().force_preempt(a.vcpu(0));
  // With nobody else runnable the scheduler picks it right back.
  eng_.run_until(sim::milliseconds(2));
  EXPECT_EQ(a.vcpu(0).state(), VcpuState::kRunning);
  EXPECT_GE(h.sched_stats().preemptions, 1u);
}

TEST_F(CreditTest, PinningConfinesVcpus) {
  Host& h = make_host(2);
  Vm& a = add_pinned_vm("a", {1});
  h.start();
  h.sched().wake(a.vcpu(0));
  eng_.run_until(sim::seconds(1));
  EXPECT_EQ(a.vcpu(0).pcpu(), 1);
  EXPECT_NEAR(sim::to_sec(a.vcpu(0).time_running(eng_.now())), 1.0, 0.05);
  EXPECT_TRUE(h.pcpu(0).idle());
}

TEST_F(CreditTest, UnpinnedVcpusSpreadAcrossPcpus) {
  Host& h = make_host(2);
  VmConfig cfg;
  cfg.name = "wide";
  cfg.n_vcpus = 2;
  Vm& vm = host_->add_vm(cfg);
  h.start();
  h.sched().wake(vm.vcpu(0));
  h.sched().wake(vm.vcpu(1));
  eng_.run_until(sim::seconds(1));
  // Both vCPUs should be running simultaneously on distinct pCPUs.
  EXPECT_EQ(vm.vcpu(0).state(), VcpuState::kRunning);
  EXPECT_EQ(vm.vcpu(1).state(), VcpuState::kRunning);
  EXPECT_NE(vm.vcpu(0).pcpu(), vm.vcpu(1).pcpu());
  // Nearly full utilisation for both.
  EXPECT_GT(sim::to_sec(vm.vcpu(0).time_running(eng_.now())), 0.95);
  EXPECT_GT(sim::to_sec(vm.vcpu(1).time_running(eng_.now())), 0.95);
}

TEST_F(CreditTest, IdlePcpuStealsQueuedWork) {
  Host& h = make_host(2);
  // Two single-vCPU VMs whose resident queue starts on pCPU 0.
  VmConfig cfg;
  cfg.name = "v";
  cfg.n_vcpus = 1;
  Vm& a = host_->add_vm(cfg);
  Vm& b = host_->add_vm(cfg);
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::milliseconds(50));
  // Work stealing / wake placement must end with both running in parallel.
  EXPECT_EQ(a.vcpu(0).state(), VcpuState::kRunning);
  EXPECT_EQ(b.vcpu(0).state(), VcpuState::kRunning);
}

TEST_F(CreditTest, FairShareWithThreeCompetitors) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  Vm& c = add_pinned_vm("c", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  h.sched().wake(c.vcpu(0));
  eng_.run_until(sim::seconds(6));
  for (Vm* vm : {&a, &b, &c}) {
    EXPECT_NEAR(sim::to_sec(vm->vcpu(0).time_running(eng_.now())), 2.0, 0.35)
        << vm->name();
  }
}

TEST_F(CreditTest, RunnableTimeIsStealTime) {
  Host& h = make_host(1);
  Vm& a = add_pinned_vm("a", {0});
  Vm& b = add_pinned_vm("b", {0});
  h.start();
  h.sched().wake(a.vcpu(0));
  h.sched().wake(b.vcpu(0));
  eng_.run_until(sim::seconds(2));
  // Each waits while the other runs: steal ~ 1s each.
  EXPECT_NEAR(sim::to_sec(a.vcpu(0).time_runnable(eng_.now())), 1.0, 0.2);
  EXPECT_NEAR(sim::to_sec(b.vcpu(0).time_runnable(eng_.now())), 1.0, 0.2);
}

}  // namespace
}  // namespace irs::hv
