// Unit tests for hypervisor building blocks: Vcpu accounting and Pcpu
// runqueue ordering.
#include <gtest/gtest.h>

#include "src/hv/pcpu.h"
#include "src/hv/vcpu.h"
#include "src/hv/vm.h"

namespace irs::hv {
namespace {

VmConfig small_vm() {
  VmConfig cfg;
  cfg.n_vcpus = 1;
  return cfg;
}

TEST(Vcpu, StartsBlocked) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  EXPECT_EQ(v.state(), VcpuState::kBlocked);
  EXPECT_EQ(v.pcpu(), kNoPcpu);
}

TEST(Vcpu, RunstateAccountingSplitsTime) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  v.set_state(VcpuState::kRunnable, sim::milliseconds(10));  // blocked 0..10
  v.set_state(VcpuState::kRunning, sim::milliseconds(25));   // runnable 10..25
  v.set_state(VcpuState::kBlocked, sim::milliseconds(60));   // running 25..60

  const sim::Time now = sim::milliseconds(100);
  EXPECT_EQ(v.time_blocked(now), sim::milliseconds(10 + 40));
  EXPECT_EQ(v.time_runnable(now), sim::milliseconds(15));
  EXPECT_EQ(v.time_running(now), sim::milliseconds(35));
}

TEST(Vcpu, InProgressStateCountsUpToNow) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  v.set_state(VcpuState::kRunning, 0);
  EXPECT_EQ(v.time_running(sim::milliseconds(7)), sim::milliseconds(7));
  const RunstateInfo rs = v.runstate(sim::milliseconds(7));
  EXPECT_EQ(rs.state, VcpuState::kRunning);
  EXPECT_EQ(rs.time_running, sim::milliseconds(7));
}

TEST(Vcpu, AffinityEmptyMeansAnywhere) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  EXPECT_TRUE(v.allowed_on(0));
  EXPECT_TRUE(v.allowed_on(17));
  v.set_affinity({2});
  EXPECT_FALSE(v.allowed_on(0));
  EXPECT_TRUE(v.allowed_on(2));
}

TEST(Vcpu, CreditsClampAtCap) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  v.add_credits(1000, 300);
  EXPECT_EQ(v.credits(), 300);
  v.add_credits(-5000, 300);
  EXPECT_EQ(v.credits(), -300);
}

TEST(Vcpu, RefreshPrioFollowsCredits) {
  Vm vm(0, small_vm());
  Vcpu v(0, &vm, 0);
  v.add_credits(10, 300);
  v.set_prio(CreditPrio::kBoost);
  v.refresh_prio();
  EXPECT_EQ(v.prio(), CreditPrio::kUnder);
  v.add_credits(-20, 300);
  v.refresh_prio();
  EXPECT_EQ(v.prio(), CreditPrio::kOver);
}

TEST(Vcpu, StateNames) {
  EXPECT_STREQ(vcpu_state_name(VcpuState::kRunning), "running");
  EXPECT_STREQ(vcpu_state_name(VcpuState::kRunnable), "runnable");
  EXPECT_STREQ(vcpu_state_name(VcpuState::kBlocked), "blocked");
  EXPECT_STREQ(credit_prio_name(CreditPrio::kBoost), "BOOST");
}

class PcpuQueueTest : public ::testing::Test {
 protected:
  PcpuQueueTest() : vm_(0, small_vm()), p_(0) {
    for (int i = 0; i < 6; ++i) {
      vcpus_.push_back(std::make_unique<Vcpu>(i, &vm_, i));
    }
  }
  Vm vm_;
  Pcpu p_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
};

TEST_F(PcpuQueueTest, EnqueueSortsByPriorityClass) {
  vcpus_[0]->set_prio(CreditPrio::kOver);
  vcpus_[1]->set_prio(CreditPrio::kUnder);
  vcpus_[2]->set_prio(CreditPrio::kBoost);
  p_.enqueue(vcpus_[0].get());
  p_.enqueue(vcpus_[1].get());
  p_.enqueue(vcpus_[2].get());
  EXPECT_EQ(p_.peek_best(), vcpus_[2].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[2].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[1].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[0].get());
  EXPECT_EQ(p_.pop_best(), nullptr);
}

TEST_F(PcpuQueueTest, FifoWithinClass) {
  for (int i = 0; i < 3; ++i) {
    vcpus_[static_cast<size_t>(i)]->set_prio(CreditPrio::kUnder);
    p_.enqueue(vcpus_[static_cast<size_t>(i)].get());
  }
  EXPECT_EQ(p_.pop_best(), vcpus_[0].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[1].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[2].get());
}

TEST_F(PcpuQueueTest, EnqueueFrontGoesToHeadOfClass) {
  vcpus_[0]->set_prio(CreditPrio::kUnder);
  vcpus_[1]->set_prio(CreditPrio::kUnder);
  vcpus_[2]->set_prio(CreditPrio::kBoost);
  p_.enqueue(vcpus_[0].get());
  p_.enqueue(vcpus_[2].get());
  p_.enqueue_front(vcpus_[1].get());
  // Boost vcpu still first; vcpu1 ahead of vcpu0 within UNDER.
  EXPECT_EQ(p_.pop_best(), vcpus_[2].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[1].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[0].get());
}

TEST_F(PcpuQueueTest, RemoveSpecific) {
  p_.enqueue(vcpus_[0].get());
  p_.enqueue(vcpus_[1].get());
  EXPECT_TRUE(p_.remove(vcpus_[0].get()));
  EXPECT_FALSE(p_.remove(vcpus_[0].get()));
  EXPECT_EQ(p_.queue_len(), 1u);
}

TEST_F(PcpuQueueTest, CoStoppedSkippedByPick) {
  vcpus_[0]->co_stopped = true;
  p_.enqueue(vcpus_[0].get());
  p_.enqueue(vcpus_[1].get());
  EXPECT_EQ(p_.peek_best(), vcpus_[1].get());
  EXPECT_EQ(p_.pop_best(), vcpus_[1].get());
  EXPECT_EQ(p_.peek_best(), nullptr);  // only co-stopped left
  EXPECT_EQ(p_.queue_len(), 1u);
}

TEST_F(PcpuQueueTest, LoadCountsCurrentAndQueue) {
  EXPECT_EQ(p_.load(), 0u);
  p_.set_current(vcpus_[0].get());
  EXPECT_EQ(p_.load(), 1u);
  p_.enqueue(vcpus_[1].get());
  EXPECT_EQ(p_.load(), 2u);
  EXPECT_FALSE(p_.idle());
}

TEST_F(PcpuQueueTest, EnqueueSetsResident) {
  p_.enqueue(vcpus_[3].get());
  EXPECT_EQ(vcpus_[3]->resident(), 0);
}

}  // namespace
}  // namespace irs::hv
