// Tests for the extension strategies: delay-preemption (related work) and
// pull-based running-task migration (paper §6 future work).
#include <gtest/gtest.h>

#include "src/exp/runner.h"
#include "tests/helpers.h"

namespace irs {
namespace {

using test::ScriptedBehavior;
using test::TestWorkload;

TEST(DelayPreempt, GrantsWindowsForLockHolders) {
  // A task that holds a lock half the time on a contended vCPU: preemption
  // decisions regularly land inside critical sections.
  core::WorldConfig wc;
  wc.n_pcpus = 1;
  wc.strategy = core::Strategy::kDelayPreempt;
  wc.seed = 3;
  core::World w(wc);
  hv::VmConfig fg_cfg{.name = "fg", .n_vcpus = 1, .weight = 256,
                      .pin_map = {0}};
  const auto fg = w.add_vm(fg_cfg, true);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     auto& m = tw.sync_ctx().make_mutex();
                     tw.add_task(
                         k, "holder",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::lock(m),
                                 guest::Action::compute(
                                     sim::microseconds(1500)),
                                 guest::Action::unlock(m),
                                 guest::Action::compute(
                                     sim::microseconds(800)),
                             },
                             /*loop=*/true),
                         0);
                   }));
  hv::VmConfig bg_cfg = fg_cfg;
  bg_cfg.name = "bg";
  const auto bg = w.add_vm(bg_cfg, false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(3));
  const auto& st = w.host().strategy_stats();
  EXPECT_GT(st.delay_grants, 0u);
  // 1.5 ms critical sections exceed the 500 us cap: some windows expire.
  EXPECT_GT(st.delay_expired, 0u);
  // Fairness preserved despite the delays (cap is tiny vs 30 ms slices).
  const auto now = w.engine().now();
  EXPECT_NEAR(sim::to_sec(w.host().vm(fg).vcpu(0).time_running(now)), 1.5,
              0.2);
  EXPECT_NEAR(sim::to_sec(w.host().vm(bg).vcpu(0).time_running(now)), 1.5,
              0.2);
}

TEST(DelayPreempt, ShortCriticalSectionsReleaseInsideWindow) {
  core::WorldConfig wc;
  wc.n_pcpus = 1;
  wc.strategy = core::Strategy::kDelayPreempt;
  wc.seed = 3;
  core::World w(wc);
  hv::VmConfig fg_cfg{.name = "fg", .n_vcpus = 1, .weight = 256,
                      .pin_map = {0}};
  const auto fg = w.add_vm(fg_cfg, true);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     auto& m = tw.sync_ctx().make_mutex();
                     tw.add_task(
                         k, "holder",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::lock(m),
                                 guest::Action::compute(
                                     sim::microseconds(130)),
                                 guest::Action::unlock(m),
                                 guest::Action::compute(
                                     sim::microseconds(570)),
                             },
                             /*loop=*/true),
                         0);
                   }));
  hv::VmConfig bg_cfg = fg_cfg;
  bg_cfg.name = "bg";
  const auto bg = w.add_vm(bg_cfg, false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(3));
  const auto& st = w.host().strategy_stats();
  ASSERT_GT(st.delay_grants, 0u);
  // 130 us critical sections always finish inside the 500 us window.
  EXPECT_EQ(st.delay_expired, 0u);
  EXPECT_EQ(st.delay_released, st.delay_grants);
}

TEST(DelayPreempt, NoGrantsWithoutLocks) {
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";  // barrier-only, never holds a lock
  cfg.strategy = core::Strategy::kDelayPreempt;
  cfg.work_scale = 0.25;
  cfg.seed = 7;
  const exp::RunResult r = exp::run_scenario(cfg);
  ASSERT_TRUE(r.finished);
  // (grants aren't surfaced in RunResult; equivalence with baseline is the
  // observable: same makespan modulo nothing-at-all.)
  exp::ScenarioConfig base = cfg;
  base.strategy = core::Strategy::kBaseline;
  EXPECT_EQ(exp::run_scenario(base).fg_makespan, r.fg_makespan);
}

TEST(IrsPull, RescuesRunningTaskFromPreemptedVcpu) {
  // Solo compute task on a contended vCPU, pull-only mode: when siblings
  // idle-poll, they yank the frozen current task and run it.
  core::WorldConfig wc;
  wc.strategy = core::Strategy::kIrsPull;
  wc.seed = 5;
  core::World w(wc);
  hv::VmConfig fg_cfg{.name = "fg", .n_vcpus = 4, .weight = 256,
                      .pin_map = {0, 1, 2, 3}};
  const auto fg = w.add_vm(fg_cfg, true);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "solo", test::hog_behavior(), 0);
                   }));
  hv::VmConfig bg_cfg{.name = "bg", .n_vcpus = 1, .weight = 256,
                      .pin_map = {0}};
  const auto bg = w.add_vm(bg_cfg, false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  EXPECT_GT(w.kernel(fg).stats().irs_pull_migrations, 0u);
  // Without SAs, pull-only still recovers most of the lost throughput.
  const auto done = w.workload(fg).tasks()[0]->stats.compute_done;
  EXPECT_GT(sim::to_sec(done), 1.5);
  // And no SA machinery ran.
  EXPECT_EQ(w.host().strategy_stats().sa_sent, 0u);
  EXPECT_EQ(w.kernel(fg).stats().sa_received, 0u);
}

TEST(IrsPull, DoesNothingForSpinningWorkloads) {
  // Spinning guests never idle, so the pull never triggers — the paper's
  // §6 point that pull-based migration needs an idle moment.
  exp::ScenarioConfig cfg;
  cfg.fg = "UA";
  cfg.strategy = core::Strategy::kIrsPull;
  cfg.work_scale = 0.25;
  cfg.seed = 11;
  const exp::RunResult pull = exp::run_scenario(cfg);
  cfg.strategy = core::Strategy::kBaseline;
  const exp::RunResult base = exp::run_scenario(cfg);
  ASSERT_TRUE(pull.finished);
  EXPECT_NEAR(exp::improvement_pct(base, pull), 0.0, 3.0);
}

TEST(IrsPull, MatchesIrsForBlockingWorkloads) {
  exp::ScenarioConfig cfg;
  cfg.fg = "streamcluster";
  cfg.work_scale = 0.5;
  cfg.seed = 13;
  cfg.strategy = core::Strategy::kBaseline;
  const exp::RunResult base = exp::run_scenario(cfg);
  cfg.strategy = core::Strategy::kIrs;
  const exp::RunResult irs = exp::run_scenario(cfg);
  cfg.strategy = core::Strategy::kIrsPull;
  const exp::RunResult pull = exp::run_scenario(cfg);
  const double irs_gain = exp::improvement_pct(base, irs);
  const double pull_gain = exp::improvement_pct(base, pull);
  EXPECT_GT(pull_gain, irs_gain * 0.6);  // same ballpark
}

TEST(Extensions, StrategyListAndNames) {
  EXPECT_EQ(core::extension_strategies().size(), 2u);
  EXPECT_STREQ(core::strategy_name(core::Strategy::kDelayPreempt),
               "Delay-Preempt");
  EXPECT_STREQ(core::strategy_name(core::Strategy::kIrsPull), "IRS-Pull");
}

}  // namespace
}  // namespace irs
