// Windowed SLO observability: LatencyHistogram bucket geometry and exact
// merge, SloTracker window tumbling, JSON round-trips, and the end-to-end
// guarantee that enabling SLO tracking never perturbs a run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/obs/slo.h"
#include "src/sim/rng.h"

namespace {

using namespace irs;
using obs::LatencyHistogram;

// --- bucket geometry ------------------------------------------------------

TEST(SloHistogram, BucketsTileTheRangeContiguously) {
  // Every value maps into exactly one bucket whose [lower, next-lower)
  // range contains it, and bucket lowers are strictly increasing.
  for (int idx = 0; idx + 1 < LatencyHistogram::kNumBuckets; ++idx) {
    const std::int64_t lo = LatencyHistogram::bucket_lower(idx);
    const std::int64_t next = LatencyHistogram::bucket_lower(idx + 1);
    ASSERT_LT(lo, next) << "idx " << idx;
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), idx);
    EXPECT_EQ(LatencyHistogram::bucket_index(next - 1), idx);
    const std::int64_t rep = LatencyHistogram::bucket_value(idx);
    EXPECT_GE(rep, lo);
    EXPECT_LT(rep, next);
  }
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::kMaxValueNs),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(SloHistogram, RepresentativeErrorIsBounded) {
  // The midpoint representative is within half a bucket width — 1/(2*kSub)
  // relative (~1.6 %) — of any value in the bucket. Unit buckets are exact.
  for (std::int64_t v = 0; v < 2 * LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(
        LatencyHistogram::bucket_value(LatencyHistogram::bucket_index(v)), v);
  }
  sim::Rng rng(7);
  const double bound = 1.0 / (2.0 * LatencyHistogram::kSub);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(
        rng.next_below(LatencyHistogram::kMaxValueNs));
    const std::int64_t rep =
        LatencyHistogram::bucket_value(LatencyHistogram::bucket_index(v));
    EXPECT_LE(std::abs(static_cast<double>(rep - v)),
              bound * static_cast<double>(v) + 0.5)
        << "v=" << v;
  }
}

TEST(SloHistogram, AddClampsOutOfRangeValues) {
  LatencyHistogram h;
  h.add(-5);                                     // clamps to 0
  h.add(LatencyHistogram::kMaxValueNs + 1'000);  // clamps to max
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_LE(h.max(), LatencyHistogram::kMaxValueNs);
}

TEST(SloHistogram, SummaryStatsAreExactIntegers) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.percentile(99), 0);
  std::int64_t sum = 0;
  for (std::int64_t v : {1'000, 2'000, 3'000, 4'000}) {
    h.add(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 1'000);
  EXPECT_EQ(h.max(), 4'000);
  EXPECT_EQ(h.mean(), sum / 4);  // count/sum are exact even when buckets
                                 // quantise — mean never goes through them
  EXPECT_EQ(h.sum_lo(), static_cast<std::uint64_t>(sum));
  EXPECT_EQ(h.sum_hi(), 0u);
}

TEST(SloHistogram, PercentilesTrackExactOrderStatistics) {
  LatencyHistogram h;
  std::vector<std::int64_t> vals;
  sim::Rng rng(21);
  for (int i = 0; i < 100000; ++i) {
    // Log-uniform over 1 µs .. 1 s: exercises every octave the sim uses.
    const double u = rng.next_double();
    const auto v = static_cast<std::int64_t>(1e3 * std::pow(1e6, u));
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(vals.size())));
    const double exact = static_cast<double>(vals[rank - 1]);
    EXPECT_NEAR(h.percentile(p), exact, exact / LatencyHistogram::kSub)
        << "p" << p;
  }
  EXPECT_EQ(h.percentile(0), vals.front());
  EXPECT_EQ(h.percentile(100), vals.back());
}

TEST(SloHistogram, CountAboveIsExactAtBucketBoundaries) {
  LatencyHistogram h;
  const std::int64_t threshold = sim::milliseconds(10);
  // bucket_lower(bucket_index(threshold)) == threshold for powers of two
  // times small factors? Not necessarily — use the bucket lower itself.
  const std::int64_t edge =
      LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(threshold));
  std::uint64_t above = 0;
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v =
        static_cast<std::int64_t>(rng.next_below(4 * threshold));
    h.add(v);
    // Everything in a bucket strictly after the edge's bucket is counted.
    if (LatencyHistogram::bucket_index(v) >
        LatencyHistogram::bucket_index(edge)) {
      ++above;
    }
  }
  EXPECT_EQ(h.count_above(edge), above);
  EXPECT_EQ(h.count_above(LatencyHistogram::kMaxValueNs), 0u);
}

// --- merge determinism ----------------------------------------------------

TEST(SloHistogram, MergeIsBitIdenticalToSerialInAnyOrderOrGrouping) {
  sim::Rng rng(42);
  std::vector<std::int64_t> stream;
  for (int i = 0; i < 50000; ++i) {
    stream.push_back(static_cast<std::int64_t>(rng.next_below(1'000'000'000)));
  }

  LatencyHistogram serial;
  for (std::int64_t v : stream) serial.add(v);

  for (int shards : {2, 3, 7}) {
    std::vector<LatencyHistogram> parts(static_cast<std::size_t>(shards));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      parts[i % static_cast<std::size_t>(shards)].add(stream[i]);
    }
    // Merge in a shuffled order and pairwise-uneven grouping.
    std::vector<std::size_t> order(parts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    LatencyHistogram merged;
    for (std::size_t i : order) merged.merge(parts[i]);
    EXPECT_TRUE(merged == serial) << shards << " shards";
    EXPECT_EQ(merged.digest(), serial.digest());
    EXPECT_EQ(merged.mean(), serial.mean());
    EXPECT_EQ(merged.percentile(99.9), serial.percentile(99.9));
  }
}

TEST(SloHistogram, DigestDistinguishesAndEmptyIsStable) {
  LatencyHistogram a;
  LatencyHistogram b;
  EXPECT_EQ(a.digest(), b.digest());
  a.add(1000);
  EXPECT_NE(a.digest(), b.digest());
  b.add(1001);  // different unit bucket
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SloHistogram, MemoryIsBucketsNotSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 1'000'000; ++i) h.add(1000 + (i % 50000));
  // 1e6 exact 8-byte samples would be 8 MB; the histogram must be at
  // least 10x smaller (the bench gates the same ratio).
  EXPECT_EQ(h.count(), 1'000'000u);
  EXPECT_LT(h.memory_bytes(), 8'000'000u / 10);
}

// --- SloTracker windows ---------------------------------------------------

TEST(SloTracker, TumblingWindowsAlignAndSkipEmpty) {
  obs::SloTracker t(sim::milliseconds(30));
  const std::size_t cls =
      t.add_class("jbb", {/*threshold=*/sim::milliseconds(10), 0.999});
  // Window 0: two fast requests. Window 1 empty. Window 2: one violation.
  t.record(cls, sim::milliseconds(5), sim::milliseconds(1));
  t.record(cls, sim::milliseconds(20), sim::milliseconds(2));
  t.record(cls, sim::milliseconds(70), sim::milliseconds(25));
  t.flush(sim::milliseconds(90));

  const obs::SloResult r = t.result();
  ASSERT_EQ(r.classes.size(), 1u);
  const obs::SloClassResult& c = r.classes[0];
  EXPECT_EQ(c.name, "jbb");
  EXPECT_EQ(c.total.count(), 3u);
  EXPECT_EQ(c.violations(), 1u);
  ASSERT_EQ(c.windows.size(), 2u);  // window 1 skipped
  EXPECT_EQ(c.windows[0].index, 0);
  EXPECT_EQ(c.windows[0].count, 2u);
  EXPECT_EQ(c.windows[0].violations, 0u);
  EXPECT_EQ(c.windows[1].index, 2);
  EXPECT_EQ(c.windows[1].count, 1u);
  EXPECT_EQ(c.windows[1].violations, 1u);
  // p50 of the single-sample window is its bucket representative.
  EXPECT_NEAR(static_cast<double>(c.windows[1].p50),
              static_cast<double>(sim::milliseconds(25)),
              static_cast<double>(sim::milliseconds(25)) /
                  LatencyHistogram::kSub);
  EXPECT_EQ(obs::burn_rate(c.windows[0], c.spec), 0.0);
  EXPECT_NEAR(obs::burn_rate(c.windows[1], c.spec), 1.0 / 0.001, 1e-9);
}

TEST(SloTracker, FlushIsIdempotentAndResultFoldsOpenWindow) {
  obs::SloTracker t;
  const std::size_t cls = t.add_class("ab", {sim::milliseconds(20), 0.999});
  t.record(cls, sim::milliseconds(10), sim::milliseconds(3));
  // result() before flush must still see the in-progress window...
  const obs::SloResult before = t.result();
  ASSERT_EQ(before.classes[0].windows.size(), 1u);
  EXPECT_EQ(before.classes[0].total.count(), 1u);
  // ...without mutating the tracker.
  t.flush(sim::milliseconds(40));
  const obs::SloResult after = t.result();
  t.flush(sim::milliseconds(50));  // second flush: no-op
  EXPECT_TRUE(t.result() == after);
  EXPECT_TRUE(before == after);
  EXPECT_EQ(after.digest(), before.digest());
}

TEST(SloTracker, WindowPercentilesAreWindowLocal) {
  // A hog burst in window 1 must not contaminate window 0's tail.
  obs::SloTracker t(sim::milliseconds(30));
  const std::size_t cls = t.add_class("jbb", {sim::milliseconds(10), 0.999});
  for (int i = 0; i < 100; ++i) {
    t.record(cls, sim::milliseconds(1) + i * 100, sim::microseconds(400));
  }
  for (int i = 0; i < 100; ++i) {
    t.record(cls, sim::milliseconds(31) + i * 100, sim::milliseconds(50));
  }
  t.flush(sim::milliseconds(60));
  const obs::SloResult r = t.result();
  ASSERT_EQ(r.classes[0].windows.size(), 2u);
  EXPECT_LT(r.classes[0].windows[0].p999, sim::milliseconds(1));
  EXPECT_GT(r.classes[0].windows[1].p999, sim::milliseconds(40));
  EXPECT_EQ(r.classes[0].windows[0].violations, 0u);
  EXPECT_EQ(r.classes[0].windows[1].violations, 100u);
}

// --- serialization --------------------------------------------------------

obs::SloResult sample_result() {
  obs::SloTracker t;
  const std::size_t jbb = t.add_class("jbb", {sim::milliseconds(10), 0.999});
  const std::size_t ab = t.add_class("ab", {sim::milliseconds(20), 0.99});
  sim::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    t.record(jbb, i * sim::microseconds(40),
             static_cast<sim::Duration>(rng.next_below(20'000'000)));
    t.record(ab, i * sim::microseconds(40),
             static_cast<sim::Duration>(rng.next_below(40'000'000)));
  }
  t.flush(sim::milliseconds(250));
  return t.result();
}

TEST(SloJson, RoundTripsBitIdentically) {
  const obs::SloResult s = sample_result();
  obs::JsonWriter w;
  obs::slo_result_json(w, s);
  const std::string text = w.str();

  obs::JsonReader reader;
  obs::JsonValue v;
  ASSERT_TRUE(reader.parse(text, &v)) << reader.error();
  obs::SloResult parsed;
  std::string err;
  ASSERT_TRUE(obs::slo_result_from_value(v, &parsed, &err)) << err;
  EXPECT_TRUE(parsed == s);
  EXPECT_EQ(parsed.digest(), s.digest());

  obs::JsonWriter w2;
  obs::slo_result_json(w2, parsed);
  EXPECT_EQ(w2.str(), text);  // byte-identical re-serialization
}

TEST(SloJson, RejectsMalformedFields) {
  obs::JsonReader reader;
  obs::JsonValue v;
  obs::SloResult out;
  std::string err;
  ASSERT_TRUE(reader.parse("{\"classes\":[]}", &v));
  EXPECT_FALSE(obs::slo_result_from_value(v, &out, &err));  // no window_ns
  ASSERT_TRUE(reader.parse(
      "{\"window_ns\":30000000,\"classes\":[{\"name\":\"x\"}]}", &v));
  EXPECT_FALSE(obs::slo_result_from_value(v, &out, &err));
  EXPECT_FALSE(err.empty());
}

// --- end-to-end through the runner ---------------------------------------

exp::ScenarioConfig server_cfg(sim::Duration slo_window) {
  exp::ScenarioConfig cfg;
  cfg.fg = "specjbb";
  cfg.bg = "hog";
  cfg.n_inter = 2;
  cfg.strategy = core::Strategy::kIrs;
  cfg.server_duration = sim::milliseconds(400);
  cfg.slo_window = slo_window;
  return cfg;
}

TEST(SloEndToEnd, TrackingIsPassiveAndDeterministic) {
  // Same seed with SLO tracking off, on (default window), and on again:
  // every scheduling-visible metric must be bit-identical — recording is
  // passive — and the two tracked runs must produce identical SLO blocks.
  const exp::RunResult off = exp::run_scenario(server_cfg(-1));
  const exp::RunResult on1 = exp::run_scenario(server_cfg(0));
  const exp::RunResult on2 = exp::run_scenario(server_cfg(0));

  EXPECT_TRUE(off.slo.empty());
  EXPECT_EQ(off.slo_digest, 0u);
  ASSERT_FALSE(on1.slo.empty());
  EXPECT_EQ(on1.throughput, off.throughput);
  EXPECT_EQ(on1.lat_mean, off.lat_mean);
  EXPECT_EQ(on1.lat_p99, off.lat_p99);
  EXPECT_EQ(on1.fg_makespan, off.fg_makespan);
  EXPECT_TRUE(on1.slo == on2.slo);
  EXPECT_EQ(on1.slo_digest, on2.slo_digest);
  EXPECT_NE(on1.slo_digest, 0u);

  ASSERT_EQ(on1.slo.classes.size(), 1u);
  const obs::SloClassResult& c = on1.slo.classes[0];
  EXPECT_EQ(c.name, "jbb");
  EXPECT_EQ(on1.slo.window, obs::SloTracker::kDefaultWindow);
  EXPECT_GT(c.total.count(), 0u);
  EXPECT_FALSE(c.windows.empty());
  // The histogram saw exactly the completed transactions.
  std::uint64_t windowed = 0;
  for (const obs::SloWindow& win : c.windows) windowed += win.count;
  EXPECT_EQ(windowed, c.total.count());
}

TEST(SloEndToEnd, ResultJsonCarriesTheBlock) {
  const exp::RunResult r = exp::run_scenario(server_cfg(0));
  const std::string json = exp::result_json(r);
  EXPECT_NE(json.find("\"slo\":"), std::string::npos);
  EXPECT_NE(json.find("\"slo_digest\":"), std::string::npos);
  exp::RunResult parsed;
  std::string err;
  ASSERT_TRUE(exp::result_from_json(json, &parsed, &err)) << err;
  EXPECT_TRUE(parsed.slo == r.slo);
  EXPECT_TRUE(exp::results_identical(parsed, r));
  // And the non-server scenario has no block at all.
  exp::ScenarioConfig cpu = server_cfg(0);
  cpu.fg = "streamcluster";
  cpu.server_duration = 0;
  const exp::RunResult c = exp::run_scenario(cpu);
  EXPECT_TRUE(c.slo.empty());
  EXPECT_EQ(exp::result_json(c).find("\"slo\":"), std::string::npos);
}

}  // namespace
