// Integration tests: the paper's headline effects must reproduce in the
// simulator (shapes, not absolute numbers).
#include <gtest/gtest.h>

#include "src/exp/runner.h"
#include "src/exp/scenarios.h"

namespace irs::exp {
namespace {

ScenarioConfig quick(const std::string& fg, core::Strategy s,
                     const std::string& bg = "hog", int n_inter = 1) {
  ScenarioConfig cfg;
  cfg.fg = fg;
  cfg.strategy = s;
  cfg.bg = bg;
  cfg.n_inter = n_inter;
  cfg.work_scale = 0.5;
  cfg.seed = 21;
  return cfg;
}

TEST(Integration, InterferenceSlowsBlockingApps) {
  // Fig. 1a: blocking-sync apps slow down well beyond their fair-share
  // loss (they lose ~12.5% of capacity but slow down by >40%).
  const double slow = fig1a_slowdown("fluidanimate", 33);
  EXPECT_GT(slow, 1.4);
  EXPECT_LT(slow, 3.5);
}

TEST(Integration, WorkStealingAppIsResilient) {
  // Fig. 1a: raytrace absorbs the interference via user-level balancing.
  const double slow = fig1a_slowdown("raytrace", 33);
  EXPECT_LT(slow, 1.35);
}

TEST(Integration, MigrationLatencyGrowsWithContention) {
  // Fig. 1b: each co-located VM adds roughly a scheduling slice to the
  // stop-migration latency.
  const auto alone = fig1b_migration_latency(0, 12, 3);
  const auto one = fig1b_migration_latency(1, 12, 3);
  const auto two = fig1b_migration_latency(2, 12, 3);
  const auto three = fig1b_migration_latency(3, 12, 3);
  EXPECT_LT(alone.mean_ms, 2.0);
  EXPECT_GT(one.mean_ms, 4.0);
  EXPECT_GT(two.mean_ms, one.mean_ms * 1.3);
  EXPECT_GT(three.mean_ms, two.mean_ms * 1.15);
}

TEST(Integration, BlockingAppUtilizationDropsUnderInterference) {
  // Fig. 2: blocking-sync apps fall well short of their fair share.
  const RunResult r =
      run_scenario(quick("streamcluster", core::Strategy::kBaseline));
  EXPECT_LT(r.fg_util_vs_fair, 0.8);
}

TEST(Integration, WorkStealUtilizationStaysNearFair) {
  // Fig. 2: raytrace uses nearly its full share despite interference.
  const RunResult r =
      run_scenario(quick("raytrace", core::Strategy::kBaseline));
  EXPECT_GT(r.fg_util_vs_fair, 0.9);
}

TEST(Integration, IrsImprovesBlockingWorkloads) {
  const RunResult base =
      run_scenario(quick("fluidanimate", core::Strategy::kBaseline));
  const RunResult irs =
      run_scenario(quick("fluidanimate", core::Strategy::kIrs));
  // Paper Fig. 5: ~30-42% for heavy blocking sync at 1-inter.
  EXPECT_GT(improvement_pct(base, irs), 15.0);
  // IRS recovers most of the lost utilisation.
  EXPECT_GT(irs.fg_util_vs_fair, base.fg_util_vs_fair + 0.1);
}

TEST(Integration, IrsImprovesSpinningWorkloads) {
  const RunResult base = run_scenario(quick("UA", core::Strategy::kBaseline));
  const RunResult irs = run_scenario(quick("UA", core::Strategy::kIrs));
  EXPECT_GT(improvement_pct(base, irs), 3.0);
}

TEST(Integration, IrsNearNeutralForPipelineApps) {
  // Paper: dedup/ferret have many ready threads per vCPU; plain Linux
  // balancing already copes, IRS adds little.
  const RunResult base =
      run_scenario(quick("dedup", core::Strategy::kBaseline));
  const RunResult irs = run_scenario(quick("dedup", core::Strategy::kIrs));
  EXPECT_NEAR(improvement_pct(base, irs), 0.0, 10.0);
}

TEST(Integration, IrsNearNeutralForWorkStealApps) {
  const RunResult base =
      run_scenario(quick("raytrace", core::Strategy::kBaseline));
  const RunResult irs = run_scenario(quick("raytrace", core::Strategy::kIrs));
  EXPECT_NEAR(improvement_pct(base, irs), 0.0, 12.0);
}

TEST(Integration, LhpEventsDetectedForLockHeavyApps) {
  ScenarioConfig cfg = quick("x264", core::Strategy::kBaseline, "hog", 2);
  cfg.work_scale = 1.0;  // enough preemptions to land inside a CS
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.lhp, 0u);
}

TEST(Integration, IrsEliminatesLhp) {
  // With IRS the holder is descheduled by the context switcher *before*
  // the hypervisor preemption lands, so no LHP events are charged.
  const RunResult r = run_scenario(quick("x264", core::Strategy::kIrs));
  EXPECT_EQ(r.lhp, 0u);
  EXPECT_GT(r.sa_sent, 0u);
}

TEST(Integration, RelaxedCoHurtsBlockingWorkloads) {
  // Fine-grained blocking sync is the case the paper calls out: deceptive
  // idleness counts as progress, so relaxed-co stops the wrong vCPUs.
  const RunResult base =
      run_scenario(quick("streamcluster", core::Strategy::kBaseline));
  const RunResult co =
      run_scenario(quick("streamcluster", core::Strategy::kRelaxedCo));
  EXPECT_LT(improvement_pct(base, co), 0.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  const ScenarioConfig cfg = quick("streamcluster", core::Strategy::kIrs);
  const RunResult a = run_scenario(cfg);
  const RunResult b = run_scenario(cfg);
  EXPECT_EQ(a.fg_makespan, b.fg_makespan);
  EXPECT_EQ(a.sa_sent, b.sa_sent);
  EXPECT_EQ(a.lhp, b.lhp);
  EXPECT_DOUBLE_EQ(a.bg_progress_rate, b.bg_progress_rate);
}

TEST(Integration, SeedChangesResults) {
  ScenarioConfig cfg = quick("streamcluster", core::Strategy::kIrs);
  const RunResult a = run_scenario(cfg);
  cfg.seed = 99;
  const RunResult b = run_scenario(cfg);
  EXPECT_NE(a.fg_makespan, b.fg_makespan);
}

TEST(Integration, ServerLatencyImprovesUnderIrs) {
  ScenarioConfig cfg = quick("specjbb", core::Strategy::kBaseline);
  cfg.server_duration = sim::seconds(2);
  const RunResult base = run_scenario(cfg);
  cfg.strategy = core::Strategy::kIrs;
  const RunResult irs = run_scenario(cfg);
  // Paper Fig. 8: average transaction latency and throughput both improve
  // (lock-holder freezes no longer stall the other warehouses).
  EXPECT_LT(irs.lat_mean, base.lat_mean);
  EXPECT_GT(irs.throughput, base.throughput);
}

TEST(Integration, WeightedSpeedupAboveParityForGoodCases) {
  ScenarioConfig cfg = quick("streamcluster", core::Strategy::kBaseline,
                             "fluidanimate", 2);
  const RunResult base = run_scenario(cfg);
  cfg.strategy = core::Strategy::kIrs;
  const RunResult irs = run_scenario(cfg);
  // Fig. 7: weighted speedup above 100% (parity) for sync-heavy fg.
  EXPECT_GT(weighted_speedup_pct(base, irs), 100.0);
}

TEST(Integration, FourInterGainsAreSmallOrNegative) {
  // Fig. 5/6: with every vCPU interfered, migration has nowhere good to
  // go; gains shrink towards zero (possibly negative).
  ScenarioConfig base_cfg = quick("streamcluster", core::Strategy::kBaseline,
                                  "hog", 4);
  const RunResult base = run_scenario(base_cfg);
  base_cfg.strategy = core::Strategy::kIrs;
  const RunResult irs = run_scenario(base_cfg);
  EXPECT_LT(improvement_pct(base, irs), 25.0);
}

TEST(Integration, BenchSeedsRespectsEnv) {
  EXPECT_GE(bench_seeds(), 1);
}

}  // namespace
}  // namespace irs::exp
