// Open-loop traffic front-end tests (src/wl/frontend.h, src/wl/arrivals.h,
// src/obs/frontend_stats.h):
//
//   * property tests for the arrival generators — interarrival moments
//     against the closed forms, the diurnal integral against
//     expected_count, MMPP overdispersion, and per-seed determinism;
//   * scenario-level determinism — the "frontend" workload's results are
//     bit-identical across reruns, event-queue backends, sweep thread
//     counts, and a 2-shard fold (digest-XOR order independence);
//   * the overload fault matrix — queue-full x {drop, admit, shed} x
//     keepalive {on, off}, asserting the conservation identity
//     arrivals == completed + dropped + shed + in_flight, the per-policy
//     refusal counters, and that refusals land in the SLO drop/shed
//     classes as error-budget burn;
//   * the frontend JSON block — byte-identical round-trip, malformed
//     rejection, a pinned golden fixture (regenerate with
//     IRS_REGEN_GOLDEN=1), and the exact order-independent fold;
//   * forensics integration — the accept-queue wait of completed requests
//     is charged to Cause::kQueueWait, exactly equal to the ledger's
//     queue_wait_total.
#include "src/wl/frontend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/runner.h"
#include "src/exp/stats.h"
#include "src/exp/sweep.h"
#include "src/obs/forensics.h"
#include "src/obs/frontend_stats.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/obs/slo.h"
#include "src/sim/rng.h"
#include "src/wl/arrivals.h"

namespace irs {
namespace {

// ---------------------------------------------------------------------------
// Arrival-process properties
// ---------------------------------------------------------------------------

/// Mean and squared coefficient of variation of `n` gaps.
struct GapMoments {
  double mean_sec = 0.0;
  double cv2 = 0.0;
};

GapMoments gap_moments(wl::ArrivalProcess& p, sim::Rng& rng, int n) {
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = sim::to_sec(p.next_gap(rng));
    sum += g;
    sum2 += g * g;
  }
  GapMoments m;
  m.mean_sec = sum / n;
  const double var = sum2 / n - m.mean_sec * m.mean_sec;
  m.cv2 = var / (m.mean_sec * m.mean_sec);
  return m;
}

TEST(Arrivals, PoissonMomentsMatchClosedForm) {
  wl::ArrivalConfig cfg;
  cfg.kind = wl::ArrivalKind::kPoisson;
  cfg.rate_hz = 2000.0;
  wl::ArrivalProcess p(cfg);
  sim::Rng rng(11);
  constexpr int kN = 200000;
  const GapMoments m = gap_moments(p, rng, kN);
  // Exponential gaps: mean 1/rate, cv^2 = 1. 200k samples put the standard
  // error well under the tolerances.
  EXPECT_NEAR(m.mean_sec, 1.0 / cfg.rate_hz, 0.02 / cfg.rate_hz);
  EXPECT_NEAR(m.cv2, 1.0, 0.05);
  // expected_count is the exact integral.
  EXPECT_DOUBLE_EQ(p.expected_count(sim::seconds(3)), 3.0 * cfg.rate_hz);
}

TEST(Arrivals, MmppMatchesStationaryRateAndIsOverdispersed) {
  wl::ArrivalConfig cfg;
  cfg.kind = wl::ArrivalKind::kMmpp;
  cfg.rate_hz = 1000.0;  // burst defaults to 4x
  cfg.calm_dwell_mean = sim::milliseconds(200);
  cfg.burst_dwell_mean = sim::milliseconds(50);
  wl::ArrivalProcess p(cfg);
  // Stationary rate: dwell-weighted mix of the two states.
  const double stationary = (1000.0 * 0.200 + 4000.0 * 0.050) / 0.250;
  EXPECT_DOUBLE_EQ(p.expected_count(sim::seconds(1)), stationary);
  sim::Rng rng(12);
  // Long-run empirical rate over many modulating cycles (~240 dwell pairs
  // in 60 s) converges on the stationary mix; the state switching makes
  // the gap stream overdispersed relative to Poisson (cv^2 > 1).
  const sim::Duration horizon = sim::seconds(60);
  sim::Duration t = 0;
  std::uint64_t count = 0;
  double sum = 0.0, sum2 = 0.0;
  while (true) {
    const sim::Duration g = p.next_gap(rng);
    if (t + g >= horizon) break;
    t += g;
    ++count;
    const double gs = sim::to_sec(g);
    sum += gs;
    sum2 += gs * gs;
  }
  const double rate = static_cast<double>(count) / sim::to_sec(horizon);
  EXPECT_NEAR(rate, stationary, 0.10 * stationary);
  const double mean = sum / static_cast<double>(count);
  const double cv2 = (sum2 / static_cast<double>(count) - mean * mean) /
                     (mean * mean);
  EXPECT_GT(cv2, 1.1);
}

TEST(Arrivals, DiurnalIntegralMatchesExpectedCount) {
  wl::ArrivalConfig cfg;
  cfg.kind = wl::ArrivalKind::kDiurnal;
  cfg.rate_hz = 1200.0;
  cfg.diurnal_mult = {0.25, 0.5, 1.0, 2.0, 1.5, 0.75};
  cfg.diurnal_period = sim::seconds(1);
  wl::ArrivalProcess p(cfg);
  // Closed form: the piecewise-constant integral, segment by segment. The
  // generator's effective period is seg_len * n_segs (integer division of
  // the period), so compute against the same segment length.
  const sim::Duration seg =
      cfg.diurnal_period /
      static_cast<sim::Duration>(cfg.diurnal_mult.size());
  double full = 0.0;
  for (const double m : cfg.diurnal_mult) {
    full += cfg.rate_hz * m * sim::to_sec(seg);
  }
  const sim::Duration eff_period =
      seg * static_cast<sim::Duration>(cfg.diurnal_mult.size());
  EXPECT_NEAR(p.expected_count(eff_period), full, 1e-6);
  // Partial segments integrate proportionally.
  EXPECT_NEAR(p.expected_count(seg / 2),
              cfg.rate_hz * 0.25 * sim::to_sec(seg / 2), 1e-9);
  EXPECT_NEAR(p.expected_count(seg + seg / 4),
              cfg.rate_hz * (0.25 * sim::to_sec(seg) +
                             0.5 * sim::to_sec(seg / 4)),
              1e-6);
  // Empirical arrival count over 30 effective periods matches the
  // integral (~36k arrivals; Poisson noise is ~0.5%, tolerance 3%).
  sim::Rng rng(13);
  const sim::Duration horizon = 30 * eff_period;
  sim::Duration t = 0;
  std::uint64_t count = 0;
  while (true) {
    const sim::Duration g = p.next_gap(rng);
    if (t + g >= horizon) break;
    t += g;
    ++count;
  }
  const double expected = p.expected_count(horizon);
  EXPECT_NEAR(static_cast<double>(count), expected, 0.03 * expected);
}

TEST(Arrivals, GapStreamIsAPureFunctionOfSeedAndConfig) {
  for (const wl::ArrivalKind kind :
       {wl::ArrivalKind::kPoisson, wl::ArrivalKind::kMmpp,
        wl::ArrivalKind::kDiurnal}) {
    wl::ArrivalConfig cfg;
    cfg.kind = kind;
    wl::ArrivalProcess a(cfg), b(cfg), c(cfg);
    sim::Rng ra(7), rb(7), rc(8);
    bool any_diff = false;
    for (int i = 0; i < 2000; ++i) {
      const sim::Duration ga = a.next_gap(ra);
      ASSERT_EQ(ga, b.next_gap(rb)) << arrival_kind_name(kind) << " @" << i;
      any_diff = any_diff || ga != c.next_gap(rc);
    }
    EXPECT_TRUE(any_diff) << arrival_kind_name(kind);  // seed matters
  }
}

TEST(Arrivals, NamesRoundTripAndRejectUnknown) {
  for (const wl::ArrivalKind k :
       {wl::ArrivalKind::kPoisson, wl::ArrivalKind::kMmpp,
        wl::ArrivalKind::kDiurnal}) {
    wl::ArrivalKind parsed;
    ASSERT_TRUE(wl::arrival_kind_from_name(wl::arrival_kind_name(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  wl::ArrivalKind parsed;
  EXPECT_FALSE(wl::arrival_kind_from_name("pareto", &parsed));
  for (const wl::OverloadPolicy p :
       {wl::OverloadPolicy::kTailDrop, wl::OverloadPolicy::kAdmit,
        wl::OverloadPolicy::kShed}) {
    wl::OverloadPolicy out;
    ASSERT_TRUE(
        wl::overload_policy_from_name(wl::overload_policy_name(p), &out));
    EXPECT_EQ(out, p);
  }
  wl::OverloadPolicy out;
  EXPECT_FALSE(wl::overload_policy_from_name("retry", &out));
}

// ---------------------------------------------------------------------------
// Scenario-level determinism
// ---------------------------------------------------------------------------

exp::ScenarioConfig frontend_cfg() {
  exp::ScenarioConfig cfg;
  cfg.fg = "frontend";
  cfg.bg = "";  // alone; the hog runs are below
  cfg.server_duration = sim::milliseconds(400);
  cfg.seed = 21;
  return cfg;
}

TEST(FrontendDeterminism, BitIdenticalAcrossRerunsAndQueueBackends) {
  const exp::ScenarioConfig cfg = frontend_cfg();
  const exp::RunResult first = exp::run_scenario(cfg);
  ASSERT_TRUE(first.finished);
  EXPECT_FALSE(first.frontend.empty());
  EXPECT_NE(first.frontend_digest, 0u);
  EXPECT_EQ(first.frontend_digest, first.frontend.digest());
  for (const sim::QueueKind kind :
       {sim::QueueKind::kBinaryHeap, sim::QueueKind::kQuadHeap,
        sim::QueueKind::kHybridWheel}) {
    exp::ScenarioConfig c = cfg;
    c.queue = kind;
    const exp::RunResult r = exp::run_scenario(c);
    EXPECT_TRUE(exp::results_identical(first, r))
        << "backend " << static_cast<int>(kind);
  }
}

TEST(FrontendDeterminism, SweepThreadCountAndFoldOrderInvariant) {
  // A small grid spanning all three arrival processes and two policies.
  std::vector<exp::ScenarioConfig> grid;
  for (const char* arrival : {"poisson", "mmpp", "diurnal"}) {
    for (const char* policy : {"drop", "shed"}) {
      exp::ScenarioConfig cfg = frontend_cfg();
      cfg.server_duration = sim::milliseconds(250);
      cfg.fe_arrival = arrival;
      cfg.fe_overload = policy;
      grid.push_back(cfg);
    }
  }
  const auto serial = exp::run_sweep(grid, /*n_threads=*/1);
  const auto parallel = exp::run_sweep(grid, /*n_threads=*/4);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NE(serial[i].frontend_digest, 0u) << i;
    EXPECT_TRUE(exp::results_identical(serial[i], parallel[i])) << i;
  }
  // 2-shard fold order independence: folding (evens, odds) must equal
  // folding in run order — the XOR digest and the exact counter fold are
  // both grouping- and order-independent.
  exp::SweepStats in_order, shuffled;
  for (const auto& r : serial) in_order.add(r);
  for (std::size_t i = 0; i < serial.size(); i += 2) shuffled.add(serial[i]);
  for (std::size_t i = 1; i < serial.size(); i += 2) shuffled.add(serial[i]);
  EXPECT_EQ(in_order.frontend(), shuffled.frontend());
  EXPECT_EQ(in_order.frontend_digest_xor(), shuffled.frontend_digest_xor());
  EXPECT_FALSE(in_order.frontend().empty());
}

// ---------------------------------------------------------------------------
// Overload fault matrix
// ---------------------------------------------------------------------------

const obs::SloClassResult* find_class(const obs::SloResult& slo,
                                      const std::string& name) {
  for (const obs::SloClassResult& c : slo.classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(FrontendOverload, FaultMatrixConservesAndChargesEveryPolicy) {
  for (const char* policy : {"drop", "admit", "shed"}) {
    for (const bool keepalive : {true, false}) {
      SCOPED_TRACE(std::string(policy) + (keepalive ? "+ka" : "-ka"));
      exp::ScenarioConfig cfg = frontend_cfg();
      // 4 workers at ~2 ms/request serve ~2000/s; offering 8000/s forces
      // the overload path continuously. The 64-slot queue matters: a full
      // queue means ~32 ms of estimated delay and ~34 ms of actual
      // latency, both past the 20 ms SLO threshold, so the admission
      // controller (rejects once estimated delay exceeds the threshold)
      // and the shed controller (sheds once a completion window burns its
      // error budget) both engage before the tail-drop backstop.
      cfg.fe_rate_hz = 8000.0;
      cfg.fe_queue_cap = 64;
      cfg.fe_overload = policy;
      cfg.fe_keepalive = keepalive;
      const exp::RunResult r = exp::run_scenario(cfg);
      ASSERT_TRUE(r.finished);
      const obs::FrontendResult& f = r.frontend;
      // The conservation identity: every arrival is accounted for.
      EXPECT_EQ(f.arrivals,
                f.completed + f.dropped() + f.shed + f.in_flight);
      EXPECT_EQ(f.accepted, f.completed + f.in_flight);
      EXPECT_GT(f.completed, 0u);
      EXPECT_GT(f.arrivals, f.completed);  // genuinely overloaded
      // The policy's own refusal channel fired...
      if (std::string(policy) == "drop") {
        EXPECT_GT(f.tail_dropped, 0u);
        EXPECT_EQ(f.admit_rejected, 0u);
        EXPECT_EQ(f.shed, 0u);
      } else if (std::string(policy) == "admit") {
        EXPECT_GT(f.admit_rejected, 0u);
        EXPECT_EQ(f.shed, 0u);
      } else {
        EXPECT_GT(f.shed, 0u);
      }
      // ...and the queue bound held.
      EXPECT_LE(f.max_queue_depth, 64u);
      // Keepalive bookkeeping: with it, connections are reused; without
      // it, every accepted request re-pays connection setup.
      if (keepalive) {
        EXPECT_GT(f.keepalive_reuses, 0u);
      } else {
        EXPECT_EQ(f.keepalive_reuses, 0u);
        EXPECT_EQ(f.conn_setups, f.accepted);
      }
      EXPECT_EQ(f.conn_setups + f.keepalive_reuses, f.accepted);
      // Refusals are SLO classes with threshold 0: every one is recorded
      // and every one burns error budget (violations == count).
      const obs::SloClassResult* drop = find_class(r.slo, "fe.drop");
      const obs::SloClassResult* shed = find_class(r.slo, "fe.shed");
      ASSERT_NE(drop, nullptr);
      ASSERT_NE(shed, nullptr);
      EXPECT_EQ(drop->total.count(), f.dropped());
      EXPECT_EQ(drop->violations(), f.dropped());
      EXPECT_EQ(shed->total.count(), f.shed);
      EXPECT_EQ(shed->violations(), f.shed);
      if (f.dropped() > 0) {
        // Budget burn shows up in the windowed view too.
        std::uint64_t win_viol = 0;
        for (const obs::SloWindow& w : drop->windows) {
          win_viol += w.violations;
        }
        EXPECT_EQ(win_viol, f.dropped());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// JSON block: round-trip, malformed rejection, golden fixture, fold
// ---------------------------------------------------------------------------

obs::FrontendResult sample_ledger() {
  obs::FrontendResult f;
  f.completed = 1453;
  f.tail_dropped = 232;
  f.admit_rejected = 17;
  f.shed = 41;
  f.in_flight = 62;
  f.accepted = f.completed + f.in_flight;
  f.arrivals = f.accepted + f.tail_dropped + f.admit_rejected + f.shed;
  f.conn_setups = 96;
  f.keepalive_reuses = 1419;
  f.max_queue_depth = 64;
  f.queue_wait_total = 52891126685;
  f.queue_wait_max = 50040699;
  return f;
}

std::string to_json(const obs::FrontendResult& f) {
  obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
  obs::frontend_json(w, f);
  return w.str();
}

TEST(FrontendJson, RoundTripsByteIdentical) {
  const obs::FrontendResult f = sample_ledger();
  const std::string json = to_json(f);
  obs::JsonReader reader;
  obs::JsonValue v;
  ASSERT_TRUE(reader.parse(json, &v)) << reader.error();
  obs::FrontendResult parsed;
  std::string err;
  ASSERT_TRUE(obs::frontend_from_value(v, &parsed, &err)) << err;
  EXPECT_EQ(parsed, f);
  EXPECT_EQ(parsed.digest(), f.digest());
  EXPECT_EQ(to_json(parsed), json);  // byte-identical re-emit
}

TEST(FrontendJson, RejectsMalformedBlocks) {
  obs::FrontendResult out;
  std::string err;
  obs::JsonReader reader;
  obs::JsonValue v;
  // Not an object.
  ASSERT_TRUE(reader.parse("[1,2]", &v));
  EXPECT_FALSE(obs::frontend_from_value(v, &out, &err));
  // Each required key, individually missing (renamed), is rejected with an
  // error naming the key.
  const std::string full = to_json(sample_ledger());
  for (const char* key :
       {"arrivals", "accepted", "completed", "tail_dropped", "admit_rejected",
        "shed", "in_flight", "conn_setups", "keepalive_reuses",
        "max_queue_depth", "queue_wait_total_ns", "queue_wait_max_ns"}) {
    std::string broken = full;
    const std::string needle = std::string("\"") + key + "\"";
    const std::size_t pos = broken.find(needle);
    ASSERT_NE(pos, std::string::npos) << key;
    broken.replace(pos, needle.size(), std::string("\"x_") + key + "\"");
    ASSERT_TRUE(reader.parse(broken, &v)) << key;
    err.clear();
    EXPECT_FALSE(obs::frontend_from_value(v, &out, &err)) << key;
    EXPECT_NE(err.find(key), std::string::npos) << err;
  }
  // Wrong type.
  ASSERT_TRUE(reader.parse(R"({"arrivals":"many"})", &v));
  EXPECT_FALSE(obs::frontend_from_value(v, &out, &err));
}

std::string golden_path(const std::string& name) {
  return std::string(IRS_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The frontend block's serialized form is pinned byte-for-byte: schema or
/// key-order drift fails here first. Regenerate after an intentional change
/// with IRS_REGEN_GOLDEN=1 ./irs_tests --gtest_filter=FrontendGolden.*
TEST(FrontendGolden, SerializedBlockMatchesFixtureByteForByte) {
  const std::string json = to_json(sample_ledger()) + "\n";
  const std::string path = golden_path("frontend_result.json");
  if (std::getenv("IRS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << json;
    ASSERT_TRUE(out.good()) << "could not regenerate " << path;
    GTEST_SKIP() << "regenerated frontend_result.json";
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty())
      << "missing golden file frontend_result.json (run with "
         "IRS_REGEN_GOLDEN=1 to create)";
  EXPECT_EQ(json, want)
      << "frontend JSON drifted from the golden fixture; if intentional, "
         "regenerate with IRS_REGEN_GOLDEN=1";
  // The on-disk fixture is live: parsing it reproduces the exact ledger.
  obs::JsonReader reader;
  obs::JsonValue v;
  ASSERT_TRUE(reader.parse(want, &v)) << reader.error();
  obs::FrontendResult parsed;
  std::string err;
  ASSERT_TRUE(obs::frontend_from_value(v, &parsed, &err)) << err;
  EXPECT_EQ(parsed, sample_ledger());
}

TEST(FrontendFold, ExactOrderIndependentWithMaxSemantics) {
  obs::FrontendResult a = sample_ledger();
  obs::FrontendResult b = sample_ledger();
  b.completed = 7;
  b.arrivals = 9;
  b.max_queue_depth = 200;
  b.queue_wait_max = a.queue_wait_max + 5;
  obs::FrontendResult ab, ba;
  obs::fold_frontend(ab, a);
  obs::fold_frontend(ab, b);
  obs::fold_frontend(ba, b);
  obs::fold_frontend(ba, a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.arrivals, a.arrivals + b.arrivals);
  EXPECT_EQ(ab.completed, a.completed + b.completed);
  EXPECT_EQ(ab.max_queue_depth, 200u);          // max, not sum
  EXPECT_EQ(ab.queue_wait_max, b.queue_wait_max);
  EXPECT_EQ(ab.queue_wait_total, a.queue_wait_total + b.queue_wait_total);
  // Folding an empty ledger is a no-op; empty digests are 0, others not.
  obs::FrontendResult untouched = ab;
  obs::fold_frontend(ab, obs::FrontendResult{});
  EXPECT_EQ(ab, untouched);
  EXPECT_EQ(obs::FrontendResult{}.digest(), 0u);
  EXPECT_NE(ab.digest(), 0u);
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------------------
// Forensics: queue wait is a first-class cause
// ---------------------------------------------------------------------------

TEST(FrontendForensics, QueueWaitChargedExactlyFromTheLedger) {
  exp::ScenarioConfig cfg = frontend_cfg();
  cfg.bg = "hog";
  cfg.n_inter = 2;
  cfg.fe_rate_hz = 3000.0;  // above the hog-degraded capacity: queues form
  cfg.forensics = true;
  const exp::RunResult r = exp::run_scenario(cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_FALSE(r.forensics.empty());
  const obs::ForensicsClassResult* fe = nullptr;
  for (const obs::ForensicsClassResult& c : r.forensics.classes) {
    if (c.name == "fe") fe = &c;
  }
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fe->spans, r.frontend.completed);
  EXPECT_GT(r.frontend.queue_wait_total, 0);
  // The analyzer pre-charges each span's accept-queue wait to kQueueWait;
  // summed over completed requests that is exactly the ledger total.
  EXPECT_EQ(fe->cause_total(obs::Cause::kQueueWait),
            r.frontend.queue_wait_total);
  EXPECT_GT(r.frontend.queue_wait_max, 0);
  // The rest of the decomposition still runs: some run time was charged.
  EXPECT_GT(fe->cause_total(obs::Cause::kRun), 0);
}

}  // namespace
}  // namespace irs
